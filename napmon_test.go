package napmon_test

// Black-box tests of the public facade: the full workflow a downstream
// user follows, exercised through exported identifiers only.

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"testing"
	"time"

	"napmon"
)

// toyData builds a small separable 3-class problem.
func toyData(seed uint64, n int) []napmon.Sample {
	r := napmon.NewRNG(seed)
	centers := [][]float64{{2, 0, -2}, {-2, 2, 0}, {0, -2, 2}}
	out := make([]napmon.Sample, n)
	for i := range out {
		label := i % 3
		x := napmon.NewTensor(3)
		for j := range x.Data() {
			x.Data()[j] = centers[label][j] + 0.5*r.Norm()
		}
		out[i] = napmon.Sample{Input: x, Label: label}
	}
	return out
}

func toyNet(t *testing.T, seed uint64) *napmon.Network {
	t.Helper()
	net, err := napmon.BuildNetwork([]napmon.LayerSpec{
		{Kind: napmon.KindDense, In: 3, Out: 12},
		{Kind: napmon.KindReLU},
		{Kind: napmon.KindDense, In: 12, Out: 8},
		{Kind: napmon.KindReLU},
		{Kind: napmon.KindDense, In: 8, Out: 3},
	}, napmon.NewRNG(seed))
	if err != nil {
		t.Fatal(err)
	}
	return net
}

func TestPublicWorkflow(t *testing.T) {
	train := toyData(1, 300)
	net := toyNet(t, 2)
	stats := napmon.Train(net, train, napmon.TrainConfig{Epochs: 12, BatchSize: 16, LR: 0.05, Seed: 3})
	if len(stats) != 12 {
		t.Fatalf("got %d epoch stats", len(stats))
	}
	if acc := napmon.Accuracy(net, train); acc < 0.9 {
		t.Fatalf("training accuracy %v", acc)
	}

	mon, err := napmon.BuildMonitor(net, train, napmon.Config{Layer: 3, Gamma: 1})
	if err != nil {
		t.Fatal(err)
	}
	val := toyData(4, 150)
	m := napmon.EvaluateMonitor(net, mon, val)
	if m.Total != 150 || m.Watched != 150 {
		t.Fatalf("metrics = %+v", m)
	}

	// Gamma sweep through the facade.
	sweep := napmon.GammaSweep(net, mon, val, []int{0, 1, 2})
	if len(sweep) != 3 {
		t.Fatal("sweep length wrong")
	}
	if sweep[2].OutOfPattern > sweep[0].OutOfPattern {
		t.Fatal("sweep not monotone")
	}
}

func TestPublicWatchBatch(t *testing.T) {
	train := toyData(19, 300)
	net := toyNet(t, 20)
	napmon.Train(net, train, napmon.TrainConfig{Epochs: 10, BatchSize: 16, LR: 0.05, Seed: 21})
	mon, err := napmon.BuildMonitor(net, train, napmon.Config{Layer: 3, Gamma: 1})
	if err != nil {
		t.Fatal(err)
	}
	val := toyData(22, 120)
	inputs := make([]*napmon.Tensor, len(val))
	serial := make([]napmon.Verdict, len(val))
	for i, s := range val {
		inputs[i] = s.Input
		serial[i] = mon.Watch(net, s.Input)
	}
	batch := napmon.WatchBatch(net, mon, inputs)
	if len(batch) != len(val) {
		t.Fatalf("batch returned %d verdicts for %d inputs", len(batch), len(val))
	}
	for i := range batch {
		if batch[i].Class != serial[i].Class || batch[i].OutOfPattern != serial[i].OutOfPattern {
			t.Fatalf("verdict %d: batch %+v != serial %+v", i, batch[i], serial[i])
		}
	}
	if !mon.Frozen() {
		t.Fatal("monitor not frozen after WatchBatch")
	}
}

// TestPublicServe drives the streaming front end through the facade: a
// server built with napmon.Serve must return the same verdicts as serial
// Watch, drain on Shutdown, and then reject new submits with the typed
// error.
func TestPublicServe(t *testing.T) {
	train := toyData(23, 300)
	net := toyNet(t, 24)
	napmon.Train(net, train, napmon.TrainConfig{Epochs: 10, BatchSize: 16, LR: 0.05, Seed: 25})
	mon, err := napmon.BuildMonitor(net, train, napmon.Config{Layer: 3, Gamma: 1})
	if err != nil {
		t.Fatal(err)
	}
	val := toyData(26, 90)
	serial := make([]napmon.Verdict, len(val))
	for i, s := range val {
		serial[i] = mon.Watch(net, s.Input)
	}
	srv, err := napmon.Serve(net, mon, napmon.ServerConfig{
		MaxBatch: 16,
		MaxDelay: time.Millisecond,
		Lanes:    2,
	})
	if err != nil {
		t.Fatal(err)
	}
	futs := make([]*napmon.Future, len(val))
	for i, s := range val {
		if futs[i], err = srv.Submit(s.Input); err != nil {
			t.Fatal(err)
		}
	}
	for i, f := range futs {
		v, err := f.Wait()
		if err != nil {
			t.Fatalf("future %d: %v", i, err)
		}
		if v.Class != serial[i].Class || v.OutOfPattern != serial[i].OutOfPattern {
			t.Fatalf("verdict %d: serve %+v != serial %+v", i, v, serial[i])
		}
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
	if _, err := srv.Submit(val[0].Input); !errors.Is(err, napmon.ErrServerClosed) {
		t.Fatalf("Submit after Shutdown = %v, want ErrServerClosed", err)
	}
	st := srv.Stats()
	if st.Served != uint64(len(val)) || st.Lanes != 2 {
		t.Fatalf("stats after drain: %+v", st)
	}
}

func TestPublicModelRoundTrip(t *testing.T) {
	train := toyData(5, 120)
	net := toyNet(t, 6)
	napmon.Train(net, train, napmon.TrainConfig{Epochs: 5, BatchSize: 16, LR: 0.05, Seed: 7})

	var buf bytes.Buffer
	if err := net.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := napmon.LoadModel(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range train[:20] {
		if loaded.Predict(s.Input) != net.Predict(s.Input) {
			t.Fatal("prediction changed after round trip")
		}
	}
}

func TestPublicMonitorRoundTrip(t *testing.T) {
	train := toyData(8, 200)
	net := toyNet(t, 9)
	napmon.Train(net, train, napmon.TrainConfig{Epochs: 8, BatchSize: 16, LR: 0.05, Seed: 10})
	mon, err := napmon.BuildMonitor(net, train, napmon.Config{Layer: 3, Gamma: 2})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := mon.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := napmon.LoadMonitor(&buf)
	if err != nil {
		t.Fatal(err)
	}
	val := toyData(11, 100)
	for _, s := range val {
		a, b := mon.Watch(net, s.Input), loaded.Watch(net, s.Input)
		if a.OutOfPattern != b.OutOfPattern {
			t.Fatal("verdict changed after round trip")
		}
	}
}

func TestPublicNeuronSelection(t *testing.T) {
	train := toyData(12, 150)
	net := toyNet(t, 13)
	napmon.Train(net, train, napmon.TrainConfig{Epochs: 5, BatchSize: 16, LR: 0.05, Seed: 14})
	sel, err := napmon.SelectNeurons(net, train[:20], 3, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if len(sel) != 4 { // ceil(0.5 * 8)
		t.Fatalf("selected %d neurons", len(sel))
	}
	mon, err := napmon.BuildMonitor(net, train, napmon.Config{Layer: 3, Gamma: 0, Neurons: sel})
	if err != nil {
		t.Fatal(err)
	}
	if got := len(mon.Neurons()); got != 4 {
		t.Fatalf("monitor has %d neurons", got)
	}
}

func TestPublicInferGamma(t *testing.T) {
	train := toyData(15, 200)
	net := toyNet(t, 16)
	napmon.Train(net, train, napmon.TrainConfig{Epochs: 8, BatchSize: 16, LR: 0.05, Seed: 17})
	mon, err := napmon.BuildMonitor(net, train, napmon.Config{Layer: 3, Gamma: 0})
	if err != nil {
		t.Fatal(err)
	}
	g, history := napmon.InferGamma(net, mon, toyData(18, 100), 0.5, 0.02, 4)
	if g < 0 || g > 4 || len(history) == 0 {
		t.Fatalf("InferGamma = %d with %d levels", g, len(history))
	}
}

func TestPublicDatasets(t *testing.T) {
	ds := napmon.MNISTLike(20, 10, 1)
	if ds.NumClasses != 10 || len(ds.Train) != 20 || len(ds.Val) != 10 {
		t.Fatalf("MNISTLike = %s %d/%d", ds.Name, len(ds.Train), len(ds.Val))
	}
	gs := napmon.GTSRBLike(43, 0, 2)
	if gs.NumClasses != 43 {
		t.Fatal("GTSRBLike class count wrong")
	}
	if napmon.StopSignClass != 14 {
		t.Fatal("stop sign class must be 14")
	}
}

// ExampleMonitor_Update demonstrates the serve-while-retraining loop: a
// frozen monitor absorbs a newly observed activation pattern by
// publishing a new serving epoch, without a serving gap. The pattern
// string is the wire form the napmon-serve daemon returns from /watch
// and accepts on /learn.
func ExampleMonitor_Update() {
	train := toyData(50, 300)
	net, _ := napmon.BuildNetwork([]napmon.LayerSpec{
		{Kind: napmon.KindDense, In: 3, Out: 12},
		{Kind: napmon.KindReLU},
		{Kind: napmon.KindDense, In: 12, Out: 8},
		{Kind: napmon.KindReLU},
		{Kind: napmon.KindDense, In: 8, Out: 3},
	}, napmon.NewRNG(51))
	napmon.Train(net, train, napmon.TrainConfig{Epochs: 8, BatchSize: 16, LR: 0.05, Seed: 52})
	mon, _ := napmon.BuildMonitor(net, train, napmon.Config{Layer: 3, Gamma: 1})

	mon.Freeze() // epoch 1 starts serving; zones are now immutable
	fmt.Println("epoch after freeze:", mon.Epoch())

	// In-place mutation is refused once serving...
	fmt.Println("SetGamma while frozen errors:", mon.SetGamma(0) != nil)

	// ...but the online updater absorbs new patterns by epoch swap. A
	// production loop would feed back patterns from flagged verdicts;
	// here one arrives as the /learn wire form.
	pattern, _ := napmon.ParsePattern("10110101")
	epoch, err := mon.Update(2, pattern)
	if err != nil {
		fmt.Println("update failed:", err)
		return
	}
	fmt.Println("epoch after update:", epoch)
	out, monitored := mon.WatchPattern(2, pattern)
	fmt.Println("absorbed pattern now in its comfort zone:", monitored && !out)
	// Output:
	// epoch after freeze: 1
	// SetGamma while frozen errors: true
	// epoch after update: 2
	// absorbed pattern now in its comfort zone: true
}

// TestPublicServeFleet drives the multi-tenant surface through the
// facade: two tenants served side by side, per-tenant verdicts matching
// serial Watch, pinned lookups surviving an unload of the other tenant,
// and a snapshot + delta-stream replication round trip between two
// registries using exported identifiers only.
func TestPublicServeFleet(t *testing.T) {
	build := func(netSeed, dataSeed uint64) (*napmon.Network, *napmon.Monitor, []napmon.Sample) {
		train := toyData(dataSeed, 300)
		net := toyNet(t, netSeed)
		napmon.Train(net, train, napmon.TrainConfig{Epochs: 10, BatchSize: 16, LR: 0.05, Seed: netSeed + 1})
		mon, err := napmon.BuildMonitor(net, train, napmon.Config{Layer: 3, Gamma: 1})
		if err != nil {
			t.Fatal(err)
		}
		return net, mon, train
	}
	netA, monA, _ := build(30, 31)
	netB, monB, _ := build(32, 33)

	fleet, err := napmon.ServeFleet(napmon.RegistryConfig{}, map[string]napmon.TenantConfig{
		"alpha": {Net: netA, Mon: monA},
		"beta":  {Net: netB, Mon: monB, Serve: napmon.ServerConfig{MaxBatch: 16, Lanes: 2}},
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	defer fleet.Close(ctx)

	if n := fleet.Len(); n != 2 {
		t.Fatalf("fleet has %d tenants, want 2", n)
	}
	if _, err := fleet.Acquire("gamma"); !errors.Is(err, napmon.ErrTenantNotFound) {
		t.Fatalf("Acquire(gamma) = %v, want ErrTenantNotFound", err)
	}

	// Per-tenant verdicts match serial Watch against that tenant's model.
	val := toyData(34, 60)
	alpha, err := fleet.Acquire("alpha")
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range val {
		fut, err := alpha.Server().Submit(s.Input)
		if err != nil {
			t.Fatal(err)
		}
		v, err := fut.Wait()
		if err != nil {
			t.Fatal(err)
		}
		want := monA.Watch(netA, s.Input)
		if v.Class != want.Class || v.OutOfPattern != want.OutOfPattern {
			t.Fatalf("alpha verdict %+v != serial %+v", v, want)
		}
	}

	// Unloading beta must not disturb the pinned alpha lane.
	if err := fleet.Unload(ctx, "beta"); err != nil {
		t.Fatal(err)
	}
	if fut, err := alpha.Server().Submit(val[0].Input); err != nil {
		t.Fatal(err)
	} else if _, err := fut.Wait(); err != nil {
		t.Fatal(err)
	}
	alpha.Release()

	// Replication: snapshot alpha, learn on the leader, stream the
	// deltas into a follower registry, and require epoch convergence.
	leader, err := fleet.Acquire("alpha")
	if err != nil {
		t.Fatal(err)
	}
	defer leader.Release()
	var snap bytes.Buffer
	if err := leader.Snapshot(&snap); err != nil {
		t.Fatal(err)
	}
	followerReg := napmon.NewRegistry(napmon.RegistryConfig{})
	defer followerReg.Close(ctx)
	follower, err := followerReg.LoadSnapshot("alpha", netA, &snap, napmon.ServerConfig{})
	if err != nil {
		t.Fatal(err)
	}
	base := follower.Monitor().Epoch()
	pat, _ := napmon.ParsePattern("10110101")
	if _, err := leader.Learn(map[int][]napmon.Pattern{1: {pat}}); err != nil {
		t.Fatal(err)
	}
	deltas, err := leader.DeltasSince(base)
	if err != nil {
		t.Fatal(err)
	}
	stream, err := napmon.EncodeDeltaStream(len(leader.Monitor().Neurons()), deltas)
	if err != nil {
		t.Fatal(err)
	}
	decoded, err := napmon.DecodeDeltaStream(stream, len(follower.Monitor().Neurons()))
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range decoded {
		if err := follower.ApplyDelta(d); err != nil {
			t.Fatal(err)
		}
	}
	if le, fe := leader.Monitor().Epoch(), follower.Monitor().Epoch(); le != fe {
		t.Fatalf("follower epoch %d != leader epoch %d", fe, le)
	}
	if out, monitored := follower.Monitor().WatchPattern(1, pat); !monitored || out {
		t.Fatal("replicated pattern not in follower comfort zone")
	}
}
