module napmon

go 1.21
