module napmon

go 1.22
