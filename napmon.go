package napmon

import (
	"context"
	"fmt"
	"io"
	"sort"

	"napmon/internal/core"
	"napmon/internal/dataset"
	"napmon/internal/nn"
	"napmon/internal/registry"
	"napmon/internal/rng"
	"napmon/internal/serve"
	"napmon/internal/tensor"
)

// The napmon package is the public facade over the repository's internal
// packages: it re-exports the monitor workflow (the paper's contribution)
// together with the network, tensor and dataset substrates a downstream
// user needs to drive it.

// Monitor is a neuron activation pattern monitor (paper Definition 3):
// one γ-comfort zone per monitored class, stored as BDDs. A frozen
// monitor is a live service, not a static artifact: Monitor.Update,
// Monitor.UpdateBatch and Monitor.UpdateGamma absorb newly observed
// activation patterns (or re-level γ) by shadow-building the touched
// zones and atomically publishing a new serving epoch, while readers keep
// serving the old one without a gap — see Updater.
type Monitor = core.Monitor

// Updater is a monitor's online-update engine: it serializes
// Update/UpdateBatch/UpdateGamma calls, shadow-builds zone deltas on
// writable clones while the frozen epoch keeps serving, swaps the new
// epoch in atomically, and releases retired epochs once their pinned
// readers drain. Obtain it with Monitor.Updater for its counters
// (Published, Absorbed, ReleasedEpochs).
type Updater = core.Updater

// Config specifies which layer, classes and neurons a monitor covers and
// its Hamming enlargement γ.
type Config = core.Config

// Verdict is the outcome of watching one input.
type Verdict = core.Verdict

// Pattern is a binary neuron activation pattern (paper Definition 1).
type Pattern = core.Pattern

// ParsePattern decodes the 0/1 string form produced by Pattern.String —
// the wire format of the napmon-serve /watch response and /learn request,
// which lets a client feed flagged patterns straight back into
// Monitor.Update.
func ParsePattern(s string) (Pattern, error) { return core.ParsePattern(s) }

// Zone is one class's γ-comfort zone (paper Definition 2).
type Zone = core.Zone

// Metrics aggregates monitor evaluation statistics (the paper's Table II
// columns).
type Metrics = core.Metrics

// Network is a feed-forward neural network (convolutions, pooling, batch
// normalization, fully-connected layers, ReLU).
type Network = nn.Network

// Sample is one labelled input.
type Sample = nn.Sample

// TrainConfig controls SGD training.
type TrainConfig = nn.TrainConfig

// LayerSpec describes one layer for building networks declaratively.
type LayerSpec = nn.Spec

// Tensor is a dense float64 array.
type Tensor = tensor.Tensor

// RNG is a deterministic random number source.
type RNG = rng.Source

// NewRNG returns a deterministic random source for the given seed.
func NewRNG(seed uint64) *RNG { return rng.New(seed) }

// NewTensor returns a zero tensor of the given shape.
func NewTensor(shape ...int) *Tensor { return tensor.New(shape...) }

// TensorFromSlice wraps data (not copied) in a tensor of the given shape.
func TensorFromSlice(data []float64, shape ...int) *Tensor {
	return tensor.FromSlice(data, shape...)
}

// BuildNetwork constructs a freshly initialized network from layer specs.
func BuildNetwork(specs []LayerSpec, r *RNG) (*Network, error) {
	return nn.Build(specs, r)
}

// Train runs mini-batch SGD over the samples and returns per-epoch stats.
func Train(net *Network, samples []Sample, cfg TrainConfig) []nn.EpochStats {
	return nn.Train(net, samples, cfg)
}

// Accuracy returns the fraction of samples the network classifies
// correctly.
func Accuracy(net *Network, samples []Sample) float64 {
	return nn.Accuracy(net, samples)
}

// LoadModel reads a network written with Network.Save.
func LoadModel(r io.Reader) (*Network, error) { return nn.Load(r) }

// LoadModelFile reads a network from a file.
func LoadModelFile(path string) (*Network, error) { return nn.LoadFile(path) }

// BuildMonitor runs the paper's Algorithm 1: it records the activation
// pattern of every correctly classified training sample in its class's
// comfort zone and enlarges each zone to cfg.Gamma. Both phases run on
// all cores: inference over a sample worker pool, then per-class zone
// construction over a class worker pool (each class's BDD manager is an
// independent single-writer shard), with results identical to a
// sequential build regardless of GOMAXPROCS.
func BuildMonitor(net *Network, train []Sample, cfg Config) (*Monitor, error) {
	return core.Build(net, train, cfg)
}

// BuildMonitorFromPatterns builds a monitor directly from per-class
// activation patterns — no network pass. Useful for rebuilding a monitor
// from logged serving traffic (the /watch wire form parses with
// ParsePattern); the result serves pattern-level queries (WatchPattern,
// the Update family) but not the network-coupled Watch/WatchBatch.
func BuildMonitorFromPatterns(width, gamma int, perClass map[int][]Pattern) (*Monitor, error) {
	return core.BuildFromPatterns(width, gamma, perClass)
}

// LoadMonitor reads a monitor written with Monitor.Save.
func LoadMonitor(r io.Reader) (*Monitor, error) { return core.Load(r) }

// LoadMonitorFile reads a monitor from a file.
func LoadMonitorFile(path string) (*Monitor, error) { return core.LoadFile(path) }

// EvaluateMonitor runs the monitor over a labelled dataset and aggregates
// the paper's Table II statistics.
func EvaluateMonitor(net *Network, m *Monitor, samples []Sample) Metrics {
	return core.Evaluate(net, m, samples)
}

// EvaluateMonitorAt evaluates at an explicit enlargement level without
// changing the serving γ. On a frozen monitor, asking for a level deeper
// than was cached before the freeze returns an error instead of
// panicking, so a live daemon probing γ cannot be crashed by a too-deep
// query.
func EvaluateMonitorAt(net *Network, m *Monitor, samples []Sample, gamma int) (Metrics, error) {
	return core.EvaluateAt(net, m, samples, gamma)
}

// WatchBatch is the batched serving front end: it runs inference and the
// comfort-zone membership query for every input and returns one Verdict
// per input, in input order. Whole micro-batches flow through the
// batched GEMM inference path (Network.ForwardBatch: stacked im2col, one
// blocked matrix multiply per layer, fused bias+ReLU — and, for
// conv→ReLU→maxpool blocks, bias+ReLU+pool — epilogues, pooled
// allocation-free scratch), split across GOMAXPROCS workers on
// multi-core hosts. Membership queries are grouped by predicted class
// and answered from each zone's compiled query plan in one batched walk
// per class per chunk. The monitor is frozen read-only on first use
// (Monitor.Freeze), which makes concurrent WatchBatch calls from any
// number of goroutines safe by construction; a frozen monitor grows only
// through the online-update path (Monitor.Update/UpdateBatch/UpdateGamma),
// which publishes whole new epochs — each batch pins one epoch, and every
// Verdict carries the epoch id it was computed against.
func WatchBatch(net *Network, m *Monitor, inputs []*Tensor) []Verdict {
	return m.WatchBatch(net, inputs)
}

// ScratchPool recycles the intermediate tensors of the batched inference
// path so a hot serving loop is allocation-free after warm-up. A pool
// must not be shared between concurrent callers; see
// Network.ForwardBatch and Monitor.WatchBatchPooled.
type ScratchPool = tensor.Pool

// NewScratchPool returns an empty scratch pool for the batched inference
// path.
func NewScratchPool() *ScratchPool { return tensor.NewPool() }

// Server is the streaming serving front end: a long-lived service over
// one frozen monitor that accepts Submit calls from any number of
// goroutines through a bounded request queue and coalesces them into
// micro-batches on the WatchBatch fast path. See Serve.
type Server = serve.Server

// ServerConfig sizes a Server: micro-batch flush threshold (MaxBatch),
// partial-batch deadline (MaxDelay), request-queue depth (backpressure),
// number of serving lanes (network replicas) and the latency-statistics
// window, plus the OnEpochSwap hook observing online updates published
// through Server.Update/UpdateGamma. The zero value selects sensible
// defaults.
type ServerConfig = serve.Config

// ServerStats is a snapshot of a Server's counters: queue depth,
// submitted/served/rejected totals, batch count and mean size, p50/p99
// request latency over a recent window, and the online-update view (the
// monitor epoch currently serving plus the number of epoch swaps
// published through the server).
type ServerStats = serve.Stats

// Future is the pending result of one Server.Submit; Wait blocks until
// the verdict is available (or the server aborted the request).
type Future = serve.Future

// ErrServerClosed is returned by Server.Submit and Server.SubmitAll after
// Shutdown has begun, and resolves any Future the server aborted.
var ErrServerClosed = serve.ErrServerClosed

// ErrQueueFull is returned by Server.TrySubmit when the request queue is
// full. TrySubmit is the non-blocking submission path lossy transports
// use to shed load explicitly (the UDP side of cmd/napmon-gateway
// answers it with an "overloaded" error frame) instead of queueing
// without bound; blocking callers should use Submit, which applies
// backpressure by waiting.
var ErrQueueFull = serve.ErrQueueFull

// ErrExpired resolves the Future of a Server.SubmitCtx request whose
// context was cancelled or deadline-expired while it waited in the
// pipeline: the server sheds stale requests before spending inference
// on them (Stats.Expired counts the sheds).
var ErrExpired = serve.ErrExpired

// Serve starts a streaming serving front end over the network and
// monitor: requests submitted from any number of goroutines are queued,
// coalesced into micro-batches (flushed at cfg.MaxBatch or after
// cfg.MaxDelay) and executed on per-lane network replicas against the
// frozen monitor. The monitor stays updatable while serving —
// Server.Update/UpdateGamma publish new zone epochs that lanes pick up at
// micro-batch granularity without dropping a request. Stop the server
// with Server.Shutdown, which drains accepted requests. The
// cmd/napmon-serve binary wraps this in an HTTP daemon (POST /learn is
// the update endpoint).
//
// Serve is the one-tenant form of the fleet API: it loads the network
// and monitor as the DefaultTenant of a fresh Registry and returns that
// tenant's Server, so a single-model deployment pays nothing for the
// multi-tenant machinery while behaving identically to a one-entry
// ServeFleet. Callers who need hot load/unload, snapshots or
// replication should hold the Registry instead — see ServeFleet.
func Serve(net *Network, m *Monitor, cfg ServerConfig) (*Server, error) {
	r := registry.New(registry.Config{})
	t, err := r.Load(registry.DefaultTenant, registry.TenantConfig{Net: net, Mon: m, Serve: cfg})
	if err != nil {
		return nil, err
	}
	return t.Server(), nil
}

// --- Fleet serving: registry, snapshots, replication ---

// Registry is the multi-tenant fleet front end: a concurrent map from
// tenant name to a live (network, monitor, server) lane that supports
// hot load and unload while traffic flows. Lookup pins a tenant against
// unload (Acquire/AcquireID + Release); Unload publishes the removal
// immediately but drains the tenant's server gracefully, so in-flight
// batches always complete. Each tenant carries a bounded epoch-keyed
// delta log (Tenant.DeltasSince / Tenant.ApplyDelta) and a compact
// snapshot codec (Tenant.Snapshot / Registry.LoadSnapshot), which
// together form the leader→follower replication protocol used by
// `napmon-serve -follow`. See DESIGN.md, "Multi-tenant registry,
// snapshots, replication".
type Registry = registry.Registry

// Tenant is one named model lane inside a Registry: its network,
// monitor and streaming Server, plus the replication surface (Learn,
// UpdateGamma, Snapshot, DeltasSince, ApplyDelta). A Tenant returned by
// Acquire/AcquireID is pinned and must be Released.
type Tenant = registry.Tenant

// RegistryConfig sizes a Registry: the drain grace period applied when
// a tenant is unloaded and the per-tenant delta-log capacity bounding
// how far behind a replication follower may fall before it must
// re-snapshot. The zero value selects sensible defaults.
type RegistryConfig = registry.Config

// TenantConfig describes one tenant to load: its network, monitor and
// the ServerConfig for its serving lane.
type TenantConfig = registry.TenantConfig

// DeltaEntry is one replicated monitor update: the epoch it published
// plus either a per-class pattern delta or a γ re-level. Streams of
// entries encode with EncodeDeltaStream / DecodeDeltaStream; a
// follower applies them in epoch order with Tenant.ApplyDelta and
// converges bit-for-bit with the leader's monitor.
type DeltaEntry = core.DeltaEntry

// DefaultTenant is the tenant name the single-tenant surfaces map to:
// napmon.Serve, the legacy unprefixed HTTP routes of cmd/napmon-serve
// and wire-protocol frames carrying tenant id 0.
const DefaultTenant = registry.DefaultTenant

// Fleet registry errors, re-exported for errors.Is against facade
// calls.
var (
	// ErrTenantNotFound reports a lookup for a name or wire id that no
	// loaded tenant matches.
	ErrTenantNotFound = registry.ErrNotFound
	// ErrTenantExists reports a Load under a name already serving.
	ErrTenantExists = registry.ErrExists
	// ErrRegistryClosed reports use of a Registry after Close.
	ErrRegistryClosed = registry.ErrClosed
	// ErrDeltaGap reports that a follower asked for deltas older than
	// the leader's bounded log retains; the follower must re-snapshot.
	ErrDeltaGap = registry.ErrDeltaGap
)

// NewRegistry returns an empty fleet registry. Load tenants with
// Registry.Load (or warm-start them from a leader snapshot with
// Registry.LoadSnapshot), then route traffic by name or wire id via
// Acquire/AcquireID.
func NewRegistry(cfg RegistryConfig) *Registry { return registry.New(cfg) }

// ServeFleet builds a Registry and loads every named tenant, in
// lexical name order so wire ids assign deterministically. It is the
// multi-tenant analogue of Serve: one call takes a fleet of
// (network, monitor, server-config) triples live. On any load failure
// the partially built fleet is torn down and the error identifies the
// offending tenant.
func ServeFleet(cfg RegistryConfig, tenants map[string]TenantConfig) (*Registry, error) {
	r := registry.New(cfg)
	names := make([]string, 0, len(tenants))
	for name := range tenants {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		if _, err := r.Load(name, tenants[name]); err != nil {
			r.Close(context.Background())
			return nil, fmt.Errorf("napmon: load tenant %q: %w", name, err)
		}
	}
	return r, nil
}

// LoadSnapshot reads a compact monitor snapshot written with
// Monitor.Snapshot: compiled zone query plans plus bit-packed patterns,
// checksummed, with the trailing delta-log entries the leader saved
// alongside. The returned monitor is frozen at the leader's epoch and
// answers queries identically; Registry.LoadSnapshot wraps this to
// warm-start a serving tenant directly.
func LoadSnapshot(r io.Reader) (*Monitor, []DeltaEntry, error) {
	return core.LoadSnapshot(r)
}

// EncodeDeltaStream frames replication deltas for transport: the
// leader's answer to a follower's "give me everything since epoch N".
// width is the monitored pattern width (Monitor.Neurons).
func EncodeDeltaStream(width int, entries []DeltaEntry) ([]byte, error) {
	return core.EncodeDeltaStream(width, entries)
}

// DecodeDeltaStream parses a delta stream produced by EncodeDeltaStream.
func DecodeDeltaStream(data []byte, width int) ([]DeltaEntry, error) {
	return core.DecodeDeltaStream(data, width)
}

// GammaSweep evaluates the monitor at each γ in gammas.
func GammaSweep(net *Network, m *Monitor, samples []Sample, gammas []int) []Metrics {
	return core.GammaSweep(net, m, samples, gammas)
}

// InferGamma grows γ on a validation set until flagged decisions are
// likely misclassifications (the paper's "infer when to stop enlarging").
func InferGamma(net *Network, m *Monitor, validation []Sample,
	minPrecision, minRate float64, maxGamma int) (int, []Metrics) {
	return core.InferGamma(net, m, validation, minPrecision, minRate, maxGamma)
}

// SelectNeurons picks the most decision-relevant neurons of a layer by
// gradient-based sensitivity analysis, for monitoring wide layers within
// the BDD variable budget.
func SelectNeurons(net *Network, samples []Sample, layer int, fraction float64) ([]int, error) {
	return core.SelectNeurons(net, samples, layer, fraction)
}

// SelectNeuronsForClass ranks neurons by their influence on one class's
// logit.
func SelectNeuronsForClass(net *Network, samples []Sample, layer, class int, fraction float64) ([]int, error) {
	return core.SelectNeuronsForClass(net, samples, layer, class, fraction)
}

// Dataset is a labelled train/validation pair.
type Dataset = dataset.Dataset

// MNISTLike generates the synthetic 28×28 digit dataset used by the
// experiments (a procedural stand-in for MNIST; see DESIGN.md).
func MNISTLike(nTrain, nVal int, seed uint64) Dataset {
	return dataset.MNISTLike(nTrain, nVal, seed)
}

// GTSRBLike generates the synthetic 32×32 traffic-sign dataset (a
// procedural stand-in for GTSRB with 43 classes; class 14 is the stop
// sign).
func GTSRBLike(nTrain, nVal int, seed uint64) Dataset {
	return dataset.GTSRBLike(nTrain, nVal, seed)
}

// Layer spec kind names, re-exported for declarative network building.
const (
	KindConv    = nn.KindConv
	KindDense   = nn.KindDense
	KindReLU    = nn.KindReLU
	KindMaxPool = nn.KindMaxPool
	KindBN      = nn.KindBN
	KindFlatten = nn.KindFlatten
)

// StopSignClass is the stop-sign class index in the GTSRB-like dataset.
const StopSignClass = dataset.StopSignClass
