package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a := New(42)
	b := New(42)
	for i := 0; i < 1000; i++ {
		if got, want := a.Uint64(), b.Uint64(); got != want {
			t.Fatalf("streams diverged at step %d: %d vs %d", i, got, want)
		}
	}
}

func TestSeedsDiffer(t *testing.T) {
	a := New(1)
	b := New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 1 {
		t.Fatalf("seeds 1 and 2 produced %d/100 identical outputs", same)
	}
}

func TestZeroSeedUsable(t *testing.T) {
	r := New(0)
	seen := map[uint64]bool{}
	for i := 0; i < 64; i++ {
		seen[r.Uint64()] = true
	}
	if len(seen) < 60 {
		t.Fatalf("seed 0 produced only %d distinct values in 64 draws", len(seen))
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(7)
	for i := 0; i < 10000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of [0,1): %v", f)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	r := New(11)
	const n = 200000
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += r.Float64()
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.01 {
		t.Fatalf("Float64 mean = %v, want about 0.5", mean)
	}
}

func TestIntnBounds(t *testing.T) {
	r := New(3)
	for n := 1; n <= 17; n++ {
		for i := 0; i < 200; i++ {
			v := r.Intn(n)
			if v < 0 || v >= n {
				t.Fatalf("Intn(%d) = %d out of range", n, v)
			}
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestNormMoments(t *testing.T) {
	r := New(5)
	const n = 200000
	var sum, sumSq float64
	for i := 0; i < n; i++ {
		v := r.Norm()
		sum += v
		sumSq += v * v
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Errorf("Norm mean = %v, want about 0", mean)
	}
	if math.Abs(variance-1) > 0.03 {
		t.Errorf("Norm variance = %v, want about 1", variance)
	}
}

func TestNormScaled(t *testing.T) {
	r := New(9)
	const n = 100000
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += r.NormScaled(3, 0.5)
	}
	if mean := sum / n; math.Abs(mean-3) > 0.02 {
		t.Fatalf("NormScaled mean = %v, want about 3", mean)
	}
}

func TestPermIsPermutation(t *testing.T) {
	check := func(seed uint64, nRaw uint8) bool {
		n := int(nRaw%50) + 1
		p := New(seed).Perm(n)
		if len(p) != n {
			return false
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(check, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRange(t *testing.T) {
	r := New(13)
	for i := 0; i < 1000; i++ {
		v := r.Range(-2, 5)
		if v < -2 || v >= 5 {
			t.Fatalf("Range(-2,5) = %v out of bounds", v)
		}
	}
}

func TestSplitIndependence(t *testing.T) {
	parent := New(21)
	child := parent.Split()
	// The child's continued stream must not mirror the parent's.
	match := 0
	for i := 0; i < 100; i++ {
		if parent.Uint64() == child.Uint64() {
			match++
		}
	}
	if match > 1 {
		t.Fatalf("parent and split child matched on %d/100 draws", match)
	}
}

func TestBoolProbability(t *testing.T) {
	r := New(17)
	const n = 100000
	hits := 0
	for i := 0; i < n; i++ {
		if r.Bool(0.3) {
			hits++
		}
	}
	got := float64(hits) / n
	if math.Abs(got-0.3) > 0.01 {
		t.Fatalf("Bool(0.3) frequency = %v", got)
	}
}

func BenchmarkUint64(b *testing.B) {
	r := New(1)
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink = r.Uint64()
	}
	_ = sink
}

func BenchmarkNorm(b *testing.B) {
	r := New(1)
	var sink float64
	for i := 0; i < b.N; i++ {
		sink = r.Norm()
	}
	_ = sink
}
