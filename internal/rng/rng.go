// Package rng provides small, fast, deterministic pseudo-random number
// generators used throughout the repository. Experiments must be exactly
// reproducible across runs and machines, so every component that needs
// randomness takes an explicit *rng.Source seeded by the caller instead of
// relying on global state.
//
// The generator is xoshiro256** seeded via SplitMix64, the combination
// recommended by Blackman and Vigna. It is not cryptographically secure.
package rng

import "math"

// Source is a deterministic pseudo-random number source. The zero value is
// not usable; construct one with New.
type Source struct {
	s [4]uint64
}

// New returns a Source seeded from the given seed. Two Sources created with
// the same seed produce identical streams.
func New(seed uint64) *Source {
	var src Source
	sm := seed
	for i := range src.s {
		sm = splitMix64(&sm)
		src.s[i] = sm
	}
	// xoshiro must not start from the all-zero state.
	if src.s[0]|src.s[1]|src.s[2]|src.s[3] == 0 {
		src.s[0] = 0x9e3779b97f4a7c15
	}
	return &src
}

// splitMix64 advances *x and returns the next SplitMix64 output.
func splitMix64(x *uint64) uint64 {
	*x += 0x9e3779b97f4a7c15
	z := *x
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

func rotl(x uint64, k uint) uint64 { return x<<k | x>>(64-k) }

// Uint64 returns the next 64 uniformly distributed bits.
func (r *Source) Uint64() uint64 {
	result := rotl(r.s[1]*5, 7) * 9
	t := r.s[1] << 17
	r.s[2] ^= r.s[0]
	r.s[3] ^= r.s[1]
	r.s[1] ^= r.s[2]
	r.s[0] ^= r.s[3]
	r.s[2] ^= t
	r.s[3] = rotl(r.s[3], 45)
	return result
}

// Split returns a new Source whose stream is independent of r's continued
// stream. It is used to hand child components their own generators.
func (r *Source) Split() *Source {
	return New(r.Uint64())
}

// Float64 returns a uniform float64 in [0, 1).
func (r *Source) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform int in [0, n). It panics if n <= 0.
func (r *Source) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn called with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Range returns a uniform float64 in [lo, hi).
func (r *Source) Range(lo, hi float64) float64 {
	return lo + (hi-lo)*r.Float64()
}

// Norm returns a normally distributed float64 with mean 0 and standard
// deviation 1, using the Box-Muller transform.
func (r *Source) Norm() float64 {
	// Avoid log(0) by shifting the uniform variate away from zero.
	u1 := 1 - r.Float64()
	u2 := r.Float64()
	return math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
}

// NormScaled returns a normal variate with the given mean and stddev.
func (r *Source) NormScaled(mean, stddev float64) float64 {
	return mean + stddev*r.Norm()
}

// Perm returns a pseudo-random permutation of [0, n) as a slice.
func (r *Source) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	r.Shuffle(len(p), func(i, j int) { p[i], p[j] = p[j], p[i] })
	return p
}

// Shuffle pseudo-randomizes the order of n elements using the provided swap
// function (Fisher-Yates).
func (r *Source) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}

// Bool returns true with probability p.
func (r *Source) Bool(p float64) bool {
	return r.Float64() < p
}
