// Package frontcar reproduces the paper's §III case study: a vision-based
// front-car detection unit for highway piloting (Figure 3). The authors'
// system is proprietary, so the vision stack is replaced by a kinematic
// scene simulator that produces exactly the inputs the front-car selection
// network consumes — ego-lane geometry from the lane-detection component
// and vehicle bounding boxes from the vehicle-detection component. The
// selector network maps those features to either the index of the bounding
// box that is the front car or the special class "#" (no front car), and
// the activation monitor runs on its penultimate ReLU layer.
package frontcar

import (
	"math"
	"sort"

	"napmon/internal/nn"
	"napmon/internal/rng"
	"napmon/internal/tensor"
)

// MaxVehicles is the number of bounding-box slots the selector receives.
const MaxVehicles = 4

// NoFrontCar is the class "#": no detected vehicle is the front car.
const NoFrontCar = MaxVehicles

// NumClasses is the selector's output arity (one per slot plus "#").
const NumClasses = MaxVehicles + 1

// Vehicle is one detected bounding box in normalized image coordinates
// (x, y is the bottom-centre of the box; y grows toward the horizon, so
// larger y means farther away).
type Vehicle struct {
	X, Y, W, H float64
}

// Lane is the ego-lane geometry reported by lane detection: the lateral
// offset of the lane centre at the ego position, its curvature, and the
// lane's half-width, all in normalized image units.
type Lane struct {
	Offset    float64
	Curvature float64
	HalfWidth float64
}

// CenterAt returns the lane centre's lateral position at longitudinal
// position y (0 = ego bumper, 1 = horizon).
func (l Lane) CenterAt(y float64) float64 {
	return 0.5 + l.Offset + l.Curvature*y*y
}

// Scene is one simulated highway situation with ground truth.
type Scene struct {
	Lane     Lane
	Vehicles []Vehicle // at most MaxVehicles entries, sorted nearest-first
	// FrontCar is the ground-truth label: the index of the front car in
	// Vehicles, or NoFrontCar.
	FrontCar int
}

// label computes the ground-truth front car: among vehicles laterally
// inside the ego lane at their own longitudinal position, the nearest one
// (smallest y). Vehicles outside the lane or scenes with no in-lane
// vehicle yield NoFrontCar.
func (s *Scene) label() int {
	best := NoFrontCar
	bestY := math.Inf(1)
	for i, v := range s.Vehicles {
		if math.Abs(v.X-s.Lane.CenterAt(v.Y)) > s.Lane.HalfWidth {
			continue
		}
		if v.Y < bestY {
			bestY = v.Y
			best = i
		}
	}
	return best
}

// SceneConfig controls the traffic distribution of the simulator.
type SceneConfig struct {
	// MaxOffset bounds the lane-centre offset.
	MaxOffset float64
	// MaxCurvature bounds the road curvature.
	MaxCurvature float64
	// MinHalfWidth and MaxHalfWidth bound the lane half-width.
	MinHalfWidth, MaxHalfWidth float64
	// VehicleProb is the probability that each slot holds a vehicle.
	VehicleProb float64
	// SensorNoise perturbs reported box and lane values (detection error).
	SensorNoise float64
}

// DefaultSceneConfig models ordinary highway traffic.
func DefaultSceneConfig() SceneConfig {
	return SceneConfig{
		MaxOffset:    0.12,
		MaxCurvature: 0.15,
		MinHalfWidth: 0.08,
		MaxHalfWidth: 0.14,
		VehicleProb:  0.65,
		SensorNoise:  0.005,
	}
}

// ShiftedSceneConfig models a distribution shift the training never
// covered: a narrow construction-zone corridor with strong curvature,
// denser traffic and degraded detections — the case study's motivation for
// monitoring (the network's decisions there are not supported by training
// data).
func ShiftedSceneConfig() SceneConfig {
	return SceneConfig{
		MaxOffset:    0.3,
		MaxCurvature: 0.45,
		MinHalfWidth: 0.03,
		MaxHalfWidth: 0.06,
		VehicleProb:  0.95,
		SensorNoise:  0.06,
	}
}

// GenScene draws one random scene from the configured distribution and
// computes its ground-truth label.
func GenScene(cfg SceneConfig, r *rng.Source) Scene {
	s := Scene{
		Lane: Lane{
			Offset:    r.Range(-cfg.MaxOffset, cfg.MaxOffset),
			Curvature: r.Range(-cfg.MaxCurvature, cfg.MaxCurvature),
			HalfWidth: r.Range(cfg.MinHalfWidth, cfg.MaxHalfWidth),
		},
	}
	for i := 0; i < MaxVehicles; i++ {
		if !r.Bool(cfg.VehicleProb) {
			continue
		}
		y := r.Range(0.1, 0.9)
		// Perspective: distant vehicles are smaller.
		w := (1 - 0.8*y) * r.Range(0.08, 0.14)
		v := Vehicle{
			X: r.Range(0.1, 0.9),
			Y: y,
			W: w,
			H: w * r.Range(0.7, 0.9),
		}
		s.Vehicles = append(s.Vehicles, v)
	}
	// Vehicle detection reports boxes nearest-first, as range-sorted
	// detection lists do.
	sort.Slice(s.Vehicles, func(i, j int) bool { return s.Vehicles[i].Y < s.Vehicles[j].Y })
	s.FrontCar = s.label()
	// Sensor noise corrupts the *reported* features after labelling, so
	// borderline scenes are genuinely ambiguous (a misclassified tail).
	for i := range s.Vehicles {
		s.Vehicles[i].X += r.NormScaled(0, cfg.SensorNoise)
		s.Vehicles[i].Y += r.NormScaled(0, cfg.SensorNoise)
	}
	s.Lane.Offset += r.NormScaled(0, cfg.SensorNoise)
	return s
}

// FeatureDim is the length of the selector's input vector: three lane
// values plus six per vehicle slot (presence flag, box geometry, and the
// box's lateral deviation from the lane centre at its position — a derived
// feature the sensor-fusion front end provides alongside the raw boxes).
const FeatureDim = 3 + 6*MaxVehicles

// Features encodes the scene as the selector's input vector. Empty slots
// are all-zero with presence flag 0.
func (s *Scene) Features() *tensor.Tensor {
	f := make([]float64, FeatureDim)
	f[0] = s.Lane.Offset
	f[1] = s.Lane.Curvature
	f[2] = s.Lane.HalfWidth
	for i, v := range s.Vehicles {
		base := 3 + 6*i
		f[base] = 1
		f[base+1] = v.X
		f[base+2] = v.Y
		f[base+3] = v.W
		f[base+4] = v.H
		f[base+5] = v.X - s.Lane.CenterAt(v.Y)
	}
	return tensor.FromSlice(f, FeatureDim)
}

// Samples generates n labelled selector samples from the given traffic
// distribution.
func Samples(n int, cfg SceneConfig, seed uint64) []nn.Sample {
	r := rng.New(seed)
	out := make([]nn.Sample, n)
	for i := range out {
		s := GenScene(cfg, r)
		out[i] = nn.Sample{Input: s.Features(), Label: s.FrontCar}
	}
	return out
}
