package frontcar

import (
	"math"
	"testing"
	"testing/quick"

	"napmon/internal/core"
	"napmon/internal/nn"
	"napmon/internal/rng"
)

func TestLaneCenter(t *testing.T) {
	l := Lane{Offset: 0.1, Curvature: 0.2, HalfWidth: 0.1}
	if got := l.CenterAt(0); math.Abs(got-0.6) > 1e-12 {
		t.Fatalf("CenterAt(0) = %v", got)
	}
	if got := l.CenterAt(1); math.Abs(got-0.8) > 1e-12 {
		t.Fatalf("CenterAt(1) = %v", got)
	}
}

func TestLabelNearestInLane(t *testing.T) {
	s := Scene{
		Lane: Lane{HalfWidth: 0.1},
		Vehicles: []Vehicle{
			{X: 0.5, Y: 0.6}, // in lane, far
			{X: 0.5, Y: 0.3}, // in lane, near -> front car
			{X: 0.9, Y: 0.2}, // out of lane
		},
	}
	if got := s.label(); got != 1 {
		t.Fatalf("label = %d, want 1", got)
	}
}

func TestLabelNoFrontCar(t *testing.T) {
	s := Scene{Lane: Lane{HalfWidth: 0.05}}
	if got := s.label(); got != NoFrontCar {
		t.Fatalf("empty scene label = %d, want %d", got, NoFrontCar)
	}
	s.Vehicles = []Vehicle{{X: 0.95, Y: 0.5}}
	if got := s.label(); got != NoFrontCar {
		t.Fatalf("out-of-lane label = %d, want %d", got, NoFrontCar)
	}
}

// Property: the labelled front car is always laterally within the lane,
// and no in-lane vehicle is nearer.
func TestLabelProperty(t *testing.T) {
	cfg := DefaultSceneConfig()
	cfg.SensorNoise = 0 // noise is applied after labelling; disable for the check
	check := func(seed uint32) bool {
		s := GenScene(cfg, rng.New(uint64(seed)))
		if s.FrontCar == NoFrontCar {
			for _, v := range s.Vehicles {
				if math.Abs(v.X-s.Lane.CenterAt(v.Y)) <= s.Lane.HalfWidth {
					return false // an in-lane vehicle was ignored
				}
			}
			return true
		}
		fc := s.Vehicles[s.FrontCar]
		if math.Abs(fc.X-s.Lane.CenterAt(fc.Y)) > s.Lane.HalfWidth {
			return false
		}
		for _, v := range s.Vehicles {
			if math.Abs(v.X-s.Lane.CenterAt(v.Y)) <= s.Lane.HalfWidth && v.Y < fc.Y {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestFeaturesEncoding(t *testing.T) {
	s := Scene{
		Lane:     Lane{Offset: 0.1, Curvature: -0.2, HalfWidth: 0.12},
		Vehicles: []Vehicle{{X: 0.4, Y: 0.5, W: 0.1, H: 0.08}},
	}
	f := s.Features()
	if f.Len() != FeatureDim {
		t.Fatalf("feature length = %d", f.Len())
	}
	if f.Data()[0] != 0.1 || f.Data()[1] != -0.2 || f.Data()[2] != 0.12 {
		t.Fatal("lane features wrong")
	}
	if f.Data()[3] != 1 || f.Data()[4] != 0.4 {
		t.Fatal("vehicle slot 0 wrong")
	}
	// Slot 1 must be empty.
	for i := 9; i < 15; i++ {
		if f.Data()[i] != 0 {
			t.Fatal("empty slot not zeroed")
		}
	}
}

func TestSamplesDeterministic(t *testing.T) {
	a := Samples(50, DefaultSceneConfig(), 5)
	b := Samples(50, DefaultSceneConfig(), 5)
	for i := range a {
		if a[i].Label != b[i].Label {
			t.Fatal("labels differ across identical seeds")
		}
		for j := range a[i].Input.Data() {
			if a[i].Input.Data()[j] != b[i].Input.Data()[j] {
				t.Fatal("features differ across identical seeds")
			}
		}
	}
}

func TestSamplesLabelDistribution(t *testing.T) {
	samples := Samples(2000, DefaultSceneConfig(), 6)
	counts := make([]int, NumClasses)
	for _, s := range samples {
		counts[s.Label]++
	}
	// Every class must occur (front car in each slot and "#").
	for c, n := range counts {
		if n == 0 {
			t.Fatalf("class %d never generated: %v", c, counts)
		}
	}
}

func TestPipelineEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("training test skipped in -short mode")
	}
	cfg := TrainConfig{TrainScenes: 3000, Epochs: 30, Gamma: 1, Seed: 7}
	p, train, err := BuildPipeline(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if acc := nn.Accuracy(p.Selector, train); acc < 0.85 {
		t.Fatalf("selector train accuracy %v too low", acc)
	}
	val := Samples(800, DefaultSceneConfig(), 100)
	inDist := core.Evaluate(p.Selector, p.Monitor, val)

	shifted := Samples(800, ShiftedSceneConfig(), 101)
	outDist := core.Evaluate(p.Selector, p.Monitor, shifted)

	// The monitor must fire far more often under distribution shift.
	if outDist.OutOfPatternRate() <= inDist.OutOfPatternRate() {
		t.Fatalf("shifted out-of-pattern rate %.3f not above in-distribution %.3f",
			outDist.OutOfPatternRate(), inDist.OutOfPatternRate())
	}
	// And stay comparatively quiet in distribution.
	if inDist.OutOfPatternRate() > 0.5 {
		t.Fatalf("monitor fires on %.0f%% of in-distribution scenes — abstraction too fine",
			100*inDist.OutOfPatternRate())
	}
	// Decide agrees with Watch.
	r := rng.New(9)
	s := GenScene(DefaultSceneConfig(), r)
	v := p.Decide(&s)
	if v.Class < 0 || v.Class >= NumClasses {
		t.Fatalf("verdict class %d out of range", v.Class)
	}
}

func TestShiftedConfigDiffers(t *testing.T) {
	a, b := DefaultSceneConfig(), ShiftedSceneConfig()
	if a == b {
		t.Fatal("shifted config identical to default")
	}
	if b.MaxHalfWidth >= a.MinHalfWidth {
		t.Fatal("shifted lanes should be narrower than any training lane")
	}
}

func BenchmarkGenScene(b *testing.B) {
	cfg := DefaultSceneConfig()
	r := rng.New(1)
	for i := 0; i < b.N; i++ {
		GenScene(cfg, r)
	}
}
