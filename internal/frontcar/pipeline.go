package frontcar

import (
	"io"

	"napmon/internal/core"
	"napmon/internal/nn"
	"napmon/internal/rng"
)

// MonitoredLayer is the index of the selector's penultimate ReLU layer,
// whose activation pattern the monitor abstracts.
const MonitoredLayer = 3

// monitoredWidth is the width of the monitored layer.
const monitoredWidth = 24

// NewSelector builds the front-car selection network: a small
// fully-connected ReLU classifier over the scene features, mirroring the
// case study's "neural network-based classifier" that takes lane
// information and vehicle bounding boxes.
func NewSelector(seed uint64) *nn.Network {
	r := rng.New(seed)
	return nn.New(
		nn.NewDense(FeatureDim, 64, r), nn.NewReLU(),
		nn.NewDense(64, monitoredWidth, r), nn.NewReLU(), // MonitoredLayer = 3
		nn.NewDense(monitoredWidth, NumClasses, r),
	)
}

// Pipeline bundles the trained selector with its activation monitor — the
// deployable unit of Figure 3's front-car selection block.
type Pipeline struct {
	Selector *nn.Network
	Monitor  *core.Monitor
}

// TrainConfig sizes a pipeline training run.
type TrainConfig struct {
	TrainScenes int
	Epochs      int
	Gamma       int
	Seed        uint64
	Log         io.Writer
}

// DefaultTrainConfig trains on enough scenes for a high-accuracy selector.
func DefaultTrainConfig() TrainConfig {
	return TrainConfig{TrainScenes: 6000, Epochs: 30, Gamma: 1, Seed: 1}
}

// BuildPipeline trains a selector on simulated ordinary traffic and
// constructs its activation monitor per Algorithm 1.
func BuildPipeline(cfg TrainConfig) (*Pipeline, []nn.Sample, error) {
	train := Samples(cfg.TrainScenes, DefaultSceneConfig(), cfg.Seed)
	sel := NewSelector(cfg.Seed + 1)
	nn.Train(sel, train, nn.TrainConfig{
		Epochs:    cfg.Epochs,
		BatchSize: 32,
		LR:        0.05,
		LRDecay:   0.97,
		Seed:      cfg.Seed + 2,
		Log:       cfg.Log,
	})
	mon, err := core.Build(sel, train, core.Config{Layer: MonitoredLayer, Gamma: cfg.Gamma})
	if err != nil {
		return nil, nil, err
	}
	return &Pipeline{Selector: sel, Monitor: mon}, train, nil
}

// Decide runs the full pipeline on one scene: the selector classifies and
// the monitor reports whether the decision is supported by training data.
func (p *Pipeline) Decide(s *Scene) core.Verdict {
	return p.Monitor.Watch(p.Selector, s.Features())
}
