package exp

import (
	"fmt"
	"strings"

	"napmon/internal/core"
	"napmon/internal/frontcar"
	"napmon/internal/nn"
)

// FrontCarResult captures the Figure 3 case-study outcome: selector
// quality plus monitor behaviour on ordinary traffic versus a shifted
// traffic distribution.
type FrontCarResult struct {
	TrainAcc float64
	ValAcc   float64
	Gamma    int
	InDist   core.Metrics
	Shifted  core.Metrics
}

// FrontCarStudy trains the front-car selection pipeline on simulated
// ordinary traffic, builds its activation monitor, and evaluates both on
// held-out ordinary traffic and on the construction-zone shift.
func FrontCarStudy(opts Options) (*FrontCarResult, *frontcar.Pipeline, error) {
	cfg := frontcar.DefaultTrainConfig()
	cfg.TrainScenes = opts.scaled(cfg.TrainScenes)
	cfg.Seed = opts.Seed
	cfg.Log = opts.Log
	p, train, err := frontcar.BuildPipeline(cfg)
	if err != nil {
		return nil, nil, err
	}
	val := frontcar.Samples(opts.scaled(2000), frontcar.DefaultSceneConfig(), opts.Seed+100)
	shifted := frontcar.Samples(opts.scaled(2000), frontcar.ShiftedSceneConfig(), opts.Seed+101)
	res := &FrontCarResult{
		TrainAcc: nn.Accuracy(p.Selector, train),
		ValAcc:   nn.Accuracy(p.Selector, val),
		Gamma:    p.Monitor.Gamma(),
		InDist:   core.Evaluate(p.Selector, p.Monitor, val),
		Shifted:  core.Evaluate(p.Selector, p.Monitor, shifted),
	}
	return res, p, nil
}

// RenderFrontCar formats the case-study result.
func RenderFrontCar(r *FrontCarResult) string {
	var b strings.Builder
	b.WriteString("FIGURE 3 case study: front-car selection monitor\n")
	fmt.Fprintf(&b, "selector accuracy: train %.2f%%, validation %.2f%% (gamma=%d)\n",
		100*r.TrainAcc, 100*r.ValAcc, r.Gamma)
	fmt.Fprintf(&b, "ordinary traffic:  out-of-pattern %.2f%%  (misclassified among flagged: %.2f%%)\n",
		100*r.InDist.OutOfPatternRate(), 100*r.InDist.OutOfPatternPrecision())
	fmt.Fprintf(&b, "shifted traffic:   out-of-pattern %.2f%%  (distribution-shift indicator)\n",
		100*r.Shifted.OutOfPatternRate())
	return b.String()
}
