package exp

import (
	"fmt"
	"strings"

	"napmon/internal/core"
	"napmon/internal/nn"
)

// The online-phase experiment measures serve-while-retraining: a monitor
// is built from only part of the training patterns, frozen, and then the
// withheld patterns are streamed back in through the online updater
// (Monitor.UpdateBatch) in chunks — the epoch-swap path a production
// napmon uses to absorb newly observed activations without a serving
// gap. After every published epoch the validation set is re-evaluated,
// so the result traces how the detection (out-of-pattern) rate drifts as
// the comfort zones converge toward the full-build monitor.

// OnlinePoint is one epoch of the online phase.
type OnlinePoint struct {
	// Epoch is the serving epoch id the metrics were measured against
	// (1 = the freeze epoch, before any update).
	Epoch uint64
	// Absorbed is the cumulative number of patterns fed through the
	// updater up to this epoch.
	Absorbed int
	// Metrics is the validation-set evaluation at this epoch.
	Metrics core.Metrics
}

// OnlineResult is the outcome of the online-phase experiment.
type OnlineResult struct {
	Name  string
	Gamma int
	// HoldoutFrac is the fraction of the training set withheld from the
	// initial build and streamed in online.
	HoldoutFrac float64
	Points      []OnlinePoint
	// FullBuild is the reference: the validation metrics of a monitor
	// built from the entire training set in one shot at the same γ. The
	// final online point should converge to it (exactly, when every
	// withheld pattern has been absorbed — the updater's equivalence
	// property).
	FullBuild core.Metrics
}

// OnlineStudy runs the online-phase experiment on the Table I MNIST
// network: build on half the training set, then absorb the withheld
// half's activation patterns in `chunks` online updates, re-evaluating
// the validation set at every epoch.
func OnlineStudy(opts Options) (*OnlineResult, error) {
	return onlineStudy(opts, 2, 5)
}

func onlineStudy(opts Options, gamma, chunks int) (*OnlineResult, error) {
	m, err := TrainMNIST(opts)
	if err != nil {
		return nil, err
	}
	cfg := MNISTMonitorConfig(m)
	cfg.Gamma = gamma

	half := len(m.Data.Train) / 2
	build, holdout := m.Data.Train[:half], m.Data.Train[half:]

	mon, err := core.Build(m.Net, build, cfg)
	if err != nil {
		return nil, err
	}
	mon.Freeze()
	res := &OnlineResult{
		Name:        m.Name,
		Gamma:       gamma,
		HoldoutFrac: float64(len(holdout)) / float64(len(m.Data.Train)),
	}
	res.Points = append(res.Points, OnlinePoint{
		Epoch:   mon.Epoch(),
		Metrics: core.Evaluate(m.Net, mon, m.Data.Val),
	})

	absorbed := 0
	for i := 0; i < chunks; i++ {
		lo := i * len(holdout) / chunks
		hi := (i + 1) * len(holdout) / chunks
		delta := extractPatterns(m.Net, mon, holdout[lo:hi])
		n := 0
		for _, pats := range delta {
			n += len(pats)
		}
		if _, err := mon.UpdateBatch(delta); err != nil {
			return nil, err
		}
		absorbed += n
		res.Points = append(res.Points, OnlinePoint{
			Epoch:    mon.Epoch(),
			Absorbed: absorbed,
			Metrics:  core.Evaluate(m.Net, mon, m.Data.Val),
		})
	}

	full, err := core.Build(m.Net, m.Data.Train, cfg)
	if err != nil {
		return nil, err
	}
	res.FullBuild = core.Evaluate(m.Net, full, m.Data.Val)
	return res, nil
}

// extractPatterns replays Algorithm 1's recording rule over new samples:
// the activation pattern of every correctly classified sample, keyed by
// its ground-truth class — exactly the delta Monitor.UpdateBatch absorbs.
func extractPatterns(net *nn.Network, mon *core.Monitor, samples []nn.Sample) map[int][]core.Pattern {
	type obs struct {
		pred    int
		pattern core.Pattern
	}
	layer := mon.Config().Layer
	neurons := mon.Neurons()
	results := nn.ParallelMap(net, samples, func(w *nn.Network, s nn.Sample) obs {
		logits, acts := w.ForwardCapture(s.Input, layer)
		return obs{pred: logits.ArgMax(), pattern: core.PatternOfSubset(acts, neurons)}
	})
	delta := make(map[int][]core.Pattern)
	for i, r := range results {
		if r.pred != samples[i].Label {
			continue
		}
		if mon.Zone(samples[i].Label) == nil {
			continue
		}
		delta[samples[i].Label] = append(delta[samples[i].Label], r.pattern)
	}
	return delta
}

// RenderOnline formats the drift trace: out-of-pattern rate per epoch as
// zones absorb the held-out patterns, against the full-build reference.
func RenderOnline(res *OnlineResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "ONLINE PHASE: %s monitor, gamma=%d, %.0f%% of training patterns streamed in online\n",
		res.Name, res.Gamma, 100*res.HoldoutFrac)
	b.WriteString("epoch  absorbed  out-of-pattern/total  misclassified|out-of-pattern\n")
	for _, p := range res.Points {
		fmt.Fprintf(&b, "%-6d %-9d %-21s %s\n",
			p.Epoch, p.Absorbed,
			fmt.Sprintf("%.2f%%", 100*p.Metrics.OutOfPatternRate()),
			fmt.Sprintf("%.2f%%", 100*p.Metrics.OutOfPatternPrecision()))
	}
	fmt.Fprintf(&b, "full   (one-shot) %-21s %s\n",
		fmt.Sprintf("%.2f%%", 100*res.FullBuild.OutOfPatternRate()),
		fmt.Sprintf("%.2f%%", 100*res.FullBuild.OutOfPatternPrecision()))
	return b.String()
}
