package exp

import (
	"fmt"
	"strings"

	"napmon/internal/core"
	"napmon/internal/dataset"
	"napmon/internal/nn"
)

// Table1Row is one row of the paper's Table I.
type Table1Row struct {
	ID       int
	Name     string
	Arch     string
	TrainAcc float64
	ValAcc   float64
}

// Table1Rows derives Table I from trained models.
func Table1Rows(models ...*Model) []Table1Row {
	rows := make([]Table1Row, len(models))
	for i, m := range models {
		rows[i] = Table1Row{
			ID:       m.ID,
			Name:     m.Name,
			Arch:     m.ArchString(),
			TrainAcc: m.TrainAcc,
			ValAcc:   m.ValAcc,
		}
	}
	return rows
}

// RenderTable1 formats Table I like the paper.
func RenderTable1(rows []Table1Row) string {
	var b strings.Builder
	b.WriteString("TABLE I: architectures and accuracies (train/validation)\n")
	for _, r := range rows {
		fmt.Fprintf(&b, "%d  %-6s %s\n     accuracy %.2f%% / %.2f%%\n",
			r.ID, r.Name, r.Arch, 100*r.TrainAcc, 100*r.ValAcc)
	}
	return b.String()
}

// Table2Row is one γ row of the paper's Table II.
type Table2Row struct {
	ID      int
	Gamma   int
	Metrics core.Metrics
}

// MNISTMonitorConfig returns the paper's monitor configuration for network
// 1: the ReLU(fc(40)) layer, all classes, all 40 neurons.
func MNISTMonitorConfig(m *Model) core.Config {
	return core.Config{Layer: m.MonitorLayer}
}

// GTSRBMonitorConfig returns the paper's monitor configuration for network
// 2: the ReLU(fc(84)) layer, stop-sign class only (c = 14), and 25% of the
// 84 neurons chosen by gradient-based sensitivity analysis. Because the
// monitored layer feeds the linear output layer directly, the gradients
// are the output weights (the paper's special case).
func GTSRBMonitorConfig(m *Model) (core.Config, error) {
	out, ok := m.Net.Layer(m.Net.NumLayers() - 1).(*nn.Dense)
	if !ok {
		return core.Config{}, fmt.Errorf("exp: network 2 output layer is not dense")
	}
	neurons, err := core.SelectNeuronsByWeight(out, dataset.StopSignClass, 0.25)
	if err != nil {
		return core.Config{}, err
	}
	return core.Config{
		Layer:   m.MonitorLayer,
		Classes: []int{dataset.StopSignClass},
		Neurons: neurons,
	}, nil
}

// Table2ForModel builds the model's monitor per the paper's configuration
// and sweeps γ over the given levels, returning one row per level.
func Table2ForModel(m *Model, gammas []int) ([]Table2Row, *core.Monitor, error) {
	var cfg core.Config
	var err error
	switch m.ID {
	case 1:
		cfg = MNISTMonitorConfig(m)
	case 2:
		cfg, err = GTSRBMonitorConfig(m)
		if err != nil {
			return nil, nil, err
		}
	default:
		return nil, nil, fmt.Errorf("exp: unknown model id %d", m.ID)
	}
	mon, err := core.Build(m.Net, m.Data.Train, cfg)
	if err != nil {
		return nil, nil, err
	}
	metrics := core.GammaSweep(m.Net, mon, m.Data.Val, gammas)
	rows := make([]Table2Row, len(gammas))
	for i, g := range gammas {
		rows[i] = Table2Row{ID: m.ID, Gamma: g, Metrics: metrics[i]}
	}
	return rows, mon, nil
}

// RenderTable2 formats rows like the paper's Table II.
func RenderTable2(rows []Table2Row) string {
	var b strings.Builder
	b.WriteString("TABLE II: runtime neuron activation monitoring\n")
	b.WriteString("ID  misclass.rate  gamma  out-of-pattern/total  misclassified|out-of-pattern\n")
	lastID := -1
	for _, r := range rows {
		mis := ""
		if r.ID != lastID {
			mis = fmt.Sprintf("%.2f%%", 100*r.Metrics.MisclassificationRate())
			lastID = r.ID
		}
		fmt.Fprintf(&b, "%-3d %-14s %-6d %-21s %s\n",
			r.ID, mis, r.Gamma,
			fmt.Sprintf("%.2f%%", 100*r.Metrics.OutOfPatternRate()),
			fmt.Sprintf("%.2f%%", 100*r.Metrics.OutOfPatternPrecision()))
	}
	return b.String()
}

// Figure2Point is one point of the coarseness sweep: how the out-of-
// pattern rate falls from "everything unseen" (α1, no generalization)
// toward "nothing unseen" (α3, over-generalization) as γ grows.
type Figure2Point struct {
	Gamma     int
	OutRate   float64
	Precision float64
	// ZonePatterns is the total pattern count across zones (abstraction
	// size).
	ZonePatterns float64
}

// Figure2Sweep sweeps γ from 0 to maxGamma on the model's Table II monitor
// and records the trajectory between the two useless extremes of Figure 2.
// A frozen monitor (one that has already served) is swept by publishing
// each level as a new epoch, mirroring core.GammaSweep.
func Figure2Sweep(m *Model, mon *core.Monitor, maxGamma int) []Figure2Point {
	pts := make([]Figure2Point, 0, maxGamma+1)
	for g := 0; g <= maxGamma; g++ {
		var err error
		if mon.Frozen() {
			_, err = mon.UpdateGamma(g)
		} else {
			err = mon.SetGamma(g)
		}
		if err != nil {
			panic(err) // unreachable for the swept non-negative levels
		}
		met := core.Evaluate(m.Net, mon, m.Data.Val)
		total := 0.0
		for _, c := range mon.Classes() {
			total += mon.Zone(c).PatternCount()
		}
		pts = append(pts, Figure2Point{
			Gamma:        g,
			OutRate:      met.OutOfPatternRate(),
			Precision:    met.OutOfPatternPrecision(),
			ZonePatterns: total,
		})
	}
	return pts
}

// RenderFigure2 draws the sweep as an ASCII chart of out-of-pattern rate
// versus γ, annotating the no-generalization and over-generalization ends.
func RenderFigure2(pts []Figure2Point) string {
	var b strings.Builder
	b.WriteString("FIGURE 2: coarseness of abstraction (out-of-pattern rate vs gamma)\n")
	for _, p := range pts {
		bar := strings.Repeat("#", int(p.OutRate*50+0.5))
		note := ""
		if p.Gamma == 0 {
			note = "  <- alpha_1: finest (no generalization)"
		}
		if p.OutRate == 0 {
			note = "  <- alpha_3: over-generalization (monitor silent)"
		}
		fmt.Fprintf(&b, "gamma %2d  %6.2f%%  |%-50s|%s\n", p.Gamma, 100*p.OutRate, bar, note)
	}
	return b.String()
}
