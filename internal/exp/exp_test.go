package exp

import (
	"strings"
	"sync"
	"testing"

	"napmon/internal/core"
	"napmon/internal/dataset"
	"napmon/internal/nn"
	"napmon/internal/rng"
	"napmon/internal/tensor"
)

func TestMNISTNetSpecsShape(t *testing.T) {
	specs, layer := MNISTNetSpecs()
	net, err := nn.Build(specs, rng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	x := tensor.New(1, dataset.MNISTImageSize, dataset.MNISTImageSize)
	logits, captured := net.ForwardCapture(x, layer)
	if logits.Len() != 10 {
		t.Fatalf("logits length = %d, want 10", logits.Len())
	}
	if captured.Len() != 40 {
		t.Fatalf("monitored layer width = %d, want 40 (ReLU(fc(40)))", captured.Len())
	}
	// The monitored layer must be a ReLU, per the paper.
	if _, ok := net.Layer(layer).(*nn.ReLU); !ok {
		t.Fatalf("monitored layer %d is %T, want *nn.ReLU", layer, net.Layer(layer))
	}
}

func TestGTSRBNetSpecsShape(t *testing.T) {
	specs, layer := GTSRBNetSpecs()
	net, err := nn.Build(specs, rng.New(2))
	if err != nil {
		t.Fatal(err)
	}
	x := tensor.New(3, dataset.GTSRBImageSize, dataset.GTSRBImageSize)
	logits, captured := net.ForwardCapture(x, layer)
	if logits.Len() != 43 {
		t.Fatalf("logits length = %d, want 43", logits.Len())
	}
	if captured.Len() != 84 {
		t.Fatalf("monitored layer width = %d, want 84 (ReLU(fc(84)))", captured.Len())
	}
	if _, ok := net.Layer(layer).(*nn.ReLU); !ok {
		t.Fatalf("monitored layer %d is %T, want *nn.ReLU", layer, net.Layer(layer))
	}
}

func TestOptionsScaled(t *testing.T) {
	o := Options{Scale: 0.5}
	if got := o.scaled(100); got != 50 {
		t.Fatalf("scaled(100) = %d", got)
	}
	if got := o.scaled(1); got != 1 {
		t.Fatalf("scaled floor broken: %d", got)
	}
	o.Scale = 0 // unset means full
	if got := o.scaled(100); got != 100 {
		t.Fatalf("scaled with zero Scale = %d", got)
	}
}

// tinyModels trains both networks once at a very small scale, shared
// across the tests below.
var (
	tinyOnce       sync.Once
	tinyM1, tinyM2 *Model
	tinyErr        error
)

func tinyModels(t *testing.T) (*Model, *Model) {
	t.Helper()
	if testing.Short() {
		t.Skip("training test skipped in -short mode")
	}
	tinyOnce.Do(func() {
		opts := Options{Scale: 0.06, Seed: 3}
		tinyM1, tinyErr = TrainMNIST(opts)
		if tinyErr != nil {
			return
		}
		tinyM2, tinyErr = TrainGTSRB(opts)
	})
	if tinyErr != nil {
		t.Fatal(tinyErr)
	}
	return tinyM1, tinyM2
}

func TestTable1RowsAndRender(t *testing.T) {
	m1, m2 := tinyModels(t)
	rows := Table1Rows(m1, m2)
	if len(rows) != 2 || rows[0].ID != 1 || rows[1].ID != 2 {
		t.Fatalf("rows = %+v", rows)
	}
	out := RenderTable1(rows)
	for _, frag := range []string{"TABLE I", "MNIST", "GTSRB", "conv(40)", "fc(43)"} {
		if !strings.Contains(out, frag) {
			t.Fatalf("Table I output missing %q:\n%s", frag, out)
		}
	}
}

func TestTable2MNIST(t *testing.T) {
	m1, _ := tinyModels(t)
	rows, mon, err := Table2ForModel(m1, []int{0, 1, 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("got %d rows", len(rows))
	}
	// Column 4 (out-of-pattern rate) must be non-increasing in gamma.
	for i := 1; i < len(rows); i++ {
		if rows[i].Metrics.OutOfPattern > rows[i-1].Metrics.OutOfPattern {
			t.Fatalf("out-of-pattern counts not monotone: %+v", rows)
		}
	}
	// All 10 classes monitored: watched == total.
	if rows[0].Metrics.Watched != rows[0].Metrics.Total {
		t.Fatal("MNIST monitor must watch every class")
	}
	if mon.Gamma() != 2 {
		t.Fatalf("monitor left at gamma %d, want 2", mon.Gamma())
	}
	out := RenderTable2(rows)
	if !strings.Contains(out, "TABLE II") || !strings.Contains(out, "gamma") {
		t.Fatalf("Table II render malformed:\n%s", out)
	}
}

func TestTable2GTSRBStopSignOnly(t *testing.T) {
	_, m2 := tinyModels(t)
	rows, mon, err := Table2ForModel(m2, []int{0, 1})
	if err != nil {
		t.Fatal(err)
	}
	classes := mon.Classes()
	if len(classes) != 1 || classes[0] != dataset.StopSignClass {
		t.Fatalf("monitored classes = %v, want [14]", classes)
	}
	if got := len(mon.Neurons()); got != 21 { // ceil(0.25 * 84)
		t.Fatalf("monitored neurons = %d, want 21", got)
	}
	// Only stop-sign-predicted images are watched.
	if rows[0].Metrics.Watched > rows[0].Metrics.Total {
		t.Fatal("watched exceeds total")
	}
}

func TestFigure2SweepShape(t *testing.T) {
	m1, _ := tinyModels(t)
	mon, err := core.Build(m1.Net, m1.Data.Train, MNISTMonitorConfig(m1))
	if err != nil {
		t.Fatal(err)
	}
	pts := Figure2Sweep(m1, mon, 6)
	if len(pts) != 7 {
		t.Fatalf("got %d points", len(pts))
	}
	for i := 1; i < len(pts); i++ {
		if pts[i].OutRate > pts[i-1].OutRate {
			t.Fatal("out-of-pattern rate increased with gamma")
		}
		if pts[i].ZonePatterns < pts[i-1].ZonePatterns {
			t.Fatal("zone size shrank with gamma")
		}
	}
	out := RenderFigure2(pts)
	if !strings.Contains(out, "FIGURE 2") || !strings.Contains(out, "alpha_1") {
		t.Fatalf("Figure 2 render malformed:\n%s", out)
	}
}

func TestFrontCarStudySmall(t *testing.T) {
	if testing.Short() {
		t.Skip("training test skipped in -short mode")
	}
	res, p, err := FrontCarStudy(Options{Scale: 0.15, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if p == nil || res == nil {
		t.Fatal("nil result")
	}
	if res.Shifted.OutOfPatternRate() <= res.InDist.OutOfPatternRate() {
		t.Fatalf("shift not detected: in %.3f vs shifted %.3f",
			res.InDist.OutOfPatternRate(), res.Shifted.OutOfPatternRate())
	}
	out := RenderFrontCar(res)
	if !strings.Contains(out, "FIGURE 3") || !strings.Contains(out, "shifted traffic") {
		t.Fatalf("front-car render malformed:\n%s", out)
	}
}

// TestOnlineStudySmall smoke-runs the online-phase experiment at reduced
// scale: the drift trace must start at the freeze epoch, advance one
// epoch per chunk, absorb a growing pattern count, and — by the
// updater's equivalence property — land exactly on the one-shot
// full-build reference.
func TestOnlineStudySmall(t *testing.T) {
	if testing.Short() {
		t.Skip("training test skipped in -short mode")
	}
	res, err := onlineStudy(Options{Scale: 0.1, Seed: 6}, 1, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != 4 { // freeze + 3 chunks
		t.Fatalf("got %d points, want 4", len(res.Points))
	}
	for i, p := range res.Points {
		if p.Epoch != uint64(i+1) {
			t.Fatalf("point %d has epoch %d, want %d", i, p.Epoch, i+1)
		}
		if i > 0 && p.Absorbed < res.Points[i-1].Absorbed {
			t.Fatalf("absorbed count shrank at point %d", i)
		}
	}
	last := res.Points[len(res.Points)-1].Metrics
	if last.OutOfPattern != res.FullBuild.OutOfPattern || last.Watched != res.FullBuild.Watched {
		t.Fatalf("online trace did not converge to the full build: %+v vs %+v",
			last, res.FullBuild)
	}
	out := RenderOnline(res)
	if !strings.Contains(out, "ONLINE PHASE") || !strings.Contains(out, "one-shot") {
		t.Fatalf("online render malformed:\n%s", out)
	}
}
