// Package exp contains the experiment drivers that regenerate every table
// and figure of the paper's evaluation. The cmd/ binaries and the
// top-level benchmarks are thin wrappers around this package, so full runs
// and scaled-down smoke runs share one code path. See DESIGN.md for the
// experiment index.
package exp

import (
	"fmt"
	"io"

	"napmon/internal/dataset"
	"napmon/internal/nn"
	"napmon/internal/rng"
)

// Options sizes an experiment run. Scale 1 is the full configuration the
// numbers in EXPERIMENTS.md were produced with; smaller scales shrink the
// datasets and epochs proportionally for quick runs and benchmarks.
type Options struct {
	Scale float64
	Seed  uint64
	// Log receives training progress lines; nil silences them.
	Log io.Writer
}

// DefaultOptions returns the full-scale configuration.
func DefaultOptions() Options { return Options{Scale: 1, Seed: 1} }

func (o Options) scaled(n int) int {
	if o.Scale <= 0 {
		return n
	}
	v := int(float64(n) * o.Scale)
	if v < 1 {
		v = 1
	}
	return v
}

// Model bundles a trained network with its dataset and the metadata the
// monitor experiments need.
type Model struct {
	// ID matches the paper's Table I network numbering (1 = MNIST,
	// 2 = GTSRB).
	ID   int
	Name string
	Net  *nn.Network
	Data dataset.Dataset
	// MonitorLayer is the index of the bold layer of Table I (the
	// ReLU whose pattern is monitored).
	MonitorLayer int
	TrainAcc     float64
	ValAcc       float64
}

// MNISTNetSpecs returns the paper's network 1 architecture:
// ReLU(Conv(40)), MaxPool, ReLU(Conv(20)), MaxPool, ReLU(fc(320)),
// ReLU(fc(160)), ReLU(fc(80)), ReLU(fc(40)) [monitored], fc(10).
// Kernel size (5,5), stride (1,1), 2×2 max pooling.
func MNISTNetSpecs() (specs []nn.Spec, monitorLayer int) {
	specs = []nn.Spec{
		{Kind: nn.KindConv, Out: 40, InC: 1, KH: 5, KW: 5, Stride: 1},
		{Kind: nn.KindReLU},
		{Kind: nn.KindMaxPool, Size: 2},
		{Kind: nn.KindConv, Out: 20, InC: 40, KH: 5, KW: 5, Stride: 1},
		{Kind: nn.KindReLU},
		{Kind: nn.KindMaxPool, Size: 2},
		{Kind: nn.KindFlatten},
		{Kind: nn.KindDense, In: 320, Out: 320},
		{Kind: nn.KindReLU},
		{Kind: nn.KindDense, In: 320, Out: 160},
		{Kind: nn.KindReLU},
		{Kind: nn.KindDense, In: 160, Out: 80},
		{Kind: nn.KindReLU},
		{Kind: nn.KindDense, In: 80, Out: 40},
		{Kind: nn.KindReLU}, // monitored: ReLU(fc(40))
		{Kind: nn.KindDense, In: 40, Out: 10},
	}
	return specs, 14
}

// GTSRBNetSpecs returns the paper's network 2 architecture:
// ReLU(BN(Conv(40))), MaxPool, ReLU(BN(Conv(20))), MaxPool,
// ReLU(fc(240)), ReLU(fc(84)) [monitored], fc(43).
func GTSRBNetSpecs() (specs []nn.Spec, monitorLayer int) {
	specs = []nn.Spec{
		{Kind: nn.KindConv, Out: 40, InC: 3, KH: 5, KW: 5, Stride: 1},
		{Kind: nn.KindBN, Ch: 40},
		{Kind: nn.KindReLU},
		{Kind: nn.KindMaxPool, Size: 2},
		{Kind: nn.KindConv, Out: 20, InC: 40, KH: 5, KW: 5, Stride: 1},
		{Kind: nn.KindBN, Ch: 20},
		{Kind: nn.KindReLU},
		{Kind: nn.KindMaxPool, Size: 2},
		{Kind: nn.KindFlatten},
		{Kind: nn.KindDense, In: 500, Out: 240},
		{Kind: nn.KindReLU},
		{Kind: nn.KindDense, In: 240, Out: 84},
		{Kind: nn.KindReLU}, // monitored: ReLU(fc(84))
		{Kind: nn.KindDense, In: 84, Out: 43},
	}
	return specs, 12
}

// TrainMNIST trains network 1 on the MNIST-like dataset.
func TrainMNIST(opts Options) (*Model, error) {
	specs, layer := MNISTNetSpecs()
	net, err := nn.Build(specs, rng.New(opts.Seed))
	if err != nil {
		return nil, err
	}
	ds := dataset.MNISTLike(opts.scaled(3000), opts.scaled(1500), opts.Seed+10)
	nn.Train(net, ds.Train, nn.TrainConfig{
		Epochs:    5,
		BatchSize: 32,
		LR:        0.02,
		LRDecay:   0.85,
		Seed:      opts.Seed + 20,
		Log:       opts.Log,
	})
	m := &Model{ID: 1, Name: "MNIST", Net: net, Data: ds, MonitorLayer: layer}
	m.TrainAcc = nn.Accuracy(net, ds.Train)
	m.ValAcc = nn.Accuracy(net, ds.Val)
	return m, nil
}

// TrainGTSRB trains network 2 on the GTSRB-like dataset.
func TrainGTSRB(opts Options) (*Model, error) {
	specs, layer := GTSRBNetSpecs()
	net, err := nn.Build(specs, rng.New(opts.Seed+1))
	if err != nil {
		return nil, err
	}
	ds := dataset.GTSRBLike(opts.scaled(4300), opts.scaled(2150), opts.Seed+11)
	nn.Train(net, ds.Train, nn.TrainConfig{
		Epochs:    12,
		BatchSize: 32,
		LR:        0.03,
		LRDecay:   0.93,
		Seed:      opts.Seed + 21,
		Log:       opts.Log,
	})
	m := &Model{ID: 2, Name: "GTSRB", Net: net, Data: ds, MonitorLayer: layer}
	m.TrainAcc = nn.Accuracy(net, ds.Train)
	m.ValAcc = nn.Accuracy(net, ds.Val)
	return m, nil
}

// ArchString renders the model architecture like the paper's Table I.
func (m *Model) ArchString() string {
	return fmt.Sprintf("%v", m.Net)
}
