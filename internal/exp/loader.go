package exp

import (
	"errors"
	"fmt"
	"os"
	"strconv"
	"strings"

	"napmon/internal/core"
	"napmon/internal/nn"
	"napmon/internal/tensor"
)

// This file holds the model/monitor resolution shared by the serving
// daemons (cmd/napmon-serve, cmd/napmon-gateway): both need the same
// "load files or self-train a Table I network" startup path, the same
// -shape flag parsing, and the same startup probe that turns a
// shape/model mismatch into a clean error instead of a panic inside a
// serving lane.

// InputShape resolves the input shape a daemon should accept: the
// -shape flag value when given (e.g. "1,28,28"), otherwise the
// dataset's native shape.
func InputShape(flagVal, ds string) ([]int, error) {
	if flagVal != "" {
		parts := strings.Split(flagVal, ",")
		shape := make([]int, len(parts))
		for i, p := range parts {
			d, err := strconv.Atoi(strings.TrimSpace(p))
			if err != nil || d <= 0 {
				return nil, fmt.Errorf("bad -shape %q: dimensions must be positive integers", flagVal)
			}
			shape[i] = d
		}
		return shape, nil
	}
	switch ds {
	case "mnist":
		return []int{1, 28, 28}, nil
	case "gtsrb":
		return []int{3, 32, 32}, nil
	default:
		return nil, fmt.Errorf("unknown dataset %q (want mnist or gtsrb)", ds)
	}
}

// ProbeShape runs one forward pass of a zero tensor with the gate shape
// through the model at startup. The tensor kernels panic on mismatched
// shapes; catching that here turns a -shape/-dataset flag that does not
// match the loaded model into a clean startup error, instead of a gate
// that rejects every valid request and lets a conformant-but-wrong one
// panic inside a serving lane.
func ProbeShape(net *nn.Network, shape []int) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("input shape %v incompatible with the model: %v (set -shape or -dataset to the model's input shape)", shape, r)
		}
	}()
	net.Forward(tensor.New(shape...))
	return nil
}

// LoadOrTrain resolves the model and monitor either from files written
// by napmon-train, or by training one of the Table I networks
// in-process at a reduced scale. logf (nil to silence) receives
// progress lines in log.Printf style.
func LoadOrTrain(modelPath, monitorPath string, selftrain float64, ds string, seed uint64, gamma int, logf func(string, ...any)) (*nn.Network, *core.Monitor, error) {
	if logf == nil {
		logf = func(string, ...any) {}
	}
	switch {
	case modelPath != "" && monitorPath != "":
		net, err := nn.LoadFile(modelPath)
		if err != nil {
			return nil, nil, err
		}
		mon, err := core.LoadFile(monitorPath)
		if err != nil {
			return nil, nil, err
		}
		return net, mon, nil
	case selftrain > 0:
		opts := Options{Scale: selftrain, Seed: seed, Log: os.Stderr}
		var (
			m   *Model
			err error
		)
		switch ds {
		case "mnist":
			m, err = TrainMNIST(opts)
		case "gtsrb":
			m, err = TrainGTSRB(opts)
		default:
			return nil, nil, fmt.Errorf("unknown dataset %q (want mnist or gtsrb)", ds)
		}
		if err != nil {
			return nil, nil, err
		}
		logf("self-trained %s (scale %.2f): train %.1f%%, val %.1f%%",
			m.Name, selftrain, 100*m.TrainAcc, 100*m.ValAcc)
		rows, mon, err := Table2ForModel(m, []int{gamma})
		if err != nil {
			return nil, nil, err
		}
		logf("monitor built (gamma=%d): out-of-pattern %.1f%% on validation",
			gamma, 100*rows[0].Metrics.OutOfPatternRate())
		return m.Net, mon, nil
	default:
		return nil, nil, errors.New("need either -model and -monitor, or -selftrain > 0")
	}
}
