package exp

import (
	"fmt"

	"napmon/internal/core"
	"napmon/internal/tensor"
)

// Monitor aliases core.Monitor so the experiment binaries can hold
// monitors without importing internal/core directly.
type Monitor = core.Monitor

// VerifyCompiledServing freezes the monitor and asserts, for every
// validation input, that the batched serving path — compiled query
// plans, membership grouped per predicted class — agrees with both the
// per-sample Watch path and the interpreted BDD walk (EvalBits on the
// zone's root) on the same extracted pattern. The experiment driver
// runs it after each Table II monitor so a full-scale sweep proves the
// compiled engine bit-equivalent on real traffic instead of eyeballing
// rates. Returns the number of inputs checked.
func VerifyCompiledServing(m *Model, mon *core.Monitor) (int, error) {
	mon.Freeze()
	inputs := make([]*tensor.Tensor, len(m.Data.Val))
	for i, s := range m.Data.Val {
		inputs[i] = s.Input
	}
	batch := mon.WatchBatch(m.Net, inputs)
	for i, v := range batch {
		single := mon.Watch(m.Net, inputs[i])
		if v.Class != single.Class || v.Monitored != single.Monitored ||
			v.OutOfPattern != single.OutOfPattern || v.Pattern.String() != single.Pattern.String() {
			return i, fmt.Errorf("exp: input %d: batched verdict %+v != per-sample verdict %+v", i, v, single)
		}
		if !v.Monitored {
			continue
		}
		z := mon.Zone(v.Class)
		interpreted := z.Manager().EvalBits(z.Root(), v.Pattern)
		if v.OutOfPattern == interpreted {
			return i, fmt.Errorf("exp: input %d class %d: compiled out-of-pattern=%v, interpreted membership=%v",
				i, v.Class, v.OutOfPattern, interpreted)
		}
	}
	return len(batch), nil
}
