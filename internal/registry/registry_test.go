package registry

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"napmon/internal/core"
	"napmon/internal/nn"
	"napmon/internal/obs"
	"napmon/internal/rng"
	"napmon/internal/serve"
	"napmon/internal/tensor"
)

// tenantParts builds a tiny untrained serving stack — lifecycle tests
// care about pinning and drain order, not verdict quality, so skipping
// training keeps the race-detector runs fast.
func tenantParts(t testing.TB, seed uint64) (*nn.Network, *core.Monitor, []*tensor.Tensor) {
	t.Helper()
	r := rng.New(seed)
	net := nn.New(
		nn.NewDense(4, 8, r), nn.NewReLU(), // monitored layer: index 1
		nn.NewDense(8, 3, r),
	)
	samples := make([]nn.Sample, 0, 30)
	inputs := make([]*tensor.Tensor, 0, 30)
	for i := 0; i < 30; i++ {
		x := tensor.New(4)
		for j := range x.Data() {
			x.Data()[j] = r.NormScaled(0, 1)
		}
		samples = append(samples, nn.Sample{Input: x, Label: i % 3})
		inputs = append(inputs, x)
	}
	mon, err := core.Build(net, samples, core.Config{Layer: 1, Gamma: 1})
	if err != nil {
		t.Fatal(err)
	}
	return net, mon, inputs
}

func load(t testing.TB, r *Registry, name string, seed uint64) (*Tenant, []*tensor.Tensor) {
	t.Helper()
	net, mon, inputs := tenantParts(t, seed)
	tn, err := r.Load(name, TenantConfig{Net: net, Mon: mon, Serve: serve.Config{
		MaxBatch: 8, MaxDelay: 200 * time.Microsecond, QueueDepth: 256,
	}})
	if err != nil {
		t.Fatal(err)
	}
	return tn, inputs
}

// learnDelta derives a deterministic single-class delta whose patterns
// match the monitored layer's width.
func learnDelta(width int, seed uint64) map[int][]core.Pattern {
	p := make(core.Pattern, width)
	s := seed
	for i := range p {
		s = s*6364136223846793005 + 1442695040888963407
		p[i] = s>>63 == 1
	}
	return map[int][]core.Pattern{int(seed % 3): {p}}
}

func TestRegistryLifecycle(t *testing.T) {
	r := New(Config{})
	a, _ := load(t, r, "alpha", 1)
	b, _ := load(t, r, "beta", 2)
	if a.ID() == b.ID() {
		t.Fatalf("tenants share id %d", a.ID())
	}
	if got := r.Names(); len(got) != 2 || got[0] != "alpha" || got[1] != "beta" {
		t.Fatalf("Names() = %v", got)
	}
	if _, err := r.Load("alpha", TenantConfig{}); !errors.Is(err, ErrExists) {
		t.Fatalf("duplicate load: %v", err)
	}
	for _, bad := range []string{"", "a/b", ".hidden", "-dash", strings.Repeat("x", 65)} {
		if _, err := r.Load(bad, TenantConfig{}); err == nil {
			t.Fatalf("invalid name %q accepted", bad)
		}
	}

	got, err := r.Acquire("alpha")
	if err != nil {
		t.Fatal(err)
	}
	if got != a {
		t.Fatal("Acquire returned a different tenant")
	}
	got.Release()
	byID, err := r.AcquireID(b.ID())
	if err != nil {
		t.Fatal(err)
	}
	if byID != b {
		t.Fatal("AcquireID returned a different tenant")
	}
	byID.Release()
	if _, err := r.Acquire("nope"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("missing tenant: %v", err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	gen := r.Generation()
	oldID := a.ID()
	if err := r.Unload(ctx, "alpha"); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Acquire("alpha"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("unloaded tenant still acquirable: %v", err)
	}
	if r.Generation() <= gen {
		t.Fatal("generation did not advance on unload")
	}
	// Ids are sticky across reload: the wire id keeps meaning the same
	// name for the lifetime of the process. Incarnations are the
	// opposite — every load gets a fresh, strictly larger one, so a
	// replication follower can detect the reload (epochs restart with
	// it) and re-snapshot instead of polling epochs that never come.
	a2, _ := load(t, r, "alpha", 3)
	if a2.ID() != oldID {
		t.Fatalf("reloaded tenant id %d, want sticky %d", a2.ID(), oldID)
	}
	if a2.Incarnation() <= a.Incarnation() {
		t.Fatalf("reloaded incarnation %d not after original %d", a2.Incarnation(), a.Incarnation())
	}

	if err := r.Close(ctx); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Load("gamma", TenantConfig{}); !errors.Is(err, ErrClosed) {
		t.Fatalf("load after close: %v", err)
	}
	if r.Len() != 0 {
		t.Fatalf("%d tenants after close", r.Len())
	}
}

// TestRegistryConcurrentChurn is the tentpole's lifecycle guarantee
// under the race detector: watch traffic flows across three tenants
// while one of them is repeatedly unloaded and reloaded and the others
// absorb learn updates. A successful Acquire must mean every in-flight
// request completes — zero drops — and per-tenant epochs must move
// strictly monotonically.
func TestRegistryConcurrentChurn(t *testing.T) {
	r := New(Config{Grace: 30 * time.Second})
	names := []string{"churn", "steady-a", "steady-b"}
	inputsByName := make(map[string][]*tensor.Tensor)
	for i, name := range names {
		_, inputs := load(t, r, name, uint64(i+1))
		inputsByName[name] = inputs
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup
	var served atomic.Uint64
	fail := func(format string, args ...any) {
		select {
		case <-stop:
		default:
			t.Errorf(format, args...)
		}
	}

	// Watch workers: two per tenant, pin → submit → wait → release.
	for _, name := range names {
		for w := 0; w < 2; w++ {
			wg.Add(1)
			go func(name string, w int) {
				defer wg.Done()
				inputs := inputsByName[name]
				for i := 0; ; i++ {
					select {
					case <-stop:
						return
					default:
					}
					tn, err := r.Acquire(name)
					if err != nil {
						// The churn tenant is allowed to be absent
						// between unload and reload; the steady ones
						// are not.
						if name != "churn" {
							fail("Acquire(%s): %v", name, err)
							return
						}
						time.Sleep(100 * time.Microsecond)
						continue
					}
					fut, err := tn.Server().Submit(inputs[(i*2+w)%len(inputs)])
					if err != nil {
						fail("Submit on pinned %s: %v", name, err)
						tn.Release()
						return
					}
					if _, err := fut.Wait(); err != nil {
						fail("pinned %s dropped an in-flight request: %v", name, err)
						tn.Release()
						return
					}
					served.Add(1)
					tn.Release()
				}
			}(name, w)
		}
	}

	// Learner: streams deltas into the steady tenants, checking epoch
	// monotonicity.
	wg.Add(1)
	go func() {
		defer wg.Done()
		last := map[string]uint64{}
		for seed := uint64(100); ; seed++ {
			select {
			case <-stop:
				return
			default:
			}
			for _, name := range []string{"steady-a", "steady-b"} {
				tn, err := r.Acquire(name)
				if err != nil {
					fail("learner Acquire(%s): %v", name, err)
					return
				}
				epoch, err := tn.Learn(learnDelta(8, seed))
				if err != nil {
					fail("Learn(%s): %v", name, err)
				} else if epoch <= last[name] {
					fail("%s epoch went %d -> %d", name, last[name], epoch)
				} else {
					last[name] = epoch
				}
				tn.Release()
			}
		}
	}()

	// Churner: unload/reload cycles on one tenant.
	deadline := time.After(1500 * time.Millisecond)
	cycles := 0
	for done := false; !done; {
		select {
		case <-deadline:
			done = true
		default:
			ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
			if err := r.Unload(ctx, "churn"); err != nil {
				t.Errorf("Unload cycle %d: %v", cycles, err)
			}
			cancel()
			load(t, r, "churn", uint64(cycles%5+10))
			cycles++
		}
	}
	close(stop)
	wg.Wait()

	if cycles < 2 {
		t.Fatalf("only %d unload/reload cycles — churn did not overlap traffic", cycles)
	}
	if served.Load() == 0 {
		t.Fatal("no requests served during churn")
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := r.Close(ctx); err != nil {
		t.Fatal(err)
	}
	t.Logf("served %d requests across %d unload/reload cycles", served.Load(), cycles)
}

// TestRegistryReplication drives the leader→follower path at the
// registry level: snapshot warm start, epoch-keyed delta polling via
// DeltasSince/ApplyDelta, and bit-for-bit monitor convergence.
func TestRegistryReplication(t *testing.T) {
	leaderReg := New(Config{})
	leader, _ := load(t, leaderReg, "m", 1)
	for seed := uint64(20); seed < 24; seed++ {
		if _, err := leader.Learn(learnDelta(8, seed)); err != nil {
			t.Fatal(err)
		}
	}

	var snap bytes.Buffer
	if err := leader.Snapshot(&snap); err != nil {
		t.Fatal(err)
	}
	followerReg := New(Config{})
	follower, err := followerReg.LoadSnapshot("m", leader.Network(), &snap, serve.Config{MaxBatch: 8})
	if err != nil {
		t.Fatal(err)
	}
	if got, want := follower.Monitor().Epoch(), leader.Monitor().Epoch(); got != want {
		t.Fatalf("warm-started follower at epoch %d, leader at %d", got, want)
	}
	// The snapshot's embedded tail is in the follower's own log from the
	// instant the tenant is acquirable, so a chained replica polling
	// right after the warm start must get deltas, not a spurious
	// ErrDeltaGap ordering it to re-snapshot.
	if chained, err := follower.DeltasSince(follower.Monitor().Epoch() - 1); err != nil || len(chained) == 0 {
		t.Fatalf("chained DeltasSince right after LoadSnapshot: %v (%d entries)", err, len(chained))
	}

	// Leader keeps moving: more patterns and a γ re-level.
	for seed := uint64(40); seed < 50; seed++ {
		if _, err := leader.Learn(learnDelta(8, seed)); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := leader.UpdateGamma(2); err != nil {
		t.Fatal(err)
	}

	// Follower polls twice (mid-stream then to the end), replaying
	// exactly the epoch keys the leader published.
	for poll := 0; poll < 2; poll++ {
		entries, err := leader.DeltasSince(follower.Monitor().Epoch())
		if err != nil {
			t.Fatal(err)
		}
		for i, e := range entries {
			if poll == 0 && i == len(entries)/2 {
				break // simulate a partial poll; next round resumes
			}
			if err := follower.ApplyDelta(e); err != nil {
				t.Fatalf("ApplyDelta(epoch %d): %v", e.Epoch, err)
			}
		}
	}
	if got, want := follower.Monitor().Epoch(), leader.Monitor().Epoch(); got != want {
		t.Fatalf("follower epoch %d, leader epoch %d", got, want)
	}
	// Duplicate delivery is idempotent; stale polls are harmless.
	tail, err := leader.DeltasSince(0)
	if !errors.Is(err, ErrDeltaGap) && err != nil {
		t.Fatal(err)
	}
	for _, e := range tail {
		if err := follower.ApplyDelta(e); err != nil {
			t.Fatalf("duplicate ApplyDelta(epoch %d): %v", e.Epoch, err)
		}
	}

	var lb, fb bytes.Buffer
	if err := leader.Monitor().Save(&lb); err != nil {
		t.Fatal(err)
	}
	if err := follower.Monitor().Save(&fb); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(lb.Bytes(), fb.Bytes()) {
		t.Fatal("follower monitor diverged from leader — replication is not bit-for-bit")
	}
}

// TestDeltaLogGap pins the re-snapshot contract: a follower lagging past
// the retained window gets ErrDeltaGap, never a silently incomplete
// replay.
func TestDeltaLogGap(t *testing.T) {
	r := New(Config{DeltaLogSize: 4})
	tn, _ := load(t, r, "m", 1)
	base := tn.Monitor().Epoch()
	for seed := uint64(60); seed < 70; seed++ {
		if _, err := tn.Learn(learnDelta(8, seed)); err != nil {
			t.Fatal(err)
		}
	}
	cur := tn.Monitor().Epoch()
	if _, err := tn.DeltasSince(base); !errors.Is(err, ErrDeltaGap) {
		t.Fatalf("lagging poll past the window: %v", err)
	}
	entries, err := tn.DeltasSince(cur - 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 3 || entries[0].Epoch != cur-2 || entries[2].Epoch != cur {
		t.Fatalf("window poll returned %d entries starting at %d", len(entries), entries[0].Epoch)
	}
	if got, _ := tn.DeltasSince(cur); got != nil {
		t.Fatalf("caught-up poll returned %d entries", len(got))
	}
}

// TestRegistryMetrics checks the tenant-labeled families appear for
// every loaded tenant, survive an unload/reload cycle without a
// duplicate-registration panic, and read 0/1 through napmon_tenant_up.
func TestRegistryMetrics(t *testing.T) {
	r := New(Config{})
	reg := obs.NewRegistry()
	r.RegisterMetrics(reg)
	tnA, inputsA := load(t, r, "alpha", 1)
	load(t, r, "beta", 2)

	fut, err := tnA.Server().Submit(inputsA[0])
	if err != nil {
		t.Fatal(err)
	}
	if _, err := fut.Wait(); err != nil {
		t.Fatal(err)
	}

	scrape := func() string {
		var buf bytes.Buffer
		if err := reg.WriteText(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.String()
	}
	out := scrape()
	for _, want := range []string{
		`napmon_registry_tenants 2`,
		`napmon_tenant_up{tenant="alpha"} 1`,
		`napmon_tenant_up{tenant="beta"} 1`,
		`napmon_tenant_served_total{tenant="alpha"} 1`,
		`napmon_tenant_epoch{tenant="alpha"}`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("scrape missing %q", want)
		}
	}

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := r.Unload(ctx, "alpha"); err != nil {
		t.Fatal(err)
	}
	if out := scrape(); !strings.Contains(out, `napmon_tenant_up{tenant="alpha"} 0`) {
		t.Error("unloaded tenant does not scrape as up 0")
	}
	// Reload must not panic the scrape registry with duplicate series.
	load(t, r, "alpha", 3)
	if out := scrape(); !strings.Contains(out, `napmon_tenant_up{tenant="alpha"} 1`) {
		t.Error("reloaded tenant does not scrape as up 1")
	}
}

// BenchmarkRegistryLookup measures the pin/release hot path the wire
// gateway takes per frame.
func BenchmarkRegistryLookup(b *testing.B) {
	r := New(Config{})
	for i := 0; i < 8; i++ {
		load(b, r, fmt.Sprintf("tenant-%d", i), uint64(i+1))
	}
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			tn, err := r.AcquireID(3)
			if err != nil {
				b.Fatal(err)
			}
			tn.Release()
		}
	})
	b.StopTimer()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	_ = r.Close(ctx)
}
