// Package registry is the multi-tenant fleet layer: one process, many
// named (model, monitor, server-config) tenants, hot-loaded and
// hot-unloaded while traffic flows. It reuses the epoch/refcount shape
// the monitor's online updates are built on (internal/core, DESIGN.md
// "Online updates: epochs, grace periods"), one level up:
//
//   - The tenant table is an immutable generation behind an atomic
//     pointer. Load and Unload publish a successor generation; lookups
//     never take the registry lock.
//   - Acquire pins a tenant with the same load-increment-validate loop
//     epoch readers use, so a lookup can never resurrect a tenant whose
//     unload already published — and a pinned tenant can never be torn
//     down under an in-flight request.
//   - Unload removes the tenant from the current generation, drops the
//     registry's base reference, and drains: the tenant's serve.Server
//     shuts down gracefully (bounded by the grace budget) only after
//     the last pinned holder releases. In-flight batches are never
//     killed.
//
// Every tenant owns its own serving lanes, queue caps, and an
// epoch-keyed delta log feeding the replication path: Learn appends the
// published (epoch, delta) pair, DeltasSince serves the contiguous
// suffix past a follower's epoch, and Snapshot embeds the retained log
// so replicas can chain (internal/core snapshot format).
package registry

import (
	"context"
	"errors"
	"fmt"
	"io"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"napmon/internal/core"
	"napmon/internal/nn"
	"napmon/internal/obs"
	"napmon/internal/serve"
)

// DefaultTenant is the name of the implicit single-tenant lane: wire
// tenant id 0, the target of the legacy unprefixed HTTP routes, and the
// tenant napmon.Serve loads.
const DefaultTenant = "default"

var (
	// ErrNotFound is returned by lookups for a name or id that is not
	// loaded (or no longer loaded).
	ErrNotFound = errors.New("registry: tenant not found")
	// ErrExists is returned by Load when the name is already serving.
	ErrExists = errors.New("registry: tenant already loaded")
	// ErrClosed is returned after Close has begun.
	ErrClosed = errors.New("registry: closed")
	// ErrDeltaGap is returned by DeltasSince when the requested epoch
	// range is no longer retained in the delta log: the follower must
	// warm-start from a fresh snapshot instead of replaying.
	ErrDeltaGap = errors.New("registry: delta log no longer covers requested epoch; re-snapshot")
)

// Config sizes a Registry. The zero value of any field selects its
// default.
type Config struct {
	// Grace bounds an unloaded tenant's drain: accepted requests get
	// this long to finish before the tenant's server aborts (default
	// 30s).
	Grace time.Duration
	// DeltaLogSize is the per-tenant retained delta-log capacity in
	// epoch entries (default 1024). Followers lagging further than this
	// must re-snapshot.
	DeltaLogSize int
}

func (c Config) withDefaults() Config {
	if c.Grace == 0 {
		c.Grace = 30 * time.Second
	}
	if c.DeltaLogSize == 0 {
		c.DeltaLogSize = 1024
	}
	return c
}

// TenantConfig is everything one tenant serves with.
type TenantConfig struct {
	Net   *nn.Network
	Mon   *core.Monitor
	Serve serve.Config
}

// generation is one immutable snapshot of the tenant table. Lookups
// read it lock-free; Load/Unload publish successors under the registry
// mutex.
type generation struct {
	id     uint64
	byName map[string]*Tenant
	byID   map[uint32]*Tenant
}

// Registry is the concurrent tenant table. Construct with New; it is
// safe for any number of concurrent Acquire/Load/Unload callers.
type Registry struct {
	cfg Config

	// mu serializes the writers (Load/Unload/Close); lookups never take
	// it.
	mu      sync.Mutex
	closed  bool
	ids     map[string]uint32 // name → wire id, sticky across reload
	nextID  uint32
	lastInc uint64 // last incarnation handed out; keeps them strictly increasing

	cur atomic.Pointer[generation]

	loads   atomic.Uint64
	unloads atomic.Uint64
	lookups atomic.Uint64

	// metricsMu guards the scrape registry attachment and the
	// per-tenant series guard: a tenant name registers its labeled
	// series once ever, and reload re-binds them by name lookup, so an
	// unload/reload cycle cannot trip the registry's duplicate-series
	// panic.
	metricsMu  sync.Mutex
	obsReg     *obs.Registry
	registered map[string]bool
}

// New builds an empty registry.
func New(cfg Config) *Registry {
	r := &Registry{
		cfg:        cfg.withDefaults(),
		ids:        map[string]uint32{DefaultTenant: 0},
		nextID:     1,
		registered: make(map[string]bool),
	}
	r.cur.Store(&generation{id: 1, byName: map[string]*Tenant{}, byID: map[uint32]*Tenant{}})
	return r
}

// Tenant is one loaded serving lane. Handles returned by Acquire are
// pinned and must be Released exactly once; handles returned by Load
// are not pinned (they stay valid until Unload).
type Tenant struct {
	name string
	id   uint32
	inc  uint64
	reg  *Registry

	net *nn.Network
	mon *core.Monitor
	srv *serve.Server

	// refs counts pinned holders plus one base reference for being
	// loaded. Unload drops the base reference; at zero the tenant
	// drains exactly once.
	refs      atomic.Int64
	drainOnce sync.Once
	drained   chan struct{}

	// logMu serializes the update+log append pair so delta-log order is
	// exactly epoch publication order.
	logMu sync.Mutex
	log   deltaLog
}

// Name returns the tenant's registry name.
func (t *Tenant) Name() string { return t.name }

// ID returns the tenant's wire id (0 for the default tenant). Ids are
// sticky: reloading a name reuses its id.
func (t *Tenant) ID() uint32 { return t.id }

// Incarnation identifies this particular load of the name: wall-clock
// based and strictly increasing, so two loads never share a value even
// across registry (or process) restarts. A replication follower records
// the leader incarnation it synced from and re-snapshots when it
// changes — epochs restart on reload, so without this a reloaded
// tenant's follower would poll epochs the new incarnation never reaches
// and silently serve the stale model forever.
func (t *Tenant) Incarnation() uint64 { return t.inc }

// Server returns the tenant's serving front end.
func (t *Tenant) Server() *serve.Server { return t.srv }

// Monitor returns the tenant's monitor.
func (t *Tenant) Monitor() *core.Monitor { return t.mon }

// Network returns the tenant's network.
func (t *Tenant) Network() *nn.Network { return t.net }

// Release drops one pin taken by Acquire/AcquireID. When the last pin
// of an unloaded tenant drops, the drain starts: the tenant's server
// shuts down gracefully within the registry's grace budget.
func (t *Tenant) Release() {
	if t.refs.Add(-1) == 0 {
		t.drainOnce.Do(func() { go t.drain() })
	}
}

func (t *Tenant) drain() {
	ctx, cancel := context.WithTimeout(context.Background(), t.reg.cfg.Grace)
	defer cancel()
	_ = t.srv.Shutdown(ctx)
	close(t.drained)
}

// Learn absorbs per-class patterns into the tenant's monitor, publishes
// the new epoch through its server, and appends the (epoch, delta) pair
// to the tenant's replication log — the leader half of the follower
// feed. Returns the epoch now serving.
func (t *Tenant) Learn(delta map[int][]core.Pattern) (uint64, error) {
	t.logMu.Lock()
	defer t.logMu.Unlock()
	before := t.mon.Epoch()
	epoch, err := t.srv.Update(delta)
	if err != nil {
		return epoch, err
	}
	if epoch != before {
		t.log.append(core.DeltaEntry{Epoch: epoch, Gamma: -1, Delta: delta})
	}
	return epoch, nil
}

// UpdateGamma re-levels the tenant's serving γ as a logged epoch
// publication, so followers replay it like any other delta.
func (t *Tenant) UpdateGamma(gamma int) (uint64, error) {
	t.logMu.Lock()
	defer t.logMu.Unlock()
	before := t.mon.Epoch()
	epoch, err := t.srv.UpdateGamma(gamma)
	if err != nil {
		return epoch, err
	}
	if epoch != before {
		t.log.append(core.DeltaEntry{Epoch: epoch, Gamma: gamma})
	}
	return epoch, nil
}

// ApplyDelta replays one leader-published delta on a follower: the
// update must publish exactly the leader's epoch id (warm start pins
// the starting id, every publication increments by one, and entries
// apply in key order — any mismatch means divergence and fails loudly).
// The entry is appended to this tenant's own log, so a follower can in
// turn feed replicas of its own.
func (t *Tenant) ApplyDelta(e core.DeltaEntry) error {
	t.logMu.Lock()
	defer t.logMu.Unlock()
	cur := t.mon.Epoch()
	if e.Epoch <= cur {
		return nil // already applied (duplicate poll); keyed idempotence
	}
	if e.Epoch != cur+1 {
		return fmt.Errorf("registry: delta epoch %d does not follow local epoch %d", e.Epoch, cur)
	}
	var (
		epoch uint64
		err   error
	)
	if e.Gamma >= 0 {
		epoch, err = t.srv.UpdateGamma(e.Gamma)
	} else {
		epoch, err = t.srv.Update(e.Delta)
	}
	if err != nil {
		return err
	}
	if epoch != e.Epoch {
		return fmt.Errorf("registry: replay published epoch %d, leader published %d", epoch, e.Epoch)
	}
	t.log.append(e)
	return nil
}

// DeltasSince returns the retained delta entries with epoch keys
// strictly greater than since, in key order. ErrDeltaGap means the log
// has already evicted part of that range — the caller must warm-start
// from a fresh snapshot.
func (t *Tenant) DeltasSince(since uint64) ([]core.DeltaEntry, error) {
	t.logMu.Lock()
	defer t.logMu.Unlock()
	cur := t.mon.Epoch()
	if since >= cur {
		return nil, nil // caller is caught up (or ahead; nothing to serve)
	}
	entries, ok := t.log.since(since)
	if !ok {
		return nil, ErrDeltaGap
	}
	return entries, nil
}

// Snapshot writes the tenant's monitor snapshot with the retained delta
// log embedded as the tail, under the log mutex so the epoch and the
// tail are one consistent cut.
func (t *Tenant) Snapshot(w io.Writer) error {
	t.logMu.Lock()
	defer t.logMu.Unlock()
	return t.mon.Snapshot(w, t.log.entries)
}

// validateName enforces the tenant-name grammar shared by the HTTP
// paths and metric labels: 1-64 chars of [A-Za-z0-9._-], not starting
// with a dot or dash.
func validateName(name string) error {
	if name == "" || len(name) > 64 {
		return fmt.Errorf("registry: tenant name must be 1-64 characters, got %d", len(name))
	}
	for i := 0; i < len(name); i++ {
		c := name[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9':
		case (c == '.' || c == '-' || c == '_') && i > 0:
		case c == '_':
		default:
			return fmt.Errorf("registry: tenant name %q: invalid character %q at %d", name, c, i)
		}
	}
	return nil
}

// Load constructs the tenant's serving stack and publishes it under
// name. The returned handle is not pinned — it stays valid until
// Unload; concurrent request paths should pin via Acquire.
func (r *Registry) Load(name string, tc TenantConfig) (*Tenant, error) {
	return r.load(name, tc, nil)
}

// load is the shared Load/LoadSnapshot body. tail seeds the tenant's
// delta log BEFORE the tenant is published: once a generation carries
// the tenant, a concurrent DeltasSince may run, and an empty log behind
// a warm-started (nonzero) epoch reads as an eviction gap — a chained
// follower would be told to re-snapshot for no reason.
func (r *Registry) load(name string, tc TenantConfig, tail []core.DeltaEntry) (*Tenant, error) {
	if err := validateName(name); err != nil {
		return nil, err
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.closed {
		return nil, ErrClosed
	}
	g := r.cur.Load()
	if _, exists := g.byName[name]; exists {
		return nil, fmt.Errorf("%w: %q", ErrExists, name)
	}
	srv, err := serve.New(tc.Net, tc.Mon, tc.Serve)
	if err != nil {
		return nil, err
	}
	id, ok := r.ids[name]
	if !ok {
		id = r.nextID
		r.nextID++
		r.ids[name] = id
	}
	inc := uint64(time.Now().UnixNano())
	if inc <= r.lastInc {
		inc = r.lastInc + 1
	}
	r.lastInc = inc
	t := &Tenant{
		name:    name,
		id:      id,
		inc:     inc,
		reg:     r,
		net:     tc.Net,
		mon:     tc.Mon,
		srv:     srv,
		drained: make(chan struct{}),
		log:     deltaLog{cap: r.cfg.DeltaLogSize},
	}
	for _, e := range tail {
		t.log.append(e) // not yet published: no logMu needed
	}
	t.refs.Store(1) // the registry's base reference
	r.publish(g, func(ng *generation) {
		ng.byName[name] = t
		ng.byID[id] = t
	})
	r.loads.Add(1)
	r.bindTenantMetrics(name)
	return t, nil
}

// LoadSnapshot warm-starts a tenant from a leader snapshot: the monitor
// resumes at the leader's epoch id (replicated deltas then apply with
// identical keys) and the snapshot's embedded delta tail seeds this
// tenant's own log, so a follower can immediately feed replicas of its
// own. The snapshot already reflects the tail's effects — the tail is
// history, not replay work.
func (r *Registry) LoadSnapshot(name string, net *nn.Network, snap io.Reader, sc serve.Config) (*Tenant, error) {
	mon, tail, err := core.LoadSnapshot(snap)
	if err != nil {
		return nil, err
	}
	return r.load(name, TenantConfig{Net: net, Mon: mon, Serve: sc}, tail)
}

// publish installs a successor generation derived from g. Callers hold
// r.mu.
func (r *Registry) publish(g *generation, mutate func(*generation)) {
	ng := &generation{
		id:     g.id + 1,
		byName: make(map[string]*Tenant, len(g.byName)+1),
		byID:   make(map[uint32]*Tenant, len(g.byID)+1),
	}
	for n, t := range g.byName {
		ng.byName[n] = t
	}
	for id, t := range g.byID {
		ng.byID[id] = t
	}
	mutate(ng)
	r.cur.Store(ng)
}

// Unload removes the tenant from the serving generation and waits for
// its drain: the server shuts down only after every pinned holder
// releases, so in-flight requests are never dropped. ctx bounds only
// the wait — an expired ctx does not cancel the drain itself, which
// continues in the background under the grace budget.
func (r *Registry) Unload(ctx context.Context, name string) error {
	r.mu.Lock()
	g := r.cur.Load()
	t, ok := g.byName[name]
	if !ok {
		r.mu.Unlock()
		return fmt.Errorf("%w: %q", ErrNotFound, name)
	}
	r.publish(g, func(ng *generation) {
		delete(ng.byName, name)
		delete(ng.byID, t.id)
	})
	r.unloads.Add(1)
	r.mu.Unlock()

	t.Release() // drop the base reference; drain fires at zero
	select {
	case <-t.drained:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Acquire pins the tenant named name for one unit of work; the caller
// must Release exactly once. The load-increment-validate loop closes
// the race with a concurrent Unload: if the tenant left the current
// generation between the lookup and the pin, the pin is dropped and the
// lookup retries on the fresh table — a drained tenant can never be
// handed out.
func (r *Registry) Acquire(name string) (*Tenant, error) {
	for {
		t := r.cur.Load().byName[name]
		if t == nil {
			return nil, fmt.Errorf("%w: %q", ErrNotFound, name)
		}
		t.refs.Add(1)
		if r.cur.Load().byName[name] == t {
			r.lookups.Add(1)
			return t, nil
		}
		t.Release()
	}
}

// AcquireID is Acquire keyed by wire tenant id (the gateway's routing
// key).
func (r *Registry) AcquireID(id uint32) (*Tenant, error) {
	for {
		t := r.cur.Load().byID[id]
		if t == nil {
			return nil, fmt.Errorf("%w: id %d", ErrNotFound, id)
		}
		t.refs.Add(1)
		if r.cur.Load().byID[id] == t {
			r.lookups.Add(1)
			return t, nil
		}
		t.Release()
	}
}

// Peek returns the loaded tenant without pinning it, or nil. Metric
// callbacks use it — a scrape reads whatever generation is current and
// must not delay a drain.
func (r *Registry) Peek(name string) *Tenant {
	return r.cur.Load().byName[name]
}

// Names returns the loaded tenant names, sorted.
func (r *Registry) Names() []string {
	g := r.cur.Load()
	names := make([]string, 0, len(g.byName))
	for n := range g.byName {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Len returns the number of loaded tenants.
func (r *Registry) Len() int { return len(r.cur.Load().byName) }

// Generation returns the tenant-table generation id, incremented by
// every Load and Unload.
func (r *Registry) Generation() uint64 { return r.cur.Load().id }

// Close unloads every tenant and refuses further loads. ctx bounds the
// wait for the drains.
func (r *Registry) Close(ctx context.Context) error {
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return ErrClosed
	}
	r.closed = true
	g := r.cur.Load()
	tenants := make([]*Tenant, 0, len(g.byName))
	for _, t := range g.byName {
		tenants = append(tenants, t)
	}
	r.publish(g, func(ng *generation) {
		ng.byName = map[string]*Tenant{}
		ng.byID = map[uint32]*Tenant{}
	})
	r.unloads.Add(uint64(len(tenants)))
	r.mu.Unlock()

	for _, t := range tenants {
		t.Release()
	}
	for _, t := range tenants {
		select {
		case <-t.drained:
		case <-ctx.Done():
			return ctx.Err()
		}
	}
	return nil
}

// deltaLog is the bounded epoch-keyed replication log: entries in
// publication order, oldest evicted past cap. Guarded by the tenant's
// logMu.
type deltaLog struct {
	cap     int
	entries []core.DeltaEntry
}

func (l *deltaLog) append(e core.DeltaEntry) {
	l.entries = append(l.entries, e)
	if len(l.entries) > l.cap {
		// Drop the oldest; copy down so the backing array does not pin
		// evicted patterns.
		n := copy(l.entries, l.entries[len(l.entries)-l.cap:])
		l.entries = l.entries[:n]
	}
}

// since returns the entries with keys > s. ok is false when the range
// is not provably contiguous from s — the oldest retained entry is
// already past s+1, so something between was evicted.
func (l *deltaLog) since(s uint64) ([]core.DeltaEntry, bool) {
	if len(l.entries) == 0 {
		// No retained entries but the caller is behind the current
		// epoch (DeltasSince checked): the history is gone.
		return nil, false
	}
	if l.entries[0].Epoch > s+1 {
		return nil, false
	}
	i := sort.Search(len(l.entries), func(i int) bool { return l.entries[i].Epoch > s })
	out := make([]core.DeltaEntry, len(l.entries)-i)
	copy(out, l.entries[i:])
	return out, true
}
