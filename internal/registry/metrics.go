package registry

import (
	"napmon/internal/obs"
	"napmon/internal/serve"
)

// RegisterMetrics attaches the registry to a scrape registry:
// fleet-level series immediately, plus one set of tenant-labeled series
// per tenant name (bound now for already-loaded tenants, and by Load
// for future ones).
//
// The per-tenant families are deliberately separate from the unlabeled
// napmon_* families serve.RegisterMetrics exports: tooling that sums a
// napmon_* family across label sets (napmon-metricslint's cross-check
// does) must not double-count a tenant that also registered the
// single-tenant series.
//
// Tenant series resolve through Peek at scrape time and are registered
// at most once per name, so unload/reload cycles neither panic the
// scrape registry with duplicate series nor leave callbacks pointing at
// a drained tenant: an unloaded tenant scrapes as napmon_tenant_up 0
// with zeroed series until its name returns.
func (r *Registry) RegisterMetrics(reg *obs.Registry) {
	r.metricsMu.Lock()
	r.obsReg = reg
	r.metricsMu.Unlock()

	reg.GaugeFunc("napmon_registry_tenants", "Number of loaded tenants.",
		func() float64 { return float64(r.Len()) })
	reg.GaugeFunc("napmon_registry_generation", "Tenant-table generation id; increments on every load and unload.",
		func() float64 { return float64(r.Generation()) })
	reg.CounterFunc("napmon_registry_loads_total", "Tenants loaded since start.", r.loads.Load)
	reg.CounterFunc("napmon_registry_unloads_total", "Tenants unloaded since start.", r.unloads.Load)
	reg.CounterFunc("napmon_registry_lookups_total", "Successful tenant acquisitions.", r.lookups.Load)

	for _, name := range r.Names() {
		r.bindTenantMetrics(name)
	}
}

// bindTenantMetrics registers the tenant-labeled series for name, once
// ever per name. Load calls it with r.mu held; RegisterMetrics calls it
// without. Both orders are safe: registration is keyed on the name, and
// the callbacks re-resolve the tenant on every scrape.
func (r *Registry) bindTenantMetrics(name string) {
	r.metricsMu.Lock()
	reg := r.obsReg
	if reg == nil || r.registered[name] {
		r.metricsMu.Unlock()
		return
	}
	r.registered[name] = true
	r.metricsMu.Unlock()

	lbl := obs.L("tenant", name)

	stat := func(f func(serve.Stats) uint64) func() uint64 {
		return func() uint64 {
			if t := r.Peek(name); t != nil {
				return f(t.srv.Stats())
			}
			return 0
		}
	}
	gauge := func(f func(serve.Stats) float64) func() float64 {
		return func() float64 {
			if t := r.Peek(name); t != nil {
				return f(t.srv.Stats())
			}
			return 0
		}
	}

	reg.GaugeFunc("napmon_tenant_up", "1 while the tenant is loaded and serving.",
		func() float64 {
			if r.Peek(name) != nil {
				return 1
			}
			return 0
		}, lbl)
	reg.CounterFunc("napmon_tenant_submitted_total", "Requests submitted to the tenant.",
		stat(func(s serve.Stats) uint64 { return s.Submitted }), lbl)
	reg.CounterFunc("napmon_tenant_served_total", "Requests served by the tenant.",
		stat(func(s serve.Stats) uint64 { return s.Served }), lbl)
	reg.CounterFunc("napmon_tenant_rejected_total", "Requests rejected by the tenant's admission control.",
		stat(func(s serve.Stats) uint64 { return s.Rejected }), lbl)
	reg.CounterFunc("napmon_tenant_shed_total", "Requests shed by the tenant under overload.",
		stat(func(s serve.Stats) uint64 { return s.Shed }), lbl)
	reg.CounterFunc("napmon_tenant_batches_total", "Batches executed by the tenant.",
		stat(func(s serve.Stats) uint64 { return s.Batches }), lbl)
	reg.GaugeFunc("napmon_tenant_queue_depth", "Requests queued in the tenant's lanes.",
		gauge(func(s serve.Stats) float64 { return float64(s.Queued) }), lbl)
	reg.GaugeFunc("napmon_tenant_epoch", "Tenant monitor epoch currently serving.",
		gauge(func(s serve.Stats) float64 { return float64(s.Epoch) }), lbl)
	reg.CounterFunc("napmon_tenant_updates_total", "Epoch swaps published by the tenant.",
		stat(func(s serve.Stats) uint64 { return s.Updates }), lbl)
	reg.CounterFunc("napmon_tenant_watched_total", "Membership queries answered by the tenant's monitor.",
		stat(func(s serve.Stats) uint64 { return s.Monitored }), lbl)
	reg.CounterFunc("napmon_tenant_oop_total", "Out-of-pattern verdicts from the tenant's monitor.",
		stat(func(s serve.Stats) uint64 { return s.OutOfPattern }), lbl)
	reg.GaugeFunc("napmon_tenant_gamma", "Tenant's serving Hamming tolerance.",
		gauge(func(s serve.Stats) float64 { return float64(s.Gamma) }), lbl)
}
