package wire

import (
	"context"
	"net"
	"runtime"
	"testing"
	"time"

	"napmon/internal/chaos"
	"napmon/internal/core"
	"napmon/internal/serve"
	"napmon/internal/tensor"
)

// TestGatewayReapsSilentConn: a client that sends half a header and
// goes mute is torn down by the read-idle deadline — counted as reaped,
// its goroutines released — instead of pinning the connection forever.
func TestGatewayReapsSilentConn(t *testing.T) {
	g, _, _, _ := toyGatewayParts(t, 26,
		serve.Config{MaxBatch: 4, MaxDelay: time.Millisecond},
		GatewayConfig{ReadIdleTimeout: 150 * time.Millisecond})
	c, err := net.Dial("tcp", g.TCPAddr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Write(AppendPing(nil, 1)[:6]); err != nil {
		t.Fatal(err)
	}
	// The gateway must hang up on us; a successful read here would mean
	// it answered a half-frame.
	c.SetReadDeadline(time.Now().Add(10 * time.Second))
	if _, err := c.Read(make([]byte, 1)); err == nil {
		t.Fatal("gateway kept a silent half-frame connection alive")
	}
	if got := g.Counters().Reaped; got != 1 {
		t.Fatalf("reaped %d conns, want 1", got)
	}
	deadline := time.Now().Add(5 * time.Second)
	for g.Counters().Conns != 0 {
		if time.Now().After(deadline) {
			t.Fatalf("%d conns still live after the reap", g.Counters().Conns)
		}
		time.Sleep(time.Millisecond)
	}

	// The reap is per-connection: a fresh, well-behaved one still works.
	good, err := net.Dial("tcp", g.TCPAddr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer good.Close()
	good.SetDeadline(time.Now().Add(time.Minute))
	if _, err := good.Write(AppendPing(nil, 2)); err != nil {
		t.Fatal(err)
	}
	if h, _, err := ReadFrame(good, nil); err != nil || h.Type != TypePong {
		t.Fatalf("ping after a reap: %+v, %v", h, err)
	}
}

// TestGatewayMalformedBudget: well-framed frames whose payloads fail
// their codec earn error replies up to the connection's budget, then the
// gateway stops talking to the peer and counts it.
func TestGatewayMalformedBudget(t *testing.T) {
	const budget = 3
	g, _, _, _ := toyGatewayParts(t, 27,
		serve.Config{MaxBatch: 4, MaxDelay: time.Millisecond},
		GatewayConfig{MalformedBudget: budget})
	c, err := net.Dial("tcp", g.TCPAddr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	c.SetDeadline(time.Now().Add(time.Minute))

	// A watch request with a one-byte payload frames correctly but fails
	// DecodeWatchReq — the resyncable kind of malformed the budget
	// governs. One frame per round trip: pipelining them would leave
	// unread bytes at the server's hangup, turning the close into an RST
	// that destroys the queued replies.
	bad := func(id uint32) []byte {
		return append(AppendHeader(nil, TypeWatchReq, id, 1), 0xff)
	}
	for i := 0; i < budget; i++ {
		if _, err := c.Write(bad(uint32(i))); err != nil {
			t.Fatalf("bad frame %d: %v", i, err)
		}
		h, payload, err := ReadFrame(c, nil)
		if err != nil {
			t.Fatalf("reply %d: %v", i, err)
		}
		if h.Type != TypeErr {
			t.Fatalf("bad payload answered with %+v", h)
		}
		if code, _, derr := DecodeErr(payload); derr != nil || code != ErrCodeBadRequest {
			t.Fatalf("bad payload error code %d, %v", code, derr)
		}
	}
	// The budget is spent: the stream is over.
	if h, _, err := ReadFrame(c, nil); err == nil {
		t.Fatalf("connection survived its malformed budget (got %+v)", h)
	}
	ct := g.Counters()
	if ct.OverBudget != 1 {
		t.Fatalf("over-budget conns %d, want 1", ct.OverBudget)
	}
	if ct.Malformed < budget {
		t.Fatalf("malformed %d, want >= %d", ct.Malformed, budget)
	}
}

// TestGatewayChaosTCP drives real watch traffic through a gateway whose
// listener injects a seeded, bounded schedule of resets, stalls, partial
// writes and accept failures. The contract under fire: every watch
// response the client manages to receive carries the exact verdict the
// monitor computes directly; once the fault budget drains the transport
// serves flawlessly again; and teardown leaks no goroutines.
//
// Corruption is deliberately absent from the mix: request payloads are
// not checksummed, so a corrupted-but-decodable input would earn an
// honest verdict for data the client never sent — correct behavior, but
// unverifiable from this side of the socket. The chaos package tests and
// the chaos-smoke gate cover that fault.
func TestGatewayChaosTCP(t *testing.T) {
	baseline := runtime.NumGoroutine()

	srv, network, mon, inputs := toyLane(t, 28, serve.Config{MaxBatch: 4, MaxDelay: time.Millisecond})
	g := NewGateway(srv, mon, GatewayConfig{ReadIdleTimeout: 2 * time.Second, WriteTimeout: 2 * time.Second})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	sched := chaos.NewSchedule(29, chaos.Rates{
		Reset:        0.04,
		ReadStall:    0.04,
		WriteStall:   0.04,
		PartialWrite: 0.04,
		AcceptFail:   0.15,
		StallFor:     20 * time.Millisecond,
		MaxFaults:    25,
	})
	if err := g.ServeTCP(chaos.WrapListener(ln, sched, nil)); err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()

	// The wire narrows inputs to float32, so expectations come from the
	// narrowed tensor — same idiom as the clean-path TCP test.
	direct := func(x *tensor.Tensor) core.Verdict {
		frame, err := AppendWatchReq(nil, 0, DefaultTenant, x.Shape(), x.Data())
		if err != nil {
			t.Fatal(err)
		}
		_, shape, data, err := DecodeWatchReq(frame[HeaderSize:])
		if err != nil {
			t.Fatal(err)
		}
		return mon.WatchBatch(network, []*tensor.Tensor{tensor.FromSlice(data, shape...)})[0]
	}

	var c net.Conn
	drop := func() {
		if c != nil {
			c.Close()
			c = nil
		}
	}
	// exchange runs one request/response round trip, reporting whether a
	// verdict came back. Any transport failure drops the connection; the
	// next round re-dials.
	var id uint32
	verdicts, failures := 0, 0
	exchange := func(x *tensor.Tensor) {
		if c == nil {
			var err error
			if c, err = net.Dial("tcp", addr); err != nil {
				failures++
				time.Sleep(10 * time.Millisecond)
				return
			}
			c.SetDeadline(time.Now().Add(time.Minute))
		}
		id++
		frame, err := AppendWatchReq(nil, id, DefaultTenant, x.Shape(), x.Data())
		if err != nil {
			t.Fatal(err)
		}
		if _, err := c.Write(frame); err != nil {
			failures++
			drop()
			return
		}
		h, payload, err := ReadFrame(c, nil)
		if err != nil {
			failures++
			drop()
			return
		}
		// A response that does arrive must be the right one: correct id,
		// correct type, verdict identical to the direct computation.
		if h.Type != TypeWatchResp || h.ID != id {
			t.Fatalf("watch %d answered with %+v", id, h)
		}
		got, err := DecodeWatchResp(payload)
		if err != nil {
			t.Fatalf("watch %d: undecodable verdict: %v", id, err)
		}
		want := direct(x)
		if got.Class != want.Class || got.Monitored != want.Monitored ||
			got.OutOfPattern != want.OutOfPattern ||
			core.Hamming(got.Pattern, want.Pattern) != 0 {
			t.Fatalf("watch %d: verdict %+v != direct %+v", id, got, want)
		}
		verdicts++
	}

	// Phase 1: hammer until the fault budget drains. Every fault lands on
	// live traffic somewhere — a killed connection shows up as a failed
	// round trip and a re-dial, never as a wrong answer.
	budgetDeadline := time.Now().Add(2 * time.Minute)
	for !sched.Drained() {
		if time.Now().After(budgetDeadline) {
			t.Fatalf("fault budget never drained: %d injected", sched.Injected())
		}
		exchange(inputs[int(id)%len(inputs)])
	}

	// Phase 2: drained schedule, clean transport — a fresh connection
	// must serve every request correctly with no failures.
	drop()
	preFailures := failures
	for i := 0; i < 16; i++ {
		exchange(inputs[i%len(inputs)])
	}
	if failures != preFailures {
		t.Fatalf("%d round trips failed after the fault budget drained", failures-preFailures)
	}
	if verdicts == 0 {
		t.Fatal("no verdicts survived the fault schedule")
	}
	t.Logf("chaos run: %d verdicts, %d failed round trips, %d faults injected", verdicts, failures, sched.Injected())

	// Teardown, then the leak check: everything the gateway and server
	// spawned — conn readers/writers, responders, lanes, the chaos-stall
	// sleepers — must be gone.
	drop()
	if err := g.Close(); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
	leakDeadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > baseline+2 {
		if time.Now().After(leakDeadline) {
			buf := make([]byte, 1<<20)
			t.Fatalf("goroutine leak: %d live, baseline %d\n%s",
				runtime.NumGoroutine(), baseline, buf[:runtime.Stack(buf, true)])
		}
		time.Sleep(20 * time.Millisecond)
	}
}
