package wire

import (
	"bytes"
	"errors"
	"io"
	"strings"
	"testing"

	"napmon/internal/core"
)

func mustWatchReq(t *testing.T, id uint32, shape []int, data []float64) []byte {
	t.Helper()
	frame, err := AppendWatchReq(nil, id, DefaultTenant, shape, data)
	if err != nil {
		t.Fatal(err)
	}
	return frame
}

func TestHeaderRoundTrip(t *testing.T) {
	frame := AppendHeader(nil, TypePing, 0xDEADBEEF, 0)
	if len(frame) != HeaderSize {
		t.Fatalf("header frame is %d bytes, want %d", len(frame), HeaderSize)
	}
	h, err := ParseHeader(frame)
	if err != nil {
		t.Fatal(err)
	}
	if h.Version != Version || h.Type != TypePing || h.ID != 0xDEADBEEF || h.PayloadLen != 0 {
		t.Fatalf("header round trip: %+v", h)
	}
}

func TestParseHeaderRejects(t *testing.T) {
	good := AppendHeader(nil, TypePing, 7, 0)
	cases := map[string]func([]byte) []byte{
		"short":        func(b []byte) []byte { return b[:HeaderSize-1] },
		"bad version":  func(b []byte) []byte { b[0] = Version + 1; return b },
		"zero version": func(b []byte) []byte { b[0] = 0; return b },
		"bad type":     func(b []byte) []byte { b[1] = TypeErr + 1; return b },
		"zero type":    func(b []byte) []byte { b[1] = 0; return b },
		"bad sum":      func(b []byte) []byte { b[10] ^= 0xFF; return b },
		"flipped id":   func(b []byte) []byte { b[3] ^= 0x01; return b },
	}
	for name, mutate := range cases {
		b := mutate(append([]byte(nil), good...))
		if _, err := ParseHeader(b); err == nil {
			t.Errorf("%s: accepted", name)
		} else if !errors.Is(err, ErrMalformed) {
			t.Errorf("%s: error %v does not wrap ErrMalformed", name, err)
		}
	}
	// Mutating version, type or id invalidates the checksum; a forged
	// frame must also recompute it, and then the explicit field checks
	// still reject.
	forged := AppendHeader(nil, TypePing, 7, 0)
	forged[0] = Version + 1
	forged[10] = byte(headerSum(forged[:10]))
	forged[11] = byte(headerSum(forged[:10]) >> 8)
	if _, err := ParseHeader(forged); err == nil {
		t.Error("forged version with valid checksum accepted")
	}
	over := AppendHeader(nil, TypeWatchReq, 7, MaxPayload+1)
	if _, err := ParseHeader(over); err == nil {
		t.Error("over-cap payload length accepted")
	}
}

func TestBasicPacketFilter(t *testing.T) {
	frame := mustWatchReq(t, 3, []int{2, 2}, []float64{1, 2, 3, 4})
	if !BasicPacketFilter(frame) {
		t.Fatal("rejected a valid packet")
	}
	if BasicPacketFilter(frame[:len(frame)-1]) {
		t.Fatal("accepted a truncated packet")
	}
	if BasicPacketFilter(append(append([]byte(nil), frame...), 0)) {
		t.Fatal("accepted a padded packet")
	}
	if BasicPacketFilter(nil) || BasicPacketFilter(make([]byte, HeaderSize)) {
		t.Fatal("accepted garbage")
	}
	mangled := append([]byte(nil), frame...)
	mangled[5] ^= 0x80
	if BasicPacketFilter(mangled) {
		t.Fatal("accepted a bit-flipped header")
	}
}

func TestReadFrame(t *testing.T) {
	frame := mustWatchReq(t, 9, []int{3}, []float64{0.5, -0.25, 8})
	h, payload, err := ReadFrame(bytes.NewReader(frame), nil)
	if err != nil {
		t.Fatal(err)
	}
	if h.Type != TypeWatchReq || h.ID != 9 {
		t.Fatalf("header %+v", h)
	}
	if !bytes.Equal(payload, frame[HeaderSize:]) {
		t.Fatal("payload mismatch")
	}
	// Two frames back to back parse cleanly off one stream.
	double := append(append([]byte(nil), frame...), AppendPing(nil, 1)...)
	r := bytes.NewReader(double)
	if _, _, err := ReadFrame(r, nil); err != nil {
		t.Fatal(err)
	}
	if h2, _, err := ReadFrame(r, nil); err != nil || h2.Type != TypePing {
		t.Fatalf("second frame: %+v, %v", h2, err)
	}
	// Truncated payload is an error, not a hang or a short read.
	if _, _, err := ReadFrame(bytes.NewReader(frame[:len(frame)-2]), nil); err == nil {
		t.Fatal("truncated payload accepted")
	}
	if _, _, err := ReadFrame(bytes.NewReader(nil), nil); !errors.Is(err, io.EOF) {
		t.Fatalf("empty stream: %v, want EOF", err)
	}
}

func TestWatchReqRoundTrip(t *testing.T) {
	shape := []int{1, 28, 28}
	data := make([]float64, 784)
	for i := range data {
		data[i] = float64(i%256) / 256 // power-of-two denominator: exact in float32
	}
	frame, err := AppendWatchReq(nil, 42, 0xCAFE, shape, data)
	if err != nil {
		t.Fatal(err)
	}
	h, err := ParseHeader(frame)
	if err != nil {
		t.Fatal(err)
	}
	if int(h.PayloadLen) != len(frame)-HeaderSize {
		t.Fatal("header length does not cover the payload")
	}
	tenant, gotShape, gotData, err := DecodeWatchReq(frame[HeaderSize:])
	if err != nil {
		t.Fatal(err)
	}
	if tenant != 0xCAFE {
		t.Fatalf("tenant %#x, want 0xCAFE", tenant)
	}
	if len(gotShape) != 3 || gotShape[0] != 1 || gotShape[1] != 28 || gotShape[2] != 28 {
		t.Fatalf("shape %v", gotShape)
	}
	for i := range data {
		if gotData[i] != data[i] { // values chosen exactly representable in f32
			t.Fatalf("value %d: %v != %v", i, gotData[i], data[i])
		}
	}
}

func TestWatchReqRejects(t *testing.T) {
	if _, err := AppendWatchReq(nil, 1, 0, nil, nil); err == nil {
		t.Fatal("empty shape accepted")
	}
	if _, err := AppendWatchReq(nil, 1, 0, []int{1, 2}, []float64{1}); err == nil {
		t.Fatal("shape/data mismatch accepted")
	}
	if _, err := AppendWatchReq(nil, 1, 0, []int{0}, nil); err == nil {
		t.Fatal("zero dim accepted")
	}
	if _, err := AppendWatchReq(nil, 1, 0, []int{1 << 11, 1 << 11}, nil); err == nil {
		t.Fatal("oversized tensor accepted")
	}
	if _, _, _, err := DecodeWatchReq(nil); err == nil {
		t.Fatal("empty payload accepted")
	}
	if _, _, _, err := DecodeWatchReq([]byte{0, 0, 0, 0}); err == nil {
		t.Fatal("tenant-only payload accepted")
	}
	if _, _, _, err := DecodeWatchReq([]byte{0, 0, 0, 0, 1}); err == nil {
		t.Fatal("truncated shape accepted")
	}
	if _, _, _, err := DecodeWatchReq([]byte{0, 0, 0, 0, 1, 2, 0, 0, 0, 0, 0}); err == nil {
		t.Fatal("short float payload accepted")
	}
	if _, _, _, err := DecodeWatchReq([]byte{0, 0, 0, 0, 1, 0, 0}); err == nil {
		t.Fatal("zero dimension accepted")
	}
}

func TestWatchRespRoundTrip(t *testing.T) {
	pat, err := core.ParsePattern("0110100111010001")
	if err != nil {
		t.Fatal(err)
	}
	want := core.Verdict{Class: 14, Monitored: true, OutOfPattern: true, Pattern: pat, Epoch: 31}
	frame, err := AppendWatchResp(nil, 5, want)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeWatchResp(frame[HeaderSize:])
	if err != nil {
		t.Fatal(err)
	}
	if got.Class != want.Class || got.Monitored != want.Monitored ||
		got.OutOfPattern != want.OutOfPattern || got.Epoch != want.Epoch ||
		core.Hamming(got.Pattern, want.Pattern) != 0 {
		t.Fatalf("round trip: %+v != %+v", got, want)
	}
	// The packed pattern on the wire is the shared core codec's bytes.
	if !bytes.Equal(frame[HeaderSize+13:], pat.AppendPacked(nil)) {
		t.Fatal("wire pattern bytes differ from core.AppendPacked")
	}
	if _, err := DecodeWatchResp(nil); err == nil {
		t.Fatal("empty payload accepted")
	}
	if _, err := DecodeWatchResp(frame[HeaderSize : len(frame)-1]); err == nil {
		t.Fatal("truncated pattern accepted")
	}
	bad := append([]byte(nil), frame[HeaderSize:]...)
	bad[0] |= 0x80
	if _, err := DecodeWatchResp(bad); err == nil {
		t.Fatal("unknown flag bits accepted")
	}
}

func TestLearnRoundTrip(t *testing.T) {
	pats := []core.Pattern{
		{true, false, true, true, false},
		{false, false, false, false, true},
		{true, true, true, true, true},
	}
	frame, err := AppendLearnReq(nil, 77, 9, 3, pats)
	if err != nil {
		t.Fatal(err)
	}
	tenant, class, got, err := DecodeLearnReq(frame[HeaderSize:])
	if err != nil {
		t.Fatal(err)
	}
	if tenant != 9 || class != 3 || len(got) != 3 {
		t.Fatalf("tenant %d, class %d, %d patterns", tenant, class, len(got))
	}
	for i := range pats {
		if core.Hamming(got[i], pats[i]) != 0 {
			t.Fatalf("pattern %d changed", i)
		}
	}

	resp := AppendLearnResp(nil, 77, 12345, 3)
	epoch, absorbed, err := DecodeLearnResp(resp[HeaderSize:])
	if err != nil || epoch != 12345 || absorbed != 3 {
		t.Fatalf("learn response: %d, %d, %v", epoch, absorbed, err)
	}

	if _, err := AppendLearnReq(nil, 1, 0, 1, nil); err == nil {
		t.Fatal("empty learn accepted")
	}
	if _, err := AppendLearnReq(nil, 1, 0, 1, []core.Pattern{{true}, {true, false}}); err == nil {
		t.Fatal("ragged widths accepted")
	}
	if _, err := AppendLearnReq(nil, 1, 0, -1, pats); err == nil {
		t.Fatal("negative class accepted")
	}
	if _, _, _, err := DecodeLearnReq(nil); err == nil {
		t.Fatal("empty payload accepted")
	}
	if _, _, _, err := DecodeLearnReq(frame[HeaderSize : len(frame)-1]); err == nil {
		t.Fatal("truncated patterns accepted")
	}
}

func TestStatsRoundTrip(t *testing.T) {
	want := Stats{
		Queued: 3, Submitted: 100, Served: 98, Rejected: 1, Shed: 1,
		Batches: 20, P50Ns: 700_000, P99Ns: 2_000_000, Lanes: 2,
		Epoch: 4, Updates: 3, GwReceived: 105, GwMalformed: 2, GwDropped: 1,
		Tenant: 7, Tenants: 3,
	}
	frame := AppendStatsResp(nil, 8, want)
	if len(frame) != HeaderSize+statsPayloadLen {
		t.Fatalf("stats frame is %d bytes, want %d", len(frame), HeaderSize+statsPayloadLen)
	}
	got, err := DecodeStatsResp(frame[HeaderSize:])
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatalf("round trip: %+v != %+v", got, want)
	}
	if _, err := DecodeStatsResp(frame[HeaderSize : len(frame)-1]); err == nil {
		t.Fatal("truncated stats accepted")
	}

	// The stats request addresses a tenant; an empty (v2-shaped) payload
	// selects the default tenant.
	req := AppendStatsReq(nil, 8, 5)
	tenant, err := DecodeStatsReq(req[HeaderSize:])
	if err != nil || tenant != 5 {
		t.Fatalf("stats request tenant %d, %v", tenant, err)
	}
	if tenant, err := DecodeStatsReq(nil); err != nil || tenant != DefaultTenant {
		t.Fatalf("empty stats request: tenant %d, %v", tenant, err)
	}
	if _, err := DecodeStatsReq([]byte{1, 2}); err == nil {
		t.Fatal("odd-length stats request accepted")
	}
}

func TestErrRoundTrip(t *testing.T) {
	frame := AppendErr(nil, 6, ErrCodeOverloaded, "queue full")
	code, msg, err := DecodeErr(frame[HeaderSize:])
	if err != nil || code != ErrCodeOverloaded || msg != "queue full" {
		t.Fatalf("err round trip: %d %q %v", code, msg, err)
	}
	// Oversized messages truncate to MaxErrMsg and still frame cleanly.
	long := AppendErr(nil, 6, ErrCodeInternal, strings.Repeat("x", 2*MaxErrMsg))
	if !BasicPacketFilter(long) {
		t.Fatal("truncated error frame fails the filter")
	}
	if _, msg, err := DecodeErr(long[HeaderSize:]); err != nil || len(msg) != MaxErrMsg {
		t.Fatalf("long message: %d bytes, %v", len(msg), err)
	}
	if _, _, err := DecodeErr(nil); err == nil {
		t.Fatal("empty payload accepted")
	}
	if _, _, err := DecodeErr([]byte{1, 5, 0, 'a'}); err == nil {
		t.Fatal("length-lying payload accepted")
	}
}
