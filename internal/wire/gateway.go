package wire

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"napmon/internal/core"
	"napmon/internal/obs"
	"napmon/internal/serve"
	"napmon/internal/tensor"
)

// GatewayConfig sizes a Gateway. The zero value of any field selects
// its default.
type GatewayConfig struct {
	// MaxInflight bounds the watch requests a single TCP connection may
	// have outstanding (submitted, verdict pending) before its reader
	// stalls, and the total outstanding datagram requests of the UDP
	// listener before new ones are shed (default 1024). Together with
	// the serve queue it bounds gateway memory no matter how hard
	// clients push.
	MaxInflight int
	// WriteQueue is the per-TCP-connection outbound frame queue depth
	// (default 256). A full queue stalls the producing goroutines — the
	// slow-consumer case degrades that one connection, not the server.
	WriteQueue int
	// ReadIdleTimeout bounds the silence between a TCP client's frames
	// (default 30s, negative disables): the reader arms a read deadline
	// before every frame, so a conn that stalls mid-header or goes mute
	// is reaped (Counters.Reaped) instead of pinning its goroutines
	// forever. Clients only waiting on in-flight verdicts still count as
	// idle — pipeline or ping within the window to stay alive.
	ReadIdleTimeout time.Duration
	// WriteTimeout bounds each response frame write (default 10s,
	// negative disables). A client that stops draining its socket beyond
	// what the write queue absorbs fails the write; the connection is
	// reaped rather than left wedged.
	WriteTimeout time.Duration
	// MalformedBudget is how many malformed-but-resyncable frames
	// (payloads that fail their codec — framing errors already kill the
	// stream) one TCP connection may send before the gateway stops
	// talking to it (default 8, negative disables). A peer speaking the
	// wrong dialect gets a few error frames to notice, not a permanent
	// error-reply amplifier.
	MalformedBudget int
}

func (c GatewayConfig) withDefaults() GatewayConfig {
	if c.MaxInflight == 0 {
		c.MaxInflight = 1024
	}
	if c.WriteQueue == 0 {
		c.WriteQueue = 256
	}
	if c.ReadIdleTimeout == 0 {
		c.ReadIdleTimeout = 30 * time.Second
	}
	if c.WriteTimeout == 0 {
		c.WriteTimeout = 10 * time.Second
	}
	if c.MalformedBudget == 0 {
		c.MalformedBudget = 8
	}
	return c
}

// GatewayCounters is a snapshot of a gateway's frame accounting.
type GatewayCounters struct {
	// Received counts frames accepted past the packet filter / stream
	// header validation, across both transports.
	Received uint64
	// Responded counts response frames successfully handed to a socket.
	Responded uint64
	// Malformed counts datagrams the packet filter rejected, stream
	// frames with invalid headers (those also kill their connection —
	// a byte stream cannot resync), and well-framed requests whose
	// payload failed its codec.
	Malformed uint64
	// Dropped counts watch requests shed under pressure: serve-queue
	// full (UDP only — TCP blocks instead) or the UDP in-flight cap.
	Dropped uint64
	// Reaped counts TCP connections torn down by a deadline — read-idle
	// silence or a response write that timed out.
	Reaped uint64
	// OverBudget counts TCP connections torn down for exhausting their
	// malformed-frame budget.
	OverBudget uint64
	// Conns is the number of currently live TCP connections.
	Conns uint64
}

// TenantLane is one routable serving lane: the server frames submit to,
// the monitor the learn path validates against, and the lane's own
// learn entry point. Learn must publish the update AND record it
// wherever the lane replicates from — a fleet registry appends the
// (epoch, delta) pair to its tenant's delta log, so followers see
// wire-published epochs too; going straight to Server().Update would
// silently skip that log and stall replication. A lane handed out by
// ResolveTenant is pinned — the gateway calls Release exactly once when
// the frame's work is done, so a fleet registry can drain an unloading
// tenant without killing the frame's in-flight batch. registry.Tenant
// implements it structurally.
type TenantLane interface {
	Server() *serve.Server
	Monitor() *core.Monitor
	Learn(delta map[int][]core.Pattern) (uint64, error)
	Release()
}

// TenantResolver pins the lane for a wire tenant id, or reports that no
// such tenant is loaded. It runs once per routed frame, so it must be
// cheap — an atomic table lookup, not a lock queue.
type TenantResolver func(id uint32) (TenantLane, error)

// staticLane adapts a fixed server/monitor pair — the single-tenant
// gateway — to the lane interface. Nothing ever unloads it, so Release
// is a no-op.
type staticLane struct {
	srv *serve.Server
	mon *core.Monitor
}

func (l staticLane) Server() *serve.Server  { return l.srv }
func (l staticLane) Monitor() *core.Monitor { return l.mon }
func (l staticLane) Release()               {}

// Learn publishes straight through the server: a static lane has no
// replication log to feed.
func (l staticLane) Learn(delta map[int][]core.Pattern) (uint64, error) {
	return l.srv.Update(delta)
}

// Gateway serves the binary wire protocol over UDP datagrams and
// persistent TCP streams, routing each frame by its tenant id to one
// serving lane and feeding that lane's micro-batching coalescer.
//
// Backpressure is transport-shaped. A TCP connection's reader submits
// with the blocking Submit and bounds its outstanding responses with a
// per-connection in-flight cap, so a server at capacity simply stops
// reading that socket and TCP flow control pushes back to the client —
// connection-level backpressure, no frame ever dropped. The UDP loop
// has no connection to stall, so it uses the non-blocking TrySubmit and
// sheds: queue-full or cap-full requests get a TypeErr/ErrCodeOverloaded
// reply and a Dropped tick.
//
// Responses carry the request's frame id and may be written out of
// order; pipelining clients match on id.
type Gateway struct {
	resolve TenantResolver
	tenants func() int
	cfg     GatewayConfig

	udp *net.UDPConn
	tcp net.Listener

	udpTokens chan struct{} // UDP outstanding-request cap

	mu     sync.Mutex
	conns  map[net.Conn]struct{}
	closed bool

	wg sync.WaitGroup // listener loops, conn readers/writers, responders

	received   atomic.Uint64
	responded  atomic.Uint64
	malformed  atomic.Uint64
	dropped    atomic.Uint64
	reaped     atomic.Uint64
	overBudget atomic.Uint64
	connCount  atomic.Uint64
}

// NewGateway wraps a running serve.Server (and the monitor it serves —
// the learn path and the stats epoch come from it) in a single-tenant
// protocol gateway: only the default tenant id (0) routes; every other
// id answers ErrCodeUnknownTenant. Call ListenUDP/ListenTCP to bind
// transports, Close to stop.
func NewGateway(srv *serve.Server, mon *core.Monitor, cfg GatewayConfig) *Gateway {
	lane := staticLane{srv: srv, mon: mon}
	return NewFleetGateway(func(id uint32) (TenantLane, error) {
		if id != DefaultTenant {
			return nil, fmt.Errorf("wire: tenant %d not loaded (single-tenant gateway)", id)
		}
		return lane, nil
	}, func() int { return 1 }, cfg)
}

// NewFleetGateway builds a multi-tenant gateway: every routed frame
// (watch, learn, stats) pins its lane through resolve for the duration
// of its work; count reports the fleet size for stats responses. A
// fleet registry's AcquireID is the intended resolver.
func NewFleetGateway(resolve TenantResolver, count func() int, cfg GatewayConfig) *Gateway {
	return &Gateway{
		resolve:   resolve,
		tenants:   count,
		cfg:       cfg.withDefaults(),
		udpTokens: make(chan struct{}, cfg.withDefaults().MaxInflight),
		conns:     make(map[net.Conn]struct{}),
	}
}

// Counters returns a snapshot of the gateway's frame accounting.
func (g *Gateway) Counters() GatewayCounters {
	return GatewayCounters{
		Received:   g.received.Load(),
		Responded:  g.responded.Load(),
		Malformed:  g.malformed.Load(),
		Dropped:    g.dropped.Load(),
		Reaped:     g.reaped.Load(),
		OverBudget: g.overBudget.Load(),
		Conns:      g.connCount.Load(),
	}
}

// ListenUDP binds the datagram transport and starts its read loop.
func (g *Gateway) ListenUDP(addr string) error {
	ua, err := net.ResolveUDPAddr("udp", addr)
	if err != nil {
		return fmt.Errorf("wire: resolve udp %q: %w", addr, err)
	}
	pc, err := net.ListenUDP("udp", ua)
	if err != nil {
		return err
	}
	// Requests burst in faster than inference drains them and responses
	// burst out at micro-batch boundaries; default-sized socket buffers
	// drop datagrams under both. Best-effort — the kernel clamps to its
	// configured max.
	pc.SetReadBuffer(4 << 20)
	pc.SetWriteBuffer(4 << 20)
	g.mu.Lock()
	if g.closed {
		g.mu.Unlock()
		pc.Close()
		return errors.New("wire: gateway closed")
	}
	g.udp = pc
	g.mu.Unlock()
	g.wg.Add(1)
	go g.serveUDP(pc)
	return nil
}

// ListenTCP binds the stream transport and starts its accept loop.
func (g *Gateway) ListenTCP(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	return g.ServeTCP(ln)
}

// ServeTCP starts the stream accept loop on an externally prepared
// listener — the seam fault-injection gates use to slide a
// chaos-wrapped listener under the gateway. The gateway owns ln from
// here on: Close closes it. ListenTCP is net.Listen followed by
// ServeTCP.
func (g *Gateway) ServeTCP(ln net.Listener) error {
	g.mu.Lock()
	if g.closed {
		g.mu.Unlock()
		ln.Close()
		return errors.New("wire: gateway closed")
	}
	g.tcp = ln
	g.mu.Unlock()
	g.wg.Add(1)
	go g.serveTCP(ln)
	return nil
}

// isClosed reports whether Close has begun — the accept and UDP read
// loops use it to tell a shutdown from a transient transport error.
func (g *Gateway) isClosed() bool {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.closed
}

// UDPAddr returns the bound UDP address (nil before ListenUDP).
func (g *Gateway) UDPAddr() net.Addr {
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.udp == nil {
		return nil
	}
	return g.udp.LocalAddr()
}

// TCPAddr returns the bound TCP address (nil before ListenTCP).
func (g *Gateway) TCPAddr() net.Addr {
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.tcp == nil {
		return nil
	}
	return g.tcp.Addr()
}

// Close stops the listeners, closes every live connection and waits
// for all gateway goroutines to exit. It does not shut down the
// serve.Server behind the gateway — pending futures still resolve
// (their responses go nowhere once the sockets are gone). Close the
// gateway before draining the server so in-flight verdicts can still
// be delivered.
func (g *Gateway) Close() error {
	g.mu.Lock()
	if g.closed {
		g.mu.Unlock()
		g.wg.Wait()
		return nil
	}
	g.closed = true
	udp, tcp := g.udp, g.tcp
	conns := make([]net.Conn, 0, len(g.conns))
	for c := range g.conns {
		conns = append(conns, c)
	}
	g.mu.Unlock()
	if udp != nil {
		udp.Close()
	}
	if tcp != nil {
		tcp.Close()
	}
	for _, c := range conns {
		c.Close()
	}
	g.wg.Wait()
	return nil
}

// respBufs recycles response encode buffers across requests.
var respBufs = sync.Pool{New: func() any { return make([]byte, 0, 512) }}

// --- UDP ---

// serveUDP is the datagram read loop: filter, decode, dispatch. One
// goroutine owns the reads; watch verdicts are awaited and written back
// by short-lived responder goroutines bounded by udpTokens.
func (g *Gateway) serveUDP(pc *net.UDPConn) {
	defer g.wg.Done()
	buf := make([]byte, MaxUDPFrame)
	for {
		n, raddr, err := pc.ReadFromUDP(buf)
		if err != nil {
			var ne net.Error
			if errors.As(err, &ne) && ne.Temporary() && !g.isClosed() { //nolint:staticcheck // transient datagram errors shouldn't kill the listener
				continue
			}
			return // closed (or unrecoverable): the loop owns no other state
		}
		pkt := buf[:n]
		if !BasicPacketFilter(pkt) {
			g.malformed.Add(1)
			continue
		}
		g.received.Add(1)
		h, _ := ParseHeader(pkt)
		payload := pkt[HeaderSize:]
		switch h.Type {
		case TypePing:
			g.writeUDP(pc, raddr, AppendPong(g.getBuf(), h.ID))
		case TypeStatsReq:
			frame, bad := g.handleStats(h.ID, payload)
			if bad {
				g.malformed.Add(1)
			}
			g.writeUDP(pc, raddr, frame)
		case TypeLearnReq:
			frame, bad := g.handleLearn(h.ID, payload)
			if bad {
				g.malformed.Add(1)
			}
			g.writeUDP(pc, raddr, frame)
		case TypeWatchReq:
			g.handleWatchUDP(pc, raddr, h.ID, payload)
		default:
			// A response type arriving at a server: answer with an error
			// rather than silently eating it, so a misconfigured peer
			// finds out.
			g.writeUDP(pc, raddr, AppendErr(g.getBuf(), h.ID, ErrCodeBadRequest,
				fmt.Sprintf("frame type %d is not a request", h.Type)))
		}
	}
}

// handleWatchUDP decodes and submits one datagram watch request. The
// read loop must never block on the serve queue (one stalled client
// would stall every client), so pressure turns into shedding here:
// no in-flight token or TrySubmit queue-full → ErrCodeOverloaded.
func (g *Gateway) handleWatchUDP(pc *net.UDPConn, raddr *net.UDPAddr, id uint32, payload []byte) {
	tenant, shape, data, err := DecodeWatchReq(payload)
	if err != nil {
		g.malformed.Add(1)
		g.writeUDP(pc, raddr, AppendErr(g.getBuf(), id, ErrCodeBadRequest, err.Error()))
		return
	}
	lane, err := g.resolve(tenant)
	if err != nil {
		g.writeUDP(pc, raddr, AppendErr(g.getBuf(), id, ErrCodeUnknownTenant, err.Error()))
		return
	}
	select {
	case g.udpTokens <- struct{}{}:
	default:
		lane.Release()
		g.dropped.Add(1)
		g.writeUDP(pc, raddr, AppendErr(g.getBuf(), id, ErrCodeOverloaded, "gateway at in-flight cap"))
		return
	}
	fut, err := lane.Server().TrySubmit(tensor.FromSlice(data, shape...))
	if err != nil {
		<-g.udpTokens
		lane.Release()
		g.writeUDP(pc, raddr, g.submitErrFrame(id, err))
		return
	}
	g.wg.Add(1)
	go func() {
		defer g.wg.Done()
		defer func() { <-g.udpTokens }()
		defer lane.Release() // lane stays pinned until the verdict is out
		v, err := fut.Wait()
		if err != nil {
			g.writeUDP(pc, raddr, AppendErr(g.getBuf(), id, ErrCodeShutdown, err.Error()))
			return
		}
		frame, err := AppendWatchResp(g.getBuf(), id, v)
		if err != nil {
			frame = AppendErr(frame, id, ErrCodeInternal, err.Error())
		}
		g.writeUDP(pc, raddr, frame)
	}()
}

// writeUDP sends one response datagram and returns the frame buffer to
// the pool. UDPConn writes are goroutine-safe; send failures are
// dropped on the floor like any datagram.
func (g *Gateway) writeUDP(pc *net.UDPConn, raddr *net.UDPAddr, frame []byte) {
	if _, err := pc.WriteToUDP(frame, raddr); err == nil {
		g.responded.Add(1)
	}
	g.putBuf(frame)
}

// --- TCP ---

// serveTCP is the stream accept loop. Transient accept failures
// (EMFILE bursts, aborted handshakes, injected faults) are retried
// after a short pause instead of silently killing the listener — only
// shutdown or a persistent transport error ends the loop.
func (g *Gateway) serveTCP(ln net.Listener) {
	defer g.wg.Done()
	for {
		c, err := ln.Accept()
		if err != nil {
			var ne net.Error
			if errors.As(err, &ne) && ne.Temporary() && !g.isClosed() { //nolint:staticcheck // Temporary is exactly the accept-retry signal
				time.Sleep(10 * time.Millisecond)
				continue
			}
			return
		}
		g.mu.Lock()
		if g.closed {
			g.mu.Unlock()
			c.Close()
			return
		}
		g.conns[c] = struct{}{}
		g.mu.Unlock()
		g.connCount.Add(1)
		g.wg.Add(1)
		go g.serveConn(c)
	}
}

// serveConn owns one persistent TCP connection: a reader goroutine
// (this one) decoding frames in arrival order, a writer goroutine
// draining the outbound queue, and one short-lived goroutine per
// in-flight watch awaiting its future. Backpressure is the blocking
// chain reader → inflight cap / serve queue → TCP flow control.
//
// The connection lives under three guards: a read deadline armed before
// every frame (idle or half-sent conns are reaped, not pinned), a write
// deadline per response (a client that stops draining is reaped once
// the write queue stops absorbing), and a malformed-payload budget
// (framing errors kill the stream outright — a byte stream cannot
// resync).
func (g *Gateway) serveConn(c net.Conn) {
	defer g.wg.Done()
	out := make(chan []byte, g.cfg.WriteQueue)
	inflight := make(chan struct{}, g.cfg.MaxInflight)
	var pending sync.WaitGroup

	// reap records this connection as deadline-killed, once, however
	// many of its deadlines fire (reader and writer can both time out).
	var reapedConn atomic.Bool
	reap := func() {
		if reapedConn.CompareAndSwap(false, true) {
			g.reaped.Add(1)
		}
	}

	g.wg.Add(1)
	writerDone := make(chan struct{})
	go func() { // writer: sole owner of conn writes
		defer g.wg.Done()
		defer close(writerDone)
		dead := false
		for frame := range out {
			if !dead {
				if g.cfg.WriteTimeout > 0 {
					c.SetWriteDeadline(time.Now().Add(g.cfg.WriteTimeout))
				}
				if _, err := c.Write(frame); err == nil {
					g.responded.Add(1)
				} else {
					// A failed stream write is terminal: close the conn so
					// the reader unblocks, then keep draining the queue so
					// producers never block on a dead connection.
					dead = true
					var ne net.Error
					if errors.As(err, &ne) && ne.Timeout() {
						reap()
					}
					c.Close()
				}
			}
			g.putBuf(frame)
		}
	}()

	badFrames := 0
	buf := make([]byte, 0, 4096)
readLoop:
	for {
		if g.cfg.ReadIdleTimeout > 0 {
			c.SetReadDeadline(time.Now().Add(g.cfg.ReadIdleTimeout))
		}
		h, payload, err := ReadFrame(c, buf)
		if err != nil {
			// A malformed header is an unresyncable stream — count it
			// and kill the connection. A deadline firing here is the
			// idle/half-frame reap. Hangups and transport errors just
			// end the connection.
			if errors.Is(err, ErrMalformed) {
				g.malformed.Add(1)
			}
			var ne net.Error
			if errors.As(err, &ne) && ne.Timeout() {
				reap()
			}
			break
		}
		buf = payload[:0]
		g.received.Add(1)
		// overBudget charges one malformed-but-framed payload against the
		// connection and reports when its budget is spent.
		overBudget := func() bool {
			g.malformed.Add(1)
			badFrames++
			return g.cfg.MalformedBudget > 0 && badFrames >= g.cfg.MalformedBudget
		}
		switch h.Type {
		case TypePing:
			out <- AppendPong(g.getBuf(), h.ID)
		case TypeStatsReq:
			frame, bad := g.handleStats(h.ID, payload)
			out <- frame
			if bad && overBudget() {
				g.overBudget.Add(1)
				break readLoop
			}
		case TypeLearnReq:
			frame, bad := g.handleLearn(h.ID, payload)
			out <- frame
			if bad && overBudget() {
				g.overBudget.Add(1)
				break readLoop
			}
		case TypeWatchReq:
			tenant, shape, data, err := DecodeWatchReq(payload)
			if err != nil {
				out <- AppendErr(g.getBuf(), h.ID, ErrCodeBadRequest, err.Error())
				if overBudget() {
					g.overBudget.Add(1)
					break readLoop
				}
				continue
			}
			lane, err := g.resolve(tenant)
			if err != nil {
				out <- AppendErr(g.getBuf(), h.ID, ErrCodeUnknownTenant, err.Error())
				continue
			}
			inflight <- struct{}{} // connection-level backpressure, cap in-flight
			fut, err := lane.Server().Submit(tensor.FromSlice(data, shape...))
			if err != nil {
				<-inflight
				lane.Release()
				out <- g.submitErrFrame(h.ID, err)
				continue
			}
			pending.Add(1)
			go func(id uint32) {
				defer pending.Done()
				defer func() { <-inflight }()
				defer lane.Release() // lane stays pinned until the verdict is out
				v, err := fut.Wait()
				if err != nil {
					out <- AppendErr(g.getBuf(), id, ErrCodeShutdown, err.Error())
					return
				}
				frame, err := AppendWatchResp(g.getBuf(), id, v)
				if err != nil {
					frame = AppendErr(frame, id, ErrCodeInternal, err.Error())
				}
				out <- frame
			}(h.ID)
		default:
			out <- AppendErr(g.getBuf(), h.ID, ErrCodeBadRequest,
				fmt.Sprintf("frame type %d is not a request", h.Type))
		}
	}
	// Teardown: stop reading, let every in-flight verdict flush (their
	// futures resolve once served — or failed by a server drain), wait
	// for the writer to drain the queue — closing the socket under it
	// would discard responses already earned — then release the
	// connection. The wait is bounded: each write carries WriteTimeout,
	// and a gateway-level Close still closes the socket directly.
	pending.Wait()
	close(out)
	<-writerDone
	g.mu.Lock()
	delete(g.conns, c)
	g.mu.Unlock()
	c.Close()
	g.connCount.Add(^uint64(0))
}

// --- shared handlers ---

// handleLearn decodes a learn request, routes it to its tenant lane,
// validates widths against that tenant's monitor and publishes the
// update through the lane's Learn (serialized, so epoch observation
// order matches publication order — and, for registry lanes, so the
// published epoch lands in the tenant's replication delta log).
// bad reports a payload its codec rejected: the transports count it
// (and the TCP reader charges it against the connection's budget) —
// semantic failures like width mismatches are well-formed, not bad.
func (g *Gateway) handleLearn(id uint32, payload []byte) (frame []byte, bad bool) {
	tenant, class, pats, err := DecodeLearnReq(payload)
	if err != nil {
		return AppendErr(g.getBuf(), id, ErrCodeBadRequest, err.Error()), true
	}
	lane, err := g.resolve(tenant)
	if err != nil {
		return AppendErr(g.getBuf(), id, ErrCodeUnknownTenant, err.Error()), false
	}
	defer lane.Release()
	if width := len(lane.Monitor().Neurons()); len(pats[0]) != width {
		return AppendErr(g.getBuf(), id, ErrCodeBadRequest,
			fmt.Sprintf("patterns have %d bits, monitor watches %d neurons", len(pats[0]), width)), false
	}
	epoch, err := lane.Learn(map[int][]core.Pattern{class: pats})
	if err != nil {
		return AppendErr(g.getBuf(), id, ErrCodeBadRequest, err.Error()), false
	}
	return AppendLearnResp(g.getBuf(), id, epoch, len(pats)), false
}

// handleStats decodes a stats request and answers with the addressed
// tenant's counter block merged with the gateway's frame accounting.
// bad as in handleLearn.
func (g *Gateway) handleStats(id uint32, payload []byte) (frame []byte, bad bool) {
	tenant, err := DecodeStatsReq(payload)
	if err != nil {
		return AppendErr(g.getBuf(), id, ErrCodeBadRequest, err.Error()), true
	}
	lane, err := g.resolve(tenant)
	if err != nil {
		return AppendErr(g.getBuf(), id, ErrCodeUnknownTenant, err.Error()), false
	}
	defer lane.Release()
	st := StatsFromServe(lane.Server().Stats())
	st.GwReceived = g.received.Load()
	st.GwMalformed = g.malformed.Load()
	st.GwDropped = g.dropped.Load()
	st.GwConns = uint32(g.connCount.Load())
	st.Tenant = tenant
	st.Tenants = uint32(g.tenants())
	return AppendStatsResp(g.getBuf(), id, st), false
}

// submitErrFrame maps a Submit/TrySubmit error to its wire error code.
func (g *Gateway) submitErrFrame(id uint32, err error) []byte {
	code := ErrCodeBadRequest
	switch {
	case errors.Is(err, serve.ErrServerClosed):
		code = ErrCodeShutdown
	case errors.Is(err, serve.ErrQueueFull):
		g.dropped.Add(1)
		code = ErrCodeOverloaded
	}
	return AppendErr(g.getBuf(), id, code, err.Error())
}

// RegisterMetrics exposes the gateway's frame accounting on reg under
// the napmon_gateway_ namespace, as scrape-time callbacks over the
// counters the transport loops already maintain. Call once per
// registry; pair with Server.RegisterMetrics on the same registry for
// the full serving picture.
func (g *Gateway) RegisterMetrics(reg *obs.Registry) {
	reg.CounterFunc("napmon_gateway_frames_received_total",
		"frames accepted past the packet filter / stream header validation",
		func() uint64 { return g.received.Load() })
	reg.CounterFunc("napmon_gateway_frames_responded_total",
		"response frames successfully handed to a socket",
		func() uint64 { return g.responded.Load() })
	reg.CounterFunc("napmon_gateway_frames_malformed_total",
		"datagrams, stream headers or payloads rejected as malformed",
		func() uint64 { return g.malformed.Load() })
	reg.CounterFunc("napmon_gateway_frames_dropped_total",
		"watch requests shed under pressure (queue full or in-flight cap)",
		func() uint64 { return g.dropped.Load() })
	reg.CounterFunc("napmon_gateway_conns_reaped_total",
		"TCP connections torn down by a read-idle or write deadline",
		func() uint64 { return g.reaped.Load() })
	reg.CounterFunc("napmon_gateway_conns_overbudget_total",
		"TCP connections torn down for exhausting their malformed-frame budget",
		func() uint64 { return g.overBudget.Load() })
	reg.GaugeFunc("napmon_gateway_tcp_conns",
		"live TCP connections",
		func() float64 { return float64(g.connCount.Load()) })
}

func (g *Gateway) getBuf() []byte { return respBufs.Get().([]byte)[:0] }

func (g *Gateway) putBuf(b []byte) {
	if cap(b) <= MaxUDPFrame {
		respBufs.Put(b[:0]) //nolint:staticcheck // slice header allocation is amortized by reuse
	}
}
