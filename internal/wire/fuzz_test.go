package wire

import (
	"bytes"
	"encoding/binary"
	"testing"

	"napmon/internal/core"
)

// FuzzWireRoundTrip fuzzes the binary protocol from both directions.
//
// Forward: fuzzed fields are encoded into each frame type, decoded
// back, and re-encoded — decode(encode(x)) must equal x and the
// re-encoding must be byte-identical (the encoding is canonical, which
// is what lets TestABI pin single golden byte strings).
//
// Backward: the raw fuzz input itself is fed to ParseHeader,
// BasicPacketFilter, ReadFrame and every payload decoder. None may
// panic, over-read, or allocate past the declared caps, no matter the
// bytes — this is the property that makes the gateway safe to point at
// the open internet.
func FuzzWireRoundTrip(f *testing.F) {
	f.Add(uint32(0), []byte{})
	f.Add(uint32(7), []byte{0x01, 0x03, 0x07, 0x00})
	f.Add(uint32(1<<31), []byte{0xFF, 0xFF, 0x00, 0x10, 0x20, 0x30, 0x40, 0x50, 0x60})
	ping := AppendPing(nil, 3)
	f.Add(uint32(3), ping)
	wr, _ := AppendWatchReq(nil, 5, 1, []int{2, 3}, []float64{1, 2, 3, 4, 5, 6})
	f.Add(uint32(5), wr)
	f.Fuzz(func(t *testing.T, id uint32, data []byte) {
		// --- Backward: arbitrary bytes never panic a decoder. ---
		ParseHeader(data)
		BasicPacketFilter(data)
		if h, payload, err := ReadFrame(bytes.NewReader(data), nil); err == nil {
			// A frame that parses off a stream must satisfy the filter
			// when reassembled as a datagram, and vice versa.
			whole := data[:HeaderSize+int(h.PayloadLen)]
			if !BasicPacketFilter(whole) {
				t.Fatalf("stream-parsed frame fails the packet filter: %#02x", whole)
			}
			_ = payload
		}
		DecodeWatchReq(data)
		DecodeWatchResp(data)
		DecodeLearnReq(data)
		DecodeLearnResp(data)
		DecodeStatsReq(data)
		DecodeStatsResp(data)
		DecodeErr(data)

		// --- Forward: structured round trips driven by the fuzz bytes. ---
		next := func(n int) []byte { // consume up to n bytes of fuzz input
			if n > len(data) {
				n = len(data)
			}
			out := data[:n]
			data = data[n:]
			return out
		}

		// Watch request: tenant, rank and dims from the input, kept tiny.
		tenant := id ^ 0xA5A5_0000
		dimBytes := next(3)
		if len(dimBytes) > 0 {
			shape := make([]int, 0, len(dimBytes))
			vals := 1
			for _, b := range dimBytes {
				d := int(b%7) + 1
				shape = append(shape, d)
				vals *= d
			}
			in := make([]float64, vals)
			for i, b := range next(vals) {
				in[i] = float64(int8(b)) / 16 // exact in float32
			}
			frame, err := AppendWatchReq(nil, id, tenant, shape, in)
			if err != nil {
				t.Fatalf("AppendWatchReq(%v): %v", shape, err)
			}
			if !BasicPacketFilter(frame) {
				t.Fatal("encoded watch request fails the filter")
			}
			h, err := ParseHeader(frame)
			if err != nil || h.ID != id || h.Type != TypeWatchReq {
				t.Fatalf("watch request header %+v, %v", h, err)
			}
			gotTenant, gotShape, gotData, err := DecodeWatchReq(frame[HeaderSize:])
			if err != nil {
				t.Fatalf("DecodeWatchReq: %v", err)
			}
			if gotTenant != tenant {
				t.Fatalf("tenant changed: %d -> %d", tenant, gotTenant)
			}
			for i := range shape {
				if gotShape[i] != shape[i] {
					t.Fatalf("shape changed: %v -> %v", shape, gotShape)
				}
			}
			for i := range in {
				if gotData[i] != in[i] {
					t.Fatalf("value %d changed: %v -> %v", i, in[i], gotData[i])
				}
			}
			re, err := AppendWatchReq(nil, id, gotTenant, gotShape, gotData)
			if err != nil || !bytes.Equal(re, frame) {
				t.Fatal("watch request re-encoding differs")
			}
		}

		// Watch response with a pattern built from fuzz bits.
		pb := next(4)
		pat := make(core.Pattern, len(pb)*8)
		for i := range pat {
			pat[i] = pb[i/8]&(1<<(i%8)) != 0
		}
		v := core.Verdict{
			Class:        int(id % 43),
			Monitored:    id%2 == 0,
			OutOfPattern: id%3 == 0,
			Pattern:      pat,
			Epoch:        uint64(id) * 0x9E3779B97F4A7C15,
		}
		frame, err := AppendWatchResp(nil, id, v)
		if err != nil {
			t.Fatalf("AppendWatchResp: %v", err)
		}
		got, err := DecodeWatchResp(frame[HeaderSize:])
		if err != nil {
			t.Fatalf("DecodeWatchResp: %v", err)
		}
		if got.Class != v.Class || got.Monitored != v.Monitored ||
			got.OutOfPattern != v.OutOfPattern || got.Epoch != v.Epoch ||
			len(got.Pattern) != len(v.Pattern) {
			t.Fatalf("verdict changed: %+v -> %+v", v, got)
		}
		if len(pat) > 0 && core.Hamming(got.Pattern, v.Pattern) != 0 {
			t.Fatal("pattern changed across the wire")
		}
		re, err := AppendWatchResp(nil, id, got)
		if err != nil || !bytes.Equal(re, frame) {
			t.Fatal("watch response re-encoding differs")
		}

		// Learn round trip when enough bits remain.
		if len(pat) > 0 {
			class := int(id % 64)
			lrFrame, err := AppendLearnReq(nil, id, tenant, class, []core.Pattern{pat, pat})
			if err != nil {
				t.Fatalf("AppendLearnReq: %v", err)
			}
			gotTenant, gotClass, gotPats, err := DecodeLearnReq(lrFrame[HeaderSize:])
			if err != nil || gotTenant != tenant || gotClass != class || len(gotPats) != 2 ||
				core.Hamming(gotPats[0], pat) != 0 || core.Hamming(gotPats[1], pat) != 0 {
				t.Fatalf("learn round trip: tenant %d, class %d, %d pats, %v", gotTenant, gotClass, len(gotPats), err)
			}
			reLr, err := AppendLearnReq(nil, id, gotTenant, gotClass, gotPats)
			if err != nil || !bytes.Equal(reLr, lrFrame) {
				t.Fatal("learn re-encoding differs")
			}
		}

		// Stats: fill every field from the id and round-trip.
		st := Stats{
			Queued: id, Submitted: uint64(id) + 1, Served: uint64(id) + 2,
			Rejected: uint64(id) + 3, Shed: uint64(id) + 4, Batches: uint64(id) + 5,
			P50Ns: uint64(id) + 6, P99Ns: uint64(id) + 7, Lanes: id + 8,
			Epoch: uint64(id) + 9, Updates: uint64(id) + 10,
			GwReceived: uint64(id) + 11, GwMalformed: uint64(id) + 12, GwDropped: uint64(id) + 13,
			Tenant: tenant, Tenants: id + 14,
		}
		stFrame := AppendStatsResp(nil, id, st)
		gotSt, err := DecodeStatsResp(stFrame[HeaderSize:])
		if err != nil || gotSt != st {
			t.Fatalf("stats round trip: %+v, %v", gotSt, err)
		}
		sReq := AppendStatsReq(nil, id, tenant)
		if gotTenant, err := DecodeStatsReq(sReq[HeaderSize:]); err != nil || gotTenant != tenant {
			t.Fatalf("stats request round trip: tenant %d, %v", gotTenant, err)
		}

		// Err frames round-trip any message bytes.
		msg := string(next(64))
		eFrame := AppendErr(nil, id, uint8(id%5)+1, msg)
		code, gotMsg, err := DecodeErr(eFrame[HeaderSize:])
		if err != nil || code != uint8(id%5)+1 || gotMsg != msg {
			t.Fatalf("err round trip: %d %q %v", code, gotMsg, err)
		}

		// Header id/length fields survive independent of checksum math.
		hb := AppendHeader(nil, TypePong, id, 77)
		if binary.LittleEndian.Uint32(hb[2:6]) != id {
			t.Fatal("id bytes moved")
		}
	})
}
