package wire

import (
	"context"
	"fmt"
	"net"
	"sync/atomic"
	"testing"
	"time"

	"napmon/internal/core"
	"napmon/internal/nn"
	"napmon/internal/rng"
	"napmon/internal/serve"
	"napmon/internal/tensor"
)

// toyLane trains the small 3-class dense network used across the serve
// tests and wraps it in a running server. The caller owns the server's
// shutdown — tests that count goroutines need to control teardown order
// themselves.
func toyLane(t testing.TB, seed uint64, scfg serve.Config) (*serve.Server, *nn.Network, *core.Monitor, []*tensor.Tensor) {
	t.Helper()
	r := rng.New(seed)
	centers := [][4]float64{
		{2, 0, -2, 0},
		{-2, 2, 0, -1},
		{0, -2, 2, 1},
	}
	gen := func(n int) []nn.Sample {
		out := make([]nn.Sample, 0, n)
		for i := 0; i < n; i++ {
			label := i % len(centers)
			x := tensor.New(4)
			for j := range x.Data() {
				x.Data()[j] = r.NormScaled(centers[label][j], 0.6)
			}
			out = append(out, nn.Sample{Input: x, Label: label})
		}
		return out
	}
	train := gen(300)
	network := nn.New(
		nn.NewDense(4, 16, r), nn.NewReLU(),
		nn.NewDense(16, 10, r), nn.NewReLU(),
		nn.NewDense(10, 3, r),
	)
	nn.Train(network, train, nn.TrainConfig{Epochs: 15, BatchSize: 16, LR: 0.05, Seed: seed})
	mon, err := core.Build(network, train, core.Config{Layer: 3, Gamma: 1})
	if err != nil {
		t.Fatal(err)
	}
	scfg.InputShape = []int{4}
	srv, err := serve.New(network, mon, scfg)
	if err != nil {
		t.Fatal(err)
	}
	val := gen(32)
	inputs := make([]*tensor.Tensor, len(val))
	for i, s := range val {
		inputs[i] = s.Input
	}
	return srv, network, mon, inputs
}

// toyGatewayParts is toyLane plus a gateway on loopback ephemeral ports
// (UDP and TCP), with teardown registered on the test.
func toyGatewayParts(t testing.TB, seed uint64, scfg serve.Config, gcfg GatewayConfig) (*Gateway, *nn.Network, *core.Monitor, []*tensor.Tensor) {
	t.Helper()
	srv, network, mon, inputs := toyLane(t, seed, scfg)
	g := NewGateway(srv, mon, gcfg)
	if err := g.ListenUDP("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	if err := g.ListenTCP("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		g.Close()
		ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			t.Errorf("server shutdown: %v", err)
		}
	})
	return g, network, mon, inputs
}

// udpExchange sends one frame and reads one response datagram.
func udpExchange(t *testing.T, c net.Conn, frame []byte) (Header, []byte) {
	t.Helper()
	if _, err := c.Write(frame); err != nil {
		t.Fatal(err)
	}
	c.SetReadDeadline(time.Now().Add(10 * time.Second))
	buf := make([]byte, MaxUDPFrame)
	n, err := c.Read(buf)
	if err != nil {
		t.Fatal(err)
	}
	pkt := buf[:n]
	if !BasicPacketFilter(pkt) {
		t.Fatalf("response fails the packet filter: %#02x", pkt[:min(n, 16)])
	}
	h, err := ParseHeader(pkt)
	if err != nil {
		t.Fatal(err)
	}
	return h, pkt[HeaderSize : HeaderSize+int(h.PayloadLen)]
}

func TestGatewayUDP(t *testing.T) {
	g, network, mon, inputs := toyGatewayParts(t, 21, serve.Config{MaxBatch: 8, MaxDelay: time.Millisecond}, GatewayConfig{})
	c, err := net.Dial("udp", g.UDPAddr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	// Ping → pong with the id echoed.
	h, _ := udpExchange(t, c, AppendPing(nil, 99))
	if h.Type != TypePong || h.ID != 99 {
		t.Fatalf("ping answered with %+v", h)
	}

	// Watch verdicts match the direct path (the monitor is frozen, so
	// reading it concurrently with the server is safe).
	// Toy inputs are generated float64s — not exactly representable in
	// float32 — so compare against the direct verdict of the narrowed
	// input, which is what the wire carries.
	for i, x := range inputs {
		frame, err := AppendWatchReq(nil, uint32(i), DefaultTenant, x.Shape(), x.Data())
		if err != nil {
			t.Fatal(err)
		}
		_, narrowShape, narrowData, err := DecodeWatchReq(frame[HeaderSize:])
		if err != nil {
			t.Fatal(err)
		}
		want := mon.WatchBatch(network, []*tensor.Tensor{tensor.FromSlice(narrowData, narrowShape...)})[0]
		h, payload := udpExchange(t, c, frame)
		if h.Type != TypeWatchResp || h.ID != uint32(i) {
			t.Fatalf("watch %d answered with %+v", i, h)
		}
		got, err := DecodeWatchResp(payload)
		if err != nil {
			t.Fatal(err)
		}
		if got.Class != want.Class || got.Monitored != want.Monitored ||
			got.OutOfPattern != want.OutOfPattern ||
			core.Hamming(got.Pattern, want.Pattern) != 0 {
			t.Fatalf("watch %d: wire verdict %+v != direct %+v", i, got, want)
		}
	}

	// Stats reflects the served traffic and the gateway accounting.
	h, payload := udpExchange(t, c, AppendStatsReq(nil, 1000, DefaultTenant))
	if h.Type != TypeStatsResp {
		t.Fatalf("stats answered with %+v", h)
	}
	st, err := DecodeStatsResp(payload)
	if err != nil {
		t.Fatal(err)
	}
	if st.Served < uint64(len(inputs)) {
		t.Fatalf("stats served %d, want >= %d", st.Served, len(inputs))
	}
	if st.GwReceived < uint64(len(inputs))+2 {
		t.Fatalf("stats gw received %d, want >= %d", st.GwReceived, len(inputs)+2)
	}

	// Learn absorbs a pattern and publishes a new epoch.
	width := len(mon.Neurons())
	pat := make(core.Pattern, width)
	for i := range pat {
		pat[i] = i%2 == 0
	}
	before := mon.Epoch()
	lr, err := AppendLearnReq(nil, 2000, DefaultTenant, 1, []core.Pattern{pat})
	if err != nil {
		t.Fatal(err)
	}
	h, payload = udpExchange(t, c, lr)
	if h.Type != TypeLearnResp {
		code, msg, _ := DecodeErr(payload)
		t.Fatalf("learn answered with %+v (code %d: %s)", h, code, msg)
	}
	epoch, absorbed, err := DecodeLearnResp(payload)
	if err != nil || absorbed != 1 || epoch != before+1 {
		t.Fatalf("learn: epoch %d (before %d), absorbed %d, %v", epoch, before, absorbed, err)
	}

	// A wrong-width learn is a clean error, not a dead gateway.
	lr, err = AppendLearnReq(nil, 2001, DefaultTenant, 1, []core.Pattern{{true, false}})
	if err != nil {
		t.Fatal(err)
	}
	h, payload = udpExchange(t, c, lr)
	if h.Type != TypeErr {
		t.Fatalf("bad-width learn answered with %+v", h)
	}
	if code, _, err := DecodeErr(payload); err != nil || code != ErrCodeBadRequest {
		t.Fatalf("bad-width learn code %d, %v", code, err)
	}

	// A response type sent to the server is answered with an error.
	h, _ = udpExchange(t, c, AppendPong(nil, 3000))
	if h.Type != TypeErr {
		t.Fatalf("pong-at-server answered with %+v", h)
	}

	// Garbage datagrams are filtered and counted, never answered.
	malformedBefore := g.Counters().Malformed
	if _, err := c.Write([]byte("GET / HTTP/1.1\r\n\r\n")); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for g.Counters().Malformed == malformedBefore {
		if time.Now().After(deadline) {
			t.Fatal("malformed datagram never counted")
		}
		time.Sleep(time.Millisecond)
	}
}

func TestGatewayTCP(t *testing.T) {
	g, network, mon, inputs := toyGatewayParts(t, 22, serve.Config{MaxBatch: 8, MaxDelay: time.Millisecond}, GatewayConfig{})
	c, err := net.Dial("tcp", g.TCPAddr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	c.SetDeadline(time.Now().Add(time.Minute))

	// Pipeline every watch request up front on the persistent
	// connection, then collect responses (possibly out of order) and
	// match them to expectations by frame id.
	want := make(map[uint32]core.Verdict, len(inputs))
	var frames []byte
	for i, x := range inputs {
		frame, err := AppendWatchReq(nil, uint32(i), DefaultTenant, x.Shape(), x.Data())
		if err != nil {
			t.Fatal(err)
		}
		_, narrowShape, narrowData, err := DecodeWatchReq(frame[HeaderSize:])
		if err != nil {
			t.Fatal(err)
		}
		want[uint32(i)] = mon.WatchBatch(network, []*tensor.Tensor{tensor.FromSlice(narrowData, narrowShape...)})[0]
		frames = append(frames, frame...)
	}
	if _, err := c.Write(frames); err != nil {
		t.Fatal(err)
	}
	for range inputs {
		h, payload, err := ReadFrame(c, nil)
		if err != nil {
			t.Fatal(err)
		}
		if h.Type != TypeWatchResp {
			t.Fatalf("pipelined watch answered with %+v", h)
		}
		w, ok := want[h.ID]
		if !ok {
			t.Fatalf("duplicate or unknown response id %d", h.ID)
		}
		delete(want, h.ID)
		got, err := DecodeWatchResp(payload)
		if err != nil {
			t.Fatal(err)
		}
		if got.Class != w.Class || got.OutOfPattern != w.OutOfPattern {
			t.Fatalf("id %d: wire verdict %+v != direct %+v", h.ID, got, w)
		}
	}
	if len(want) != 0 {
		t.Fatalf("%d responses missing", len(want))
	}

	// Stats over the same connection.
	if _, err := c.Write(AppendStatsReq(nil, 7, DefaultTenant)); err != nil {
		t.Fatal(err)
	}
	h, payload, err := ReadFrame(c, nil)
	if err != nil || h.Type != TypeStatsResp {
		t.Fatalf("stats: %+v, %v", h, err)
	}
	st, err := DecodeStatsResp(payload)
	if err != nil {
		t.Fatal(err)
	}
	if st.Served < uint64(len(inputs)) {
		t.Fatalf("stats served %d, want >= %d", st.Served, len(inputs))
	}
	if st.GwDropped != 0 || st.GwMalformed != 0 {
		t.Fatalf("clean TCP run dropped %d / malformed %d", st.GwDropped, st.GwMalformed)
	}
}

// TestGatewayTCPMalformedKillsConn: a garbage header is unresyncable,
// so the gateway counts it and closes that connection — while other
// connections keep working.
func TestGatewayTCPMalformedKillsConn(t *testing.T) {
	g, _, _, inputs := toyGatewayParts(t, 23, serve.Config{MaxBatch: 4, MaxDelay: time.Millisecond}, GatewayConfig{})

	bad, err := net.Dial("tcp", g.TCPAddr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer bad.Close()
	if _, err := bad.Write([]byte("garbage garbage ")); err != nil {
		t.Fatal(err)
	}
	bad.SetReadDeadline(time.Now().Add(10 * time.Second))
	onebyte := make([]byte, 1)
	if _, err := bad.Read(onebyte); err == nil {
		t.Fatal("connection survived a malformed header")
	}
	if got := g.Counters().Malformed; got == 0 {
		t.Fatal("malformed stream frame not counted")
	}

	good, err := net.Dial("tcp", g.TCPAddr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer good.Close()
	good.SetDeadline(time.Now().Add(time.Minute))
	frame, err := AppendWatchReq(nil, 1, DefaultTenant, inputs[0].Shape(), inputs[0].Data())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := good.Write(frame); err != nil {
		t.Fatal(err)
	}
	if h, _, err := ReadFrame(good, nil); err != nil || h.Type != TypeWatchResp {
		t.Fatalf("fresh connection after a poisoned one: %+v, %v", h, err)
	}
}

// TestGatewayTCPSustained pushes a few hundred pipelined requests from
// several connections through a small queue, exercising the
// backpressure chain (inflight cap → Submit block → TCP flow control)
// without dropping a single frame.
func TestGatewayTCPSustained(t *testing.T) {
	g, _, _, inputs := toyGatewayParts(t, 24,
		serve.Config{MaxBatch: 8, MaxDelay: time.Millisecond, QueueDepth: 4},
		GatewayConfig{MaxInflight: 8, WriteQueue: 4})
	const conns, perConn = 4, 100
	errc := make(chan error, conns)
	for ci := 0; ci < conns; ci++ {
		go func(ci int) {
			errc <- func() error {
				c, err := net.Dial("tcp", g.TCPAddr().String())
				if err != nil {
					return err
				}
				defer c.Close()
				c.SetDeadline(time.Now().Add(time.Minute))
				done := make(chan error, 1)
				go func() {
					var buf []byte
					for i := 0; i < perConn; i++ {
						h, payload, err := ReadFrame(c, buf)
						if err != nil {
							done <- err
							return
						}
						buf = payload[:0]
						if h.Type != TypeWatchResp {
							done <- &net.AddrError{Err: "unexpected frame", Addr: ""}
							return
						}
					}
					done <- nil
				}()
				for i := 0; i < perConn; i++ {
					x := inputs[(ci+i)%len(inputs)]
					frame, err := AppendWatchReq(nil, uint32(i), DefaultTenant, x.Shape(), x.Data())
					if err != nil {
						return err
					}
					if _, err := c.Write(frame); err != nil {
						return err
					}
				}
				return <-done
			}()
		}(ci)
	}
	for i := 0; i < conns; i++ {
		if err := <-errc; err != nil {
			t.Fatal(err)
		}
	}
	ct := g.Counters()
	if ct.Received != conns*perConn {
		t.Fatalf("received %d frames, want %d", ct.Received, conns*perConn)
	}
	if ct.Responded != conns*perConn {
		t.Fatalf("responded %d frames, want %d", ct.Responded, conns*perConn)
	}
	if ct.Dropped != 0 || ct.Malformed != 0 {
		t.Fatalf("sustained TCP run dropped %d / malformed %d", ct.Dropped, ct.Malformed)
	}
}

// TestGatewayCloseIdempotent: Close twice, with a connection open, is
// clean; the conn count drains to zero.
func TestGatewayCloseIdempotent(t *testing.T) {
	g, _, _, _ := toyGatewayParts(t, 25, serve.Config{}, GatewayConfig{})
	c, err := net.Dial("tcp", g.TCPAddr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Write(AppendPing(nil, 1)); err != nil {
		t.Fatal(err)
	}
	if h, _, err := ReadFrame(c, nil); err != nil || h.Type != TypePong {
		t.Fatalf("ping before close: %+v, %v", h, err)
	}
	if err := g.Close(); err != nil {
		t.Fatal(err)
	}
	if err := g.Close(); err != nil {
		t.Fatal(err)
	}
	if got := g.Counters().Conns; got != 0 {
		t.Fatalf("%d conns live after Close", got)
	}
	if err := g.ListenTCP("127.0.0.1:0"); err == nil {
		t.Fatal("ListenTCP accepted after Close")
	}
}

// fleetLane is a resolver-side fake: a real serving lane plus pin
// accounting, standing in for a registry tenant.
type fleetLane struct {
	srv      *serve.Server
	mon      *core.Monitor
	acquires *atomic.Int64
	releases *atomic.Int64
	learns   *atomic.Int64
}

func (l fleetLane) Server() *serve.Server  { return l.srv }
func (l fleetLane) Monitor() *core.Monitor { return l.mon }
func (l fleetLane) Release()               { l.releases.Add(1) }

// Learn counts the call before publishing, pinning the gateway to the
// lane's learn entry point: a registry lane's Learn is what feeds its
// replication delta log, so a gateway that published via
// Server().Update directly would leak epochs past every follower.
func (l fleetLane) Learn(delta map[int][]core.Pattern) (uint64, error) {
	l.learns.Add(1)
	return l.srv.Update(delta)
}

// TestFleetGatewayRouting drives the v3 tenant dimension end to end
// over UDP: frames route to the lane their tenant id names, an unknown
// id answers ErrCodeUnknownTenant, stats report the addressed tenant,
// and every resolved pin is released.
func TestFleetGatewayRouting(t *testing.T) {
	r := rng.New(31)
	mkLane := func() fleetLane {
		net := nn.New(
			nn.NewDense(4, 8, r), nn.NewReLU(),
			nn.NewDense(8, 3, r),
		)
		samples := make([]nn.Sample, 0, 24)
		for i := 0; i < 24; i++ {
			x := tensor.New(4)
			for j := range x.Data() {
				x.Data()[j] = r.NormScaled(0, 1)
			}
			samples = append(samples, nn.Sample{Input: x, Label: i % 3})
		}
		mon, err := core.Build(net, samples, core.Config{Layer: 1, Gamma: 1})
		if err != nil {
			t.Fatal(err)
		}
		srv, err := serve.New(net, mon, serve.Config{MaxBatch: 4, MaxDelay: time.Millisecond, InputShape: []int{4}})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() {
			ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
			defer cancel()
			srv.Shutdown(ctx)
		})
		return fleetLane{srv: srv, mon: mon, acquires: new(atomic.Int64), releases: new(atomic.Int64), learns: new(atomic.Int64)}
	}
	lanes := map[uint32]fleetLane{0: mkLane(), 7: mkLane()}
	g := NewFleetGateway(func(id uint32) (TenantLane, error) {
		l, ok := lanes[id]
		if !ok {
			return nil, fmt.Errorf("tenant %d not loaded", id)
		}
		l.acquires.Add(1)
		return l, nil
	}, func() int { return len(lanes) }, GatewayConfig{})
	if err := g.ListenUDP("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { g.Close() })
	c, err := net.Dial("udp", g.UDPAddr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	// Watch frames land on the lane their tenant id names.
	input := tensor.New(4)
	for tenant, wantEpochBump := range map[uint32]bool{0: false, 7: true} {
		frame, err := AppendWatchReq(nil, 100+tenant, tenant, input.Shape(), input.Data())
		if err != nil {
			t.Fatal(err)
		}
		h, _ := udpExchange(t, c, frame)
		if h.Type != TypeWatchResp {
			t.Fatalf("tenant %d watch answered with %+v", tenant, h)
		}
		_ = wantEpochBump
	}

	// A learn addressed to tenant 7 moves only tenant 7's epoch.
	before0, before7 := lanes[0].mon.Epoch(), lanes[7].mon.Epoch()
	pat := make(core.Pattern, len(lanes[7].mon.Neurons()))
	lr, err := AppendLearnReq(nil, 200, 7, 1, []core.Pattern{pat})
	if err != nil {
		t.Fatal(err)
	}
	h, payload := udpExchange(t, c, lr)
	if h.Type != TypeLearnResp {
		code, msg, _ := DecodeErr(payload)
		t.Fatalf("fleet learn answered with %+v (code %d: %s)", h, code, msg)
	}
	if got := lanes[7].mon.Epoch(); got != before7+1 {
		t.Fatalf("tenant 7 epoch %d, want %d", got, before7+1)
	}
	if got := lanes[0].mon.Epoch(); got != before0 {
		t.Fatalf("tenant 0 epoch moved to %d on a tenant-7 learn", got)
	}
	if got := lanes[7].learns.Load(); got != 1 {
		t.Fatalf("learn frame went through lane.Learn %d times, want 1 (replication log would miss the epoch)", got)
	}

	// Stats report the addressed tenant and the fleet size.
	h, payload = udpExchange(t, c, AppendStatsReq(nil, 300, 7))
	if h.Type != TypeStatsResp {
		t.Fatalf("fleet stats answered with %+v", h)
	}
	st, err := DecodeStatsResp(payload)
	if err != nil {
		t.Fatal(err)
	}
	if st.Tenant != 7 || st.Tenants != 2 {
		t.Fatalf("stats tenant %d of %d, want 7 of 2", st.Tenant, st.Tenants)
	}
	if st.Epoch != before7+1 {
		t.Fatalf("stats epoch %d, want tenant 7's %d", st.Epoch, before7+1)
	}

	// An unloaded tenant id answers ErrCodeUnknownTenant for every
	// request type.
	wf, err := AppendWatchReq(nil, 400, 3, input.Shape(), input.Data())
	if err != nil {
		t.Fatal(err)
	}
	lf, err := AppendLearnReq(nil, 401, 3, 1, []core.Pattern{pat})
	if err != nil {
		t.Fatal(err)
	}
	for _, frame := range [][]byte{wf, lf, AppendStatsReq(nil, 402, 3)} {
		h, payload := udpExchange(t, c, frame)
		if h.Type != TypeErr {
			t.Fatalf("unknown tenant answered with %+v", h)
		}
		if code, _, err := DecodeErr(payload); err != nil || code != ErrCodeUnknownTenant {
			t.Fatalf("unknown tenant code %d, %v", code, err)
		}
	}

	// Close the gateway: every pin taken by the resolver must have been
	// released — the lease discipline a draining registry relies on.
	if err := g.Close(); err != nil {
		t.Fatal(err)
	}
	for id, l := range lanes {
		if a, r := l.acquires.Load(), l.releases.Load(); a == 0 || a != r {
			t.Fatalf("tenant %d: %d acquires, %d releases", id, a, r)
		}
	}
}
