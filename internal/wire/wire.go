// Package wire is the versioned compact binary protocol of the serving
// stack: the frame layout, the cheap first-bytes packet filter, and the
// request/response codecs for the watch / learn / stats operations the
// HTTP front end (cmd/napmon-serve) exposes as JSON. The gateway
// (gateway.go, behind cmd/napmon-gateway) speaks it over UDP datagrams
// and persistent TCP streams; cmd/napmon-soak generates load in it.
//
// # Frame layout
//
// Every frame is a fixed 12-byte little-endian header followed by a
// payload of exactly the header's declared length:
//
//	offset size field
//	0      1    version (Version; a version bump breaks old peers loudly)
//	1      1    frame type (Type*)
//	2      4    frame id, uint32 LE — chosen by the requester, echoed
//	            verbatim in the response, so responses may arrive out of
//	            order over a pipelined connection
//	6      4    payload length, uint32 LE
//	10     2    header checksum, uint16 LE over bytes 0..9 (headerSum)
//
// The header doubles as the length prefix on streams and as the cheap
// packet filter on datagrams: BasicPacketFilter validates version, type,
// declared-vs-actual length and the checksum from the first 12 bytes
// alone, so garbage and cross-protocol traffic is dropped before any
// payload work — modeled on udpx's BasicPacketFilter.
//
// Activation patterns travel bit-packed (core.Pattern.AppendPacked /
// core.UnpackPattern — 8 neurons per byte, zero pad bits, the same codec
// behind Pattern.Key), never as 0/1 strings: a 70-neuron pattern is 9
// bytes on this protocol versus 72 on the JSON path. Input tensors
// travel as float32, halving the dominant payload versus float64 with
// no observable effect on verdicts (inputs are normalized pixels).
//
// The exact bytes of every frame type are pinned by TestABI
// (abi_test.go): any accidental wire break fails loudly against golden
// bytes, and FuzzWireRoundTrip holds decode(encode(x)) == x while
// decoding arbitrary bytes never panics or over-reads.
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"

	"napmon/internal/core"
	"napmon/internal/serve"
)

const (
	// Version is the protocol version carried in byte 0 of every frame.
	// v2 extended the stats response with monitor-level counters
	// (monitored/out-of-pattern verdicts, gamma, recompiled plans) and
	// the gateway's live TCP connection count. v3 added the tenant
	// dimension for fleet serving: watch, learn and stats requests
	// carry a uint32 tenant id routing the frame to one registry lane,
	// and the stats response reports the answering tenant and the fleet
	// size. Tenant 0 is the default tenant, preserving v2's semantics
	// for single-tenant deployments.
	Version = 3

	// DefaultTenant is the wire id of the default tenant — the only
	// tenant a single-tenant gateway serves, and what pre-fleet clients
	// implicitly addressed.
	DefaultTenant uint32 = 0

	// HeaderSize is the fixed frame header length in bytes.
	HeaderSize = 12

	// MaxPayload caps a declared payload length on streams (TCP): a
	// corrupt or hostile length field aborts the connection instead of
	// allocating gigabytes. Datagram frames are additionally bounded by
	// the UDP maximum (MaxUDPFrame).
	MaxPayload = 4 << 20

	// MaxUDPFrame is the largest whole frame (header + payload) that
	// fits one UDP datagram.
	MaxUDPFrame = 65507

	// MaxDims bounds the tensor rank a watch request may declare.
	MaxDims = 8

	// MaxTensorElems bounds the element count a watch request may
	// declare (1Mi float32 = 4 MiB, the stream payload cap).
	MaxTensorElems = 1 << 20

	// MaxPatterns bounds the patterns of one learn request.
	MaxPatterns = 4096

	// MaxErrMsg bounds the message of an error frame.
	MaxErrMsg = 1024
)

// Frame types. A request's response type is always request+1.
const (
	TypePing      uint8 = 1 // empty payload; liveness / readiness probe
	TypePong      uint8 = 2 // empty payload
	TypeWatchReq  uint8 = 3 // shape + float32 tensor
	TypeWatchResp uint8 = 4 // verdict with bit-packed pattern
	TypeLearnReq  uint8 = 5 // class + bit-packed patterns to absorb
	TypeLearnResp uint8 = 6 // published epoch + absorbed count
	TypeStatsReq  uint8 = 7 // empty payload
	TypeStatsResp uint8 = 8 // fixed counter block
	TypeErr       uint8 = 9 // code + message, response to any request
)

// typeValid reports whether t is a known frame type.
func typeValid(t uint8) bool { return t >= TypePing && t <= TypeErr }

// Error codes carried by TypeErr frames.
const (
	ErrCodeBadRequest    uint8 = 1 // malformed payload or rejected input
	ErrCodeShutdown      uint8 = 2 // server is draining; retry elsewhere
	ErrCodeOverloaded    uint8 = 3 // queue full; request was shed
	ErrCodeInternal      uint8 = 4
	ErrCodeUnknownTenant uint8 = 5 // tenant id not loaded on this peer (v3)
)

// Header is the decoded fixed frame header.
type Header struct {
	Version    uint8
	Type       uint8
	ID         uint32
	PayloadLen uint32
}

// headerSum is the 16-bit checksum over the first 10 header bytes: a
// multiply-xor mix, not a CRC — its job is to make stray traffic and
// bit rot fail the first-bytes filter cheaply, not to authenticate.
func headerSum(b []byte) uint16 {
	x := uint32(0x811C)
	for i := 0; i < 10; i++ {
		x = x*31 + uint32(b[i])
	}
	x ^= x >> 16
	return uint16(x)
}

// AppendHeader appends the 12-byte header for a payloadLen-byte payload
// of the given type and id.
func AppendHeader(dst []byte, typ uint8, id uint32, payloadLen int) []byte {
	off := len(dst)
	dst = append(dst, make([]byte, HeaderSize)...)
	h := dst[off:]
	h[0] = Version
	h[1] = typ
	binary.LittleEndian.PutUint32(h[2:6], id)
	binary.LittleEndian.PutUint32(h[6:10], uint32(payloadLen))
	binary.LittleEndian.PutUint16(h[10:12], headerSum(h[:10]))
	return dst
}

// finishFrame patches the payload length (everything appended after the
// header) and checksum of the frame whose header starts at hdrOff.
// Encoders that build payloads incrementally append a header with a
// zero length, append the payload, then call finishFrame.
func finishFrame(dst []byte, hdrOff int) []byte {
	h := dst[hdrOff:]
	binary.LittleEndian.PutUint32(h[6:10], uint32(len(dst)-hdrOff-HeaderSize))
	binary.LittleEndian.PutUint16(h[10:12], headerSum(h[:10]))
	return dst
}

// ErrMalformed tags frame-format violations (bad checksum, unknown
// version or type, oversized length) so a stream loop can tell a
// garbage-speaking peer from an ordinary transport error with
// errors.Is.
var ErrMalformed = errors.New("wire: malformed frame")

// ParseHeader decodes and validates the fixed header at the start of b:
// length, version, known type, payload bound and checksum. It does not
// look past HeaderSize bytes. Validation failures wrap ErrMalformed.
func ParseHeader(b []byte) (Header, error) {
	if len(b) < HeaderSize {
		return Header{}, fmt.Errorf("%w: header needs %d bytes, have %d", ErrMalformed, HeaderSize, len(b))
	}
	if got, want := binary.LittleEndian.Uint16(b[10:12]), headerSum(b[:10]); got != want {
		return Header{}, fmt.Errorf("%w: header checksum %#04x, want %#04x", ErrMalformed, got, want)
	}
	h := Header{
		Version:    b[0],
		Type:       b[1],
		ID:         binary.LittleEndian.Uint32(b[2:6]),
		PayloadLen: binary.LittleEndian.Uint32(b[6:10]),
	}
	if h.Version != Version {
		return Header{}, fmt.Errorf("%w: version %d, this peer speaks %d", ErrMalformed, h.Version, Version)
	}
	if !typeValid(h.Type) {
		return Header{}, fmt.Errorf("%w: unknown frame type %d", ErrMalformed, h.Type)
	}
	if h.PayloadLen > MaxPayload {
		return Header{}, fmt.Errorf("%w: payload length %d exceeds cap %d", ErrMalformed, h.PayloadLen, MaxPayload)
	}
	return h, nil
}

// BasicPacketFilter is the cheap first-bytes datagram filter: it
// accepts pkt only when a valid header is present and its declared
// payload length matches the datagram exactly. It allocates nothing and
// reads only the header, so the UDP read loop can discard garbage,
// truncated frames and cross-protocol traffic before any payload work.
func BasicPacketFilter(pkt []byte) bool {
	h, err := ParseHeader(pkt)
	if err != nil {
		return false
	}
	return int(h.PayloadLen) == len(pkt)-HeaderSize
}

// ReadFrame reads one whole frame from a stream: header, validation,
// then exactly PayloadLen payload bytes. buf is reused for the payload
// when large enough (pass nil to always allocate). The returned payload
// aliases buf (or a fresh allocation) and is valid until the next call
// with the same buf.
func ReadFrame(r io.Reader, buf []byte) (Header, []byte, error) {
	var hb [HeaderSize]byte
	if _, err := io.ReadFull(r, hb[:]); err != nil {
		return Header{}, nil, err
	}
	h, err := ParseHeader(hb[:])
	if err != nil {
		return Header{}, nil, err
	}
	n := int(h.PayloadLen)
	if cap(buf) < n {
		buf = make([]byte, n)
	}
	buf = buf[:n]
	if _, err := io.ReadFull(r, buf); err != nil {
		return Header{}, nil, fmt.Errorf("wire: short payload for %d-byte frame: %w", n, err)
	}
	return h, buf, nil
}

// --- ping / pong ---

// AppendPing appends an empty ping frame.
func AppendPing(dst []byte, id uint32) []byte { return AppendHeader(dst, TypePing, id, 0) }

// AppendPong appends an empty pong frame.
func AppendPong(dst []byte, id uint32) []byte { return AppendHeader(dst, TypePong, id, 0) }

// --- watch ---

// AppendWatchReq appends a watch request: uint32 tenant id, rank byte,
// uint16 dims, then the row-major input as float32. data must hold
// exactly prod(shape) values; the float64→float32 narrowing is the
// protocol's contract (inputs are normalized activations, float32
// halves the dominant payload).
func AppendWatchReq(dst []byte, id uint32, tenant uint32, shape []int, data []float64) ([]byte, error) {
	if len(shape) == 0 || len(shape) > MaxDims {
		return dst, fmt.Errorf("wire: tensor rank %d, want 1..%d", len(shape), MaxDims)
	}
	elems := 1
	for _, d := range shape {
		if d <= 0 || d > math.MaxUint16 {
			return dst, fmt.Errorf("wire: tensor dimension %d out of range [1,%d]", d, math.MaxUint16)
		}
		elems *= d
		if elems > MaxTensorElems {
			return dst, fmt.Errorf("wire: tensor exceeds %d elements", MaxTensorElems)
		}
	}
	if len(data) != elems {
		return dst, fmt.Errorf("wire: shape %v needs %d values, have %d", shape, elems, len(data))
	}
	hdrOff := len(dst)
	dst = AppendHeader(dst, TypeWatchReq, id, 0)
	dst = binary.LittleEndian.AppendUint32(dst, tenant)
	dst = append(dst, uint8(len(shape)))
	for _, d := range shape {
		dst = binary.LittleEndian.AppendUint16(dst, uint16(d))
	}
	for _, v := range data {
		dst = binary.LittleEndian.AppendUint32(dst, math.Float32bits(float32(v)))
	}
	return finishFrame(dst, hdrOff), nil
}

// DecodeWatchReq decodes a watch request payload into its tenant id, a
// shape and the float64 input values the tensor substrate works in. It
// validates rank, dimension and element bounds before allocating, so a
// hostile length can not balloon memory past MaxTensorElems.
func DecodeWatchReq(payload []byte) (tenant uint32, shape []int, data []float64, err error) {
	if len(payload) < 5 {
		return 0, nil, nil, fmt.Errorf("wire: watch request needs 5 bytes, have %d", len(payload))
	}
	tenant = binary.LittleEndian.Uint32(payload[0:4])
	payload = payload[4:]
	rank := int(payload[0])
	if rank == 0 || rank > MaxDims {
		return 0, nil, nil, fmt.Errorf("wire: tensor rank %d, want 1..%d", rank, MaxDims)
	}
	if len(payload) < 1+2*rank {
		return 0, nil, nil, fmt.Errorf("wire: watch request truncated in shape")
	}
	shape = make([]int, rank)
	elems := 1
	for i := range shape {
		d := int(binary.LittleEndian.Uint16(payload[1+2*i:]))
		if d == 0 {
			return 0, nil, nil, fmt.Errorf("wire: zero tensor dimension")
		}
		shape[i] = d
		elems *= d
		if elems > MaxTensorElems {
			return 0, nil, nil, fmt.Errorf("wire: tensor exceeds %d elements", MaxTensorElems)
		}
	}
	rest := payload[1+2*rank:]
	if len(rest) != 4*elems {
		return 0, nil, nil, fmt.Errorf("wire: shape %v needs %d payload bytes, have %d", shape, 4*elems, len(rest))
	}
	data = make([]float64, elems)
	for i := range data {
		data[i] = float64(math.Float32frombits(binary.LittleEndian.Uint32(rest[4*i:])))
	}
	return tenant, shape, data, nil
}

// Watch response flag bits.
const (
	watchFlagMonitored    = 1 << 0
	watchFlagOutOfPattern = 1 << 1
)

// AppendWatchResp appends a watch response: flags byte, uint16 class,
// uint64 epoch, then the activation pattern bit-packed behind its
// uint16 bit count.
func AppendWatchResp(dst []byte, id uint32, v core.Verdict) ([]byte, error) {
	if v.Class < 0 || v.Class > math.MaxUint16 {
		return dst, fmt.Errorf("wire: class %d out of range [0,%d]", v.Class, math.MaxUint16)
	}
	if len(v.Pattern) > math.MaxUint16 {
		return dst, fmt.Errorf("wire: pattern of %d bits exceeds %d", len(v.Pattern), math.MaxUint16)
	}
	hdrOff := len(dst)
	dst = AppendHeader(dst, TypeWatchResp, id, 0)
	var flags uint8
	if v.Monitored {
		flags |= watchFlagMonitored
	}
	if v.OutOfPattern {
		flags |= watchFlagOutOfPattern
	}
	dst = append(dst, flags)
	dst = binary.LittleEndian.AppendUint16(dst, uint16(v.Class))
	dst = binary.LittleEndian.AppendUint64(dst, v.Epoch)
	dst = binary.LittleEndian.AppendUint16(dst, uint16(len(v.Pattern)))
	dst = v.Pattern.AppendPacked(dst)
	return finishFrame(dst, hdrOff), nil
}

// DecodeWatchResp decodes a watch response payload.
func DecodeWatchResp(payload []byte) (core.Verdict, error) {
	if len(payload) < 13 {
		return core.Verdict{}, fmt.Errorf("wire: watch response needs 13 bytes, have %d", len(payload))
	}
	flags := payload[0]
	if flags&^uint8(watchFlagMonitored|watchFlagOutOfPattern) != 0 {
		return core.Verdict{}, fmt.Errorf("wire: unknown watch flags %#02x", flags)
	}
	bits := int(binary.LittleEndian.Uint16(payload[11:13]))
	pat, err := core.UnpackPattern(payload[13:], bits)
	if err != nil {
		return core.Verdict{}, fmt.Errorf("wire: watch response pattern: %w", err)
	}
	return core.Verdict{
		Class:        int(binary.LittleEndian.Uint16(payload[1:3])),
		Monitored:    flags&watchFlagMonitored != 0,
		OutOfPattern: flags&watchFlagOutOfPattern != 0,
		Pattern:      pat,
		Epoch:        binary.LittleEndian.Uint64(payload[3:11]),
	}, nil
}

// --- learn ---

// AppendLearnReq appends a learn request: uint32 tenant id, uint16
// class, uint16 pattern width in bits, uint16 count, then count
// bit-packed patterns. All patterns must share one width (the monitor
// watches a fixed neuron set).
func AppendLearnReq(dst []byte, id uint32, tenant uint32, class int, pats []core.Pattern) ([]byte, error) {
	if class < 0 || class > math.MaxUint16 {
		return dst, fmt.Errorf("wire: class %d out of range [0,%d]", class, math.MaxUint16)
	}
	if len(pats) == 0 || len(pats) > MaxPatterns {
		return dst, fmt.Errorf("wire: %d patterns, want 1..%d", len(pats), MaxPatterns)
	}
	width := len(pats[0])
	if width == 0 || width > math.MaxUint16 {
		return dst, fmt.Errorf("wire: pattern width %d out of range [1,%d]", width, math.MaxUint16)
	}
	for i, p := range pats {
		if len(p) != width {
			return dst, fmt.Errorf("wire: pattern %d has %d bits, pattern 0 has %d", i, len(p), width)
		}
	}
	hdrOff := len(dst)
	dst = AppendHeader(dst, TypeLearnReq, id, 0)
	dst = binary.LittleEndian.AppendUint32(dst, tenant)
	dst = binary.LittleEndian.AppendUint16(dst, uint16(class))
	dst = binary.LittleEndian.AppendUint16(dst, uint16(width))
	dst = binary.LittleEndian.AppendUint16(dst, uint16(len(pats)))
	for _, p := range pats {
		dst = p.AppendPacked(dst)
	}
	return finishFrame(dst, hdrOff), nil
}

// DecodeLearnReq decodes a learn request payload.
func DecodeLearnReq(payload []byte) (tenant uint32, class int, pats []core.Pattern, err error) {
	if len(payload) < 10 {
		return 0, 0, nil, fmt.Errorf("wire: learn request needs 10 bytes, have %d", len(payload))
	}
	tenant = binary.LittleEndian.Uint32(payload[0:4])
	class = int(binary.LittleEndian.Uint16(payload[4:6]))
	width := int(binary.LittleEndian.Uint16(payload[6:8]))
	count := int(binary.LittleEndian.Uint16(payload[8:10]))
	if width == 0 {
		return 0, 0, nil, fmt.Errorf("wire: zero pattern width")
	}
	if count == 0 || count > MaxPatterns {
		return 0, 0, nil, fmt.Errorf("wire: %d patterns, want 1..%d", count, MaxPatterns)
	}
	per := core.PackedLen(width)
	rest := payload[10:]
	if len(rest) != count*per {
		return 0, 0, nil, fmt.Errorf("wire: %d patterns of %d bits need %d payload bytes, have %d", count, width, count*per, len(rest))
	}
	pats = make([]core.Pattern, count)
	for i := range pats {
		if pats[i], err = core.UnpackPattern(rest[i*per:(i+1)*per], width); err != nil {
			return 0, 0, nil, fmt.Errorf("wire: learn pattern %d: %w", i, err)
		}
	}
	return tenant, class, pats, nil
}

// AppendLearnResp appends a learn response: uint64 published epoch,
// uint32 absorbed pattern count.
func AppendLearnResp(dst []byte, id uint32, epoch uint64, absorbed int) []byte {
	dst = AppendHeader(dst, TypeLearnResp, id, 12)
	dst = binary.LittleEndian.AppendUint64(dst, epoch)
	return binary.LittleEndian.AppendUint32(dst, uint32(absorbed))
}

// DecodeLearnResp decodes a learn response payload.
func DecodeLearnResp(payload []byte) (epoch uint64, absorbed int, err error) {
	if len(payload) != 12 {
		return 0, 0, fmt.Errorf("wire: learn response is 12 bytes, have %d", len(payload))
	}
	return binary.LittleEndian.Uint64(payload[0:8]),
		int(binary.LittleEndian.Uint32(payload[8:12])), nil
}

// --- stats ---

// Stats is the wire form of the serving counters: the serve.Stats
// snapshot plus the gateway's own frame counters.
type Stats struct {
	Queued    uint32
	Submitted uint64
	Served    uint64
	Rejected  uint64
	Shed      uint64
	Batches   uint64
	P50Ns     uint64
	P99Ns     uint64
	Lanes     uint32
	Epoch     uint64
	Updates   uint64
	// Monitor-level signals (v2): zone query plans recompiled by online
	// updates, verdicts issued for monitored classes, out-of-pattern
	// verdicts among them (the paper's safety signal), and the Hamming
	// enlargement level of the serving epoch.
	Recompiled uint64
	Monitored  uint64
	OOP        uint64
	Gamma      uint32
	// Gateway-level frame accounting (zero when reported by a
	// non-gateway peer): frames accepted past the packet filter, frames
	// the filter or a codec rejected, watch requests dropped by load
	// shedding or overload instead of being served, and live TCP
	// connections (v2).
	GwReceived  uint64
	GwMalformed uint64
	GwDropped   uint64
	GwConns     uint32
	// Fleet dimension (v3): the tenant these counters describe and the
	// number of tenants loaded on the answering peer.
	Tenant  uint32
	Tenants uint32
}

// statsPayloadLen is the fixed stats response payload size: six uint32
// fields and fifteen uint64 fields, little-endian, declaration order.
const statsPayloadLen = 144

// AppendStatsReq appends a stats request frame: a uint32 tenant id
// naming the lane whose counters are wanted.
func AppendStatsReq(dst []byte, id uint32, tenant uint32) []byte {
	dst = AppendHeader(dst, TypeStatsReq, id, 4)
	return binary.LittleEndian.AppendUint32(dst, tenant)
}

// DecodeStatsReq decodes a stats request payload. An empty payload —
// a v2-shaped request — selects the default tenant.
func DecodeStatsReq(payload []byte) (uint32, error) {
	switch len(payload) {
	case 0:
		return DefaultTenant, nil
	case 4:
		return binary.LittleEndian.Uint32(payload), nil
	default:
		return 0, fmt.Errorf("wire: stats request is 0 or 4 bytes, have %d", len(payload))
	}
}

// StatsFromServe converts a serve.Stats snapshot to its wire form.
func StatsFromServe(st serve.Stats) Stats {
	return Stats{
		Queued:     uint32(st.Queued),
		Submitted:  st.Submitted,
		Served:     st.Served,
		Rejected:   st.Rejected,
		Shed:       st.Shed,
		Batches:    st.Batches,
		P50Ns:      uint64(st.P50.Nanoseconds()),
		P99Ns:      uint64(st.P99.Nanoseconds()),
		Lanes:      uint32(st.Lanes),
		Epoch:      st.Epoch,
		Updates:    st.Updates,
		Recompiled: st.Recompiled,
		Monitored:  st.Monitored,
		OOP:        st.OutOfPattern,
		Gamma:      uint32(st.Gamma),
	}
}

// AppendStatsResp appends a stats response: the fixed 136-byte counter
// block, every field little-endian in declaration order.
func AppendStatsResp(dst []byte, id uint32, st Stats) []byte {
	dst = AppendHeader(dst, TypeStatsResp, id, statsPayloadLen)
	dst = binary.LittleEndian.AppendUint32(dst, st.Queued)
	dst = binary.LittleEndian.AppendUint64(dst, st.Submitted)
	dst = binary.LittleEndian.AppendUint64(dst, st.Served)
	dst = binary.LittleEndian.AppendUint64(dst, st.Rejected)
	dst = binary.LittleEndian.AppendUint64(dst, st.Shed)
	dst = binary.LittleEndian.AppendUint64(dst, st.Batches)
	dst = binary.LittleEndian.AppendUint64(dst, st.P50Ns)
	dst = binary.LittleEndian.AppendUint64(dst, st.P99Ns)
	dst = binary.LittleEndian.AppendUint32(dst, st.Lanes)
	dst = binary.LittleEndian.AppendUint64(dst, st.Epoch)
	dst = binary.LittleEndian.AppendUint64(dst, st.Updates)
	dst = binary.LittleEndian.AppendUint64(dst, st.Recompiled)
	dst = binary.LittleEndian.AppendUint64(dst, st.Monitored)
	dst = binary.LittleEndian.AppendUint64(dst, st.OOP)
	dst = binary.LittleEndian.AppendUint32(dst, st.Gamma)
	dst = binary.LittleEndian.AppendUint64(dst, st.GwReceived)
	dst = binary.LittleEndian.AppendUint64(dst, st.GwMalformed)
	dst = binary.LittleEndian.AppendUint64(dst, st.GwDropped)
	dst = binary.LittleEndian.AppendUint32(dst, st.GwConns)
	dst = binary.LittleEndian.AppendUint32(dst, st.Tenant)
	dst = binary.LittleEndian.AppendUint32(dst, st.Tenants)
	return dst
}

// DecodeStatsResp decodes a stats response payload.
func DecodeStatsResp(payload []byte) (Stats, error) {
	if len(payload) != statsPayloadLen {
		return Stats{}, fmt.Errorf("wire: stats response is %d bytes, have %d", statsPayloadLen, len(payload))
	}
	return Stats{
		Queued:      binary.LittleEndian.Uint32(payload[0:4]),
		Submitted:   binary.LittleEndian.Uint64(payload[4:12]),
		Served:      binary.LittleEndian.Uint64(payload[12:20]),
		Rejected:    binary.LittleEndian.Uint64(payload[20:28]),
		Shed:        binary.LittleEndian.Uint64(payload[28:36]),
		Batches:     binary.LittleEndian.Uint64(payload[36:44]),
		P50Ns:       binary.LittleEndian.Uint64(payload[44:52]),
		P99Ns:       binary.LittleEndian.Uint64(payload[52:60]),
		Lanes:       binary.LittleEndian.Uint32(payload[60:64]),
		Epoch:       binary.LittleEndian.Uint64(payload[64:72]),
		Updates:     binary.LittleEndian.Uint64(payload[72:80]),
		Recompiled:  binary.LittleEndian.Uint64(payload[80:88]),
		Monitored:   binary.LittleEndian.Uint64(payload[88:96]),
		OOP:         binary.LittleEndian.Uint64(payload[96:104]),
		Gamma:       binary.LittleEndian.Uint32(payload[104:108]),
		GwReceived:  binary.LittleEndian.Uint64(payload[108:116]),
		GwMalformed: binary.LittleEndian.Uint64(payload[116:124]),
		GwDropped:   binary.LittleEndian.Uint64(payload[124:132]),
		GwConns:     binary.LittleEndian.Uint32(payload[132:136]),
		Tenant:      binary.LittleEndian.Uint32(payload[136:140]),
		Tenants:     binary.LittleEndian.Uint32(payload[140:144]),
	}, nil
}

// --- error ---

// AppendErr appends an error frame: code byte, uint16 message length,
// message bytes. Messages beyond MaxErrMsg are truncated — an error
// response must always fit a datagram.
func AppendErr(dst []byte, id uint32, code uint8, msg string) []byte {
	if len(msg) > MaxErrMsg {
		msg = msg[:MaxErrMsg]
	}
	dst = AppendHeader(dst, TypeErr, id, 3+len(msg))
	dst = append(dst, code)
	dst = binary.LittleEndian.AppendUint16(dst, uint16(len(msg)))
	return append(dst, msg...)
}

// DecodeErr decodes an error frame payload.
func DecodeErr(payload []byte) (code uint8, msg string, err error) {
	if len(payload) < 3 {
		return 0, "", fmt.Errorf("wire: error frame needs 3 bytes, have %d", len(payload))
	}
	n := int(binary.LittleEndian.Uint16(payload[1:3]))
	if len(payload) != 3+n {
		return 0, "", fmt.Errorf("wire: error frame declares %d message bytes, carries %d", n, len(payload)-3)
	}
	return payload[0], string(payload[3:]), nil
}
