package objdet

import (
	"io"

	"napmon/internal/core"
	"napmon/internal/nn"
	"napmon/internal/rng"
)

// MonitoredLayer is the index of the detector's penultimate ReLU layer.
const MonitoredLayer = 7

// NewDetector builds the shared per-cell proposal network: a small CNN
// classifying one grid cell as background or one of the object shapes.
func NewDetector(seed uint64) *nn.Network {
	r := rng.New(seed)
	return nn.New(
		nn.NewConv2D(8, 1, 3, 3, 1, r), // 12→10
		nn.NewReLU(),
		nn.NewMaxPool(2), // 10→5
		nn.NewFlatten(),
		nn.NewDense(8*5*5, 32, r),
		nn.NewReLU(),
		nn.NewDense(32, 24, r),
		nn.NewReLU(), // MonitoredLayer = 7
		nn.NewDense(24, NumClasses, r),
	)
}

// Detection is one monitored per-cell proposal.
type Detection struct {
	Cell  int
	Class int
	// OutOfPattern marks proposals not supported by training data.
	OutOfPattern bool
}

// MonitoredDetector couples the shared cell network with its activation
// monitor.
type MonitoredDetector struct {
	Net     *nn.Network
	Monitor *core.Monitor
}

// TrainConfig sizes detector training.
type TrainConfig struct {
	Scenes int
	Epochs int
	Gamma  int
	Seed   uint64
	Log    io.Writer
}

// DefaultTrainConfig trains on enough scenes for a high-accuracy
// detector.
func DefaultTrainConfig() TrainConfig {
	return TrainConfig{Scenes: 800, Epochs: 6, Gamma: 1, Seed: 1}
}

// BuildMonitoredDetector trains the cell network on random scenes and
// constructs its activation monitor per Algorithm 1 over the per-cell
// training samples.
func BuildMonitoredDetector(cfg TrainConfig) (*MonitoredDetector, []nn.Sample, error) {
	scenes := Scenes(cfg.Scenes, DefaultSceneConfig(), cfg.Seed)
	train := CellSamples(scenes)
	net := NewDetector(cfg.Seed + 1)
	nn.Train(net, train, nn.TrainConfig{
		Epochs:    cfg.Epochs,
		BatchSize: 32,
		LR:        0.03,
		LRDecay:   0.9,
		Seed:      cfg.Seed + 2,
		Log:       cfg.Log,
	})
	mon, err := core.Build(net, train, core.Config{Layer: MonitoredLayer, Gamma: cfg.Gamma})
	if err != nil {
		return nil, nil, err
	}
	return &MonitoredDetector{Net: net, Monitor: mon}, train, nil
}

// Detect runs the shared network on every grid cell and supplements each
// proposal with the monitor's verdict — the per-cell analogue of
// Figure 1-(b).
func (d *MonitoredDetector) Detect(s *Scene) []Detection {
	out := make([]Detection, NumCells)
	for i := 0; i < NumCells; i++ {
		v := d.Monitor.Watch(d.Net, Cell(s.Image, i))
		out[i] = Detection{Cell: i, Class: v.Class, OutOfPattern: v.OutOfPattern}
	}
	return out
}

// SceneMetrics aggregates detection quality and monitor statistics over
// scenes.
type SceneMetrics struct {
	Cells        int
	CellErrors   int
	OutOfPattern int
	// ObjectCellsFlagged counts out-of-pattern verdicts on cells that
	// contain an object (where a shifted shape would sit).
	ObjectCellsFlagged int
	ObjectCells        int
}

// CellAccuracy returns the fraction of correctly classified cells.
func (m SceneMetrics) CellAccuracy() float64 {
	if m.Cells == 0 {
		return 0
	}
	return 1 - float64(m.CellErrors)/float64(m.Cells)
}

// OutOfPatternRate returns the fraction of cell proposals flagged.
func (m SceneMetrics) OutOfPatternRate() float64 {
	if m.Cells == 0 {
		return 0
	}
	return float64(m.OutOfPattern) / float64(m.Cells)
}

// ObjectFlagRate returns the flagged fraction among object cells only.
func (m SceneMetrics) ObjectFlagRate() float64 {
	if m.ObjectCells == 0 {
		return 0
	}
	return float64(m.ObjectCellsFlagged) / float64(m.ObjectCells)
}

// Evaluate runs monitored detection over scenes and aggregates metrics.
func (d *MonitoredDetector) Evaluate(scenes []Scene) SceneMetrics {
	var m SceneMetrics
	for si := range scenes {
		s := &scenes[si]
		dets := d.Detect(s)
		for i, det := range dets {
			m.Cells++
			if det.Class != s.Labels[i] {
				m.CellErrors++
			}
			if det.OutOfPattern {
				m.OutOfPattern++
			}
			if s.Labels[i] != Background {
				m.ObjectCells++
				if det.OutOfPattern {
					m.ObjectCellsFlagged++
				}
			}
		}
	}
	return m
}
