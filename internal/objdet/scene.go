// Package objdet implements the paper's §V extension 1: applying neuron
// activation pattern monitoring to object detection networks "whose
// underlying principle is to partition an image to a finite grid, with
// each cell in the grid offering object proposals" (YOLO-style). The
// detector here is a grid classifier: a shared CNN head runs on every
// cell of a 3×3 partition and proposes either background or one of a few
// object classes; the activation monitor supplements every per-cell
// proposal exactly as it supplements whole-image classifications.
package objdet

import (
	"napmon/internal/nn"
	"napmon/internal/rng"
	"napmon/internal/tensor"
)

// Grid geometry: images are GridSize×GridSize cells of CellPixels pixels.
const (
	GridSize   = 3
	CellPixels = 12
	ImageSize  = GridSize * CellPixels
	NumCells   = GridSize * GridSize
)

// Cell classes: background plus four object shapes.
const (
	Background = iota
	ShapeSquare
	ShapeCross
	ShapeDisc
	ShapeTriangle
	NumClasses
)

// novelShape is rendered only by ShiftedScene — a class the detector
// never trains on.
const novelShape = NumClasses

// Scene is one synthetic image with per-cell ground truth.
type Scene struct {
	Image  *tensor.Tensor // (1, ImageSize, ImageSize)
	Labels [NumCells]int
}

// SceneConfig controls scene generation.
type SceneConfig struct {
	// MaxObjects bounds how many cells contain an object.
	MaxObjects int
	// Noise is the pixel noise standard deviation.
	Noise float64
	// Jitter shifts each object inside its cell by up to this many
	// pixels.
	Jitter int
}

// DefaultSceneConfig returns the training distribution.
func DefaultSceneConfig() SceneConfig {
	return SceneConfig{MaxObjects: 4, Noise: 0.12, Jitter: 2}
}

// GenScene draws a random scene: objects in distinct random cells over a
// noisy background.
func GenScene(cfg SceneConfig, r *rng.Source) Scene {
	return genScene(cfg, r, false)
}

// ShiftedScene draws a scene whose objects are the novel shape the
// detector never saw in training (labels still report the cells as
// occupied by an arbitrary trained class, so misdetections surface).
func ShiftedScene(cfg SceneConfig, r *rng.Source) Scene {
	return genScene(cfg, r, true)
}

func genScene(cfg SceneConfig, r *rng.Source, novel bool) Scene {
	s := Scene{Image: tensor.New(1, ImageSize, ImageSize)}
	img := s.Image.Data()
	for i := range img {
		img[i] = clamp01(r.NormScaled(0.12, cfg.Noise))
	}
	nObjects := r.Intn(cfg.MaxObjects + 1)
	cells := r.Perm(NumCells)[:nObjects]
	for _, cell := range cells {
		shape := 1 + r.Intn(NumShapeClasses())
		drawn := shape
		if novel {
			drawn = novelShape
		}
		drawShapeInCell(img, cell, drawn, cfg.Jitter, r)
		s.Labels[cell] = shape
	}
	return s
}

// NumShapeClasses returns the number of trained object shapes.
func NumShapeClasses() int { return NumClasses - 1 }

func clamp01(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}

// drawShapeInCell stamps the given shape into the cell with positional
// jitter and a bright intensity.
func drawShapeInCell(img []float64, cell, shape, jitter int, r *rng.Source) {
	cy := (cell / GridSize) * CellPixels
	cx := (cell % GridSize) * CellPixels
	dy := r.Intn(2*jitter+1) - jitter
	dx := r.Intn(2*jitter+1) - jitter
	intensity := r.Range(0.7, 1.0)
	set := func(y, x int) {
		y += cy + dy
		x += cx + dx
		if y < 0 || y >= ImageSize || x < 0 || x >= ImageSize {
			return
		}
		img[y*ImageSize+x] = intensity
	}
	// Shapes are drawn inside the central 8×8 of the 12×12 cell.
	const lo, hi, mid = 2, 9, 5
	switch shape {
	case ShapeSquare:
		for y := lo; y <= hi; y++ {
			for x := lo; x <= hi; x++ {
				if y == lo || y == hi || x == lo || x == hi {
					set(y, x)
				}
			}
		}
	case ShapeCross:
		for i := lo; i <= hi; i++ {
			set(mid, i)
			set(i, mid)
		}
	case ShapeDisc:
		for y := lo; y <= hi; y++ {
			for x := lo; x <= hi; x++ {
				dy := y - mid
				dx := x - mid
				if dy*dy+dx*dx <= 12 {
					set(y, x)
				}
			}
		}
	case ShapeTriangle:
		for y := lo; y <= hi; y++ {
			half := (y - lo) / 2
			for x := mid - half; x <= mid+half; x++ {
				set(y, x)
			}
		}
	case novelShape: // five-point star-ish asterisk, never trained
		for i := lo; i <= hi; i++ {
			set(mid, i)
			set(i, mid)
			set(i, i)
			set(i, hi+lo-i)
		}
	default:
		panic("objdet: unknown shape")
	}
}

// Cell extracts cell i of the scene image as a (1, CellPixels,
// CellPixels) tensor (copied).
func Cell(img *tensor.Tensor, i int) *tensor.Tensor {
	cy := (i / GridSize) * CellPixels
	cx := (i % GridSize) * CellPixels
	out := tensor.New(1, CellPixels, CellPixels)
	for y := 0; y < CellPixels; y++ {
		for x := 0; x < CellPixels; x++ {
			out.Set(img.At(0, cy+y, cx+x), 0, y, x)
		}
	}
	return out
}

// CellSamples flattens scenes into per-cell classification samples, the
// detector's training set.
func CellSamples(scenes []Scene) []nn.Sample {
	out := make([]nn.Sample, 0, len(scenes)*NumCells)
	for _, s := range scenes {
		for i := 0; i < NumCells; i++ {
			out = append(out, nn.Sample{Input: Cell(s.Image, i), Label: s.Labels[i]})
		}
	}
	return out
}

// Scenes generates n random scenes.
func Scenes(n int, cfg SceneConfig, seed uint64) []Scene {
	r := rng.New(seed)
	out := make([]Scene, n)
	for i := range out {
		out[i] = GenScene(cfg, r)
	}
	return out
}

// ShiftedScenes generates n novel-shape scenes.
func ShiftedScenes(n int, cfg SceneConfig, seed uint64) []Scene {
	r := rng.New(seed)
	out := make([]Scene, n)
	for i := range out {
		out[i] = ShiftedScene(cfg, r)
	}
	return out
}
