package objdet

import (
	"testing"

	"napmon/internal/nn"
	"napmon/internal/rng"
)

func TestGenSceneDeterministic(t *testing.T) {
	a := Scenes(10, DefaultSceneConfig(), 1)
	b := Scenes(10, DefaultSceneConfig(), 1)
	for i := range a {
		if a[i].Labels != b[i].Labels {
			t.Fatal("labels differ across identical seeds")
		}
		for j := range a[i].Image.Data() {
			if a[i].Image.Data()[j] != b[i].Image.Data()[j] {
				t.Fatal("pixels differ across identical seeds")
			}
		}
	}
}

func TestSceneLabelsConsistent(t *testing.T) {
	r := rng.New(2)
	for trial := 0; trial < 50; trial++ {
		s := GenScene(DefaultSceneConfig(), r)
		objects := 0
		for _, l := range s.Labels {
			if l < 0 || l >= NumClasses {
				t.Fatalf("label %d out of range", l)
			}
			if l != Background {
				objects++
			}
		}
		if objects > DefaultSceneConfig().MaxObjects {
			t.Fatalf("%d objects exceed max", objects)
		}
	}
}

func TestObjectCellsBrighter(t *testing.T) {
	// A cell containing an object must have clearly more bright pixels
	// than an empty cell on average.
	r := rng.New(3)
	var objSum, bgSum float64
	var objN, bgN int
	for trial := 0; trial < 30; trial++ {
		s := GenScene(DefaultSceneConfig(), r)
		for i := 0; i < NumCells; i++ {
			c := Cell(s.Image, i)
			if s.Labels[i] != Background {
				objSum += c.Sum()
				objN++
			} else {
				bgSum += c.Sum()
				bgN++
			}
		}
	}
	if objN == 0 || bgN == 0 {
		t.Skip("degenerate sample")
	}
	if objSum/float64(objN) < bgSum/float64(bgN)+3 {
		t.Fatalf("object cells not distinguishable: obj %.1f vs bg %.1f",
			objSum/float64(objN), bgSum/float64(bgN))
	}
}

func TestCellExtractionGeometry(t *testing.T) {
	s := GenScene(DefaultSceneConfig(), rng.New(4))
	// Stamp a known value and confirm the right cell sees it.
	s.Image.Set(0.777, 0, CellPixels+1, 2*CellPixels+3) // row block 1, col block 2 -> cell 5
	c := Cell(s.Image, 1*GridSize+2)
	if c.At(0, 1, 3) != 0.777 {
		t.Fatal("cell extraction misaligned")
	}
}

func TestCellSamplesCount(t *testing.T) {
	scenes := Scenes(7, DefaultSceneConfig(), 5)
	samples := CellSamples(scenes)
	if len(samples) != 7*NumCells {
		t.Fatalf("got %d samples", len(samples))
	}
	for _, s := range samples {
		if s.Input.Dim(1) != CellPixels || s.Input.Dim(2) != CellPixels {
			t.Fatal("cell sample has wrong shape")
		}
	}
}

func TestShiftedScenesUseNovelShape(t *testing.T) {
	// Shifted scenes must differ pixel-wise from normal scenes generated
	// with the same seed whenever objects are present.
	norm := Scenes(20, DefaultSceneConfig(), 6)
	shift := ShiftedScenes(20, DefaultSceneConfig(), 6)
	differ := false
	for i := range norm {
		for j := range norm[i].Image.Data() {
			if norm[i].Image.Data()[j] != shift[i].Image.Data()[j] {
				differ = true
			}
		}
	}
	if !differ {
		t.Fatal("shifted scenes identical to normal scenes")
	}
}

func TestMonitoredDetectorEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("training test skipped in -short mode")
	}
	det, train, err := BuildMonitoredDetector(TrainConfig{
		Scenes: 250, Epochs: 5, Gamma: 1, Seed: 7,
	})
	if err != nil {
		t.Fatal(err)
	}
	if acc := nn.Accuracy(det.Net, train); acc < 0.9 {
		t.Fatalf("cell accuracy %v too low", acc)
	}
	val := Scenes(60, DefaultSceneConfig(), 100)
	in := det.Evaluate(val)
	if in.CellAccuracy() < 0.85 {
		t.Fatalf("validation cell accuracy %v too low", in.CellAccuracy())
	}
	shifted := ShiftedScenes(60, DefaultSceneConfig(), 101)
	out := det.Evaluate(shifted)
	// Novel-shape object cells must be flagged far more often than
	// trained-shape object cells.
	if out.ObjectFlagRate() <= in.ObjectFlagRate() {
		t.Fatalf("novel shapes not flagged: in %.3f vs shifted %.3f",
			in.ObjectFlagRate(), out.ObjectFlagRate())
	}
	// Detections structurally sound.
	dets := det.Detect(&val[0])
	if len(dets) != NumCells {
		t.Fatalf("got %d detections", len(dets))
	}
	for i, d := range dets {
		if d.Cell != i || d.Class < 0 || d.Class >= NumClasses {
			t.Fatalf("detection %d malformed: %+v", i, d)
		}
	}
}

func BenchmarkDetect(b *testing.B) {
	det, _, err := BuildMonitoredDetector(TrainConfig{
		Scenes: 120, Epochs: 3, Gamma: 1, Seed: 8,
	})
	if err != nil {
		b.Fatal(err)
	}
	scenes := Scenes(16, DefaultSceneConfig(), 9)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		det.Detect(&scenes[i%len(scenes)])
	}
}
