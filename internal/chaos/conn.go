package chaos

import (
	"net"
	"sync"
	"time"
)

// Conn wraps a net.Conn and injects the plan's read/write faults.
// Reads can reset, stall or corrupt; writes can reset, stall or deliver
// a partial prefix and die. A fault that kills the transport closes the
// inner connection, so the peer observes a real reset/EOF, not just an
// error on our side. Closing the Conn aborts any in-progress stall.
type Conn struct {
	inner net.Conn
	plan  Plan
	clk   Clock

	closeOnce sync.Once
	done      chan struct{}
}

// WrapConn wraps c. A nil clk selects the wall clock.
func WrapConn(c net.Conn, plan Plan, clk Clock) *Conn {
	return &Conn{inner: c, plan: plan, clk: orWall(clk), done: make(chan struct{})}
}

// Read implements net.Conn.
func (c *Conn) Read(b []byte) (int, error) {
	switch c.plan.Next(OpRead) {
	case FaultReset:
		c.Close()
		return 0, ErrInjectedReset
	case FaultReadStall:
		if !c.clk.Sleep(c.plan.Stall(), c.done) {
			return 0, net.ErrClosed
		}
	case FaultCorrupt:
		n, err := c.inner.Read(b)
		if n > 0 {
			// Flip one mid-buffer byte: whatever protocol layer rides
			// this conn has to catch it (or provably not care).
			b[n/2] ^= 0xa5
		}
		return n, err
	}
	return c.inner.Read(b)
}

// Write implements net.Conn.
func (c *Conn) Write(b []byte) (int, error) {
	switch c.plan.Next(OpWrite) {
	case FaultReset:
		c.Close()
		return 0, ErrInjectedReset
	case FaultWriteStall:
		if !c.clk.Sleep(c.plan.Stall(), c.done) {
			return 0, net.ErrClosed
		}
	case FaultPartialWrite:
		// Deliver a prefix, then die: the peer sees a frame cut
		// mid-byte-stream followed by a reset.
		n := len(b) / 2
		if n > 0 {
			n, _ = c.inner.Write(b[:n])
		}
		c.Close()
		return n, ErrInjectedReset
	}
	return c.inner.Write(b)
}

// Close implements net.Conn; it is idempotent and aborts stalls.
func (c *Conn) Close() error {
	err := net.ErrClosed
	c.closeOnce.Do(func() {
		close(c.done)
		err = c.inner.Close()
	})
	return err
}

// The deadline and address surface passes straight through: deadlines
// set by the wrapped server still bound the inner reads and writes, so
// fault stalls cannot defeat a server-side idle reaper.

func (c *Conn) LocalAddr() net.Addr                { return c.inner.LocalAddr() }
func (c *Conn) RemoteAddr() net.Addr               { return c.inner.RemoteAddr() }
func (c *Conn) SetDeadline(t time.Time) error      { return c.inner.SetDeadline(t) }
func (c *Conn) SetReadDeadline(t time.Time) error  { return c.inner.SetReadDeadline(t) }
func (c *Conn) SetWriteDeadline(t time.Time) error { return c.inner.SetWriteDeadline(t) }

// Listener wraps a net.Listener: Accept can fail transiently per the
// plan, and every accepted connection is wrapped with the same plan and
// clock.
type Listener struct {
	net.Listener
	plan Plan
	clk  Clock
}

// WrapListener wraps ln. A nil clk selects the wall clock.
func WrapListener(ln net.Listener, plan Plan, clk Clock) *Listener {
	return &Listener{Listener: ln, plan: plan, clk: orWall(clk)}
}

// Accept implements net.Listener.
func (l *Listener) Accept() (net.Conn, error) {
	if l.plan.Next(OpAccept) == FaultAcceptErr {
		return nil, errTransient{}
	}
	c, err := l.Listener.Accept()
	if err != nil {
		return nil, err
	}
	return WrapConn(c, l.plan, l.clk), nil
}
