// Package chaos is the deterministic fault-injection layer behind the
// repo's resilience gates. It wraps the seams the serving stack talks
// to the world through — net.Conn / net.Listener for the wire gateway,
// http.RoundTripper for the replication follower's leader client — and
// injects the failures production networks actually produce: connection
// resets, read/write stalls, partial writes, byte corruption,
// accept-time failures, 5xx bursts and request hangs.
//
// Everything is driven by a Plan. The production implementation is
// Schedule: a seeded xoshiro stream draws one decision per injection
// point, so a given seed reproduces the exact same fault sequence
// run-to-run (print the seed on failure and any red run can be replayed
// locally). A Schedule can carry a fault budget (MaxFaults): once spent
// the plan is drained and the wrapped transport behaves perfectly,
// which is what lets gates assert convergence "after the fault schedule
// drains". Tests that need an exact, hand-written sequence use Script
// instead.
//
// Time is injected through Clock so tests assert stall sequences
// without sleeping; the zero value of every wrapper field falls back to
// the wall clock.
package chaos

import (
	"errors"
	"sync"
	"time"

	"napmon/internal/rng"
)

// Op names an injection point. Each wrapped operation consults the plan
// with its Op, and a Plan decides which faults may fire there.
type Op uint8

const (
	// OpRead is one Conn.Read call.
	OpRead Op = iota
	// OpWrite is one Conn.Write call.
	OpWrite
	// OpAccept is one Listener.Accept call.
	OpAccept
	// OpRoundTrip is one RoundTripper.RoundTrip call.
	OpRoundTrip
)

// Fault is one injected failure mode.
type Fault uint8

const (
	// FaultNone lets the operation through untouched.
	FaultNone Fault = iota
	// FaultReset closes the transport and fails the operation with
	// ErrInjectedReset — the peer-reset / mid-flight-hangup case.
	FaultReset
	// FaultReadStall sleeps Plan.Stall before the read proceeds — a
	// slow-loris sender or a congested path.
	FaultReadStall
	// FaultWriteStall sleeps Plan.Stall before the write proceeds — a
	// receiver that stopped draining its socket.
	FaultWriteStall
	// FaultPartialWrite delivers a prefix of the buffer, then closes the
	// transport and fails — a connection dying mid-frame.
	FaultPartialWrite
	// FaultCorrupt flips one byte of the data a read delivers — a
	// checksum-exercising bit error.
	FaultCorrupt
	// FaultAcceptErr fails one Accept with a transient (net.Error,
	// Temporary) error without touching the listener — fd-exhaustion
	// bursts and kernel accept hiccups.
	FaultAcceptErr
	// FaultHTTPErr answers a round trip with a synthetic 503 without
	// contacting the server — a flapping leader or an LB shedding.
	FaultHTTPErr
	// FaultHTTPHang stalls a round trip until the request context gives
	// up (or Plan.Stall passes), then fails it — a server that accepted
	// and went silent.
	FaultHTTPHang
)

// String names the fault for logs and test failure messages.
func (f Fault) String() string {
	switch f {
	case FaultNone:
		return "none"
	case FaultReset:
		return "reset"
	case FaultReadStall:
		return "read-stall"
	case FaultWriteStall:
		return "write-stall"
	case FaultPartialWrite:
		return "partial-write"
	case FaultCorrupt:
		return "corrupt"
	case FaultAcceptErr:
		return "accept-err"
	case FaultHTTPErr:
		return "http-5xx"
	case FaultHTTPHang:
		return "http-hang"
	}
	return "unknown"
}

// Plan decides, one operation at a time, which fault (if any) to
// inject. Implementations must be safe for concurrent use: one plan is
// typically shared by every connection of a wrapped listener.
type Plan interface {
	// Next returns the fault to inject on the upcoming operation, or
	// FaultNone. A plan must only return faults meaningful for op.
	Next(op Op) Fault
	// Stall is the duration FaultReadStall / FaultWriteStall /
	// FaultHTTPHang sleep for.
	Stall() time.Duration
}

// ErrInjectedReset fails operations the plan chose to reset. It is
// deliberately distinct from net.ErrClosed so accept loops and tests
// can tell an injected failure from a real local close.
var ErrInjectedReset = errors.New("chaos: injected connection reset")

// errTransient is the injected Accept failure: a net.Error that is
// temporary and not a timeout, like EMFILE or ECONNABORTED.
type errTransient struct{}

func (errTransient) Error() string   { return "chaos: injected transient accept failure" }
func (errTransient) Timeout() bool   { return false }
func (errTransient) Temporary() bool { return true }

// errHang is what a hung round trip resolves to when the stall elapses
// before the request context gives up; it reads as a client timeout.
type errHang struct{}

func (errHang) Error() string   { return "chaos: injected request hang" }
func (errHang) Timeout() bool   { return true }
func (errHang) Temporary() bool { return true }

// Clock abstracts the stalls the wrappers sleep through. Sleep blocks
// for d or until done closes, reporting whether the full duration
// elapsed — a fake clock records d and returns immediately, so tests
// assert exact stall sequences without wall time.
type Clock interface {
	Sleep(d time.Duration, done <-chan struct{}) bool
}

// ClockFunc adapts a function to the Clock interface.
type ClockFunc func(d time.Duration, done <-chan struct{}) bool

// Sleep implements Clock.
func (f ClockFunc) Sleep(d time.Duration, done <-chan struct{}) bool { return f(d, done) }

// wallClock is the default Clock: a real timer, aborted by done.
type wallClock struct{}

func (wallClock) Sleep(d time.Duration, done <-chan struct{}) bool {
	if d <= 0 {
		return true
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return true
	case <-done:
		return false
	}
}

// orWall returns clk, or the wall clock when clk is nil, so every
// wrapper accepts a nil Clock.
func orWall(clk Clock) Clock {
	if clk == nil {
		return wallClock{}
	}
	return clk
}

// Rates configures a Schedule: per-operation fault probabilities in
// [0,1]. Probabilities for one Op are summed in the order the fields
// are listed below, so their sum per Op must stay ≤ 1.
type Rates struct {
	// Reset applies to reads, writes and round trips.
	Reset float64
	// ReadStall and Corrupt apply to reads.
	ReadStall float64
	Corrupt   float64
	// WriteStall and PartialWrite apply to writes.
	WriteStall   float64
	PartialWrite float64
	// AcceptFail applies to accepts.
	AcceptFail float64
	// HTTPErr and HTTPHang apply to round trips.
	HTTPErr  float64
	HTTPHang float64

	// StallFor is the stall duration (default 100ms).
	StallFor time.Duration
	// MaxFaults bounds the total faults the schedule injects before it
	// drains and lets everything through (0 = unbounded). Gates rely on
	// a drained schedule to assert recovery.
	MaxFaults int
}

// Schedule is the seeded Plan: one xoshiro256** stream, shared (under a
// mutex) by every wrapped transport, drawing one uniform variate per
// operation. The same seed and the same per-goroutine operation order
// reproduce the same fault sequence; single-connection gates are
// exactly reproducible, multi-connection ones reproducible up to accept
// interleaving.
type Schedule struct {
	rates Rates

	mu       sync.Mutex
	src      *rng.Source
	injected uint64
}

// NewSchedule builds a seeded schedule over the given rates.
func NewSchedule(seed uint64, rates Rates) *Schedule {
	if rates.StallFor == 0 {
		rates.StallFor = 100 * time.Millisecond
	}
	return &Schedule{rates: rates, src: rng.New(seed)}
}

// Next implements Plan.
func (s *Schedule) Next(op Op) Fault {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.rates.MaxFaults > 0 && s.injected >= uint64(s.rates.MaxFaults) {
		return FaultNone
	}
	u := s.src.Float64()
	f := FaultNone
	pick := func(p float64, fault Fault) bool {
		if f != FaultNone || p <= 0 {
			return f != FaultNone
		}
		if u < p {
			f = fault
			return true
		}
		u -= p
		return false
	}
	switch op {
	case OpRead:
		_ = pick(s.rates.Reset, FaultReset) ||
			pick(s.rates.ReadStall, FaultReadStall) ||
			pick(s.rates.Corrupt, FaultCorrupt)
	case OpWrite:
		_ = pick(s.rates.Reset, FaultReset) ||
			pick(s.rates.WriteStall, FaultWriteStall) ||
			pick(s.rates.PartialWrite, FaultPartialWrite)
	case OpAccept:
		pick(s.rates.AcceptFail, FaultAcceptErr)
	case OpRoundTrip:
		_ = pick(s.rates.Reset, FaultReset) ||
			pick(s.rates.HTTPErr, FaultHTTPErr) ||
			pick(s.rates.HTTPHang, FaultHTTPHang)
	}
	if f != FaultNone {
		s.injected++
	}
	return f
}

// Stall implements Plan.
func (s *Schedule) Stall() time.Duration { return s.rates.StallFor }

// Injected reports how many faults the schedule has fired so far.
func (s *Schedule) Injected() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.injected
}

// Drained reports whether a bounded schedule has spent its fault
// budget — from here on the wrapped transports behave perfectly.
func (s *Schedule) Drained() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.rates.MaxFaults > 0 && s.injected >= uint64(s.rates.MaxFaults)
}

// Script is the hand-written Plan for tests: Next pops faults in order
// (regardless of Op — the test controls the operation sequence) and
// returns FaultNone once the script is exhausted.
type Script struct {
	// StallFor is returned by Stall (zero is fine with a fake clock).
	StallFor time.Duration

	mu     sync.Mutex
	faults []Fault
}

// NewScript builds a script that plays out the given faults in order.
func NewScript(stall time.Duration, faults ...Fault) *Script {
	return &Script{StallFor: stall, faults: faults}
}

// Next implements Plan.
func (s *Script) Next(Op) Fault {
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.faults) == 0 {
		return FaultNone
	}
	f := s.faults[0]
	s.faults = s.faults[1:]
	return f
}

// Stall implements Plan.
func (s *Script) Stall() time.Duration { return s.StallFor }

// Remaining reports how many scripted faults have not fired yet.
func (s *Script) Remaining() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.faults)
}
