package chaos

import (
	"bytes"
	"context"
	"errors"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"
)

// TestScheduleDeterministic pins the seed contract: the same seed
// produces the exact same fault sequence, a different seed a different
// one, and a zero-rate schedule never fires.
func TestScheduleDeterministic(t *testing.T) {
	rates := Rates{Reset: 0.2, ReadStall: 0.2, Corrupt: 0.2}
	draw := func(seed uint64) []Fault {
		s := NewSchedule(seed, rates)
		out := make([]Fault, 256)
		for i := range out {
			out[i] = s.Next(OpRead)
		}
		return out
	}
	a, b := draw(42), draw(42)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("draw %d diverged for the same seed: %v vs %v", i, a[i], b[i])
		}
	}
	c := draw(43)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("seeds 42 and 43 produced identical 256-fault sequences")
	}
	var fired int
	for _, f := range a {
		if f != FaultNone {
			fired++
		}
	}
	// 256 draws at a summed rate of 0.6: statistically impossible to
	// see none (or all) fire.
	if fired == 0 || fired == len(a) {
		t.Fatalf("implausible fault density %d/256 at rate 0.6", fired)
	}

	quiet := NewSchedule(1, Rates{})
	for i := 0; i < 100; i++ {
		for _, op := range []Op{OpRead, OpWrite, OpAccept, OpRoundTrip} {
			if f := quiet.Next(op); f != FaultNone {
				t.Fatalf("zero-rate schedule fired %v", f)
			}
		}
	}
}

// TestScheduleDrains pins the fault budget: exactly MaxFaults faults
// fire, then the schedule reports drained and lets everything through.
func TestScheduleDrains(t *testing.T) {
	s := NewSchedule(7, Rates{Reset: 1, MaxFaults: 5})
	var fired int
	for i := 0; i < 100; i++ {
		if s.Next(OpRead) != FaultNone {
			fired++
		}
	}
	if fired != 5 {
		t.Fatalf("fired %d faults, budget was 5", fired)
	}
	if !s.Drained() || s.Injected() != 5 {
		t.Fatalf("drained=%v injected=%d, want true/5", s.Drained(), s.Injected())
	}
}

// TestScriptOrder pins Script: faults pop in order, then FaultNone.
func TestScriptOrder(t *testing.T) {
	sc := NewScript(0, FaultReset, FaultCorrupt)
	want := []Fault{FaultReset, FaultCorrupt, FaultNone, FaultNone}
	for i, w := range want {
		if got := sc.Next(OpRead); got != w {
			t.Fatalf("draw %d: got %v, want %v", i, got, w)
		}
	}
	if sc.Remaining() != 0 {
		t.Fatalf("remaining %d, want 0", sc.Remaining())
	}
}

// pipeConn returns a wrapped in-memory conn pair: a (chaos-wrapped,
// per-test plan) side and its raw peer.
func pipeConn(t *testing.T, plan Plan, clk Clock) (*Conn, net.Conn) {
	t.Helper()
	a, b := net.Pipe()
	t.Cleanup(func() { a.Close(); b.Close() })
	return WrapConn(a, plan, clk), b
}

// TestConnReset: a scripted reset fails the read and really closes the
// transport — the peer sees EOF, not a healthy conn.
func TestConnReset(t *testing.T) {
	c, peer := pipeConn(t, NewScript(0, FaultReset), nil)
	if _, err := c.Read(make([]byte, 8)); !errors.Is(err, ErrInjectedReset) {
		t.Fatalf("read under reset: %v, want ErrInjectedReset", err)
	}
	peer.SetReadDeadline(time.Now().Add(time.Second))
	if _, err := peer.Read(make([]byte, 8)); err == nil {
		t.Fatal("peer read succeeded after injected reset")
	}
}

// TestConnCorrupt: a corrupt fault flips exactly one byte of the
// delivered data; the next read is clean.
func TestConnCorrupt(t *testing.T) {
	c, peer := pipeConn(t, NewScript(0, FaultCorrupt), nil)
	payload := []byte{1, 2, 3, 4, 5, 6, 7, 8}
	go func() { peer.Write(payload); peer.Write(payload) }()
	buf := make([]byte, 8)
	if _, err := io.ReadFull(c, buf); err != nil {
		t.Fatal(err)
	}
	diff := 0
	for i := range buf {
		if buf[i] != payload[i] {
			diff++
		}
	}
	if diff != 1 {
		t.Fatalf("corrupt read changed %d bytes, want exactly 1 (%v)", diff, buf)
	}
	if _, err := io.ReadFull(c, buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf, payload) {
		t.Fatalf("post-fault read not clean: %v", buf)
	}
}

// TestConnStallUsesClock: stalls go through the injected clock with the
// plan's duration, and a Close during the stall aborts it.
func TestConnStallUsesClock(t *testing.T) {
	var slept []time.Duration
	clk := ClockFunc(func(d time.Duration, _ <-chan struct{}) bool {
		slept = append(slept, d)
		return true
	})
	c, peer := pipeConn(t, NewScript(25*time.Millisecond, FaultReadStall, FaultWriteStall), clk)
	go func() { peer.Write([]byte{9}); io.Copy(io.Discard, peer) }()
	if _, err := c.Read(make([]byte, 1)); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Write([]byte{9}); err != nil {
		t.Fatal(err)
	}
	if len(slept) != 2 || slept[0] != 25*time.Millisecond || slept[1] != 25*time.Millisecond {
		t.Fatalf("clock saw %v, want two 25ms stalls", slept)
	}

	// A real stall must abort when the conn closes mid-sleep.
	c2, _ := pipeConn(t, NewScript(time.Hour, FaultReadStall), nil)
	done := make(chan error, 1)
	go func() {
		_, err := c2.Read(make([]byte, 1))
		done <- err
	}()
	time.Sleep(10 * time.Millisecond)
	c2.Close()
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("stalled read returned nil after close")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("close did not abort an in-progress stall")
	}
}

// TestConnPartialWrite: a partial write delivers a strict prefix, then
// the transport dies.
func TestConnPartialWrite(t *testing.T) {
	c, peer := pipeConn(t, NewScript(0, FaultPartialWrite), nil)
	got := make(chan []byte, 1)
	go func() {
		b, _ := io.ReadAll(peer)
		got <- b
	}()
	payload := []byte{1, 2, 3, 4, 5, 6, 7, 8}
	n, err := c.Write(payload)
	if !errors.Is(err, ErrInjectedReset) {
		t.Fatalf("partial write error %v, want ErrInjectedReset", err)
	}
	if n <= 0 || n >= len(payload) {
		t.Fatalf("partial write delivered %d of %d bytes, want a strict prefix", n, len(payload))
	}
	if b := <-got; !bytes.Equal(b, payload[:n]) {
		t.Fatalf("peer saw %v, want prefix %v", b, payload[:n])
	}
}

// TestListenerAcceptFault: an injected accept failure is transient (the
// listener keeps working) and is a non-timeout net.Error, and accepted
// conns come back chaos-wrapped.
func TestListenerAcceptFault(t *testing.T) {
	raw, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	// Script order matters: Accept #1 pops the accept failure, Accept #2
	// pops the explicit FaultNone, and the wrapped conn's first Read pops
	// the reset.
	ln := WrapListener(raw, NewScript(0, FaultAcceptErr, FaultNone, FaultReset), nil)
	defer ln.Close()

	_, err = ln.Accept()
	var ne net.Error
	if !errors.As(err, &ne) || ne.Timeout() {
		t.Fatalf("injected accept failure %v, want a non-timeout net.Error", err)
	}

	dialed, err := net.Dial("tcp", raw.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer dialed.Close()
	c, err := ln.Accept()
	if err != nil {
		t.Fatalf("accept after transient failure: %v", err)
	}
	defer c.Close()
	// The scripted FaultReset fires on the accepted conn's first read:
	// proof the listener wraps what it hands out.
	if _, err := c.Read(make([]byte, 1)); !errors.Is(err, ErrInjectedReset) {
		t.Fatalf("accepted conn not chaos-wrapped: read err %v", err)
	}
}

// TestRoundTripper covers all four round-trip outcomes: pass-through,
// synthetic 503, reset, and a hang that respects the request context.
func TestRoundTripper(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		io.WriteString(w, "ok")
	}))
	defer srv.Close()

	plan := NewScript(time.Hour, FaultNone, FaultHTTPErr, FaultReset, FaultHTTPHang, FaultHTTPHang)
	var hangSlept time.Duration
	clk := ClockFunc(func(d time.Duration, done <-chan struct{}) bool {
		hangSlept = d
		select {
		case <-done:
			return false
		default:
			return true
		}
	})
	client := &http.Client{Transport: NewRoundTripper(nil, plan, clk)}

	resp, err := client.Get(srv.URL)
	if err != nil {
		t.Fatalf("pass-through: %v", err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != 200 || string(body) != "ok" {
		t.Fatalf("pass-through got %d %q", resp.StatusCode, body)
	}

	resp, err = client.Get(srv.URL)
	if err != nil {
		t.Fatalf("injected 503 surfaced as transport error: %v", err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("got %d, want 503", resp.StatusCode)
	}

	if _, err = client.Get(srv.URL); err == nil || !errors.Is(err, ErrInjectedReset) {
		t.Fatalf("injected reset: %v, want ErrInjectedReset", err)
	}

	// Hang with a live context: the fake clock "sleeps" the full stall
	// and the fault resolves to a timeout-flavored error.
	if _, err = client.Get(srv.URL); err == nil {
		t.Fatal("hang resolved to a response")
	}
	var ne net.Error
	if !errors.As(err, &ne) || !ne.Timeout() {
		t.Fatalf("hang error %v, want a timeout net.Error", err)
	}
	if hangSlept != time.Hour {
		t.Fatalf("hang slept %v, want the plan's 1h stall", hangSlept)
	}

	// Hang with an already-expired context: aborts instantly with the
	// context's error instead of sleeping.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	req, _ := http.NewRequestWithContext(ctx, http.MethodGet, srv.URL, nil)
	if _, err = client.Do(req); err == nil || !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled hang: %v, want context.Canceled", err)
	}
}
