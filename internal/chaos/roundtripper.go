package chaos

import (
	"io"
	"net/http"
	"strings"
)

// RoundTripper wraps an http.RoundTripper and injects the plan's
// round-trip faults: synthetic 503 bursts (FaultHTTPErr), hangs that
// block until the request context gives up (FaultHTTPHang), and
// transport resets (FaultReset). It is what a replication follower's
// leader client hides behind in the chaos gates.
type RoundTripper struct {
	base http.RoundTripper
	plan Plan
	clk  Clock
}

// NewRoundTripper wraps base (nil selects http.DefaultTransport; a nil
// clk selects the wall clock).
func NewRoundTripper(base http.RoundTripper, plan Plan, clk Clock) *RoundTripper {
	if base == nil {
		base = http.DefaultTransport
	}
	return &RoundTripper{base: base, plan: plan, clk: orWall(clk)}
}

// RoundTrip implements http.RoundTripper.
func (t *RoundTripper) RoundTrip(req *http.Request) (*http.Response, error) {
	switch t.plan.Next(OpRoundTrip) {
	case FaultReset:
		return nil, ErrInjectedReset
	case FaultHTTPErr:
		// A synthetic 503, never touching the server — the shape of a
		// flapping leader or a load balancer shedding.
		return &http.Response{
			Status:     "503 Service Unavailable (chaos)",
			StatusCode: http.StatusServiceUnavailable,
			Proto:      "HTTP/1.1",
			ProtoMajor: 1,
			ProtoMinor: 1,
			Header:     http.Header{"Content-Type": []string{"text/plain"}},
			Body:       io.NopCloser(strings.NewReader("chaos: injected 503\n")),
			Request:    req,
		}, nil
	case FaultHTTPHang:
		// A server that accepted and went silent: nothing moves until
		// the caller's deadline fires (or the stall elapses, for plans
		// shorter than the client timeout).
		if !t.clk.Sleep(t.plan.Stall(), req.Context().Done()) {
			return nil, req.Context().Err()
		}
		return nil, errHang{}
	}
	return t.base.RoundTrip(req)
}
