// Package absdom implements the numerical abstract domains the paper's
// conclusion proposes for refining activation-pattern monitors (§V,
// extension 2): interval boxes and difference bound matrices (DBMs, Miné
// 2001). Where the BDD monitor abstracts each neuron to one on/off bit,
// these domains retain the neuron *values*, so a comfort zone can
// distinguish "slightly positive" from "hugely positive" activations.
//
// Both domains support the operations a monitor needs: abstraction of a
// single activation vector (FromPoint), least-upper-bound accumulation
// over the training set (Join), widening by a tolerance (the numerical
// analogue of the Hamming-γ enlargement), and a containment query.
package absdom

import (
	"fmt"
	"math"
)

// Box is an interval abstraction: for each tracked dimension a closed
// interval [Lo[i], Hi[i]]. The zero-dimension Box is valid and contains
// only the empty vector.
type Box struct {
	Lo, Hi []float64
}

// NewBox returns the empty box (containing nothing) over dim dimensions.
func NewBox(dim int) *Box {
	b := &Box{Lo: make([]float64, dim), Hi: make([]float64, dim)}
	for i := 0; i < dim; i++ {
		b.Lo[i] = math.Inf(1)
		b.Hi[i] = math.Inf(-1)
	}
	return b
}

// BoxFromPoint returns the degenerate box containing exactly p.
func BoxFromPoint(p []float64) *Box {
	b := &Box{Lo: append([]float64(nil), p...), Hi: append([]float64(nil), p...)}
	return b
}

// Dim returns the number of tracked dimensions.
func (b *Box) Dim() int { return len(b.Lo) }

// IsEmpty reports whether the box contains no point.
func (b *Box) IsEmpty() bool {
	for i := range b.Lo {
		if b.Lo[i] > b.Hi[i] {
			return true
		}
	}
	return false
}

// Join widens b in place to also cover p (least upper bound with the
// degenerate box of p).
func (b *Box) Join(p []float64) {
	if len(p) != len(b.Lo) {
		panic(fmt.Sprintf("absdom: Join dimension %d != box dimension %d", len(p), len(b.Lo)))
	}
	for i, v := range p {
		if v < b.Lo[i] {
			b.Lo[i] = v
		}
		if v > b.Hi[i] {
			b.Hi[i] = v
		}
	}
}

// JoinBox widens b in place to cover other.
func (b *Box) JoinBox(other *Box) {
	if other.Dim() != b.Dim() {
		panic("absdom: JoinBox dimension mismatch")
	}
	for i := range b.Lo {
		if other.Lo[i] < b.Lo[i] {
			b.Lo[i] = other.Lo[i]
		}
		if other.Hi[i] > b.Hi[i] {
			b.Hi[i] = other.Hi[i]
		}
	}
}

// Contains reports whether p lies inside the box enlarged by eps in every
// direction (eps plays the role of the BDD monitor's γ).
func (b *Box) Contains(p []float64, eps float64) bool {
	if len(p) != len(b.Lo) {
		panic("absdom: Contains dimension mismatch")
	}
	for i, v := range p {
		if v < b.Lo[i]-eps || v > b.Hi[i]+eps {
			return false
		}
	}
	return true
}

// ContainsBox reports whether other is entirely inside b (no tolerance).
func (b *Box) ContainsBox(other *Box) bool {
	if other.IsEmpty() {
		return true
	}
	if b.IsEmpty() {
		return false
	}
	for i := range b.Lo {
		if other.Lo[i] < b.Lo[i] || other.Hi[i] > b.Hi[i] {
			return false
		}
	}
	return true
}

// Volume returns the product of interval widths; empty boxes yield 0.
// Degenerate (point) dimensions contribute factor 0, so Volume is mainly
// useful after widening.
func (b *Box) Volume() float64 {
	if b.IsEmpty() {
		return 0
	}
	v := 1.0
	for i := range b.Lo {
		v *= b.Hi[i] - b.Lo[i]
	}
	return v
}

// Clone returns a deep copy.
func (b *Box) Clone() *Box {
	return &Box{Lo: append([]float64(nil), b.Lo...), Hi: append([]float64(nil), b.Hi...)}
}
