package absdom

import (
	"fmt"
	"math"
)

// DBM is a difference bound matrix (Miné 2001) over n variables
// x_1..x_n plus the zero variable x_0 = 0. Entry m[i][j] is the tightest
// known upper bound on x_i - x_j; +Inf means unconstrained. The domain
// captures octagonal-style relations of the form x_i - x_j <= c as well
// as absolute bounds via the zero row/column (x_i <= m[i][0],
// -x_j <= m[0][j]). It is strictly more precise than Box, which it
// subsumes through the zero row and column.
type DBM struct {
	n int         // number of real variables
	m [][]float64 // (n+1) × (n+1), row i col j bounds x_i - x_j
	// canonical records whether m is in shortest-path closed form.
	canonical bool
	empty     bool
	seeded    bool // at least one point joined
}

// NewDBM returns the empty DBM (containing no point) over dim variables.
func NewDBM(dim int) *DBM {
	d := &DBM{n: dim, m: make([][]float64, dim+1)}
	for i := range d.m {
		d.m[i] = make([]float64, dim+1)
		for j := range d.m[i] {
			d.m[i][j] = math.Inf(-1) // sentinel: nothing joined yet
		}
	}
	d.canonical = true
	return d
}

// Dim returns the number of tracked variables.
func (d *DBM) Dim() int { return d.n }

// DBMFromPoint returns the DBM containing exactly p.
func DBMFromPoint(p []float64) *DBM {
	d := NewDBM(len(p))
	d.Join(p)
	return d
}

// IsEmpty reports whether the DBM contains no point.
func (d *DBM) IsEmpty() bool { return !d.seeded }

// Join widens d in place to also cover point p: every difference bound is
// relaxed to max(current, observed difference).
func (d *DBM) Join(p []float64) {
	if len(p) != d.n {
		panic(fmt.Sprintf("absdom: Join dimension %d != DBM dimension %d", len(p), d.n))
	}
	val := func(i int) float64 {
		if i == 0 {
			return 0
		}
		return p[i-1]
	}
	for i := 0; i <= d.n; i++ {
		for j := 0; j <= d.n; j++ {
			diff := val(i) - val(j)
			if !d.seeded || diff > d.m[i][j] {
				d.m[i][j] = diff
			}
		}
	}
	d.seeded = true
	// A join of canonical operands with a point stays canonical: the
	// element-wise max of two shortest-path-closed matrices is closed.
	// We keep the flag conservative and re-canonicalize on demand.
	d.canonical = false
}

// JoinDBM widens d to cover other (element-wise max of bounds).
func (d *DBM) JoinDBM(other *DBM) {
	if other.n != d.n {
		panic("absdom: JoinDBM dimension mismatch")
	}
	if other.IsEmpty() {
		return
	}
	if !d.seeded {
		for i := range d.m {
			copy(d.m[i], other.m[i])
		}
		d.seeded = true
		d.canonical = other.canonical
		return
	}
	for i := range d.m {
		for j := range d.m[i] {
			if other.m[i][j] > d.m[i][j] {
				d.m[i][j] = other.m[i][j]
			}
		}
	}
	d.canonical = false
}

// Canonicalize closes the bound matrix under shortest paths
// (Floyd–Warshall), producing the tightest equivalent representation.
// O(n³); call once after building, before repeated queries.
func (d *DBM) Canonicalize() {
	if d.canonical || !d.seeded {
		d.canonical = true
		return
	}
	n := d.n + 1
	for k := 0; k < n; k++ {
		for i := 0; i < n; i++ {
			ik := d.m[i][k]
			if math.IsInf(ik, 1) {
				continue
			}
			row := d.m[i]
			mk := d.m[k]
			for j := 0; j < n; j++ {
				if v := ik + mk[j]; v < row[j] {
					row[j] = v
				}
			}
		}
	}
	// A decidedly negative diagonal means inconsistency. Joins of points
	// are always consistent, but floating-point closure can push the
	// diagonal a few ulps below zero, so compare against a small
	// tolerance rather than exact zero, and clamp.
	const diagTol = 1e-9
	for i := 0; i < n; i++ {
		if d.m[i][i] < -diagTol {
			d.seeded = false
			break
		}
		if d.m[i][i] < 0 {
			d.m[i][i] = 0
		}
	}
	d.canonical = true
}

// Contains reports whether p satisfies every difference bound relaxed by
// eps (the numerical enlargement analogous to γ).
func (d *DBM) Contains(p []float64, eps float64) bool {
	if len(p) != d.n {
		panic("absdom: Contains dimension mismatch")
	}
	if !d.seeded {
		return false
	}
	val := func(i int) float64 {
		if i == 0 {
			return 0
		}
		return p[i-1]
	}
	for i := 0; i <= d.n; i++ {
		for j := 0; j <= d.n; j++ {
			if i == j {
				continue
			}
			if val(i)-val(j) > d.m[i][j]+eps {
				return false
			}
		}
	}
	return true
}

// Bound returns the current upper bound on x_i - x_j (1-based variable
// indices; 0 is the zero variable).
func (d *DBM) Bound(i, j int) float64 {
	if i < 0 || i > d.n || j < 0 || j > d.n {
		panic("absdom: Bound index out of range")
	}
	if !d.seeded {
		return math.Inf(-1)
	}
	return d.m[i][j]
}

// Box projects the DBM onto its per-variable interval bounds, discarding
// relational information.
func (d *DBM) Box() *Box {
	b := NewBox(d.n)
	if !d.seeded {
		return b
	}
	for i := 1; i <= d.n; i++ {
		b.Hi[i-1] = d.m[i][0]  // x_i - 0 <= hi
		b.Lo[i-1] = -d.m[0][i] // 0 - x_i <= -lo
	}
	return b
}

// Clone returns a deep copy.
func (d *DBM) Clone() *DBM {
	c := NewDBM(d.n)
	for i := range d.m {
		copy(c.m[i], d.m[i])
	}
	c.canonical = d.canonical
	c.seeded = d.seeded
	return c
}
