package absdom

import (
	"math"
	"testing"
	"testing/quick"

	"napmon/internal/rng"
)

func randPoint(r *rng.Source, dim int) []float64 {
	p := make([]float64, dim)
	for i := range p {
		p[i] = r.Range(-3, 3)
	}
	return p
}

func TestBoxEmpty(t *testing.T) {
	b := NewBox(3)
	if !b.IsEmpty() {
		t.Fatal("new box not empty")
	}
	if b.Contains([]float64{0, 0, 0}, 0) {
		t.Fatal("empty box contains a point")
	}
}

func TestBoxFromPoint(t *testing.T) {
	p := []float64{1, -2, 3}
	b := BoxFromPoint(p)
	if !b.Contains(p, 0) {
		t.Fatal("box does not contain its defining point")
	}
	if b.Contains([]float64{1, -2, 3.1}, 0) {
		t.Fatal("degenerate box contains other point")
	}
	if b.Contains([]float64{1, -2, 3.1}, 0.2) == false {
		t.Fatal("eps enlargement not applied")
	}
}

func TestBoxJoinSoundness(t *testing.T) {
	// Every joined point must be contained afterwards.
	check := func(seed uint32, nRaw uint8) bool {
		r := rng.New(uint64(seed))
		n := int(nRaw%10) + 1
		b := NewBox(4)
		pts := make([][]float64, n)
		for i := range pts {
			pts[i] = randPoint(r, 4)
			b.Join(pts[i])
		}
		for _, p := range pts {
			if !b.Contains(p, 0) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestBoxJoinBox(t *testing.T) {
	a := BoxFromPoint([]float64{0, 0})
	b := BoxFromPoint([]float64{2, -1})
	a.JoinBox(b)
	if !a.Contains([]float64{1, -0.5}, 0) {
		t.Fatal("joined box misses interior point")
	}
	if !a.ContainsBox(b) {
		t.Fatal("join does not contain operand")
	}
}

func TestBoxContainsBoxEmptyCases(t *testing.T) {
	empty := NewBox(2)
	full := BoxFromPoint([]float64{1, 1})
	if !full.ContainsBox(empty) {
		t.Fatal("everything contains the empty box")
	}
	if empty.ContainsBox(full) {
		t.Fatal("empty box contains nothing")
	}
}

func TestBoxVolume(t *testing.T) {
	b := BoxFromPoint([]float64{0, 0})
	b.Join([]float64{2, 3})
	if got := b.Volume(); got != 6 {
		t.Fatalf("Volume = %v, want 6", got)
	}
	if NewBox(2).Volume() != 0 {
		t.Fatal("empty box volume must be 0")
	}
}

func TestBoxDimMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewBox(2).Join([]float64{1})
}

func TestDBMEmpty(t *testing.T) {
	d := NewDBM(3)
	if !d.IsEmpty() {
		t.Fatal("new DBM not empty")
	}
	if d.Contains([]float64{0, 0, 0}, 1) {
		t.Fatal("empty DBM contains a point")
	}
}

func TestDBMFromPoint(t *testing.T) {
	p := []float64{1, 2, -1}
	d := DBMFromPoint(p)
	if !d.Contains(p, 0) {
		t.Fatal("DBM does not contain defining point")
	}
	if d.Contains([]float64{1, 2, -0.5}, 0) {
		t.Fatal("point DBM contains other point")
	}
}

func TestDBMJoinSoundnessProperty(t *testing.T) {
	check := func(seed uint32, nRaw uint8) bool {
		r := rng.New(uint64(seed))
		n := int(nRaw%8) + 1
		d := NewDBM(4)
		pts := make([][]float64, n)
		for i := range pts {
			pts[i] = randPoint(r, 4)
			d.Join(pts[i])
		}
		d.Canonicalize()
		for _, p := range pts {
			if !d.Contains(p, 1e-9) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestDBMTighterThanBox(t *testing.T) {
	// Points on the line x1 == x2: the DBM keeps the relation, the box
	// projection loses it.
	d := NewDBM(2)
	for _, v := range []float64{0, 1, 2, 3} {
		d.Join([]float64{v, v})
	}
	d.Canonicalize()
	offDiagonal := []float64{0, 3} // inside the bounding box, off the line
	if d.Contains(offDiagonal, 0.01) {
		t.Fatal("DBM lost the x1==x2 relation")
	}
	if !d.Box().Contains(offDiagonal, 0) {
		t.Fatal("box projection should contain the off-diagonal point")
	}
	if !d.Contains([]float64{2.5, 2.5}, 0.01) {
		t.Fatal("DBM rejects an on-line point inside bounds")
	}
}

func TestDBMCanonicalizeTightens(t *testing.T) {
	// Join of points then manual widening of one entry: closure must
	// restore consistency of derived bounds (m[i][j] <= m[i][k]+m[k][j]).
	r := rng.New(3)
	d := NewDBM(3)
	for i := 0; i < 5; i++ {
		d.Join(randPoint(r, 3))
	}
	d.Canonicalize()
	for i := 0; i <= 3; i++ {
		for j := 0; j <= 3; j++ {
			for k := 0; k <= 3; k++ {
				if d.Bound(i, j) > d.Bound(i, k)+d.Bound(k, j)+1e-9 {
					t.Fatalf("triangle inequality violated at (%d,%d,%d)", i, j, k)
				}
			}
		}
	}
}

func TestDBMJoinDBM(t *testing.T) {
	a := DBMFromPoint([]float64{0, 0})
	b := DBMFromPoint([]float64{1, 2})
	a.JoinDBM(b)
	a.Canonicalize()
	if !a.Contains([]float64{0, 0}, 0) || !a.Contains([]float64{1, 2}, 1e-12) {
		t.Fatal("JoinDBM lost an operand point")
	}
	// Joining into an empty DBM copies.
	c := NewDBM(2)
	c.JoinDBM(b)
	if !c.Contains([]float64{1, 2}, 1e-12) {
		t.Fatal("join into empty DBM failed")
	}
}

func TestDBMBoxProjection(t *testing.T) {
	d := NewDBM(2)
	d.Join([]float64{1, 5})
	d.Join([]float64{3, 4})
	d.Canonicalize()
	b := d.Box()
	if b.Lo[0] != 1 || b.Hi[0] != 3 || b.Lo[1] != 4 || b.Hi[1] != 5 {
		t.Fatalf("projection = [%v,%v]x[%v,%v]", b.Lo[0], b.Hi[0], b.Lo[1], b.Hi[1])
	}
}

func TestDBMSubsumesItsBoxPoints(t *testing.T) {
	// Any point the DBM accepts must also be accepted by its box
	// projection (box is coarser).
	check := func(seed uint32) bool {
		r := rng.New(uint64(seed))
		d := NewDBM(3)
		for i := 0; i < 6; i++ {
			d.Join(randPoint(r, 3))
		}
		d.Canonicalize()
		box := d.Box()
		for i := 0; i < 50; i++ {
			p := randPoint(r, 3)
			if d.Contains(p, 0) && !box.Contains(p, 1e-9) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestDBMEpsEnlargement(t *testing.T) {
	d := DBMFromPoint([]float64{1, 1})
	d.Canonicalize()
	if d.Contains([]float64{1.5, 1}, 0.1) {
		t.Fatal("eps 0.1 should not admit distance 0.5")
	}
	if !d.Contains([]float64{1.05, 1}, 0.1) {
		t.Fatal("eps 0.1 should admit distance 0.05")
	}
}

func TestDBMCloneIndependent(t *testing.T) {
	d := DBMFromPoint([]float64{1, 2})
	c := d.Clone()
	c.Join([]float64{5, 5})
	if d.Contains([]float64{5, 5}, 1e-9) {
		t.Fatal("clone shares state with original")
	}
}

func TestDBMBoundRangePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewDBM(2).Bound(3, 0)
}

func TestDBMInfinityHandling(t *testing.T) {
	d := NewDBM(2)
	if !math.IsInf(d.Bound(1, 2), -1) {
		t.Fatal("empty DBM bound should be -Inf sentinel")
	}
	d.Join([]float64{1, 1})
	if math.IsInf(d.Bound(1, 2), 0) {
		t.Fatal("joined DBM bound should be finite")
	}
}

func BenchmarkDBMJoin40(b *testing.B) {
	r := rng.New(1)
	d := NewDBM(40)
	p := randPoint(r, 40)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.Join(p)
	}
}

func BenchmarkDBMContains40(b *testing.B) {
	r := rng.New(2)
	d := NewDBM(40)
	for i := 0; i < 50; i++ {
		d.Join(randPoint(r, 40))
	}
	d.Canonicalize()
	p := randPoint(r, 40)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.Contains(p, 0.1)
	}
}

func BenchmarkDBMCanonicalize40(b *testing.B) {
	r := rng.New(3)
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		d := NewDBM(40)
		for k := 0; k < 20; k++ {
			d.Join(randPoint(r, 40))
		}
		b.StartTimer()
		d.Canonicalize()
	}
}
