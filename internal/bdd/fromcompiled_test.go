package bdd

import (
	"testing"
)

// buildTestDiagram constructs a deterministic non-trivial diagram: a
// union of cubes derived from a seed, Hamming-expanded once — the same
// shape a comfort zone has.
func buildTestDiagram(m *Manager, seed uint64) Node {
	nv := m.NumVars()
	f := m.False()
	s := seed
	for c := 0; c < 4; c++ {
		bits := make([]bool, nv)
		for i := range bits {
			s = s*6364136223846793005 + 1442695040888963407
			bits[i] = s>>63 == 1
		}
		f = m.Or(f, m.Cube(bits))
	}
	return m.ExpandHamming1(f)
}

// TestCompiledExportRoundTrip pins the serialization hooks: a compiled
// plan exported through Entry/Branch and reconstructed with NewCompiled
// answers identically, FromCompiled rebuilds the exact canonical
// diagram, and recompiling the rebuilt diagram reproduces the original
// program branch for branch — the invariant the snapshot codec's
// bit-for-bit replication rests on.
func TestCompiledExportRoundTrip(t *testing.T) {
	const nv = 6
	for seed := uint64(1); seed <= 5; seed++ {
		m := NewManager(nv)
		root := buildTestDiagram(m, seed)
		plan := m.Compile(root)[0]

		branches := make([]PlanBranch, plan.Len())
		for i := range branches {
			branches[i] = plan.Branch(i)
		}
		rebuilt, err := NewCompiled(plan.NumVars(), plan.Entry(), branches)
		if err != nil {
			t.Fatalf("seed %d: NewCompiled: %v", seed, err)
		}

		m2 := NewManager(nv)
		root2, err := m2.FromCompiled(rebuilt)
		if err != nil {
			t.Fatalf("seed %d: FromCompiled: %v", seed, err)
		}
		plan2 := m2.Compile(root2)[0]
		if plan2.Len() != plan.Len() || plan2.Entry() != plan.Entry() {
			t.Fatalf("seed %d: recompiled plan shape (%d,%d) != original (%d,%d)",
				seed, plan2.Len(), plan2.Entry(), plan.Len(), plan.Entry())
		}
		for i := 0; i < plan.Len(); i++ {
			if plan.Branch(i) != plan2.Branch(i) {
				t.Fatalf("seed %d: branch %d differs: %+v vs %+v", seed, i, plan.Branch(i), plan2.Branch(i))
			}
		}

		// Exhaustive agreement across the full assignment space.
		bits := make([]bool, nv)
		for a := 0; a < 1<<nv; a++ {
			for i := range bits {
				bits[i] = a>>i&1 == 1
			}
			want := m.EvalBits(root, bits)
			if got := rebuilt.Eval(bits); got != want {
				t.Fatalf("seed %d: NewCompiled plan disagrees at %06b: %v != %v", seed, a, got, want)
			}
			if got := m2.EvalBits(root2, bits); got != want {
				t.Fatalf("seed %d: FromCompiled diagram disagrees at %06b: %v != %v", seed, a, got, want)
			}
		}
	}
}

// TestCompiledExportTerminals covers the constant diagrams.
func TestCompiledExportTerminals(t *testing.T) {
	m := NewManager(3)
	for _, root := range []Node{m.False(), m.True()} {
		plan := m.Compile(root)[0]
		rebuilt, err := NewCompiled(plan.NumVars(), plan.Entry(), nil)
		if err != nil {
			t.Fatalf("NewCompiled(terminal): %v", err)
		}
		m2 := NewManager(3)
		got, err := m2.FromCompiled(rebuilt)
		if err != nil {
			t.Fatalf("FromCompiled(terminal): %v", err)
		}
		if got != root {
			t.Fatalf("terminal round trip: got node %d, want %d", got, root)
		}
	}
}

// TestNewCompiledRejectsCorrupt exercises the validator against the
// malformations a hostile snapshot stream could carry.
func TestNewCompiledRejectsCorrupt(t *testing.T) {
	ok := []PlanBranch{
		{Va: 0, Lo: TerminalFalse, Hi: 1},
		{Va: 1, Lo: TerminalFalse, Hi: TerminalTrue},
	}
	cases := []struct {
		name     string
		numVars  int
		entry    int32
		branches []PlanBranch
	}{
		{"zero vars", 0, TerminalFalse, nil},
		{"terminal entry with program", 2, TerminalTrue, ok},
		{"entry out of range", 2, 2, ok},
		{"non-terminal entry empty program", 2, 0, nil},
		{"var out of range", 1, 0, ok},
		{"level order broken", 2, 0, []PlanBranch{
			{Va: 1, Lo: TerminalFalse, Hi: 1},
			{Va: 0, Lo: TerminalFalse, Hi: TerminalTrue},
		}},
		{"redundant branch", 2, 0, []PlanBranch{
			{Va: 0, Lo: TerminalTrue, Hi: TerminalTrue},
		}},
		{"backward target", 2, 0, []PlanBranch{
			{Va: 0, Lo: 0, Hi: TerminalTrue},
		}},
		{"target out of range", 2, 0, []PlanBranch{
			{Va: 0, Lo: 7, Hi: TerminalTrue},
		}},
		{"target level not later", 2, 0, []PlanBranch{
			{Va: 1, Lo: TerminalFalse, Hi: 1},
			{Va: 1, Lo: TerminalFalse, Hi: TerminalTrue},
		}},
	}
	for _, c := range cases {
		if _, err := NewCompiled(c.numVars, c.entry, c.branches); err == nil {
			t.Errorf("%s: NewCompiled accepted a corrupt plan", c.name)
		}
	}
	if _, err := NewCompiled(2, 0, ok); err != nil {
		t.Fatalf("valid plan rejected: %v", err)
	}
}
