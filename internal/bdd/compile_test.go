package bdd

import (
	"math/rand"
	"testing"
)

// randomDiagram builds a pseudo-random diagram the way the monitor does:
// a union of random cubes, optionally Hamming-expanded, so the compiled
// plans are exercised on exactly the diagram shapes the zones serve.
func randomDiagram(m *Manager, r *rand.Rand, nCubes, expands int) Node {
	nv := m.NumVars()
	f := m.False()
	bits := make([]bool, nv)
	for i := 0; i < nCubes; i++ {
		for v := range bits {
			bits[v] = r.Intn(2) == 1
		}
		f = m.Or(f, m.Cube(bits))
	}
	for i := 0; i < expands; i++ {
		f = m.ExpandHamming1(f)
	}
	return f
}

// TestCompiledExhaustive pins Compiled.Eval and EvalBatch bit-exact
// against the interpreted EvalBits over every assignment of every
// diagram, for widths small enough to enumerate the full truth table.
func TestCompiledExhaustive(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	for _, nv := range []int{1, 2, 3, 5, 8, 12} {
		m := NewManager(nv)
		roots := []Node{
			m.False(), m.True(), m.Var(0), m.NVar(nv - 1),
			randomDiagram(m, r, 3, 0),
			randomDiagram(m, r, 5, 1),
			randomDiagram(m, r, 2, 2),
		}
		m.Freeze()
		plans := m.Compile(roots...)
		if len(plans) != len(roots) {
			t.Fatalf("nv=%d: %d plans for %d roots", nv, len(plans), len(roots))
		}
		na := 1 << nv
		patterns := make([][]bool, na)
		for a := 0; a < na; a++ {
			bits := make([]bool, nv)
			for v := 0; v < nv; v++ {
				bits[v] = a&(1<<v) != 0
			}
			patterns[a] = bits
		}
		out := make([]bool, na)
		sliced := make([]bool, na)
		for ri, root := range roots {
			cp := plans[ri]
			if cp.NumVars() != nv {
				t.Fatalf("nv=%d root %d: plan NumVars %d", nv, ri, cp.NumVars())
			}
			if got, want := cp.Len(), m.NodeCount(root); got != want {
				t.Fatalf("nv=%d root %d: plan Len %d, NodeCount %d", nv, ri, got, want)
			}
			cp.EvalBatch(patterns, out)
			cp.EvalBatchSliced(patterns, sliced)
			for a := 0; a < na; a++ {
				want := m.EvalBits(root, patterns[a])
				if got := cp.Eval(patterns[a]); got != want {
					t.Fatalf("nv=%d root %d assignment %d: compiled %v, interpreted %v", nv, ri, a, got, want)
				}
				if out[a] != want {
					t.Fatalf("nv=%d root %d assignment %d: EvalBatch %v, interpreted %v", nv, ri, a, out[a], want)
				}
				if sliced[a] != want {
					t.Fatalf("nv=%d root %d assignment %d: EvalBatchSliced %v, interpreted %v", nv, ri, a, sliced[a], want)
				}
			}
		}
	}
}

// TestCompiledRandomWide cross-checks compiled vs interpreted on
// monitor-sized diagrams (40 variables, too wide to enumerate) with
// random probes.
func TestCompiledRandomWide(t *testing.T) {
	const nv = 40
	r := rand.New(rand.NewSource(7))
	m := NewManager(nv)
	roots := []Node{
		randomDiagram(m, r, 50, 0),
		randomDiagram(m, r, 50, 1),
		randomDiagram(m, r, 20, 2),
	}
	plans := m.Compile(roots...)
	probes := make([][]bool, 512)
	for i := range probes {
		bits := make([]bool, nv)
		for v := range bits {
			bits[v] = r.Intn(2) == 1
		}
		probes[i] = bits
	}
	out := make([]bool, len(probes))
	sliced := make([]bool, len(probes))
	for ri, root := range roots {
		plans[ri].EvalBatch(probes, out)
		plans[ri].EvalBatchSliced(probes, sliced)
		for i, p := range probes {
			want := m.EvalBits(root, p)
			if got := plans[ri].Eval(p); got != want {
				t.Fatalf("root %d probe %d: compiled %v, interpreted %v", ri, i, got, want)
			}
			if out[i] != want {
				t.Fatalf("root %d probe %d: EvalBatch %v, interpreted %v", ri, i, out[i], want)
			}
			if sliced[i] != want {
				t.Fatalf("root %d probe %d: EvalBatchSliced %v, interpreted %v", ri, i, sliced[i], want)
			}
		}
	}
}

// TestCompiledLayout verifies the structural invariants the walk loop
// relies on: variable levels are non-decreasing through the program, and
// every branch target is either a later index (forward edge) or a
// terminal sentinel.
func TestCompiledLayout(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	m := NewManager(16)
	root := randomDiagram(m, r, 12, 1)
	cp := m.Compile(root)[0]
	if cp.entry != 0 {
		t.Fatalf("nonterminal root compiled with entry %d, want 0", cp.entry)
	}
	for i, b := range cp.prog {
		if i > 0 && b.va < cp.prog[i-1].va {
			t.Fatalf("branch %d: level %d after level %d — not level-ordered", i, b.va, cp.prog[i-1].va)
		}
		for _, tgt := range []int32{b.lo, b.hi} {
			if tgt >= 0 && tgt <= int32(i) {
				t.Fatalf("branch %d: backward/self edge to %d", i, tgt)
			}
			if tgt < 0 && tgt != compiledFalse && tgt != compiledTrue {
				t.Fatalf("branch %d: bad sentinel %d", i, tgt)
			}
			if tgt >= int32(len(cp.prog)) {
				t.Fatalf("branch %d: target %d out of program (len %d)", i, tgt, len(cp.prog))
			}
		}
	}
}

// TestCompiledConstants covers the terminal-root plans.
func TestCompiledConstants(t *testing.T) {
	m := NewManager(4)
	plans := m.Compile(m.False(), m.True())
	bits := make([]bool, 4)
	if plans[0].Eval(bits) {
		t.Fatal("compiled False evaluated true")
	}
	if !plans[1].Eval(bits) {
		t.Fatal("compiled True evaluated false")
	}
	if plans[0].Len() != 0 || plans[1].Len() != 0 {
		t.Fatal("constant plans should have empty programs")
	}
}

// TestCompileCounter checks the Stats.Compiles bookkeeping.
func TestCompileCounter(t *testing.T) {
	m := NewManager(4)
	f := m.Or(m.Var(0), m.Var(2))
	if got := m.Stats().Compiles; got != 0 {
		t.Fatalf("fresh manager has %d compiles", got)
	}
	m.Compile(f)
	m.Compile(f, m.True())
	if got := m.Stats().Compiles; got != 3 {
		t.Fatalf("3 roots compiled, counter says %d", got)
	}
}

// TestCompileReleasedPanics pins the use-after-release contract.
func TestCompileReleasedPanics(t *testing.T) {
	m := NewManager(4)
	f := m.Var(1)
	m.Release()
	defer func() {
		if recover() == nil {
			t.Fatal("Compile on released manager did not panic")
		}
	}()
	m.Compile(f)
}

// TestCompiledEvalWidthPanics pins the assignment-width contract of the
// compiled fast path (same contract as EvalBits).
func TestCompiledEvalWidthPanics(t *testing.T) {
	m := NewManager(4)
	cp := m.Compile(m.Var(0))[0]
	defer func() {
		if recover() == nil {
			t.Fatal("compiled Eval on wrong-width assignment did not panic")
		}
	}()
	cp.Eval(make([]bool, 3))
}

// TestCompiledOutlivesManager checks that plans are self-contained: a
// plan compiled before the manager was released keeps answering queries
// (the property the epoch-swap grace period relies on only for zones,
// but the plan contract is stronger and worth pinning).
func TestCompiledOutlivesManager(t *testing.T) {
	m := NewManager(6)
	r := rand.New(rand.NewSource(9))
	root := randomDiagram(m, r, 4, 1)
	want := make([]bool, 1<<6)
	bits := make([]bool, 6)
	for a := range want {
		for v := 0; v < 6; v++ {
			bits[v] = a&(1<<v) != 0
		}
		want[a] = m.EvalBits(root, bits)
	}
	cp := m.Compile(root)[0]
	m.Release()
	for a := range want {
		for v := 0; v < 6; v++ {
			bits[v] = a&(1<<v) != 0
		}
		if got := cp.Eval(bits); got != want[a] {
			t.Fatalf("assignment %d: %v after release, want %v", a, got, want[a])
		}
	}
}
