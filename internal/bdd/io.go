package bdd

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
)

// Serialization lets a monitor built offline (Algorithm 1 runs once, after
// training) be shipped to the vehicle and loaded at startup. The format is
// a compact little-endian stream of the nodes reachable from the given
// roots, with node handles remapped to a dense range.

const ioMagic = 0x42444431 // "BDD1"

// Serialize writes the sub-diagrams reachable from roots to w. The same
// roots, in order, are recoverable with Deserialize.
func (m *Manager) Serialize(w io.Writer, roots []Node) error {
	m.checkLive()
	bw := bufio.NewWriter(w)
	// Collect reachable nodes in a deterministic order (post-order DFS) so
	// children precede parents and the file is reproducible. Handles are
	// dense arena indices, so the remap is a flat slice, not a map; the
	// terminals keep their identity mapping 0 -> 0, 1 -> 1.
	remap := make([]uint32, len(m.nodes))
	mapped := make([]bool, len(m.nodes))
	mapped[falseNode], mapped[trueNode] = true, true
	remap[trueNode] = 1
	var order []Node
	var walk func(n Node)
	walk = func(n Node) {
		if mapped[n] {
			return
		}
		nd := m.nodes[n]
		walk(nd.lo)
		walk(nd.hi)
		remap[n] = uint32(len(order) + 2)
		mapped[n] = true
		order = append(order, n)
	}
	for _, r := range roots {
		walk(r)
	}

	write := func(v uint32) error {
		return binary.Write(bw, binary.LittleEndian, v)
	}
	if err := write(ioMagic); err != nil {
		return err
	}
	if err := write(uint32(m.numVars)); err != nil {
		return err
	}
	if err := write(uint32(len(order))); err != nil {
		return err
	}
	for _, n := range order {
		nd := m.nodes[n]
		if err := write(uint32(nd.level)); err != nil {
			return err
		}
		if err := write(remap[nd.lo]); err != nil {
			return err
		}
		if err := write(remap[nd.hi]); err != nil {
			return err
		}
	}
	if err := write(uint32(len(roots))); err != nil {
		return err
	}
	for _, r := range roots {
		if err := write(remap[r]); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// Deserialize reads a stream produced by Serialize into the manager,
// returning the root handles. The manager must have the same NumVars as
// the one that wrote the stream. Nodes are re-canonicalized through the
// unique table, so deserializing into a non-empty manager is safe.
func (m *Manager) Deserialize(r io.Reader) ([]Node, error) {
	br := bufio.NewReader(r)
	read := func() (uint32, error) {
		var v uint32
		err := binary.Read(br, binary.LittleEndian, &v)
		return v, err
	}
	magic, err := read()
	if err != nil {
		return nil, fmt.Errorf("bdd: reading magic: %w", err)
	}
	if magic != ioMagic {
		return nil, fmt.Errorf("bdd: bad magic %#x", magic)
	}
	nv, err := read()
	if err != nil {
		return nil, err
	}
	if int(nv) != m.numVars {
		return nil, fmt.Errorf("bdd: stream has %d variables, manager has %d", nv, m.numVars)
	}
	count, err := read()
	if err != nil {
		return nil, err
	}
	handles := make([]Node, count+2)
	handles[0], handles[1] = falseNode, trueNode
	for i := uint32(0); i < count; i++ {
		lvl, err := read()
		if err != nil {
			return nil, err
		}
		lo, err := read()
		if err != nil {
			return nil, err
		}
		hi, err := read()
		if err != nil {
			return nil, err
		}
		if lo >= i+2 || hi >= i+2 {
			return nil, fmt.Errorf("bdd: node %d references later node", i)
		}
		if lvl >= uint32(m.numVars) {
			return nil, fmt.Errorf("bdd: node %d has level %d out of range", i, lvl)
		}
		handles[i+2] = m.mk(int32(lvl), handles[lo], handles[hi])
	}
	nRoots, err := read()
	if err != nil {
		return nil, err
	}
	roots := make([]Node, nRoots)
	for i := range roots {
		h, err := read()
		if err != nil {
			return nil, err
		}
		if h >= uint32(len(handles)) {
			return nil, fmt.Errorf("bdd: root %d out of range", h)
		}
		roots[i] = handles[h]
	}
	return roots, nil
}
