package bdd

import (
	"sync"
	"testing"

	"napmon/internal/rng"
)

// TestUniqueTableGrowth forces several unique-table doublings and verifies
// canonicity survives every rehash: re-making any node must return its
// original handle.
func TestUniqueTableGrowth(t *testing.T) {
	m := NewManager(64)
	r := rng.New(11)
	bits := make([]bool, 64)
	var roots []Node
	var pats [][]bool
	for i := 0; i < 300; i++ {
		for j := range bits {
			bits[j] = r.Bool(0.5)
		}
		roots = append(roots, m.Cube(bits))
		pats = append(pats, append([]bool(nil), bits...))
	}
	if m.Stats().UniqueCap <= initialUniqueSize {
		t.Fatalf("unique table never grew: cap %d", m.Stats().UniqueCap)
	}
	for i, p := range pats {
		if got := m.Cube(p); got != roots[i] {
			t.Fatalf("cube %d lost canonicity after growth: %d != %d", i, got, roots[i])
		}
		if !m.EvalBits(roots[i], p) {
			t.Fatalf("cube %d does not contain its own pattern", i)
		}
	}
}

// TestStatsCounters checks the stats snapshot tracks node creation and
// cache traffic.
func TestStatsCounters(t *testing.T) {
	m := NewManager(8)
	s0 := m.Stats()
	if s0.Nodes != 0 || s0.Frozen {
		t.Fatalf("fresh manager stats = %+v", s0)
	}
	a, b := m.Var(0), m.Var(1)
	f := m.And(a, b)
	s1 := m.Stats()
	if s1.Nodes == 0 || s1.UniqueMisses == 0 {
		t.Fatalf("no node creation recorded: %+v", s1)
	}
	if s1.CacheMisses == 0 {
		t.Fatalf("And did not touch the computed table: %+v", s1)
	}
	// Repeating the same operation must be answered from the cache.
	if m.And(a, b) != f {
		t.Fatal("And not deterministic")
	}
	s2 := m.Stats()
	if s2.CacheHits <= s1.CacheHits {
		t.Fatalf("repeated And missed the cache: before %+v after %+v", s1, s2)
	}
	if s2.UniqueCap != len(m.unique) || s2.CacheCap != len(m.cache) {
		t.Fatalf("capacity snapshot wrong: %+v", s2)
	}
}

// TestNotMemoized verifies the opNot computed-table path returns correct,
// canonical complements (including the double-negation identity).
func TestNotMemoized(t *testing.T) {
	m := NewManager(6)
	r := rng.New(5)
	f := randomFunc(m, r, 3)
	n1 := m.Not(f)
	n2 := m.Not(f) // cache hit path
	if n1 != n2 {
		t.Fatal("Not not deterministic")
	}
	if m.Not(n1) != f {
		t.Fatal("double negation broken")
	}
}

// TestFreezePanicsOnMutation locks the manager and checks every mutating
// entry point panics while read paths keep working.
func TestFreezePanicsOnMutation(t *testing.T) {
	m := NewManager(4)
	f := m.And(m.Var(0), m.Not(m.Var(1)))
	m.Freeze()
	if !m.Frozen() || !m.Stats().Frozen {
		t.Fatal("Frozen not reported")
	}
	if !m.EvalBits(f, []bool{true, false, false, false}) {
		t.Fatal("EvalBits wrong after freeze")
	}
	if m.EvalBits(f, []bool{true, true, false, false}) {
		t.Fatal("EvalBits wrong after freeze")
	}
	if m.NodeCount(f) != 2 {
		t.Fatalf("NodeCount after freeze = %d", m.NodeCount(f))
	}
	mutators := map[string]func(){
		"Var":    func() { m.Var(3) },
		"Cube":   func() { m.Cube([]bool{true, true, true, true}) },
		"And":    func() { m.And(f, m.True()) }, // needs cache traffic
		"Exists": func() { m.Exists(0, f) },     // needs cache traffic
		"Not":    func() { m.Not(f) },           // needs cache traffic
		"mk-new": func() { m.NVar(3) },          // needs a fresh node
	}
	for name, fn := range mutators {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s did not panic on frozen manager", name)
				}
			}()
			fn()
		}()
	}
}

// TestFrozenConcurrentEval hammers EvalBits from many goroutines on a
// frozen manager; run with -race this guards the freeze-then-serve
// invariant at the BDD layer.
func TestFrozenConcurrentEval(t *testing.T) {
	m := NewManager(32)
	r := rng.New(9)
	bits := make([]bool, 32)
	z := m.False()
	var pats [][]bool
	for i := 0; i < 100; i++ {
		for j := range bits {
			bits[j] = r.Bool(0.5)
		}
		z = m.Or(z, m.Cube(bits))
		pats = append(pats, append([]bool(nil), bits...))
	}
	z = m.ExpandHamming1(z)
	m.Freeze()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for rep := 0; rep < 50; rep++ {
				for _, p := range pats {
					if !m.EvalBits(z, p) {
						t.Error("inserted pattern missing from enlarged set")
						return
					}
				}
			}
		}()
	}
	wg.Wait()
}

// TestCacheEvictionIsCorrect builds a workload far larger than a tiny
// computed table so entries are evicted constantly, and cross-checks the
// result against a fresh default-sized manager. Lossy caching must never
// change results, only timings.
func TestCacheEvictionIsCorrect(t *testing.T) {
	small := NewManager(16)
	small.cache = make([]cacheEntry, 4) // force near-permanent eviction
	small.cacheMask = 3
	big := NewManager(16)
	r := rng.New(21)
	bits := make([]bool, 16)
	zs, zb := small.False(), big.False()
	for i := 0; i < 200; i++ {
		for j := range bits {
			bits[j] = r.Bool(0.5)
		}
		zs = small.Or(zs, small.Cube(bits))
		zb = big.Or(zb, big.Cube(bits))
	}
	zs = small.ExpandHamming1(zs)
	zb = big.ExpandHamming1(zb)
	if small.NodeCount(zs) != big.NodeCount(zb) {
		t.Fatalf("node counts diverge: %d vs %d", small.NodeCount(zs), big.NodeCount(zb))
	}
	if small.SatCount(zs) != big.SatCount(zb) {
		t.Fatalf("sat counts diverge: %v vs %v", small.SatCount(zs), big.SatCount(zb))
	}
}
