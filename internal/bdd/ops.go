package bdd

// And returns the conjunction (set intersection) of a and b.
func (m *Manager) And(a, b Node) Node { return m.apply(opAnd, a, b) }

// Or returns the disjunction (set union) of a and b.
func (m *Manager) Or(a, b Node) Node { return m.apply(opOr, a, b) }

// Xor returns the symmetric difference of a and b.
func (m *Manager) Xor(a, b Node) Node { return m.apply(opXor, a, b) }

// Diff returns a ∧ ¬b (set difference).
func (m *Manager) Diff(a, b Node) Node { return m.apply(opDiff, a, b) }

// Not returns the complement of a. Results are memoized in the shared
// computed table under opNot with the operand in both key positions.
func (m *Manager) Not(a Node) Node {
	m.checkMutable()
	switch a {
	case falseNode:
		return trueNode
	case trueNode:
		return falseNode
	}
	if r, ok := m.cacheLookup(opNot, a, a); ok {
		return r
	}
	n := m.nodes[a]
	r := m.mk(n.level, m.Not(n.lo), m.Not(n.hi))
	m.cacheStore(opNot, a, a, r)
	return r
}

// Implies returns ¬a ∨ b.
func (m *Manager) Implies(a, b Node) Node { return m.Or(m.Not(a), b) }

// ITE returns the if-then-else combination f?g:h.
func (m *Manager) ITE(f, g, h Node) Node {
	return m.Or(m.And(f, g), m.And(m.Not(f), h))
}

// terminalApply resolves op on the operands if the result is determined,
// returning (result, true); otherwise (0, false). Together with the
// commutative-operand ordering in apply, it guarantees every key reaching
// the computed table has b >= 2.
func terminalApply(op uint8, a, b Node) (Node, bool) {
	switch op {
	case opAnd:
		if a == falseNode || b == falseNode {
			return falseNode, true
		}
		if a == trueNode {
			return b, true
		}
		if b == trueNode {
			return a, true
		}
		if a == b {
			return a, true
		}
	case opOr:
		if a == trueNode || b == trueNode {
			return trueNode, true
		}
		if a == falseNode {
			return b, true
		}
		if b == falseNode {
			return a, true
		}
		if a == b {
			return a, true
		}
	case opXor:
		if a == b {
			return falseNode, true
		}
		if a == falseNode {
			return b, true
		}
		if b == falseNode {
			return a, true
		}
	case opDiff:
		if a == falseNode || b == trueNode {
			return falseNode, true
		}
		if b == falseNode {
			return a, true
		}
		if a == b {
			return falseNode, true
		}
	}
	return 0, false
}

// apply is Bryant's apply algorithm with memoization: recurse on the
// top-most variable of the two operands, combining cofactors.
func (m *Manager) apply(op uint8, a, b Node) Node {
	m.checkMutable()
	if r, ok := terminalApply(op, a, b); ok {
		return r
	}
	// Canonicalize commutative operand order for better cache hit rates
	// (and to establish b >= 2 for the computed-table empty-slot sentinel).
	if (op == opAnd || op == opOr || op == opXor) && a > b {
		a, b = b, a
	}
	if r, ok := m.cacheLookup(op, a, b); ok {
		return r
	}
	la, lb := m.nodes[a].level, m.nodes[b].level
	var lv int32
	var aLo, aHi, bLo, bHi Node
	switch {
	case la == lb:
		lv = la
		aLo, aHi = m.nodes[a].lo, m.nodes[a].hi
		bLo, bHi = m.nodes[b].lo, m.nodes[b].hi
	case la < lb:
		lv = la
		aLo, aHi = m.nodes[a].lo, m.nodes[a].hi
		bLo, bHi = b, b
	default:
		lv = lb
		aLo, aHi = a, a
		bLo, bHi = m.nodes[b].lo, m.nodes[b].hi
	}
	r := m.mk(lv, m.apply(op, aLo, bLo), m.apply(op, aHi, bHi))
	m.cacheStore(op, a, b, r)
	return r
}

// Restrict returns f with variable v fixed to the given value.
func (m *Manager) Restrict(f Node, v int, value bool) Node {
	m.checkVar(v)
	return m.restrict(f, int32(v), value)
}

func (m *Manager) restrict(f Node, v int32, value bool) Node {
	m.checkMutable()
	lv := m.nodes[f].level
	if lv > v {
		return f
	}
	n := m.nodes[f]
	if lv == v {
		if value {
			return n.hi
		}
		return n.lo
	}
	return m.mk(lv, m.restrict(n.lo, v, value), m.restrict(n.hi, v, value))
}

// Eval evaluates the function at a complete assignment, reading variable
// values through the callback. This is the runtime membership query of the
// monitor: worst-case time linear in the number of variables (the property
// the paper relies on for deployment). Eval touches only the node arena,
// never the tables, so it is safe to call concurrently on a frozen
// manager.
func (m *Manager) Eval(f Node, value func(v int) bool) bool {
	m.checkLive()
	for f > trueNode {
		n := m.nodes[f]
		if value(int(n.level)) {
			f = n.hi
		} else {
			f = n.lo
		}
	}
	return f == trueNode
}

// EvalBits evaluates the function on a bit-slice assignment of length
// NumVars(). This is the monitor's per-decision fast path: a direct walk
// down the arena with no closure and no allocation, concurrency-safe on a
// frozen manager.
func (m *Manager) EvalBits(f Node, bits []bool) bool {
	m.checkLive()
	if len(bits) != m.numVars {
		panic("bdd: EvalBits assignment length must equal NumVars")
	}
	for f > trueNode {
		n := &m.nodes[f]
		if bits[n.level] {
			f = n.hi
		} else {
			f = n.lo
		}
	}
	return f == trueNode
}

// Cube returns the conjunction of all variables, with polarity taken from
// bits (bits[i] selects v_i or ¬v_i). This encodes a single activation
// pattern; len(bits) must equal NumVars(). Built bottom-up so it costs
// O(NumVars) unique-table probes and allocates only when a probe misses.
func (m *Manager) Cube(bits []bool) Node {
	if len(bits) != m.numVars {
		panic("bdd: Cube length must equal NumVars")
	}
	n := trueNode
	for v := m.numVars - 1; v >= 0; v-- {
		if bits[v] {
			n = m.mk(int32(v), falseNode, n)
		} else {
			n = m.mk(int32(v), n, falseNode)
		}
	}
	return n
}

// CubeSparse returns the conjunction of the listed variables with the given
// polarities; unlisted variables are unconstrained. vars must be strictly
// increasing.
func (m *Manager) CubeSparse(vars []int, vals []bool) Node {
	if len(vars) != len(vals) {
		panic("bdd: CubeSparse vars/vals length mismatch")
	}
	n := trueNode
	for i := len(vars) - 1; i >= 0; i-- {
		m.checkVar(vars[i])
		if i > 0 && vars[i-1] >= vars[i] {
			panic("bdd: CubeSparse vars must be strictly increasing")
		}
		if vals[i] {
			n = m.mk(int32(vars[i]), falseNode, n)
		} else {
			n = m.mk(int32(vars[i]), n, falseNode)
		}
	}
	return n
}
