package bdd

import (
	"fmt"
	"sort"
	"strings"
)

// SatCount returns the number of satisfying assignments of f over all
// NumVars() variables (the cardinality of the pattern set). The count is
// exact as long as it fits a float64 mantissa and remains a faithful
// magnitude beyond that; monitored layers have at most a few hundred
// variables so the value always fits float64's exponent range. The memo is
// a flat slice over the arena (handles are dense), not a map.
func (m *Manager) SatCount(f Node) float64 {
	memo := make([]float64, len(m.nodes))
	done := make([]bool, len(m.nodes))
	var count func(n Node) float64 // models over variables [Level(n), numVars)
	count = func(n Node) float64 {
		if n == falseNode {
			return 0
		}
		if n == trueNode {
			return 1
		}
		if done[n] {
			return memo[n]
		}
		nd := m.nodes[n]
		cLo := count(nd.lo) * pow2(m.gap(n, nd.lo))
		cHi := count(nd.hi) * pow2(m.gap(n, nd.hi))
		c := cLo + cHi
		memo[n] = c
		done[n] = true
		return c
	}
	return count(f) * pow2(m.Level(f))
}

// gap returns the number of skipped (free) variables between node n and its
// child c, exclusive of n's own variable.
func (m *Manager) gap(n, c Node) int {
	return m.Level(c) - m.Level(n) - 1
}

func pow2(k int) float64 {
	v := 1.0
	for i := 0; i < k; i++ {
		v *= 2
	}
	return v
}

// NodeCount returns the number of decision nodes in the diagram rooted at
// f, excluding terminals. This is the monitor's storage cost measure.
func (m *Manager) NodeCount(f Node) int {
	seen := make([]bool, len(m.nodes))
	var walk func(n Node) int
	walk = func(n Node) int {
		if n <= trueNode || seen[n] {
			return 0
		}
		seen[n] = true
		nd := m.nodes[n]
		return 1 + walk(nd.lo) + walk(nd.hi)
	}
	return walk(f)
}

// AnySat returns one satisfying assignment of f as a full bit-vector over
// all variables (free variables default to false). ok is false when f is
// unsatisfiable.
func (m *Manager) AnySat(f Node) (bits []bool, ok bool) {
	if f == falseNode {
		return nil, false
	}
	bits = make([]bool, m.numVars)
	for f > trueNode {
		nd := m.nodes[f]
		if nd.lo != falseNode {
			f = nd.lo
		} else {
			bits[nd.level] = true
			f = nd.hi
		}
	}
	return bits, true
}

// AllSat enumerates every satisfying assignment of f over all variables,
// invoking visit with a reused buffer. Enumeration stops early if visit
// returns false. Intended for tests and small diagrams only — the number of
// assignments is exponential in the number of free variables.
func (m *Manager) AllSat(f Node, visit func(bits []bool) bool) {
	bits := make([]bool, m.numVars)
	var rec func(n Node, v int) bool
	rec = func(n Node, v int) bool {
		if n == falseNode {
			return true
		}
		if v == m.numVars {
			return visit(bits)
		}
		lv := m.Level(n)
		if lv > v {
			// Free variable: branch on both values.
			bits[v] = false
			if !rec(n, v+1) {
				return false
			}
			bits[v] = true
			defer func() { bits[v] = false }()
			return rec(n, v+1)
		}
		nd := m.nodes[n]
		bits[v] = false
		if !rec(nd.lo, v+1) {
			return false
		}
		bits[v] = true
		ok := rec(nd.hi, v+1)
		bits[v] = false
		return ok
	}
	rec(f, 0)
}

// Dot renders the diagram rooted at f in Graphviz DOT format, for
// debugging and documentation.
func (m *Manager) Dot(f Node, name string) string {
	var b strings.Builder
	fmt.Fprintf(&b, "digraph %q {\n", name)
	b.WriteString("  f0 [label=\"0\", shape=box];\n  f1 [label=\"1\", shape=box];\n")
	seen := make([]bool, len(m.nodes))
	var order []Node
	var walk func(n Node)
	walk = func(n Node) {
		if n <= trueNode || seen[n] {
			return
		}
		seen[n] = true
		order = append(order, n)
		walk(m.nodes[n].lo)
		walk(m.nodes[n].hi)
	}
	walk(f)
	sort.Slice(order, func(i, j int) bool { return order[i] < order[j] })
	nodeName := func(n Node) string {
		if n == falseNode {
			return "f0"
		}
		if n == trueNode {
			return "f1"
		}
		return fmt.Sprintf("n%d", n)
	}
	for _, n := range order {
		nd := m.nodes[n]
		fmt.Fprintf(&b, "  n%d [label=\"x%d\"];\n", n, nd.level)
		fmt.Fprintf(&b, "  n%d -> %s [style=dashed];\n", n, nodeName(nd.lo))
		fmt.Fprintf(&b, "  n%d -> %s;\n", n, nodeName(nd.hi))
	}
	b.WriteString("}\n")
	return b.String()
}
