package bdd

// Exists returns ∃v.f — the disjunction of the two cofactors of f on v.
// On a pattern set this is exactly the paper's Hamming enlargement
// primitive: bdd.exists(j, Z) contains every pattern that agrees with some
// member of Z on all variables except possibly the j-th.
func (m *Manager) Exists(v int, f Node) Node {
	m.checkVar(v)
	return m.exists(int32(v), f)
}

func (m *Manager) exists(v int32, f Node) Node {
	m.checkMutable()
	lv := m.nodes[f].level
	if lv > v {
		return f // f does not depend on v (includes the terminals)
	}
	if r, ok := m.cacheLookup(opExists, Node(v), f); ok {
		return r
	}
	n := m.nodes[f]
	var r Node
	if lv == v {
		r = m.Or(n.lo, n.hi)
	} else {
		r = m.mk(lv, m.exists(v, n.lo), m.exists(v, n.hi))
	}
	m.cacheStore(opExists, Node(v), f, r)
	return r
}

// ExistsSet existentially quantifies every variable in vars (in order).
func (m *Manager) ExistsSet(vars []int, f Node) Node {
	for _, v := range vars {
		f = m.Exists(v, f)
	}
	return f
}

// ExpandHamming1 returns the union of f with every pattern at Hamming
// distance exactly 1 from some member of f, i.e. line 12 of the paper's
// Algorithm 1: ⋃_j ∃x_j.f. Applying it γ times yields the γ-comfort zone.
func (m *Manager) ExpandHamming1(f Node) Node {
	out := f
	for v := 0; v < m.numVars; v++ {
		out = m.Or(out, m.exists(int32(v), f))
	}
	return out
}

// ExpandHamming1Subset behaves like ExpandHamming1 but only flips the
// listed variables; other variables keep their polarity. Used when only a
// monitored subset of neurons participates in the abstraction.
func (m *Manager) ExpandHamming1Subset(f Node, vars []int) Node {
	out := f
	for _, v := range vars {
		m.checkVar(v)
		out = m.Or(out, m.exists(int32(v), f))
	}
	return out
}

// Support returns the sorted list of variables f depends on. The visited
// set is a flat bit-slice over the arena rather than a map, so the walk
// allocates O(Size) bytes once and never boxes a handle.
func (m *Manager) Support(f Node) []int {
	seen := make([]bool, len(m.nodes))
	inSupport := make([]bool, m.numVars)
	var walk func(n Node)
	walk = func(n Node) {
		if n <= trueNode || seen[n] {
			return
		}
		seen[n] = true
		nd := m.nodes[n]
		inSupport[nd.level] = true
		walk(nd.lo)
		walk(nd.hi)
	}
	walk(f)
	var vars []int
	for v, in := range inSupport {
		if in {
			vars = append(vars, v)
		}
	}
	return vars
}
