// Package bdd implements Reduced Ordered Binary Decision Diagrams (ROBDDs)
// in the style of Bryant (1992), the data structure the paper uses to store
// neuron activation pattern sets. A Manager owns an arena of nodes shared
// by all diagrams it creates; diagrams are referenced by opaque Node
// handles. Structural sharing plus a unique table guarantee canonicity:
// two Nodes are equal iff they denote the same Boolean function.
//
// The operations provided are exactly those Algorithm 1 of the paper needs
// (encode a pattern as a cube, union via Or, Hamming enlargement via
// Exists) plus the general toolkit (And, Not, Xor, Diff, ITE, SatCount,
// Eval) required by tests, metrics and serialization.
package bdd

import (
	"fmt"
	"math"
)

// Node is a handle to a BDD rooted at a node in a Manager's arena.
// The zero value is the constant-false diagram.
type Node int32

// Reserved handles for the two terminal nodes.
const (
	falseNode Node = 0
	trueNode  Node = 1
)

// node is one decision node: if variable "level" is true follow hi,
// otherwise lo. Terminals use level == terminalLevel.
type node struct {
	level int32
	lo    Node
	hi    Node
}

// Manager owns the node arena, the unique table enforcing canonicity and
// the memoization caches. It is not safe for concurrent mutation; build
// monitors from a single goroutine (queries via Eval are read-only and may
// run concurrently once building is done).
type Manager struct {
	numVars  int
	nodes    []node
	unique   map[node]Node
	binCache map[binKey]Node
	qCache   map[binKey]Node // existential quantification cache
	notCache map[Node]Node
}

type binKey struct {
	op   uint8
	a, b Node
}

// Operation codes for the binary apply cache.
const (
	opAnd uint8 = iota
	opOr
	opXor
	opDiff
	opExists // a = variable, b = function
)

// terminalLevel is the pseudo-level assigned to the two terminals so they
// sort after every variable.
const terminalLevel = math.MaxInt32

// NewManager creates a manager for functions over numVars Boolean
// variables, indexed 0..numVars-1 with the natural variable order.
func NewManager(numVars int) *Manager {
	if numVars <= 0 {
		panic("bdd: manager needs at least one variable")
	}
	m := &Manager{
		numVars:  numVars,
		nodes:    make([]node, 2, 1024),
		unique:   make(map[node]Node),
		binCache: make(map[binKey]Node),
		qCache:   make(map[binKey]Node),
		notCache: make(map[Node]Node),
	}
	m.nodes[falseNode] = node{level: terminalLevel}
	m.nodes[trueNode] = node{level: terminalLevel}
	return m
}

// NumVars returns the number of variables the manager was created with.
func (m *Manager) NumVars() int { return m.numVars }

// Size returns the total number of live nodes in the arena, including the
// two terminals. It measures cumulative memory, not the size of any one
// diagram (use NodeCount for that).
func (m *Manager) Size() int { return len(m.nodes) }

// False returns the constant-false diagram (the empty pattern set).
func (m *Manager) False() Node { return falseNode }

// True returns the constant-true diagram (the set of all patterns).
func (m *Manager) True() Node { return trueNode }

// IsFalse reports whether n denotes the empty set.
func (m *Manager) IsFalse(n Node) bool { return n == falseNode }

// IsTrue reports whether n denotes the universal set.
func (m *Manager) IsTrue(n Node) bool { return n == trueNode }

// Var returns the diagram for variable v (the set of patterns whose v-th
// bit is 1).
func (m *Manager) Var(v int) Node {
	m.checkVar(v)
	return m.mk(int32(v), falseNode, trueNode)
}

// NVar returns the diagram for the negation of variable v.
func (m *Manager) NVar(v int) Node {
	m.checkVar(v)
	return m.mk(int32(v), trueNode, falseNode)
}

func (m *Manager) checkVar(v int) {
	if v < 0 || v >= m.numVars {
		panic(fmt.Sprintf("bdd: variable %d out of range [0,%d)", v, m.numVars))
	}
}

// mk returns the canonical node (level, lo, hi), applying the two ROBDD
// reduction rules: skip redundant tests (lo == hi) and share isomorphic
// subgraphs via the unique table.
func (m *Manager) mk(level int32, lo, hi Node) Node {
	if lo == hi {
		return lo
	}
	key := node{level: level, lo: lo, hi: hi}
	if n, ok := m.unique[key]; ok {
		return n
	}
	m.nodes = append(m.nodes, key)
	n := Node(len(m.nodes) - 1)
	m.unique[key] = n
	return n
}

// Lo returns the low (variable=0) child of n. Terminals return n itself.
func (m *Manager) Lo(n Node) Node {
	if n <= trueNode {
		return n
	}
	return m.nodes[n].lo
}

// Hi returns the high (variable=1) child of n. Terminals return n itself.
func (m *Manager) Hi(n Node) Node {
	if n <= trueNode {
		return n
	}
	return m.nodes[n].hi
}

// Level returns the variable index tested at n, or NumVars() for the
// terminals.
func (m *Manager) Level(n Node) int {
	lv := m.nodes[n].level
	if lv == terminalLevel {
		return m.numVars
	}
	return int(lv)
}
