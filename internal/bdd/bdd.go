// Package bdd implements Reduced Ordered Binary Decision Diagrams (ROBDDs)
// in the style of Bryant (1992), the data structure the paper uses to store
// neuron activation pattern sets. A Manager owns an arena of nodes shared
// by all diagrams it creates; diagrams are referenced by opaque Node
// handles. Structural sharing plus a unique table guarantee canonicity:
// two Nodes are equal iff they denote the same Boolean function.
//
// The operations provided are exactly those Algorithm 1 of the paper needs
// (encode a pattern as a cube, union via Or, Hamming enlargement via
// Exists) plus the general toolkit (And, Not, Xor, Diff, ITE, SatCount,
// Eval) required by tests, metrics and serialization.
//
// Storage layout (see DESIGN.md, "BDD manager internals"): nodes live in a
// flat arena indexed by their handle. Canonicity is enforced by an
// open-addressed, power-of-two-sized unique table of int32 handles probed
// inline against the arena — no boxed map keys, no per-node allocation.
// Operation results are memoized in a single lossy direct-mapped computed
// table shared by the binary ops, Not and Exists, sized in lockstep with
// the unique table. After a diagram set is built, Freeze makes the manager
// read-only: mutating operations panic, while Eval/EvalBits remain safe to
// call from any number of goroutines concurrently.
package bdd

import (
	"fmt"
	"math"
	"sync/atomic"
)

// Node is a handle to a BDD rooted at a node in a Manager's arena.
// The zero value is the constant-false diagram.
type Node int32

// Reserved handles for the two terminal nodes.
const (
	falseNode Node = 0
	trueNode  Node = 1
)

// node is one decision node: if variable "level" is true follow hi,
// otherwise lo. Terminals use level == terminalLevel.
type node struct {
	level int32
	lo    Node
	hi    Node
}

// Manager owns the node arena, the unique table enforcing canonicity and
// the memoization cache. It is not safe for concurrent mutation; build
// monitors from a single goroutine, then call Freeze — queries via Eval
// are read-only and may run concurrently once the manager is frozen.
type Manager struct {
	numVars  int
	nodes    []node
	frozen   bool
	released bool // Release was called: the arena and tables are gone

	// unique is the open-addressed hash table enforcing canonicity. Slots
	// hold node handles; 0 marks an empty slot (the terminals never enter
	// the table, so handle 0 is free to act as the sentinel). Size is
	// always a power of two; uniqueMask == len(unique)-1.
	unique     []int32
	uniqueMask uint32

	// cache is the lossy direct-mapped computed table shared by apply,
	// Not and exists. A zero entry has key.b == 0, which no live key can
	// have (see cacheStore), so zero slots never produce false hits.
	cache     []cacheEntry
	cacheMask uint32

	// compiles counts query plans built by Compile. Atomic because plans
	// may be compiled from a frozen manager that is concurrently serving
	// reads (the rest of stats is only written by the build goroutine).
	compiles atomic.Uint64

	stats Stats
}

// cacheEntry is one computed-table slot: (op, a, b) -> result.
type cacheEntry struct {
	a, b   Node
	result Node
	op     uint8
}

// Operation codes for the computed table.
const (
	opAnd uint8 = iota
	opOr
	opXor
	opDiff
	opExists // a = variable, b = function
	opNot    // a = b = operand
)

// terminalLevel is the pseudo-level assigned to the two terminals so they
// sort after every variable.
const terminalLevel = math.MaxInt32

// Initial table sizes (powers of two). The unique table doubles at 3/4
// load; the computed table doubles alongside it — so hit rates track the
// arena size — but is capped: past maxCacheSize the marginal hit-rate gain
// no longer pays for the resize traffic and memory (the table is lossy by
// design, so a capped size stays correct).
const (
	initialUniqueSize = 1 << 10
	initialCacheSize  = 1 << 11
	maxCacheSize      = 1 << 21
)

// Stats reports the manager's cumulative storage and cache counters.
// Hits/misses are counted since NewManager; capacities are current.
type Stats struct {
	// Nodes is the number of decision nodes in the arena (terminals
	// excluded). Every node ever created is counted: the arena does not
	// garbage-collect.
	Nodes int
	// UniqueHits counts mk calls answered by an existing canonical node;
	// UniqueMisses counts node creations.
	UniqueHits, UniqueMisses uint64
	// CacheHits and CacheMisses count computed-table probes by apply,
	// Not and Exists.
	CacheHits, CacheMisses uint64
	// UniqueCap and CacheCap are the current table capacities (slots).
	UniqueCap, CacheCap int
	// Compiles counts the query plans built from this manager's diagrams
	// (one per root passed to Compile) — the epoch-swap tests assert via
	// this counter that online updates recompile only touched zones.
	Compiles uint64
	// Frozen reports whether the manager has been frozen read-only.
	Frozen bool
}

// NewManager creates a manager for functions over numVars Boolean
// variables, indexed 0..numVars-1 with the natural variable order.
func NewManager(numVars int) *Manager {
	if numVars <= 0 {
		panic("bdd: manager needs at least one variable")
	}
	m := &Manager{
		numVars:    numVars,
		nodes:      make([]node, 2, 1024),
		unique:     make([]int32, initialUniqueSize),
		uniqueMask: initialUniqueSize - 1,
		cache:      make([]cacheEntry, initialCacheSize),
		cacheMask:  initialCacheSize - 1,
	}
	m.nodes[falseNode] = node{level: terminalLevel}
	m.nodes[trueNode] = node{level: terminalLevel}
	return m
}

// NumVars returns the number of variables the manager was created with.
func (m *Manager) NumVars() int { return m.numVars }

// Size returns the total number of live nodes in the arena, including the
// two terminals. It measures cumulative memory, not the size of any one
// diagram (use NodeCount for that).
func (m *Manager) Size() int { return len(m.nodes) }

// Stats returns a snapshot of the manager's storage and cache counters.
func (m *Manager) Stats() Stats {
	s := m.stats
	s.Nodes = len(m.nodes) - 2
	s.UniqueCap = len(m.unique)
	s.CacheCap = len(m.cache)
	s.Compiles = m.compiles.Load()
	s.Frozen = m.frozen
	return s
}

// Freeze makes the manager read-only: any operation that could create a
// node or touch the memoization cache panics from now on, while Eval,
// EvalBits and the structural accessors remain valid and are safe for
// concurrent use from any number of goroutines. Freezing is irreversible;
// it is the manager-level half of the monitor's freeze-then-serve
// concurrency model (DESIGN.md).
func (m *Manager) Freeze() { m.frozen = true }

// Frozen reports whether Freeze has been called.
func (m *Manager) Frozen() bool { return m.frozen }

// checkMutable panics when the manager is frozen. Every operation that
// could create nodes or write the computed table calls it on entry, so a
// frozen manager fails loudly and deterministically instead of racing.
func (m *Manager) checkMutable() {
	if m.frozen {
		m.checkLive()
		panic("bdd: mutating operation on frozen manager")
	}
}

// False returns the constant-false diagram (the empty pattern set).
func (m *Manager) False() Node { return falseNode }

// True returns the constant-true diagram (the set of all patterns).
func (m *Manager) True() Node { return trueNode }

// IsFalse reports whether n denotes the empty set.
func (m *Manager) IsFalse(n Node) bool { return n == falseNode }

// IsTrue reports whether n denotes the universal set.
func (m *Manager) IsTrue(n Node) bool { return n == trueNode }

// Var returns the diagram for variable v (the set of patterns whose v-th
// bit is 1).
func (m *Manager) Var(v int) Node {
	m.checkVar(v)
	return m.mk(int32(v), falseNode, trueNode)
}

// NVar returns the diagram for the negation of variable v.
func (m *Manager) NVar(v int) Node {
	m.checkVar(v)
	return m.mk(int32(v), trueNode, falseNode)
}

func (m *Manager) checkVar(v int) {
	if v < 0 || v >= m.numVars {
		panic(fmt.Sprintf("bdd: variable %d out of range [0,%d)", v, m.numVars))
	}
}

// hash3 mixes a (level, lo, hi) triple into a table index. Distinct odd
// multipliers per field followed by an avalanche keep clustering low under
// linear probing.
func hash3(level int32, lo, hi Node) uint32 {
	h := uint64(uint32(level))*0x9E3779B97F4A7C15 +
		uint64(uint32(lo))*0xC2B2AE3D27D4EB4F +
		uint64(uint32(hi))*0x165667B19E3779F9
	h ^= h >> 32
	h *= 0x2545F4914F6CDD1D
	h ^= h >> 29
	return uint32(h)
}

// mk returns the canonical node (level, lo, hi), applying the two ROBDD
// reduction rules: skip redundant tests (lo == hi) and share isomorphic
// subgraphs via the unique table. The probe runs inline over int32 slots
// compared against the arena, so a hit costs no allocation and no hashing
// of boxed keys.
func (m *Manager) mk(level int32, lo, hi Node) Node {
	if lo == hi {
		return lo
	}
	m.checkMutable()
	i := hash3(level, lo, hi) & m.uniqueMask
	for {
		slot := m.unique[i]
		if slot == 0 {
			break
		}
		n := &m.nodes[slot]
		if n.level == level && n.lo == lo && n.hi == hi {
			m.stats.UniqueHits++
			return Node(slot)
		}
		i = (i + 1) & m.uniqueMask
	}
	m.stats.UniqueMisses++
	m.nodes = append(m.nodes, node{level: level, lo: lo, hi: hi})
	id := int32(len(m.nodes) - 1)
	m.unique[i] = id
	// Grow at 3/4 load. len(nodes)-2 counts exactly the slots in use.
	if (len(m.nodes)-2)*4 >= len(m.unique)*3 {
		m.growUnique()
	}
	return Node(id)
}

// growUnique doubles the unique table and rehashes every decision node
// from the arena; the computed table doubles in lockstep so its hit rate
// keeps tracking the arena size. Amortized over insertions this is O(1)
// per node.
func (m *Manager) growUnique() {
	tab := make([]int32, 2*len(m.unique))
	mask := uint32(len(tab) - 1)
	for id := 2; id < len(m.nodes); id++ {
		n := &m.nodes[id]
		i := hash3(n.level, n.lo, n.hi) & mask
		for tab[i] != 0 {
			i = (i + 1) & mask
		}
		tab[i] = int32(id)
	}
	m.unique = tab
	m.uniqueMask = mask

	if len(m.cache) >= maxCacheSize {
		return
	}
	cache := make([]cacheEntry, 2*len(m.cache))
	cmask := uint32(len(cache) - 1)
	for _, e := range m.cache {
		if e.b != 0 {
			cache[cacheHash(e.op, e.a, e.b)&cmask] = e
		}
	}
	m.cache = cache
	m.cacheMask = cmask
}

// cacheHash mixes a computed-table key into an index.
func cacheHash(op uint8, a, b Node) uint32 {
	h := (uint64(uint32(a))<<32 | uint64(uint32(b))) * 0x9E3779B97F4A7C15
	h ^= uint64(op) * 0xFF51AFD7ED558CCD
	h ^= h >> 31
	return uint32(h)
}

// cacheLookup probes the computed table for (op, a, b).
func (m *Manager) cacheLookup(op uint8, a, b Node) (Node, bool) {
	e := &m.cache[cacheHash(op, a, b)&m.cacheMask]
	if e.b == b && e.a == a && e.op == op {
		m.stats.CacheHits++
		return e.result, true
	}
	m.stats.CacheMisses++
	return 0, false
}

// cacheStore records (op, a, b) -> r, evicting whatever occupied the slot
// (the table is deliberately lossy, as in classic BDD packages). Every key
// stored here has b >= 2: terminal operands are resolved before memoization
// by terminalApply (binary ops), the Not fast path, and the exists
// level-check, and commutative operands are ordered a <= b. That invariant
// is what lets a zero-valued slot (b == 0) act as "empty".
func (m *Manager) cacheStore(op uint8, a, b, r Node) {
	m.cache[cacheHash(op, a, b)&m.cacheMask] = cacheEntry{a: a, b: b, result: r, op: op}
}

// Lo returns the low (variable=0) child of n. Terminals return n itself.
func (m *Manager) Lo(n Node) Node {
	if n <= trueNode {
		return n
	}
	return m.nodes[n].lo
}

// Hi returns the high (variable=1) child of n. Terminals return n itself.
func (m *Manager) Hi(n Node) Node {
	if n <= trueNode {
		return n
	}
	return m.nodes[n].hi
}

// Level returns the variable index tested at n, or NumVars() for the
// terminals.
func (m *Manager) Level(n Node) int {
	lv := m.nodes[n].level
	if lv == terminalLevel {
		return m.numVars
	}
	return int(lv)
}
