package bdd

import (
	"bytes"
	"strings"
	"testing"
	"testing/quick"

	"napmon/internal/rng"
)

// brute evaluates f on all 2^n assignments and returns the truth table,
// for cross-checking BDD operations against exhaustive enumeration.
func brute(m *Manager, f Node) []bool {
	n := m.NumVars()
	table := make([]bool, 1<<n)
	bits := make([]bool, n)
	for a := 0; a < 1<<n; a++ {
		for v := 0; v < n; v++ {
			bits[v] = a&(1<<v) != 0
		}
		table[a] = m.EvalBits(f, bits)
	}
	return table
}

// randomFunc builds a random BDD by combining literals with random ops.
func randomFunc(m *Manager, r *rng.Source, depth int) Node {
	if depth == 0 {
		v := r.Intn(m.NumVars())
		if r.Bool(0.5) {
			return m.Var(v)
		}
		return m.NVar(v)
	}
	a := randomFunc(m, r, depth-1)
	b := randomFunc(m, r, depth-1)
	switch r.Intn(4) {
	case 0:
		return m.And(a, b)
	case 1:
		return m.Or(a, b)
	case 2:
		return m.Xor(a, b)
	default:
		return m.Not(a)
	}
}

func TestTerminals(t *testing.T) {
	m := NewManager(3)
	if !m.IsFalse(m.False()) || !m.IsTrue(m.True()) {
		t.Fatal("terminal predicates wrong")
	}
	if m.EvalBits(m.False(), []bool{true, true, true}) {
		t.Fatal("False evaluated true")
	}
	if !m.EvalBits(m.True(), []bool{false, false, false}) {
		t.Fatal("True evaluated false")
	}
}

func TestVarSemantics(t *testing.T) {
	m := NewManager(3)
	x1 := m.Var(1)
	if !m.EvalBits(x1, []bool{false, true, false}) {
		t.Fatal("Var(1) false when bit 1 set")
	}
	if m.EvalBits(x1, []bool{true, false, true}) {
		t.Fatal("Var(1) true when bit 1 clear")
	}
	n1 := m.NVar(1)
	if m.EvalBits(n1, []bool{false, true, false}) {
		t.Fatal("NVar(1) true when bit 1 set")
	}
}

func TestCanonicity(t *testing.T) {
	m := NewManager(4)
	// x0 ∧ x1 built two different ways must be the identical handle.
	a := m.And(m.Var(0), m.Var(1))
	b := m.Not(m.Or(m.Not(m.Var(0)), m.Not(m.Var(1)))) // De Morgan
	if a != b {
		t.Fatalf("canonicity violated: %d != %d", a, b)
	}
}

func TestReducedness(t *testing.T) {
	m := NewManager(5)
	r := rng.New(1)
	for i := 0; i < 20; i++ {
		randomFunc(m, r, 4)
	}
	// No interior node may have lo == hi, and all triples must be unique.
	seen := map[node]bool{}
	for i := 2; i < m.Size(); i++ {
		nd := m.nodes[i]
		if nd.lo == nd.hi {
			t.Fatalf("node %d has redundant test", i)
		}
		if seen[nd] {
			t.Fatalf("duplicate node triple %+v", nd)
		}
		seen[nd] = true
	}
}

func TestBooleanLawsExhaustive(t *testing.T) {
	m := NewManager(4)
	r := rng.New(2)
	for trial := 0; trial < 25; trial++ {
		a := randomFunc(m, r, 3)
		b := randomFunc(m, r, 3)
		ta, tb := brute(m, a), brute(m, b)

		and, or, xor, diff := brute(m, m.And(a, b)), brute(m, m.Or(a, b)),
			brute(m, m.Xor(a, b)), brute(m, m.Diff(a, b))
		na := brute(m, m.Not(a))
		for i := range ta {
			if and[i] != (ta[i] && tb[i]) {
				t.Fatalf("And truth table wrong at %d", i)
			}
			if or[i] != (ta[i] || tb[i]) {
				t.Fatalf("Or truth table wrong at %d", i)
			}
			if xor[i] != (ta[i] != tb[i]) {
				t.Fatalf("Xor truth table wrong at %d", i)
			}
			if diff[i] != (ta[i] && !tb[i]) {
				t.Fatalf("Diff truth table wrong at %d", i)
			}
			if na[i] != !ta[i] {
				t.Fatalf("Not truth table wrong at %d", i)
			}
		}
	}
}

func TestAlgebraicIdentities(t *testing.T) {
	m := NewManager(6)
	r := rng.New(3)
	for trial := 0; trial < 50; trial++ {
		a := randomFunc(m, r, 3)
		b := randomFunc(m, r, 3)
		c := randomFunc(m, r, 3)
		if m.And(a, b) != m.And(b, a) {
			t.Fatal("And not commutative")
		}
		if m.Or(a, m.Or(b, c)) != m.Or(m.Or(a, b), c) {
			t.Fatal("Or not associative")
		}
		if m.Not(m.Not(a)) != a {
			t.Fatal("double negation not identity")
		}
		if m.And(a, m.Not(a)) != m.False() {
			t.Fatal("a ∧ ¬a != false")
		}
		if m.Or(a, m.Not(a)) != m.True() {
			t.Fatal("a ∨ ¬a != true")
		}
		if m.Xor(a, a) != m.False() {
			t.Fatal("a ⊕ a != false")
		}
		// Distribution.
		if m.And(a, m.Or(b, c)) != m.Or(m.And(a, b), m.And(a, c)) {
			t.Fatal("And does not distribute over Or")
		}
	}
}

func TestITE(t *testing.T) {
	m := NewManager(4)
	r := rng.New(4)
	for trial := 0; trial < 20; trial++ {
		f := randomFunc(m, r, 2)
		g := randomFunc(m, r, 2)
		h := randomFunc(m, r, 2)
		ite := brute(m, m.ITE(f, g, h))
		tf, tg, th := brute(m, f), brute(m, g), brute(m, h)
		for i := range ite {
			want := th[i]
			if tf[i] {
				want = tg[i]
			}
			if ite[i] != want {
				t.Fatalf("ITE wrong at assignment %d", i)
			}
		}
	}
}

func TestImplies(t *testing.T) {
	m := NewManager(3)
	a, b := m.Var(0), m.Var(1)
	imp := brute(m, m.Implies(a, b))
	ta, tb := brute(m, a), brute(m, b)
	for i := range imp {
		if imp[i] != (!ta[i] || tb[i]) {
			t.Fatalf("Implies wrong at %d", i)
		}
	}
}

func TestExistsMatchesCofactorDisjunction(t *testing.T) {
	m := NewManager(5)
	r := rng.New(5)
	for trial := 0; trial < 30; trial++ {
		f := randomFunc(m, r, 4)
		for v := 0; v < 5; v++ {
			want := m.Or(m.Restrict(f, v, false), m.Restrict(f, v, true))
			if got := m.Exists(v, f); got != want {
				t.Fatalf("Exists(%d) != lo∨hi cofactors", v)
			}
		}
	}
}

func TestExistsRemovesFromSupport(t *testing.T) {
	m := NewManager(4)
	f := m.And(m.Var(0), m.And(m.Var(1), m.Var(3)))
	g := m.Exists(1, f)
	for _, v := range m.Support(g) {
		if v == 1 {
			t.Fatal("Exists left variable in support")
		}
	}
}

func TestCubeEncodesSinglePattern(t *testing.T) {
	m := NewManager(6)
	bits := []bool{true, false, true, true, false, false}
	c := m.Cube(bits)
	if got := m.SatCount(c); got != 1 {
		t.Fatalf("cube SatCount = %v, want 1", got)
	}
	if !m.EvalBits(c, bits) {
		t.Fatal("cube does not contain its own pattern")
	}
	flipped := append([]bool(nil), bits...)
	flipped[3] = !flipped[3]
	if m.EvalBits(c, flipped) {
		t.Fatal("cube contains a different pattern")
	}
}

func TestCubeSparse(t *testing.T) {
	m := NewManager(5)
	c := m.CubeSparse([]int{1, 3}, []bool{true, false})
	if got := m.SatCount(c); got != 8 { // 3 free vars
		t.Fatalf("sparse cube SatCount = %v, want 8", got)
	}
	if !m.EvalBits(c, []bool{false, true, true, false, true}) {
		t.Fatal("sparse cube rejects a matching pattern")
	}
	if m.EvalBits(c, []bool{false, false, true, false, true}) {
		t.Fatal("sparse cube accepts a non-matching pattern")
	}
}

func TestCubeSparsePanicsOnUnsorted(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewManager(5).CubeSparse([]int{3, 1}, []bool{true, false})
}

func TestSatCountMatchesBrute(t *testing.T) {
	m := NewManager(6)
	r := rng.New(6)
	for trial := 0; trial < 30; trial++ {
		f := randomFunc(m, r, 4)
		tt := brute(m, f)
		want := 0
		for _, b := range tt {
			if b {
				want++
			}
		}
		if got := m.SatCount(f); got != float64(want) {
			t.Fatalf("SatCount = %v, want %d", got, want)
		}
	}
}

func TestAnySat(t *testing.T) {
	m := NewManager(5)
	r := rng.New(7)
	for trial := 0; trial < 30; trial++ {
		f := randomFunc(m, r, 3)
		bits, ok := m.AnySat(f)
		if f == m.False() {
			if ok {
				t.Fatal("AnySat found model of false")
			}
			continue
		}
		if !ok {
			t.Fatal("AnySat failed on satisfiable function")
		}
		if !m.EvalBits(f, bits) {
			t.Fatal("AnySat returned non-model")
		}
	}
}

func TestAllSatEnumerates(t *testing.T) {
	m := NewManager(4)
	f := m.Or(m.Cube([]bool{true, false, false, true}), m.Cube([]bool{false, true, true, false}))
	var got [][]bool
	m.AllSat(f, func(bits []bool) bool {
		got = append(got, append([]bool(nil), bits...))
		return true
	})
	if len(got) != 2 {
		t.Fatalf("AllSat found %d models, want 2", len(got))
	}
	for _, bits := range got {
		if !m.EvalBits(f, bits) {
			t.Fatal("AllSat emitted non-model")
		}
	}
}

func TestAllSatEarlyStop(t *testing.T) {
	m := NewManager(4)
	calls := 0
	m.AllSat(m.True(), func([]bool) bool {
		calls++
		return calls < 3
	})
	if calls != 3 {
		t.Fatalf("AllSat made %d calls after early stop, want 3", calls)
	}
}

func TestExpandHamming1SmallExample(t *testing.T) {
	// The paper's example: Z = {001}; exists over each variable yields
	// {-01},{0-1},{00-} whose union is patterns at Hamming distance <= 1.
	m := NewManager(3)
	z := m.Cube([]bool{false, false, true}) // pattern 001 (x2 is the '1')
	z1 := m.ExpandHamming1(z)
	if got := m.SatCount(z1); got != 4 { // 001 plus its 3 neighbours
		t.Fatalf("expanded zone has %v patterns, want 4", got)
	}
	neighbours := [][]bool{
		{false, false, true},  // distance 0
		{true, false, true},   // flip x0
		{false, true, true},   // flip x1
		{false, false, false}, // flip x2
	}
	for _, p := range neighbours {
		if !m.EvalBits(z1, p) {
			t.Fatalf("pattern %v missing from Hamming-1 ball", p)
		}
	}
	if m.EvalBits(z1, []bool{true, true, true}) {
		t.Fatal("distance-2 pattern wrongly included")
	}
}

// hamming returns the Hamming distance between two bit-vectors.
func hamming(a, b []bool) int {
	d := 0
	for i := range a {
		if a[i] != b[i] {
			d++
		}
	}
	return d
}

func TestExpandHammingEqualsBallProperty(t *testing.T) {
	// Property (core of Algorithm 1's correctness): applying
	// ExpandHamming1 γ times to a set S yields exactly
	// { p : ∃ s∈S, H(p,s) ≤ γ }.
	check := func(seed uint32, gRaw uint8) bool {
		const nVars = 7
		gamma := int(gRaw % 4)
		r := rng.New(uint64(seed))
		m := NewManager(nVars)
		// Random seed set of 1..4 patterns.
		var seeds [][]bool
		z := m.False()
		for k := 0; k < 1+r.Intn(4); k++ {
			bits := make([]bool, nVars)
			for i := range bits {
				bits[i] = r.Bool(0.5)
			}
			seeds = append(seeds, bits)
			z = m.Or(z, m.Cube(bits))
		}
		for g := 0; g < gamma; g++ {
			z = m.ExpandHamming1(z)
		}
		// Compare against brute-force ball membership.
		bits := make([]bool, nVars)
		for a := 0; a < 1<<nVars; a++ {
			for v := 0; v < nVars; v++ {
				bits[v] = a&(1<<v) != 0
			}
			inBall := false
			for _, s := range seeds {
				if hamming(bits, s) <= gamma {
					inBall = true
					break
				}
			}
			if m.EvalBits(z, bits) != inBall {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestExpandHamming1SubsetOnlyFlipsListed(t *testing.T) {
	m := NewManager(4)
	z := m.Cube([]bool{true, true, false, false})
	z1 := m.ExpandHamming1Subset(z, []int{0, 2})
	if !m.EvalBits(z1, []bool{false, true, false, false}) {
		t.Fatal("flip of listed var 0 missing")
	}
	if !m.EvalBits(z1, []bool{true, true, true, false}) {
		t.Fatal("flip of listed var 2 missing")
	}
	if m.EvalBits(z1, []bool{true, false, false, false}) {
		t.Fatal("flip of unlisted var 1 wrongly included")
	}
}

func TestSupport(t *testing.T) {
	m := NewManager(6)
	f := m.And(m.Var(1), m.Or(m.Var(4), m.NVar(2)))
	got := m.Support(f)
	want := []int{1, 2, 4}
	if len(got) != len(want) {
		t.Fatalf("Support = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Support = %v, want %v", got, want)
		}
	}
}

func TestNodeCount(t *testing.T) {
	m := NewManager(3)
	if m.NodeCount(m.True()) != 0 || m.NodeCount(m.False()) != 0 {
		t.Fatal("terminals must count 0 nodes")
	}
	if got := m.NodeCount(m.Var(0)); got != 1 {
		t.Fatalf("NodeCount(Var) = %d, want 1", got)
	}
	c := m.Cube([]bool{true, true, true})
	if got := m.NodeCount(c); got != 3 {
		t.Fatalf("NodeCount(cube) = %d, want 3", got)
	}
}

func TestEvalLinearMembership(t *testing.T) {
	// Eval must walk at most NumVars nodes regardless of diagram size.
	m := NewManager(8)
	r := rng.New(9)
	z := m.False()
	for i := 0; i < 50; i++ {
		bits := make([]bool, 8)
		for j := range bits {
			bits[j] = r.Bool(0.5)
		}
		z = m.Or(z, m.Cube(bits))
	}
	steps := 0
	m.Eval(z, func(v int) bool {
		steps++
		return v%2 == 0
	})
	if steps > 8 {
		t.Fatalf("Eval consulted %d variables, want <= 8", steps)
	}
}

func TestSerializeRoundTrip(t *testing.T) {
	m := NewManager(10)
	r := rng.New(10)
	var roots []Node
	for i := 0; i < 5; i++ {
		roots = append(roots, randomFunc(m, r, 5))
	}
	var buf bytes.Buffer
	if err := m.Serialize(&buf, roots); err != nil {
		t.Fatal(err)
	}
	m2 := NewManager(10)
	got, err := m2.Deserialize(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(roots) {
		t.Fatalf("got %d roots, want %d", len(got), len(roots))
	}
	for i := range roots {
		a, b := brute(m, roots[i]), brute(m2, got[i])
		for j := range a {
			if a[j] != b[j] {
				t.Fatalf("root %d truth table differs after round trip", i)
			}
		}
	}
}

func TestDeserializeRejectsWrongVarCount(t *testing.T) {
	m := NewManager(4)
	var buf bytes.Buffer
	if err := m.Serialize(&buf, []Node{m.Var(0)}); err != nil {
		t.Fatal(err)
	}
	if _, err := NewManager(5).Deserialize(&buf); err == nil {
		t.Fatal("expected variable-count mismatch error")
	}
}

func TestDeserializeRejectsGarbage(t *testing.T) {
	if _, err := NewManager(4).Deserialize(bytes.NewReader([]byte{1, 2, 3, 4, 5, 6, 7, 8})); err == nil {
		t.Fatal("expected error on garbage input")
	}
}

func TestDotOutput(t *testing.T) {
	m := NewManager(2)
	d := m.Dot(m.And(m.Var(0), m.Var(1)), "and")
	for _, frag := range []string{"digraph", "x0", "x1", "style=dashed"} {
		if !strings.Contains(d, frag) {
			t.Fatalf("Dot output missing %q:\n%s", frag, d)
		}
	}
}

func TestVarPanicsOutOfRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewManager(3).Var(3)
}

func BenchmarkCubeInsert64(b *testing.B) {
	m := NewManager(64)
	r := rng.New(1)
	bits := make([]bool, 64)
	z := m.False()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := range bits {
			bits[j] = r.Bool(0.5)
		}
		z = m.Or(z, m.Cube(bits))
	}
	_ = z
}

func BenchmarkMembership64(b *testing.B) {
	m := NewManager(64)
	r := rng.New(2)
	bits := make([]bool, 64)
	z := m.False()
	for i := 0; i < 500; i++ {
		for j := range bits {
			bits[j] = r.Bool(0.5)
		}
		z = m.Or(z, m.Cube(bits))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.EvalBits(z, bits)
	}
}

func BenchmarkExpandHamming64(b *testing.B) {
	r := rng.New(3)
	for i := 0; i < b.N; i++ {
		m := NewManager(64)
		bits := make([]bool, 64)
		z := m.False()
		for k := 0; k < 50; k++ {
			for j := range bits {
				bits[j] = r.Bool(0.5)
			}
			z = m.Or(z, m.Cube(bits))
		}
		m.ExpandHamming1(z)
	}
}
