// Compiled-plan (de)serialization hooks. A Compiled branch program is a
// complete, canonical description of the diagram it was compiled from —
// level-ordered nodes, forward-only targets, terminals as sentinels — so
// it doubles as a compact wire/disk form: the snapshot codec
// (internal/core) ships frozen zones as their compiled plans, and the
// loader rebuilds the canonical ROBDD from the program bottom-up through
// mk. Because mk re-canonicalizes every node and Compile's output is a
// pure function of diagram structure, rebuild-then-recompile reproduces
// the serialized plan exactly — the property the replication path's
// bit-for-bit convergence rests on.

package bdd

import "fmt"

// Terminal target codes of a compiled plan in exported form, for codecs
// that serialize branch programs. They match the internal sentinels:
// branch targets >= 0 are program indices, these two never collide.
const (
	TerminalFalse int32 = compiledFalse
	TerminalTrue  int32 = compiledTrue
)

// PlanBranch is the exported form of one compiled decision: test
// variable Va; follow Hi when the pattern bit is set, Lo otherwise.
// Lo/Hi are forward program indices or a Terminal sentinel.
type PlanBranch struct {
	Va, Lo, Hi int32
}

// Entry returns the plan's entry point: a program index (always 0 for a
// plan compiled from a non-terminal root) or a Terminal sentinel for a
// constant diagram.
func (c *Compiled) Entry() int32 { return c.entry }

// Branch returns the i-th compiled decision.
func (c *Compiled) Branch(i int) PlanBranch {
	b := c.prog[i]
	return PlanBranch{Va: b.va, Lo: b.lo, Hi: b.hi}
}

// NewCompiled reconstructs a plan from its serialized parts, validating
// every structural invariant Compile guarantees — so a corrupt or
// hostile stream fails loudly here instead of walking out of bounds at
// query time:
//
//   - every Va is a variable of the plan, and Va is non-decreasing
//     through the program (level ordering);
//   - every branch target is a Terminal sentinel or a strictly forward
//     index whose branch tests a strictly later variable;
//   - no branch is redundant (Lo == Hi never survives reduction);
//   - the entry is a Terminal exactly when the program is empty.
func NewCompiled(numVars int, entry int32, branches []PlanBranch) (*Compiled, error) {
	if numVars <= 0 {
		return nil, fmt.Errorf("bdd: compiled plan needs at least one variable, got %d", numVars)
	}
	if len(branches) == 0 {
		if entry != TerminalFalse && entry != TerminalTrue {
			return nil, fmt.Errorf("bdd: empty plan with non-terminal entry %d", entry)
		}
		return &Compiled{numVars: numVars, entry: entry}, nil
	}
	if entry < 0 || int(entry) >= len(branches) {
		return nil, fmt.Errorf("bdd: plan entry %d out of range [0,%d)", entry, len(branches))
	}
	checkTarget := func(i int, t int32) error {
		if t == TerminalFalse || t == TerminalTrue {
			return nil
		}
		if t <= int32(i) || int(t) >= len(branches) {
			return fmt.Errorf("bdd: branch %d target %d is not forward in [%d,%d)", i, t, i+1, len(branches))
		}
		if branches[t].Va <= branches[i].Va {
			return fmt.Errorf("bdd: branch %d (var %d) targets branch %d testing var %d out of order",
				i, branches[i].Va, t, branches[t].Va)
		}
		return nil
	}
	prog := make([]branch, len(branches))
	for i, b := range branches {
		if b.Va < 0 || b.Va >= int32(numVars) {
			return nil, fmt.Errorf("bdd: branch %d variable %d out of range [0,%d)", i, b.Va, numVars)
		}
		if i > 0 && b.Va < branches[i-1].Va {
			return nil, fmt.Errorf("bdd: branch %d variable %d breaks level ordering after %d",
				i, b.Va, branches[i-1].Va)
		}
		if b.Lo == b.Hi {
			return nil, fmt.Errorf("bdd: branch %d is redundant (lo == hi == %d)", i, b.Lo)
		}
		if err := checkTarget(i, b.Lo); err != nil {
			return nil, err
		}
		if err := checkTarget(i, b.Hi); err != nil {
			return nil, err
		}
		prog[i] = branch{va: b.Va, lo: b.Lo, hi: b.Hi}
	}
	return &Compiled{numVars: numVars, entry: entry, prog: prog}, nil
}

// FromCompiled rebuilds the canonical diagram a plan was compiled from
// into this manager and returns its root. Targets only point forward, so
// a single reverse pass interns every branch through mk with its
// children already materialized; mk re-canonicalizes, so loading into a
// non-empty manager shares structure with whatever it already holds.
// The manager must be mutable and match the plan's variable count.
func (m *Manager) FromCompiled(c *Compiled) (Node, error) {
	m.checkLive()
	if c.numVars != m.numVars {
		return falseNode, fmt.Errorf("bdd: plan over %d variables loaded into manager with %d", c.numVars, m.numVars)
	}
	if len(c.prog) == 0 {
		if c.entry == compiledTrue {
			return trueNode, nil
		}
		return falseNode, nil
	}
	nodes := make([]Node, len(c.prog))
	resolve := func(t int32) Node {
		switch t {
		case compiledFalse:
			return falseNode
		case compiledTrue:
			return trueNode
		default:
			return nodes[t]
		}
	}
	for i := len(c.prog) - 1; i >= 0; i-- {
		b := c.prog[i]
		nodes[i] = m.mk(b.va, resolve(b.lo), resolve(b.hi))
	}
	return nodes[c.entry], nil
}
