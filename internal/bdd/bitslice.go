// Bit-sliced evaluation: 64 membership queries per plan walk. The
// scalar EvalBatch walk answers one pattern at a time — per query it
// chases ~numVars dependent, cache-missing loads through the branch
// program, and the coalescer hands the serving path wide runs of
// same-class patterns that all repeat that chase over the same nodes.
// Bit-slicing turns the batch sideways: a 64-query block is transposed
// into one uint64 lane mask per variable (bit q of lanes[v] is pattern
// q's bit v), and the branch program is walked once per *group* of
// lanes instead of once per lane. A frontier entry is a (node, arrival
// mask) pair; visiting it splits the mask with the node's lane mask
// (hi = m & lanes[va], lo = m &^ lanes[va]) and pushes the nonzero
// halves at the branch targets, while terminal-bound bits accumulate
// into one trueMask that is fanned back out to the verdict slice.
//
// The frontier lives in a fixed 64-entry stack, not a node-indexed
// array: every lane bit sits in exactly one pending entry at any time
// (splitting replaces a parent mask with two disjoint halves), so the
// live frontier can never exceed 64 entries no matter how large the
// program is. That keeps the entire working set beyond the program
// itself inside ~1KB of stack-resident scratch — the earlier design,
// an arrival-mask array plus occupancy bitmap sized by the program,
// spent more time maintaining its own bookkeeping (two scattered
// read-modify-writes per visited node, a bitmap scan per block) than
// walking the plan. Lanes that carry identical or prefix-sharing
// patterns travel together in one mask for as long as their paths
// agree, so a same-class block costs one walk per *distinct* path
// prefix, not one per query; in the worst case (64 fully divergent
// patterns) the visit count degrades to exactly the scalar walk's hop
// count, with the per-query branch mispredictions replaced by mask
// arithmetic. Transpose scratch is pooled, so the warm path allocates
// nothing.

package bdd

import (
	"encoding/binary"
	"math/bits"
	"sync"
	"unsafe"
)

// slicedThreshold is the batch width at which EvalBatch dispatches to
// the bit-sliced path. Below it, the per-block fixed cost (the bool →
// lane-mask transpose) is not amortized over enough lanes to beat the
// scalar walk; at and above it the shared-prefix collapse wins.
// Zone.ContainsBatch inherits the same dispatch, so wide coalescer
// runs ride the sliced path automatically.
const slicedThreshold = 32

// sliceScratch is the pooled working set of one bit-sliced evaluation:
// the 64-word transpose buffer, the per-variable lane masks and the
// multi-block clustering order. The frontier stack itself is a
// fixed-size local in evalSliced.
type sliceScratch struct {
	words [64]uint64
	lanes []uint64 // one lane mask per variable
	keys  []uint64 // cluster key (level-0-first bit prefix) | query index
	tmp   []uint64 // unclustered keys, input of the bucket scatter
}

var sliceScratches = sync.Pool{New: func() any { return new(sliceScratch) }}

// packMagic gathers the low bit of each byte of a little-endian uint64
// into the low 8 bits of the product's top byte: for x = Σ b_k·2^(8k)
// with b_k ∈ {0,1}, (x·packMagic)>>56 = Σ b_k·2^k. The diagonal terms
// b_k·2^(8k)·2^(56-7k) land on bits 56..63; every cross term either
// stays below bit 56 or overflows past bit 63 and is discarded by the
// modular multiply, so no carries pollute the result.
const packMagic = 0x0102040810204080

// packBits packs a bool slice (up to 64 entries) into a bit mask, bit v
// set iff p[v]. A Go bool is one byte holding 0 or 1, so the slice is
// read as bytes and packed 8 bits per multiply instead of bit by bit —
// the pack runs once per query per block and a per-bit loop (branchy or
// not) was the dominant fixed cost of small-diversity blocks. The &
// with the low-bit mask keeps a non-canonical bool byte (only
// constructible via unsafe) from corrupting its neighbours' lanes.
func packBits(p []bool) uint64 {
	pb := unsafe.Slice((*byte)(unsafe.Pointer(unsafe.SliceData(p))), len(p))
	var w uint64
	v := 0
	for ; v+8 <= len(pb); v += 8 {
		x := binary.LittleEndian.Uint64(pb[v:]) & 0x0101010101010101
		w |= (x * packMagic) >> 56 << uint(v)
	}
	for ; v < len(pb); v++ {
		w |= uint64(pb[v]&1) << uint(v)
	}
	return w
}

// transpose64 transposes the 64x64 bit matrix in place about the main
// diagonal under LSB-first indexing: afterwards bit q of a[v] is what
// bit v of a[q] was. Recursive block-swap (the Hacker's Delight §7-3
// scheme, with the swap pair flipped for LSB-first column order): at
// each scale j, word k (row-index bit j clear) holds the block row 0
// and a[k|j] the block row 1, and mask selects the low columns (column
// bit j clear); exchanging row 0's high columns with row 1's low
// columns transposes the 2x2 block, 6 rounds from j=32 down to j=1.
func transpose64(a *[64]uint64) {
	mask := uint64(0x00000000FFFFFFFF)
	for j := 32; j != 0; j >>= 1 {
		for k := 0; k < 64; k = ((k | j) + 1) &^ j {
			t := (a[k]>>uint(j) ^ a[k|j]) & mask
			a[k|j] ^= t
			a[k] ^= t << uint(j)
		}
		mask ^= mask << uint(j>>1)
	}
}

// EvalBatchSliced evaluates the plan on every pattern through the
// bit-sliced walk, writing one verdict per pattern into out. Bit-exact
// with EvalBatchScalar and the interpreted EvalBits on every input —
// the property/fuzz suites pin all three against each other. The
// out-length and per-pattern width contract is validated up front,
// before any verdict is written, exactly like the other batch entry
// points. Callers normally use EvalBatch, which dispatches here above
// the batch-width threshold; this entry exists for the parity suites
// and benchmarks that must pick the path explicitly.
func (c *Compiled) EvalBatchSliced(patterns [][]bool, out []bool) {
	c.checkBatch(patterns, out)
	c.evalSliced(patterns, out)
}

// evalSliced is the unvalidated bit-sliced core shared by EvalBatch
// dispatch and EvalBatchSliced.
func (c *Compiled) evalSliced(patterns [][]bool, out []bool) {
	prog := c.prog
	if len(prog) == 0 {
		// Constant plan: every lane lands on the entry terminal.
		v := c.entry == compiledTrue
		for i := range patterns {
			out[i] = v
		}
		return
	}
	nv := c.numVars
	np := len(patterns)
	s := sliceScratches.Get().(*sliceScratch)
	if cap(s.lanes) < nv {
		s.lanes = make([]uint64, nv)
	}
	lanes := s.lanes[:nv]
	words := &s.words
	// Multi-block batches are clustered before slicing: queries are
	// grouped into 64-lane blocks by their leading bit prefix (level 0
	// in the most significant position), so repeated and prefix-sharing
	// patterns land in the same block and merge into one lane group
	// there, instead of being scattered across blocks by arrival order.
	// The key packs a 40-variable prefix above a 24-bit query index in
	// one word. A comparison sort is overkill — only block membership
	// matters, not order within a block — so a two-pass counting sort
	// on the top ten key bits does the grouping in O(batch): duplicates
	// of one signature share all key bits and land in one bucket, while
	// a full sort at this batch size would cost more than the walk it
	// saves. Narrow batches skip the clustering (one block — identical
	// lanes already travel together in one mask), as do absurdly wide
	// ones that would overflow the index field.
	var keys []uint64
	if np > 64 && np < 1<<24 {
		if cap(s.keys) < np {
			s.keys = make([]uint64, np)
			s.tmp = make([]uint64, np)
		}
		keys = s.keys[:np]
		raw := s.tmp[:np]
		kw := nv
		if kw > 40 {
			kw = 40
		}
		var hist [1024]int32
		for i, p := range patterns {
			// packBits yields kw low bits; Reverse64 lifts them to the
			// top of the word (level 0 most significant), clear of the
			// index in the low 24 bits.
			k := bits.Reverse64(packBits(p[:kw])) | uint64(i)
			raw[i] = k
			hist[k>>54]++
		}
		off := int32(0)
		for b := range hist {
			cnt := hist[b]
			hist[b] = off
			off += cnt
		}
		for _, k := range raw {
			b := k >> 54
			keys[hist[b]] = k
			hist[b]++
		}
	}
	// Frontier stack. Live entries carry pairwise-disjoint nonzero
	// masks, so at most 64 can exist; two extra slots absorb the
	// unconditional stores below before the occupancy check trims them.
	var idxs [66]int32
	var masks [66]uint64
	for base := 0; base < np; base += 64 {
		n := np - base
		if n > 64 {
			n = 64
		}
		// Transpose the block into lane masks, 64 variables at a time:
		// pack each pattern's bits of the variable group into one word,
		// flip the 64x64 matrix, and the words become per-variable masks.
		// A clustered plan of at most 40 variables never rereads the
		// patterns: its sort key holds the whole pattern above the index
		// bits, so un-reversing the key reconstructs the packed row
		// without chasing the permutation through memory.
		for g := 0; g < nv; g += 64 {
			gw := nv - g
			if gw > 64 {
				gw = 64
			}
			switch {
			case keys != nil && nv <= 40:
				km := uint64(1)<<uint(nv) - 1
				for q, k := range keys[base : base+n] {
					words[q] = bits.Reverse64(k) & km
				}
			case keys != nil:
				for q, k := range keys[base : base+n] {
					words[q] = packBits(patterns[k&0xFFFFFF][g : g+gw])
				}
			default:
				for q, p := range patterns[base : base+n] {
					words[q] = packBits(p[g : g+gw])
				}
			}
			for q := n; q < 64; q++ {
				words[q] = 0
			}
			transpose64(words)
			copy(lanes[g:g+gw], words[:gw])
		}
		full := ^uint64(0)
		if n < 64 {
			full = 1<<uint(n) - 1
		}
		// Walk: pop entries, split their masks, push the live halves.
		// Entry order is irrelevant — each entry is an independent
		// bundle of lanes — so a LIFO stack with unconditional stores
		// and branch-free slot commits keeps the loop free of
		// data-dependent branches beyond the pop condition. Up to four
		// entries are popped per round and their program loads hoisted
		// together: the loads carry no dependency on each other, so
		// their cache misses overlap instead of serializing into one
		// long load-to-load chain (a single-pop loop is latency-bound
		// on exactly that chain).
		var trueMask uint64
		idxs[0] = c.entry
		masks[0] = full
		sp := 1
		for {
			if sp >= 4 {
				sp -= 4
				i1, m1 := idxs[sp+3], masks[sp+3]
				i2, m2 := idxs[sp+2], masks[sp+2]
				i3, m3 := idxs[sp+1], masks[sp+1]
				i4, m4 := idxs[sp], masks[sp]
				b1 := prog[i1]
				b2 := prog[i2]
				b3 := prog[i3]
				b4 := prog[i4]
				lm := lanes[b1.va]
				hi := m1 & lm
				lo := m1 &^ lm
				t := b1.hi
				idxs[sp] = t
				masks[sp] = hi
				if t >= 0 && hi != 0 {
					sp++
				}
				if t == compiledTrue {
					trueMask |= hi
				}
				t = b1.lo
				idxs[sp] = t
				masks[sp] = lo
				if t >= 0 && lo != 0 {
					sp++
				}
				if t == compiledTrue {
					trueMask |= lo
				}
				lm = lanes[b2.va]
				hi = m2 & lm
				lo = m2 &^ lm
				t = b2.hi
				idxs[sp] = t
				masks[sp] = hi
				if t >= 0 && hi != 0 {
					sp++
				}
				if t == compiledTrue {
					trueMask |= hi
				}
				t = b2.lo
				idxs[sp] = t
				masks[sp] = lo
				if t >= 0 && lo != 0 {
					sp++
				}
				if t == compiledTrue {
					trueMask |= lo
				}
				lm = lanes[b3.va]
				hi = m3 & lm
				lo = m3 &^ lm
				t = b3.hi
				idxs[sp] = t
				masks[sp] = hi
				if t >= 0 && hi != 0 {
					sp++
				}
				if t == compiledTrue {
					trueMask |= hi
				}
				t = b3.lo
				idxs[sp] = t
				masks[sp] = lo
				if t >= 0 && lo != 0 {
					sp++
				}
				if t == compiledTrue {
					trueMask |= lo
				}
				lm = lanes[b4.va]
				hi = m4 & lm
				lo = m4 &^ lm
				t = b4.hi
				idxs[sp] = t
				masks[sp] = hi
				if t >= 0 && hi != 0 {
					sp++
				}
				if t == compiledTrue {
					trueMask |= hi
				}
				t = b4.lo
				idxs[sp] = t
				masks[sp] = lo
				if t >= 0 && lo != 0 {
					sp++
				}
				if t == compiledTrue {
					trueMask |= lo
				}
				continue
			}
			if sp == 0 {
				break
			}
			sp--
			i := idxs[sp]
			m := masks[sp]
			b := prog[i]
			lm := lanes[b.va]
			hi := m & lm
			lo := m &^ lm
			t := b.hi
			idxs[sp] = t
			masks[sp] = hi
			if t >= 0 && hi != 0 {
				sp++
			}
			if t == compiledTrue {
				trueMask |= hi
			}
			t = b.lo
			idxs[sp] = t
			masks[sp] = lo
			if t >= 0 && lo != 0 {
				sp++
			}
			if t == compiledTrue {
				trueMask |= lo
			}
		}
		if keys != nil {
			for q, k := range keys[base : base+n] {
				out[k&0xFFFFFF] = trueMask&(1<<uint(q)) != 0
			}
		} else {
			for q := 0; q < n; q++ {
				out[base+q] = trueMask&(1<<uint(q)) != 0
			}
		}
	}
	sliceScratches.Put(s)
}
