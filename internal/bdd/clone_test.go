package bdd

import (
	"testing"
)

// buildSample constructs a few interrelated diagrams and returns them with
// their manager: f = (x0 ∧ x1) ∨ x2, g = ¬x1, h = f ⊕ g.
func buildSample(t *testing.T) (*Manager, []Node) {
	t.Helper()
	m := NewManager(4)
	f := m.Or(m.And(m.Var(0), m.Var(1)), m.Var(2))
	g := m.Not(m.Var(1))
	h := m.Xor(f, g)
	return m, []Node{f, g, h}
}

// allAssignments enumerates every assignment over n vars as bit slices.
func allAssignments(n int) [][]bool {
	out := make([][]bool, 1<<n)
	for a := range out {
		bits := make([]bool, n)
		for v := 0; v < n; v++ {
			bits[v] = a&(1<<v) != 0
		}
		out[a] = bits
	}
	return out
}

// TestCloneCompactMutable: a compact clone of a frozen source is
// independently writable, and mutating it never disturbs the source.
func TestCloneCompactMutable(t *testing.T) {
	m, roots := buildSample(t)
	m.Freeze()
	c, croots := m.CloneCompact(roots)
	if c.Frozen() {
		t.Fatal("clone inherited frozen state")
	}
	// Mutating the clone must not disturb the frozen source.
	grown := c.Or(croots[0], c.Var(3))
	if c.IsFalse(grown) {
		t.Fatal("clone mutation produced false")
	}
	for _, bits := range allAssignments(4) {
		want := m.EvalBits(roots[0], bits) || bits[3]
		if got := c.EvalBits(grown, bits); got != want {
			t.Fatalf("grown clone wrong on %v: got %v want %v", bits, got, want)
		}
		for i := range roots {
			if m.EvalBits(roots[i], bits) != c.EvalBits(croots[i], bits) {
				t.Fatalf("root %d diverges on %v after clone mutation", i, bits)
			}
		}
	}
}

// TestCloneCompactSemantics: the compact clone preserves the functions of
// the requested roots and drops unreachable garbage.
func TestCloneCompactSemantics(t *testing.T) {
	m := NewManager(6)
	// Create garbage: intermediates that no surviving root references.
	var f Node = m.False()
	for v := 0; v < 6; v++ {
		f = m.Or(f, m.And(m.Var(v), m.NVar((v+1)%6)))
	}
	g := m.Exists(2, f)
	m.Freeze()
	c, croots := m.CloneCompact([]Node{f, g})
	if c.Frozen() {
		t.Fatal("compact clone inherited frozen state")
	}
	if c.Size() >= m.Size() {
		t.Fatalf("compact clone did not shrink: %d vs %d nodes", c.Size(), m.Size())
	}
	if want := m.NodeCount(f) + 2; c.Size() > m.NodeCount(f)+m.NodeCount(g)+2 {
		t.Fatalf("compact clone larger than the live sets: %d nodes (f alone is %d)", c.Size(), want)
	}
	for _, bits := range allAssignments(6) {
		if m.EvalBits(f, bits) != c.EvalBits(croots[0], bits) {
			t.Fatalf("f diverges on %v", bits)
		}
		if m.EvalBits(g, bits) != c.EvalBits(croots[1], bits) {
			t.Fatalf("g diverges on %v", bits)
		}
	}
	// Canonicity carries over: same function, same SatCount.
	if m.SatCount(f) != c.SatCount(croots[0]) {
		t.Fatalf("SatCount diverges: %v vs %v", m.SatCount(f), c.SatCount(croots[0]))
	}
	// Shared roots stay shared (f appears twice → same handle twice).
	_, dup := m.CloneCompact([]Node{f, f})
	if dup[0] != dup[1] {
		t.Fatal("identical roots mapped to different handles")
	}
}

// TestCloneCompactTerminalRoots: terminal-only root lists must survive
// compaction (the empty zone's Z⁰ is the false terminal).
func TestCloneCompactTerminalRoots(t *testing.T) {
	m := NewManager(3)
	c, roots := m.CloneCompact([]Node{m.False(), m.True()})
	if !c.IsFalse(roots[0]) || !c.IsTrue(roots[1]) {
		t.Fatalf("terminals remapped to %v", roots)
	}
}

// TestReleaseSemantics: a released manager reports Released, panics
// loudly on use, and Release is idempotent.
func TestReleaseSemantics(t *testing.T) {
	m, roots := buildSample(t)
	m.Freeze()
	m.Release()
	m.Release() // idempotent
	if !m.Released() {
		t.Fatal("Released() false after Release")
	}
	if !m.Frozen() {
		t.Fatal("released manager must read as frozen")
	}
	defer func() {
		if r := recover(); r == nil {
			t.Fatal("EvalBits on released manager did not panic")
		}
	}()
	m.EvalBits(roots[0], make([]bool, 4))
}

// TestCloneSurvivesSourceRelease: the lifetime decoupling the epoch model
// relies on — releasing a retired source manager must not perturb clones
// built from it.
func TestCloneSurvivesSourceRelease(t *testing.T) {
	m, roots := buildSample(t)
	// Record the expected truth table before the source dies.
	want := make([]bool, 1<<4)
	for a, bits := range allAssignments(4) {
		want[a] = m.EvalBits(roots[2], bits)
	}
	compact, croots := m.CloneCompact(roots)
	m.Release()
	for a, bits := range allAssignments(4) {
		if got := compact.EvalBits(croots[2], bits); got != want[a] {
			t.Fatalf("compact clone diverges after source release on %v", bits)
		}
	}
	// The clone remains mutable.
	if compact.IsFalse(compact.Or(croots[0], compact.Var(3))) {
		t.Fatal("compact clone unusable after source release")
	}
}
