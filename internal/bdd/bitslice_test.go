package bdd

import (
	"math/rand"
	"strings"
	"testing"
)

// TestTranspose64 pins the bit-matrix transpose against the naive
// definition on random matrices: bit q of out[v] must be bit v of
// in[q].
func TestTranspose64(t *testing.T) {
	r := rand.New(rand.NewSource(21))
	for rep := 0; rep < 50; rep++ {
		var in, got [64]uint64
		for i := range in {
			in[i] = r.Uint64()
		}
		got = in
		transpose64(&got)
		for v := 0; v < 64; v++ {
			for q := 0; q < 64; q++ {
				want := in[q]&(1<<uint(v)) != 0
				if have := got[v]&(1<<uint(q)) != 0; have != want {
					t.Fatalf("rep %d: transposed[%d] bit %d = %v, want in[%d] bit %d = %v",
						rep, v, q, have, q, v, want)
				}
			}
		}
	}
	// Involution: transposing twice is the identity.
	var a, b [64]uint64
	for i := range a {
		a[i] = r.Uint64()
	}
	b = a
	transpose64(&b)
	transpose64(&b)
	if a != b {
		t.Fatal("transpose64 applied twice is not the identity")
	}
}

// raggedSizes are the batch widths every bit-sliced suite exercises:
// a single query, the widths straddling one 64-lane block, and a
// width that spills into a ragged tail block.
var raggedSizes = []int{1, 63, 64, 65}

// checkSlicedParity runs one plan over the probes through all three
// engines — interpreted EvalBits, scalar-compiled, bit-sliced — at
// full width and at every ragged prefix, and fails on any divergence.
func checkSlicedParity(t *testing.T, m *Manager, root Node, cp *Compiled, probes [][]bool, tag string) {
	t.Helper()
	sizes := append([]int{len(probes)}, raggedSizes...)
	outS := make([]bool, len(probes))
	outB := make([]bool, len(probes))
	for _, n := range sizes {
		if n > len(probes) {
			continue
		}
		sub := probes[:n]
		cp.EvalBatchScalar(sub, outS[:n])
		cp.EvalBatchSliced(sub, outB[:n])
		for i := 0; i < n; i++ {
			want := m.EvalBits(root, sub[i])
			if outS[i] != want {
				t.Fatalf("%s n=%d probe %d: scalar %v, interpreted %v", tag, n, i, outS[i], want)
			}
			if outB[i] != want {
				t.Fatalf("%s n=%d probe %d: bit-sliced %v, interpreted %v", tag, n, i, outB[i], want)
			}
		}
	}
}

// TestBitSlicedExhaustive pins bit-sliced == scalar == interpreted on
// every assignment of every diagram, for widths small enough to
// enumerate, including the ragged batch widths.
func TestBitSlicedExhaustive(t *testing.T) {
	r := rand.New(rand.NewSource(31))
	for _, nv := range []int{1, 2, 3, 5, 8, 12} {
		m := NewManager(nv)
		roots := []Node{
			m.False(), m.True(), m.Var(0), m.NVar(nv - 1),
			randomDiagram(m, r, 3, 0),
			randomDiagram(m, r, 5, 1),
			randomDiagram(m, r, 2, 2),
		}
		plans := m.Compile(roots...)
		na := 1 << nv
		patterns := make([][]bool, na)
		for a := 0; a < na; a++ {
			bits := make([]bool, nv)
			for v := 0; v < nv; v++ {
				bits[v] = a&(1<<v) != 0
			}
			patterns[a] = bits
		}
		for ri, root := range roots {
			checkSlicedParity(t, m, root, plans[ri], patterns, "exhaustive")
		}
	}
}

// TestBitSlicedWide cross-checks the three engines on monitor-sized
// diagrams, including one wider than 64 variables so the transpose's
// multi-group path (more than one lane word group) is exercised.
func TestBitSlicedWide(t *testing.T) {
	r := rand.New(rand.NewSource(37))
	for _, nv := range []int{40, 70, 129} {
		m := NewManager(nv)
		roots := []Node{
			randomDiagram(m, r, 40, 0),
			randomDiagram(m, r, 40, 1),
			randomDiagram(m, r, 15, 2),
		}
		plans := m.Compile(roots...)
		probes := make([][]bool, 321) // 5 full blocks + a one-lane tail
		for i := range probes {
			bits := make([]bool, nv)
			for v := range bits {
				bits[v] = r.Intn(2) == 1
			}
			probes[i] = bits
		}
		for ri, root := range roots {
			checkSlicedParity(t, m, root, plans[ri], probes, "wide")
		}
	}
}

// TestBitSlicedConstants covers the empty-program plans at every ragged
// width: a constant diagram has no branches to sweep, and every lane
// must still get the terminal verdict.
func TestBitSlicedConstants(t *testing.T) {
	m := NewManager(6)
	plans := m.Compile(m.False(), m.True())
	for _, n := range raggedSizes {
		patterns := make([][]bool, n)
		for i := range patterns {
			patterns[i] = make([]bool, 6)
		}
		out := make([]bool, n)
		plans[0].EvalBatchSliced(patterns, out)
		for i, v := range out {
			if v {
				t.Fatalf("n=%d: constant-false plan returned true at lane %d", n, i)
			}
		}
		plans[1].EvalBatchSliced(patterns, out)
		for i, v := range out {
			if !v {
				t.Fatalf("n=%d: constant-true plan returned false at lane %d", n, i)
			}
		}
	}
}

// TestEvalBatchDispatch checks the auto-dispatch boundary: EvalBatch
// answers identically just below, at, and above slicedThreshold (both
// paths are pinned bit-for-bit elsewhere; this guards the dispatch
// plumbing itself).
func TestEvalBatchDispatch(t *testing.T) {
	r := rand.New(rand.NewSource(43))
	m := NewManager(20)
	root := randomDiagram(m, r, 15, 1)
	cp := m.Compile(root)[0]
	probes := make([][]bool, slicedThreshold+33)
	for i := range probes {
		bits := make([]bool, 20)
		for v := range bits {
			bits[v] = r.Intn(2) == 1
		}
		probes[i] = bits
	}
	want := make([]bool, len(probes))
	cp.EvalBatchScalar(probes, want)
	for _, n := range []int{slicedThreshold - 1, slicedThreshold, len(probes)} {
		out := make([]bool, n)
		cp.EvalBatch(probes[:n], out)
		for i := 0; i < n; i++ {
			if out[i] != want[i] {
				t.Fatalf("n=%d probe %d: EvalBatch %v, scalar %v", n, i, out[i], want[i])
			}
		}
	}
}

// TestEvalBatchValidatesUpFront pins the batch contract on all three
// entry points: a short out and a mid-batch width mismatch both panic
// with a bdd:-prefixed message BEFORE any verdict is written.
func TestEvalBatchValidatesUpFront(t *testing.T) {
	r := rand.New(rand.NewSource(47))
	m := NewManager(8)
	root := randomDiagram(m, r, 4, 1)
	cp := m.Compile(root)[0]
	entries := map[string]func([][]bool, []bool){
		"EvalBatch":       cp.EvalBatch,
		"EvalBatchScalar": cp.EvalBatchScalar,
		"EvalBatchSliced": cp.EvalBatchSliced,
	}
	mustPanic := func(name string, f func()) string {
		t.Helper()
		var msg string
		func() {
			defer func() {
				rec := recover()
				if rec == nil {
					t.Fatalf("%s did not panic", name)
				}
				msg = rec.(string)
			}()
			f()
		}()
		if !strings.HasPrefix(msg, "bdd:") {
			t.Fatalf("%s panic %q lacks the bdd: prefix", name, msg)
		}
		return msg
	}
	goodRow := func() []bool { return make([]bool, 8) }
	for name, eval := range entries {
		// Short out.
		patterns := [][]bool{goodRow(), goodRow(), goodRow()}
		mustPanic(name+"/short-out", func() { eval(patterns, make([]bool, 2)) })

		// Width mismatch mid-batch: out must stay untouched — the
		// sentinel values survive because validation runs before any
		// verdict is written.
		bad := make([][]bool, 40)
		for i := range bad {
			bad[i] = goodRow()
		}
		bad[25] = make([]bool, 7)
		out := make([]bool, len(bad))
		for i := range out {
			out[i] = true // sentinel: a write would flip some entry false
		}
		msg := mustPanic(name+"/mid-batch-width", func() { eval(bad, out) })
		if !strings.Contains(msg, "pattern 25") {
			t.Fatalf("%s panic %q does not name the offending pattern", name, msg)
		}
		for i, v := range out {
			if !v {
				t.Fatalf("%s wrote verdict %d before validating the whole batch", name, i)
			}
		}
	}
}

// TestBitSlicedScratchReuse runs many blocks back-to-back through the
// pooled scratch so stale lane masks or transpose words surviving a
// previous (possibly ragged) block would poison a later block's
// verdicts.
func TestBitSlicedScratchReuse(t *testing.T) {
	r := rand.New(rand.NewSource(53))
	m := NewManager(24)
	roots := []Node{
		randomDiagram(m, r, 20, 1),
		randomDiagram(m, r, 6, 2),
		randomDiagram(m, r, 30, 0),
	}
	plans := m.Compile(roots...)
	for rep := 0; rep < 20; rep++ {
		n := 1 + r.Intn(200)
		probes := make([][]bool, n)
		for i := range probes {
			bits := make([]bool, 24)
			for v := range bits {
				bits[v] = r.Intn(2) == 1
			}
			probes[i] = bits
		}
		for ri := range roots {
			checkSlicedParity(t, m, roots[ri], plans[ri], probes, "reuse")
		}
	}
}

// TestBitSlicedClusteredDuplicates drives the multi-block clustering
// path with the traffic it exists for — wide batches dominated by
// repeated signatures — and checks the verdict permutation: clustering
// reorders which block answers each query, and a fan-out bug would
// write the right verdicts to the wrong indices. Widths straddle the
// 40-variable boundary between the key-decode fill (the whole pattern
// reconstructed from the cluster key) and the indirect refill.
func TestBitSlicedClusteredDuplicates(t *testing.T) {
	r := rand.New(rand.NewSource(61))
	for _, nv := range []int{13, 40, 70} {
		m := NewManager(nv)
		root := randomDiagram(m, r, 30, 1)
		plan := m.Compile(root)[0]
		// 8 signatures, then 1024 queries drawn from them with a few
		// one-bit variants mixed in.
		sigs := make([][]bool, 8)
		for i := range sigs {
			bits := make([]bool, nv)
			for v := range bits {
				bits[v] = r.Intn(2) == 1
			}
			sigs[i] = bits
		}
		probes := make([][]bool, 1024)
		for i := range probes {
			p := sigs[r.Intn(len(sigs))]
			if r.Intn(4) == 0 {
				q := make([]bool, nv)
				copy(q, p)
				v := r.Intn(nv)
				q[v] = !q[v]
				p = q
			}
			probes[i] = p
		}
		checkSlicedParity(t, m, root, plan, probes, "clustered")
	}
}
