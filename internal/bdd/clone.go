package bdd

// Cloning and release support for the epoch-swap online-update model
// (DESIGN.md, "Online updates: epochs, grace periods"). A frozen manager
// serving queries cannot grow, so absorbing new patterns means building a
// writable successor: CloneCompact rebuilds the nodes reachable from a
// root set into a fresh manager (dropping the garbage a build session
// accumulates — the arena never collects in place). When the retired
// manager's last reader drains, Release frees its arena and tables
// deterministically instead of waiting for a GC cycle to notice.

// CloneCompact rebuilds the sub-diagrams reachable from roots into a fresh
// writable manager and returns it with the remapped roots (parallel to the
// input). Unreachable nodes — dead intermediates from Or/Exists chains
// during a long build — are left behind, so the clone's arena is exactly
// the live node set: this is the arena-compaction primitive, and the unit
// the online updater shadow-builds zone deltas on. The source manager is
// only read; it may be frozen.
func (m *Manager) CloneCompact(roots []Node) (*Manager, []Node) {
	m.checkLive()
	c := NewManager(m.numVars)
	remap := make([]Node, len(m.nodes))
	mapped := make([]bool, len(m.nodes))
	mapped[falseNode], mapped[trueNode] = true, true
	remap[trueNode] = trueNode
	// Iterative post-order DFS: children are remapped before parents, so
	// each node is rebuilt with already-valid child handles. A deep-first
	// explicit stack keeps pathological chain diagrams from overflowing
	// the goroutine stack.
	var stack []Node
	visit := func(n Node) {
		if !mapped[n] {
			stack = append(stack, n)
		}
	}
	for _, r := range roots {
		visit(r)
		for len(stack) > 0 {
			n := stack[len(stack)-1]
			if mapped[n] {
				stack = stack[:len(stack)-1]
				continue
			}
			nd := m.nodes[n]
			if !mapped[nd.lo] || !mapped[nd.hi] {
				visit(nd.lo)
				visit(nd.hi)
				continue
			}
			remap[n] = c.mk(nd.level, remap[nd.lo], remap[nd.hi])
			mapped[n] = true
			stack = stack[:len(stack)-1]
		}
	}
	out := make([]Node, len(roots))
	for i, r := range roots {
		out[i] = remap[r]
	}
	return c, out
}

// Release frees the manager's arena and tables. It is called on the
// managers of a retired epoch once the epoch's reader refcount drains —
// the deterministic end of the grace period — so the memory of a replaced
// zone is reclaimable immediately instead of whenever the GC next runs.
// A released manager is dead: every subsequent operation, including Eval,
// panics. Release is idempotent.
func (m *Manager) Release() {
	m.frozen = true
	m.released = true
	m.nodes, m.unique, m.cache = nil, nil, nil
}

// Released reports whether Release has been called.
func (m *Manager) Released() bool { return m.released }

// checkLive panics when the manager has been released; read-only entry
// points call it so use-after-release fails loudly instead of as a nil
// slice dereference deep in a walk.
func (m *Manager) checkLive() {
	if m.released {
		panic("bdd: operation on released manager (its epoch was retired)")
	}
}
