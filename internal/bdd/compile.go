// Compiled query plans: the deployment-time fast path of the membership
// query. EvalBits realizes the paper's "one node visit per monitored
// neuron" bound as a pointer-chase through the manager's node arena — an
// arena that, after a build session, is mostly garbage (dead Or/Exists
// intermediates) with the live diagram scattered across it, so every hop
// of a query is a potential cache miss into a structure sized by the
// build, not by the diagram. Compile fixes the layout once, at freeze
// time: each root is linearized into a flat, level-ordered branch
// program whose nodes are exactly the reachable set, ordered by variable
// level (ties broken by first-visit DFS order, lo before hi). A query
// then walks strictly forward through a dense array that is sized by the
// diagram and usually cache-resident, with terminals encoded as negative
// sentinels so the walk loop is branch-free apart from the bit test.
// EvalBatch amortizes the remaining per-call setup over a whole
// micro-batch — the serving path's unit of work (see DESIGN.md,
// "Compiled query plans + sharded build").

package bdd

import "fmt"

// Terminal sentinels of a compiled plan: walk indices are >= 0, so the
// two constants can never collide with a branch target.
const (
	compiledFalse int32 = -1
	compiledTrue  int32 = -2
)

// branch is one compiled decision: test variable va; follow hi when the
// pattern bit is set, lo otherwise. lo/hi are indices into the program,
// or a terminal sentinel.
type branch struct {
	va     int32
	lo, hi int32
}

// Compiled is a frozen, self-contained branch program for one diagram.
// It holds no reference to the Manager it was compiled from: evaluating
// it is safe from any number of goroutines, for as long as the caller
// keeps it — even after the source manager is released.
type Compiled struct {
	numVars int
	entry   int32
	prog    []branch
}

// Compile linearizes each root into its own flat branch program and
// returns the plans parallel to roots. Nodes are emitted level-ordered
// (ties broken by DFS discovery, lo-subgraph first), so a query's at
// most one visit per level walks monotonically forward through the
// program — the prefetcher's favorite access pattern — and the hot
// prefix of a skewed diagram stays contiguous. The manager is only read;
// compile frozen diagrams once and serve from the plans (Compile on a
// still-mutable manager snapshots the current diagram and does not track
// later growth).
func (m *Manager) Compile(roots ...Node) []*Compiled {
	m.checkLive()
	plans := make([]*Compiled, len(roots))
	for i, r := range roots {
		plans[i] = m.compileOne(r)
	}
	m.compiles.Add(uint64(len(roots)))
	return plans
}

// compileOne builds the branch program of a single root.
func (m *Manager) compileOne(root Node) *Compiled {
	c := &Compiled{numVars: m.numVars}
	if root <= trueNode {
		c.entry = terminalSentinel(root)
		return c
	}
	// Pass 1: iterative DFS (lo before hi) recording first-visit order of
	// the reachable decision nodes.
	order := make([]Node, 0, 64)
	seen := make(map[Node]bool, 64)
	stack := []Node{root}
	for len(stack) > 0 {
		n := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if n <= trueNode || seen[n] {
			continue
		}
		seen[n] = true
		order = append(order, n)
		nd := m.nodes[n]
		// Push hi first so lo is visited first: the lo cofactor is the
		// "neuron off" side, the denser one for ReLU patterns.
		stack = append(stack, nd.hi, nd.lo)
	}
	// Pass 2: stable partition by level. Levels along any root-to-leaf
	// path strictly increase, so emitting level groups in ascending order
	// guarantees every branch target points forward; within a level the
	// DFS discovery order keeps hot subgraphs adjacent. A counting sort
	// over the level histogram preserves that order in O(n).
	levels := make(map[int32]int, 16)
	for _, n := range order {
		levels[m.nodes[n].level]++
	}
	offsets := make(map[int32]int32, len(levels))
	var lv int32
	var base int32
	for lv = 0; lv < int32(m.numVars); lv++ {
		if cnt, ok := levels[lv]; ok {
			offsets[lv] = base
			base += int32(cnt)
		}
	}
	pos := make(map[Node]int32, len(order))
	for _, n := range order {
		l := m.nodes[n].level
		pos[n] = offsets[l]
		offsets[l]++
	}
	c.prog = make([]branch, len(order))
	for _, n := range order {
		nd := m.nodes[n]
		c.prog[pos[n]] = branch{va: nd.level, lo: target(pos, nd.lo), hi: target(pos, nd.hi)}
	}
	c.entry = pos[root] // always 0: the root alone occupies its level
	return c
}

func terminalSentinel(n Node) int32 {
	if n == trueNode {
		return compiledTrue
	}
	return compiledFalse
}

func target(pos map[Node]int32, n Node) int32 {
	if n <= trueNode {
		return terminalSentinel(n)
	}
	return pos[n]
}

// NumVars returns the pattern width the plan evaluates.
func (c *Compiled) NumVars() int { return c.numVars }

// Len returns the number of branches in the program (0 for a constant
// diagram) — the same count as the source diagram's NodeCount.
func (c *Compiled) Len() int { return len(c.prog) }

// Eval runs the branch program on a full assignment: at most one branch
// per variable, walking forward through the flat program. Bit-exact with
// Manager.EvalBits on the diagram the plan was compiled from.
func (c *Compiled) Eval(bits []bool) bool {
	if len(bits) != c.numVars {
		panic(fmt.Sprintf("bdd: compiled plan over %d variables evaluated on %d bits", c.numVars, len(bits)))
	}
	prog := c.prog
	i := c.entry
	for i >= 0 {
		b := prog[i]
		if bits[b.va] {
			i = b.hi
		} else {
			i = b.lo
		}
	}
	return i == compiledTrue
}

// EvalBatch evaluates the plan on every pattern, writing one verdict per
// pattern into out (len(out) must cover len(patterns)). This is the
// micro-batch entry point of the serving path. Narrow batches run the
// scalar walk (one forward chase per pattern, program hot in cache
// across the batch); at slicedThreshold patterns and above the batch is
// dispatched to the bit-sliced walk (bitslice.go), which answers up to
// 64 queries per pass over the program. Both paths are bit-exact with
// Eval. The out-length and every pattern width are validated up front,
// before any verdict is written, so a bad batch never leaves out
// partially filled.
func (c *Compiled) EvalBatch(patterns [][]bool, out []bool) {
	c.checkBatch(patterns, out)
	if len(patterns) >= slicedThreshold && len(c.prog) > 0 {
		c.evalSliced(patterns, out)
		return
	}
	c.evalScalar(patterns, out)
}

// EvalBatchScalar evaluates the plan on every pattern through the
// scalar walk regardless of batch width — one forward chase per
// pattern. It exists for the parity suites and benchmarks that must
// pin the scalar and bit-sliced paths against each other explicitly;
// serving goes through EvalBatch, which picks the path by batch width.
// Same up-front validation contract as EvalBatch.
func (c *Compiled) EvalBatchScalar(patterns [][]bool, out []bool) {
	c.checkBatch(patterns, out)
	c.evalScalar(patterns, out)
}

// checkBatch validates the batch contract shared by every batch entry
// point: out covers the patterns and every pattern has the plan's
// width. Validation happens before any verdict is written, so a
// mid-batch width mismatch cannot leave earlier verdicts behind.
func (c *Compiled) checkBatch(patterns [][]bool, out []bool) {
	if len(out) < len(patterns) {
		panic(fmt.Sprintf("bdd: EvalBatch output %d shorter than %d patterns", len(out), len(patterns)))
	}
	nv := c.numVars
	for pi, bits := range patterns {
		if len(bits) != nv {
			panic(fmt.Sprintf("bdd: compiled plan over %d variables evaluated on %d bits (pattern %d)", nv, len(bits), pi))
		}
	}
}

// evalScalar is the unvalidated scalar core shared by EvalBatch
// dispatch and EvalBatchScalar.
func (c *Compiled) evalScalar(patterns [][]bool, out []bool) {
	prog := c.prog
	entry := c.entry
	for pi, bits := range patterns {
		i := entry
		for i >= 0 {
			b := prog[i]
			if bits[b.va] {
				i = b.hi
			} else {
				i = b.lo
			}
		}
		out[pi] = i == compiledTrue
	}
}
