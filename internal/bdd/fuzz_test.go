package bdd

// FuzzBDDOps is a differential fuzzer for the BDD engine: the fuzz input
// is interpreted as a little program over a stack of diagrams (push
// variables and cubes, apply And/Or/Xor/Diff/Not/Exists/Restrict), and a
// parallel truth table over ≤ 12 variables is maintained as the oracle.
// After every step the invariants the monitor relies on are checked:
//
//   - Eval/EvalBits agree with the truth table on every assignment;
//   - the compiled query plan (Compile → Eval/EvalBatch) agrees with the
//     truth table on every assignment — the serving fast path is checked
//     differentially against the same oracle as the interpreter;
//   - canonicity: two stack entries have the same handle iff they denote
//     the same Boolean function;
//   - SatCount equals the truth table's popcount;
//   - NodeCount is consistent between equal handles.
//
// The covered operations are exactly the Algorithm 1 set (Cube, Or,
// Exists for the Hamming enlargement) plus the general toolkit.

import (
	"math/bits"
	"testing"
)

// table is a truth table over n ≤ 12 vars: 2^n bits packed in uint64
// words.
type table []uint64

func newTable(n int) table { return make(table, ((1<<n)+63)/64) }

func (t table) get(a int) bool { return t[a/64]&(1<<(a%64)) != 0 }
func (t table) set(a int, v bool) {
	if v {
		t[a/64] |= 1 << (a % 64)
	} else {
		t[a/64] &^= 1 << (a % 64)
	}
}
func (t table) popcount() int {
	n := 0
	for _, w := range t {
		n += bits.OnesCount64(w)
	}
	return n
}

func FuzzBDDOps(f *testing.F) {
	f.Add([]byte{3, 0, 1, 2, 10, 11, 13, 20})
	f.Add([]byte{5, 0, 1, 10, 2, 3, 11, 12, 30, 1, 40, 2})
	f.Add([]byte{12, 0, 5, 11, 30, 0, 31, 5, 13, 20})
	f.Add([]byte{8, 50, 0xAA, 50, 0x55, 11, 14, 32, 7})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) < 2 {
			return
		}
		nv := 1 + int(data[0])%12 // 1..12 variables
		data = data[1:]
		m := NewManager(nv)
		na := 1 << nv // assignments

		type entry struct {
			n  Node
			tt table
		}
		// Seed stack: one variable diagram so binary ops always have
		// operands.
		seed := entry{n: m.Var(0), tt: newTable(nv)}
		for a := 0; a < na; a++ {
			seed.tt.set(a, a&1 != 0)
		}
		stack := []entry{seed}
		pop := func(i int) entry { return stack[len(stack)-1-i%len(stack)] }

		// All assignments as bit-slices, reused by the compiled-plan batch
		// check each step.
		assigns := make([][]bool, na)
		for a := 0; a < na; a++ {
			bits := make([]bool, nv)
			for v := 0; v < nv; v++ {
				bits[v] = a&(1<<v) != 0
			}
			assigns[a] = bits
		}
		batchOut := make([]bool, na)
		scalarOut := make([]bool, na)
		slicedOut := make([]bool, na)

		const maxSteps = 64 // bound work per input
		steps := 0
		for i := 0; i < len(data) && steps < maxSteps; i++ {
			op := data[i]
			arg := func() int {
				i++
				if i < len(data) {
					return int(data[i])
				}
				return 0
			}
			var e entry
			switch op % 10 {
			case 0: // push variable
				v := arg() % nv
				e = entry{n: m.Var(v), tt: newTable(nv)}
				for a := 0; a < na; a++ {
					e.tt.set(a, a&(1<<v) != 0)
				}
			case 1: // push negated variable
				v := arg() % nv
				e = entry{n: m.NVar(v), tt: newTable(nv)}
				for a := 0; a < na; a++ {
					e.tt.set(a, a&(1<<v) == 0)
				}
			case 2: // And
				x, y := pop(arg()), pop(arg())
				e = entry{n: m.And(x.n, y.n), tt: newTable(nv)}
				for w := range e.tt {
					e.tt[w] = x.tt[w] & y.tt[w]
				}
			case 3: // Or
				x, y := pop(arg()), pop(arg())
				e = entry{n: m.Or(x.n, y.n), tt: newTable(nv)}
				for w := range e.tt {
					e.tt[w] = x.tt[w] | y.tt[w]
				}
			case 4: // Xor
				x, y := pop(arg()), pop(arg())
				e = entry{n: m.Xor(x.n, y.n), tt: newTable(nv)}
				for w := range e.tt {
					e.tt[w] = x.tt[w] ^ y.tt[w]
				}
			case 5: // Diff
				x, y := pop(arg()), pop(arg())
				e = entry{n: m.Diff(x.n, y.n), tt: newTable(nv)}
				for w := range e.tt {
					e.tt[w] = x.tt[w] &^ y.tt[w]
				}
			case 6: // Not
				x := pop(arg())
				e = entry{n: m.Not(x.n), tt: newTable(nv)}
				for w := range e.tt {
					e.tt[w] = ^x.tt[w]
				}
				maskTail(e.tt, na)
			case 7: // Exists (the Hamming-enlargement primitive)
				v := arg() % nv
				x := pop(arg())
				e = entry{n: m.Exists(v, x.n), tt: newTable(nv)}
				for a := 0; a < na; a++ {
					e.tt.set(a, x.tt.get(a|1<<v) || x.tt.get(a&^(1<<v)))
				}
			case 8: // Restrict
				v := arg() % nv
				val := arg()%2 == 1
				x := pop(arg())
				e = entry{n: m.Restrict(x.n, v, val), tt: newTable(nv)}
				for a := 0; a < na; a++ {
					fixed := a &^ (1 << v)
					if val {
						fixed |= 1 << v
					}
					e.tt.set(a, x.tt.get(fixed))
				}
			case 9: // push cube of the next ceil(nv/8) bytes
				bitsArr := make([]bool, nv)
				a := 0
				for v := 0; v < nv; v++ {
					if v%8 == 0 {
						a = arg()
					}
					bitsArr[v] = a&(1<<(v%8)) != 0
				}
				e = entry{n: m.Cube(bitsArr), tt: newTable(nv)}
				idx := 0
				for v := 0; v < nv; v++ {
					if bitsArr[v] {
						idx |= 1 << v
					}
				}
				e.tt.set(idx, true)
			}
			stack = append(stack, e)
			steps++

			// Invariant 1: Eval and EvalBits agree with the truth table on
			// every assignment.
			assign := make([]bool, nv)
			for a := 0; a < na; a++ {
				for v := 0; v < nv; v++ {
					assign[v] = a&(1<<v) != 0
				}
				want := e.tt.get(a)
				if got := m.EvalBits(e.n, assign); got != want {
					t.Fatalf("step %d: EvalBits(%d)=%v, truth table says %v", steps, a, got, want)
				}
				if got := m.Eval(e.n, func(v int) bool { return assign[v] }); got != want {
					t.Fatalf("step %d: Eval(%d)=%v, truth table says %v", steps, a, got, want)
				}
			}
			// Invariant 1b: the compiled plan agrees with the truth table
			// per-query and batched — through the dispatching EvalBatch,
			// the explicit scalar walk and the bit-sliced walk, so all
			// three serving engines are pinned to the same oracle every
			// step.
			cp := m.Compile(e.n)[0]
			cp.EvalBatch(assigns, batchOut)
			cp.EvalBatchScalar(assigns, scalarOut)
			cp.EvalBatchSliced(assigns, slicedOut)
			for a := 0; a < na; a++ {
				want := e.tt.get(a)
				if got := cp.Eval(assigns[a]); got != want {
					t.Fatalf("step %d: compiled Eval(%d)=%v, truth table says %v", steps, a, got, want)
				}
				if batchOut[a] != want {
					t.Fatalf("step %d: compiled EvalBatch(%d)=%v, truth table says %v", steps, a, batchOut[a], want)
				}
				if scalarOut[a] != want {
					t.Fatalf("step %d: scalar EvalBatch(%d)=%v, truth table says %v", steps, a, scalarOut[a], want)
				}
				if slicedOut[a] != want {
					t.Fatalf("step %d: bit-sliced EvalBatch(%d)=%v, truth table says %v", steps, a, slicedOut[a], want)
				}
			}
			// Ragged tail block: a 65-query prefix exercises the second,
			// one-lane block of the bit-sliced walk when enough
			// assignments exist.
			if na > 65 {
				cp.EvalBatchSliced(assigns[:65], slicedOut[:65])
				for a := 0; a < 65; a++ {
					if want := e.tt.get(a); slicedOut[a] != want {
						t.Fatalf("step %d: ragged bit-sliced EvalBatch(%d)=%v, truth table says %v", steps, a, slicedOut[a], want)
					}
				}
			}
			if got, want := cp.Len(), m.NodeCount(e.n); got != want {
				t.Fatalf("step %d: compiled Len %d, NodeCount %d", steps, got, want)
			}

			// Invariant 2: SatCount matches the popcount.
			if got, want := m.SatCount(e.n), float64(e.tt.popcount()); got != want {
				t.Fatalf("step %d: SatCount=%v, popcount=%v", steps, got, want)
			}
		}

		// Invariant 3 (canonicity): across the whole stack, handle
		// equality must coincide with truth-table equality.
		for i := range stack {
			for j := i + 1; j < len(stack); j++ {
				same := stack[i].n == stack[j].n
				eq := tablesEqual(stack[i].tt, stack[j].tt)
				if same != eq {
					t.Fatalf("canonicity violated: entries %d,%d handles equal=%v but functions equal=%v",
						i, j, same, eq)
				}
			}
		}
	})
}

// maskTail clears the bits beyond the 2^nv live assignments so bitwise
// complements compare clean.
func maskTail(t table, na int) {
	if rem := na % 64; rem != 0 {
		t[len(t)-1] &= (1 << rem) - 1
	}
}

func tablesEqual(a, b table) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
