package serve

import (
	"strconv"

	"napmon/internal/obs"
)

// RegisterMetrics exposes the server's counters, per-stage latency
// histograms and the monitor's paper-level signals (per-class verdict
// tallies, epoch/swap/recompile counters, BDD manager statistics) on
// reg under the napmon_ namespace. Everything that already exists as an
// atomic registers as a scrape-time callback — the serving hot path
// pays nothing for being observable beyond the stage clock reads it
// already takes; the stage histograms are shared by reference.
//
// Call once per registry, after New; the metric-name reference table
// lives in the repo root doc.go.
func (s *Server) RegisterMetrics(reg *obs.Registry) {
	reg.CounterFunc("napmon_requests_submitted_total",
		"requests accepted into the queue", func() uint64 { return s.submitted.Load() })
	reg.CounterFunc("napmon_requests_served_total",
		"requests answered with a verdict", func() uint64 { return s.counts.Load().served })
	reg.CounterFunc("napmon_requests_rejected_total",
		"submits refused because the server was closed", func() uint64 { return s.rejected.Load() })
	reg.CounterFunc("napmon_requests_shed_total",
		"non-blocking submits refused on a full queue", func() uint64 { return s.shed.Load() })
	reg.CounterFunc("napmon_serve_expired_total",
		"queued requests shed because their context expired before inference", func() uint64 { return s.expired.Load() })
	reg.CounterFunc("napmon_batches_total",
		"micro-batches dispatched to serving lanes", func() uint64 { return s.counts.Load().batches })
	reg.GaugeFunc("napmon_queue_depth",
		"requests waiting in the bounded queue", func() float64 { return float64(len(s.queue)) })
	reg.GaugeFunc("napmon_lanes",
		"serving lanes (network replicas)", func() float64 { return float64(len(s.lanes)) })

	for i, name := range stageNames {
		reg.HistogramRef("napmon_stage_duration_seconds",
			"serving pipeline stage latency (queue/coalesce/total per request; dispatch/inference/zone_query per batch)",
			&s.stages.hist[i], 1e-9, obs.L("stage", name))
	}

	m := s.mon
	for _, class := range m.WatchClasses() {
		c := class
		label := obs.L("class", strconv.Itoa(c))
		reg.CounterFunc("napmon_watched_total",
			"verdicts issued for a monitored class",
			func() uint64 { return m.WatchCountsFor(c).Watched }, label)
		reg.CounterFunc("napmon_oop_total",
			"out-of-pattern verdicts — the paper's safety signal",
			func() uint64 { return m.WatchCountsFor(c).OutOfPattern }, label)
	}
	reg.CounterFunc("napmon_unmonitored_total",
		"verdicts the monitor abstained on (no zone for the predicted class)",
		func() uint64 { _, _, u := m.WatchTotals(); return u })
	reg.CounterFloatFunc("napmon_inference_seconds_total",
		"cumulative batched forward-pass + pattern-extraction time",
		func() float64 { return float64(m.InferenceNanos()) * 1e-9 })
	reg.CounterFloatFunc("napmon_zone_query_seconds_total",
		"cumulative comfort-zone membership query time",
		func() float64 { return float64(m.ZoneQueryNanos()) * 1e-9 })

	reg.GaugeFunc("napmon_gamma_level",
		"Hamming enlargement level of the serving epoch", func() float64 { return float64(m.Gamma()) })
	reg.GaugeFunc("napmon_epoch",
		"id of the monitor epoch currently serving", func() float64 { return float64(m.Epoch()) })
	upd := m.Updater()
	reg.CounterFunc("napmon_epoch_swaps_total",
		"epochs published by online updates", func() uint64 { return upd.Published() })
	reg.CounterFloatFunc("napmon_epoch_swap_seconds_total",
		"cumulative epoch publication wall time (shadow-build through pointer swap)",
		func() float64 { t, _ := upd.SwapNanos(); return float64(t) * 1e-9 })
	reg.GaugeFunc("napmon_epoch_swap_last_seconds",
		"wall time of the most recent epoch publication",
		func() float64 { _, l := upd.SwapNanos(); return float64(l) * 1e-9 })
	reg.CounterFunc("napmon_zone_plans_recompiled_total",
		"zone query plans rebuilt by online updates", func() uint64 { return upd.Recompiled() })
	reg.CounterFunc("napmon_patterns_absorbed_total",
		"activation patterns absorbed by online updates", func() uint64 { return upd.Absorbed() })
	reg.CounterFunc("napmon_epochs_released_total",
		"retired epochs whose grace period has ended", func() uint64 { return upd.ReleasedEpochs() })
	reg.CounterFunc("napmon_updates_total",
		"epoch swaps published through this server", func() uint64 { return s.updates.Load() })

	reg.GaugeFunc("napmon_bdd_nodes",
		"BDD decision nodes across the serving epoch's zone managers",
		func() float64 { return float64(m.ManagerStatsTotal().Nodes) })
	reg.CounterFunc("napmon_bdd_unique_hits_total",
		"unique-table hits (canonical node reuse)",
		func() uint64 { return m.ManagerStatsTotal().UniqueHits })
	reg.CounterFunc("napmon_bdd_unique_misses_total",
		"unique-table misses (node creations)",
		func() uint64 { return m.ManagerStatsTotal().UniqueMisses })
	reg.CounterFunc("napmon_bdd_cache_hits_total",
		"computed-table hits across zone managers",
		func() uint64 { return m.ManagerStatsTotal().CacheHits })
	reg.CounterFunc("napmon_bdd_cache_misses_total",
		"computed-table misses across zone managers",
		func() uint64 { return m.ManagerStatsTotal().CacheMisses })
	reg.CounterFunc("napmon_bdd_compiles_total",
		"query plans compiled across zone managers",
		func() uint64 { return m.ManagerStatsTotal().Compiles })
}
