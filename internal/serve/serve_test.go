package serve

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"napmon/internal/core"
	"napmon/internal/nn"
	"napmon/internal/rng"
	"napmon/internal/tensor"
)

// toyServerParts trains the small 3-class dense network used across the
// core tests and builds its γ=1 monitor — cheap enough for the race
// detector, real enough that verdicts differ between inputs.
func toyServerParts(t testing.TB, seed uint64) (*nn.Network, *core.Monitor, []*tensor.Tensor) {
	t.Helper()
	r := rng.New(seed)
	centers := [][4]float64{
		{2, 0, -2, 0},
		{-2, 2, 0, -1},
		{0, -2, 2, 1},
	}
	gen := func(n int) []nn.Sample {
		out := make([]nn.Sample, 0, n)
		for i := 0; i < n; i++ {
			label := i % len(centers)
			x := tensor.New(4)
			for j := range x.Data() {
				x.Data()[j] = r.NormScaled(centers[label][j], 0.6)
			}
			out = append(out, nn.Sample{Input: x, Label: label})
		}
		return out
	}
	train := gen(300)
	net := nn.New(
		nn.NewDense(4, 16, r), nn.NewReLU(),
		nn.NewDense(16, 10, r), nn.NewReLU(), // monitored layer: index 3
		nn.NewDense(10, 3, r),
	)
	nn.Train(net, train, nn.TrainConfig{Epochs: 15, BatchSize: 16, LR: 0.05, Seed: seed})
	mon, err := core.Build(net, train, core.Config{Layer: 3, Gamma: 1})
	if err != nil {
		t.Fatal(err)
	}
	val := gen(150)
	inputs := make([]*tensor.Tensor, len(val))
	for i, s := range val {
		inputs[i] = s.Input
	}
	return net, mon, inputs
}

func sameVerdict(a, b core.Verdict) bool {
	return a.Class == b.Class && a.Monitored == b.Monitored && a.OutOfPattern == b.OutOfPattern
}

func shutdownOK(t *testing.T, s *Server) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
}

// TestServeMatchesWatch pins correctness: every future resolves to
// exactly the serial Watch verdict for its input, in submission order.
func TestServeMatchesWatch(t *testing.T) {
	net, mon, inputs := toyServerParts(t, 1)
	want := make([]core.Verdict, len(inputs))
	for i, x := range inputs {
		want[i] = mon.Watch(net, x)
	}
	s, err := New(net, mon, Config{MaxBatch: 16, MaxDelay: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	futs, err := s.SubmitAll(inputs)
	if err != nil {
		t.Fatal(err)
	}
	for i, f := range futs {
		got, err := f.Wait()
		if err != nil {
			t.Fatalf("future %d: %v", i, err)
		}
		if !sameVerdict(got, want[i]) {
			t.Fatalf("future %d: got %+v, want %+v", i, got, want[i])
		}
	}
	shutdownOK(t, s)
	st := s.Stats()
	if st.Served != uint64(len(inputs)) || st.Submitted != uint64(len(inputs)) {
		t.Fatalf("stats: %+v, want submitted=served=%d", st, len(inputs))
	}
	if st.Batches == 0 || st.MeanBatchSize <= 0 {
		t.Fatalf("stats did not record batches: %+v", st)
	}
	if st.P50 <= 0 || st.P99 < st.P50 {
		t.Fatalf("latency percentiles inconsistent: %+v", st)
	}
}

// TestConcurrentSubmitters drives >100 goroutines of concurrent Submit
// traffic through one server (the CI race detector turns any serving-path
// write into a failure), then shuts down cleanly and checks accounting.
func TestConcurrentSubmitters(t *testing.T) {
	net, mon, inputs := toyServerParts(t, 2)
	want := make([]core.Verdict, len(inputs))
	for i, x := range inputs {
		want[i] = mon.Watch(net, x)
	}
	s, err := New(net, mon, Config{MaxBatch: 32, MaxDelay: time.Millisecond, QueueDepth: 64, Lanes: 2})
	if err != nil {
		t.Fatal(err)
	}
	const goroutines = 128
	const perG = 5
	var wg sync.WaitGroup
	errCh := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			for k := 0; k < perG; k++ {
				i := (g*perG + k) % len(inputs)
				f, err := s.Submit(inputs[i])
				if err != nil {
					errCh <- err
					return
				}
				got, err := f.Wait()
				if err != nil {
					errCh <- err
					return
				}
				if !sameVerdict(got, want[i]) {
					errCh <- errors.New("verdict mismatch under concurrency")
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}
	shutdownOK(t, s)
	st := s.Stats()
	if want := uint64(goroutines * perG); st.Submitted != want || st.Served != want {
		t.Fatalf("stats after concurrent run: %+v, want submitted=served=%d", st, want)
	}
}

// TestSubmitAfterShutdown pins the typed-error contract.
func TestSubmitAfterShutdown(t *testing.T) {
	net, mon, inputs := toyServerParts(t, 3)
	s, err := New(net, mon, Config{})
	if err != nil {
		t.Fatal(err)
	}
	shutdownOK(t, s)
	if _, err := s.Submit(inputs[0]); !errors.Is(err, ErrServerClosed) {
		t.Fatalf("Submit after Shutdown = %v, want ErrServerClosed", err)
	}
	futs, err := s.SubmitAll(inputs[:3])
	if !errors.Is(err, ErrServerClosed) {
		t.Fatalf("SubmitAll after Shutdown = %v, want ErrServerClosed", err)
	}
	for i, f := range futs {
		if _, ferr := f.Wait(); !errors.Is(ferr, ErrServerClosed) {
			t.Fatalf("future %d after closed SubmitAll = %v, want ErrServerClosed", i, ferr)
		}
	}
	if st := s.Stats(); st.Rejected == 0 {
		t.Fatalf("rejected submits not counted: %+v", st)
	}
	// Shutdown is idempotent.
	shutdownOK(t, s)
}

// TestDeadlineFlush pins the coalescer's MaxDelay path: with a huge
// MaxBatch a lone request is only served because the deadline fires.
func TestDeadlineFlush(t *testing.T) {
	net, mon, inputs := toyServerParts(t, 4)
	s, err := New(net, mon, Config{MaxBatch: 1 << 20, MaxDelay: 5 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer shutdownOK(t, s)
	for rep := 0; rep < 3; rep++ {
		f, err := s.Submit(inputs[rep])
		if err != nil {
			t.Fatal(err)
		}
		select {
		case <-f.Done():
		case <-time.After(10 * time.Second):
			t.Fatal("deadline flush never fired")
		}
		if _, err := f.Wait(); err != nil {
			t.Fatal(err)
		}
	}
	st := s.Stats()
	if st.Batches != 3 || st.MeanBatchSize != 1 {
		t.Fatalf("expected 3 deadline-flushed singleton batches, got %+v", st)
	}
}

// TestMaxBatchFlush pins the size-triggered path: with an effectively
// infinite deadline, full batches must still flush immediately.
func TestMaxBatchFlush(t *testing.T) {
	net, mon, inputs := toyServerParts(t, 5)
	s, err := New(net, mon, Config{MaxBatch: 4, MaxDelay: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	futs, err := s.SubmitAll(inputs[:8]) // two exact MaxBatch multiples
	if err != nil {
		t.Fatal(err)
	}
	for i, f := range futs {
		select {
		case <-f.Done():
		case <-time.After(10 * time.Second):
			t.Fatalf("future %d stuck despite full batches (deadline is 1h)", i)
		}
	}
	shutdownOK(t, s)
	st := s.Stats()
	if st.Batches != 2 || st.MeanBatchSize != 4 {
		t.Fatalf("expected 2 batches of 4, got %+v", st)
	}
}

// TestShutdownDrains checks the graceful path: everything accepted before
// Shutdown is served with a real verdict, even with an hour-long deadline
// still pending in the coalescer.
func TestShutdownDrains(t *testing.T) {
	net, mon, inputs := toyServerParts(t, 6)
	s, err := New(net, mon, Config{MaxBatch: 1 << 20, MaxDelay: time.Hour, QueueDepth: len(inputs)})
	if err != nil {
		t.Fatal(err)
	}
	futs, err := s.SubmitAll(inputs)
	if err != nil {
		t.Fatal(err)
	}
	shutdownOK(t, s)
	for i, f := range futs {
		if _, err := f.Wait(); err != nil {
			t.Fatalf("drained future %d failed: %v", i, err)
		}
	}
	if st := s.Stats(); st.Served != uint64(len(inputs)) {
		t.Fatalf("drain lost requests: %+v", st)
	}
}

// TestShutdownAbort checks the expired-context path: Shutdown returns the
// context error and every outstanding future still resolves (with a
// verdict if its batch was already in flight, ErrServerClosed otherwise).
func TestShutdownAbort(t *testing.T) {
	net, mon, inputs := toyServerParts(t, 7)
	s, err := New(net, mon, Config{MaxBatch: 1 << 20, MaxDelay: time.Hour, QueueDepth: len(inputs)})
	if err != nil {
		t.Fatal(err)
	}
	futs, err := s.SubmitAll(inputs)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := s.Shutdown(ctx); !errors.Is(err, context.Canceled) {
		t.Fatalf("aborted Shutdown = %v, want context.Canceled", err)
	}
	for i, f := range futs {
		select {
		case <-f.Done():
		case <-time.After(10 * time.Second):
			t.Fatalf("future %d leaked by abort", i)
		}
		if _, err := f.Wait(); err != nil && !errors.Is(err, ErrServerClosed) {
			t.Fatalf("future %d: unexpected error %v", i, err)
		}
	}
}

// TestConcurrentShutdownAbortWins checks that a patient Shutdown caller
// is not told the drain was clean when a concurrent caller's expired
// context aborted the server and failed the accepted requests.
func TestConcurrentShutdownAbortWins(t *testing.T) {
	net, mon, inputs := toyServerParts(t, 11)
	// Requests park in the coalescer: nothing flushes before shutdown.
	s, err := New(net, mon, Config{MaxBatch: 1 << 20, MaxDelay: time.Hour, QueueDepth: len(inputs)})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.SubmitAll(inputs); err != nil {
		t.Fatal(err)
	}
	patient := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		patient <- s.Shutdown(ctx)
	}()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	aerr := s.Shutdown(ctx)
	perr := <-patient
	if errors.Is(aerr, context.Canceled) {
		// The canceled caller aborted before the drain finished, so the
		// patient caller must not be told the drain was clean.
		if !errors.Is(perr, ErrServerClosed) {
			t.Fatalf("patient Shutdown after concurrent abort = %v, want ErrServerClosed", perr)
		}
	} else if aerr != nil || perr != nil {
		// The drain won the race against the canceled context: then both
		// callers must report it clean.
		t.Fatalf("clean concurrent drain reported aerr=%v perr=%v", aerr, perr)
	}
}

// TestBackpressureQueueFull checks that a full queue blocks Submit rather
// than dropping, and that the blocked submit completes once the pipeline
// drains.
func TestBackpressureQueueFull(t *testing.T) {
	net, mon, inputs := toyServerParts(t, 8)
	// QueueDepth 1 with a 10ms deadline: submits contend for one slot.
	s, err := New(net, mon, Config{MaxBatch: 8, MaxDelay: 10 * time.Millisecond, QueueDepth: 1})
	if err != nil {
		t.Fatal(err)
	}
	futs, err := s.SubmitAll(inputs[:32])
	if err != nil {
		t.Fatal(err)
	}
	for i, f := range futs {
		if _, err := f.Wait(); err != nil {
			t.Fatalf("future %d under backpressure: %v", i, err)
		}
	}
	shutdownOK(t, s)
}

// TestTrySubmitSheds pins the non-blocking contract on a bare Server
// whose queue is never drained (no goroutines started): the first
// TrySubmit takes the only queue slot, the second returns ErrQueueFull
// immediately and bumps the shed counter instead of blocking.
func TestTrySubmitSheds(t *testing.T) {
	s := &Server{
		queue:   make(chan request, 1),
		aborted: make(chan struct{}),
	}
	if _, err := s.TrySubmit(tensor.New(4)); err != nil {
		t.Fatalf("TrySubmit into empty queue: %v", err)
	}
	if _, err := s.TrySubmit(tensor.New(4)); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("TrySubmit into full queue: %v, want ErrQueueFull", err)
	}
	if got := s.shed.Load(); got != 1 {
		t.Fatalf("shed counter %d, want 1", got)
	}
	if got := s.submitted.Load(); got != 1 {
		t.Fatalf("submitted counter %d, want 1", got)
	}
}

// TestTrySubmitLive drives a real server with TrySubmit only: accepted
// requests all resolve, shed requests are counted, and accepted+shed
// covers every attempt.
func TestTrySubmitLive(t *testing.T) {
	net, mon, inputs := toyServerParts(t, 11)
	s, err := New(net, mon, Config{MaxBatch: 4, MaxDelay: time.Millisecond, QueueDepth: 2})
	if err != nil {
		t.Fatal(err)
	}
	var futs []*Future
	shed := 0
	for i := 0; i < 200; i++ {
		f, err := s.TrySubmit(inputs[i%len(inputs)])
		switch {
		case err == nil:
			futs = append(futs, f)
		case errors.Is(err, ErrQueueFull):
			shed++
		default:
			t.Fatalf("TrySubmit %d: %v", i, err)
		}
	}
	for i, f := range futs {
		if _, err := f.Wait(); err != nil {
			t.Fatalf("accepted future %d: %v", i, err)
		}
	}
	st := s.Stats()
	if int(st.Shed) != shed {
		t.Fatalf("Stats.Shed %d, want %d", st.Shed, shed)
	}
	if int(st.Submitted)+shed != 200 {
		t.Fatalf("submitted %d + shed %d != 200 attempts", st.Submitted, shed)
	}
	shutdownOK(t, s)
}

func TestConfigValidate(t *testing.T) {
	net, mon, _ := toyServerParts(t, 9)
	for _, cfg := range []Config{
		{MaxBatch: -1}, {MaxDelay: -time.Second}, {QueueDepth: -1},
		{Lanes: -1}, {LatencyWindow: -2},
	} {
		if _, err := New(net, mon, cfg); err == nil {
			t.Fatalf("config %+v accepted", cfg)
		}
	}
	if _, err := New(nil, mon, Config{}); err == nil {
		t.Fatal("nil network accepted")
	}
	if _, err := New(net, nil, Config{}); err == nil {
		t.Fatal("nil monitor accepted")
	}
	s, err := New(net, mon, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Submit(nil); err == nil {
		t.Fatal("nil input accepted")
	}
	shutdownOK(t, s)
}

// TestInputShapeGate checks the untrusted-input guard: with InputShape
// set, a mismatched tensor is rejected at Submit instead of panicking
// inside a lane goroutine (which would kill the whole server).
func TestInputShapeGate(t *testing.T) {
	net, mon, inputs := toyServerParts(t, 10)
	s, err := New(net, mon, Config{MaxBatch: 1, InputShape: []int{4}})
	if err != nil {
		t.Fatal(err)
	}
	defer shutdownOK(t, s)
	if _, err := s.Submit(tensor.New(5)); err == nil {
		t.Fatal("wrong-length input accepted")
	}
	if _, err := s.Submit(tensor.New(2, 2)); err == nil {
		t.Fatal("wrong-rank input accepted despite matching element count")
	}
	f, err := s.Submit(inputs[0])
	if err != nil {
		t.Fatalf("well-shaped input rejected: %v", err)
	}
	if _, err := f.Wait(); err != nil {
		t.Fatal(err)
	}
}

// TestStagePercentiles pins the latencyRing-replacement shim: Stats.P50
// and P99 keep their nearest-rank-on-rank semantics, now answered by the
// total-stage histogram within its 1/32 relative error bound.
func TestStagePercentiles(t *testing.T) {
	var st stageStats
	if lat := st.latency(stageTotal); lat.P50 != 0 || lat.P99 != 0 || lat.Count != 0 {
		t.Fatalf("empty stage latency = %+v", lat)
	}
	// Small exact values (below 32ns they land in exact linear buckets).
	for _, d := range []time.Duration{40, 10, 30, 20} {
		st.record(stageTotal, d)
	}
	lat := st.latency(stageTotal)
	// Nearest rank over {10,20,30,40}: p50 → index 2 (30), p99 → index 3.
	if lat.P50 < 30 || lat.P50 > 30+30/32 {
		t.Fatalf("P50 = %v, want ~30", lat.P50)
	}
	if lat.P99 < 40 || lat.P99 > 40+40/32 {
		t.Fatalf("P99 = %v, want ~40", lat.P99)
	}
	if lat.Count != 4 {
		t.Fatalf("Count = %d, want 4", lat.Count)
	}
	// Realistic latency magnitudes stay within the error bound too.
	var st2 stageStats
	for i := 1; i <= 1000; i++ {
		st2.record(stageTotal, time.Duration(i)*time.Microsecond)
	}
	lat = st2.latency(stageTotal)
	exact50, exact99 := 501*time.Microsecond, 991*time.Microsecond
	if lat.P50 < exact50 || lat.P50 > exact50+exact50/32 {
		t.Fatalf("P50 = %v, want [%v, +1/32]", lat.P50, exact50)
	}
	if lat.P99 < exact99 || lat.P99 > exact99+exact99/32 {
		t.Fatalf("P99 = %v, want [%v, +1/32]", lat.P99, exact99)
	}
}

// TestServeWhileUpdating is the serve-while-retraining regression test:
// submitters hammer the server while a background updater continuously
// publishes new zone epochs through Server.Update. Run under -race in CI.
// Every future must resolve without error across every epoch swap (zero
// dropped requests), the epoch counters must advance, and the OnEpochSwap
// hook must observe every published epoch in order.
func TestServeWhileUpdating(t *testing.T) {
	net, mon, inputs := toyServerParts(t, 12)
	var hookMu sync.Mutex
	var hooked []uint64
	srv, err := New(net, mon, Config{
		MaxBatch: 8,
		MaxDelay: 200 * time.Microsecond,
		OnEpochSwap: func(epoch uint64) {
			hookMu.Lock()
			hooked = append(hooked, epoch)
			hookMu.Unlock()
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	width := len(mon.Neurons())
	classes := mon.Classes()

	const epochs = 25
	const submitters = 4
	const perSubmitter = 200
	var wg sync.WaitGroup
	errs := make(chan error, submitters)
	wg.Add(1)
	go func() { // background updater
		defer wg.Done()
		r := rng.New(77)
		for i := 0; i < epochs; i++ {
			delta := make(map[int][]core.Pattern)
			c := classes[int(r.Uint64()%uint64(len(classes)))]
			p := make(core.Pattern, width)
			for j := range p {
				p[j] = r.Bool(0.5)
			}
			delta[c] = []core.Pattern{p}
			if _, err := srv.Update(delta); err != nil {
				errs <- err
				return
			}
		}
	}()
	for s := 0; s < submitters; s++ {
		wg.Add(1)
		go func(off int) {
			defer wg.Done()
			for i := 0; i < perSubmitter; i++ {
				fut, err := srv.Submit(inputs[(off+i)%len(inputs)])
				if err != nil {
					errs <- err
					return
				}
				v, err := fut.Wait()
				if err != nil {
					errs <- err
					return
				}
				if v.Epoch < 1 {
					errs <- errors.New("verdict missing its epoch id")
					return
				}
			}
		}(s * 37)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatalf("request dropped or errored across epoch swaps: %v", err)
	}
	st := srv.Stats()
	if st.Served != submitters*perSubmitter {
		t.Fatalf("served %d, want %d", st.Served, submitters*perSubmitter)
	}
	if st.Rejected != 0 {
		t.Fatalf("rejected %d requests", st.Rejected)
	}
	if st.Updates != epochs || st.Epoch != 1+epochs {
		t.Fatalf("stats epoch view = (epoch %d, updates %d), want (%d, %d)",
			st.Epoch, st.Updates, 1+epochs, epochs)
	}
	// Every update delta above touches exactly one class, so exactly one
	// zone query plan is recompiled per swap — the untouched classes keep
	// serving from the shared plans of the predecessor epoch.
	if st.Recompiled != epochs {
		t.Fatalf("recompiled %d zone plans across %d single-class swaps", st.Recompiled, epochs)
	}
	hookMu.Lock()
	defer hookMu.Unlock()
	if len(hooked) != epochs {
		t.Fatalf("hook saw %d swaps, want %d", len(hooked), epochs)
	}
	for i, e := range hooked {
		if e != uint64(i+2) { // first published update is epoch 2
			t.Fatalf("hook order broken at %d: got epoch %d", i, e)
		}
	}
	shutdownOK(t, srv)
}

// TestServeUpdateChangesVerdicts pins the end-to-end effect: a pattern
// that the server flags out-of-pattern stops being flagged after it is
// fed back through Server.Update under its decided class — the /learn
// loop of cmd/napmon-serve.
func TestServeUpdateChangesVerdicts(t *testing.T) {
	net, mon, inputs := toyServerParts(t, 13)
	srv, err := New(net, mon, Config{MaxBatch: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer shutdownOK(t, srv)
	// Find a flagged input.
	var flagged *tensor.Tensor
	var verdict core.Verdict
	for _, x := range inputs {
		fut, err := srv.Submit(x)
		if err != nil {
			t.Fatal(err)
		}
		v, err := fut.Wait()
		if err != nil {
			t.Fatal(err)
		}
		if v.Monitored && v.OutOfPattern {
			flagged, verdict = x, v
			break
		}
	}
	if flagged == nil {
		t.Skip("no out-of-pattern input at this seed")
	}
	if _, err := srv.Update(map[int][]core.Pattern{verdict.Class: {verdict.Pattern}}); err != nil {
		t.Fatal(err)
	}
	fut, err := srv.Submit(flagged)
	if err != nil {
		t.Fatal(err)
	}
	v, err := fut.Wait()
	if err != nil {
		t.Fatal(err)
	}
	if v.OutOfPattern {
		t.Fatal("absorbed pattern still flagged after the epoch swap")
	}
	if v.Epoch != verdict.Epoch+1 {
		t.Fatalf("post-update verdict epoch %d, want %d", v.Epoch, verdict.Epoch+1)
	}
}
