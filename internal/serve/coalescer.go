package serve

import (
	"time"

	"napmon/internal/core"
	"napmon/internal/tensor"
)

// coalesce is the single goroutine between the request queue and the
// lanes. It accumulates requests into a batch and flushes when the batch
// reaches MaxBatch, when MaxDelay has passed since the batch's first
// request, or when the queue closes (drain on Shutdown). On abort it
// fails everything still queued instead of serving it. Each request is
// stamped on pickup (req.deq) and each batch on flush, feeding the
// queue/coalesce/dispatch stage histograms.
func (s *Server) coalesce() {
	defer s.wg.Done()
	defer close(s.batches)
	var (
		pending  []request
		timer    *time.Timer
		deadline <-chan time.Time
	)
	disarm := func() {
		if timer != nil {
			timer.Stop()
			timer, deadline = nil, nil
		}
	}
	flush := func() {
		disarm()
		if len(pending) == 0 {
			return
		}
		b := batch{reqs: pending, flushed: time.Now()}
		pending = nil
		select {
		case s.batches <- b:
		case <-s.aborted:
			failAll(b.reqs)
		}
	}
	for {
		if pending == nil {
			// Empty batch: nothing to time out, block for the next request.
			select {
			case req, ok := <-s.queue:
				if !ok {
					return
				}
				req.deq = time.Now()
				if s.shedExpired(req) {
					continue
				}
				pending = append(pending, req)
				if len(pending) >= s.cfg.MaxBatch {
					flush()
					continue
				}
				timer = time.NewTimer(s.cfg.MaxDelay)
				deadline = timer.C
			case <-s.aborted:
				s.drainFail()
				return
			}
			continue
		}
		select {
		case req, ok := <-s.queue:
			if !ok {
				flush()
				return
			}
			req.deq = time.Now()
			if s.shedExpired(req) {
				continue
			}
			pending = append(pending, req)
			if len(pending) >= s.cfg.MaxBatch {
				flush()
			}
		case <-deadline:
			timer, deadline = nil, nil
			flush()
		case <-s.aborted:
			disarm()
			failAll(pending)
			s.drainFail()
			return
		}
	}
}

// drainFail consumes the queue until it closes, failing every request.
// Only called after abort: the queue is guaranteed to close because
// Shutdown already rejects new Submits and abort unblocks pending ones.
func (s *Server) drainFail() {
	for req := range s.queue {
		req.fut.complete(core.Verdict{}, ErrServerClosed)
	}
}

// failAll resolves every future in the batch to ErrServerClosed.
func failAll(reqs []request) {
	for _, req := range reqs {
		req.fut.complete(core.Verdict{}, ErrServerClosed)
	}
}

// shedExpired sheds one request whose context is already done: its
// Future resolves to ErrExpired, Stats.Expired counts it, and it never
// reaches a batch. Expired requests are excluded from the latency
// histograms — they measure served traffic, and a pile of
// deadline-exceeded sheds should read as goodput loss (Expired), not as
// a latency regression. Reports whether the request was shed.
func (s *Server) shedExpired(req request) bool {
	if req.ctx == nil {
		return false
	}
	select {
	case <-req.ctx.Done():
		s.expired.Add(1)
		req.fut.complete(core.Verdict{}, ErrExpired)
		return true
	default:
		return false
	}
}

// shedExpiredBatch filters a batch in place at lane pickup, shedding
// (as shedExpired) every request whose deadline fired between coalescing
// and dispatch, and returns the still-live remainder.
func (s *Server) shedExpiredBatch(reqs []request) []request {
	live := reqs[:0]
	for _, req := range reqs {
		if s.shedExpired(req) {
			continue
		}
		live = append(live, req)
	}
	return live
}

// serveLane is one serving shard's loop: take a micro-batch, feed it
// whole through the batched GEMM inference path (Monitor.
// WatchBatchPooledTimed over Network.ForwardBatch) on the lane's private
// replica and scratch pool, resolve the futures, record metrics. The
// coalescer's MaxBatch therefore translates directly into GEMM width —
// no per-input goroutine fan-out; on multi-core hosts the GEMM kernels
// parallelize internally. The lane's pool stays warm across batches, so
// a steady lane allocates almost nothing per batch beyond the published
// counter pair. After an abort, remaining batches are failed without
// inference so Shutdown returns promptly.
//
// Stage accounting per batch: dispatch (flush → here), inference and
// zone_query (split reported by the monitor) are batch-level
// observations; queue (enq → deq), coalesce (deq → flush) and total
// (enq → verdict) are recorded per request.
func (s *Server) serveLane(ln *lane) {
	defer s.wg.Done()
	for b := range s.batches {
		select {
		case <-s.aborted:
			failAll(b.reqs)
			continue
		default:
		}
		// Last chance to shed: deadlines that fired while the batch sat in
		// the dispatch channel. A fully expired batch skips inference AND
		// the batches counter, so MeanBatchSize keeps describing batches
		// that actually ran.
		b.reqs = s.shedExpiredBatch(b.reqs)
		if len(b.reqs) == 0 {
			continue
		}
		start := time.Now()
		s.stages.record(stageDispatch, start.Sub(b.flushed))
		inputs := make([]*tensor.Tensor, len(b.reqs))
		for i, req := range b.reqs {
			inputs[i] = req.input
		}
		var bt core.BatchTiming
		verdicts := s.mon.WatchBatchPooledTimed(ln.net, inputs, ln.scratch, &bt)
		s.stages.hist[stageInference].Record(bt.InferenceNs)
		s.stages.hist[stageZoneQuery].Record(bt.ZoneQueryNs)
		now := time.Now()
		for i, req := range b.reqs {
			s.stages.record(stageQueue, req.deq.Sub(req.enq))
			s.stages.record(stageCoalesce, b.flushed.Sub(req.deq))
			s.stages.record(stageTotal, now.Sub(req.enq))
			req.fut.complete(verdicts[i], nil)
		}
		// Publish (served, batches) as one immutable pair: a CAS loop
		// instead of two independent atomic adds, so Stats can read a
		// consistent snapshot for MeanBatchSize.
		for {
			old := s.counts.Load()
			next := &servedCounts{
				served:  old.served + uint64(len(b.reqs)),
				batches: old.batches + 1,
			}
			if s.counts.CompareAndSwap(old, next) {
				break
			}
		}
	}
}
