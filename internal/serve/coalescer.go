package serve

import (
	"time"

	"napmon/internal/core"
	"napmon/internal/tensor"
)

// coalesce is the single goroutine between the request queue and the
// lanes. It accumulates requests into a batch and flushes when the batch
// reaches MaxBatch, when MaxDelay has passed since the batch's first
// request, or when the queue closes (drain on Shutdown). On abort it
// fails everything still queued instead of serving it.
func (s *Server) coalesce() {
	defer s.wg.Done()
	defer close(s.batches)
	var (
		batch    []request
		timer    *time.Timer
		deadline <-chan time.Time
	)
	disarm := func() {
		if timer != nil {
			timer.Stop()
			timer, deadline = nil, nil
		}
	}
	flush := func() {
		disarm()
		if len(batch) == 0 {
			return
		}
		b := batch
		batch = nil
		select {
		case s.batches <- b:
		case <-s.aborted:
			failAll(b)
		}
	}
	for {
		if batch == nil {
			// Empty batch: nothing to time out, block for the next request.
			select {
			case req, ok := <-s.queue:
				if !ok {
					return
				}
				batch = append(batch, req)
				if len(batch) >= s.cfg.MaxBatch {
					flush()
					continue
				}
				timer = time.NewTimer(s.cfg.MaxDelay)
				deadline = timer.C
			case <-s.aborted:
				s.drainFail()
				return
			}
			continue
		}
		select {
		case req, ok := <-s.queue:
			if !ok {
				flush()
				return
			}
			batch = append(batch, req)
			if len(batch) >= s.cfg.MaxBatch {
				flush()
			}
		case <-deadline:
			timer, deadline = nil, nil
			flush()
		case <-s.aborted:
			disarm()
			failAll(batch)
			s.drainFail()
			return
		}
	}
}

// drainFail consumes the queue until it closes, failing every request.
// Only called after abort: the queue is guaranteed to close because
// Shutdown already rejects new Submits and abort unblocks pending ones.
func (s *Server) drainFail() {
	for req := range s.queue {
		req.fut.complete(core.Verdict{}, ErrServerClosed)
	}
}

// failAll resolves every future in the batch to ErrServerClosed.
func failAll(batch []request) {
	for _, req := range batch {
		req.fut.complete(core.Verdict{}, ErrServerClosed)
	}
}

// serveLane is one serving shard's loop: take a micro-batch, feed it
// whole through the batched GEMM inference path (Monitor.WatchBatchPooled
// over Network.ForwardBatch) on the lane's private replica and scratch
// pool, resolve the futures, record metrics. The coalescer's MaxBatch
// therefore translates directly into GEMM width — no per-input goroutine
// fan-out; on multi-core hosts the GEMM kernels parallelize internally.
// The lane's pool stays warm across batches, so a steady lane allocates
// almost nothing per batch. After an abort, remaining batches are failed
// without inference so Shutdown returns promptly.
func (s *Server) serveLane(ln *lane) {
	defer s.wg.Done()
	for batch := range s.batches {
		select {
		case <-s.aborted:
			failAll(batch)
			continue
		default:
		}
		inputs := make([]*tensor.Tensor, len(batch))
		for i, req := range batch {
			inputs[i] = req.input
		}
		verdicts := s.mon.WatchBatchPooled(ln.net, inputs, ln.scratch)
		now := time.Now()
		for i, req := range batch {
			s.lat.record(now.Sub(req.enq))
			req.fut.complete(verdicts[i], nil)
		}
		s.served.Add(uint64(len(batch)))
		s.numBatches.Add(1)
	}
}
