package serve

import "napmon/internal/core"

// Future is the pending result of one Submit. It resolves exactly once;
// all methods are safe from any number of goroutines.
type Future struct {
	done chan struct{}
	v    core.Verdict
	err  error
}

func newFuture() *Future { return &Future{done: make(chan struct{})} }

// failedFuture returns an already-resolved future carrying err.
func failedFuture(err error) *Future {
	f := newFuture()
	f.complete(core.Verdict{}, err)
	return f
}

// complete resolves the future. Must be called exactly once.
func (f *Future) complete(v core.Verdict, err error) {
	f.v = v
	f.err = err
	close(f.done)
}

// Wait blocks until the future resolves and returns its verdict, or the
// error the server failed it with (ErrServerClosed on abort).
func (f *Future) Wait() (core.Verdict, error) {
	<-f.done
	return f.v, f.err
}

// Done returns a channel closed when the future has resolved, for use in
// select loops; after it closes, Wait returns immediately.
func (f *Future) Done() <-chan struct{} { return f.done }
