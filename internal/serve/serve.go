// Package serve is the streaming serving subsystem: a long-lived Server
// that owns a frozen Monitor and accepts single-sample Submit calls from
// any number of goroutines, coalescing them into micro-batches that hit
// the fast WatchBatch path.
//
// The pipeline has three stages, each its own goroutine set:
//
//	Submit/SubmitAll → bounded request queue → coalescer → lanes
//
// The request queue is a buffered channel of configurable depth; a full
// queue exerts backpressure by blocking Submit. The coalescer drains the
// queue into batches, flushing when either MaxBatch requests have
// accumulated or MaxDelay has elapsed since the batch's first request —
// so trickle traffic is answered within one deadline and saturating
// traffic always rides full batches. Lanes are per-shard monitor
// replicas: each owns a CloneShared copy of the network plus a warm
// scratch pool and executes whole micro-batches through the batched GEMM
// inference path (Monitor.WatchBatchPooled → Network.ForwardBatch) —
// MaxBatch is literally the GEMM width — against the frozen BDD zones,
// which are safe for concurrent reads by construction (see DESIGN.md,
// "Freeze-then-serve concurrency model" and "Batched inference").
// The zone queries themselves run on the compiled query plans the
// monitor's epoch carries (Zone.ContainsBatch, grouped per predicted
// class): all lanes share one set of plans per epoch, and an online
// update recompiles only the zones it touched before the swap (see
// DESIGN.md, "Compiled query plans + sharded build").
//
// Every Submit returns a *Future that resolves exactly once — with a
// Verdict, or with ErrServerClosed if the server aborts before the
// request is served. Shutdown drains: requests accepted before Shutdown
// are still served unless the shutdown context expires first.
package serve

import (
	"context"
	"errors"
	"fmt"
	"slices"
	"sync"
	"sync/atomic"
	"time"

	"napmon/internal/core"
	"napmon/internal/nn"
	"napmon/internal/tensor"
)

// ErrServerClosed is returned by Submit and SubmitAll after Shutdown has
// begun, and resolves any Future the server aborted before serving.
var ErrServerClosed = errors.New("serve: server closed")

// ErrQueueFull is returned by TrySubmit when the request queue is at
// capacity — the non-blocking counterpart of Submit's backpressure.
var ErrQueueFull = errors.New("serve: request queue full")

// ErrExpired resolves the Future of a SubmitCtx request whose context
// was cancelled or deadline-expired while it waited in the queue or for
// a lane: the server sheds it instead of spending inference on an
// answer nobody is waiting for. It is deliberately distinct from the
// context's own error so callers can tell "the server shed my stale
// request" from errors raised on their side.
var ErrExpired = errors.New("serve: request expired before serving")

// Config sizes a Server. The zero value of any field selects its default.
type Config struct {
	// MaxBatch is the flush threshold: a micro-batch is dispatched as
	// soon as it holds this many requests (default 64). MaxBatch 1
	// disables coalescing — every request is its own batch.
	MaxBatch int
	// MaxDelay bounds how long the first request of a batch may wait for
	// company before the partial batch is flushed (default 2ms). It is
	// the latency price of coalescing under trickle traffic.
	MaxDelay time.Duration
	// QueueDepth is the request queue capacity (default 1024). A full
	// queue blocks Submit — backpressure instead of unbounded memory.
	QueueDepth int
	// Lanes is the number of serving lanes (default 1). Each lane owns a
	// CloneShared network replica and serves whole batches; more lanes
	// overlap inference of consecutive batches at the cost of
	// oversubscribing cores, since each WatchBatch already fans out over
	// GOMAXPROCS workers.
	Lanes int
	// LatencyWindow is accepted for configuration compatibility but no
	// longer bounds anything: latency percentiles now come from
	// constant-memory log-bucketed histograms over every request since
	// start (see stageStats), not a sliding sample window.
	LatencyWindow int
	// InputShape, when non-nil, makes Submit reject inputs whose tensor
	// shape differs from it. The tensor substrate panics on
	// shape-mismatched inference, which inside a lane goroutine would
	// take the whole server down — a front end accepting untrusted
	// inputs (e.g. cmd/napmon-serve) should always set this.
	InputShape []int
	// OnEpochSwap, when non-nil, is called after every successful
	// Server.Update / UpdateGamma with the id of the epoch now serving.
	// It runs on the updating goroutine (updates are serialized), so a
	// slow hook delays subsequent updates but never the serving lanes.
	OnEpochSwap func(epoch uint64)
}

func (c Config) withDefaults() Config {
	if c.MaxBatch == 0 {
		c.MaxBatch = 64
	}
	if c.MaxDelay == 0 {
		c.MaxDelay = 2 * time.Millisecond
	}
	if c.QueueDepth == 0 {
		c.QueueDepth = 1024
	}
	if c.Lanes == 0 {
		c.Lanes = 1
	}
	if c.LatencyWindow == 0 {
		c.LatencyWindow = 1024
	}
	return c
}

func (c Config) validate() error {
	switch {
	case c.MaxBatch < 0:
		return fmt.Errorf("serve: negative MaxBatch %d", c.MaxBatch)
	case c.MaxDelay < 0:
		return fmt.Errorf("serve: negative MaxDelay %v", c.MaxDelay)
	case c.QueueDepth < 0:
		return fmt.Errorf("serve: negative QueueDepth %d", c.QueueDepth)
	case c.Lanes < 0:
		return fmt.Errorf("serve: negative Lanes %d", c.Lanes)
	case c.LatencyWindow < 0:
		return fmt.Errorf("serve: negative LatencyWindow %d", c.LatencyWindow)
	}
	return nil
}

// request is one queued unit of work: the input, the future that carries
// its verdict back, the submitter's context (nil for the ctx-less Submit
// paths — never consulted again once nil), and the enqueue/dequeue
// timestamps the per-stage latency metrics are based on (enq set by
// Submit, deq by the coalescer when it picks the request up).
type request struct {
	ctx   context.Context
	input *tensor.Tensor
	fut   *Future
	enq   time.Time
	deq   time.Time
}

// batch is one coalesced micro-batch in flight to a lane, stamped with
// its flush time so the dispatch stage (flush → lane pickup) is
// measurable.
type batch struct {
	reqs    []request
	flushed time.Time
}

// lane is one serving shard: a CloneShared network replica plus a
// private scratch pool that feeds the batched GEMM inference path and
// stays warm across micro-batches. Zone membership reads go to the
// shared frozen monitor, which needs no replication.
type lane struct {
	net     *nn.Network
	scratch *tensor.Pool
}

// Server is a long-lived serving front end over one frozen monitor.
// Construct with New, feed with Submit/SubmitAll from any number of
// goroutines, stop with Shutdown.
type Server struct {
	cfg   Config
	mon   *core.Monitor
	lanes []*lane

	queue   chan request  // Submit → coalescer (bounded; backpressure)
	batches chan batch    // coalescer → lanes
	aborted chan struct{} // closed when a Shutdown context expires
	done    chan struct{} // closed when coalescer and all lanes exit

	mu       sync.Mutex
	closed   bool
	inflight sync.WaitGroup // Submits between the closed-check and enqueue

	// updMu serializes Update/UpdateGamma through this server so the
	// updates counter and the OnEpochSwap hook observe epochs in
	// publication order (the monitor's own updater lock is released
	// before control returns here, so without this a slow hook could see
	// epoch ids out of order).
	updMu sync.Mutex

	abortOnce sync.Once
	wg        sync.WaitGroup // coalescer + lanes

	submitted atomic.Uint64
	rejected  atomic.Uint64
	shed      atomic.Uint64
	expired   atomic.Uint64
	updates   atomic.Uint64
	// counts carries (served, batches) as one immutable pair so readers
	// snapshot both atomically; see servedCounts.
	counts atomic.Pointer[servedCounts]
	stages stageStats
}

// New builds a Server over the network and monitor and starts its
// coalescer and lane goroutines. The monitor is frozen (idempotently) so
// the entire serving path is read-only; the network must not be trained
// while the server lives. Stop the server with Shutdown.
func New(net *nn.Network, m *core.Monitor, cfg Config) (*Server, error) {
	if net == nil {
		return nil, errors.New("serve: nil network")
	}
	if m == nil {
		return nil, errors.New("serve: nil monitor")
	}
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	cfg = cfg.withDefaults()
	m.Freeze()
	s := &Server{
		cfg:     cfg,
		mon:     m,
		queue:   make(chan request, cfg.QueueDepth),
		batches: make(chan batch, cfg.Lanes),
		aborted: make(chan struct{}),
		done:    make(chan struct{}),
	}
	s.counts.Store(&servedCounts{})
	s.lanes = make([]*lane, cfg.Lanes)
	for i := range s.lanes {
		s.lanes[i] = &lane{net: net.CloneShared(), scratch: tensor.NewPool()}
	}
	s.wg.Add(1 + len(s.lanes))
	go s.coalesce()
	for _, ln := range s.lanes {
		go s.serveLane(ln)
	}
	go func() {
		s.wg.Wait()
		close(s.done)
	}()
	return s, nil
}

// Submit enqueues one input for monitored classification and returns a
// Future resolving to its Verdict. It is safe from any number of
// goroutines. When the request queue is full, Submit blocks — that is the
// backpressure contract. After Shutdown has begun it returns
// ErrServerClosed without enqueuing.
func (s *Server) Submit(x *tensor.Tensor) (*Future, error) {
	return s.submit(nil, x, true)
}

// SubmitCtx is Submit with deadline and cancellation propagation. While
// the caller is blocked on a full queue, ctx expiring unblocks it with
// ctx.Err() and nothing is enqueued — the queue slot is not leaked. Once
// enqueued, the request carries ctx through the pipeline: if the
// deadline fires while it is still queued (or waiting for a lane), the
// server sheds it before inference, its Future resolves to ErrExpired,
// and Stats.Expired counts it. A ctx that is already done submits
// nothing and returns ctx.Err() immediately. A nil ctx behaves exactly
// like Submit.
func (s *Server) SubmitCtx(ctx context.Context, x *tensor.Tensor) (*Future, error) {
	if ctx != nil {
		select {
		case <-ctx.Done():
			return nil, ctx.Err()
		default:
		}
	}
	return s.submit(ctx, x, true)
}

// TrySubmit is the non-blocking Submit: when the request queue is full
// it returns ErrQueueFull immediately instead of waiting for space, and
// counts the request as shed (Stats.Shed). Datagram front ends use it
// to turn queue pressure into explicit load shedding — a UDP reader
// that blocked in Submit would stall every client behind one full
// queue, where a connection-oriented front end simply stops reading its
// socket and lets transport flow control push back.
func (s *Server) TrySubmit(x *tensor.Tensor) (*Future, error) {
	return s.submit(nil, x, false)
}

func (s *Server) submit(ctx context.Context, x *tensor.Tensor, block bool) (*Future, error) {
	if x == nil {
		return nil, errors.New("serve: nil input")
	}
	if s.cfg.InputShape != nil && !slices.Equal(x.Shape(), s.cfg.InputShape) {
		return nil, fmt.Errorf("serve: input shape %v, server expects %v", x.Shape(), s.cfg.InputShape)
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		s.rejected.Add(1)
		return nil, ErrServerClosed
	}
	s.inflight.Add(1)
	s.mu.Unlock()
	defer s.inflight.Done()
	fut := newFuture()
	if !block {
		select {
		case s.queue <- request{ctx: ctx, input: x, fut: fut, enq: time.Now()}:
			s.submitted.Add(1)
			return fut, nil
		case <-s.aborted:
			s.rejected.Add(1)
			return nil, ErrServerClosed
		default:
			s.shed.Add(1)
			return nil, ErrQueueFull
		}
	}
	// A nil ctx leaves ctxDone nil — a never-ready select case — so the
	// ctx-less Submit pays nothing for the extra arm.
	var ctxDone <-chan struct{}
	if ctx != nil {
		ctxDone = ctx.Done()
	}
	select {
	case s.queue <- request{ctx: ctx, input: x, fut: fut, enq: time.Now()}:
		s.submitted.Add(1)
		return fut, nil
	case <-s.aborted:
		s.rejected.Add(1)
		return nil, ErrServerClosed
	case <-ctxDone:
		return nil, ctx.Err()
	}
}

// SubmitAll enqueues every input and returns one Future per input, in
// input order. If the server closes partway, the returned error is
// non-nil and the futures of the unsubmitted tail resolve to that error,
// so the slice is always fully resolvable.
func (s *Server) SubmitAll(inputs []*tensor.Tensor) ([]*Future, error) {
	futs := make([]*Future, len(inputs))
	for i, x := range inputs {
		f, err := s.Submit(x)
		if err != nil {
			for j := i; j < len(inputs); j++ {
				futs[j] = failedFuture(err)
			}
			return futs, err
		}
		futs[i] = f
	}
	return futs, nil
}

// Update feeds newly observed activation patterns back into the monitor
// while the server keeps serving: the monitor shadow-builds the touched
// zones and publishes them as a new epoch with one atomic swap
// (Monitor.UpdateBatch), which the lanes pick up at micro-batch
// granularity — no request is dropped or delayed across the swap, and no
// batch mixes zones from two generations. delta maps class → patterns to
// absorb (widths must match the monitor). Updates may be called from any
// goroutine, including while Submits are in flight and after Shutdown;
// concurrent updates are serialized by the monitor. On success the
// configured OnEpochSwap hook receives the new epoch id.
func (s *Server) Update(delta map[int][]core.Pattern) (uint64, error) {
	s.updMu.Lock()
	defer s.updMu.Unlock()
	id, err := s.mon.UpdateBatch(delta)
	if err != nil {
		return id, err
	}
	s.updates.Add(1)
	if s.cfg.OnEpochSwap != nil {
		s.cfg.OnEpochSwap(id)
	}
	return id, nil
}

// UpdateGamma republishes the monitor's zones at a new enlargement level
// (Monitor.UpdateGamma) without a serving gap; see Update for the epoch
// semantics.
func (s *Server) UpdateGamma(gamma int) (uint64, error) {
	s.updMu.Lock()
	defer s.updMu.Unlock()
	id, err := s.mon.UpdateGamma(gamma)
	if err != nil {
		return id, err
	}
	s.updates.Add(1)
	if s.cfg.OnEpochSwap != nil {
		s.cfg.OnEpochSwap(id)
	}
	return id, nil
}

// Shutdown stops the server gracefully: new Submits fail with
// ErrServerClosed immediately, while requests already accepted are
// drained through the coalescer and lanes. If ctx expires before the
// drain completes, the server aborts — undelivered futures resolve to
// ErrServerClosed (a lane mid-batch finishes that batch first) — and
// ctx.Err() is returned. Shutdown is idempotent and safe to call
// concurrently; it returns nil only for a clean drain, and
// ErrServerClosed when a concurrent Shutdown's expired context aborted
// the server first.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	first := !s.closed
	s.closed = true
	s.mu.Unlock()
	if first {
		go func() {
			// Once no Submit is between its closed-check and its enqueue,
			// the queue can close; the coalescer drains it to completion.
			s.inflight.Wait()
			close(s.queue)
		}()
	}
	// drained reports how a completed pipeline actually went down: nil
	// for a clean drain, ErrServerClosed when another caller's expired
	// context aborted the server and failed accepted requests (aborted
	// always closes before done, so the check is race-free here).
	drained := func() error {
		select {
		case <-s.aborted:
			return ErrServerClosed
		default:
			return nil
		}
	}
	select {
	case <-s.done:
		return drained()
	case <-ctx.Done():
		// select picks randomly when both channels are ready: don't
		// report a drain that actually completed as a failure.
		select {
		case <-s.done:
			return drained()
		default:
		}
		s.abort()
		<-s.done
		return ctx.Err()
	}
}

// abort flips the server into fail-fast mode: blocked Submits return,
// queued and batched requests resolve to ErrServerClosed.
func (s *Server) abort() {
	s.abortOnce.Do(func() { close(s.aborted) })
}

// Stats returns a snapshot of the server's counters and latency
// percentiles. Safe to call at any time, including after Shutdown.
func (s *Server) Stats() Stats {
	// One pointer load yields served and batches from the same instant:
	// the mean cannot be skewed by a batch completing between two loads.
	sc := s.counts.Load()
	mean := 0.0
	if sc.batches > 0 {
		mean = float64(sc.served) / float64(sc.batches)
	}
	total := s.stages.latency(stageTotal)
	stages := make(map[string]StageLatency, numStages)
	for i, name := range stageNames {
		stages[name] = s.stages.latency(i)
	}
	watched, oop, unmon := s.mon.WatchTotals()
	return Stats{
		Queued:        len(s.queue),
		Submitted:     s.submitted.Load(),
		Served:        sc.served,
		Rejected:      s.rejected.Load(),
		Shed:          s.shed.Load(),
		Expired:       s.expired.Load(),
		Batches:       sc.batches,
		MeanBatchSize: mean,
		P50:           total.P50,
		P99:           total.P99,
		Stages:        stages,
		Monitored:     watched,
		OutOfPattern:  oop,
		Unmonitored:   unmon,
		Gamma:         s.mon.Gamma(),
		Lanes:         len(s.lanes),
		Epoch:         s.mon.Epoch(),
		Updates:       s.updates.Load(),
		Recompiled:    s.mon.Updater().Recompiled(),
	}
}

// Monitor returns the monitor this server serves — the handle metric
// registration and admin surfaces use to reach the paper-level signals
// (per-class verdict tallies, epoch/update counters, BDD stats).
func (s *Server) Monitor() *core.Monitor { return s.mon }
