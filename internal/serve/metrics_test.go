package serve

import (
	"context"
	"sort"
	"strings"
	"sync"
	"testing"
	"time"

	"napmon/internal/obs"
)

// TestStatsStagesAndCounts drives real traffic through a server and
// checks the new observability surface: per-stage latency distributions
// populate with the right observation counts, the monitor tallies reach
// Stats, and MeanBatchSize is exactly Served/Batches from one snapshot.
func TestStatsStagesAndCounts(t *testing.T) {
	net, mon, inputs := toyServerParts(t, 31)
	s, err := New(net, mon, Config{MaxBatch: 8, MaxDelay: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	const n = 64
	for i := 0; i < n; i++ {
		f, err := s.Submit(inputs[i%len(inputs)])
		if err != nil {
			t.Fatal(err)
		}
		if _, err := f.Wait(); err != nil {
			t.Fatal(err)
		}
	}
	st := s.Stats()
	if st.Served != n {
		t.Fatalf("Served = %d, want %d", st.Served, n)
	}
	if st.Batches == 0 || st.MeanBatchSize != float64(st.Served)/float64(st.Batches) {
		t.Fatalf("MeanBatchSize %v inconsistent with Served %d / Batches %d",
			st.MeanBatchSize, st.Served, st.Batches)
	}
	for _, stage := range []string{"queue", "coalesce", "total"} {
		if got := st.Stages[stage].Count; got != n {
			t.Fatalf("stage %q count = %d, want %d (per-request)", stage, got, n)
		}
	}
	for _, stage := range []string{"dispatch", "inference", "zone_query"} {
		if got := st.Stages[stage].Count; got != st.Batches {
			t.Fatalf("stage %q count = %d, want %d (per-batch)", stage, got, st.Batches)
		}
	}
	if st.Stages["total"].P50 != st.P50 || st.Stages["total"].P99 != st.P99 {
		t.Fatalf("P50/P99 shim disagrees with total stage: %v/%v vs %+v",
			st.P50, st.P99, st.Stages["total"])
	}
	if st.P99 < st.P50 || st.P50 <= 0 {
		t.Fatalf("implausible percentiles: p50=%v p99=%v", st.P50, st.P99)
	}
	if st.Stages["inference"].P50 <= 0 {
		t.Fatal("inference stage never timed")
	}
	if st.Monitored+st.Unmonitored != n {
		t.Fatalf("monitor tallies %d+%d don't cover %d served", st.Monitored, st.Unmonitored, n)
	}
	if st.Gamma != mon.Gamma() {
		t.Fatalf("Gamma = %d, want %d", st.Gamma, mon.Gamma())
	}
	if err := s.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
}

// TestRegisterMetrics scrapes a live server through the obs registry and
// cross-checks the exposition against Stats — the same consistency
// contract the metrics-smoke CI job enforces over HTTP.
func TestRegisterMetrics(t *testing.T) {
	net, mon, inputs := toyServerParts(t, 12)
	s, err := New(net, mon, Config{MaxBatch: 4, MaxDelay: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Shutdown(context.Background())
	reg := obs.NewRegistry()
	s.RegisterMetrics(reg)
	for i := 0; i < 20; i++ {
		f, err := s.Submit(inputs[i%len(inputs)])
		if err != nil {
			t.Fatal(err)
		}
		if _, err := f.Wait(); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := s.Update(nil); err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := reg.WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	exp, err := obs.ParseExposition(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatalf("exposition invalid: %v\n%s", err, sb.String())
	}
	st := s.Stats()
	if v, ok := exp.Value("napmon_requests_served_total", nil); !ok || uint64(v) != st.Served {
		t.Fatalf("napmon_requests_served_total = %v (ok=%v), Stats.Served = %d", v, ok, st.Served)
	}
	watchedSum, nClasses := exp.SumAcross("napmon_watched_total")
	if nClasses != len(mon.WatchClasses()) {
		t.Fatalf("napmon_watched_total series = %d, want one per class (%d)", nClasses, len(mon.WatchClasses()))
	}
	if uint64(watchedSum) != st.Monitored {
		t.Fatalf("sum(napmon_watched_total) = %v, Stats.Monitored = %d", watchedSum, st.Monitored)
	}
	oopSum, _ := exp.SumAcross("napmon_oop_total")
	if uint64(oopSum) != st.OutOfPattern {
		t.Fatalf("sum(napmon_oop_total) = %v, Stats.OutOfPattern = %d", oopSum, st.OutOfPattern)
	}
	for _, name := range []string{
		"napmon_stage_duration_seconds",
		"napmon_gamma_level",
		"napmon_epoch",
		"napmon_epoch_swaps_total",
		"napmon_zone_plans_recompiled_total",
		"napmon_bdd_nodes",
		"napmon_bdd_cache_hits_total",
		"napmon_queue_depth",
	} {
		if !exp.Has(name) {
			t.Fatalf("missing series %s in:\n%s", name, sb.String())
		}
	}
	if v, ok := exp.Value("napmon_epoch", nil); !ok || uint64(v) != st.Epoch {
		t.Fatalf("napmon_epoch = %v (ok=%v), Stats.Epoch = %d", v, ok, st.Epoch)
	}
	if v, ok := exp.Value("napmon_bdd_nodes", nil); !ok || v <= 0 {
		t.Fatalf("napmon_bdd_nodes = %v (ok=%v)", v, ok)
	}
	// Stage histogram: per-stage series carry the stage label and a
	// bucket structure the parser already validated; spot-check counts.
	if v, ok := exp.Value("napmon_stage_duration_seconds_count", map[string]string{"stage": "total"}); !ok || uint64(v) != st.Served {
		t.Fatalf("total stage _count = %v (ok=%v), want %d", v, ok, st.Served)
	}
}

// TestMeanBatchSizeSnapshotConsistent hammers Stats while lanes complete
// batches: every observed MeanBatchSize must be exactly Served/Batches
// of the same snapshot — the race-window skew this PR removes. Runs
// under -race in CI.
func TestMeanBatchSizeSnapshotConsistent(t *testing.T) {
	net, mon, inputs := toyServerParts(t, 7)
	s, err := New(net, mon, Config{MaxBatch: 4, MaxDelay: 100 * time.Microsecond})
	if err != nil {
		t.Fatal(err)
	}
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			st := s.Stats()
			if st.Batches == 0 {
				if st.MeanBatchSize != 0 {
					t.Error("MeanBatchSize nonzero with zero batches")
					return
				}
				continue
			}
			if want := float64(st.Served) / float64(st.Batches); st.MeanBatchSize != want {
				t.Errorf("MeanBatchSize %v != Served/Batches %v", st.MeanBatchSize, want)
				return
			}
		}
	}()
	var futs []*Future
	for i := 0; i < 300; i++ {
		f, err := s.Submit(inputs[i%len(inputs)])
		if err != nil {
			t.Fatal(err)
		}
		futs = append(futs, f)
	}
	for _, f := range futs {
		if _, err := f.Wait(); err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	wg.Wait()
	if err := s.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
}

// mutexRing is the deleted latencyRing, preserved here only as the A/B
// baseline for BenchmarkStatsRecord: a mutex-guarded sample window that
// serializes every record and copy+sorts per scrape.
type mutexRing struct {
	mu  sync.Mutex
	buf []time.Duration
	n   uint64
}

func (r *mutexRing) record(d time.Duration) {
	r.mu.Lock()
	if len(r.buf) > 0 {
		r.buf[r.n%uint64(len(r.buf))] = d
		r.n++
	}
	r.mu.Unlock()
}

func (r *mutexRing) percentiles() (p50, p99 time.Duration) {
	r.mu.Lock()
	live := len(r.buf)
	if r.n < uint64(live) {
		live = int(r.n)
	}
	sample := append([]time.Duration(nil), r.buf[:live]...)
	r.mu.Unlock()
	if len(sample) == 0 {
		return 0, 0
	}
	sort.Slice(sample, func(i, j int) bool { return sample[i] < sample[j] })
	rank := func(p float64) time.Duration {
		i := int(p * float64(len(sample)))
		if i >= len(sample) {
			i = len(sample) - 1
		}
		return sample[i]
	}
	return rank(0.50), rank(0.99)
}

// BenchmarkStatsRecord is the A/B contention comparison behind the
// latencyRing replacement: parallel goroutines recording latencies into
// the old mutex-guarded ring versus the lock-free obs histogram, with a
// periodic concurrent scrape as in live serving. Run with -cpu 1,4 to
// see the contention gap widen.
func BenchmarkStatsRecord(b *testing.B) {
	b.Run("mutexRing", func(b *testing.B) {
		r := &mutexRing{buf: make([]time.Duration, 1024)}
		stop := make(chan struct{})
		go func() {
			for {
				select {
				case <-stop:
					return
				default:
					r.percentiles()
					time.Sleep(100 * time.Microsecond)
				}
			}
		}()
		b.RunParallel(func(pb *testing.PB) {
			d := 700 * time.Microsecond
			for pb.Next() {
				r.record(d)
			}
		})
		close(stop)
	})
	b.Run("obsHistogram", func(b *testing.B) {
		var h obs.Histogram
		stop := make(chan struct{})
		go func() {
			for {
				select {
				case <-stop:
					return
				default:
					s := h.Snapshot()
					_ = s.Quantile(0.99)
					time.Sleep(100 * time.Microsecond)
				}
			}
		}()
		b.RunParallel(func(pb *testing.PB) {
			d := int64(700 * time.Microsecond)
			for pb.Next() {
				h.Record(d)
			}
		})
		close(stop)
	})
}
