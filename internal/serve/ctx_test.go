package serve

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"napmon/internal/tensor"
)

// TestSubmitCtxCancelBlocked pins the blocked-submit contract: a caller
// blocked on a full queue unblocks with ctx.Err() when its context is
// cancelled, and no queue slot leaks — the request was never enqueued.
// Uses the bare-Server idiom (no goroutines drain the queue), so the
// block is deterministic.
func TestSubmitCtxCancelBlocked(t *testing.T) {
	s := &Server{
		queue:   make(chan request, 1),
		aborted: make(chan struct{}),
	}
	if _, err := s.Submit(tensor.New(4)); err != nil {
		t.Fatalf("fill queue: %v", err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	errc := make(chan error, 1)
	go func() {
		_, err := s.SubmitCtx(ctx, tensor.New(4))
		errc <- err
	}()
	select {
	case err := <-errc:
		t.Fatalf("SubmitCtx returned %v before cancel; should be blocked on the full queue", err)
	case <-time.After(20 * time.Millisecond):
	}
	cancel()
	select {
	case err := <-errc:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("cancelled blocked submit: %v, want context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("cancel did not unblock SubmitCtx")
	}
	if got := len(s.queue); got != 1 {
		t.Fatalf("queue holds %d requests after cancelled submit, want 1 (no slot leaked)", got)
	}
	if got := s.submitted.Load(); got != 1 {
		t.Fatalf("submitted counter %d, want 1 — the cancelled request must not count", got)
	}
}

// TestSubmitCtxAlreadyDone: a context that is done before the call
// submits nothing and returns its error immediately, even with room in
// the queue.
func TestSubmitCtxAlreadyDone(t *testing.T) {
	s := &Server{
		queue:   make(chan request, 4),
		aborted: make(chan struct{}),
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := s.SubmitCtx(ctx, tensor.New(4)); !errors.Is(err, context.Canceled) {
		t.Fatalf("SubmitCtx with done ctx: %v, want context.Canceled", err)
	}
	if got := len(s.queue); got != 0 {
		t.Fatalf("queue holds %d requests, want 0", got)
	}
}

// TestSubmitCtxExpiredInQueue pins the in-pipeline shed: a request whose
// deadline fires while it waits for the coalescer's MaxDelay resolves to
// ErrExpired (not its ctx error, not a verdict), increments
// Stats.Expired, skips the batch counters, and leaves the server
// perfectly able to serve the next live request.
func TestSubmitCtxExpiredInQueue(t *testing.T) {
	net, mon, inputs := toyServerParts(t, 5)
	// MaxDelay far above the deadline: the request is picked up fresh,
	// then expires while the partial batch waits for company.
	s, err := New(net, mon, Config{MaxBatch: 4, MaxDelay: 50 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer shutdownOK(t, s)

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Millisecond)
	defer cancel()
	fut, err := s.SubmitCtx(ctx, inputs[0])
	if err != nil {
		t.Fatalf("SubmitCtx: %v", err)
	}
	if _, err := fut.Wait(); !errors.Is(err, ErrExpired) {
		t.Fatalf("expired-in-queue future resolved to %v, want ErrExpired", err)
	}
	st := s.Stats()
	if st.Expired != 1 {
		t.Fatalf("Stats.Expired %d, want 1", st.Expired)
	}
	if st.Served != 0 || st.Batches != 0 {
		t.Fatalf("expired request leaked into served=%d/batches=%d", st.Served, st.Batches)
	}

	// The pipeline is not poisoned: a live request still gets a verdict.
	fut, err = s.SubmitCtx(context.Background(), inputs[1])
	if err != nil {
		t.Fatalf("SubmitCtx after shed: %v", err)
	}
	if _, err := fut.Wait(); err != nil {
		t.Fatalf("live request after shed: %v", err)
	}
	if st := s.Stats(); st.Served != 1 || st.Expired != 1 {
		t.Fatalf("served=%d expired=%d after live request, want 1/1", st.Served, st.Expired)
	}
}

// TestSubmitCtxFlood races hundreds of deadline-bearing submits against
// the pipeline (run under -race): every accepted request resolves to
// exactly a verdict or ErrExpired, and the counters tile — submitted =
// served + expired.
func TestSubmitCtxFlood(t *testing.T) {
	net, mon, inputs := toyServerParts(t, 6)
	s, err := New(net, mon, Config{MaxBatch: 8, MaxDelay: 2 * time.Millisecond, QueueDepth: 16})
	if err != nil {
		t.Fatal(err)
	}
	const n = 300
	var (
		wg              sync.WaitGroup
		mu              sync.Mutex
		served, expired uint64
	)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			// A spread of deadlines around the pipeline's natural latency,
			// so some expire in the queue, some at the lane, some serve.
			d := time.Duration(i%5) * time.Millisecond
			ctx, cancel := context.WithTimeout(context.Background(), d)
			defer cancel()
			fut, err := s.SubmitCtx(ctx, inputs[i%len(inputs)])
			if err != nil {
				if !errors.Is(err, context.DeadlineExceeded) {
					t.Errorf("submit %d: %v", i, err)
				}
				return
			}
			_, err = fut.Wait()
			mu.Lock()
			defer mu.Unlock()
			switch {
			case err == nil:
				served++
			case errors.Is(err, ErrExpired):
				expired++
			default:
				t.Errorf("future %d resolved to %v, want verdict or ErrExpired", i, err)
			}
		}(i)
	}
	wg.Wait()
	shutdownOK(t, s)
	st := s.Stats()
	if st.Served != served || st.Expired != expired {
		t.Fatalf("stats served=%d expired=%d, futures saw %d/%d", st.Served, st.Expired, served, expired)
	}
	if st.Submitted != st.Served+st.Expired {
		t.Fatalf("submitted=%d != served=%d + expired=%d", st.Submitted, st.Served, st.Expired)
	}
	if served == 0 {
		t.Fatal("flood served nothing — deadlines too tight to exercise the serve path")
	}
}
