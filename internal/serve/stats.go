package serve

import (
	"sort"
	"sync"
	"time"
)

// Stats is a point-in-time snapshot of a Server's counters, reported by
// Server.Stats and the napmon-serve /stats endpoint.
type Stats struct {
	// Queued is the current request-queue depth (0..QueueDepth).
	Queued int
	// Submitted counts requests accepted into the queue since start.
	Submitted uint64
	// Served counts requests answered with a verdict.
	Served uint64
	// Rejected counts Submit calls refused because the server was
	// closed or aborted.
	Rejected uint64
	// Shed counts TrySubmit calls refused with ErrQueueFull — load a
	// non-blocking front end (the UDP gateway) dropped instead of
	// queueing.
	Shed uint64
	// Batches is the number of micro-batches dispatched to lanes;
	// MeanBatchSize is Served-so-far divided by it, the coalescer's
	// effectiveness measure (1.0 = no coalescing happened).
	Batches       uint64
	MeanBatchSize float64
	// P50 and P99 are request latency percentiles (enqueue to verdict)
	// over the most recent LatencyWindow served requests; zero until the
	// first request is served.
	P50 time.Duration
	P99 time.Duration
	// Lanes is the number of serving lanes (network replicas).
	Lanes int
	// Epoch is the id of the monitor epoch currently serving; it starts
	// at 1 (the freeze epoch) and increments with every online update
	// published through Server.Update/UpdateGamma (or directly on the
	// monitor).
	Epoch uint64
	// Updates counts the epoch swaps published through this server's
	// Update/UpdateGamma since start.
	Updates uint64
	// Recompiled counts the zone query plans online updates have rebuilt
	// (Updater.Recompiled). Epoch swaps recompile only the zones they
	// touch — the lanes keep serving every untouched class from the
	// predecessor epoch's shared compiled plans — so this growing much
	// slower than Updates × classes is the O(delta) update property,
	// observable from /stats.
	Recompiled uint64
}

// latencyRing keeps the last cap(buf) request latencies for percentile
// estimates. A fixed window keeps Stats O(window) and the memory bounded
// no matter how long the server lives.
type latencyRing struct {
	mu  sync.Mutex
	buf []time.Duration
	n   uint64 // total ever recorded; buf[i] valid for i < min(n, len(buf))
}

func (r *latencyRing) init(window int) {
	r.buf = make([]time.Duration, window)
}

func (r *latencyRing) record(d time.Duration) {
	r.mu.Lock()
	if len(r.buf) > 0 {
		r.buf[r.n%uint64(len(r.buf))] = d
		r.n++
	}
	r.mu.Unlock()
}

// percentiles returns the p50 and p99 of the current window (nearest-rank
// on the sorted window), or zeros when nothing has been recorded.
func (r *latencyRing) percentiles() (p50, p99 time.Duration) {
	r.mu.Lock()
	live := len(r.buf)
	if r.n < uint64(live) {
		live = int(r.n)
	}
	sample := append([]time.Duration(nil), r.buf[:live]...)
	r.mu.Unlock()
	if len(sample) == 0 {
		return 0, 0
	}
	sort.Slice(sample, func(i, j int) bool { return sample[i] < sample[j] })
	rank := func(p float64) time.Duration {
		i := int(p*float64(len(sample)) + 0.5)
		if i >= len(sample) {
			i = len(sample) - 1
		}
		return sample[i]
	}
	return rank(0.50), rank(0.99)
}
