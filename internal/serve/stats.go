package serve

import (
	"time"

	"napmon/internal/obs"
)

// Stats is a point-in-time snapshot of a Server's counters, reported by
// Server.Stats and the napmon-serve /stats endpoint.
type Stats struct {
	// Queued is the current request-queue depth (0..QueueDepth).
	Queued int
	// Submitted counts requests accepted into the queue since start.
	Submitted uint64
	// Served counts requests answered with a verdict.
	Served uint64
	// Rejected counts Submit calls refused because the server was
	// closed or aborted.
	Rejected uint64
	// Shed counts TrySubmit calls refused with ErrQueueFull — load a
	// non-blocking front end (the UDP gateway) dropped instead of
	// queueing.
	Shed uint64
	// Expired counts SubmitCtx requests whose context fired after they
	// were queued but before inference: the server shed them with
	// ErrExpired instead of computing a verdict nobody was waiting for.
	// Under overload with client deadlines this is the goodput-protection
	// signal — rising Expired means the queue is holding requests longer
	// than clients are willing to wait.
	Expired uint64
	// Batches is the number of micro-batches dispatched to lanes;
	// MeanBatchSize is Served divided by it, the coalescer's
	// effectiveness measure (1.0 = no coalescing happened). Both come
	// from one atomic snapshot, so the ratio is exact even while lanes
	// are completing batches concurrently.
	Batches       uint64
	MeanBatchSize float64
	// P50 and P99 are end-to-end request latency percentiles (enqueue to
	// verdict) over every request served since start, estimated from a
	// log-bucketed histogram with ≤1/32 relative error; zero until the
	// first request is served.
	P50 time.Duration
	P99 time.Duration
	// Stages breaks the pipeline down: per-stage latency percentiles
	// keyed by stage name. "queue" (enqueue → coalescer pickup),
	// "coalesce" (pickup → batch flush) and "total" (enqueue → verdict)
	// are per-request distributions; "dispatch" (flush → lane pickup),
	// "inference" (forward pass + pattern extraction) and "zone_query"
	// (comfort-zone membership) are per-batch.
	Stages map[string]StageLatency
	// Monitored and OutOfPattern are the monitor's cumulative verdict
	// tallies across all classes — the paper's safety signal, summed
	// (per-class resolution is on /metrics). Unmonitored counts verdicts
	// the monitor abstained on.
	Monitored    uint64
	OutOfPattern uint64
	Unmonitored  uint64
	// Gamma is the serving enlargement level of the current epoch.
	Gamma int
	// Lanes is the number of serving lanes (network replicas).
	Lanes int
	// Epoch is the id of the monitor epoch currently serving; it starts
	// at 1 (the freeze epoch) and increments with every online update
	// published through Server.Update/UpdateGamma (or directly on the
	// monitor).
	Epoch uint64
	// Updates counts the epoch swaps published through this server's
	// Update/UpdateGamma since start.
	Updates uint64
	// Recompiled counts the zone query plans online updates have rebuilt
	// (Updater.Recompiled). Epoch swaps recompile only the zones they
	// touch — the lanes keep serving every untouched class from the
	// predecessor epoch's shared compiled plans — so this growing much
	// slower than Updates × classes is the O(delta) update property,
	// observable from /stats.
	Recompiled uint64
}

// StageLatency is one pipeline stage's latency percentiles.
type StageLatency struct {
	P50 time.Duration
	P99 time.Duration
	// Count is how many observations the percentiles summarize
	// (requests for per-request stages, batches for per-batch ones).
	Count uint64
}

// stageNames lists the pipeline stages in flow order; stageStats.hist
// is indexed by these positions.
var stageNames = [...]string{"queue", "coalesce", "dispatch", "inference", "zone_query", "total"}

const (
	stageQueue = iota
	stageCoalesce
	stageDispatch
	stageInference
	stageZoneQuery
	stageTotal
	numStages
)

// stageStats holds one lock-free histogram per pipeline stage. Recording
// is a pair of atomic adds per observation — no mutex, no sample
// retention — so many lanes record concurrently without contention; the
// old latencyRing serialized every request on one lock and paid a
// copy+sort per scrape (BenchmarkStatsRecord holds the comparison).
// Values are nanoseconds.
type stageStats struct {
	hist [numStages]obs.Histogram
}

func (st *stageStats) record(stage int, d time.Duration) {
	st.hist[stage].Record(d.Nanoseconds())
}

// latency summarizes one stage from a fresh snapshot.
func (st *stageStats) latency(stage int) StageLatency {
	snap := st.hist[stage].Snapshot()
	return StageLatency{
		P50:   time.Duration(snap.Quantile(0.50)),
		P99:   time.Duration(snap.Quantile(0.99)),
		Count: snap.Count(),
	}
}

// servedCounts is the (served, batches) pair behind Stats.MeanBatchSize.
// Lanes publish updates by swapping a fresh immutable pair in with CAS,
// so a reader's single pointer load observes both counters from the
// same instant — the two-independent-loads race that used to skew the
// mean under load is structurally gone.
type servedCounts struct {
	served  uint64
	batches uint64
}
