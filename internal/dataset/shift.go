package dataset

import (
	"napmon/internal/nn"
	"napmon/internal/rng"
	"napmon/internal/tensor"
)

// Distribution shifts: the paper's motivation is that a deployed network
// faces inputs the training distribution never covered (its Figure 1-(b)
// scooter), and the monitor should flag them as out-of-pattern far more
// often than in-distribution inputs. These generators produce shifted
// copies of a dataset for that experiment.

// ShiftKind names a distribution shift.
type ShiftKind string

// The supported shifts.
const (
	// ShiftNoise adds strong pixel noise well beyond the training level.
	ShiftNoise ShiftKind = "noise"
	// ShiftOcclusion blanks a random rectangle covering roughly a quarter
	// of the image.
	ShiftOcclusion ShiftKind = "occlusion"
	// ShiftDark multiplies the image by a strong dimming factor.
	ShiftDark ShiftKind = "dark"
	// ShiftInvert inverts all intensities.
	ShiftInvert ShiftKind = "invert"
)

// AllShifts lists every supported shift kind.
func AllShifts() []ShiftKind {
	return []ShiftKind{ShiftNoise, ShiftOcclusion, ShiftDark, ShiftInvert}
}

// ApplyShift returns shifted deep copies of the samples. Labels are
// preserved (the object is still nominally present), matching how a
// real-world distribution shift degrades inputs without changing ground
// truth.
func ApplyShift(samples []nn.Sample, kind ShiftKind, seed uint64) []nn.Sample {
	r := rng.New(seed)
	out := make([]nn.Sample, len(samples))
	for i, s := range samples {
		img := s.Input.Clone()
		shiftImage(img, kind, r)
		out[i] = nn.Sample{Input: img, Label: s.Label}
	}
	return out
}

func shiftImage(img *tensor.Tensor, kind ShiftKind, r *rng.Source) {
	switch kind {
	case ShiftNoise:
		addNoise(img.Data(), 0.45, r)
	case ShiftOcclusion:
		occlude(img, r)
	case ShiftDark:
		f := r.Range(0.15, 0.35)
		for i := range img.Data() {
			img.Data()[i] *= f
		}
	case ShiftInvert:
		for i := range img.Data() {
			img.Data()[i] = 1 - img.Data()[i]
		}
	default:
		panic("dataset: unknown shift kind " + string(kind))
	}
}

// occlude blanks a random rectangle of about half the side length in every
// channel.
func occlude(img *tensor.Tensor, r *rng.Source) {
	c, h, w := img.Dim(0), img.Dim(1), img.Dim(2)
	bh, bw := h/2, w/2
	y0 := r.Intn(h - bh + 1)
	x0 := r.Intn(w - bw + 1)
	fill := r.Float64()
	for ch := 0; ch < c; ch++ {
		for y := y0; y < y0+bh; y++ {
			for x := x0; x < x0+bw; x++ {
				img.Set(fill, ch, y, x)
			}
		}
	}
}

// NovelDigits renders images from stroke skeletons that belong to no
// trained class (letter-like shapes), labelled with class 0 by convention.
// They exercise the "never seen anything like this" path end to end.
func NovelDigits(n int, seed uint64) []nn.Sample {
	letters := [][]stroke{
		// A
		{{pt{0.3, 0.88}, pt{0.5, 0.12}, pt{0.7, 0.88}}, {pt{0.38, 0.6}, pt{0.62, 0.6}}},
		// H
		{{pt{0.32, 0.12}, pt{0.32, 0.88}}, {pt{0.68, 0.12}, pt{0.68, 0.88}}, {pt{0.32, 0.5}, pt{0.68, 0.5}}},
		// Z
		{{pt{0.28, 0.14}, pt{0.72, 0.14}, pt{0.28, 0.86}, pt{0.72, 0.86}}},
		// star-ish asterisk
		{{pt{0.5, 0.15}, pt{0.5, 0.85}}, {pt{0.22, 0.35}, pt{0.78, 0.65}}, {pt{0.78, 0.35}, pt{0.22, 0.65}}},
	}
	cfg := DefaultMNISTConfig()
	r := rng.New(seed)
	out := make([]nn.Sample, n)
	for i := range out {
		img := make([]float64, MNISTImageSize*MNISTImageSize)
		t := jitteredTransform(MNISTImageSize, MNISTImageSize, r,
			cfg.MaxRotation, cfg.MinScale, cfg.MaxScale, cfg.MaxShift)
		drawStrokes(img, MNISTImageSize, MNISTImageSize, letters[r.Intn(len(letters))], t,
			r.Range(cfg.MinThickness, cfg.MaxThickness))
		addNoise(img, cfg.Noise, r)
		out[i] = nn.Sample{Input: tensor.FromSlice(img, 1, MNISTImageSize, MNISTImageSize), Label: 0}
	}
	return out
}
