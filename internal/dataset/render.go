package dataset

import (
	"math"

	"napmon/internal/rng"
)

// Drawing primitives shared by the MNIST-like and GTSRB-like renderers.
// Geometry lives in a unit square with y growing downward; an affine
// transform (rotation, anisotropic scale, translation) maps it to pixel
// space at rasterization time.

// pt is a 2-D point in unit coordinates.
type pt struct{ x, y float64 }

// affine is a 2-D affine transform p -> A·p + b.
type affine struct {
	a11, a12, a21, a22 float64
	bx, by             float64
}

// identity returns the identity transform scaled to a w×h pixel grid.
func pixelTransform(w, h float64) affine {
	return affine{a11: w, a22: h}
}

// jitteredTransform composes a random rotation, scale and translation with
// the pixel mapping, centred on the unit square's midpoint.
func jitteredTransform(w, h float64, r *rng.Source, maxRot, minScale, maxScale, maxShift float64) affine {
	theta := r.Range(-maxRot, maxRot)
	sx := r.Range(minScale, maxScale)
	sy := r.Range(minScale, maxScale)
	cos, sin := math.Cos(theta), math.Sin(theta)
	dx := r.Range(-maxShift, maxShift)
	dy := r.Range(-maxShift, maxShift)
	// Rotate and scale about the centre (0.5, 0.5), then shift.
	t := affine{
		a11: sx * cos, a12: -sy * sin,
		a21: sx * sin, a22: sy * cos,
	}
	cx, cy := t.apply(pt{0.5, 0.5})
	t.bx = 0.5 - cx + dx
	t.by = 0.5 - cy + dy
	// Compose with pixel scaling.
	return affine{
		a11: w * t.a11, a12: w * t.a12, bx: w * t.bx,
		a21: h * t.a21, a22: h * t.a22, by: h * t.by,
	}
}

func (t affine) apply(p pt) (x, y float64) {
	return t.a11*p.x + t.a12*p.y + t.bx, t.a21*p.x + t.a22*p.y + t.by
}

// stroke is an open polyline.
type stroke []pt

// drawStrokes rasterizes the strokes into img (h×w, row-major, values
// accumulated up to 1) with the given transform and stroke thickness in
// pixels. Anti-aliasing is a linear ramp one pixel wide.
func drawStrokes(img []float64, w, h int, strokes []stroke, t affine, thickness float64) {
	for _, s := range strokes {
		for i := 0; i+1 < len(s); i++ {
			x1, y1 := t.apply(s[i])
			x2, y2 := t.apply(s[i+1])
			drawSegment(img, w, h, x1, y1, x2, y2, thickness)
		}
	}
}

// drawSegment splats one thick line segment in pixel coordinates.
func drawSegment(img []float64, w, h int, x1, y1, x2, y2, thickness float64) {
	r := thickness/2 + 1
	xmin := clampInt(int(math.Floor(math.Min(x1, x2)-r)), 0, w-1)
	xmax := clampInt(int(math.Ceil(math.Max(x1, x2)+r)), 0, w-1)
	ymin := clampInt(int(math.Floor(math.Min(y1, y2)-r)), 0, h-1)
	ymax := clampInt(int(math.Ceil(math.Max(y1, y2)+r)), 0, h-1)
	for py := ymin; py <= ymax; py++ {
		for px := xmin; px <= xmax; px++ {
			d := segmentDistance(float64(px)+0.5, float64(py)+0.5, x1, y1, x2, y2)
			v := (thickness/2 + 0.5 - d)
			if v <= 0 {
				continue
			}
			if v > 1 {
				v = 1
			}
			idx := py*w + px
			if v > img[idx] {
				img[idx] = v
			}
		}
	}
}

// segmentDistance returns the distance from point (px,py) to the segment
// (x1,y1)-(x2,y2).
func segmentDistance(px, py, x1, y1, x2, y2 float64) float64 {
	dx, dy := x2-x1, y2-y1
	lenSq := dx*dx + dy*dy
	t := 0.0
	if lenSq > 0 {
		t = ((px-x1)*dx + (py-y1)*dy) / lenSq
		t = math.Max(0, math.Min(1, t))
	}
	cx, cy := x1+t*dx, y1+t*dy
	return math.Hypot(px-cx, py-cy)
}

func clampInt(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

func clamp01(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}

// addNoise perturbs every value with Gaussian noise of the given standard
// deviation and clamps to [0, 1].
func addNoise(img []float64, stddev float64, r *rng.Source) {
	for i := range img {
		img[i] = clamp01(img[i] + r.NormScaled(0, stddev))
	}
}

// circlePoly approximates a circle of radius rad centred at c with n
// polygon vertices.
func circlePoly(c pt, rad float64, n int) []pt {
	poly := make([]pt, n)
	for i := range poly {
		a := 2 * math.Pi * float64(i) / float64(n)
		poly[i] = pt{c.x + rad*math.Cos(a), c.y + rad*math.Sin(a)}
	}
	return poly
}

// insidePoly reports whether (x, y) lies inside the polygon (even-odd
// rule).
func insidePoly(poly []pt, x, y float64) bool {
	in := false
	j := len(poly) - 1
	for i := range poly {
		if (poly[i].y > y) != (poly[j].y > y) &&
			x < (poly[j].x-poly[i].x)*(y-poly[i].y)/(poly[j].y-poly[i].y)+poly[i].x {
			in = !in
		}
		j = i
	}
	return in
}

// polyEdgeDistance returns the shortest distance from (x, y) to the
// polygon boundary.
func polyEdgeDistance(poly []pt, x, y float64) float64 {
	best := math.Inf(1)
	j := len(poly) - 1
	for i := range poly {
		d := segmentDistance(x, y, poly[j].x, poly[j].y, poly[i].x, poly[i].y)
		if d < best {
			best = d
		}
		j = i
	}
	return best
}
