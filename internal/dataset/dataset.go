// Package dataset provides the synthetic image classification workloads
// the experiments run on. The paper evaluates on MNIST and GTSRB; this
// repository is built offline, so both are replaced by procedural
// renderers that preserve what the monitor experiments need — a
// multi-class image problem a small CNN learns to high-but-imperfect
// accuracy, with identically distributed train/validation splits and
// controllable distribution shifts (see DESIGN.md, "Substitutions").
//
// Every generator is deterministic per seed: the same seed yields the
// same samples on every machine and run.
package dataset

import (
	"fmt"

	"napmon/internal/nn"
	"napmon/internal/rng"
)

// Dataset is a labelled train/validation pair.
type Dataset struct {
	Name       string
	NumClasses int
	Train      []nn.Sample
	Val        []nn.Sample
}

// ClassCounts returns how many samples of each class the slice contains.
func ClassCounts(samples []nn.Sample, numClasses int) []int {
	counts := make([]int, numClasses)
	for _, s := range samples {
		if s.Label < 0 || s.Label >= numClasses {
			panic(fmt.Sprintf("dataset: label %d out of range [0,%d)", s.Label, numClasses))
		}
		counts[s.Label]++
	}
	return counts
}

// OfClass returns the subset of samples with the given label.
func OfClass(samples []nn.Sample, class int) []nn.Sample {
	var out []nn.Sample
	for _, s := range samples {
		if s.Label == class {
			out = append(out, s)
		}
	}
	return out
}

// balancedLabels yields n labels cycling through numClasses classes and
// then shuffles them, so every generated split is class-balanced up to
// rounding but in random order.
func balancedLabels(n, numClasses int, r *rng.Source) []int {
	labels := make([]int, n)
	for i := range labels {
		labels[i] = i % numClasses
	}
	r.Shuffle(n, func(i, j int) { labels[i], labels[j] = labels[j], labels[i] })
	return labels
}
