package dataset

import (
	"napmon/internal/nn"
	"napmon/internal/rng"
	"napmon/internal/tensor"
)

// GTSRB-like traffic signs: 43 classes, each a parametric combination of
// sign plate shape, plate/border colours and an inner glyph, rendered at
// 32×32 RGB over a random background with geometric jitter, brightness/
// contrast perturbation and pixel noise. Class 14 is pinned to a red
// octagon with a white bar — the stop sign the paper's network-2 monitor
// certifies.

// GTSRBImageSize is the side length of generated sign images.
const GTSRBImageSize = 32

// GTSRBNumClasses matches the real benchmark's class count.
const GTSRBNumClasses = 43

// StopSignClass is the class index of the stop sign, as in the real GTSRB.
const StopSignClass = 14

type rgb struct{ r, g, b float64 }

var (
	colRed    = rgb{0.82, 0.10, 0.12}
	colBlue   = rgb{0.12, 0.25, 0.80}
	colYellow = rgb{0.92, 0.80, 0.15}
	colWhite  = rgb{0.92, 0.92, 0.92}
	colBlack  = rgb{0.08, 0.08, 0.08}
)

// Sign plate shapes.
const (
	shapeCircle = iota
	shapeTriUp
	shapeTriDown
	shapeDiamond
	shapeOctagon
	shapeSquare
	numShapes
)

// Inner glyphs.
const (
	glyphNone = iota
	glyphHBar
	glyphVBar
	glyphCross
	glyphX
	glyphDot
	glyphArrowUp
	glyphArrowRight
	glyphArrowLeft
	glyphChevron
	glyphTwoDots
	glyphLBend
	numGlyphs
)

// signDesc parameterizes one sign class.
type signDesc struct {
	shape        int
	fill, border rgb
	glyph        int
	glyphCol     rgb
}

// signClasses holds the 43 class descriptors, generated deterministically
// by cycling through shape/colour/glyph combinations so that every class
// differs from every other in at least one attribute, with the stop sign
// pinned at index 14.
var signClasses = buildSignClasses()

func buildSignClasses() [GTSRBNumClasses]signDesc {
	fills := []rgb{colWhite, colBlue, colYellow, colRed}
	borders := []rgb{colRed, colWhite, colBlack, colBlue}
	glyphCols := []rgb{colBlack, colWhite, colRed, colBlue}
	var out [GTSRBNumClasses]signDesc
	seen := map[[4]int]bool{}
	idx := 0
	// Enumerate combinations in a fixed order, skipping degenerate
	// fill==glyph colour pairs, until 43 classes exist.
	for spin := 0; idx < GTSRBNumClasses; spin++ {
		shape := spin % numShapes
		fill := (spin / numShapes) % len(fills)
		glyph := (spin / (numShapes * len(fills))) % numGlyphs
		border := (spin + glyph) % len(borders)
		key := [4]int{shape, fill, glyph, border}
		if seen[key] {
			continue
		}
		seen[key] = true
		gc := glyphCols[(fill+1)%len(glyphCols)]
		if gc == fills[fill] {
			gc = colBlack
		}
		out[idx] = signDesc{
			shape:    shape,
			fill:     fills[fill],
			border:   borders[border],
			glyph:    glyph,
			glyphCol: gc,
		}
		idx++
	}
	// Pin the stop sign: red octagon, white border, white bar.
	out[StopSignClass] = signDesc{
		shape: shapeOctagon, fill: colRed, border: colWhite,
		glyph: glyphHBar, glyphCol: colWhite,
	}
	return out
}

// shapePoly returns the plate polygon for a shape in unit coordinates.
func shapePoly(shape int) []pt {
	const c, r = 0.5, 0.36
	switch shape {
	case shapeCircle:
		return circlePoly(pt{c, c}, r, 20)
	case shapeTriUp:
		return []pt{{0.5, 0.12}, {0.88, 0.84}, {0.12, 0.84}}
	case shapeTriDown:
		return []pt{{0.12, 0.16}, {0.88, 0.16}, {0.5, 0.88}}
	case shapeDiamond:
		return []pt{{0.5, 0.1}, {0.9, 0.5}, {0.5, 0.9}, {0.1, 0.5}}
	case shapeOctagon:
		return circlePoly(pt{c, c}, 0.4, 8)
	case shapeSquare:
		return []pt{{0.16, 0.16}, {0.84, 0.16}, {0.84, 0.84}, {0.16, 0.84}}
	default:
		panic("dataset: unknown shape")
	}
}

// glyphStrokes returns the stroke skeleton of a glyph in unit coordinates.
func glyphStrokes(glyph int) []stroke {
	switch glyph {
	case glyphNone:
		return nil
	case glyphHBar:
		return []stroke{{pt{0.32, 0.5}, pt{0.68, 0.5}}}
	case glyphVBar:
		return []stroke{{pt{0.5, 0.3}, pt{0.5, 0.7}}}
	case glyphCross:
		return []stroke{{pt{0.34, 0.5}, pt{0.66, 0.5}}, {pt{0.5, 0.34}, pt{0.5, 0.66}}}
	case glyphX:
		return []stroke{{pt{0.36, 0.36}, pt{0.64, 0.64}}, {pt{0.64, 0.36}, pt{0.36, 0.64}}}
	case glyphDot:
		return []stroke{circleStroke(pt{0.5, 0.5}, 0.07, 0.07, 8)}
	case glyphArrowUp:
		return []stroke{{pt{0.5, 0.68}, pt{0.5, 0.32}}, {pt{0.38, 0.44}, pt{0.5, 0.32}, pt{0.62, 0.44}}}
	case glyphArrowRight:
		return []stroke{{pt{0.32, 0.5}, pt{0.68, 0.5}}, {pt{0.56, 0.38}, pt{0.68, 0.5}, pt{0.56, 0.62}}}
	case glyphArrowLeft:
		return []stroke{{pt{0.68, 0.5}, pt{0.32, 0.5}}, {pt{0.44, 0.38}, pt{0.32, 0.5}, pt{0.44, 0.62}}}
	case glyphChevron:
		return []stroke{{pt{0.34, 0.6}, pt{0.5, 0.4}, pt{0.66, 0.6}}}
	case glyphTwoDots:
		return []stroke{circleStroke(pt{0.42, 0.5}, 0.05, 0.05, 8), circleStroke(pt{0.58, 0.5}, 0.05, 0.05, 8)}
	case glyphLBend:
		return []stroke{{pt{0.4, 0.32}, pt{0.4, 0.6}, pt{0.64, 0.6}}}
	default:
		panic("dataset: unknown glyph")
	}
}

// GTSRBConfig controls sign generation.
type GTSRBConfig struct {
	Noise              float64
	MaxRotation        float64
	MinScale, MaxScale float64
	MaxShift           float64
	// BrightnessJitter scales the whole image by 1±BrightnessJitter.
	BrightnessJitter float64
	// BorderWidth is the plate border thickness in pixels.
	BorderWidth float64
}

// DefaultGTSRBConfig produces a task noticeably harder than the digits
// (smaller signs, colour jitter, stronger noise), so the trained network
// shows the few-percent misclassification rate of the paper's network 2.
func DefaultGTSRBConfig() GTSRBConfig {
	return GTSRBConfig{
		Noise:            0.08,
		MaxRotation:      0.18,
		MinScale:         0.75,
		MaxScale:         1.1,
		MaxShift:         0.08,
		BrightnessJitter: 0.25,
		BorderWidth:      2.0,
	}
}

// RenderSign draws one sign of the given class as a (3, 32, 32) tensor.
func RenderSign(class int, cfg GTSRBConfig, r *rng.Source) *tensor.Tensor {
	if class < 0 || class >= GTSRBNumClasses {
		panic("dataset: sign class out of range")
	}
	desc := signClasses[class]
	const n = GTSRBImageSize
	img := tensor.New(3, n, n)

	// Background: a random muted colour with vertical gradient.
	bg := rgb{r.Range(0.2, 0.6), r.Range(0.25, 0.65), r.Range(0.2, 0.6)}
	grad := r.Range(-0.15, 0.15)
	for y := 0; y < n; y++ {
		f := 1 + grad*(float64(y)/n-0.5)
		for x := 0; x < n; x++ {
			img.Set(clamp01(bg.r*f), 0, y, x)
			img.Set(clamp01(bg.g*f), 1, y, x)
			img.Set(clamp01(bg.b*f), 2, y, x)
		}
	}

	// Transform the plate polygon into pixel space.
	t := jitteredTransform(n, n, r, cfg.MaxRotation, cfg.MinScale, cfg.MaxScale, cfg.MaxShift)
	poly := shapePoly(desc.shape)
	px := make([]pt, len(poly))
	for i, p := range poly {
		x, y := t.apply(p)
		px[i] = pt{x, y}
	}

	// Paint plate fill and border.
	for y := 0; y < n; y++ {
		for x := 0; x < n; x++ {
			fx, fy := float64(x)+0.5, float64(y)+0.5
			if !insidePoly(px, fx, fy) {
				continue
			}
			col := desc.fill
			if polyEdgeDistance(px, fx, fy) < cfg.BorderWidth {
				col = desc.border
			}
			img.Set(col.r, 0, y, x)
			img.Set(col.g, 1, y, x)
			img.Set(col.b, 2, y, x)
		}
	}

	// Draw the glyph into a mask and composite.
	if strokes := glyphStrokes(desc.glyph); strokes != nil {
		mask := make([]float64, n*n)
		drawStrokes(mask, n, n, strokes, t, 2.2)
		for i, v := range mask {
			if v <= 0 {
				continue
			}
			y, x := i/n, i%n
			img.Set(mix(img.At(0, y, x), desc.glyphCol.r, v), 0, y, x)
			img.Set(mix(img.At(1, y, x), desc.glyphCol.g, v), 1, y, x)
			img.Set(mix(img.At(2, y, x), desc.glyphCol.b, v), 2, y, x)
		}
	}

	// Global brightness jitter and noise.
	bright := 1 + r.Range(-cfg.BrightnessJitter, cfg.BrightnessJitter)
	for i := range img.Data() {
		img.Data()[i] = clamp01(img.Data()[i] * bright)
	}
	addNoise(img.Data(), cfg.Noise, r)
	return img
}

func mix(a, b, t float64) float64 { return a + (b-a)*t }

// GTSRBLike generates a balanced, deterministic GTSRB-like dataset.
func GTSRBLike(nTrain, nVal int, seed uint64) Dataset {
	return GTSRBLikeWithConfig(nTrain, nVal, seed, DefaultGTSRBConfig())
}

// GTSRBLikeWithConfig is GTSRBLike with explicit generation parameters.
func GTSRBLikeWithConfig(nTrain, nVal int, seed uint64, cfg GTSRBConfig) Dataset {
	r := rng.New(seed)
	gen := func(n int, rr *rng.Source) []nn.Sample {
		labels := balancedLabels(n, GTSRBNumClasses, rr)
		out := make([]nn.Sample, n)
		for i, label := range labels {
			out[i] = nn.Sample{Input: RenderSign(label, cfg, rr), Label: label}
		}
		return out
	}
	return Dataset{
		Name:       "gtsrb-like",
		NumClasses: GTSRBNumClasses,
		Train:      gen(nTrain, r.Split()),
		Val:        gen(nVal, r.Split()),
	}
}
