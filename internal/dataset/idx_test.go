package dataset

import (
	"bytes"
	"compress/gzip"
	"os"
	"path/filepath"
	"testing"
)

func TestIDXRoundTrip(t *testing.T) {
	dims := []int{3, 4, 5}
	data := make([]byte, 60)
	for i := range data {
		data[i] = byte(i * 7)
	}
	var buf bytes.Buffer
	if err := WriteIDX(&buf, dims, data); err != nil {
		t.Fatal(err)
	}
	gotDims, gotData, err := ReadIDX(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(gotDims) != 3 || gotDims[0] != 3 || gotDims[1] != 4 || gotDims[2] != 5 {
		t.Fatalf("dims = %v", gotDims)
	}
	for i := range data {
		if gotData[i] != data[i] {
			t.Fatalf("payload byte %d differs", i)
		}
	}
}

func TestReadIDXRejectsBadMagic(t *testing.T) {
	if _, _, err := ReadIDX(bytes.NewReader([]byte{1, 2, 3, 4, 5, 6, 7, 8})); err == nil {
		t.Fatal("bad magic accepted")
	}
}

func TestReadIDXRejectsWrongType(t *testing.T) {
	if _, _, err := ReadIDX(bytes.NewReader([]byte{0, 0, 0x0D, 1, 0, 0, 0, 1, 0, 0, 0, 0})); err == nil {
		t.Fatal("float IDX type accepted")
	}
}

func TestReadIDXRejectsTruncated(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteIDX(&buf, []int{10}, make([]byte, 10)); err != nil {
		t.Fatal(err)
	}
	trunc := buf.Bytes()[:buf.Len()-3]
	if _, _, err := ReadIDX(bytes.NewReader(trunc)); err == nil {
		t.Fatal("truncated stream accepted")
	}
}

func TestWriteIDXValidates(t *testing.T) {
	if err := WriteIDX(&bytes.Buffer{}, []int{2, 2}, make([]byte, 3)); err == nil {
		t.Fatal("size mismatch accepted")
	}
	if err := WriteIDX(&bytes.Buffer{}, nil, nil); err == nil {
		t.Fatal("empty dims accepted")
	}
}

// writeMNISTFixture writes a tiny MNIST-style file quartet under dir,
// gzipped when gz is true.
func writeMNISTFixture(t *testing.T, dir string, gz bool) {
	t.Helper()
	const n, h, w = 6, 4, 4
	images := make([]byte, n*h*w)
	labels := make([]byte, n)
	for i := 0; i < n; i++ {
		labels[i] = byte(i % 3)
		for j := 0; j < h*w; j++ {
			images[i*h*w+j] = byte(i*40 + j)
		}
	}
	write := func(name string, dims []int, data []byte) {
		var buf bytes.Buffer
		if err := WriteIDX(&buf, dims, data); err != nil {
			t.Fatal(err)
		}
		payload := buf.Bytes()
		if gz {
			var zbuf bytes.Buffer
			zw := gzip.NewWriter(&zbuf)
			if _, err := zw.Write(payload); err != nil {
				t.Fatal(err)
			}
			if err := zw.Close(); err != nil {
				t.Fatal(err)
			}
			payload = zbuf.Bytes()
			name += ".gz"
		}
		if err := os.WriteFile(filepath.Join(dir, name), payload, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	write("train-images-idx3-ubyte", []int{n, h, w}, images)
	write("train-labels-idx1-ubyte", []int{n}, labels)
	write("t10k-images-idx3-ubyte", []int{n, h, w}, images)
	write("t10k-labels-idx1-ubyte", []int{n}, labels)
}

func TestLoadIDXDataset(t *testing.T) {
	for _, gz := range []bool{false, true} {
		dir := t.TempDir()
		writeMNISTFixture(t, dir, gz)
		ds, err := LoadIDXDataset(dir, 3)
		if err != nil {
			t.Fatalf("gz=%v: %v", gz, err)
		}
		if len(ds.Train) != 6 || len(ds.Val) != 6 {
			t.Fatalf("gz=%v: sizes %d/%d", gz, len(ds.Train), len(ds.Val))
		}
		s := ds.Train[1]
		if s.Label != 1 {
			t.Fatalf("label = %d", s.Label)
		}
		shape := s.Input.Shape()
		if shape[0] != 1 || shape[1] != 4 || shape[2] != 4 {
			t.Fatalf("shape = %v", shape)
		}
		// Pixel scaling: byte 40 -> 40/255.
		if got := s.Input.Data()[0]; got != 40.0/255 {
			t.Fatalf("pixel = %v", got)
		}
	}
}

func TestLoadIDXDatasetMissingFile(t *testing.T) {
	if _, err := LoadIDXDataset(t.TempDir(), 10); err == nil {
		t.Fatal("missing files accepted")
	}
}

func TestLoadIDXSamplesLabelCountMismatch(t *testing.T) {
	dir := t.TempDir()
	var img, lbl bytes.Buffer
	if err := WriteIDX(&img, []int{2, 2, 2}, make([]byte, 8)); err != nil {
		t.Fatal(err)
	}
	if err := WriteIDX(&lbl, []int{3}, make([]byte, 3)); err != nil {
		t.Fatal(err)
	}
	imgPath := filepath.Join(dir, "img")
	lblPath := filepath.Join(dir, "lbl")
	if err := os.WriteFile(imgPath, img.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(lblPath, lbl.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadIDXSamples(imgPath, lblPath); err == nil {
		t.Fatal("count mismatch accepted")
	}
}
