package dataset

import (
	"napmon/internal/nn"
	"napmon/internal/rng"
	"napmon/internal/tensor"
)

// MNIST-like digits: each class is a hand-designed stroke skeleton in the
// unit square, rasterized at 28×28 with a random affine jitter (rotation,
// scale, shift), random stroke thickness and additive pixel noise. The
// task difficulty tracks the noise/jitter magnitudes; the defaults leave a
// small misclassified tail, like real MNIST does for the paper's network.

// MNISTImageSize is the side length of generated digit images.
const MNISTImageSize = 28

// MNISTNumClasses is the number of digit classes.
const MNISTNumClasses = 10

// digitStrokes defines the skeleton of each digit class.
var digitStrokes = [MNISTNumClasses][]stroke{
	0: {circleStroke(pt{0.5, 0.5}, 0.28, 0.38, 14)},
	1: {{pt{0.38, 0.28}, pt{0.54, 0.12}, pt{0.54, 0.88}}},
	2: {{pt{0.28, 0.3}, pt{0.4, 0.14}, pt{0.62, 0.14}, pt{0.72, 0.3}, pt{0.66, 0.48}, pt{0.3, 0.86}, pt{0.74, 0.86}}},
	3: {{pt{0.3, 0.16}, pt{0.66, 0.16}, pt{0.48, 0.46}, pt{0.7, 0.62}, pt{0.6, 0.86}, pt{0.28, 0.84}}},
	4: {{pt{0.62, 0.88}, pt{0.62, 0.12}, pt{0.26, 0.62}, pt{0.8, 0.62}}},
	5: {{pt{0.72, 0.14}, pt{0.32, 0.14}, pt{0.3, 0.46}, pt{0.62, 0.44}, pt{0.72, 0.62}, pt{0.62, 0.86}, pt{0.28, 0.84}}},
	6: {{pt{0.66, 0.12}, pt{0.42, 0.34}, pt{0.32, 0.62}},
		circleStroke(pt{0.5, 0.68}, 0.19, 0.2, 10)},
	7: {{pt{0.26, 0.14}, pt{0.74, 0.14}, pt{0.44, 0.88}}},
	8: {circleStroke(pt{0.5, 0.3}, 0.17, 0.17, 10),
		circleStroke(pt{0.5, 0.68}, 0.2, 0.2, 10)},
	9: {circleStroke(pt{0.5, 0.32}, 0.19, 0.2, 10),
		{pt{0.68, 0.36}, pt{0.64, 0.66}, pt{0.52, 0.88}}},
}

// circleStroke returns a closed elliptical polyline.
func circleStroke(c pt, rx, ry float64, n int) stroke {
	s := make(stroke, n+1)
	poly := circlePoly(c, 1, n)
	for i, p := range poly {
		s[i] = pt{c.x + (p.x-c.x)*rx, c.y + (p.y-c.y)*ry}
	}
	s[n] = s[0]
	return s
}

// MNISTConfig controls digit generation.
type MNISTConfig struct {
	// Noise is the per-pixel Gaussian noise standard deviation.
	Noise float64
	// MaxRotation is the rotation jitter in radians.
	MaxRotation float64
	// MinScale and MaxScale bound the random anisotropic scaling.
	MinScale, MaxScale float64
	// MaxShift is the translation jitter in unit coordinates.
	MaxShift float64
	// MinThickness and MaxThickness bound the stroke width in pixels.
	MinThickness, MaxThickness float64
}

// DefaultMNISTConfig mirrors the variability of handwritten digits closely
// enough that the Table I network reaches high-but-imperfect accuracy.
func DefaultMNISTConfig() MNISTConfig {
	return MNISTConfig{
		Noise:        0.18,
		MaxRotation:  0.3,
		MinScale:     0.75,
		MaxScale:     1.15,
		MaxShift:     0.08,
		MinThickness: 1.6,
		MaxThickness: 3.4,
	}
}

// RenderDigit draws one digit of the given class as a (1, 28, 28) tensor.
func RenderDigit(class int, cfg MNISTConfig, r *rng.Source) *tensor.Tensor {
	if class < 0 || class >= MNISTNumClasses {
		panic("dataset: digit class out of range")
	}
	img := make([]float64, MNISTImageSize*MNISTImageSize)
	t := jitteredTransform(MNISTImageSize, MNISTImageSize, r,
		cfg.MaxRotation, cfg.MinScale, cfg.MaxScale, cfg.MaxShift)
	thickness := r.Range(cfg.MinThickness, cfg.MaxThickness)
	drawStrokes(img, MNISTImageSize, MNISTImageSize, digitStrokes[class], t, thickness)
	addNoise(img, cfg.Noise, r)
	return tensor.FromSlice(img, 1, MNISTImageSize, MNISTImageSize)
}

// MNISTLike generates a balanced, deterministic MNIST-like dataset with
// nTrain training and nVal validation samples.
func MNISTLike(nTrain, nVal int, seed uint64) Dataset {
	return MNISTLikeWithConfig(nTrain, nVal, seed, DefaultMNISTConfig())
}

// MNISTLikeWithConfig is MNISTLike with explicit generation parameters.
func MNISTLikeWithConfig(nTrain, nVal int, seed uint64, cfg MNISTConfig) Dataset {
	r := rng.New(seed)
	gen := func(n int, rr *rng.Source) []nn.Sample {
		labels := balancedLabels(n, MNISTNumClasses, rr)
		out := make([]nn.Sample, n)
		for i, label := range labels {
			out[i] = nn.Sample{Input: RenderDigit(label, cfg, rr), Label: label}
		}
		return out
	}
	return Dataset{
		Name:       "mnist-like",
		NumClasses: MNISTNumClasses,
		Train:      gen(nTrain, r.Split()),
		Val:        gen(nVal, r.Split()),
	}
}
