package dataset

import (
	"bufio"
	"compress/gzip"
	"encoding/binary"
	"fmt"
	"io"
	"os"
	"strings"

	"napmon/internal/nn"
	"napmon/internal/tensor"
)

// IDX is the file format of the original MNIST distribution
// (train-images-idx3-ubyte etc.). The experiments default to the
// synthetic renderer because this module is built offline, but a user who
// has the real files can load them with LoadIDXDataset and run the same
// monitors — nothing else in the pipeline changes.

// idxMagic checks the 4-byte IDX header: two zero bytes, a type code and
// the dimension count.
const (
	idxTypeUint8 = 0x08
)

// ReadIDX parses an IDX stream, returning the dimension sizes and the raw
// uint8 payload in row-major order. Only the uint8 element type (the one
// MNIST uses) is supported.
func ReadIDX(r io.Reader) (dims []int, data []byte, err error) {
	br := bufio.NewReader(r)
	var header [4]byte
	if _, err := io.ReadFull(br, header[:]); err != nil {
		return nil, nil, fmt.Errorf("dataset: reading IDX header: %w", err)
	}
	if header[0] != 0 || header[1] != 0 {
		return nil, nil, fmt.Errorf("dataset: bad IDX magic % x", header)
	}
	if header[2] != idxTypeUint8 {
		return nil, nil, fmt.Errorf("dataset: unsupported IDX element type %#x", header[2])
	}
	nDims := int(header[3])
	if nDims == 0 || nDims > 4 {
		return nil, nil, fmt.Errorf("dataset: implausible IDX dimension count %d", nDims)
	}
	dims = make([]int, nDims)
	total := 1
	for i := range dims {
		var sz uint32
		if err := binary.Read(br, binary.BigEndian, &sz); err != nil {
			return nil, nil, fmt.Errorf("dataset: reading IDX dimension %d: %w", i, err)
		}
		if sz == 0 || sz > 1<<28 {
			return nil, nil, fmt.Errorf("dataset: implausible IDX dimension %d", sz)
		}
		dims[i] = int(sz)
		total *= int(sz)
	}
	data = make([]byte, total)
	if _, err := io.ReadFull(br, data); err != nil {
		return nil, nil, fmt.Errorf("dataset: reading IDX payload: %w", err)
	}
	return dims, data, nil
}

// openMaybeGzip opens path, transparently decompressing .gz files.
func openMaybeGzip(path string) (io.ReadCloser, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	if !strings.HasSuffix(path, ".gz") {
		return f, nil
	}
	gz, err := gzip.NewReader(f)
	if err != nil {
		f.Close()
		return nil, err
	}
	return &gzipFile{gz: gz, f: f}, nil
}

type gzipFile struct {
	gz *gzip.Reader
	f  *os.File
}

func (g *gzipFile) Read(p []byte) (int, error) { return g.gz.Read(p) }

func (g *gzipFile) Close() error {
	gzErr := g.gz.Close()
	fErr := g.f.Close()
	if gzErr != nil {
		return gzErr
	}
	return fErr
}

// LoadIDXSamples reads an MNIST-style image/label file pair (optionally
// gzipped) into samples with pixel values scaled to [0, 1] and shape
// (1, rows, cols).
func LoadIDXSamples(imagePath, labelPath string) ([]nn.Sample, error) {
	ir, err := openMaybeGzip(imagePath)
	if err != nil {
		return nil, err
	}
	defer ir.Close()
	imgDims, imgData, err := ReadIDX(ir)
	if err != nil {
		return nil, fmt.Errorf("dataset: %s: %w", imagePath, err)
	}
	if len(imgDims) != 3 {
		return nil, fmt.Errorf("dataset: %s: want 3-D image file, got %d-D", imagePath, len(imgDims))
	}
	lr, err := openMaybeGzip(labelPath)
	if err != nil {
		return nil, err
	}
	defer lr.Close()
	lblDims, lblData, err := ReadIDX(lr)
	if err != nil {
		return nil, fmt.Errorf("dataset: %s: %w", labelPath, err)
	}
	if len(lblDims) != 1 || lblDims[0] != imgDims[0] {
		return nil, fmt.Errorf("dataset: label count %v does not match image count %d",
			lblDims, imgDims[0])
	}
	n, h, w := imgDims[0], imgDims[1], imgDims[2]
	samples := make([]nn.Sample, n)
	for i := 0; i < n; i++ {
		px := make([]float64, h*w)
		base := i * h * w
		for j := range px {
			px[j] = float64(imgData[base+j]) / 255
		}
		samples[i] = nn.Sample{
			Input: tensor.FromSlice(px, 1, h, w),
			Label: int(lblData[i]),
		}
	}
	return samples, nil
}

// LoadIDXDataset assembles a Dataset from the four canonical MNIST files
// under dir (gzipped or not): train-images-idx3-ubyte[.gz],
// train-labels-idx1-ubyte[.gz], t10k-images-idx3-ubyte[.gz],
// t10k-labels-idx1-ubyte[.gz].
func LoadIDXDataset(dir string, numClasses int) (Dataset, error) {
	find := func(stem string) (string, error) {
		for _, suffix := range []string{"", ".gz"} {
			p := dir + "/" + stem + suffix
			if _, err := os.Stat(p); err == nil {
				return p, nil
			}
		}
		return "", fmt.Errorf("dataset: %s not found under %s", stem, dir)
	}
	trainImg, err := find("train-images-idx3-ubyte")
	if err != nil {
		return Dataset{}, err
	}
	trainLbl, err := find("train-labels-idx1-ubyte")
	if err != nil {
		return Dataset{}, err
	}
	valImg, err := find("t10k-images-idx3-ubyte")
	if err != nil {
		return Dataset{}, err
	}
	valLbl, err := find("t10k-labels-idx1-ubyte")
	if err != nil {
		return Dataset{}, err
	}
	train, err := LoadIDXSamples(trainImg, trainLbl)
	if err != nil {
		return Dataset{}, err
	}
	val, err := LoadIDXSamples(valImg, valLbl)
	if err != nil {
		return Dataset{}, err
	}
	return Dataset{Name: "mnist-idx", NumClasses: numClasses, Train: train, Val: val}, nil
}

// WriteIDX emits an IDX stream (the inverse of ReadIDX), used by tests
// and by tools exporting synthetic data for external comparison.
func WriteIDX(w io.Writer, dims []int, data []byte) error {
	if len(dims) == 0 || len(dims) > 4 {
		return fmt.Errorf("dataset: WriteIDX needs 1-4 dimensions")
	}
	total := 1
	for _, d := range dims {
		total *= d
	}
	if total != len(data) {
		return fmt.Errorf("dataset: WriteIDX dims %v need %d bytes, got %d", dims, total, len(data))
	}
	bw := bufio.NewWriter(w)
	if _, err := bw.Write([]byte{0, 0, idxTypeUint8, byte(len(dims))}); err != nil {
		return err
	}
	for _, d := range dims {
		if err := binary.Write(bw, binary.BigEndian, uint32(d)); err != nil {
			return err
		}
	}
	if _, err := bw.Write(data); err != nil {
		return err
	}
	return bw.Flush()
}
