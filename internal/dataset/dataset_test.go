package dataset

import (
	"math"
	"testing"

	"napmon/internal/nn"
	"napmon/internal/rng"
)

func TestMNISTDeterministic(t *testing.T) {
	a := MNISTLike(50, 20, 42)
	b := MNISTLike(50, 20, 42)
	for i := range a.Train {
		if a.Train[i].Label != b.Train[i].Label {
			t.Fatal("labels differ across identical seeds")
		}
		for j := range a.Train[i].Input.Data() {
			if a.Train[i].Input.Data()[j] != b.Train[i].Input.Data()[j] {
				t.Fatal("pixels differ across identical seeds")
			}
		}
	}
}

func TestMNISTSeedsDiffer(t *testing.T) {
	a := MNISTLike(10, 0, 1)
	b := MNISTLike(10, 0, 2)
	same := true
	for i := range a.Train {
		for j := range a.Train[i].Input.Data() {
			if a.Train[i].Input.Data()[j] != b.Train[i].Input.Data()[j] {
				same = false
			}
		}
	}
	if same {
		t.Fatal("different seeds produced identical datasets")
	}
}

func TestMNISTShapesAndRange(t *testing.T) {
	ds := MNISTLike(30, 10, 7)
	if ds.NumClasses != 10 {
		t.Fatalf("NumClasses = %d", ds.NumClasses)
	}
	for _, s := range append(ds.Train, ds.Val...) {
		shape := s.Input.Shape()
		if len(shape) != 3 || shape[0] != 1 || shape[1] != 28 || shape[2] != 28 {
			t.Fatalf("bad shape %v", shape)
		}
		for _, v := range s.Input.Data() {
			if v < 0 || v > 1 {
				t.Fatalf("pixel out of [0,1]: %v", v)
			}
		}
		if s.Label < 0 || s.Label >= 10 {
			t.Fatalf("bad label %d", s.Label)
		}
	}
}

func TestMNISTBalanced(t *testing.T) {
	ds := MNISTLike(200, 100, 3)
	counts := ClassCounts(ds.Train, 10)
	for c, n := range counts {
		if n != 20 {
			t.Fatalf("class %d has %d samples, want 20", c, n)
		}
	}
}

func TestMNISTDigitsDistinct(t *testing.T) {
	// Without jitter or noise, the mean images of different classes must
	// differ substantially — sanity that classes are separable.
	cfg := MNISTConfig{MinScale: 1, MaxScale: 1, MinThickness: 2.2, MaxThickness: 2.2}
	r := rng.New(1)
	var imgs [10][]float64
	for c := 0; c < 10; c++ {
		imgs[c] = RenderDigit(c, cfg, r).Data()
	}
	for a := 0; a < 10; a++ {
		for b := a + 1; b < 10; b++ {
			diff := 0.0
			for i := range imgs[a] {
				diff += math.Abs(imgs[a][i] - imgs[b][i])
			}
			if diff < 10 {
				t.Fatalf("digits %d and %d nearly identical (L1 diff %v)", a, b, diff)
			}
		}
	}
}

func TestMNISTNonEmptyInk(t *testing.T) {
	r := rng.New(5)
	cfg := DefaultMNISTConfig()
	for c := 0; c < 10; c++ {
		for trial := 0; trial < 10; trial++ {
			img := RenderDigit(c, cfg, r)
			if img.Sum() < 5 {
				t.Fatalf("digit %d rendered nearly blank (sum %v)", c, img.Sum())
			}
		}
	}
}

func TestGTSRBShapesAndDeterminism(t *testing.T) {
	a := GTSRBLike(86, 43, 11)
	b := GTSRBLike(86, 43, 11)
	if a.NumClasses != 43 {
		t.Fatalf("NumClasses = %d", a.NumClasses)
	}
	for i := range a.Train {
		sa, sb := a.Train[i], b.Train[i]
		if sa.Label != sb.Label {
			t.Fatal("labels differ")
		}
		shape := sa.Input.Shape()
		if len(shape) != 3 || shape[0] != 3 || shape[1] != 32 || shape[2] != 32 {
			t.Fatalf("bad shape %v", shape)
		}
		for j := range sa.Input.Data() {
			if sa.Input.Data()[j] != sb.Input.Data()[j] {
				t.Fatal("pixels differ across identical seeds")
			}
		}
	}
}

func TestGTSRBClassDescriptorsDistinct(t *testing.T) {
	seen := map[signDesc]bool{}
	for c, d := range signClasses {
		if seen[d] {
			t.Fatalf("class %d duplicates another descriptor %+v", c, d)
		}
		seen[d] = true
	}
}

func TestStopSignIsRedOctagon(t *testing.T) {
	d := signClasses[StopSignClass]
	if d.shape != shapeOctagon || d.fill != colRed {
		t.Fatalf("stop sign descriptor = %+v", d)
	}
}

func TestGTSRBSignsDistinct(t *testing.T) {
	// Jitter-free renders of a few class pairs must differ meaningfully.
	cfg := GTSRBConfig{MinScale: 1, MaxScale: 1, BorderWidth: 2}
	r := rng.New(2)
	a := RenderSign(0, cfg, r).Data()
	for _, c := range []int{1, 14, 20, 42} {
		b := RenderSign(c, cfg, rng.New(2)).Data()
		diff := 0.0
		for i := range a {
			diff += math.Abs(a[i] - b[i])
		}
		if diff < 5 {
			t.Fatalf("classes 0 and %d nearly identical (L1 %v)", c, diff)
		}
	}
}

func TestClassCountsAndOfClass(t *testing.T) {
	ds := GTSRBLike(86, 0, 4)
	counts := ClassCounts(ds.Train, 43)
	total := 0
	for _, n := range counts {
		total += n
	}
	if total != 86 {
		t.Fatalf("counts sum to %d", total)
	}
	stop := OfClass(ds.Train, StopSignClass)
	if len(stop) != counts[StopSignClass] {
		t.Fatalf("OfClass returned %d, counts say %d", len(stop), counts[StopSignClass])
	}
	for _, s := range stop {
		if s.Label != StopSignClass {
			t.Fatal("OfClass returned wrong label")
		}
	}
}

func TestApplyShiftPreservesOriginals(t *testing.T) {
	ds := MNISTLike(10, 0, 9)
	orig := ds.Train[0].Input.Clone()
	shifted := ApplyShift(ds.Train, ShiftNoise, 1)
	for i := range orig.Data() {
		if ds.Train[0].Input.Data()[i] != orig.Data()[i] {
			t.Fatal("ApplyShift mutated the source samples")
		}
	}
	if len(shifted) != len(ds.Train) {
		t.Fatal("length changed")
	}
}

func TestShiftsActuallyChangeImages(t *testing.T) {
	ds := MNISTLike(5, 0, 10)
	for _, kind := range AllShifts() {
		shifted := ApplyShift(ds.Train, kind, 2)
		diff := 0.0
		for i := range ds.Train {
			for j := range ds.Train[i].Input.Data() {
				diff += math.Abs(ds.Train[i].Input.Data()[j] - shifted[i].Input.Data()[j])
			}
		}
		if diff < 1 {
			t.Fatalf("shift %s left images unchanged", kind)
		}
	}
}

func TestShiftRangeStaysValid(t *testing.T) {
	ds := GTSRBLike(10, 0, 11)
	for _, kind := range []ShiftKind{ShiftNoise, ShiftDark, ShiftInvert} {
		for _, s := range ApplyShift(ds.Train, kind, 3) {
			for _, v := range s.Input.Data() {
				if kind == ShiftNoise && (v < 0 || v > 1) {
					t.Fatalf("shift %s produced out-of-range pixel %v", kind, v)
				}
			}
		}
	}
}

func TestNovelDigits(t *testing.T) {
	novel := NovelDigits(20, 12)
	if len(novel) != 20 {
		t.Fatalf("got %d novel samples", len(novel))
	}
	for _, s := range novel {
		if s.Input.Dim(1) != 28 || s.Input.Sum() < 3 {
			t.Fatal("novel digit malformed or blank")
		}
	}
}

func TestSmallDenseNetLearnsMNISTLike(t *testing.T) {
	// End-to-end learnability check with a small fully-connected net:
	// must beat 70% validation accuracy quickly (the CNN does far better;
	// this guards against an unlearnable generator).
	if testing.Short() {
		t.Skip("training test skipped in -short mode")
	}
	ds := MNISTLike(1200, 300, 20)
	r := rng.New(21)
	net := nn.New(
		nn.NewFlatten(),
		nn.NewDense(28*28, 64, r), nn.NewReLU(),
		nn.NewDense(64, 10, r),
	)
	nn.Train(net, ds.Train, nn.TrainConfig{Epochs: 8, BatchSize: 32, LR: 0.05, Seed: 22})
	if acc := nn.Accuracy(net, ds.Val); acc < 0.7 {
		t.Fatalf("validation accuracy %v too low — generator not learnable", acc)
	}
}

func BenchmarkRenderDigit(b *testing.B) {
	cfg := DefaultMNISTConfig()
	r := rng.New(1)
	for i := 0; i < b.N; i++ {
		RenderDigit(i%10, cfg, r)
	}
}

func BenchmarkRenderSign(b *testing.B) {
	cfg := DefaultGTSRBConfig()
	r := rng.New(1)
	for i := 0; i < b.N; i++ {
		RenderSign(i%43, cfg, r)
	}
}
