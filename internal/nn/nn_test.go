package nn

import (
	"bytes"
	"math"
	"testing"

	"napmon/internal/rng"
	"napmon/internal/tensor"
)

func randInput(r *rng.Source, shape ...int) *tensor.Tensor {
	t := tensor.New(shape...)
	for i := range t.Data() {
		t.Data()[i] = r.Range(-1, 1)
	}
	return t
}

// lossOf runs a forward pass and returns the cross-entropy loss, used as
// the scalar function for finite-difference checks.
func lossOf(net *Network, x *tensor.Tensor, label int) float64 {
	logits := net.forward(x, false)
	loss, _ := SoftmaxCrossEntropy(logits, label)
	return loss
}

// checkParamGradients verifies every parameter gradient of net against a
// central finite difference of the loss.
func checkParamGradients(t *testing.T, net *Network, x *tensor.Tensor, label int, tol float64) {
	t.Helper()
	net.ZeroGrads()
	net.TrainStep(x, label)
	const eps = 1e-6
	for _, p := range net.Params() {
		data := p.Value.Data()
		grad := p.Grad.Data()
		// Sample a few indices per parameter to keep the test fast.
		step := len(data)/7 + 1
		for i := 0; i < len(data); i += step {
			orig := data[i]
			data[i] = orig + eps
			up := lossOf(net, x, label)
			data[i] = orig - eps
			down := lossOf(net, x, label)
			data[i] = orig
			want := (up - down) / (2 * eps)
			if math.Abs(grad[i]-want) > tol*(1+math.Abs(want)) {
				t.Fatalf("%s grad[%d] = %v, finite diff = %v", p.Name, i, grad[i], want)
			}
		}
	}
}

func TestDenseForward(t *testing.T) {
	r := rng.New(1)
	d := NewDense(3, 2, r)
	copy(d.w.Data(), []float64{1, 2, 3, 4, 5, 6})
	copy(d.b.Data(), []float64{0.5, -0.5})
	y := d.Forward(tensor.FromSlice([]float64{1, 0, -1}, 3), false)
	if y.Data()[0] != 1+0-3+0.5 || y.Data()[1] != 4+0-6-0.5 {
		t.Fatalf("Dense forward = %v", y.Data())
	}
}

func TestDenseGradients(t *testing.T) {
	r := rng.New(2)
	net := New(NewDense(6, 5, r), NewReLU(), NewDense(5, 3, r))
	checkParamGradients(t, net, randInput(r, 6), 1, 1e-4)
}

func TestReLUForward(t *testing.T) {
	l := NewReLU()
	y := l.Forward(tensor.FromSlice([]float64{-1, 0, 2.5}, 3), false)
	want := []float64{0, 0, 2.5}
	for i, w := range want {
		if y.Data()[i] != w {
			t.Fatalf("ReLU = %v", y.Data())
		}
	}
}

func TestReLUBackwardMask(t *testing.T) {
	l := NewReLU()
	l.Forward(tensor.FromSlice([]float64{-1, 3}, 2), true)
	g := l.Backward(tensor.FromSlice([]float64{5, 7}, 2))
	if g.Data()[0] != 0 || g.Data()[1] != 7 {
		t.Fatalf("ReLU backward = %v", g.Data())
	}
}

func TestConvGradients(t *testing.T) {
	r := rng.New(3)
	net := New(
		NewConv2D(2, 1, 3, 3, 1, r),
		NewReLU(),
		NewFlatten(),
		NewDense(2*4*4, 3, r),
	)
	checkParamGradients(t, net, randInput(r, 1, 6, 6), 2, 1e-4)
}

func TestConvInputGradient(t *testing.T) {
	// Check d loss / d input through a conv by finite differences.
	r := rng.New(4)
	conv := NewConv2D(2, 1, 3, 3, 1, r)
	net := New(conv, NewFlatten(), NewDense(2*3*3, 2, r))
	x := randInput(r, 1, 5, 5)
	net.ZeroGrads()

	logits := net.forward(x, true)
	_, grad := SoftmaxCrossEntropy(logits, 0)
	g := grad
	for i := net.NumLayers() - 1; i >= 0; i-- {
		g = net.Layer(i).Backward(g)
	}
	const eps = 1e-6
	for _, i := range []int{0, 7, 13, 24} {
		orig := x.Data()[i]
		x.Data()[i] = orig + eps
		up := lossOf(net, x, 0)
		x.Data()[i] = orig - eps
		down := lossOf(net, x, 0)
		x.Data()[i] = orig
		want := (up - down) / (2 * eps)
		if math.Abs(g.Data()[i]-want) > 1e-4*(1+math.Abs(want)) {
			t.Fatalf("input grad[%d] = %v, finite diff %v", i, g.Data()[i], want)
		}
	}
}

func TestMaxPoolGradients(t *testing.T) {
	r := rng.New(5)
	net := New(
		NewConv2D(2, 1, 3, 3, 1, r),
		NewMaxPool(2),
		NewFlatten(),
		NewDense(2*3*3, 2, r),
	)
	checkParamGradients(t, net, randInput(r, 1, 8, 8), 1, 1e-4)
}

func TestBatchNormGradients(t *testing.T) {
	r := rng.New(6)
	net := New(
		NewConv2D(3, 1, 3, 3, 1, r),
		NewBatchNorm(3),
		NewReLU(),
		NewFlatten(),
		NewDense(3*4*4, 2, r),
	)
	x := randInput(r, 1, 6, 6)
	// Warm the running statistics, then freeze behaviour is consistent.
	for i := 0; i < 5; i++ {
		net.forward(x, true)
	}
	checkParamGradients(t, net, x, 1, 1e-3)
}

func TestBatchNormNormalizes(t *testing.T) {
	r := rng.New(7)
	bn := NewBatchNorm(1)
	x := tensor.New(1, 4, 4)
	for i := range x.Data() {
		x.Data()[i] = r.NormScaled(5, 2)
	}
	// Drive running stats toward the sample stats.
	for i := 0; i < 200; i++ {
		bn.Forward(x, true)
	}
	y := bn.Forward(x, false)
	mean := y.Sum() / float64(y.Len())
	if math.Abs(mean) > 0.05 {
		t.Fatalf("BatchNorm output mean = %v, want about 0", mean)
	}
}

func TestFlattenRoundTrip(t *testing.T) {
	l := NewFlatten()
	x := randInput(rng.New(8), 2, 3, 4)
	y := l.Forward(x, true)
	if y.Rank() != 1 || y.Len() != 24 {
		t.Fatalf("Flatten shape = %v", y.Shape())
	}
	g := l.Backward(y)
	if !g.SameShape(x) {
		t.Fatalf("Flatten backward shape = %v", g.Shape())
	}
}

func TestSoftmaxProperties(t *testing.T) {
	logits := tensor.FromSlice([]float64{1, 2, 3}, 3)
	p := Softmax(logits)
	sum := 0.0
	for _, v := range p {
		if v <= 0 || v >= 1 {
			t.Fatalf("softmax value out of (0,1): %v", v)
		}
		sum += v
	}
	if math.Abs(sum-1) > 1e-12 {
		t.Fatalf("softmax sums to %v", sum)
	}
	if !(p[2] > p[1] && p[1] > p[0]) {
		t.Fatal("softmax not order preserving")
	}
}

func TestSoftmaxStability(t *testing.T) {
	logits := tensor.FromSlice([]float64{1000, 1001, 999}, 3)
	p := Softmax(logits)
	for _, v := range p {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			t.Fatalf("softmax overflowed: %v", p)
		}
	}
}

func TestCrossEntropyGradient(t *testing.T) {
	logits := tensor.FromSlice([]float64{0.5, -0.2, 1.0}, 3)
	_, grad := SoftmaxCrossEntropy(logits, 2)
	p := Softmax(logits)
	for i := range p {
		want := p[i]
		if i == 2 {
			want -= 1
		}
		if math.Abs(grad.Data()[i]-want) > 1e-12 {
			t.Fatalf("CE grad[%d] = %v, want %v", i, grad.Data()[i], want)
		}
	}
}

func TestTrainLearnsSeparableProblem(t *testing.T) {
	// Two Gaussian blobs in 4-D must be learnable to high accuracy.
	r := rng.New(9)
	var samples []Sample
	for i := 0; i < 400; i++ {
		label := i % 2
		x := tensor.New(4)
		for j := range x.Data() {
			center := -1.0
			if label == 1 {
				center = 1.0
			}
			x.Data()[j] = r.NormScaled(center, 0.5)
		}
		samples = append(samples, Sample{Input: x, Label: label})
	}
	net := New(NewDense(4, 8, r), NewReLU(), NewDense(8, 2, r))
	stats := Train(net, samples, TrainConfig{Epochs: 10, BatchSize: 16, LR: 0.05, Seed: 1})
	last := stats[len(stats)-1]
	if last.Accuracy < 0.97 {
		t.Fatalf("final train accuracy = %v, want >= 0.97", last.Accuracy)
	}
	if last.Loss >= stats[0].Loss {
		t.Fatalf("loss did not decrease: %v -> %v", stats[0].Loss, last.Loss)
	}
	if acc := Accuracy(net, samples); acc < 0.97 {
		t.Fatalf("Accuracy() = %v, want >= 0.97", acc)
	}
}

func TestTrainXOR(t *testing.T) {
	// XOR requires the hidden layer, so this catches broken backprop.
	r := rng.New(10)
	var samples []Sample
	pts := [][2]float64{{0, 0}, {0, 1}, {1, 0}, {1, 1}}
	for rep := 0; rep < 50; rep++ {
		for _, p := range pts {
			label := 0
			if (p[0] > 0.5) != (p[1] > 0.5) {
				label = 1
			}
			x := tensor.FromSlice([]float64{p[0] + r.NormScaled(0, 0.05), p[1] + r.NormScaled(0, 0.05)}, 2)
			samples = append(samples, Sample{Input: x, Label: label})
		}
	}
	net := New(NewDense(2, 12, r), NewReLU(), NewDense(12, 2, r))
	stats := Train(net, samples, TrainConfig{Epochs: 60, BatchSize: 8, LR: 0.1, Seed: 2})
	if acc := stats[len(stats)-1].Accuracy; acc < 0.95 {
		t.Fatalf("XOR accuracy = %v, want >= 0.95", acc)
	}
}

func TestForwardCapture(t *testing.T) {
	r := rng.New(11)
	net := New(NewDense(4, 6, r), NewReLU(), NewDense(6, 3, r))
	x := randInput(r, 4)
	logits, captured := net.ForwardCapture(x, 1)
	if captured.Len() != 6 {
		t.Fatalf("captured %d elements, want 6", captured.Len())
	}
	for _, v := range captured.Data() {
		if v < 0 {
			t.Fatal("captured ReLU output has negative value")
		}
	}
	plain := net.Forward(x)
	for i := range plain.Data() {
		if plain.Data()[i] != logits.Data()[i] {
			t.Fatal("ForwardCapture changed the logits")
		}
	}
}

func TestGradientAtLayerMatchesWeights(t *testing.T) {
	// Paper's special case: monitoring the layer immediately before a
	// linear output layer, the gradient ∂n_c/∂n_i equals the connecting
	// weight W[c][i] wherever the monitored activation is positive... but
	// since we take the gradient at the *output of the ReLU'd layer*, it
	// is exactly the weight row regardless of sign.
	r := rng.New(12)
	hidden := NewDense(5, 4, r)
	out := NewDense(4, 3, r)
	net := New(hidden, NewReLU(), out)
	x := randInput(r, 5)
	const class = 2
	g := net.GradientAtLayer(x, class, 1) // gradient at ReLU output
	for i := 0; i < 4; i++ {
		want := out.Weights().At(class, i)
		if math.Abs(g.Data()[i]-want) > 1e-12 {
			t.Fatalf("gradient[%d] = %v, want weight %v", i, g.Data()[i], want)
		}
	}
}

func TestGradientAtLayerFiniteDiff(t *testing.T) {
	// General case: two layers above the monitored one.
	r := rng.New(13)
	net := New(NewDense(4, 6, r), NewReLU(), NewDense(6, 5, r), NewReLU(), NewDense(5, 3, r))
	x := randInput(r, 4)
	const class, layer = 1, 1
	g := net.GradientAtLayer(x, class, layer)

	// Finite difference: perturb the captured activation by re-running the
	// tail of the network manually.
	tail := func(h *tensor.Tensor) float64 {
		y := h
		for i := layer + 1; i < net.NumLayers(); i++ {
			y = net.Layer(i).Forward(y, false)
		}
		return y.Data()[class]
	}
	_, captured := net.ForwardCapture(x, layer)
	const eps = 1e-6
	for i := 0; i < captured.Len(); i++ {
		h := captured.Clone()
		h.Data()[i] += eps
		up := tail(h)
		h.Data()[i] -= 2 * eps
		down := tail(h)
		want := (up - down) / (2 * eps)
		if math.Abs(g.Data()[i]-want) > 1e-5*(1+math.Abs(want)) {
			t.Fatalf("gradient[%d] = %v, finite diff %v", i, g.Data()[i], want)
		}
	}
}

func TestBuildFromSpecs(t *testing.T) {
	specs := []Spec{
		{Kind: KindConv, Out: 4, InC: 1, KH: 3, KW: 3, Stride: 1},
		{Kind: KindBN, Ch: 4},
		{Kind: KindReLU},
		{Kind: KindMaxPool, Size: 2},
		{Kind: KindFlatten},
		{Kind: KindDense, In: 4 * 3 * 3, Out: 5},
	}
	net, err := Build(specs, rng.New(14))
	if err != nil {
		t.Fatal(err)
	}
	y := net.Forward(randInput(rng.New(15), 1, 8, 8))
	if y.Len() != 5 {
		t.Fatalf("output length = %d, want 5", y.Len())
	}
	got := net.Specs()
	for i := range specs {
		if got[i] != specs[i] {
			t.Fatalf("spec %d round-trip: %+v != %+v", i, got[i], specs[i])
		}
	}
}

func TestBuildRejectsUnknownKind(t *testing.T) {
	if _, err := Build([]Spec{{Kind: "transformer"}}, rng.New(1)); err == nil {
		t.Fatal("expected error for unknown layer kind")
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	r := rng.New(16)
	net := New(
		NewConv2D(3, 1, 3, 3, 1, r),
		NewBatchNorm(3),
		NewReLU(),
		NewMaxPool(2),
		NewFlatten(),
		NewDense(3*3*3, 4, r),
	)
	x := randInput(r, 1, 8, 8)
	// Give BN non-trivial running stats.
	net.forward(x, true)
	want := net.Forward(x)

	var buf bytes.Buffer
	if err := net.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	got := loaded.Forward(x)
	for i := range want.Data() {
		if want.Data()[i] != got.Data()[i] {
			t.Fatalf("logit %d differs after round trip: %v vs %v",
				i, want.Data()[i], got.Data()[i])
		}
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	if _, err := Load(bytes.NewReader([]byte("not a model\n"))); err == nil {
		t.Fatal("expected error")
	}
}

func TestCloneSharedConcurrentInference(t *testing.T) {
	r := rng.New(17)
	net := New(NewDense(8, 16, r), NewReLU(), NewDense(16, 4, r))
	var samples []Sample
	for i := 0; i < 200; i++ {
		samples = append(samples, Sample{Input: randInput(r, 8), Label: i % 4})
	}
	// Sequential reference.
	want := make([]int, len(samples))
	for i, s := range samples {
		want[i] = net.Predict(s.Input)
	}
	got := ParallelMap(net, samples, func(n *Network, s Sample) int {
		return n.Predict(s.Input)
	})
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("parallel prediction %d = %d, sequential = %d", i, got[i], want[i])
		}
	}
}

func TestParallelCountMatchesSequential(t *testing.T) {
	r := rng.New(18)
	net := New(NewDense(4, 8, r), NewReLU(), NewDense(8, 2, r))
	var samples []Sample
	for i := 0; i < 101; i++ {
		samples = append(samples, Sample{Input: randInput(r, 4), Label: i % 2})
	}
	seq := 0
	for _, s := range samples {
		if net.Predict(s.Input) == s.Label {
			seq++
		}
	}
	par := ParallelCount(net, samples, func(n *Network, s Sample) bool {
		return n.Predict(s.Input) == s.Label
	})
	if par != seq {
		t.Fatalf("ParallelCount = %d, sequential = %d", par, seq)
	}
}

// TestParallelMapSliceEmpty is the regression guard for degenerate
// batches: no items must yield an empty but non-nil result, without
// calling f (there are no workers to spin up and nothing to clone).
func TestParallelMapSliceEmpty(t *testing.T) {
	net := New(NewDense(2, 2, rng.New(20)))
	called := false
	out := ParallelMapSlice(net, nil, func(*Network, int) int {
		called = true
		return 0
	})
	if out == nil {
		t.Fatal("ParallelMapSlice(nil items) returned nil, want empty non-nil")
	}
	if len(out) != 0 || called {
		t.Fatalf("ParallelMapSlice(nil items): len=%d called=%v", len(out), called)
	}
}

func TestNetworkString(t *testing.T) {
	r := rng.New(19)
	net := New(NewConv2D(40, 1, 5, 5, 1, r), NewReLU(), NewMaxPool(2))
	if s := net.String(); s != "conv(40), relu, maxpool(2)" {
		t.Fatalf("String() = %q", s)
	}
}

func BenchmarkForwardMNISTArch(b *testing.B) {
	r := rng.New(1)
	net := New(
		NewConv2D(40, 1, 5, 5, 1, r), NewReLU(), NewMaxPool(2),
		NewConv2D(20, 40, 5, 5, 1, r), NewReLU(), NewMaxPool(2),
		NewFlatten(),
		NewDense(320, 320, r), NewReLU(),
		NewDense(320, 160, r), NewReLU(),
		NewDense(160, 80, r), NewReLU(),
		NewDense(80, 40, r), NewReLU(),
		NewDense(40, 10, r),
	)
	x := randInput(r, 1, 28, 28)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		net.Forward(x)
	}
}

func BenchmarkTrainStepMNISTArch(b *testing.B) {
	r := rng.New(1)
	net := New(
		NewConv2D(40, 1, 5, 5, 1, r), NewReLU(), NewMaxPool(2),
		NewConv2D(20, 40, 5, 5, 1, r), NewReLU(), NewMaxPool(2),
		NewFlatten(),
		NewDense(320, 320, r), NewReLU(),
		NewDense(320, 160, r), NewReLU(),
		NewDense(160, 80, r), NewReLU(),
		NewDense(80, 40, r), NewReLU(),
		NewDense(40, 10, r),
	)
	x := randInput(r, 1, 28, 28)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		net.TrainStep(x, i%10)
	}
}
