// Package nn is a from-scratch neural-network library sufficient to train
// and run the paper's networks (Table I): 2-D convolutions, max pooling,
// batch normalization, fully-connected layers and ReLU, with SGD+momentum
// training via backpropagation, model serialization and the two facilities
// the monitor needs — capturing hidden-layer activations during inference
// and computing output-to-neuron gradients for neuron selection.
//
// Layers process one sample at a time; mini-batch training accumulates
// gradients across samples before each optimizer step. BatchNorm therefore
// normalizes with running statistics (updated online during training, used
// frozen in the backward pass), a standard small-batch approximation that
// preserves the Table I architecture.
package nn

import (
	"fmt"
	"math"

	"napmon/internal/rng"
	"napmon/internal/tensor"
)

// Param couples a learnable tensor with its gradient accumulator.
type Param struct {
	Name  string
	Value *tensor.Tensor
	Grad  *tensor.Tensor
}

// Layer is one differentiable stage of a network. Forward with train=true
// caches whatever Backward needs; Backward consumes the cache from the most
// recent training-mode Forward and accumulates parameter gradients.
type Layer interface {
	// Name returns a short human-readable identifier such as "fc(84)".
	Name() string
	// Forward applies the layer. With train=false no state is cached and
	// (for BatchNorm) inference statistics are used.
	Forward(x *tensor.Tensor, train bool) *tensor.Tensor
	// ForwardBatch applies the layer to a whole batch stacked along a
	// leading dimension: x has shape (B, per-sample shape...) and the
	// result keeps the batch dimension first. It is inference-only (no
	// caching, BatchNorm uses running statistics), draws every scratch
	// and output buffer from pool, and touches no per-layer mutable
	// state — so unlike Forward it is safe to call concurrently on the
	// same layer. Row b of the output is bit-identical to
	// Forward(sample b); see batch.go.
	ForwardBatch(x *tensor.Tensor, pool *tensor.Pool) *tensor.Tensor
	// Backward propagates gradOut (gradient of the loss with respect to
	// this layer's output) to the layer input, accumulating parameter
	// gradients along the way.
	Backward(gradOut *tensor.Tensor) *tensor.Tensor
	// Params returns the learnable parameters, empty for stateless layers.
	Params() []Param
	// Spec returns the serializable configuration of the layer.
	Spec() Spec
	// clone returns a copy sharing parameter tensors but owning its own
	// forward caches, so clones can run inference concurrently.
	clone() Layer
}

// Spec is the serializable configuration of one layer. Kind selects the
// layer type; the remaining fields are interpreted per kind.
type Spec struct {
	Kind   string `json:"kind"`
	In     int    `json:"in,omitempty"`     // dense: input width
	Out    int    `json:"out,omitempty"`    // dense: output width; conv: out channels
	InC    int    `json:"inC,omitempty"`    // conv: input channels
	KH     int    `json:"kh,omitempty"`     // conv: kernel height
	KW     int    `json:"kw,omitempty"`     // conv: kernel width
	Stride int    `json:"stride,omitempty"` // conv
	Size   int    `json:"size,omitempty"`   // maxpool window
	Ch     int    `json:"ch,omitempty"`     // batchnorm channels
}

// Layer kind identifiers used in Spec.Kind.
const (
	KindConv    = "conv"
	KindDense   = "dense"
	KindReLU    = "relu"
	KindMaxPool = "maxpool"
	KindBN      = "batchnorm"
	KindFlatten = "flatten"
)

// buildLayer constructs a freshly initialized layer from its spec.
func buildLayer(s Spec, r *rng.Source) (Layer, error) {
	switch s.Kind {
	case KindConv:
		return NewConv2D(s.Out, s.InC, s.KH, s.KW, s.Stride, r), nil
	case KindDense:
		return NewDense(s.In, s.Out, r), nil
	case KindReLU:
		return NewReLU(), nil
	case KindMaxPool:
		return NewMaxPool(s.Size), nil
	case KindBN:
		return NewBatchNorm(s.Ch), nil
	case KindFlatten:
		return NewFlatten(), nil
	default:
		return nil, fmt.Errorf("nn: unknown layer kind %q", s.Kind)
	}
}

// heInit fills t with He-normal initialization for the given fan-in, the
// standard choice for ReLU networks.
func heInit(t *tensor.Tensor, fanIn int, r *rng.Source) {
	stddev := 0.0
	if fanIn > 0 {
		stddev = math.Sqrt(2.0 / float64(fanIn))
	}
	for i := range t.Data() {
		t.Data()[i] = r.NormScaled(0, stddev)
	}
}
