package nn

import (
	"sync"
	"testing"

	"napmon/internal/rng"
	"napmon/internal/tensor"
)

// randDenseNet builds a random-depth fully-connected ReLU stack ending in
// a linear classifier, with random widths.
func randDenseNet(r *rng.Source, in int) *Network {
	var layers []Layer
	width := in
	depth := 1 + r.Intn(4)
	for d := 0; d < depth; d++ {
		next := 1 + r.Intn(24)
		layers = append(layers, NewDense(width, next, r), NewReLU())
		width = next
	}
	layers = append(layers, NewDense(width, 3+r.Intn(8), r))
	return New(layers...)
}

// randConvNet builds a conv→BN→ReLU→pool→conv→ReLU→pool→flatten→dense
// network over (2, 12, 12) inputs, exercising every layer kind.
func randConvNet(r *rng.Source) *Network {
	// 2×12×12 → conv(5ch,3×3) → 5×10×10 → BN → ReLU → pool2 → 5×5×5
	// → conv(4ch,2×2) → 4×4×4 → ReLU → pool2 → 4×2×2 → flatten 16
	return New(
		NewConv2D(5, 2, 3, 3, 1, r),
		NewBatchNorm(5),
		NewReLU(),
		NewMaxPool(2),
		NewConv2D(4, 5, 2, 2, 1, r),
		NewReLU(),
		NewMaxPool(2),
		NewFlatten(),
		NewDense(16, 10, r),
		NewReLU(),
		NewDense(10, 4, r),
	)
}

// assertRowsEqual checks that row b of the stacked batch output is
// bit-identical to the per-sample reference tensor.
func assertRowsEqual(t *testing.T, tag string, batchOut *tensor.Tensor, b int, want *tensor.Tensor) {
	t.Helper()
	rowLen := want.Len()
	row := batchOut.Data()[b*rowLen : (b+1)*rowLen]
	for i, v := range want.Data() {
		if row[i] != v {
			t.Fatalf("%s: sample %d element %d: batch %v, single %v", tag, b, i, row[i], v)
		}
	}
}

// TestForwardBatchMatchesForwardDense is the randomized property test for
// fully-connected networks: for random architectures, batch sizes and
// inputs, every row of ForwardBatch must equal the per-input Forward
// output bit for bit (the GEMM accumulates in MatVec order).
func TestForwardBatchMatchesForwardDense(t *testing.T) {
	r := rng.New(101)
	for trial := 0; trial < 25; trial++ {
		in := 1 + r.Intn(30)
		net := randDenseNet(r, in)
		bsz := 1 + r.Intn(9)
		inputs := make([]*tensor.Tensor, bsz)
		for i := range inputs {
			inputs[i] = randInput(r, in)
		}
		pool := tensor.NewPool()
		logits := net.ForwardBatch(inputs, pool)
		if logits.Dim(0) != bsz {
			t.Fatalf("trial %d: logits shape %v for batch %d", trial, logits.Shape(), bsz)
		}
		for b, x := range inputs {
			assertRowsEqual(t, "dense logits", logits, b, net.Forward(x))
		}
	}
}

// TestForwardBatchMatchesForwardConv is the conv-net property test:
// batched im2col + one GEMM + epilogue must reproduce the per-sample
// conv/BN/pool pipeline bit-exactly.
func TestForwardBatchMatchesForwardConv(t *testing.T) {
	r := rng.New(202)
	for trial := 0; trial < 8; trial++ {
		net := randConvNet(r)
		// Give BatchNorm nontrivial running statistics.
		for warm := 0; warm < 3; warm++ {
			net.forward(randInput(r, 2, 12, 12), true)
		}
		bsz := 1 + r.Intn(7)
		inputs := make([]*tensor.Tensor, bsz)
		for i := range inputs {
			inputs[i] = randInput(r, 2, 12, 12)
		}
		logits := net.ForwardBatch(inputs, tensor.NewPool())
		for b, x := range inputs {
			assertRowsEqual(t, "conv logits", logits, b, net.Forward(x))
		}
	}
}

// TestForwardBatchCaptureMatchesForwardCapture sweeps the capture index
// over every layer — including Dense layers whose following ReLU would
// otherwise be fused, and view-returning Flatten — and checks both the
// captured rows and the logits against ForwardCapture.
func TestForwardBatchCaptureMatchesForwardCapture(t *testing.T) {
	r := rng.New(303)
	net := randConvNet(r)
	inputs := make([]*tensor.Tensor, 5)
	for i := range inputs {
		inputs[i] = randInput(r, 2, 12, 12)
	}
	pool := tensor.NewPool()
	for capture := 0; capture < net.NumLayers(); capture++ {
		logits, captured := net.ForwardBatchCapture(inputs, capture, pool)
		for b, x := range inputs {
			wantLogits, wantCap := net.ForwardCapture(x, capture)
			assertRowsEqual(t, "capture logits", logits, b, wantLogits)
			assertRowsEqual(t, "captured acts", captured, b, wantCap)
		}
	}
}

// TestForwardBatchCapturePreFlattenNoDoubleFree is the regression test
// for a pool-corruption bug: when the captured layer's output later
// flowed through Flatten (a view sharing its backing array), the view
// was recycled mid-pass even though the caller still held the captured
// tensor — and a caller returning the captured tensor afterwards put the
// same backing array into the pool twice, so two later Gets aliased one
// buffer.
func TestForwardBatchCapturePreFlattenNoDoubleFree(t *testing.T) {
	r := rng.New(707)
	net := randConvNet(r)
	const preFlatten = 6 // the MaxPool feeding Flatten in randConvNet
	if _, ok := net.Layer(preFlatten).(*MaxPool); !ok {
		t.Fatalf("layer %d is %s, expected the pre-Flatten MaxPool", preFlatten, net.Layer(preFlatten).Name())
	}
	inputs := make([]*tensor.Tensor, 3)
	for i := range inputs {
		inputs[i] = randInput(r, 2, 12, 12)
	}
	pool := tensor.NewPool()
	logits, captured := net.ForwardBatchCapture(inputs, preFlatten, pool)
	want := captured.Clone()
	// Return both results the way Monitor.watchChunkPooled does.
	pool.Put(logits)
	pool.Put(captured)
	// The captured backing must now be in the pool exactly once: two
	// Gets of its size must not alias each other.
	a := pool.Get(captured.Shape()...)
	b := pool.Get(captured.Shape()...)
	if &a.Data()[0] == &b.Data()[0] {
		t.Fatal("pool handed out the captured tensor's backing twice (double Put)")
	}
	pool.Put(a)
	pool.Put(b)
	// And a repeat pass on the warm pool must still be correct.
	_, captured2 := net.ForwardBatchCapture(inputs, preFlatten, pool)
	for i, v := range want.Data() {
		if captured2.Data()[i] != v {
			t.Fatalf("captured activations diverged on warm pool at %d", i)
		}
	}
}

// TestForwardBatchPoolWarmsUp checks the allocation-free contract: after
// one warm-up pass, repeated batches of the same shape take every buffer
// from the pool (no new misses) and still produce identical results.
func TestForwardBatchPoolWarmsUp(t *testing.T) {
	r := rng.New(404)
	net := randConvNet(r)
	inputs := make([]*tensor.Tensor, 6)
	for i := range inputs {
		inputs[i] = randInput(r, 2, 12, 12)
	}
	pool := tensor.NewPool()
	first := net.ForwardBatch(inputs, pool).Clone()
	pool.Put(net.ForwardBatch(inputs, pool)) // second pass, then recycle
	_, missesBefore := pool.Stats()
	for rep := 0; rep < 3; rep++ {
		out := net.ForwardBatch(inputs, pool)
		for i, v := range first.Data() {
			if out.Data()[i] != v {
				t.Fatalf("rep %d: output %d diverged on recycled buffers", rep, i)
			}
		}
		pool.Put(out)
	}
	if _, misses := pool.Stats(); misses != missesBefore {
		t.Fatalf("warm pool still allocating: misses %d → %d", missesBefore, misses)
	}
}

// TestForwardBatchConcurrent pins the no-shared-state claim: many
// goroutines run ForwardBatch on the SAME network (no CloneShared), each
// with a private pool. Run under -race this fails if any layer's batched
// path touches per-layer mutable state.
func TestForwardBatchConcurrent(t *testing.T) {
	r := rng.New(505)
	net := randConvNet(r)
	inputs := make([]*tensor.Tensor, 4)
	for i := range inputs {
		inputs[i] = randInput(r, 2, 12, 12)
	}
	want := net.ForwardBatch(inputs, nil)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			pool := tensor.NewPool()
			for rep := 0; rep < 5; rep++ {
				got := net.ForwardBatch(inputs, pool)
				for i, v := range want.Data() {
					if got.Data()[i] != v {
						t.Errorf("concurrent ForwardBatch diverged at %d", i)
						return
					}
				}
				pool.Put(got)
			}
		}()
	}
	wg.Wait()
}

// BenchmarkForwardBatchShapes compares per-sample Forward against
// ForwardBatch on an untrained network with the paper's MNIST (Table I)
// architecture — training does not change the arithmetic cost, so this
// is the fast inner-loop benchmark for kernel work. inputs/s is the
// comparable throughput metric.
func BenchmarkForwardBatchShapes(b *testing.B) {
	r := rng.New(1)
	net := New(
		NewConv2D(40, 1, 5, 5, 1, r), NewReLU(), NewMaxPool(2),
		NewConv2D(20, 40, 5, 5, 1, r), NewReLU(), NewMaxPool(2),
		NewFlatten(),
		NewDense(320, 320, r), NewReLU(),
		NewDense(320, 160, r), NewReLU(),
		NewDense(160, 80, r), NewReLU(),
		NewDense(80, 40, r), NewReLU(),
		NewDense(40, 10, r),
	)
	const batch = 64
	inputs := make([]*tensor.Tensor, batch)
	for i := range inputs {
		inputs[i] = randInput(r, 1, 28, 28)
	}
	b.Run("forward_loop", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			for _, x := range inputs {
				net.Forward(x)
			}
		}
		b.ReportMetric(float64(batch)*float64(b.N)/b.Elapsed().Seconds(), "inputs/s")
	})
	b.Run("forward_batch", func(b *testing.B) {
		pool := tensor.NewPool()
		pool.Put(net.ForwardBatch(inputs, pool))
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			pool.Put(net.ForwardBatch(inputs, pool))
		}
		b.ReportMetric(float64(batch)*float64(b.N)/b.Elapsed().Seconds(), "inputs/s")
	})
}

// TestForwardBatchRejectsBadBatch checks the input-validation panics:
// empty batches and shape-mismatched inputs must fail loudly rather than
// corrupt the stacked tensor.
func TestForwardBatchRejectsBadBatch(t *testing.T) {
	r := rng.New(606)
	net := randDenseNet(r, 4)
	assertPanics := func(tag string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Fatalf("%s did not panic", tag)
			}
		}()
		f()
	}
	assertPanics("empty batch", func() { net.ForwardBatch(nil, nil) })
	assertPanics("mismatched shapes", func() {
		net.ForwardBatch([]*tensor.Tensor{randInput(r, 4), randInput(r, 5)}, nil)
	})
	assertPanics("capture out of range", func() {
		net.ForwardBatchCapture([]*tensor.Tensor{randInput(r, 4)}, net.NumLayers(), nil)
	})
}
