package nn

import (
	"fmt"
	"io"

	"napmon/internal/rng"
	"napmon/internal/tensor"
)

// Sample is one labelled training or evaluation example.
type Sample struct {
	Input *tensor.Tensor
	Label int
}

// SGD is a stochastic gradient descent optimizer with classical momentum
// and optional L2 weight decay.
type SGD struct {
	LR          float64
	Momentum    float64
	WeightDecay float64

	velocity map[*tensor.Tensor]*tensor.Tensor
}

// NewSGD returns an SGD optimizer with the given learning rate and
// momentum 0.9.
func NewSGD(lr float64) *SGD {
	return &SGD{LR: lr, Momentum: 0.9, velocity: map[*tensor.Tensor]*tensor.Tensor{}}
}

// Step applies one update to every parameter from its accumulated gradient
// scaled by 1/batchSize, then clears the gradients.
func (o *SGD) Step(params []Param, batchSize int) {
	if o.velocity == nil {
		o.velocity = map[*tensor.Tensor]*tensor.Tensor{}
	}
	inv := 1.0 / float64(batchSize)
	for _, p := range params {
		v, ok := o.velocity[p.Value]
		if !ok {
			v = tensor.New(p.Value.Shape()...)
			o.velocity[p.Value] = v
		}
		vd, gd, wd := v.Data(), p.Grad.Data(), p.Value.Data()
		for i := range vd {
			g := gd[i]*inv + o.WeightDecay*wd[i]
			vd[i] = o.Momentum*vd[i] - o.LR*g
			wd[i] += vd[i]
		}
		p.Grad.Zero()
	}
}

// TrainConfig controls a training run.
type TrainConfig struct {
	Epochs    int
	BatchSize int
	LR        float64
	// LRDecay multiplies the learning rate after each epoch (1 = constant).
	LRDecay     float64
	Momentum    float64
	WeightDecay float64
	// Seed drives shuffling.
	Seed uint64
	// Log, when non-nil, receives one line per epoch.
	Log io.Writer
}

// EpochStats summarizes one training epoch.
type EpochStats struct {
	Epoch    int
	Loss     float64
	Accuracy float64
}

// Train runs mini-batch SGD over the samples and returns per-epoch stats.
func Train(net *Network, samples []Sample, cfg TrainConfig) []EpochStats {
	if cfg.BatchSize <= 0 {
		cfg.BatchSize = 32
	}
	if cfg.Epochs <= 0 {
		cfg.Epochs = 1
	}
	if cfg.LRDecay == 0 {
		cfg.LRDecay = 1
	}
	opt := NewSGD(cfg.LR)
	if cfg.Momentum != 0 {
		opt.Momentum = cfg.Momentum
	}
	opt.WeightDecay = cfg.WeightDecay
	r := rng.New(cfg.Seed)
	params := net.Params()
	var stats []EpochStats
	idx := make([]int, len(samples))
	for i := range idx {
		idx[i] = i
	}
	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		r.Shuffle(len(idx), func(i, j int) { idx[i], idx[j] = idx[j], idx[i] })
		totalLoss, correct := 0.0, 0
		for start := 0; start < len(idx); start += cfg.BatchSize {
			end := start + cfg.BatchSize
			if end > len(idx) {
				end = len(idx)
			}
			for _, si := range idx[start:end] {
				s := samples[si]
				loss, pred := net.TrainStep(s.Input, s.Label)
				totalLoss += loss
				if pred == s.Label {
					correct++
				}
			}
			opt.Step(params, end-start)
		}
		st := EpochStats{
			Epoch:    epoch,
			Loss:     totalLoss / float64(len(samples)),
			Accuracy: float64(correct) / float64(len(samples)),
		}
		stats = append(stats, st)
		if cfg.Log != nil {
			fmt.Fprintf(cfg.Log, "epoch %2d  loss %.4f  acc %.2f%%\n",
				st.Epoch, st.Loss, 100*st.Accuracy)
		}
		opt.LR *= cfg.LRDecay
	}
	return stats
}

// Accuracy evaluates the fraction of samples the network classifies
// correctly, running inference in parallel across shared-parameter clones.
func Accuracy(net *Network, samples []Sample) float64 {
	if len(samples) == 0 {
		return 0
	}
	correct := ParallelCount(net, samples, func(n *Network, s Sample) bool {
		return n.Predict(s.Input) == s.Label
	})
	return float64(correct) / float64(len(samples))
}
