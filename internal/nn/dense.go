package nn

import (
	"fmt"

	"napmon/internal/rng"
	"napmon/internal/tensor"
)

// Dense is a fully-connected layer computing y = Wx + b for a flat input
// vector x of length in and output of length out.
type Dense struct {
	in, out int
	w       *tensor.Tensor // (out, in)
	b       *tensor.Tensor // (out)
	gw      *tensor.Tensor
	gb      *tensor.Tensor
	lastIn  *tensor.Tensor // cached input for Backward
}

// NewDense returns a He-initialized fully-connected layer.
func NewDense(in, out int, r *rng.Source) *Dense {
	d := &Dense{
		in:  in,
		out: out,
		w:   tensor.New(out, in),
		b:   tensor.New(out),
		gw:  tensor.New(out, in),
		gb:  tensor.New(out),
	}
	heInit(d.w, in, r)
	return d
}

// Name implements Layer.
func (d *Dense) Name() string { return fmt.Sprintf("fc(%d)", d.out) }

// Spec implements Layer.
func (d *Dense) Spec() Spec { return Spec{Kind: KindDense, In: d.in, Out: d.out} }

// Weights exposes the weight matrix (out, in). The monitor's gradient-based
// neuron selection reads it directly when the monitored layer feeds a
// linear output layer (the paper's special case where ∂n_c/∂n_i is simply
// the connecting weight).
func (d *Dense) Weights() *tensor.Tensor { return d.w }

// Forward implements Layer.
func (d *Dense) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	if x.Len() != d.in {
		panic(fmt.Sprintf("nn: %s got input of %d elements, want %d", d.Name(), x.Len(), d.in))
	}
	if train {
		d.lastIn = x
	}
	y := tensor.MatVec(d.w, x.Data())
	for i := range y {
		y[i] += d.b.Data()[i]
	}
	return tensor.FromSlice(y, d.out)
}

// Backward implements Layer.
func (d *Dense) Backward(gradOut *tensor.Tensor) *tensor.Tensor {
	if d.lastIn == nil {
		panic("nn: Dense.Backward before training-mode Forward")
	}
	g := gradOut.Data()
	x := d.lastIn.Data()
	// dW[i][j] += g[i] * x[j]; db[i] += g[i]
	for i := 0; i < d.out; i++ {
		gi := g[i]
		d.gb.Data()[i] += gi
		if gi == 0 {
			continue
		}
		row := d.gw.Data()[i*d.in : (i+1)*d.in]
		for j, xv := range x {
			row[j] += gi * xv
		}
	}
	// dx = Wᵀ g
	gin := make([]float64, d.in)
	for i := 0; i < d.out; i++ {
		gi := g[i]
		if gi == 0 {
			continue
		}
		row := d.w.Data()[i*d.in : (i+1)*d.in]
		for j, wv := range row {
			gin[j] += wv * gi
		}
	}
	return tensor.FromSlice(gin, d.in)
}

// Params implements Layer.
func (d *Dense) Params() []Param {
	return []Param{
		{Name: d.Name() + ".w", Value: d.w, Grad: d.gw},
		{Name: d.Name() + ".b", Value: d.b, Grad: d.gb},
	}
}

func (d *Dense) clone() Layer {
	c := *d
	c.lastIn = nil
	return &c
}

// ReLU applies the rectifier max(0, x) element-wise. Its on/off pattern is
// what the monitor abstracts (Definition 1 of the paper).
type ReLU struct {
	mask []bool // which inputs were positive in the last training Forward
}

// NewReLU returns a ReLU layer.
func NewReLU() *ReLU { return &ReLU{} }

// Name implements Layer.
func (l *ReLU) Name() string { return "relu" }

// Spec implements Layer.
func (l *ReLU) Spec() Spec { return Spec{Kind: KindReLU} }

// Forward implements Layer.
func (l *ReLU) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	out := x.Clone()
	if train {
		if cap(l.mask) < out.Len() {
			l.mask = make([]bool, out.Len())
		}
		l.mask = l.mask[:out.Len()]
	}
	for i, v := range out.Data() {
		pos := v > 0
		if !pos {
			out.Data()[i] = 0
		}
		if train {
			l.mask[i] = pos
		}
	}
	return out
}

// Backward implements Layer.
func (l *ReLU) Backward(gradOut *tensor.Tensor) *tensor.Tensor {
	if len(l.mask) != gradOut.Len() {
		panic("nn: ReLU.Backward before training-mode Forward")
	}
	gin := gradOut.Clone()
	for i := range gin.Data() {
		if !l.mask[i] {
			gin.Data()[i] = 0
		}
	}
	return gin
}

// Params implements Layer.
func (l *ReLU) Params() []Param { return nil }

func (l *ReLU) clone() Layer { return &ReLU{} }

// Flatten reshapes any tensor to a flat vector, remembering the original
// shape for the backward pass.
type Flatten struct {
	shape []int
}

// NewFlatten returns a Flatten layer.
func NewFlatten() *Flatten { return &Flatten{} }

// Name implements Layer.
func (l *Flatten) Name() string { return "flatten" }

// Spec implements Layer.
func (l *Flatten) Spec() Spec { return Spec{Kind: KindFlatten} }

// Forward implements Layer.
func (l *Flatten) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	if train {
		l.shape = append(l.shape[:0], x.Shape()...)
	}
	return x.Reshape(x.Len())
}

// Backward implements Layer.
func (l *Flatten) Backward(gradOut *tensor.Tensor) *tensor.Tensor {
	return gradOut.Reshape(l.shape...)
}

// Params implements Layer.
func (l *Flatten) Params() []Param { return nil }

func (l *Flatten) clone() Layer { return &Flatten{} }
