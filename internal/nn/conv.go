package nn

import (
	"fmt"
	"math"

	"napmon/internal/rng"
	"napmon/internal/tensor"
)

// Conv2D is a 2-D convolution layer (cross-correlation, no padding) over
// CHW inputs, implemented with im2col so the heavy lifting is one matrix
// multiply per sample.
type Conv2D struct {
	outC, inC, kh, kw, stride int
	w                         *tensor.Tensor // (outC, inC, kh, kw)
	b                         *tensor.Tensor // (outC)
	gw                        *tensor.Tensor
	gb                        *tensor.Tensor

	lastCols           *tensor.Tensor // im2col of last training input
	lastInH, lastInW   int
	lastOutH, lastOutW int
}

// NewConv2D returns a He-initialized convolution layer.
func NewConv2D(outC, inC, kh, kw, stride int, r *rng.Source) *Conv2D {
	c := &Conv2D{
		outC: outC, inC: inC, kh: kh, kw: kw, stride: stride,
		w:  tensor.New(outC, inC, kh, kw),
		b:  tensor.New(outC),
		gw: tensor.New(outC, inC, kh, kw),
		gb: tensor.New(outC),
	}
	heInit(c.w, inC*kh*kw, r)
	return c
}

// Name implements Layer.
func (c *Conv2D) Name() string { return fmt.Sprintf("conv(%d)", c.outC) }

// Spec implements Layer.
func (c *Conv2D) Spec() Spec {
	return Spec{Kind: KindConv, Out: c.outC, InC: c.inC, KH: c.kh, KW: c.kw, Stride: c.stride}
}

// Forward implements Layer.
func (c *Conv2D) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	if x.Rank() != 3 || x.Dim(0) != c.inC {
		panic(fmt.Sprintf("nn: %s got input %v, want (%d,H,W)", c.Name(), x.Shape(), c.inC))
	}
	inH, inW := x.Dim(1), x.Dim(2)
	outH := (inH-c.kh)/c.stride + 1
	outW := (inW-c.kw)/c.stride + 1
	cols := tensor.Im2Col(x, c.kh, c.kw, c.stride)
	if train {
		c.lastCols = cols
		c.lastInH, c.lastInW = inH, inW
		c.lastOutH, c.lastOutW = outH, outW
	}
	wMat := c.w.Reshape(c.outC, c.inC*c.kh*c.kw)
	out := tensor.MatMul(wMat, cols)
	for ch := 0; ch < c.outC; ch++ {
		row := out.Data()[ch*outH*outW : (ch+1)*outH*outW]
		bv := c.b.Data()[ch]
		for i := range row {
			row[i] += bv
		}
	}
	return out.Reshape(c.outC, outH, outW)
}

// Backward implements Layer.
func (c *Conv2D) Backward(gradOut *tensor.Tensor) *tensor.Tensor {
	if c.lastCols == nil {
		panic("nn: Conv2D.Backward before training-mode Forward")
	}
	p := c.lastOutH * c.lastOutW
	g := gradOut.Reshape(c.outC, p)
	// Bias gradient: sum over spatial positions.
	for ch := 0; ch < c.outC; ch++ {
		sum := 0.0
		for _, v := range g.Data()[ch*p : (ch+1)*p] {
			sum += v
		}
		c.gb.Data()[ch] += sum
	}
	// Weight gradient: g (outC, p) × colsᵀ (p, K) = (outC, K).
	gw := tensor.MatMulTransB(g, c.lastCols)
	c.gw.AddInto(gw.Reshape(c.outC, c.inC, c.kh, c.kw))
	// Input gradient: Wᵀ (K, outC) × g (outC, p) = (K, p) scattered by col2im.
	wMat := c.w.Reshape(c.outC, c.inC*c.kh*c.kw)
	gCols := tensor.MatMulTransA(wMat, g)
	return tensor.Col2Im(gCols, c.inC, c.lastInH, c.lastInW, c.kh, c.kw, c.stride)
}

// Params implements Layer.
func (c *Conv2D) Params() []Param {
	return []Param{
		{Name: c.Name() + ".w", Value: c.w, Grad: c.gw},
		{Name: c.Name() + ".b", Value: c.b, Grad: c.gb},
	}
}

func (c *Conv2D) clone() Layer {
	cp := *c
	cp.lastCols = nil
	return &cp
}

// MaxPool is a non-overlapping square max-pooling layer over CHW tensors.
type MaxPool struct {
	size          int
	argmax        []int
	inC, inH, inW int
}

// NewMaxPool returns a max-pooling layer with the given window size.
func NewMaxPool(size int) *MaxPool { return &MaxPool{size: size} }

// Name implements Layer.
func (l *MaxPool) Name() string { return fmt.Sprintf("maxpool(%d)", l.size) }

// Spec implements Layer.
func (l *MaxPool) Spec() Spec { return Spec{Kind: KindMaxPool, Size: l.size} }

// Forward implements Layer.
func (l *MaxPool) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	out, argmax := tensor.MaxPool2D(x, l.size)
	if train {
		l.argmax = argmax
		l.inC, l.inH, l.inW = x.Dim(0), x.Dim(1), x.Dim(2)
	}
	return out
}

// Backward implements Layer.
func (l *MaxPool) Backward(gradOut *tensor.Tensor) *tensor.Tensor {
	if l.argmax == nil {
		panic("nn: MaxPool.Backward before training-mode Forward")
	}
	return tensor.MaxPool2DBackward(gradOut, l.argmax, l.inC, l.inH, l.inW)
}

// Params implements Layer.
func (l *MaxPool) Params() []Param { return nil }

func (l *MaxPool) clone() Layer { return &MaxPool{size: l.size} }

// BatchNorm normalizes each channel of a CHW tensor with running
// statistics and applies a learnable affine transform. Because training is
// sample-at-a-time, the running mean/variance are updated online from
// per-sample spatial statistics and treated as constants in the backward
// pass (frozen-statistics BN). bnEps guards against division by zero.
type BatchNorm struct {
	ch          int
	gamma, beta *tensor.Tensor
	gGamma      *tensor.Tensor
	gBeta       *tensor.Tensor
	runMean     *tensor.Tensor
	runVar      *tensor.Tensor
	lastNorm    *tensor.Tensor // normalized input cached for Backward
	momentum    float64
}

const bnEps = 1e-5

// NewBatchNorm returns a BatchNorm layer for ch channels with gamma=1,
// beta=0 and unit running variance.
func NewBatchNorm(ch int) *BatchNorm {
	bn := &BatchNorm{
		ch:       ch,
		gamma:    tensor.New(ch),
		beta:     tensor.New(ch),
		gGamma:   tensor.New(ch),
		gBeta:    tensor.New(ch),
		runMean:  tensor.New(ch),
		runVar:   tensor.New(ch),
		momentum: 0.1,
	}
	bn.gamma.Fill(1)
	bn.runVar.Fill(1)
	return bn
}

// Name implements Layer.
func (bn *BatchNorm) Name() string { return fmt.Sprintf("bn(%d)", bn.ch) }

// Spec implements Layer.
func (bn *BatchNorm) Spec() Spec { return Spec{Kind: KindBN, Ch: bn.ch} }

// RunningStats exposes the running mean and variance tensors so
// serialization can persist them.
func (bn *BatchNorm) RunningStats() (mean, variance *tensor.Tensor) {
	return bn.runMean, bn.runVar
}

// Forward implements Layer.
func (bn *BatchNorm) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	if x.Rank() != 3 || x.Dim(0) != bn.ch {
		panic(fmt.Sprintf("nn: %s got input %v, want (%d,H,W)", bn.Name(), x.Shape(), bn.ch))
	}
	h, w := x.Dim(1), x.Dim(2)
	area := h * w
	if train {
		// Update running statistics from this sample's spatial moments.
		for c := 0; c < bn.ch; c++ {
			data := x.Data()[c*area : (c+1)*area]
			mean := 0.0
			for _, v := range data {
				mean += v
			}
			mean /= float64(area)
			variance := 0.0
			for _, v := range data {
				d := v - mean
				variance += d * d
			}
			variance /= float64(area)
			bn.runMean.Data()[c] = (1-bn.momentum)*bn.runMean.Data()[c] + bn.momentum*mean
			bn.runVar.Data()[c] = (1-bn.momentum)*bn.runVar.Data()[c] + bn.momentum*variance
		}
	}
	out := tensor.New(bn.ch, h, w)
	norm := tensor.New(bn.ch, h, w)
	for c := 0; c < bn.ch; c++ {
		mean := bn.runMean.Data()[c]
		invStd := 1 / math.Sqrt(bn.runVar.Data()[c]+bnEps)
		g, b := bn.gamma.Data()[c], bn.beta.Data()[c]
		src := x.Data()[c*area : (c+1)*area]
		dstN := norm.Data()[c*area : (c+1)*area]
		dst := out.Data()[c*area : (c+1)*area]
		for i, v := range src {
			n := (v - mean) * invStd
			dstN[i] = n
			dst[i] = g*n + b
		}
	}
	if train {
		bn.lastNorm = norm
	}
	return out
}

// Backward implements Layer.
func (bn *BatchNorm) Backward(gradOut *tensor.Tensor) *tensor.Tensor {
	if bn.lastNorm == nil {
		panic("nn: BatchNorm.Backward before training-mode Forward")
	}
	h, w := gradOut.Dim(1), gradOut.Dim(2)
	area := h * w
	gin := tensor.New(bn.ch, h, w)
	for c := 0; c < bn.ch; c++ {
		invStd := 1 / math.Sqrt(bn.runVar.Data()[c]+bnEps)
		g := bn.gamma.Data()[c]
		gOut := gradOut.Data()[c*area : (c+1)*area]
		norm := bn.lastNorm.Data()[c*area : (c+1)*area]
		dst := gin.Data()[c*area : (c+1)*area]
		var sumG, sumGN float64
		for i, gv := range gOut {
			sumG += gv
			sumGN += gv * norm[i]
		}
		bn.gBeta.Data()[c] += sumG
		bn.gGamma.Data()[c] += sumGN
		scale := g * invStd
		for i, gv := range gOut {
			dst[i] = scale * gv
		}
	}
	return gin
}

// Params implements Layer.
func (bn *BatchNorm) Params() []Param {
	return []Param{
		{Name: bn.Name() + ".gamma", Value: bn.gamma, Grad: bn.gGamma},
		{Name: bn.Name() + ".beta", Value: bn.beta, Grad: bn.gBeta},
	}
}

func (bn *BatchNorm) clone() Layer {
	c := *bn
	c.lastNorm = nil
	return &c
}
