// Batched inference: every layer implements ForwardBatch over a stacked
// (B, per-sample shape...) tensor, so a whole micro-batch flows through
// the network as a handful of large GEMMs instead of B small ones —
// dense layers become one (B×in)×(in×out) product, conv layers lower the
// whole batch with one Im2ColBatch and multiply once. All scratch comes
// from a tensor.Pool, making the hot path allocation-free after warm-up,
// and adjacent Dense+ReLU pairs fuse into a single GEMM with a
// bias+ReLU epilogue. Each output row is bit-identical to the per-sample
// Forward path (the kernels keep identical accumulation order), which
// the randomized equivalence tests in batch_test.go pin down.
package nn

import (
	"fmt"
	"math"

	"napmon/internal/tensor"
)

// ForwardBatch runs inference over the batch of inputs and returns the
// stacked logits of shape (B, classes). All inputs must share one shape.
// Unlike Forward it touches no per-layer state, so concurrent calls on
// the same network are safe; pool must be private to the caller (pass
// nil for a throwaway pool).
func (n *Network) ForwardBatch(inputs []*tensor.Tensor, pool *tensor.Pool) *tensor.Tensor {
	logits, _ := n.forwardBatch(inputs, -1, pool)
	return logits
}

// ForwardBatchCapture is ForwardBatch additionally returning the stacked
// output of the layer at index capture, shaped (B, layer output...).
// Neither returned tensor is retained by the network; callers owning the
// pool may Put both back when done (they never alias each other unless
// capture is the final layer).
func (n *Network) ForwardBatchCapture(inputs []*tensor.Tensor, capture int, pool *tensor.Pool) (logits, captured *tensor.Tensor) {
	if capture < 0 || capture >= len(n.layers) {
		panic(fmt.Sprintf("nn: capture index %d out of range [0,%d)", capture, len(n.layers)))
	}
	return n.forwardBatch(inputs, capture, pool)
}

// forwardBatch stacks the inputs into one pooled (B, sample...) tensor
// and walks the layers through their ForwardBatch implementations,
// recycling each intermediate as soon as the next layer has consumed it.
// A Dense layer immediately followed by ReLU is fused into one GEMM with
// a bias+ReLU epilogue unless the Dense output itself is captured.
func (n *Network) forwardBatch(inputs []*tensor.Tensor, capture int, pool *tensor.Pool) (logits, captured *tensor.Tensor) {
	if len(inputs) == 0 {
		panic("nn: ForwardBatch of empty batch")
	}
	if pool == nil {
		pool = tensor.NewPool()
	}
	shape := inputs[0].Shape()
	x := pool.Get(append([]int{len(inputs)}, shape...)...)
	sampleLen := inputs[0].Len()
	for i, in := range inputs {
		if in.Len() != sampleLen {
			panic(fmt.Sprintf("nn: ForwardBatch input %d has %d elements, input 0 has %d",
				i, in.Len(), sampleLen))
		}
		copy(x.Data()[i*sampleLen:(i+1)*sampleLen], in.Data())
	}
	cur := x
	i := 0
	for i < len(n.layers) {
		var next *tensor.Tensor
		step := 1
		if i+1 < len(n.layers) && capture != i {
			if _, isReLU := n.layers[i+1].(*ReLU); isReLU {
				switch l := n.layers[i].(type) {
				case *Dense:
					next = l.forwardBatchDense(cur, pool, true)
					step = 2
				case *Conv2D:
					// Conv→ReLU→MaxPool(2) collapses into one GEMM with a
					// bias+ReLU+pool epilogue when neither intermediate is
					// captured: the full-resolution activation map is never
					// materialized (see tensor.AddBiasReLUPool2Into).
					if mp, ok := poolAfter(n.layers, i+2); ok && capture != i+1 && l.poolFusable(cur, mp.size) {
						next = l.forwardBatchConvPool(cur, pool, mp.size)
						step = 3
					} else {
						next = l.forwardBatchConv(cur, pool, true)
						step = 2
					}
				}
			}
		}
		if next == nil {
			next = n.layers[i].ForwardBatch(cur, pool)
		}
		// Recycle the consumed input unless the new tensor is a view of
		// it (Flatten) or it shares the captured activation's backing
		// array (cur may itself be the captured tensor, or a later view
		// of it — recycling either would hand the caller's captured
		// buffer back to the pool while still live).
		if &cur.Data()[0] != &next.Data()[0] &&
			(captured == nil || &cur.Data()[0] != &captured.Data()[0]) {
			pool.Put(cur)
		}
		cur = next
		if i <= capture && capture <= i+step-1 {
			captured = cur
		}
		i += step
	}
	return cur, captured
}

// poolAfter returns the MaxPool at layer index i, if any.
func poolAfter(layers []Layer, i int) (*MaxPool, bool) {
	if i >= len(layers) {
		return nil, false
	}
	mp, ok := layers[i].(*MaxPool)
	return mp, ok
}

// poolFusable reports whether the conv's output on this input divides
// evenly into the pooling window — the only geometry the fused epilogue
// handles (any other geometry would panic in MaxPool anyway, but the
// check keeps the fusion decision explicit and the fallback exact).
func (c *Conv2D) poolFusable(x *tensor.Tensor, size int) bool {
	if size != 2 || x.Rank() != 4 {
		return false
	}
	outH := (x.Dim(2)-c.kh)/c.stride + 1
	outW := (x.Dim(3)-c.kw)/c.stride + 1
	return outH > 0 && outW > 0 && outH%2 == 0 && outW%2 == 0
}

// batchDim checks that x carries a leading batch dimension over the
// expected per-sample element count and returns the batch size.
func batchDim(x *tensor.Tensor, sampleLen int, name string) int {
	if x.Rank() < 2 || x.Dim(0) <= 0 {
		panic(fmt.Sprintf("nn: %s ForwardBatch input %v lacks a batch dimension", name, x.Shape()))
	}
	if x.Len() != x.Dim(0)*sampleLen {
		panic(fmt.Sprintf("nn: %s ForwardBatch got %d elements per sample, want %d",
			name, x.Len()/x.Dim(0), sampleLen))
	}
	return x.Dim(0)
}

// ForwardBatch implements Layer: one (B×in)×(in×out)ᵀ GEMM with a fused
// bias epilogue replaces B MatVec calls.
func (d *Dense) ForwardBatch(x *tensor.Tensor, pool *tensor.Pool) *tensor.Tensor {
	return d.forwardBatchDense(x, pool, false)
}

func (d *Dense) forwardBatchDense(x *tensor.Tensor, pool *tensor.Pool, fuseReLU bool) *tensor.Tensor {
	b := batchDim(x, d.in, d.Name())
	xm := x
	if x.Rank() != 2 {
		xm = x.Reshape(b, d.in)
	}
	out := pool.Get(b, d.out)
	tensor.MatMulTransBBiasInto(out, xm, d.w, d.b.Data(), fuseReLU)
	return out
}

// ForwardBatch implements Layer: the whole batch is lowered with one
// Im2ColBatch, multiplied by the kernel matrix in a single GEMM, and
// unstacked to batch-major layout with the bias folded into the copy.
func (c *Conv2D) ForwardBatch(x *tensor.Tensor, pool *tensor.Pool) *tensor.Tensor {
	return c.forwardBatchConv(x, pool, false)
}

// forwardBatchConvPool is the three-layer fusion Conv→ReLU→MaxPool(size):
// one batched im2col, one GEMM, then the fused bias+ReLU+2×2-max epilogue
// writing the pooled map directly — the conv's full-resolution output
// never exists in memory. Bit-identical to the unfused layer sequence.
func (c *Conv2D) forwardBatchConvPool(x *tensor.Tensor, pool *tensor.Pool, size int) *tensor.Tensor {
	if x.Rank() != 4 || x.Dim(1) != c.inC {
		panic(fmt.Sprintf("nn: %s ForwardBatch got input %v, want (B,%d,H,W)", c.Name(), x.Shape(), c.inC))
	}
	b, inH, inW := x.Dim(0), x.Dim(2), x.Dim(3)
	outH := (inH-c.kh)/c.stride + 1
	outW := (inW-c.kw)/c.stride + 1
	area := outH * outW
	cols := pool.Get(c.inC*c.kh*c.kw, b*area)
	tensor.Im2ColBatchInto(cols, x, c.kh, c.kw, c.stride)
	prod := pool.Get(c.outC, b*area)
	tensor.MatMulInto(prod, c.w.Reshape(c.outC, c.inC*c.kh*c.kw), cols)
	pool.Put(cols)
	out := pool.Get(b, c.outC, outH/size, outW/size)
	tensor.AddBiasReLUPool2Into(out, prod, b, c.outC, outH, outW, c.b.Data())
	pool.Put(prod)
	return out
}

func (c *Conv2D) forwardBatchConv(x *tensor.Tensor, pool *tensor.Pool, fuseReLU bool) *tensor.Tensor {
	if x.Rank() != 4 || x.Dim(1) != c.inC {
		panic(fmt.Sprintf("nn: %s ForwardBatch got input %v, want (B,%d,H,W)", c.Name(), x.Shape(), c.inC))
	}
	b, inH, inW := x.Dim(0), x.Dim(2), x.Dim(3)
	outH := (inH-c.kh)/c.stride + 1
	outW := (inW-c.kw)/c.stride + 1
	area := outH * outW
	cols := pool.Get(c.inC*c.kh*c.kw, b*area)
	tensor.Im2ColBatchInto(cols, x, c.kh, c.kw, c.stride)
	prod := pool.Get(c.outC, b*area)
	tensor.MatMulInto(prod, c.w.Reshape(c.outC, c.inC*c.kh*c.kw), cols)
	pool.Put(cols)
	out := pool.Get(b, c.outC, outH, outW)
	tensor.AddBiasUnstackInto(out, prod, b, c.outC, area, c.b.Data(), fuseReLU)
	pool.Put(prod)
	return out
}

// ForwardBatch implements Layer: one rectification sweep over the stacked
// batch.
func (l *ReLU) ForwardBatch(x *tensor.Tensor, pool *tensor.Pool) *tensor.Tensor {
	out := pool.Get(x.Shape()...)
	dst := out.Data()
	for i, v := range x.Data() {
		if v > 0 {
			dst[i] = v
		} else {
			dst[i] = 0
		}
	}
	return out
}

// ForwardBatch implements Layer: a reshaping view keeping the batch
// dimension — no copy, the backing array is shared with x.
func (l *Flatten) ForwardBatch(x *tensor.Tensor, pool *tensor.Pool) *tensor.Tensor {
	b := x.Dim(0)
	return x.Reshape(b, x.Len()/b)
}

// ForwardBatch implements Layer: sample-by-sample pooling into one pooled
// output, with no argmax bookkeeping.
func (l *MaxPool) ForwardBatch(x *tensor.Tensor, pool *tensor.Pool) *tensor.Tensor {
	if x.Rank() != 4 {
		panic(fmt.Sprintf("nn: %s ForwardBatch got input %v, want (B,C,H,W)", l.Name(), x.Shape()))
	}
	b, c, h, w := x.Dim(0), x.Dim(1), x.Dim(2), x.Dim(3)
	out := pool.Get(b, c, h/l.size, w/l.size)
	tensor.MaxPool2DBatchInto(out, x, l.size)
	return out
}

// ForwardBatch implements Layer: channel-wise normalization of the whole
// batch with the frozen running statistics (inference mode).
func (bn *BatchNorm) ForwardBatch(x *tensor.Tensor, pool *tensor.Pool) *tensor.Tensor {
	if x.Rank() != 4 || x.Dim(1) != bn.ch {
		panic(fmt.Sprintf("nn: %s ForwardBatch got input %v, want (B,%d,H,W)", bn.Name(), x.Shape(), bn.ch))
	}
	b, h, w := x.Dim(0), x.Dim(2), x.Dim(3)
	area := h * w
	out := pool.Get(b, bn.ch, h, w)
	for c := 0; c < bn.ch; c++ {
		mean := bn.runMean.Data()[c]
		invStd := 1 / math.Sqrt(bn.runVar.Data()[c]+bnEps)
		g, bv := bn.gamma.Data()[c], bn.beta.Data()[c]
		for s := 0; s < b; s++ {
			base := (s*bn.ch + c) * area
			src := x.Data()[base : base+area]
			dst := out.Data()[base : base+area]
			for i, v := range src {
				// Same operation order as Forward's normalize-then-affine
				// so the result is bit-identical.
				norm := (v - mean) * invStd
				dst[i] = g*norm + bv
			}
		}
	}
	return out
}
