package nn

import (
	"bufio"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"os"

	"napmon/internal/rng"
	"napmon/internal/tensor"
)

// Model files consist of a JSON header (layer specs) terminated by a
// newline, followed by all parameter tensors and BatchNorm running
// statistics as little-endian float64 in layer order. The format is
// self-describing enough to rebuild the architecture and bit-exact for
// the weights.

type modelHeader struct {
	Format string `json:"format"`
	Specs  []Spec `json:"specs"`
}

const modelFormat = "napmon-model-v1"

// Save writes the network architecture and parameters to w.
func (n *Network) Save(w io.Writer) error {
	bw := bufio.NewWriter(w)
	hdr, err := json.Marshal(modelHeader{Format: modelFormat, Specs: n.Specs()})
	if err != nil {
		return err
	}
	if _, err := bw.Write(append(hdr, '\n')); err != nil {
		return err
	}
	for _, t := range n.persistedTensors() {
		for _, v := range t.Data() {
			if err := binary.Write(bw, binary.LittleEndian, math.Float64bits(v)); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

// Load reads a network previously written with Save.
func Load(r io.Reader) (*Network, error) {
	br := bufio.NewReader(r)
	line, err := br.ReadBytes('\n')
	if err != nil {
		return nil, fmt.Errorf("nn: reading model header: %w", err)
	}
	var hdr modelHeader
	if err := json.Unmarshal(line, &hdr); err != nil {
		return nil, fmt.Errorf("nn: decoding model header: %w", err)
	}
	if hdr.Format != modelFormat {
		return nil, fmt.Errorf("nn: unsupported model format %q", hdr.Format)
	}
	net, err := Build(hdr.Specs, rng.New(0))
	if err != nil {
		return nil, err
	}
	for _, t := range net.persistedTensors() {
		data := t.Data()
		for i := range data {
			var bits uint64
			if err := binary.Read(br, binary.LittleEndian, &bits); err != nil {
				return nil, fmt.Errorf("nn: reading parameters: %w", err)
			}
			data[i] = math.Float64frombits(bits)
		}
	}
	return net, nil
}

// persistedTensors returns every tensor that must round-trip through a
// model file: learnable parameters plus BatchNorm running statistics.
func (n *Network) persistedTensors() []*tensor.Tensor {
	var ts []*tensor.Tensor
	for _, l := range n.layers {
		for _, p := range l.Params() {
			ts = append(ts, p.Value)
		}
		if bn, ok := l.(*BatchNorm); ok {
			mean, variance := bn.RunningStats()
			ts = append(ts, mean, variance)
		}
	}
	return ts
}

// SaveFile writes the model to the named file.
func (n *Network) SaveFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := n.Save(f); err != nil {
		return err
	}
	return f.Close()
}

// LoadFile reads a model from the named file.
func LoadFile(path string) (*Network, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Load(f)
}
