package nn

import (
	"fmt"
	"math"
	"strings"

	"napmon/internal/rng"
	"napmon/internal/tensor"
)

// Network is an ordered stack of layers mapping an input tensor to a
// logits vector. It also provides the two capabilities the activation
// monitor needs: capturing the output of an arbitrary hidden layer during
// a forward pass, and computing the gradient of an output neuron with
// respect to a hidden layer's output (for neuron selection).
type Network struct {
	layers []Layer
}

// New assembles a network from the given layers.
func New(layers ...Layer) *Network { return &Network{layers: layers} }

// Build constructs a freshly initialized network from layer specs.
func Build(specs []Spec, r *rng.Source) (*Network, error) {
	layers := make([]Layer, len(specs))
	for i, s := range specs {
		l, err := buildLayer(s, r)
		if err != nil {
			return nil, fmt.Errorf("nn: layer %d: %w", i, err)
		}
		layers[i] = l
	}
	return New(layers...), nil
}

// NumLayers returns the number of layers.
func (n *Network) NumLayers() int { return len(n.layers) }

// Layer returns the i-th layer.
func (n *Network) Layer(i int) Layer { return n.layers[i] }

// Specs returns the serializable configuration of every layer.
func (n *Network) Specs() []Spec {
	specs := make([]Spec, len(n.layers))
	for i, l := range n.layers {
		specs[i] = l.Spec()
	}
	return specs
}

// String renders the architecture in the style of the paper's Table I.
func (n *Network) String() string {
	names := make([]string, len(n.layers))
	for i, l := range n.layers {
		names[i] = l.Name()
	}
	return strings.Join(names, ", ")
}

// Forward runs a full inference pass and returns the logits.
func (n *Network) Forward(x *tensor.Tensor) *tensor.Tensor {
	return n.forward(x, false)
}

func (n *Network) forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	for _, l := range n.layers {
		x = l.Forward(x, train)
	}
	return x
}

// ForwardCapture runs inference and additionally returns the output of the
// layer at index capture (e.g. a hidden ReLU layer whose activation
// pattern the monitor inspects).
func (n *Network) ForwardCapture(x *tensor.Tensor, capture int) (logits, captured *tensor.Tensor) {
	if capture < 0 || capture >= len(n.layers) {
		panic(fmt.Sprintf("nn: capture index %d out of range [0,%d)", capture, len(n.layers)))
	}
	for i, l := range n.layers {
		x = l.Forward(x, false)
		if i == capture {
			captured = x
		}
	}
	return x, captured
}

// Predict returns the argmax class of the logits for input x, the paper's
// dec_f(in).
func (n *Network) Predict(x *tensor.Tensor) int {
	return n.Forward(x).ArgMax()
}

// Params returns every learnable parameter of the network.
func (n *Network) Params() []Param {
	var ps []Param
	for _, l := range n.layers {
		ps = append(ps, l.Params()...)
	}
	return ps
}

// ZeroGrads clears all accumulated parameter gradients.
func (n *Network) ZeroGrads() {
	for _, p := range n.Params() {
		p.Grad.Zero()
	}
}

// TrainStep runs a training-mode forward pass, computes softmax
// cross-entropy loss against the label, backpropagates and accumulates
// parameter gradients. It returns the loss and the predicted class.
func (n *Network) TrainStep(x *tensor.Tensor, label int) (loss float64, pred int) {
	logits := n.forward(x, true)
	loss, grad := SoftmaxCrossEntropy(logits, label)
	pred = logits.ArgMax()
	g := grad
	for i := len(n.layers) - 1; i >= 0; i-- {
		g = n.layers[i].Backward(g)
	}
	return loss, pred
}

// GradientAtLayer computes d(logit[class]) / d(output of layer `layer`) at
// input x by backpropagating a one-hot gradient from the logits down to,
// but not through, the given layer. Parameter gradients accumulated along
// the way are discarded (callers should not be mid-training-step).
// This implements the paper's gradient-based sensitivity analysis for
// selecting important neurons.
func (n *Network) GradientAtLayer(x *tensor.Tensor, class, layer int) *tensor.Tensor {
	if layer < 0 || layer >= len(n.layers)-1 {
		panic("nn: GradientAtLayer layer index must precede the last layer")
	}
	logits := n.forward(x, true)
	if class < 0 || class >= logits.Len() {
		panic("nn: GradientAtLayer class out of range")
	}
	grad := tensor.New(logits.Shape()...)
	grad.Data()[class] = 1
	g := grad
	for i := len(n.layers) - 1; i > layer; i-- {
		g = n.layers[i].Backward(g)
	}
	return g
}

// CloneShared returns a network that shares n's parameter tensors but owns
// private per-layer forward caches, so inference can run concurrently with
// other clones. It must not be trained while the original is in use.
func (n *Network) CloneShared() *Network {
	layers := make([]Layer, len(n.layers))
	for i, l := range n.layers {
		layers[i] = l.clone()
	}
	return New(layers...)
}

// Softmax returns the softmax of the logits in a numerically stable way.
func Softmax(logits *tensor.Tensor) []float64 {
	maxV := math.Inf(-1)
	for _, v := range logits.Data() {
		if v > maxV {
			maxV = v
		}
	}
	exp := make([]float64, logits.Len())
	sum := 0.0
	for i, v := range logits.Data() {
		e := math.Exp(v - maxV)
		exp[i] = e
		sum += e
	}
	for i := range exp {
		exp[i] /= sum
	}
	return exp
}

// SoftmaxCrossEntropy returns the cross-entropy loss of logits against the
// integer label, along with the gradient of the loss with respect to the
// logits (softmax(x) - onehot(label)).
func SoftmaxCrossEntropy(logits *tensor.Tensor, label int) (float64, *tensor.Tensor) {
	if label < 0 || label >= logits.Len() {
		panic(fmt.Sprintf("nn: label %d out of range for %d logits", label, logits.Len()))
	}
	probs := Softmax(logits)
	loss := -math.Log(math.Max(probs[label], 1e-300))
	grad := tensor.FromSlice(probs, logits.Shape()...)
	grad.Data()[label] -= 1
	return loss, grad
}
