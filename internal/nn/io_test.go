package nn

import (
	"bytes"
	"path/filepath"
	"testing"

	"napmon/internal/rng"
)

func TestSaveLoadFile(t *testing.T) {
	r := rng.New(1)
	net := New(NewDense(4, 6, r), NewReLU(), NewDense(6, 2, r))
	x := randInput(rng.New(2), 4)
	want := net.Forward(x)

	path := filepath.Join(t.TempDir(), "net.model")
	if err := net.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	got := loaded.Forward(x)
	for i := range want.Data() {
		if want.Data()[i] != got.Data()[i] {
			t.Fatal("file round trip changed outputs")
		}
	}
}

func TestLoadFileMissing(t *testing.T) {
	if _, err := LoadFile(filepath.Join(t.TempDir(), "nope.model")); err == nil {
		t.Fatal("missing file accepted")
	}
}

func TestLoadTruncatedModel(t *testing.T) {
	r := rng.New(3)
	net := New(NewDense(8, 8, r), NewReLU(), NewDense(8, 3, r))
	var buf bytes.Buffer
	if err := net.Save(&buf); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	for _, cut := range []int{0, 10, len(full) / 2, len(full) - 1} {
		if _, err := Load(bytes.NewReader(full[:cut])); err == nil {
			t.Fatalf("truncation at %d accepted", cut)
		}
	}
}

func TestSGDWeightDecayShrinksWeights(t *testing.T) {
	r := rng.New(4)
	d := NewDense(4, 4, r)
	opt := NewSGD(0.1)
	opt.Momentum = 0
	opt.WeightDecay = 0.5
	before := d.w.Clone()
	// Zero gradients: the update is pure decay.
	opt.Step(d.Params(), 1)
	for i, v := range d.w.Data() {
		want := before.Data()[i] * (1 - 0.1*0.5)
		if diff := v - want; diff > 1e-12 || diff < -1e-12 {
			t.Fatalf("weight %d: got %v, want %v", i, v, want)
		}
	}
}

func TestTrainLRDecayApplied(t *testing.T) {
	r := rng.New(5)
	var samples []Sample
	for i := 0; i < 32; i++ {
		samples = append(samples, Sample{Input: randInput(r, 3), Label: i % 2})
	}
	net := New(NewDense(3, 4, r), NewReLU(), NewDense(4, 2, r))
	// Smoke test: decaying LR must not blow up or error.
	stats := Train(net, samples, TrainConfig{Epochs: 3, BatchSize: 8, LR: 0.1, LRDecay: 0.5, Seed: 6})
	if len(stats) != 3 {
		t.Fatalf("got %d epochs", len(stats))
	}
}

func TestParallelMapSingleSample(t *testing.T) {
	r := rng.New(7)
	net := New(NewDense(2, 3, r), NewReLU(), NewDense(3, 2, r))
	out := ParallelMap(net, []Sample{{Input: randInput(r, 2), Label: 0}},
		func(n *Network, s Sample) int { return n.Predict(s.Input) })
	if len(out) != 1 {
		t.Fatalf("got %d results", len(out))
	}
}

func TestParallelCountEmpty(t *testing.T) {
	r := rng.New(8)
	net := New(NewDense(2, 2, r))
	if got := ParallelCount(net, nil, func(*Network, Sample) bool { return true }); got != 0 {
		t.Fatalf("ParallelCount(nil) = %d", got)
	}
}

func TestAccuracyEmpty(t *testing.T) {
	r := rng.New(9)
	net := New(NewDense(2, 2, r))
	if Accuracy(net, nil) != 0 {
		t.Fatal("Accuracy of empty set must be 0")
	}
}
