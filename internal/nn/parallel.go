package nn

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// ParallelCount runs pred over every sample using per-worker network
// clones (shared parameters, private caches) and returns how many samples
// satisfied the predicate. Used for fast dataset-level evaluation.
func ParallelCount(net *Network, samples []Sample, pred func(*Network, Sample) bool) int {
	workers := runtime.GOMAXPROCS(0)
	if workers > len(samples) {
		workers = len(samples)
	}
	if workers <= 1 {
		count := 0
		for _, s := range samples {
			if pred(net, s) {
				count++
			}
		}
		return count
	}
	var count int64
	var next int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			clone := net.CloneShared()
			local := 0
			for {
				i := atomic.AddInt64(&next, 1) - 1
				if int(i) >= len(samples) {
					break
				}
				if pred(clone, samples[i]) {
					local++
				}
			}
			atomic.AddInt64(&count, int64(local))
		}()
	}
	wg.Wait()
	return int(count)
}

// ParallelMap computes f over every sample with per-worker network clones,
// writing results into the returned slice in input order.
func ParallelMap[T any](net *Network, samples []Sample, f func(*Network, Sample) T) []T {
	return ParallelMapSlice(net, samples, f)
}

// ParallelMapSlice computes f over every item of an arbitrary slice using a
// GOMAXPROCS-sized worker pool with per-worker network clones (shared
// parameters, private scratch buffers), writing results into the returned
// slice in input order. Work is distributed by an atomic cursor, so uneven
// per-item cost cannot stall a worker. It is the engine behind both
// dataset-level evaluation and the monitor's batched serving front end
// (Monitor.WatchBatch); f must not mutate shared state.
func ParallelMapSlice[S, T any](net *Network, items []S, f func(*Network, S) T) []T {
	if len(items) == 0 {
		return []T{} // non-nil, and no worker pool to spin up
	}
	out := make([]T, len(items))
	workers := runtime.GOMAXPROCS(0)
	if workers > len(items) {
		workers = len(items)
	}
	if workers <= 1 {
		for i, s := range items {
			out[i] = f(net, s)
		}
		return out
	}
	var next int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			clone := net.CloneShared()
			for {
				i := atomic.AddInt64(&next, 1) - 1
				if int(i) >= len(items) {
					break
				}
				out[i] = f(clone, items[i])
			}
		}()
	}
	wg.Wait()
	return out
}
