package obs

import (
	"math/rand"
	"sort"
	"sync"
	"testing"
)

// TestBucketIndexRoundTrip pins the bucket geometry: every value maps
// into a bucket whose [min, max] range contains it, indices are
// monotone in the value, and bucketMax is the true upper edge (the next
// value after it lands in a later bucket).
func TestBucketIndexRoundTrip(t *testing.T) {
	values := []int64{0, 1, 31, 32, 33, 63, 64, 65, 1023, 1024, 1025, 1 << 20, 1<<40 + 12345, 1<<62 + 999}
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 10000; i++ {
		values = append(values, rng.Int63())
	}
	prevIdx := -1
	sort.Slice(values, func(i, j int) bool { return values[i] < values[j] })
	for _, v := range values {
		idx := bucketIndex(v)
		if idx < 0 || idx >= numBuckets {
			t.Fatalf("bucketIndex(%d) = %d out of range", v, idx)
		}
		if idx < prevIdx {
			t.Fatalf("bucketIndex not monotone at %d: %d < %d", v, idx, prevIdx)
		}
		prevIdx = idx
		max := bucketMax(idx)
		if v > max {
			t.Fatalf("value %d above bucketMax(%d)=%d", v, idx, max)
		}
		if max < 1<<62 && bucketIndex(max+1) != idx+1 {
			t.Fatalf("bucketMax(%d)=%d is not the upper edge: index(max+1)=%d", idx, max, bucketIndex(max+1))
		}
	}
}

// TestHistogramQuantileProperty is the satellite property test: on
// random streams of varied shape, every quantile estimate must sit
// within one bucket's relative error of the exact sort-based quantile —
// at least the exact order statistic, at most (1 + 1/32) times it.
func TestHistogramQuantileProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	gens := map[string]func() int64{
		"uniform-small": func() int64 { return rng.Int63n(100) },
		"uniform-wide":  func() int64 { return rng.Int63n(1 << 40) },
		"exponential":   func() int64 { return int64(rng.ExpFloat64() * 1e6) },
		"latency-like":  func() int64 { return 50_000 + int64(rng.ExpFloat64()*700_000) },
		"heavy-tail": func() int64 {
			if rng.Intn(100) == 0 {
				return rng.Int63n(1 << 50)
			}
			return rng.Int63n(1000)
		},
	}
	quantiles := []float64{0, 0.01, 0.25, 0.5, 0.9, 0.99, 0.999, 1}
	for name, gen := range gens {
		for _, n := range []int{1, 2, 10, 1000, 20000} {
			var h Histogram
			samples := make([]int64, n)
			for i := range samples {
				v := gen()
				samples[i] = v
				h.Record(v)
			}
			sort.Slice(samples, func(i, j int) bool { return samples[i] < samples[j] })
			snap := h.Snapshot()
			if snap.Count() != uint64(n) {
				t.Fatalf("%s n=%d: count %d", name, n, snap.Count())
			}
			for _, q := range quantiles {
				rank := int(q*float64(n) + 0.5)
				if rank >= n {
					rank = n - 1
				}
				exact := samples[rank]
				est := snap.Quantile(q)
				if est < exact {
					t.Fatalf("%s n=%d q=%v: estimate %d below exact %d", name, n, q, est, exact)
				}
				// one bucket of relative error: bucket width ≤ max/32
				// for the log range, and ±0 for exact linear buckets
				limit := exact + exact/subCount
				if exact < subCount {
					limit = exact // linear range is exact
				}
				if est > limit {
					t.Fatalf("%s n=%d q=%v: estimate %d exceeds exact %d + 1/32 (%d)",
						name, n, q, est, exact, limit)
				}
			}
		}
	}
}

func TestHistogramEmptyAndNegative(t *testing.T) {
	var h Histogram
	snap := h.Snapshot()
	if snap.Count() != 0 || snap.Sum() != 0 || snap.Quantile(0.5) != 0 {
		t.Fatalf("empty snapshot not zero: count=%d sum=%d p50=%d", snap.Count(), snap.Sum(), snap.Quantile(0.5))
	}
	h.Record(-5) // clock retrogression clamps to 0
	snap = h.Snapshot()
	if snap.Count() != 1 || snap.Quantile(1) != 0 {
		t.Fatalf("negative record not clamped: count=%d max=%d", snap.Count(), snap.Quantile(1))
	}
}

func TestHistogramSum(t *testing.T) {
	var h Histogram
	var want int64
	for i := int64(1); i <= 1000; i++ {
		h.Record(i * 37)
		want += i * 37
	}
	snap := h.Snapshot()
	if got := snap.Sum(); got != want {
		t.Fatalf("sum %d, want %d", got, want)
	}
}

// TestHistogramConcurrent hammers one histogram from many recording
// goroutines while another snapshots continuously — the -race
// concurrency coverage for the lock-free claim. Snapshot counts must be
// monotone and the final state exact.
func TestHistogramConcurrent(t *testing.T) {
	const (
		workers = 8
		perW    = 5000
	)
	var h Histogram
	stop := make(chan struct{})
	var snapWG sync.WaitGroup
	snapWG.Add(1)
	go func() {
		defer snapWG.Done()
		var last uint64
		for {
			select {
			case <-stop:
				return
			default:
			}
			s := h.Snapshot()
			c := s.Count()
			if c < last {
				t.Error("snapshot count went backwards")
				return
			}
			last = c
		}
	}()
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < perW; i++ {
				h.Record(rng.Int63n(1 << 30))
			}
		}(int64(w))
	}
	wg.Wait()
	close(stop)
	snapWG.Wait()
	final := h.Snapshot()
	if got := final.Count(); got != workers*perW {
		t.Fatalf("final count %d, want %d", got, workers*perW)
	}
}

func TestCumulativeLE(t *testing.T) {
	var h Histogram
	for v := int64(0); v < 200; v++ {
		h.Record(v)
	}
	snap := h.Snapshot()
	// Linear range: exact at every value.
	if got := snap.CumulativeLE(31); got != 32 {
		t.Fatalf("CumulativeLE(31) = %d, want 32", got)
	}
	// Octave edge 2^7-1 = 127: exact boundary.
	if got := snap.CumulativeLE(127); got != 128 {
		t.Fatalf("CumulativeLE(127) = %d, want 128", got)
	}
	if got := snap.CumulativeLE(1 << 40); got != 200 {
		t.Fatalf("CumulativeLE(big) = %d, want 200", got)
	}
	if got := snap.CumulativeLE(-1); got != 0 {
		t.Fatalf("CumulativeLE(-1) = %d, want 0", got)
	}
}
