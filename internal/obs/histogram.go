package obs

import (
	"math/bits"
	"sync/atomic"
)

// Histogram bucketing: values (non-negative int64, typically nanoseconds)
// land in log-spaced buckets with subCount linear sub-buckets per octave,
// HdrHistogram-style. Values below subCount are recorded exactly (one
// bucket per value); above, a bucket spans [sub<<k, (sub+1)<<k) with
// sub ∈ [subCount, 2·subCount), so the relative width of any bucket is at
// most 1/subCount. Quantile estimates therefore carry a bounded relative
// error of 1/subCount ≈ 3.1% — regardless of the stream's range or length
// — while Record stays a single unconditional array indexing plus atomic
// adds: no mutex, no sorting, no sample retention.
const (
	subBits  = 5
	subCount = 1 << subBits // 32 sub-buckets per octave

	// numBuckets covers every uint63 value: linear buckets 0..subCount-1
	// plus (64-subBits) octaves of subCount sub-buckets each... laid out
	// contiguously by bucketIndex. The top index is bucketIndex(2^63-1).
	numBuckets = (63-subBits)*subCount + 2*subCount
)

// Histogram is a lock-free log-bucketed latency/size histogram. Record
// costs two atomic adds (bucket and sum) and never allocates or blocks;
// any quantile is computed at snapshot time from the bucket counts with
// relative error at most 1/32. The zero value is ready to use, and one
// Histogram may be shared by any number of recording and snapshotting
// goroutines.
//
// It replaces the mutex-guarded sample ring previously used for serving
// percentiles: a ring serializes every request on one lock and pays a
// copy+sort per scrape, where the histogram's hot path is wait-free and a
// scrape is one bounded array walk (see BenchmarkStatsRecord in
// internal/serve).
type Histogram struct {
	buckets [numBuckets]atomic.Uint64
	sum     atomic.Int64
}

// bucketIndex maps a non-negative value to its bucket.
func bucketIndex(v int64) int {
	u := uint64(v)
	if u < subCount {
		return int(u)
	}
	e := bits.Len64(u) - 1 // 2^e <= u < 2^(e+1), e >= subBits
	return (e-subBits)*subCount + int(u>>(e-subBits))
}

// bucketMax returns the largest value mapping to bucket idx — the
// estimate a quantile lookup reports, so estimates never undershoot the
// exact sample and overshoot by at most the bucket width.
func bucketMax(idx int) int64 {
	if idx < subCount {
		return int64(idx)
	}
	e := (idx-subCount)/subCount + subBits
	sub := uint64(idx - (e-subBits)*subCount)
	return int64((sub+1)<<(e-subBits) - 1)
}

// Record adds one observation. Negative values are clamped to zero (they
// can only arise from clock retrogression in a latency measurement).
func (h *Histogram) Record(v int64) {
	if v < 0 {
		v = 0
	}
	h.buckets[bucketIndex(v)].Add(1)
	h.sum.Add(v)
}

// HistogramSnapshot is a point-in-time copy of a histogram's buckets,
// safe to query without further synchronization. Concurrent Records
// during the copy may or may not be included (each is atomically counted
// or not — never torn).
type HistogramSnapshot struct {
	counts [numBuckets]uint64
	count  uint64
	sum    int64
}

// Snapshot copies the bucket counts. O(numBuckets), allocation-free when
// the caller keeps the snapshot on the stack.
func (h *Histogram) Snapshot() HistogramSnapshot {
	var s HistogramSnapshot
	for i := range h.buckets {
		c := h.buckets[i].Load()
		s.counts[i] = c
		s.count += c
	}
	s.sum = h.sum.Load()
	return s
}

// Count returns the number of recorded observations.
func (s *HistogramSnapshot) Count() uint64 { return s.count }

// Sum returns the sum of all recorded values. It is read independently
// of the buckets, so under concurrent recording it may differ from the
// exact sum of the snapshot's observations by in-flight records.
func (s *HistogramSnapshot) Sum() int64 { return s.sum }

// Quantile returns the q-quantile (q in [0,1]) of the recorded stream
// using the same nearest-rank convention as a sorted-sample lookup at
// index round(q·n): the reported value is the upper bound of the bucket
// holding that rank, so it is ≥ the exact order statistic and at most
// one bucket width (≤ 1/32 relative) above it. Returns 0 for an empty
// histogram.
func (s *HistogramSnapshot) Quantile(q float64) int64 {
	if s.count == 0 {
		return 0
	}
	rank := uint64(q*float64(s.count) + 0.5)
	if rank >= s.count {
		rank = s.count - 1
	}
	var cum uint64
	for i, c := range s.counts {
		cum += c
		if cum > rank {
			return bucketMax(i)
		}
	}
	return bucketMax(numBuckets - 1) // unreachable: cum == count > rank
}

// CumulativeLE returns how many recorded observations are ≤ v (exact at
// bucket boundaries; v is rounded up to its bucket's upper bound). The
// exposition writer uses it to emit Prometheus cumulative buckets.
func (s *HistogramSnapshot) CumulativeLE(v int64) uint64 {
	if v < 0 {
		return 0
	}
	hi := bucketIndex(v)
	var cum uint64
	for i := 0; i <= hi; i++ {
		cum += s.counts[i]
	}
	return cum
}

// nonEmptyRange returns the lowest and highest nonzero bucket indices,
// or ok=false for an empty snapshot.
func (s *HistogramSnapshot) nonEmptyRange() (lo, hi int, ok bool) {
	lo, hi = -1, -1
	for i, c := range s.counts {
		if c == 0 {
			continue
		}
		if lo < 0 {
			lo = i
		}
		hi = i
	}
	return lo, hi, lo >= 0
}
