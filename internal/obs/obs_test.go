package obs

import (
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
)

// TestRegistryRoundTrip renders a registry with every metric kind and
// feeds the output back through the package's own validating parser —
// the same loop the metrics-smoke CI job runs against a live daemon.
func TestRegistryRoundTrip(t *testing.T) {
	reg := NewRegistry()
	served := reg.NewCounter("test_served_total", "requests served")
	served.Add(41)
	served.Inc()
	reg.CounterFunc("test_func_total", "func-backed counter", func() uint64 { return 7 })
	depth := reg.NewGauge("test_queue_depth", "queue depth")
	depth.Set(12)
	depth.Add(-2)
	reg.GaugeFunc("test_ratio", "a fractional gauge", func() float64 { return 0.375 })
	for _, class := range []string{"0", "1"} {
		c := reg.NewCounter("test_oop_total", "per-class OOP verdicts", L("class", class))
		c.Add(3)
	}
	h := reg.NewHistogram("test_latency_seconds", "stage latency", 1e-9, L("stage", "total"))
	for _, ns := range []int64{100, 1000, 50_000, 2_000_000, 2_100_000} {
		h.Record(ns)
	}

	var sb strings.Builder
	if err := reg.WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	text := sb.String()

	exp, err := ParseExposition(strings.NewReader(text))
	if err != nil {
		t.Fatalf("own output failed own parser: %v\n%s", err, text)
	}
	if got, ok := exp.Value("test_served_total", nil); !ok || got != 42 {
		t.Fatalf("test_served_total = %v ok=%v", got, ok)
	}
	if got, ok := exp.Value("test_func_total", nil); !ok || got != 7 {
		t.Fatalf("test_func_total = %v ok=%v", got, ok)
	}
	if got, ok := exp.Value("test_queue_depth", nil); !ok || got != 10 {
		t.Fatalf("test_queue_depth = %v ok=%v", got, ok)
	}
	if got, ok := exp.Value("test_ratio", nil); !ok || got != 0.375 {
		t.Fatalf("test_ratio = %v ok=%v", got, ok)
	}
	if sum, n := exp.SumAcross("test_oop_total"); sum != 6 || n != 2 {
		t.Fatalf("test_oop_total sum=%v n=%d", sum, n)
	}
	if exp.Types["test_latency_seconds"] != "histogram" {
		t.Fatalf("histogram TYPE missing: %v", exp.Types)
	}
	if got, ok := exp.Value("test_latency_seconds_count", map[string]string{"stage": "total"}); !ok || got != 5 {
		t.Fatalf("histogram _count = %v ok=%v", got, ok)
	}
	wantSum := float64(100+1000+50_000+2_000_000+2_100_000) * 1e-9
	if got, ok := exp.Value("test_latency_seconds_sum", map[string]string{"stage": "total"}); !ok || got != wantSum {
		t.Fatalf("histogram _sum = %v want %v", got, wantSum)
	}
	if !exp.Has("test_latency_seconds") {
		t.Fatal("Has(histogram) = false")
	}
	if exp.Has("test_absent") {
		t.Fatal("Has(absent) = true")
	}
}

func TestHandler(t *testing.T) {
	reg := NewRegistry()
	reg.NewCounter("test_total", "help").Inc()
	rec := httptest.NewRecorder()
	reg.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if ct := rec.Header().Get("Content-Type"); ct != ContentType {
		t.Fatalf("content type %q", ct)
	}
	if _, err := ParseExposition(rec.Body); err != nil {
		t.Fatal(err)
	}
}

func TestLabelEscaping(t *testing.T) {
	reg := NewRegistry()
	reg.NewCounter("test_total", "help with \\ backslash\nand newline",
		L("path", `a"b\c`+"\nd")).Inc()
	var sb strings.Builder
	if err := reg.WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	exp, err := ParseExposition(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatalf("escaped output failed parser: %v\n%s", err, sb.String())
	}
	if got, ok := exp.Value("test_total", map[string]string{"path": "a\"b\\c\nd"}); !ok || got != 1 {
		t.Fatalf("escaped label round trip: got %v ok=%v in\n%s", got, ok, sb.String())
	}
}

func TestRegistryPanicsOnMisuse(t *testing.T) {
	cases := map[string]func(*Registry){
		"bad metric name": func(r *Registry) { r.NewCounter("9bad", "h") },
		"bad label name":  func(r *Registry) { r.NewCounter("ok_total", "h", L("9bad", "v")) },
		"reserved le":     func(r *Registry) { r.NewHistogram("h_seconds", "h", 1, L("le", "x")) },
		"kind mismatch": func(r *Registry) {
			r.NewCounter("dual", "h")
			r.NewGauge("dual", "h")
		},
		"duplicate series": func(r *Registry) {
			r.NewCounter("dup_total", "h", L("a", "1"), L("b", "2"))
			r.NewCounter("dup_total", "h", L("b", "2"), L("a", "1"))
		},
		"bad scale": func(r *Registry) { r.NewHistogram("h_seconds", "h", 0) },
	}
	for name, fn := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: no panic", name)
				}
			}()
			fn(NewRegistry())
		}()
	}
}

// TestRegistryConcurrentScrape scrapes while counters and histograms
// are being written — -race coverage for the scrape path.
func TestRegistryConcurrentScrape(t *testing.T) {
	reg := NewRegistry()
	c := reg.NewCounter("test_total", "h")
	h := reg.NewHistogram("test_seconds", "h", 1e-9)
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
				c.Inc()
				h.Record(12345)
			}
		}
	}()
	for i := 0; i < 50; i++ {
		var sb strings.Builder
		if err := reg.WriteText(&sb); err != nil {
			t.Fatal(err)
		}
		if _, err := ParseExposition(strings.NewReader(sb.String())); err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	wg.Wait()
}
