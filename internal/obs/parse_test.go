package obs

import (
	"strings"
	"testing"
)

func TestParseRejectsMalformed(t *testing.T) {
	cases := map[string]string{
		"bad value":           "foo_total abc\n",
		"bad metric name":     "9foo 1\n",
		"unterminated labels": "foo{a=\"b\" 1\n",
		"unquoted label":      "foo{a=b} 1\n",
		"bad escape":          "foo{a=\"\\x\"} 1\n",
		"duplicate label":     "foo{a=\"1\",a=\"2\"} 1\n",
		"bad label name":      "foo{9a=\"1\"} 1\n",
		"duplicate TYPE":      "# TYPE foo counter\n# TYPE foo gauge\nfoo 1\n",
		"unknown TYPE":        "# TYPE foo widget\nfoo 1\n",
		"malformed TYPE":      "# TYPE foo\nfoo 1\n",
		"bucket without le":   "# TYPE h histogram\nh_bucket 3\nh_sum 1\nh_count 3\n",
		"bad le":              "# TYPE h histogram\nh_bucket{le=\"x\"} 3\nh_bucket{le=\"+Inf\"} 3\nh_sum 1\nh_count 3\n",
		"decreasing buckets":  "# TYPE h histogram\nh_bucket{le=\"1\"} 5\nh_bucket{le=\"2\"} 3\nh_bucket{le=\"+Inf\"} 5\nh_sum 1\nh_count 5\n",
		"histogram bare":      "# TYPE h histogram\nh 3\n",
		"histogram stray":     "# TYPE h histogram\nh_quantile 3\n",
		"missing inf":         "# TYPE h histogram\nh_bucket{le=\"1\"} 3\nh_sum 1\nh_count 3\n",
		"inf count mismatch":  "# TYPE h histogram\nh_bucket{le=\"+Inf\"} 3\nh_sum 1\nh_count 4\n",
		"bad timestamp":       "foo 1 nope\n",
		"missing value":       "foo\n",
		"trailing junk":       "foo 1 2 3\n",
	}
	for name, in := range cases {
		if _, err := ParseExposition(strings.NewReader(in)); err == nil {
			t.Errorf("%s: accepted %q", name, in)
		}
	}
}

func TestParseAcceptsValidForms(t *testing.T) {
	in := strings.Join([]string{
		"# a bare comment line",
		"# HELP foo_total something helpful",
		"# TYPE foo_total counter",
		"foo_total 3",
		"bar{x=\"1\",y=\"two\"} 4.5 1700000000000",
		"baz_gauge -12",
		"inf_gauge +Inf",
		"nan_gauge NaN",
		"",
		"# TYPE lat_seconds histogram",
		"lat_seconds_bucket{le=\"0.001\"} 2",
		"lat_seconds_bucket{le=\"+Inf\"} 5",
		"lat_seconds_sum 0.25",
		"lat_seconds_count 5",
	}, "\n") + "\n"
	exp, err := ParseExposition(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if v, ok := exp.Value("bar", map[string]string{"x": "1", "y": "two"}); !ok || v != 4.5 {
		t.Fatalf("bar = %v ok=%v", v, ok)
	}
	if v, ok := exp.Value("lat_seconds_bucket", map[string]string{"le": "0.001"}); !ok || v != 2 {
		t.Fatalf("bucket = %v ok=%v", v, ok)
	}
	if exp.Types["foo_total"] != "counter" || exp.Types["lat_seconds"] != "histogram" {
		t.Fatalf("types: %v", exp.Types)
	}
}
