package obs

import (
	"bufio"
	"io"
	"math"
	"net/http"
	"strconv"
	"strings"
)

// ContentType is the Prometheus text exposition content type served by
// Handler and expected by scrapers.
const ContentType = "text/plain; version=0.0.4; charset=utf-8"

// WriteText renders every registered metric in Prometheus text format:
// one # HELP / # TYPE header per family followed by its series, in
// registration order. Counter and gauge callbacks run here, and each
// histogram is snapshotted once — recording continues concurrently.
func (r *Registry) WriteText(w io.Writer) error {
	bw := bufio.NewWriter(w)
	r.mu.Lock()
	fams := make([]*family, len(r.order))
	copy(fams, r.order)
	r.mu.Unlock()
	for _, f := range fams {
		bw.WriteString("# HELP ")
		bw.WriteString(f.name)
		bw.WriteByte(' ')
		bw.WriteString(escapeHelp(f.help))
		bw.WriteString("\n# TYPE ")
		bw.WriteString(f.name)
		bw.WriteByte(' ')
		bw.WriteString(f.kind.String())
		bw.WriteByte('\n')
		for _, s := range f.series {
			if f.kind == kindHistogram {
				writeHistogramSeries(bw, f.name, s)
				continue
			}
			writeSample(bw, f.name, s.labels, s.value())
		}
	}
	return bw.Flush()
}

// Handler returns an http.Handler that serves the registry — the body
// behind GET /metrics on napmon-serve and the gateway admin listener.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", ContentType)
		_ = r.WriteText(w)
	})
}

// writeHistogramSeries renders one histogram as cumulative le buckets
// plus _sum and _count. Emitting all ~2000 internal buckets per scrape
// would bloat the payload for no fidelity gain, so bounds are laid at
// octave edges spanning the observed range — every edge is an exact
// internal bucket boundary, so the cumulative counts are exact, and the
// octave spacing already matches the histogram's own resolution class.
func writeHistogramSeries(bw *bufio.Writer, name string, s *series) {
	snap := s.hist.Snapshot()
	lo, hi, ok := snap.nonEmptyRange()
	if ok {
		loV, hiV := bucketMax(lo), bucketMax(hi)
		// Octave-edge bounds 2^k-1, starting one edge below the smallest
		// observation and ending at the first edge covering the largest;
		// each edge is bucketMax of its octave's last bucket, so
		// CumulativeLE is exact there.
		for v := int64(0); ; v = v*2 + 1 {
			if v*2+1 < loV {
				continue // below the observed range; next edge still is
			}
			writeBucket(bw, name, s.labels, float64(v)*s.scale, snap.CumulativeLE(v))
			if v >= hiV {
				break
			}
		}
	}
	writeBucketInf(bw, name, s.labels, snap.Count())
	writeSample(bw, name+"_sum", s.labels, float64(snap.Sum())*s.scale)
	writeSample(bw, name+"_count", s.labels, float64(snap.Count()))
}

func writeBucket(bw *bufio.Writer, name string, labels []Label, le float64, count uint64) {
	withLE := append(append(make([]Label, 0, len(labels)+1), labels...),
		Label{Name: "le", Value: formatValue(le)})
	writeSample(bw, name+"_bucket", withLE, float64(count))
}

func writeBucketInf(bw *bufio.Writer, name string, labels []Label, count uint64) {
	withLE := append(append(make([]Label, 0, len(labels)+1), labels...),
		Label{Name: "le", Value: "+Inf"})
	writeSample(bw, name+"_bucket", withLE, float64(count))
}

func writeSample(bw *bufio.Writer, name string, labels []Label, v float64) {
	bw.WriteString(name)
	if len(labels) > 0 {
		bw.WriteByte('{')
		for i, l := range labels {
			if i > 0 {
				bw.WriteByte(',')
			}
			bw.WriteString(l.Name)
			bw.WriteString(`="`)
			bw.WriteString(escapeLabel(l.Value))
			bw.WriteByte('"')
		}
		bw.WriteByte('}')
	}
	bw.WriteByte(' ')
	bw.WriteString(formatValue(v))
	bw.WriteByte('\n')
}

func formatValue(v float64) string {
	switch {
	case math.IsInf(v, +1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

func escapeHelp(s string) string {
	return strings.NewReplacer(`\`, `\\`, "\n", `\n`).Replace(s)
}

func escapeLabel(s string) string {
	return strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`).Replace(s)
}
