package obs

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"
)

// Sample is one parsed exposition line: a series name, its label set
// and the sample value.
type Sample struct {
	Name   string
	Labels map[string]string
	Value  float64
}

// Exposition is the parsed form of a Prometheus text payload. It is
// what the soak harness and the metrics-smoke linter consume to
// cross-check scraped counters against independent accounting.
type Exposition struct {
	// Types maps metric name -> declared TYPE (counter, gauge,
	// histogram, untyped).
	Types map[string]string
	// Samples holds every sample line in file order.
	Samples []Sample
}

// ParseExposition reads and validates a Prometheus text-format payload.
// It enforces the structural rules a scraper relies on: metric and
// label name syntax, quoted-and-escaped label values, parseable sample
// values, TYPE declared at most once and before any of its samples,
// histogram families consisting only of _bucket/_sum/_count series with
// `le` on every bucket, non-decreasing cumulative bucket counts, and a
// +Inf bucket matching _count. Any violation returns an error naming
// the offending line.
func ParseExposition(r io.Reader) (*Exposition, error) {
	e := &Exposition{Types: make(map[string]string)}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	// histogram bookkeeping, keyed by base name + non-le label set
	hCum := make(map[string]float64) // last cumulative bucket value
	hInf := make(map[string]float64) // +Inf bucket value
	hCount := make(map[string]float64)
	hHasInf := make(map[string]bool)
	hHasCount := make(map[string]bool)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if strings.TrimSpace(line) == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			if err := e.parseComment(line); err != nil {
				return nil, fmt.Errorf("line %d: %w", lineNo, err)
			}
			continue
		}
		s, err := parseSampleLine(line)
		if err != nil {
			return nil, fmt.Errorf("line %d: %w", lineNo, err)
		}
		base := s.Name
		isBucket := false
		if t := e.Types[trimHistSuffix(s.Name)]; t == "histogram" {
			base = trimHistSuffix(s.Name)
			switch {
			case s.Name == base+"_bucket":
				isBucket = true
			case s.Name == base+"_sum", s.Name == base+"_count":
			default:
				return nil, fmt.Errorf("line %d: histogram %q has non-histogram sample %q", lineNo, base, s.Name)
			}
		} else if t, declared := e.Types[s.Name]; declared && t == "histogram" {
			return nil, fmt.Errorf("line %d: histogram %q exposed as a bare sample", lineNo, s.Name)
		} else if !declared {
			// A sample under a declared histogram family's name with a
			// suffix other than _bucket/_sum/_count is malformed.
			for hname, typ := range e.Types {
				if typ == "histogram" && strings.HasPrefix(s.Name, hname+"_") {
					return nil, fmt.Errorf("line %d: histogram %q has stray sample %q", lineNo, hname, s.Name)
				}
			}
		}
		if isBucket {
			le, okLE := s.Labels["le"]
			if !okLE {
				return nil, fmt.Errorf("line %d: %s_bucket without le label", lineNo, base)
			}
			key := base + "|" + labelKey(s.Labels, "le")
			if le == "+Inf" {
				hInf[key] = s.Value
				hHasInf[key] = true
			} else if _, err := strconv.ParseFloat(le, 64); err != nil {
				return nil, fmt.Errorf("line %d: bad le value %q", lineNo, le)
			}
			if s.Value+1e-9 < hCum[key] {
				return nil, fmt.Errorf("line %d: histogram %q cumulative bucket decreased (%g after %g)", lineNo, base, s.Value, hCum[key])
			}
			hCum[key] = s.Value
		} else if base != s.Name && s.Name == base+"_count" {
			key := base + "|" + labelKey(s.Labels, "le")
			hCount[key] = s.Value
			hHasCount[key] = true
		}
		e.Samples = append(e.Samples, s)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	for key := range hHasCount {
		if !hHasInf[key] {
			return nil, fmt.Errorf("histogram series %q lacks a +Inf bucket", key)
		}
		if math.Abs(hInf[key]-hCount[key]) > 1e-9 {
			return nil, fmt.Errorf("histogram series %q: +Inf bucket %g != _count %g", key, hInf[key], hCount[key])
		}
	}
	// A TYPE with no samples at all is legal per the format, but our
	// writer never produces it and the smoke test wants to catch a
	// registry wired to nothing — callers check presence via Has.
	return e, nil
}

func (e *Exposition) parseComment(line string) error {
	fields := strings.SplitN(line, " ", 4)
	if len(fields) < 2 {
		return nil // bare comment
	}
	switch fields[1] {
	case "TYPE":
		if len(fields) < 4 {
			return fmt.Errorf("malformed TYPE line %q", line)
		}
		name, typ := fields[2], strings.TrimSpace(fields[3])
		if !validMetricName(name) {
			return fmt.Errorf("TYPE for invalid metric name %q", name)
		}
		switch typ {
		case "counter", "gauge", "histogram", "summary", "untyped":
		default:
			return fmt.Errorf("unknown TYPE %q for %q", typ, name)
		}
		if _, dup := e.Types[name]; dup {
			return fmt.Errorf("duplicate TYPE for %q", name)
		}
		e.Types[name] = typ
	case "HELP":
		if len(fields) < 3 || !validMetricName(fields[2]) {
			return fmt.Errorf("malformed HELP line %q", line)
		}
	}
	return nil
}

// parseSampleLine parses `name{l1="v1",...} value [timestamp]`.
func parseSampleLine(line string) (Sample, error) {
	s := Sample{}
	i := 0
	for i < len(line) && line[i] != '{' && line[i] != ' ' && line[i] != '\t' {
		i++
	}
	s.Name = line[:i]
	if !validMetricName(s.Name) {
		return s, fmt.Errorf("invalid metric name in sample %q", line)
	}
	rest := line[i:]
	if strings.HasPrefix(rest, "{") {
		end, labels, err := parseLabels(rest)
		if err != nil {
			return s, fmt.Errorf("sample %q: %w", line, err)
		}
		s.Labels = labels
		rest = rest[end:]
	}
	fields := strings.Fields(rest)
	if len(fields) < 1 || len(fields) > 2 {
		return s, fmt.Errorf("sample %q: expected value [timestamp]", line)
	}
	v, err := strconv.ParseFloat(fields[0], 64)
	if err != nil {
		return s, fmt.Errorf("sample %q: bad value: %w", line, err)
	}
	s.Value = v
	if len(fields) == 2 {
		if _, err := strconv.ParseInt(fields[1], 10, 64); err != nil {
			return s, fmt.Errorf("sample %q: bad timestamp: %w", line, err)
		}
	}
	return s, nil
}

// parseLabels parses a `{name="value",...}` block starting at s[0]=='{'
// and returns the index one past the closing brace.
func parseLabels(s string) (int, map[string]string, error) {
	labels := make(map[string]string)
	i := 1
	for {
		for i < len(s) && (s[i] == ' ' || s[i] == ',') {
			i++
		}
		if i < len(s) && s[i] == '}' {
			return i + 1, labels, nil
		}
		start := i
		for i < len(s) && s[i] != '=' {
			i++
		}
		if i >= len(s) {
			return 0, nil, fmt.Errorf("unterminated label block")
		}
		name := s[start:i]
		if !validLabelName(name) {
			return 0, nil, fmt.Errorf("invalid label name %q", name)
		}
		i++ // '='
		if i >= len(s) || s[i] != '"' {
			return 0, nil, fmt.Errorf("label %q: value not quoted", name)
		}
		i++
		var b strings.Builder
		for {
			if i >= len(s) {
				return 0, nil, fmt.Errorf("label %q: unterminated value", name)
			}
			c := s[i]
			if c == '"' {
				i++
				break
			}
			if c == '\\' {
				i++
				if i >= len(s) {
					return 0, nil, fmt.Errorf("label %q: dangling escape", name)
				}
				switch s[i] {
				case '\\':
					b.WriteByte('\\')
				case '"':
					b.WriteByte('"')
				case 'n':
					b.WriteByte('\n')
				default:
					return 0, nil, fmt.Errorf("label %q: bad escape \\%c", name, s[i])
				}
				i++
				continue
			}
			b.WriteByte(c)
			i++
		}
		if _, dup := labels[name]; dup {
			return 0, nil, fmt.Errorf("duplicate label %q", name)
		}
		labels[name] = b.String()
	}
}

// trimHistSuffix strips a _bucket/_sum/_count suffix if present.
func trimHistSuffix(name string) string {
	for _, suf := range []string{"_bucket", "_sum", "_count"} {
		if strings.HasSuffix(name, suf) {
			return strings.TrimSuffix(name, suf)
		}
	}
	return name
}

// labelKey renders a label set (minus the names in skip) as a stable
// sorted key for grouping histogram series.
func labelKey(labels map[string]string, skip ...string) string {
	keys := make([]string, 0, len(labels))
outer:
	for k := range labels {
		for _, sk := range skip {
			if k == sk {
				continue outer
			}
		}
		keys = append(keys, k)
	}
	sortStrings(keys)
	var b strings.Builder
	for _, k := range keys {
		b.WriteString(k)
		b.WriteByte('=')
		b.WriteString(labels[k])
		b.WriteByte(';')
	}
	return b.String()
}

func sortStrings(s []string) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}

// Value returns the sample value for an exact (name, label set) match.
func (e *Exposition) Value(name string, labels map[string]string) (float64, bool) {
	for _, s := range e.Samples {
		if s.Name != name || len(s.Labels) != len(labels) {
			continue
		}
		match := true
		for k, v := range labels {
			if s.Labels[k] != v {
				match = false
				break
			}
		}
		if match {
			return s.Value, true
		}
	}
	return 0, false
}

// Has reports whether any sample exists for name — for histograms, any
// of the family's _bucket/_sum/_count series counts.
func (e *Exposition) Has(name string) bool {
	for _, s := range e.Samples {
		if s.Name == name || trimHistSuffix(s.Name) == name {
			return true
		}
	}
	return false
}

// SumAcross sums every sample named name across label sets (e.g. total
// OOP verdicts over all classes) and reports how many series matched.
func (e *Exposition) SumAcross(name string) (float64, int) {
	var total float64
	n := 0
	for _, s := range e.Samples {
		if s.Name == name {
			total += s.Value
			n++
		}
	}
	return total, n
}
