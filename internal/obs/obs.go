// Package obs is the zero-dependency observability core: atomic
// counters and gauges, a lock-free log-bucketed histogram with bounded
// quantile error, a named-metric registry, and a Prometheus text-format
// exposition writer plus a matching validating parser.
//
// Design constraints, in order:
//
//  1. Hot-path cost. Recording a counter or histogram observation is a
//     handful of atomic adds — no locks, no allocation, no formatting.
//     Metrics that already exist as atomics elsewhere (the serve
//     pipeline's served/shed counters, BDD manager stats) register as
//     CounterFunc/GaugeFunc callbacks, so the serving code pays nothing
//     at all and the cost lands on the scraper.
//  2. Zero dependencies. The package imports only the standard library,
//     like the rest of the repo; the exposition side speaks the
//     Prometheus text format so any off-the-shelf scraper can consume
//     it without us linking client libraries.
//  3. One registry, many surfaces. napmon-serve, the gateway admin
//     listener and tests all render the same Registry through the same
//     writer; the parser in this package is what the soak harness and
//     the metrics-smoke CI job use to read it back.
//
// Registration happens at startup (Server/Gateway construction); it is
// not designed for concurrent registration with scraping, and duplicate
// or malformed registrations panic rather than return errors, since
// they are programming mistakes, not runtime conditions.
package obs

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
)

// Label is one name="value" pair attached to a series.
type Label struct {
	Name  string
	Value string
}

// L is shorthand for constructing a Label.
func L(name, value string) Label { return Label{Name: name, Value: value} }

type metricKind uint8

const (
	kindCounter metricKind = iota
	kindGauge
	kindHistogram
)

func (k metricKind) String() string {
	switch k {
	case kindCounter:
		return "counter"
	case kindGauge:
		return "gauge"
	default:
		return "histogram"
	}
}

// Counter is a monotonically increasing atomic counter.
type Counter struct{ v atomic.Uint64 }

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add increments by n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is an atomic value that may go up and down.
type Gauge struct{ v atomic.Int64 }

// Set stores v.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add increments by n (which may be negative).
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// series is one labeled sample stream within a family.
type series struct {
	labels []Label
	// value reads the current sample for counter/gauge series.
	value func() float64
	// hist backs histogram series; scale multiplies recorded values at
	// exposition time (1e-9 renders nanoseconds as Prometheus seconds).
	hist  *Histogram
	scale float64
}

// family groups every series registered under one metric name.
type family struct {
	name   string
	help   string
	kind   metricKind
	series []*series
}

// Registry holds named metrics and renders them as Prometheus text.
type Registry struct {
	mu     sync.Mutex
	order  []*family
	byName map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: make(map[string]*family)}
}

// NewCounter registers and returns a counter series.
func (r *Registry) NewCounter(name, help string, labels ...Label) *Counter {
	c := &Counter{}
	r.CounterFunc(name, help, func() uint64 { return c.Value() }, labels...)
	return c
}

// CounterFunc registers a counter whose value is read by fn at scrape
// time — the bridge for code that already maintains its own atomics.
func (r *Registry) CounterFunc(name, help string, fn func() uint64, labels ...Label) {
	r.add(name, help, kindCounter, &series{
		labels: labels,
		value:  func() float64 { return float64(fn()) },
	})
}

// CounterFloatFunc registers a counter with a float-valued callback —
// for monotone totals natively kept in another unit (e.g. cumulative
// nanoseconds exposed as seconds).
func (r *Registry) CounterFloatFunc(name, help string, fn func() float64, labels ...Label) {
	r.add(name, help, kindCounter, &series{labels: labels, value: fn})
}

// NewGauge registers and returns a gauge series.
func (r *Registry) NewGauge(name, help string, labels ...Label) *Gauge {
	g := &Gauge{}
	r.GaugeFunc(name, help, func() float64 { return float64(g.Value()) }, labels...)
	return g
}

// GaugeFunc registers a gauge whose value is read by fn at scrape time.
func (r *Registry) GaugeFunc(name, help string, fn func() float64, labels ...Label) {
	r.add(name, help, kindGauge, &series{labels: labels, value: fn})
}

// NewHistogram registers and returns a histogram series. scale
// multiplies every recorded value at exposition time: histograms fed
// nanoseconds use scale 1e-9 so the exposed series is in seconds, the
// Prometheus base unit.
func (r *Registry) NewHistogram(name, help string, scale float64, labels ...Label) *Histogram {
	h := &Histogram{}
	r.HistogramRef(name, help, h, scale, labels...)
	return h
}

// HistogramRef registers an existing histogram (one the serving path
// already records into) under name.
func (r *Registry) HistogramRef(name, help string, h *Histogram, scale float64, labels ...Label) {
	if scale <= 0 {
		panic(fmt.Sprintf("obs: histogram %q: scale must be positive, got %v", name, scale))
	}
	r.add(name, help, kindHistogram, &series{labels: labels, hist: h, scale: scale})
}

func (r *Registry) add(name, help string, kind metricKind, s *series) {
	if !validMetricName(name) {
		panic(fmt.Sprintf("obs: invalid metric name %q", name))
	}
	for _, l := range s.labels {
		if !validLabelName(l.Name) {
			panic(fmt.Sprintf("obs: metric %q: invalid label name %q", name, l.Name))
		}
		if l.Name == "le" && kind == kindHistogram {
			panic(fmt.Sprintf("obs: metric %q: label \"le\" is reserved on histograms", name))
		}
	}
	// Canonical label order makes duplicate detection and exposition
	// independent of the caller's argument order.
	sort.SliceStable(s.labels, func(i, j int) bool { return s.labels[i].Name < s.labels[j].Name })

	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.byName[name]
	if f == nil {
		f = &family{name: name, help: help, kind: kind}
		r.byName[name] = f
		r.order = append(r.order, f)
	} else {
		if f.kind != kind {
			panic(fmt.Sprintf("obs: metric %q registered as %s and %s", name, f.kind, kind))
		}
	}
	for _, prev := range f.series {
		if sameLabels(prev.labels, s.labels) {
			panic(fmt.Sprintf("obs: metric %q: duplicate series %v", name, s.labels))
		}
	}
	f.series = append(f.series, s)
}

func sameLabels(a, b []Label) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func validMetricName(s string) bool {
	if s == "" {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		ok := c == '_' || c == ':' ||
			(c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
			(i > 0 && c >= '0' && c <= '9')
		if !ok {
			return false
		}
	}
	return true
}

func validLabelName(s string) bool {
	if s == "" {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		ok := c == '_' ||
			(c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
			(i > 0 && c >= '0' && c <= '9')
		if !ok {
			return false
		}
	}
	return true
}
