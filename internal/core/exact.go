package core

// ExactZone is a reference implementation of the γ-comfort zone that
// stores the visited patterns in a hash set and answers membership by
// scanning for a stored pattern within Hamming distance γ. It is
// semantically identical to Zone (tests cross-check them) and serves as
// the ablation baseline for the BDD representation: queries cost
// O(#patterns · width) instead of O(width), and memory grows linearly
// with the number of distinct patterns.
type ExactZone struct {
	width    int
	gamma    int
	patterns map[string]Pattern
}

// NewExactZone returns an empty exact zone over width neurons with γ = 0.
func NewExactZone(width int) *ExactZone {
	return &ExactZone{width: width, patterns: map[string]Pattern{}}
}

// Width returns the number of monitored neurons.
func (z *ExactZone) Width() int { return z.width }

// Gamma returns the current Hamming threshold.
func (z *ExactZone) Gamma() int { return z.gamma }

// SetGamma sets the Hamming threshold used by Contains. Unlike the BDD
// zone there is nothing to precompute; the threshold is applied per query.
func (z *ExactZone) SetGamma(gamma int) {
	if gamma < 0 {
		panic("core: negative gamma")
	}
	z.gamma = gamma
}

// Insert adds a visited pattern.
func (z *ExactZone) Insert(p Pattern) {
	if len(p) != z.width {
		panic("core: pattern width mismatch")
	}
	z.patterns[p.Key()] = p.Clone()
}

// DistinctPatterns returns the number of distinct visited patterns.
func (z *ExactZone) DistinctPatterns() int { return len(z.patterns) }

// Contains reports whether some visited pattern lies within Hamming
// distance γ of p.
func (z *ExactZone) Contains(p Pattern) bool {
	if len(p) != z.width {
		panic("core: pattern width mismatch")
	}
	if _, ok := z.patterns[p.Key()]; ok {
		return true // exact hit, the common case
	}
	if z.gamma == 0 {
		return false
	}
	for _, q := range z.patterns {
		if withinHamming(p, q, z.gamma) {
			return true
		}
	}
	return false
}

// withinHamming reports H(p, q) <= limit with early exit.
func withinHamming(p, q Pattern, limit int) bool {
	d := 0
	for i := range p {
		if p[i] != q[i] {
			d++
			if d > limit {
				return false
			}
		}
	}
	return true
}
