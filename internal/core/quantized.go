package core

import (
	"fmt"
	"sort"

	"napmon/internal/nn"
	"napmon/internal/tensor"
)

// Quantized monitors generalize Definition 1 from on/off bits to K
// activation levels per neuron, bridging the paper's binary patterns and
// its proposed refined numerical domains (§V): each monitored neuron's
// value is bucketed against per-neuron thresholds learned from the
// training distribution, and the bucket index is thermometer-encoded
// (level L sets the L lowest of K-1 bits). Thermometer codes make the
// BDD Hamming enlargement meaningful — distance 1 corresponds exactly to
// one neuron moving one level — so Algorithm 1's existential
// quantification machinery is reused unchanged, just over more variables.

// QuantizedConfig specifies a quantized monitor.
type QuantizedConfig struct {
	// Layer, Classes, Neurons and Gamma have the same meaning as in
	// Config.
	Layer   int
	Classes []int
	Neurons []int
	Gamma   int
	// Levels is the number of activation buckets per neuron (>= 2);
	// Levels = 2 with threshold 0 degenerates to the paper's binary
	// pattern.
	Levels int
}

// QuantizedMonitor is a multi-level activation pattern monitor.
type QuantizedMonitor struct {
	cfg     QuantizedConfig
	neurons []int
	// thresholds[i] holds the Levels-1 ascending bucket boundaries for
	// monitored neuron i.
	thresholds [][]float64
	zones      map[int]*Zone // over (Levels-1) * len(neurons) BDD variables
}

// BuildQuantized learns per-neuron thresholds from the training
// activations (uniform quantiles, with the ReLU boundary 0 always the
// first threshold) and then runs Algorithm 1 over thermometer-encoded
// level patterns.
func BuildQuantized(net *nn.Network, train []nn.Sample, cfg QuantizedConfig) (*QuantizedMonitor, error) {
	if cfg.Levels < 2 {
		return nil, fmt.Errorf("core: quantization needs at least 2 levels, got %d", cfg.Levels)
	}
	base, err := newMonitor(net, Config{
		Layer:   cfg.Layer,
		Gamma:   cfg.Gamma,
		Classes: cfg.Classes,
		Neurons: cfg.Neurons,
	})
	if err != nil {
		return nil, err
	}
	if len(train) == 0 {
		return nil, fmt.Errorf("core: quantized monitor needs training samples")
	}
	m := &QuantizedMonitor{cfg: cfg, neurons: base.neurons}

	// Pass 1: capture activations (parallel) for thresholds and patterns.
	type obs struct {
		pred   int
		values []float64
	}
	results := nn.ParallelMap(net, train, func(w *nn.Network, s nn.Sample) obs {
		logits, acts := w.ForwardCapture(s.Input, cfg.Layer)
		return obs{pred: logits.ArgMax(), values: projectValues(acts, m.neurons)}
	})

	// Learn thresholds per neuron: 0 first (the ReLU activation
	// boundary), then uniform quantiles of the positive activations.
	m.thresholds = make([][]float64, len(m.neurons))
	for i := range m.neurons {
		var positives []float64
		for _, r := range results {
			if v := r.values[i]; v > 0 {
				positives = append(positives, v)
			}
		}
		sort.Float64s(positives)
		ts := make([]float64, 0, cfg.Levels-1)
		ts = append(ts, 0)
		for j := 1; j < cfg.Levels-1; j++ {
			var q float64
			if len(positives) == 0 {
				q = float64(j) // arbitrary ascending fallback
			} else {
				q = positives[(len(positives)-1)*j/(cfg.Levels-1)]
			}
			// Enforce strict ascent so buckets are well-defined.
			if last := ts[len(ts)-1]; q <= last {
				q = last + 1e-9
			}
			ts = append(ts, q)
		}
		m.thresholds[i] = ts
	}

	// Pass 2: Algorithm 1 over thermometer-encoded patterns, with the
	// per-class insertion and enlargement sharded over the worker pool —
	// the thermometer zones are per-class managers exactly like the
	// binary monitor's, so the same fan-out applies (see shard.go).
	bitsPer := cfg.Levels - 1
	m.zones = make(map[int]*Zone, len(base.zones))
	for c := range base.zones {
		m.zones[c] = NewZone(bitsPer * len(m.neurons))
	}
	perClass := make(map[int][]Pattern, len(m.zones))
	for i, r := range results {
		if r.pred != train[i].Label {
			continue
		}
		if _, ok := m.zones[train[i].Label]; !ok {
			continue
		}
		perClass[train[i].Label] = append(perClass[train[i].Label], m.encode(r.values))
	}
	err = forEachClass(sortedClasses(m.zones), func(c int) error {
		z := m.zones[c]
		for _, p := range perClass[c] {
			z.Insert(p)
		}
		return z.SetGamma(cfg.Gamma)
	})
	if err != nil {
		return nil, err
	}
	return m, nil
}

// level returns the bucket index of value v for monitored neuron i:
// the number of thresholds it exceeds, in 0..Levels-1.
func (m *QuantizedMonitor) level(i int, v float64) int {
	lvl := 0
	for _, t := range m.thresholds[i] {
		if v > t {
			lvl++
		}
	}
	return lvl
}

// encode thermometer-encodes the monitored values into a pattern of
// (Levels-1)*len(neurons) bits.
func (m *QuantizedMonitor) encode(values []float64) Pattern {
	bitsPer := m.cfg.Levels - 1
	p := make(Pattern, bitsPer*len(values))
	for i, v := range values {
		lvl := m.level(i, v)
		for b := 0; b < lvl; b++ {
			p[i*bitsPer+b] = true
		}
	}
	return p
}

// Thresholds returns the learned bucket boundaries of monitored neuron i.
func (m *QuantizedMonitor) Thresholds(i int) []float64 { return m.thresholds[i] }

// Neurons returns the monitored neuron indices.
func (m *QuantizedMonitor) Neurons() []int { return m.neurons }

// Zone returns class c's zone (over thermometer bits), or nil.
func (m *QuantizedMonitor) Zone(c int) *Zone { return m.zones[c] }

// SetGamma changes the enlargement level of every zone. Like
// Monitor.SetGamma it is a build-phase operation: it errors once any zone
// has been frozen for serving.
func (m *QuantizedMonitor) SetGamma(gamma int) error {
	for _, z := range m.zones {
		if err := z.SetGamma(gamma); err != nil {
			return err
		}
	}
	m.cfg.Gamma = gamma
	return nil
}

// Watch classifies x and checks its quantized pattern against the
// predicted class's zone.
func (m *QuantizedMonitor) Watch(net *nn.Network, x *tensor.Tensor) Verdict {
	logits, acts := net.ForwardCapture(x, m.cfg.Layer)
	pred := logits.ArgMax()
	values := projectValues(acts, m.neurons)
	p := m.encode(values)
	z, ok := m.zones[pred]
	if !ok {
		return Verdict{Class: pred, Monitored: false, Pattern: p}
	}
	return Verdict{Class: pred, Monitored: true, OutOfPattern: !z.Contains(p), Pattern: p}
}

// extractQuantizedObs runs inference in parallel and thermometer-encodes
// each sample's monitored values, yielding the same observation form the
// shared tallyMetrics consumes.
func extractQuantizedObs(net *nn.Network, m *QuantizedMonitor, samples []nn.Sample) []obs {
	return nn.ParallelMap(net, samples, func(w *nn.Network, s nn.Sample) obs {
		logits, acts := w.ForwardCapture(s.Input, m.cfg.Layer)
		return obs{pred: logits.ArgMax(), pattern: m.encode(projectValues(acts, m.neurons))}
	})
}

// EvaluateQuantizedAt aggregates Table II-style statistics for a
// quantized monitor at an explicit enlargement level. Like EvaluateAt it
// surfaces the frozen-zone "level not cached" condition as an error
// instead of the Zone-layer panic, so daemons probing γ on a serving
// quantized monitor cannot be crashed by a too-deep query.
func EvaluateQuantizedAt(net *nn.Network, m *QuantizedMonitor, samples []nn.Sample, gamma int) (Metrics, error) {
	if gamma < 0 {
		return Metrics{}, fmt.Errorf("core: negative gamma %d", gamma)
	}
	return tallyMetrics(extractQuantizedObs(net, m, samples), samples, m.zones,
		func(z *Zone, p Pattern) (bool, error) { return z.ContainsAtErr(gamma, p) })
}

// EvaluateQuantized aggregates Table II-style statistics for a quantized
// monitor.
func EvaluateQuantized(net *nn.Network, m *QuantizedMonitor, samples []nn.Sample) Metrics {
	out, _ := tallyMetrics(extractQuantizedObs(net, m, samples), samples, m.zones,
		func(z *Zone, p Pattern) (bool, error) { return z.Contains(p), nil })
	return out
}
