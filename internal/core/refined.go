package core

import (
	"fmt"

	"napmon/internal/absdom"
	"napmon/internal/nn"
	"napmon/internal/tensor"
)

// Refined monitors implement the paper's §V extension 2: instead of
// abstracting each neuron to a single on/off bit, they keep numerical
// abstractions of the visited activation *values* — interval boxes or
// difference bound matrices (Miné 2001) — "to better capture an abstract
// representation of the visited activation patterns". The ε tolerance is
// the numerical analogue of the Hamming-γ enlargement.

// RefinedDomain selects the numerical abstract domain.
type RefinedDomain int

// The supported refined domains.
const (
	// DomainBox tracks an interval per monitored neuron.
	DomainBox RefinedDomain = iota
	// DomainDBM additionally tracks pairwise difference bounds between
	// monitored neurons (strictly more precise than DomainBox).
	DomainDBM
)

func (d RefinedDomain) String() string {
	switch d {
	case DomainBox:
		return "box"
	case DomainDBM:
		return "dbm"
	default:
		return fmt.Sprintf("RefinedDomain(%d)", int(d))
	}
}

// RefinedConfig specifies a refined monitor.
type RefinedConfig struct {
	// Layer, Classes and Neurons have the same meaning as in Config.
	Layer   int
	Classes []int
	Neurons []int
	// Domain selects boxes or DBMs.
	Domain RefinedDomain
	// Epsilon enlarges every bound at query time (the coarseness dial).
	Epsilon float64
	// PerPattern refines each visited on/off pattern with its own
	// abstract element; when false one element covers the whole class.
	// Per-pattern monitors are strictly finer than the BDD monitor at
	// γ = 0: a flagged input either shows an unseen pattern or unseen
	// value magnitudes under a seen pattern.
	PerPattern bool
}

// refinedElement is one abstract value-set with the operations the
// monitor needs; implemented by boxElem and dbmElem.
type refinedElement interface {
	join(p []float64)
	contains(p []float64, eps float64) bool
	finalize() // one-time closure after building (DBM canonicalization)
}

type boxElem struct{ b *absdom.Box }

func (e *boxElem) join(p []float64)                       { e.b.Join(p) }
func (e *boxElem) contains(p []float64, eps float64) bool { return e.b.Contains(p, eps) }
func (e *boxElem) finalize()                              {}

type dbmElem struct{ d *absdom.DBM }

func (e *dbmElem) join(p []float64)                       { e.d.Join(p) }
func (e *dbmElem) contains(p []float64, eps float64) bool { return e.d.Contains(p, eps) }
func (e *dbmElem) finalize()                              { e.d.Canonicalize() }

// refinedClassZone holds the abstraction for one class.
type refinedClassZone struct {
	whole    refinedElement            // used when !PerPattern
	byKey    map[string]refinedElement // used when PerPattern
	inserted int
}

// RefinedMonitor is a value-level activation monitor.
type RefinedMonitor struct {
	cfg     RefinedConfig
	neurons []int
	zones   map[int]*refinedClassZone
}

// newElement allocates an abstract element of the configured domain.
func (cfg RefinedConfig) newElement(dim int) refinedElement {
	switch cfg.Domain {
	case DomainBox:
		return &boxElem{b: absdom.NewBox(dim)}
	case DomainDBM:
		return &dbmElem{d: absdom.NewDBM(dim)}
	default:
		panic("core: unknown refined domain")
	}
}

// BuildRefined constructs a refined monitor by the same recipe as
// Algorithm 1: only correctly classified training samples contribute, to
// the zone of their ground-truth class.
func BuildRefined(net *nn.Network, train []nn.Sample, cfg RefinedConfig) (*RefinedMonitor, error) {
	base, err := newMonitor(net, Config{
		Layer:   cfg.Layer,
		Classes: cfg.Classes,
		Neurons: cfg.Neurons,
	})
	if err != nil {
		return nil, err
	}
	if cfg.Epsilon < 0 {
		return nil, fmt.Errorf("core: negative epsilon %v", cfg.Epsilon)
	}
	m := &RefinedMonitor{
		cfg:     cfg,
		neurons: base.neurons,
		zones:   make(map[int]*refinedClassZone, len(base.zones)),
	}
	for c := range base.zones {
		m.zones[c] = &refinedClassZone{byKey: map[string]refinedElement{}}
	}
	type obs struct {
		pred   int
		values []float64
	}
	results := nn.ParallelMap(net, train, func(w *nn.Network, s nn.Sample) obs {
		logits, acts := w.ForwardCapture(s.Input, cfg.Layer)
		return obs{pred: logits.ArgMax(), values: projectValues(acts, m.neurons)}
	})
	dim := len(m.neurons)
	for i, r := range results {
		if r.pred != train[i].Label {
			continue
		}
		z, ok := m.zones[train[i].Label]
		if !ok {
			continue
		}
		z.inserted++
		if cfg.PerPattern {
			key := valuesPattern(r.values).Key()
			el, ok := z.byKey[key]
			if !ok {
				el = cfg.newElement(dim)
				z.byKey[key] = el
			}
			el.join(r.values)
		} else {
			if z.whole == nil {
				z.whole = cfg.newElement(dim)
			}
			z.whole.join(r.values)
		}
	}
	for _, z := range m.zones {
		if z.whole != nil {
			z.whole.finalize()
		}
		for _, el := range z.byKey {
			el.finalize()
		}
	}
	return m, nil
}

// projectValues extracts the monitored neuron values from a captured
// activation tensor.
func projectValues(acts *tensor.Tensor, neurons []int) []float64 {
	out := make([]float64, len(neurons))
	data := acts.Data()
	for i, n := range neurons {
		out[i] = data[n]
	}
	return out
}

// valuesPattern derives the on/off pattern of a value vector.
func valuesPattern(values []float64) Pattern {
	p := make(Pattern, len(values))
	for i, v := range values {
		p[i] = v > 0
	}
	return p
}

// Config returns the monitor's configuration.
func (m *RefinedMonitor) Config() RefinedConfig { return m.cfg }

// Neurons returns the monitored neuron indices.
func (m *RefinedMonitor) Neurons() []int { return m.neurons }

// Elements returns how many abstract elements class c's zone holds
// (distinct refined patterns, or 1 when PerPattern is false and the class
// saw data).
func (m *RefinedMonitor) Elements(c int) int {
	z, ok := m.zones[c]
	if !ok {
		return 0
	}
	if m.cfg.PerPattern {
		return len(z.byKey)
	}
	if z.whole == nil {
		return 0
	}
	return 1
}

// Watch classifies x and checks its monitored activation values against
// the predicted class's refined zone.
func (m *RefinedMonitor) Watch(net *nn.Network, x *tensor.Tensor) Verdict {
	logits, acts := net.ForwardCapture(x, m.cfg.Layer)
	pred := logits.ArgMax()
	values := projectValues(acts, m.neurons)
	pattern := valuesPattern(values)
	z, ok := m.zones[pred]
	if !ok {
		return Verdict{Class: pred, Monitored: false, Pattern: pattern}
	}
	return Verdict{
		Class:        pred,
		Monitored:    true,
		OutOfPattern: !m.zoneContains(z, pattern, values),
		Pattern:      pattern,
	}
}

func (m *RefinedMonitor) zoneContains(z *refinedClassZone, pattern Pattern, values []float64) bool {
	if m.cfg.PerPattern {
		el, ok := z.byKey[pattern.Key()]
		if !ok {
			return false
		}
		return el.contains(values, m.cfg.Epsilon)
	}
	if z.whole == nil {
		return false
	}
	return z.whole.contains(values, m.cfg.Epsilon)
}

// EvaluateRefined aggregates Table II-style statistics for a refined
// monitor over a labelled dataset.
func EvaluateRefined(net *nn.Network, m *RefinedMonitor, samples []nn.Sample) Metrics {
	type obs struct {
		pred   int
		values []float64
	}
	results := nn.ParallelMap(net, samples, func(w *nn.Network, s nn.Sample) obs {
		logits, acts := w.ForwardCapture(s.Input, m.cfg.Layer)
		return obs{pred: logits.ArgMax(), values: projectValues(acts, m.neurons)}
	})
	var out Metrics
	out.Total = len(samples)
	for i, r := range results {
		mis := r.pred != samples[i].Label
		if mis {
			out.Misclassified++
		}
		z, ok := m.zones[r.pred]
		if !ok {
			continue
		}
		out.Watched++
		if !m.zoneContains(z, valuesPattern(r.values), r.values) {
			out.OutOfPattern++
			if mis {
				out.OutOfPatternMisclassified++
			}
		}
	}
	return out
}
