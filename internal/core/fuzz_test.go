package core

// FuzzPatternRoundTrip fuzzes the pattern encodings the serving and
// online-update wire paths rely on: the 0/1 String form (the
// napmon-serve /watch response and /learn request body) must round-trip
// through ParsePattern bit-exactly, the compact Key form must be
// injective, and a fuzzed pattern inserted into a zone must be found by
// the BDD membership query at γ=0 and at every Hamming-neighbor level.

import (
	"testing"
)

func FuzzPatternRoundTrip(f *testing.F) {
	f.Add([]byte{0x00})
	f.Add([]byte{0xFF, 0x0F})
	f.Add([]byte{0xAA, 0x55, 0xC3})
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) == 0 || len(data) > 8 {
			return // keep zones small: ≤ 64 neurons
		}
		width := len(data) * 8
		p := make(Pattern, width)
		for i := range p {
			p[i] = data[i/8]&(1<<(i%8)) != 0
		}

		// String → ParsePattern round trip.
		s := p.String()
		if len(s) != width {
			t.Fatalf("String length %d, want %d", len(s), width)
		}
		q, err := ParsePattern(s)
		if err != nil {
			t.Fatalf("ParsePattern(%q): %v", s, err)
		}
		if Hamming(p, q) != 0 {
			t.Fatalf("round trip changed the pattern: %s -> %s", p, q)
		}

		// ParsePattern rejects anything outside {0,1}.
		if _, err := ParsePattern(s + "2"); err == nil {
			t.Fatal("ParsePattern accepted a '2'")
		}

		// AppendPacked → UnpackPattern round trip, and agreement with
		// the string codec — the shared-codec invariant the binary wire
		// protocol (internal/wire) depends on.
		packed := p.AppendPacked(nil)
		up, err := UnpackPattern(packed, width)
		if err != nil {
			t.Fatalf("UnpackPattern: %v", err)
		}
		if Hamming(p, up) != 0 {
			t.Fatalf("packed round trip changed the pattern: %s -> %s", p, up)
		}
		if Hamming(q, up) != 0 {
			t.Fatal("string codec and packed codec disagree")
		}

		// Key is injective against every 1-bit neighbor (and self-equal).
		if p.Key() != q.Key() {
			t.Fatal("equal patterns produced different keys")
		}
		for i := 0; i < width; i++ {
			n := p.Clone()
			n[i] = !n[i]
			if n.Key() == p.Key() {
				t.Fatalf("key collision with neighbor %d", i)
			}
		}

		// Zone round trip: the inserted pattern is a member at γ=0; its
		// 1-bit neighbors are members exactly at γ≥1 (and are the only
		// distance-1 additions).
		z := NewZone(width)
		z.Insert(p)
		if !z.Contains(p) {
			t.Fatal("inserted pattern not in zone at gamma 0")
		}
		if err := z.SetGamma(1); err != nil {
			t.Fatal(err)
		}
		for i := 0; i < width; i++ {
			n := p.Clone()
			n[i] = !n[i]
			if z.ContainsAt(0, n) {
				t.Fatalf("distance-1 neighbor %d in zone at gamma 0", i)
			}
			if !z.Contains(n) {
				t.Fatalf("distance-1 neighbor %d missing at gamma 1", i)
			}
		}
		if got, want := z.PatternCount(), float64(1+width); got != want {
			t.Fatalf("gamma-1 ball holds %v patterns, want %v", got, want)
		}
	})
}
