package core

import (
	"testing"

	"napmon/internal/nn"
)

func buildQuantized(t *testing.T, net *nn.Network, train []nn.Sample, layer int, cfg QuantizedConfig) *QuantizedMonitor {
	t.Helper()
	cfg.Layer = layer
	m, err := BuildQuantized(net, train, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestQuantizedSoundness(t *testing.T) {
	net, layer, train, _ := trainedToyNet(t, 40)
	for _, levels := range []int{2, 3, 4} {
		m := buildQuantized(t, net, train, layer, QuantizedConfig{Levels: levels})
		for _, s := range train {
			v := m.Watch(net, s.Input)
			if v.Class == s.Label && v.OutOfPattern {
				t.Fatalf("levels=%d: correctly classified training sample flagged", levels)
			}
		}
	}
}

func TestQuantizedTwoLevelsMatchesBinary(t *testing.T) {
	// Levels=2 with threshold 0 is exactly the paper's binary pattern
	// monitor: verdicts must agree with Build at the same gamma.
	net, layer, train, val := trainedToyNet(t, 41)
	q := buildQuantized(t, net, train, layer, QuantizedConfig{Levels: 2, Gamma: 1})
	b, err := Build(net, train, Config{Layer: layer, Gamma: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range val {
		vq := q.Watch(net, s.Input)
		vb := b.Watch(net, s.Input)
		if vq.OutOfPattern != vb.OutOfPattern {
			t.Fatal("2-level quantized monitor disagrees with binary monitor")
		}
	}
}

func TestQuantizedFinerThanBinary(t *testing.T) {
	// More levels can only add flags at gamma 0: every input rejected by
	// the binary monitor shows an unseen on/off projection, which implies
	// an unseen thermometer pattern.
	net, layer, train, val := trainedToyNet(t, 42)
	q := buildQuantized(t, net, train, layer, QuantizedConfig{Levels: 4, Gamma: 0})
	b, err := Build(net, train, Config{Layer: layer, Gamma: 0})
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range val {
		if b.Watch(net, s.Input).OutOfPattern && !q.Watch(net, s.Input).OutOfPattern {
			t.Fatal("quantized monitor accepted a pattern the binary monitor rejects")
		}
	}
}

func TestQuantizedThresholdsAscending(t *testing.T) {
	net, layer, train, _ := trainedToyNet(t, 43)
	m := buildQuantized(t, net, train, layer, QuantizedConfig{Levels: 4})
	for i := range m.Neurons() {
		ts := m.Thresholds(i)
		if len(ts) != 3 {
			t.Fatalf("neuron %d has %d thresholds, want 3", i, len(ts))
		}
		if ts[0] != 0 {
			t.Fatalf("first threshold must be the ReLU boundary, got %v", ts[0])
		}
		for j := 1; j < len(ts); j++ {
			if ts[j] <= ts[j-1] {
				t.Fatalf("thresholds not ascending: %v", ts)
			}
		}
	}
}

func TestQuantizedGammaMonotone(t *testing.T) {
	net, layer, train, val := trainedToyNet(t, 44)
	m := buildQuantized(t, net, train, layer, QuantizedConfig{Levels: 3, Gamma: 0})
	prev := -1
	for g := 0; g <= 3; g++ {
		m.SetGamma(g)
		got := EvaluateQuantized(net, m, val).OutOfPattern
		if prev >= 0 && got > prev {
			t.Fatalf("flags increased with gamma: %d -> %d", prev, got)
		}
		prev = got
	}
}

func TestQuantizedZoneWidth(t *testing.T) {
	net, layer, train, _ := trainedToyNet(t, 45)
	m := buildQuantized(t, net, train, layer, QuantizedConfig{Levels: 4, Neurons: []int{0, 1, 2}})
	if got := m.Zone(0).Width(); got != 9 { // 3 neurons × (4-1) bits
		t.Fatalf("zone width = %d, want 9", got)
	}
}

func TestQuantizedRejectsBadLevels(t *testing.T) {
	net, layer, train, _ := trainedToyNet(t, 46)
	if _, err := BuildQuantized(net, train, QuantizedConfig{Layer: layer, Levels: 1}); err == nil {
		t.Fatal("Levels=1 accepted")
	}
	if _, err := BuildQuantized(net, nil, QuantizedConfig{Layer: layer, Levels: 2}); err == nil {
		t.Fatal("empty training set accepted")
	}
}

func TestQuantizedEvaluateConsistentWithWatch(t *testing.T) {
	net, layer, train, val := trainedToyNet(t, 47)
	m := buildQuantized(t, net, train, layer, QuantizedConfig{Levels: 3, Gamma: 1})
	want := Metrics{Total: len(val)}
	for _, s := range val {
		v := m.Watch(net, s.Input)
		mis := v.Class != s.Label
		if mis {
			want.Misclassified++
		}
		if v.Monitored {
			want.Watched++
			if v.OutOfPattern {
				want.OutOfPattern++
				if mis {
					want.OutOfPatternMisclassified++
				}
			}
		}
	}
	if got := EvaluateQuantized(net, m, val); got != want {
		t.Fatalf("EvaluateQuantized = %+v, want %+v", got, want)
	}
}

func TestThermometerEncoding(t *testing.T) {
	net, layer, train, _ := trainedToyNet(t, 48)
	m := buildQuantized(t, net, train, layer, QuantizedConfig{Levels: 4, Neurons: []int{0, 1}})
	// Level of a very negative value is 0; of a huge value is 3.
	if got := m.level(0, -5); got != 0 {
		t.Fatalf("level(-5) = %d", got)
	}
	if got := m.level(0, 1e12); got != 3 {
		t.Fatalf("level(huge) = %d", got)
	}
	p := m.encode([]float64{-1, 1e12})
	want := Pattern{false, false, false, true, true, true}
	for i := range want {
		if p[i] != want[i] {
			t.Fatalf("encode = %v, want %v", p, want)
		}
	}
}
