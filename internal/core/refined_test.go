package core

import (
	"testing"

	"napmon/internal/nn"
)

func buildRefined(t *testing.T, net *nn.Network, train []nn.Sample, layer int, cfg RefinedConfig) *RefinedMonitor {
	t.Helper()
	cfg.Layer = layer
	m, err := BuildRefined(net, train, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestRefinedSoundness(t *testing.T) {
	// Correctly classified training samples must never be flagged, for
	// both domains and both granularities, at epsilon 0.
	net, layer, train, _ := trainedToyNet(t, 30)
	for _, domain := range []RefinedDomain{DomainBox, DomainDBM} {
		for _, perPattern := range []bool{false, true} {
			m := buildRefined(t, net, train, layer, RefinedConfig{
				Domain: domain, PerPattern: perPattern, Epsilon: 1e-9,
			})
			for _, s := range train {
				v := m.Watch(net, s.Input)
				if v.Class != s.Label {
					continue
				}
				if v.OutOfPattern {
					t.Fatalf("domain=%v perPattern=%v: training sample flagged",
						domain, perPattern)
				}
			}
		}
	}
}

func TestRefinedPerPatternStricterThanBDDGamma0(t *testing.T) {
	// Per-pattern refined monitors must flag a superset of what the
	// pattern (BDD) monitor flags at gamma 0: an unseen pattern is always
	// out, and seen patterns can additionally be rejected on values.
	net, layer, train, val := trainedToyNet(t, 31)
	bddMon, err := Build(net, train, Config{Layer: layer, Gamma: 0})
	if err != nil {
		t.Fatal(err)
	}
	refined := buildRefined(t, net, train, layer, RefinedConfig{
		Domain: DomainBox, PerPattern: true, Epsilon: 0,
	})
	for _, s := range val {
		b := bddMon.Watch(net, s.Input)
		r := refined.Watch(net, s.Input)
		if b.OutOfPattern && !r.OutOfPattern {
			t.Fatal("refined monitor accepted a pattern the BDD monitor rejects")
		}
	}
}

func TestRefinedDBMStricterThanBox(t *testing.T) {
	// With identical configuration, every input the DBM accepts must be
	// accepted by the box (the DBM abstraction is contained in its box
	// projection).
	net, layer, train, val := trainedToyNet(t, 32)
	box := buildRefined(t, net, train, layer, RefinedConfig{
		Domain: DomainBox, PerPattern: false, Epsilon: 0.05,
	})
	dbm := buildRefined(t, net, train, layer, RefinedConfig{
		Domain: DomainDBM, PerPattern: false, Epsilon: 0.05,
	})
	for _, s := range val {
		vb := box.Watch(net, s.Input)
		vd := dbm.Watch(net, s.Input)
		if !vd.OutOfPattern && vb.OutOfPattern {
			t.Fatal("box rejected an input the DBM accepts")
		}
	}
}

func TestRefinedEpsilonMonotone(t *testing.T) {
	// Larger epsilon can only reduce the number of flags.
	net, layer, train, val := trainedToyNet(t, 33)
	flags := func(eps float64) int {
		m := buildRefined(t, net, train, layer, RefinedConfig{
			Domain: DomainBox, PerPattern: true, Epsilon: eps,
		})
		return EvaluateRefined(net, m, val).OutOfPattern
	}
	a, b, c := flags(0), flags(0.5), flags(5)
	if b > a || c > b {
		t.Fatalf("flag counts not monotone in epsilon: %d, %d, %d", a, b, c)
	}
}

func TestRefinedEvaluateConsistentWithWatch(t *testing.T) {
	net, layer, train, val := trainedToyNet(t, 34)
	m := buildRefined(t, net, train, layer, RefinedConfig{
		Domain: DomainDBM, PerPattern: true, Epsilon: 0.1,
	})
	want := Metrics{Total: len(val)}
	for _, s := range val {
		v := m.Watch(net, s.Input)
		mis := v.Class != s.Label
		if mis {
			want.Misclassified++
		}
		if v.Monitored {
			want.Watched++
			if v.OutOfPattern {
				want.OutOfPattern++
				if mis {
					want.OutOfPatternMisclassified++
				}
			}
		}
	}
	if got := EvaluateRefined(net, m, val); got != want {
		t.Fatalf("EvaluateRefined = %+v, want %+v", got, want)
	}
}

func TestRefinedClassSubsetAndElements(t *testing.T) {
	net, layer, train, _ := trainedToyNet(t, 35)
	m := buildRefined(t, net, train, layer, RefinedConfig{
		Domain: DomainBox, PerPattern: true, Classes: []int{1},
	})
	if m.Elements(0) != 0 {
		t.Fatal("unmonitored class has elements")
	}
	if m.Elements(1) == 0 {
		t.Fatal("monitored class has no elements")
	}
	whole := buildRefined(t, net, train, layer, RefinedConfig{
		Domain: DomainBox, PerPattern: false, Classes: []int{1},
	})
	if whole.Elements(1) != 1 {
		t.Fatalf("whole-class zone has %d elements, want 1", whole.Elements(1))
	}
}

func TestRefinedRejectsNegativeEpsilon(t *testing.T) {
	net, layer, train, _ := trainedToyNet(t, 36)
	if _, err := BuildRefined(net, train, RefinedConfig{Layer: layer, Epsilon: -1}); err == nil {
		t.Fatal("negative epsilon accepted")
	}
}

func TestRefinedDomainString(t *testing.T) {
	if DomainBox.String() != "box" || DomainDBM.String() != "dbm" {
		t.Fatal("domain names wrong")
	}
	if RefinedDomain(9).String() == "" {
		t.Fatal("unknown domain must still render")
	}
}

func TestRefinedNeuronSubset(t *testing.T) {
	net, layer, train, _ := trainedToyNet(t, 37)
	m := buildRefined(t, net, train, layer, RefinedConfig{
		Domain: DomainDBM, PerPattern: false, Neurons: []int{0, 3, 6},
	})
	if got := len(m.Neurons()); got != 3 {
		t.Fatalf("monitored %d neurons, want 3", got)
	}
	v := m.Watch(net, train[0].Input)
	if len(v.Pattern) != 3 {
		t.Fatalf("verdict pattern width %d", len(v.Pattern))
	}
}

func BenchmarkRefinedWatchDBM(b *testing.B) {
	net, layer, train, val := trainedToyNet(b, 38)
	m, err := BuildRefined(net, train, RefinedConfig{
		Layer: layer, Domain: DomainDBM, PerPattern: true, Epsilon: 0.1,
	})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Watch(net, val[i%len(val)].Input)
	}
}
