package core

import (
	"fmt"
	"math"
	"sort"

	"napmon/internal/nn"
)

// Gradient-based neuron selection (paper §II, "Neuron selection via
// gradient analysis"): BDDs have a practical variable limit of a couple of
// hundred, so wide layers are monitored through the subset of neurons
// whose influence |∂n_c/∂n_i| on the class output is largest.

// SelectNeuronsForClass ranks the neurons of the monitored layer by the
// mean absolute gradient of class's logit with respect to each neuron's
// activation, averaged over the provided samples (typically training
// samples of that class), and returns the indices of the top fraction,
// sorted ascending. fraction must be in (0, 1].
func SelectNeuronsForClass(net *nn.Network, samples []nn.Sample, layer, class int, fraction float64) ([]int, error) {
	if len(samples) == 0 {
		return nil, fmt.Errorf("core: neuron selection needs at least one sample")
	}
	scores, err := neuronScores(net, samples, layer, class)
	if err != nil {
		return nil, err
	}
	return topFraction(scores, fraction)
}

// SelectNeurons ranks neurons for a multi-class monitor: each sample
// contributes the gradient of its own ground-truth class's logit, so the
// score reflects how strongly a neuron drives the decisions the monitor
// must certify. The top fraction is returned sorted ascending.
func SelectNeurons(net *nn.Network, samples []nn.Sample, layer int, fraction float64) ([]int, error) {
	if len(samples) == 0 {
		return nil, fmt.Errorf("core: neuron selection needs at least one sample")
	}
	var scores []float64
	for _, s := range samples {
		g := net.GradientAtLayer(s.Input, s.Label, layer)
		if scores == nil {
			scores = make([]float64, g.Len())
		}
		for i, v := range g.Data() {
			scores[i] += math.Abs(v)
		}
	}
	net.ZeroGrads()
	return topFraction(scores, fraction)
}

// SelectNeuronsByWeight implements the paper's special case: when the
// monitored layer feeds a linear output layer directly, ∂n_c/∂n_i is
// simply the weight connecting neuron i to output c, so selection needs no
// backpropagation. out is the network's final fully-connected layer.
func SelectNeuronsByWeight(out *nn.Dense, class int, fraction float64) ([]int, error) {
	w := out.Weights()
	if class < 0 || class >= w.Dim(0) {
		return nil, fmt.Errorf("core: class %d out of range [0,%d)", class, w.Dim(0))
	}
	scores := make([]float64, w.Dim(1))
	for i := range scores {
		scores[i] = math.Abs(w.At(class, i))
	}
	return topFraction(scores, fraction)
}

// neuronScores accumulates |∂ logit_class / ∂ n_i| over samples.
func neuronScores(net *nn.Network, samples []nn.Sample, layer, class int) ([]float64, error) {
	var scores []float64
	for _, s := range samples {
		g := net.GradientAtLayer(s.Input, class, layer)
		if scores == nil {
			scores = make([]float64, g.Len())
		} else if len(scores) != g.Len() {
			return nil, fmt.Errorf("core: inconsistent layer width across samples")
		}
		for i, v := range g.Data() {
			scores[i] += math.Abs(v)
		}
	}
	net.ZeroGrads()
	return scores, nil
}

// topFraction returns the indices of the ceil(fraction*len) highest
// scores, sorted ascending. Ties resolve toward lower indices.
func topFraction(scores []float64, fraction float64) ([]int, error) {
	if fraction <= 0 || fraction > 1 {
		return nil, fmt.Errorf("core: fraction %v outside (0,1]", fraction)
	}
	k := int(math.Ceil(fraction * float64(len(scores))))
	if k < 1 {
		k = 1
	}
	idx := make([]int, len(scores))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool { return scores[idx[a]] > scores[idx[b]] })
	top := append([]int(nil), idx[:k]...)
	sort.Ints(top)
	return top, nil
}
