// Compact monitor snapshots: the warm-start/replication wire format.
// Where the Save/Load monitor file serializes the zone BDDs node by node
// (a build-time artifact), a snapshot serializes the *serving* state —
// every zone's compiled query plans, varint/literal-run framed, plus an
// epoch-keyed tail of recent deltas with bit-packed patterns — so a
// replica can warm-start mid-stream: load the snapshot, publish the
// leader's exact epoch id, and converge bit-for-bit by replaying the
// delta entries whose epoch keys exceed its own (the same monotone-key
// addressing the epoch machinery already serves by).
//
// Layout (all integers varint; signed values zigzag):
//
//	"NAPSNAP1"                            8-byte magic
//	layer (zigzag; -1 = pattern-built)    monitor configuration
//	gamma, epoch, layerWidth              serving-epoch γ, id, d_l
//	n, neuron[0], Δneuron...              monitored neurons, delta-coded
//	numClasses, then per class ascending:
//	  class, inserts, levels
//	  per level one plan: entry code (0 false / 1 true / entry+2),
//	    then progLen and literal runs — [runLen, Δva, branch targets...]
//	    with each lo/hi coded 0 false / 1 true / (target-index)+1
//	delta tail: count, then per entry epoch, kind (0 patterns/1 gamma),
//	  and either per-class bit-packed pattern blocks or the new γ
//	uint32 LE FNV-1a                      over magic + body
//
// The target encoding is relative to the consuming branch, so codes stay
// small for the dense forward-local programs Compile emits, and the
// va runs collapse each level's column to two varints — the same
// "literal run + copy" economy as an LZO literal stream, without the
// match machinery a canonical branch program cannot use anyway.

package core

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"io"
	"sort"

	"napmon/internal/bdd"
)

var snapshotMagic = []byte("NAPSNAP1")
var deltaMagic = []byte("NAPDELT1")

// DeltaEntry is one replicated epoch publication: the update that moved
// the leader's monitor to Epoch. Gamma >= 0 records an UpdateGamma
// re-level; otherwise Delta holds the per-class patterns an UpdateBatch
// absorbed. Entries are totally ordered by their epoch key.
type DeltaEntry struct {
	Epoch uint64
	Gamma int // -1 for a pattern entry
	Delta map[int][]Pattern
}

// Snapshot writes the monitor's serving state to w in the compact
// snapshot format, freezing the monitor first if needed. The serving
// epoch is pinned for the whole write, so the snapshot captures one
// consistent generation even under concurrent updates. tail is an
// optional epoch-keyed delta log to embed (the registry passes its
// recent entries so a follower of a follower can chain).
func (m *Monitor) Snapshot(w io.Writer, tail []DeltaEntry) error {
	m.Freeze()
	e := m.acquire()
	defer e.unpin()

	body := append([]byte(nil), snapshotMagic...)
	body = binary.AppendVarint(body, int64(m.cfg.Layer))
	body = binary.AppendUvarint(body, uint64(e.gamma))
	body = binary.AppendUvarint(body, e.id)
	body = binary.AppendUvarint(body, uint64(m.width))
	body = binary.AppendUvarint(body, uint64(len(m.neurons)))
	prev := 0
	for i, n := range m.neurons {
		if i == 0 {
			body = binary.AppendUvarint(body, uint64(n))
		} else {
			body = binary.AppendUvarint(body, uint64(n-prev))
		}
		prev = n
	}

	classes := make([]int, 0, len(e.zones))
	for c := range e.zones {
		classes = append(classes, c)
	}
	sort.Ints(classes)
	body = binary.AppendUvarint(body, uint64(len(classes)))
	for _, c := range classes {
		z := e.zones[c]
		body = binary.AppendUvarint(body, uint64(c))
		body = binary.AppendUvarint(body, uint64(z.base))
		body = binary.AppendUvarint(body, uint64(len(z.plans)))
		for _, plan := range z.plans {
			body = appendPlan(body, plan)
		}
	}

	var err error
	if body, err = appendDeltaTail(body, len(m.neurons), tail); err != nil {
		return err
	}
	return finishChecksummed(w, body)
}

// appendPlan writes one compiled branch program.
func appendPlan(dst []byte, p *bdd.Compiled) []byte {
	entry := p.Entry()
	if p.Len() == 0 {
		if entry == bdd.TerminalTrue {
			return binary.AppendUvarint(dst, 1)
		}
		return binary.AppendUvarint(dst, 0)
	}
	dst = binary.AppendUvarint(dst, uint64(entry)+2)
	dst = binary.AppendUvarint(dst, uint64(p.Len()))
	prevVa := int32(0)
	for i := 0; i < p.Len(); {
		va := p.Branch(i).Va
		run := i + 1
		for run < p.Len() && p.Branch(run).Va == va {
			run++
		}
		dst = binary.AppendUvarint(dst, uint64(run-i))
		dst = binary.AppendUvarint(dst, uint64(va-prevVa))
		prevVa = va
		for ; i < run; i++ {
			b := p.Branch(i)
			dst = binary.AppendUvarint(dst, targetCode(i, b.Lo))
			dst = binary.AppendUvarint(dst, targetCode(i, b.Hi))
		}
	}
	return dst
}

// targetCode encodes a branch target relative to the branch consuming
// it: 0 false, 1 true, else the forward distance-based index code.
func targetCode(i int, t int32) uint64 {
	switch t {
	case bdd.TerminalFalse:
		return 0
	case bdd.TerminalTrue:
		return 1
	default:
		return uint64(t-int32(i)) + 1
	}
}

// appendDeltaTail writes the epoch-keyed delta entries.
func appendDeltaTail(dst []byte, width int, tail []DeltaEntry) ([]byte, error) {
	dst = binary.AppendUvarint(dst, uint64(len(tail)))
	for _, e := range tail {
		dst = binary.AppendUvarint(dst, e.Epoch)
		if e.Gamma >= 0 {
			dst = binary.AppendUvarint(dst, 1)
			dst = binary.AppendUvarint(dst, uint64(e.Gamma))
			continue
		}
		dst = binary.AppendUvarint(dst, 0)
		classes := make([]int, 0, len(e.Delta))
		for c := range e.Delta {
			classes = append(classes, c)
		}
		sort.Ints(classes)
		dst = binary.AppendUvarint(dst, uint64(len(classes)))
		for _, c := range classes {
			pats := e.Delta[c]
			dst = binary.AppendUvarint(dst, uint64(c))
			dst = binary.AppendUvarint(dst, uint64(len(pats)))
			for _, p := range pats {
				if len(p) != width {
					return nil, fmt.Errorf("core: delta epoch %d class %d pattern width %d, snapshot width %d",
						e.Epoch, c, len(p), width)
				}
				dst = p.AppendPacked(dst)
			}
		}
	}
	return dst, nil
}

// finishChecksummed appends the FNV-1a trailer and writes the frame.
func finishChecksummed(w io.Writer, body []byte) error {
	h := fnv.New32a()
	h.Write(body)
	body = binary.LittleEndian.AppendUint32(body, h.Sum32())
	_, err := w.Write(body)
	return err
}

// snapReader decodes a checksummed varint stream with sticky errors.
type snapReader struct {
	data []byte
	off  int
	err  error
}

func (r *snapReader) fail(format string, args ...any) {
	if r.err == nil {
		r.err = fmt.Errorf("core: snapshot: "+format, args...)
	}
}

func (r *snapReader) uvarint() uint64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Uvarint(r.data[r.off:])
	if n <= 0 {
		r.fail("truncated varint at offset %d", r.off)
		return 0
	}
	r.off += n
	return v
}

func (r *snapReader) varint() int64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Varint(r.data[r.off:])
	if n <= 0 {
		r.fail("truncated varint at offset %d", r.off)
		return 0
	}
	r.off += n
	return v
}

// count reads a length-prefix and bounds it by what the remaining bytes
// could possibly hold (at least one byte per element), so a hostile
// prefix cannot drive a huge allocation.
func (r *snapReader) count(what string) int {
	v := r.uvarint()
	if r.err == nil && v > uint64(len(r.data)-r.off) {
		r.fail("%s count %d exceeds remaining %d bytes", what, v, len(r.data)-r.off)
		return 0
	}
	return int(v)
}

func (r *snapReader) bytes(n int) []byte {
	if r.err != nil {
		return nil
	}
	if len(r.data)-r.off < n {
		r.fail("truncated: need %d bytes at offset %d", n, r.off)
		return nil
	}
	b := r.data[r.off : r.off+n]
	r.off += n
	return b
}

// openChecksummed validates magic and the FNV-1a trailer and returns a
// reader over the body past the magic.
func openChecksummed(data, magic []byte) (*snapReader, error) {
	if len(data) < len(magic)+4 {
		return nil, fmt.Errorf("core: snapshot stream truncated (%d bytes)", len(data))
	}
	if string(data[:len(magic)]) != string(magic) {
		return nil, fmt.Errorf("core: bad snapshot magic %q", data[:len(magic)])
	}
	body, trailer := data[:len(data)-4], data[len(data)-4:]
	h := fnv.New32a()
	h.Write(body)
	if got, want := h.Sum32(), binary.LittleEndian.Uint32(trailer); got != want {
		return nil, fmt.Errorf("core: snapshot checksum mismatch: computed %#x, stored %#x", got, want)
	}
	return &snapReader{data: body, off: len(magic)}, nil
}

// LoadSnapshot reads a snapshot written by Monitor.Snapshot and returns
// a monitor already frozen and serving at the snapshot's epoch id, plus
// the embedded delta tail. The zones are rebuilt from their compiled
// plans through the canonicalizing BDD constructor, so the loaded
// monitor's serialized form is byte-identical to the source monitor's —
// the replication convergence tests pin exactly that.
func LoadSnapshot(r io.Reader) (*Monitor, []DeltaEntry, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, nil, err
	}
	sr, err := openChecksummed(data, snapshotMagic)
	if err != nil {
		return nil, nil, err
	}

	layer := int(sr.varint())
	gamma := int(sr.uvarint())
	epochID := sr.uvarint()
	layerWidth := int(sr.uvarint())
	numNeurons := sr.count("neuron")
	if sr.err != nil {
		return nil, nil, sr.err
	}
	if numNeurons <= 0 {
		return nil, nil, fmt.Errorf("core: snapshot has no monitored neurons")
	}
	if epochID == 0 {
		return nil, nil, fmt.Errorf("core: snapshot epoch 0 (monitor was never frozen)")
	}
	neurons := make([]int, numNeurons)
	prev := -1
	for i := range neurons {
		d := int(sr.uvarint())
		if i == 0 {
			neurons[i] = d
		} else {
			neurons[i] = prev + d
		}
		if sr.err == nil && (neurons[i] <= prev || neurons[i] >= layerWidth) {
			return nil, nil, fmt.Errorf("core: snapshot neuron %d out of order or out of range [0,%d)", neurons[i], layerWidth)
		}
		prev = neurons[i]
	}
	width := numNeurons

	numClasses := sr.count("class")
	if sr.err != nil {
		return nil, nil, sr.err
	}
	zones := make(map[int]*Zone, numClasses)
	classes := make([]int, 0, numClasses)
	prevClass := -1
	for ci := 0; ci < numClasses; ci++ {
		c := int(sr.uvarint())
		base := int(sr.uvarint())
		levels := sr.count("level")
		if sr.err != nil {
			return nil, nil, sr.err
		}
		if c <= prevClass {
			return nil, nil, fmt.Errorf("core: snapshot classes out of order at %d", c)
		}
		prevClass = c
		if levels <= gamma {
			return nil, nil, fmt.Errorf("core: snapshot class %d has %d levels, gamma %d", c, levels, gamma)
		}
		mgr := bdd.NewManager(width)
		roots := make([]bdd.Node, levels)
		for li := range roots {
			plan, err := readPlan(sr, width)
			if err != nil {
				return nil, nil, fmt.Errorf("core: snapshot class %d level %d: %w", c, li, err)
			}
			if roots[li], err = mgr.FromCompiled(plan); err != nil {
				return nil, nil, fmt.Errorf("core: snapshot class %d level %d: %w", c, li, err)
			}
		}
		zones[c] = &Zone{m: mgr, roots: roots, gamma: gamma, base: base}
		classes = append(classes, c)
	}

	tail, err := readDeltaTail(sr, width)
	if err != nil {
		return nil, nil, err
	}
	if sr.off != len(sr.data) {
		return nil, nil, fmt.Errorf("core: snapshot has %d trailing bytes", len(sr.data)-sr.off)
	}
	if len(zones) == 0 {
		return nil, nil, fmt.Errorf("core: snapshot has no zones")
	}

	m := &Monitor{
		cfg:     Config{Layer: layer, Gamma: gamma, Classes: classes},
		neurons: neurons,
		width:   layerWidth,
		zones:   zones,
	}
	m.upd.m = m
	m.initWatchCounters()
	m.freezeAt(epochID)
	return m, tail, nil
}

// readPlan decodes one compiled branch program.
func readPlan(sr *snapReader, numVars int) (*bdd.Compiled, error) {
	code := sr.uvarint()
	if sr.err != nil {
		return nil, sr.err
	}
	switch code {
	case 0:
		return bdd.NewCompiled(numVars, bdd.TerminalFalse, nil)
	case 1:
		return bdd.NewCompiled(numVars, bdd.TerminalTrue, nil)
	}
	entry := int32(code - 2)
	progLen := sr.count("branch")
	branches := make([]bdd.PlanBranch, progLen)
	va := int32(0)
	for i := 0; i < progLen; {
		runLen := int(sr.uvarint())
		va += int32(sr.uvarint())
		if sr.err != nil {
			return nil, sr.err
		}
		if runLen <= 0 || i+runLen > progLen {
			return nil, fmt.Errorf("core: plan run of %d branches at %d overruns program of %d", runLen, i, progLen)
		}
		for end := i + runLen; i < end; i++ {
			lo, err := decodeTarget(i, sr.uvarint())
			if err != nil {
				return nil, err
			}
			hi, err := decodeTarget(i, sr.uvarint())
			if err != nil {
				return nil, err
			}
			branches[i] = bdd.PlanBranch{Va: va, Lo: lo, Hi: hi}
		}
	}
	if sr.err != nil {
		return nil, sr.err
	}
	return bdd.NewCompiled(numVars, entry, branches)
}

func decodeTarget(i int, code uint64) (int32, error) {
	switch code {
	case 0:
		return bdd.TerminalFalse, nil
	case 1:
		return bdd.TerminalTrue, nil
	}
	t := int64(i) + int64(code) - 1
	if t > int64(^uint32(0)>>1) {
		return 0, fmt.Errorf("core: plan target code %d overflows from branch %d", code, i)
	}
	return int32(t), nil
}

// readDeltaTail decodes the epoch-keyed delta entries.
func readDeltaTail(sr *snapReader, width int) ([]DeltaEntry, error) {
	n := sr.count("delta entry")
	if sr.err != nil {
		return nil, sr.err
	}
	entries := make([]DeltaEntry, 0, n)
	packed := PackedLen(width)
	for i := 0; i < n; i++ {
		e := DeltaEntry{Epoch: sr.uvarint(), Gamma: -1}
		kind := sr.uvarint()
		switch kind {
		case 1:
			e.Gamma = int(sr.uvarint())
		case 0:
			nc := sr.count("delta class")
			if sr.err != nil {
				return nil, sr.err
			}
			e.Delta = make(map[int][]Pattern, nc)
			for j := 0; j < nc; j++ {
				c := int(sr.uvarint())
				np := sr.count("delta pattern")
				if sr.err != nil {
					return nil, sr.err
				}
				pats := make([]Pattern, 0, np)
				for k := 0; k < np; k++ {
					raw := sr.bytes(packed)
					if sr.err != nil {
						return nil, sr.err
					}
					p, err := UnpackPattern(raw, width)
					if err != nil {
						return nil, err
					}
					pats = append(pats, p)
				}
				e.Delta[c] = pats
			}
		default:
			if sr.err == nil {
				sr.fail("delta entry %d has unknown kind %d", i, kind)
			}
		}
		if sr.err != nil {
			return nil, sr.err
		}
		entries = append(entries, e)
	}
	return entries, nil
}

// EncodeDeltaStream frames a batch of epoch-keyed delta entries for the
// replication feed (GET /v1/models/{name}/deltas): the same entry
// encoding as the snapshot tail, standalone with its own magic and
// checksum so a follower validates every batch independently.
func EncodeDeltaStream(width int, entries []DeltaEntry) ([]byte, error) {
	body := append([]byte(nil), deltaMagic...)
	body = binary.AppendUvarint(body, uint64(width))
	var err error
	if body, err = appendDeltaTail(body, width, entries); err != nil {
		return nil, err
	}
	h := fnv.New32a()
	h.Write(body)
	return binary.LittleEndian.AppendUint32(body, h.Sum32()), nil
}

// DecodeDeltaStream reads an EncodeDeltaStream frame, validating the
// checksum and that the stream's pattern width matches width.
func DecodeDeltaStream(data []byte, width int) ([]DeltaEntry, error) {
	sr, err := openChecksummed(data, deltaMagic)
	if err != nil {
		return nil, err
	}
	if w := int(sr.uvarint()); sr.err == nil && w != width {
		return nil, fmt.Errorf("core: delta stream width %d, monitor width %d", w, width)
	}
	entries, err := readDeltaTail(sr, width)
	if err != nil {
		return nil, err
	}
	if sr.err != nil {
		return nil, sr.err
	}
	if sr.off != len(sr.data) {
		return nil, fmt.Errorf("core: delta stream has %d trailing bytes", len(sr.data)-sr.off)
	}
	return entries, nil
}
