package core

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
)

// Monitors are built once after training (Algorithm 1) and then deployed;
// serialization lets the deployment load the comfort zones without the
// training set. A monitor file is a JSON header line followed by each
// class's zone BDD stream in header order.

type monitorHeader struct {
	Format  string `json:"format"`
	Layer   int    `json:"layer"`
	Gamma   int    `json:"gamma"`
	Width   int    `json:"width"`
	Neurons []int  `json:"neurons"`
	Classes []int  `json:"classes"`
	Inserts []int  `json:"inserts"` // per class, parallel to Classes
}

const monitorFormat = "napmon-monitor-v1"

// Save writes the monitor (configuration plus all comfort zones at every
// cached enlargement level) to w. On a frozen monitor the serving epoch is
// pinned for the whole write, so the file captures one consistent
// generation — absorbed online updates included — even while further
// updates publish concurrently.
func (m *Monitor) Save(w io.Writer) error {
	zones, gamma := m.zones, m.cfg.Gamma
	if e := m.acquire(); e != nil {
		defer e.unpin()
		zones, gamma = e.zones, e.gamma
	}
	bw := bufio.NewWriter(w)
	classes := make([]int, 0, len(zones))
	for c := range zones {
		classes = append(classes, c)
	}
	sort.Ints(classes)
	inserts := make([]int, len(classes))
	for i, c := range classes {
		inserts[i] = zones[c].InsertCount()
	}
	hdr, err := json.Marshal(monitorHeader{
		Format:  monitorFormat,
		Layer:   m.cfg.Layer,
		Gamma:   gamma,
		Width:   m.width,
		Neurons: m.neurons,
		Classes: classes,
		Inserts: inserts,
	})
	if err != nil {
		return err
	}
	if _, err := bw.Write(append(hdr, '\n')); err != nil {
		return err
	}
	for _, c := range classes {
		if err := zones[c].save(bw); err != nil {
			return fmt.Errorf("core: saving zone %d: %w", c, err)
		}
	}
	return bw.Flush()
}

// Load reads a monitor previously written with Save.
func Load(r io.Reader) (*Monitor, error) {
	br := bufio.NewReader(r)
	line, err := br.ReadBytes('\n')
	if err != nil {
		return nil, fmt.Errorf("core: reading monitor header: %w", err)
	}
	var hdr monitorHeader
	if err := json.Unmarshal(line, &hdr); err != nil {
		return nil, fmt.Errorf("core: decoding monitor header: %w", err)
	}
	if hdr.Format != monitorFormat {
		return nil, fmt.Errorf("core: unsupported monitor format %q", hdr.Format)
	}
	if len(hdr.Inserts) != len(hdr.Classes) {
		return nil, fmt.Errorf("core: malformed monitor header")
	}
	m := &Monitor{
		cfg: Config{
			Layer:   hdr.Layer,
			Gamma:   hdr.Gamma,
			Classes: hdr.Classes,
			Neurons: hdr.Neurons,
		},
		neurons: hdr.Neurons,
		width:   hdr.Width,
		zones:   make(map[int]*Zone, len(hdr.Classes)),
	}
	for i, c := range hdr.Classes {
		z, err := loadZone(br, len(hdr.Neurons), hdr.Gamma, hdr.Inserts[i])
		if err != nil {
			return nil, fmt.Errorf("core: loading zone %d: %w", c, err)
		}
		m.zones[c] = z
	}
	m.upd.m = m
	m.initWatchCounters()
	return m, nil
}

// SaveFile writes the monitor to the named file.
func (m *Monitor) SaveFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := m.Save(f); err != nil {
		return err
	}
	return f.Close()
}

// LoadFile reads a monitor from the named file.
func LoadFile(path string) (*Monitor, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Load(f)
}
