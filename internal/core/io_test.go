package core

import (
	"bytes"
	"path/filepath"
	"testing"

	"napmon/internal/nn"
	"napmon/internal/rng"
)

func TestMonitorSaveLoadFile(t *testing.T) {
	net, layer, train, val := trainedToyNet(t, 60)
	mon, err := Build(net, train, Config{Layer: layer, Gamma: 1})
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "toy.monitor")
	if err := mon.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if a, b := Evaluate(net, mon, val), Evaluate(net, loaded, val); a != b {
		t.Fatalf("metrics differ after file round trip: %+v vs %+v", a, b)
	}
}

func TestLoadFileMissing(t *testing.T) {
	if _, err := LoadFile(filepath.Join(t.TempDir(), "absent.monitor")); err == nil {
		t.Fatal("missing file accepted")
	}
}

func TestLoadTruncatedStream(t *testing.T) {
	// Corrupt/truncated monitor files must fail cleanly, never panic.
	net, layer, train, _ := trainedToyNet(t, 61)
	mon, err := Build(net, train, Config{Layer: layer, Gamma: 1})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := mon.Save(&buf); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	for _, cut := range []int{1, len(full) / 4, len(full) / 2, len(full) - 3} {
		if _, err := Load(bytes.NewReader(full[:cut])); err == nil {
			t.Fatalf("truncation at %d bytes accepted", cut)
		}
	}
}

func TestLoadCorruptedHeader(t *testing.T) {
	net, layer, train, _ := trainedToyNet(t, 62)
	mon, err := Build(net, train, Config{Layer: layer, Gamma: 0})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := mon.Save(&buf); err != nil {
		t.Fatal(err)
	}
	corrupted := append([]byte("{\"format\":\"other\"}\n"), buf.Bytes()...)
	if _, err := Load(bytes.NewReader(corrupted)); err == nil {
		t.Fatal("wrong format header accepted")
	}
}

func TestBuildRejectsNonDenseOutput(t *testing.T) {
	// probeDims requires a fully-connected output layer.
	r := rng.New(63)
	net := nn.New(nn.NewDense(4, 4, r), nn.NewReLU())
	if _, err := Build(net, nil, Config{Layer: 1}); err == nil {
		t.Fatal("network without dense output accepted")
	}
}

func TestBuildRejectsMonitoredLayerBeforeAnyDense(t *testing.T) {
	r := rng.New(64)
	net := nn.New(nn.NewFlatten(), nn.NewDense(4, 2, r))
	if _, err := Build(net, nil, Config{Layer: 0}); err == nil {
		t.Fatal("monitored layer before any dense layer accepted")
	}
}
