// Serving-signal counters: the paper-level observability surface of the
// monitor. The out-of-pattern rate is the operational safety signal the
// whole construction exists to produce, so the monitor counts every
// verdict it issues — per class, since a fleet alert on "class 3 started
// going out of pattern" is actionable where a global rate is noise — and
// meters where serving time goes (inference vs zone query) and what
// epoch swaps cost. The counters are plain atomics with accessor
// methods; core deliberately does not import internal/obs — the serve
// layer bridges these accessors into its metric registry as scrape-time
// callbacks, so the monitor pays a handful of uncontended atomic adds
// per chunk and nothing per scrape.

package core

import (
	"sort"
	"sync/atomic"

	"napmon/internal/bdd"
)

// watchCounters tallies one class's verdicts.
type watchCounters struct {
	watched atomic.Uint64 // verdicts with Monitored == true
	oop     atomic.Uint64 // of those, OutOfPattern == true
}

// initWatchCounters allocates the per-class counter map from the zone
// set. Called at every construction site, before the monitor escapes:
// online updates cannot add classes (Updater.Apply rejects unmonitored
// classes), so the map's key set is immutable and concurrent lookups
// need no locking.
func (m *Monitor) initWatchCounters() {
	m.wc = make(map[int]*watchCounters, len(m.zones))
	for c := range m.zones {
		m.wc[c] = &watchCounters{}
	}
}

// countVerdict tallies one issued verdict.
func (m *Monitor) countVerdict(class int, monitored, oop bool) {
	if !monitored {
		m.unmonitored.Add(1)
		return
	}
	if c := m.wc[class]; c != nil {
		c.watched.Add(1)
		if oop {
			c.oop.Add(1)
		}
	}
}

// WatchCount is one class's cumulative verdict tally.
type WatchCount struct {
	// Watched counts verdicts where the class was monitored.
	Watched uint64
	// OutOfPattern counts watched verdicts that fell outside the
	// γ-comfort zone — the paper's safety signal.
	OutOfPattern uint64
}

// WatchCounts returns the cumulative per-class verdict tallies since
// construction. The returned map is a copy.
func (m *Monitor) WatchCounts() map[int]WatchCount {
	out := make(map[int]WatchCount, len(m.wc))
	for c, wc := range m.wc {
		out[c] = WatchCount{Watched: wc.watched.Load(), OutOfPattern: wc.oop.Load()}
	}
	return out
}

// WatchClasses returns the monitored class ids in ascending order —
// the stable label set under which per-class counters are exported.
func (m *Monitor) WatchClasses() []int {
	cs := make([]int, 0, len(m.wc))
	for c := range m.wc {
		cs = append(cs, c)
	}
	sort.Ints(cs)
	return cs
}

// WatchCountsFor returns one class's tally without allocating.
func (m *Monitor) WatchCountsFor(class int) WatchCount {
	wc := m.wc[class]
	if wc == nil {
		return WatchCount{}
	}
	return WatchCount{Watched: wc.watched.Load(), OutOfPattern: wc.oop.Load()}
}

// WatchTotals returns the cumulative verdict tallies across all classes
// plus the count of verdicts the monitor abstained on (predicted class
// had no zone).
func (m *Monitor) WatchTotals() (watched, outOfPattern, unmonitored uint64) {
	for _, wc := range m.wc {
		watched += wc.watched.Load()
		outOfPattern += wc.oop.Load()
	}
	return watched, outOfPattern, m.unmonitored.Load()
}

// InferenceNanos returns cumulative nanoseconds the serving paths spent
// in batched forward passes and pattern extraction.
func (m *Monitor) InferenceNanos() int64 { return m.infNs.Load() }

// ZoneQueryNanos returns cumulative nanoseconds the serving paths spent
// in comfort-zone membership queries.
func (m *Monitor) ZoneQueryNanos() int64 { return m.zoneNs.Load() }

// BatchTiming receives the per-call stage split of one batched watch:
// how long the chunk spent in inference (forward pass + pattern
// extraction) versus zone membership queries. Passed to
// WatchBatchPooledTimed by serving lanes that feed per-stage latency
// histograms; fields accumulate so one BatchTiming can span several
// chunks.
type BatchTiming struct {
	InferenceNs int64
	ZoneQueryNs int64
}

// ManagerStatsTotal sums BDD manager statistics across the zones of the
// current serving epoch (or the build-phase zones before freeze). Zones
// sharing a manager (γ re-view epochs) are counted once. Capacities and
// hit/miss counters sum; Frozen reports the monitor's own state.
func (m *Monitor) ManagerStatsTotal() bdd.Stats {
	zones := m.zones
	if e := m.acquire(); e != nil {
		defer e.unpin()
		zones = e.zones
	}
	seen := make(map[*bdd.Manager]bool, len(zones))
	var total bdd.Stats
	total.Frozen = m.Frozen()
	for _, z := range zones {
		mgr := z.Manager()
		if seen[mgr] {
			continue
		}
		seen[mgr] = true
		st := mgr.Stats()
		total.Nodes += st.Nodes
		total.UniqueHits += st.UniqueHits
		total.UniqueMisses += st.UniqueMisses
		total.CacheHits += st.CacheHits
		total.CacheMisses += st.CacheMisses
		total.UniqueCap += st.UniqueCap
		total.CacheCap += st.CacheCap
		total.Compiles += st.Compiles
	}
	return total
}

// SwapNanos returns the cumulative and most-recent wall time of epoch
// publications (shadow-build through pointer swap) — the serve-while-
// retraining cost signal.
func (u *Updater) SwapNanos() (total, last int64) {
	return u.swapNsTotal.Load(), u.swapNsLast.Load()
}

// recordSwap accumulates one publication's duration.
func (u *Updater) recordSwap(ns int64) {
	u.swapNsTotal.Add(ns)
	u.swapNsLast.Store(ns)
}
