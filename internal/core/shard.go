// Manager-sharded build: every monitored class owns an independent BDD
// manager, so per-class insertion and Hamming enlargement are mutually
// independent single-writer workloads — the build-side half of the
// ROADMAP's "shard one monitor across multiple BDD managers" item. The
// helpers here fan that work out over a bounded worker pool with results
// that are deterministic regardless of worker count: each class's
// patterns are applied in training order inside one goroutine, and a
// class never shares a manager with another, so the per-class BDDs are
// identical to a sequential build bit for bit.

package core

import (
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
)

// sortedClasses returns the zone map's keys in ascending order — the
// deterministic work list every sharded loop iterates.
func sortedClasses(zones map[int]*Zone) []int {
	cs := make([]int, 0, len(zones))
	for c := range zones {
		cs = append(cs, c)
	}
	sort.Ints(cs)
	return cs
}

// forEachClass runs fn once per class on up to GOMAXPROCS workers.
// Workers claim classes off an atomic cursor, so imbalanced classes
// (one hot class with most of the training set) don't serialize the
// rest. The returned error is the first failure in class order — the
// same error a sequential loop would have surfaced — and every class is
// attempted even when one fails, so no zone is left half-built relative
// to the others.
func forEachClass(classes []int, fn func(c int) error) error {
	workers := runtime.GOMAXPROCS(0)
	if workers > len(classes) {
		workers = len(classes)
	}
	if workers <= 1 {
		var first error
		for _, c := range classes {
			if err := fn(c); err != nil && first == nil {
				first = err
			}
		}
		return first
	}
	errs := make([]error, len(classes))
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(classes) {
					return
				}
				errs[i] = fn(classes[i])
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// buildZones is the sharded core of Algorithm 1's zone phase: per class,
// insert that class's patterns (in the order given) and enlarge to γ,
// with classes spread across the worker pool. Patterns for unmonitored
// classes must have been filtered by the caller.
func (m *Monitor) buildZones(perClass map[int][]Pattern, gamma int) error {
	err := forEachClass(sortedClasses(m.zones), func(c int) error {
		z := m.zones[c]
		for _, p := range perClass[c] {
			z.Insert(p)
		}
		return z.SetGamma(gamma)
	})
	if err != nil {
		return err
	}
	m.cfg.Gamma = gamma
	return nil
}
