package core

import (
	"bytes"
	"testing"

	"napmon/internal/rng"
)

// TestPackedRoundTrip pins the shared bit-packed codec: AppendPacked →
// UnpackPattern is the identity at every width (including the ragged
// final byte), the packed form is exactly what Key carries after its
// length prefix, and — the cross-codec regression the wire protocol
// relies on — the 0/1 string path (String/ParsePattern) and the packed
// path (AppendPacked/UnpackPattern) decode any pattern to the same
// bits, so the HTTP front end and the binary wire front end cannot
// drift apart.
func TestPackedRoundTrip(t *testing.T) {
	r := rng.New(7)
	for width := 0; width <= 130; width++ {
		p := make(Pattern, width)
		for i := range p {
			p[i] = r.Uint64()&1 == 1
		}

		packed := p.AppendPacked(nil)
		if len(packed) != PackedLen(width) {
			t.Fatalf("width %d: packed %d bytes, want %d", width, len(packed), PackedLen(width))
		}
		q, err := UnpackPattern(packed, width)
		if err != nil {
			t.Fatalf("width %d: UnpackPattern: %v", width, err)
		}
		if width > 0 && Hamming(p, q) != 0 {
			t.Fatalf("width %d: packed round trip changed the pattern", width)
		}

		// Key = 2-byte length prefix + the packed form, byte for byte.
		if key := p.Key(); key[2:] != string(packed) {
			t.Fatalf("width %d: Key payload %x differs from AppendPacked %x", width, key[2:], packed)
		}

		// Cross-codec: string path and packed path agree bit for bit.
		viaString, err := ParsePattern(p.String())
		if err != nil {
			t.Fatalf("width %d: ParsePattern(String): %v", width, err)
		}
		if width > 0 && Hamming(viaString, q) != 0 {
			t.Fatalf("width %d: string codec and packed codec disagree", width)
		}
	}
}

// TestUnpackPatternRejects pins the canonical-encoding checks: wrong
// byte length and nonzero pad bits are errors, not silent truncation.
func TestUnpackPatternRejects(t *testing.T) {
	if _, err := UnpackPattern([]byte{0xFF}, 4); err == nil {
		t.Fatal("UnpackPattern accepted nonzero pad bits")
	}
	if _, err := UnpackPattern([]byte{0x0F}, 4); err != nil {
		t.Fatalf("UnpackPattern rejected clean pad bits: %v", err)
	}
	if _, err := UnpackPattern([]byte{0, 0}, 4); err == nil {
		t.Fatal("UnpackPattern accepted an over-long buffer")
	}
	if _, err := UnpackPattern(nil, 4); err == nil {
		t.Fatal("UnpackPattern accepted a short buffer")
	}
	if _, err := UnpackPattern(nil, -1); err == nil {
		t.Fatal("UnpackPattern accepted a negative width")
	}
	if p, err := UnpackPattern(nil, 0); err != nil || len(p) != 0 {
		t.Fatalf("UnpackPattern(nil, 0) = %v, %v; want empty pattern", p, err)
	}
}

// TestAppendPackedAppends verifies AppendPacked really appends (the
// wire encoder builds frames by appending header then payload pieces
// into one buffer).
func TestAppendPackedAppends(t *testing.T) {
	p := Pattern{true, false, true}
	got := p.AppendPacked([]byte{0xAB})
	if !bytes.Equal(got, []byte{0xAB, 0x05}) {
		t.Fatalf("AppendPacked = %x, want ab05", got)
	}
}
