package core

import (
	"fmt"
	"io"

	"napmon/internal/bdd"
)

// Zone is the γ-comfort zone of one class (Definition 2): the set of
// activation patterns visited by correctly classified training inputs,
// enlarged with every pattern within Hamming distance γ of a visited one.
// The set is stored as a BDD over one variable per monitored neuron, so
// the deployment-time membership query costs at most one node visit per
// neuron regardless of how many patterns the zone holds.
type Zone struct {
	m     *bdd.Manager
	roots []bdd.Node // roots[i] is Z^i; roots[0] is the visited-pattern set
	gamma int        // current query level, an index into roots
	base  int        // number of Insert calls (visited patterns, with duplicates)

	// plans[i] is the compiled query plan of roots[i], built by Freeze —
	// the serving fast path. nil while the zone is mutable (the plan
	// would go stale under Insert/SetGamma); once set, Contains and
	// ContainsAt answer from the flat branch programs instead of walking
	// the manager's arena. Epoch re-views at a cached γ share the slice
	// with their predecessor, so an online update recompiles only the
	// zones it actually rebuilt.
	plans []*bdd.Compiled
}

// NewZone returns an empty comfort zone over width monitored neurons with
// γ = 0.
func NewZone(width int) *Zone {
	m := bdd.NewManager(width)
	return &Zone{m: m, roots: []bdd.Node{m.False()}}
}

// Width returns the number of monitored neurons.
func (z *Zone) Width() int { return z.m.NumVars() }

// Gamma returns the current Hamming enlargement level used by Contains.
func (z *Zone) Gamma() int { return z.gamma }

// InsertCount returns how many patterns have been inserted (counting
// duplicates).
func (z *Zone) InsertCount() int { return z.base }

// Insert adds a visited activation pattern to Z⁰ (line 6 of Algorithm 1:
// Z⁰_c ← bdd.or(Z⁰_c, bdd.encode(pat))). Inserting invalidates previously
// computed enlargements, so they are recomputed lazily by SetGamma.
func (z *Zone) Insert(p Pattern) {
	if z.m.Frozen() {
		// Fail before touching roots: a panic mid-update would leave the
		// zone with a truncated level stack.
		panic("core: Insert on frozen zone")
	}
	if len(p) != z.m.NumVars() {
		panic(fmt.Sprintf("core: pattern width %d does not match zone width %d",
			len(p), z.m.NumVars()))
	}
	z.roots = z.roots[:1]
	z.roots[0] = z.m.Or(z.roots[0], z.m.Cube(p))
	if z.gamma > 0 {
		z.extendTo(z.gamma)
	}
	z.base++
}

// SetGamma sets the Hamming enlargement level used by Contains, computing
// Zᵞ from Z⁰ by γ applications of the existential-quantification expansion
// (lines 9-14 of Algorithm 1). Intermediate levels are cached, so sweeping
// γ upward is incremental.
//
// A frozen zone's γ is immutable: once a zone serves concurrent readers,
// changing the query level in place would race with Contains, so SetGamma
// returns an error instead of silently mutating shared serving state.
// Change a live monitor's γ by publishing a new epoch (Monitor.UpdateGamma).
func (z *Zone) SetGamma(gamma int) error {
	if gamma < 0 {
		return fmt.Errorf("core: negative gamma %d", gamma)
	}
	if z.m.Frozen() {
		if gamma == z.gamma {
			return nil // no change requested; nothing to mutate
		}
		return fmt.Errorf("core: SetGamma(%d) on frozen zone (gamma is fixed at freeze; publish a new epoch via Monitor.UpdateGamma)", gamma)
	}
	z.extendTo(gamma)
	z.gamma = gamma
	return nil
}

// extendTo computes and caches enlargement levels up to gamma.
func (z *Zone) extendTo(gamma int) {
	for len(z.roots) <= gamma {
		prev := z.roots[len(z.roots)-1]
		z.roots = append(z.roots, z.m.ExpandHamming1(prev))
	}
}

// Freeze makes the zone's BDD manager read-only and compiles every cached
// enlargement level into a flat query plan (bdd.Compile): Contains (and
// ContainsAt for already-computed levels) become safe for unlimited
// concurrent use and serve from the compiled programs instead of the
// arena. Insert and SetGamma panic or error from now on. Freezing is
// irreversible — it is the per-zone half of the monitor's
// freeze-then-serve concurrency model (see DESIGN.md); growing a frozen
// zone means shadow-building a successor (cloneWithDelta) and publishing
// it as a new epoch, which recompiles just that zone's plans.
func (z *Zone) Freeze() {
	z.m.Freeze()
	if z.plans == nil {
		z.plans = z.m.Compile(z.roots...)
	}
}

// Frozen reports whether the zone has been frozen.
func (z *Zone) Frozen() bool { return z.m.Frozen() }

// Contains reports whether p lies inside the current γ-comfort zone — the
// monitor's runtime membership query, linear in the number of monitored
// neurons. On a frozen zone the query runs on the compiled plan (a
// forward walk through a dense branch program); before the freeze it
// interprets the BDD in place.
func (z *Zone) Contains(p Pattern) bool {
	if len(p) != z.m.NumVars() {
		panic(fmt.Sprintf("core: pattern width %d does not match zone width %d",
			len(p), z.m.NumVars()))
	}
	if z.plans != nil {
		return z.plans[z.gamma].Eval(p)
	}
	return z.m.EvalBits(z.roots[z.gamma], p)
}

// ContainsBatch answers the membership query for a whole micro-batch of
// patterns at the current γ, writing one verdict per pattern into out
// (len(out) must cover the patterns). On a frozen zone the batch runs
// through the compiled plan's EvalBatch — one setup, the branch program
// hot in cache across the batch, and wide batches auto-dispatch to the
// bit-sliced walk (64 queries per pass over the program) — which is how
// WatchBatch consults each class once per chunk. Elements of patterns
// may be Pattern values (Pattern's underlying type is []bool).
//
// The batch contract is validated up front on both the frozen and
// unfrozen paths: a short out or a width-mismatched pattern anywhere in
// the batch panics with a core:-prefixed message before any verdict is
// written, so a bad batch never leaves out partially filled.
func (z *Zone) ContainsBatch(patterns [][]bool, out []bool) {
	if len(out) < len(patterns) {
		panic(fmt.Sprintf("core: ContainsBatch output %d shorter than %d patterns", len(out), len(patterns)))
	}
	nv := z.m.NumVars()
	for i, p := range patterns {
		if len(p) != nv {
			panic(fmt.Sprintf("core: pattern %d width %d does not match zone width %d", i, len(p), nv))
		}
	}
	if z.plans != nil {
		z.plans[z.gamma].EvalBatch(patterns, out)
		return
	}
	root := z.roots[z.gamma]
	for i, p := range patterns {
		out[i] = z.m.EvalBits(root, p)
	}
}

// ContainsAt reports membership at an explicit enlargement level without
// changing the zone's current γ. On an unfrozen zone, missing levels are
// computed and cached. On a frozen zone only levels cached before the
// freeze are queryable (the read is then race-free — no state is touched);
// asking for a deeper level panics, because computing it would mutate the
// shared manager.
func (z *Zone) ContainsAt(gamma int, p Pattern) bool {
	if gamma < 0 {
		panic("core: negative gamma")
	}
	if gamma >= len(z.roots) {
		if z.m.Frozen() {
			panic(fmt.Sprintf("core: ContainsAt(%d) beyond the %d levels cached before freeze", gamma, len(z.roots)))
		}
		z.extendTo(gamma)
	}
	if len(p) != z.m.NumVars() {
		panic(fmt.Sprintf("core: pattern width %d does not match zone width %d",
			len(p), z.m.NumVars()))
	}
	if z.plans != nil && gamma < len(z.plans) {
		return z.plans[gamma].Eval(p)
	}
	return z.m.EvalBits(z.roots[gamma], p)
}

// ContainsAtErr is ContainsAt with the frozen-zone contract surfaced as
// an error instead of a panic: asking a frozen zone for a level deeper
// than was cached before the freeze returns an error a serving daemon
// can degrade on, rather than crashing the process. Width mismatches and
// negative γ are reported the same way. The monitor-level evaluators
// (EvaluateAt, EvaluateQuantizedAt) route through it.
func (z *Zone) ContainsAtErr(gamma int, p Pattern) (bool, error) {
	if gamma < 0 {
		return false, fmt.Errorf("core: negative gamma %d", gamma)
	}
	if len(p) != z.m.NumVars() {
		return false, fmt.Errorf("core: pattern width %d does not match zone width %d",
			len(p), z.m.NumVars())
	}
	if gamma >= len(z.roots) {
		if z.m.Frozen() {
			return false, fmt.Errorf("core: gamma %d beyond the %d levels cached before freeze (publish a deeper level via Monitor.UpdateGamma)",
				gamma, len(z.roots))
		}
		z.extendTo(gamma)
	}
	return z.ContainsAt(gamma, p), nil
}

// cloneWithDelta shadow-builds this zone's successor for an online update:
// a writable compact clone of every cached level, with the new patterns
// folded in at each level incrementally. Hamming expansion distributes
// over union — ExpandHamming1(f ∪ g) = ExpandHamming1(f) ∪
// ExpandHamming1(g), because ∃ distributes over ∨ — so
// Zᵏ(old ∪ new) = Zᵏ(old) ∪ Dᵏ with Dᵏ the k-fold expansion of the delta
// cubes alone. The update cost therefore scales with the delta, not with
// the zone: the cached old levels are reused verbatim and only the new
// patterns are expanded. The receiver is only read (it may be frozen and
// serving); the returned zone is unfrozen, at the same γ, and backed by a
// fresh compacted manager.
func (z *Zone) cloneWithDelta(pats []Pattern) *Zone {
	for _, p := range pats {
		if len(p) != z.m.NumVars() {
			panic(fmt.Sprintf("core: pattern width %d does not match zone width %d",
				len(p), z.m.NumVars()))
		}
	}
	m2, roots2 := z.m.CloneCompact(z.roots)
	delta := m2.False()
	for _, p := range pats {
		delta = m2.Or(delta, m2.Cube(p))
	}
	for k := range roots2 {
		roots2[k] = m2.Or(roots2[k], delta)
		if k+1 < len(roots2) {
			delta = m2.ExpandHamming1(delta)
		}
	}
	return &Zone{m: m2, roots: roots2, gamma: z.gamma, base: z.base + len(pats)}
}

// cloneAtGamma builds a successor zone queried at a different enlargement
// level. When the level was cached before the freeze, the new Zone shares
// the frozen manager, root stack and compiled plans — an O(1) re-view,
// no copying and no recompilation. A deeper level needs new expansions,
// so the zone is compact-cloned and extended on the writable copy (its
// plans are compiled when the successor freezes).
func (z *Zone) cloneAtGamma(gamma int) *Zone {
	if gamma < len(z.roots) {
		return &Zone{m: z.m, roots: z.roots, plans: z.plans, gamma: gamma, base: z.base}
	}
	m2, roots2 := z.m.CloneCompact(z.roots)
	z2 := &Zone{m: m2, roots: roots2, gamma: z.gamma, base: z.base}
	z2.extendTo(gamma)
	z2.gamma = gamma
	return z2
}

// PatternCount returns the exact number of patterns inside the zone at the
// current γ (BDD model count). With w monitored neurons the universe has
// 2^w patterns.
func (z *Zone) PatternCount() float64 {
	return z.m.SatCount(z.roots[z.gamma])
}

// NodeCount returns the number of BDD nodes representing the zone at the
// current γ — the monitor's storage cost.
func (z *Zone) NodeCount() int {
	return z.m.NodeCount(z.roots[z.gamma])
}

// Manager exposes the underlying BDD manager (primarily for tests and
// diagnostics such as DOT export).
func (z *Zone) Manager() *bdd.Manager { return z.m }

// Root returns the BDD root of the zone at the current γ.
func (z *Zone) Root() bdd.Node { return z.roots[z.gamma] }

// save writes the zone's Z⁰..Zᵞ roots.
func (z *Zone) save(w io.Writer) error {
	return z.m.Serialize(w, z.roots)
}

// loadZone reads a zone previously written with save.
func loadZone(r io.Reader, width, gamma, base int) (*Zone, error) {
	m := bdd.NewManager(width)
	roots, err := m.Deserialize(r)
	if err != nil {
		return nil, err
	}
	if len(roots) == 0 {
		return nil, fmt.Errorf("core: zone stream has no roots")
	}
	if gamma >= len(roots) {
		return nil, fmt.Errorf("core: zone gamma %d exceeds %d stored levels", gamma, len(roots))
	}
	return &Zone{m: m, roots: roots, gamma: gamma, base: base}, nil
}
