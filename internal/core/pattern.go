// Package core implements the paper's contribution: runtime monitoring of
// neuron activation patterns. After training, Algorithm 1 feeds the
// training set back through the network, records the binary ReLU on/off
// pattern of a chosen close-to-output layer per class inside a BDD, and
// enlarges each class's pattern set to the γ-comfort zone by adding every
// pattern within Hamming distance γ (Definition 2) via BDD existential
// quantification. In operation the monitor flags a classification whose
// activation pattern falls outside the comfort zone of the predicted
// class: the decision is not supported by prior similarities in training.
package core

import (
	"fmt"

	"napmon/internal/tensor"
)

// Pattern is a neuron activation pattern (Definition 1): one bit per
// monitored neuron, true when the neuron's output is strictly positive
// (the ReLU "activated" case of prelu).
type Pattern []bool

// PatternOf extracts the activation pattern of a full layer output
// (pat(f^(l)(in)) in the paper).
func PatternOf(acts *tensor.Tensor) Pattern {
	p := make(Pattern, acts.Len())
	for i, v := range acts.Data() {
		p[i] = v > 0
	}
	return p
}

// PatternOfSubset extracts the activation pattern restricted to the listed
// neuron indices, in order. Used when gradient-based selection monitors
// only a subset of a wide layer.
func PatternOfSubset(acts *tensor.Tensor, neurons []int) Pattern {
	p := make(Pattern, len(neurons))
	data := acts.Data()
	for i, n := range neurons {
		if n < 0 || n >= len(data) {
			panic(fmt.Sprintf("core: neuron index %d out of range [0,%d)", n, len(data)))
		}
		p[i] = data[n] > 0
	}
	return p
}

// PatternOfRow extracts the activation pattern of one row of a stacked
// batch activation matrix (the ForwardBatch layout), restricted to the
// listed neuron indices. It is PatternOfSubset over a raw slice, used by
// the batched serving path to avoid wrapping every row in a tensor.
func PatternOfRow(row []float64, neurons []int) Pattern {
	p := make(Pattern, len(neurons))
	for i, n := range neurons {
		if n < 0 || n >= len(row) {
			panic(fmt.Sprintf("core: neuron index %d out of range [0,%d)", n, len(row)))
		}
		p[i] = row[n] > 0
	}
	return p
}

// ParsePattern decodes the 0/1 string form produced by Pattern.String —
// the wire format of the napmon-serve /watch response and /learn request,
// which lets a client feed flagged patterns straight back into the
// monitor's online updater.
func ParsePattern(s string) (Pattern, error) {
	p := make(Pattern, len(s))
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '0':
		case '1':
			p[i] = true
		default:
			return nil, fmt.Errorf("core: pattern byte %d is %q, want '0' or '1'", i, s[i])
		}
	}
	return p, nil
}

// Hamming returns the Hamming distance H(p, q) between two equal-length
// patterns.
func Hamming(p, q Pattern) int {
	if len(p) != len(q) {
		panic("core: Hamming distance of unequal-length patterns")
	}
	d := 0
	for i := range p {
		if p[i] != q[i] {
			d++
		}
	}
	return d
}

// Clone returns a copy of p.
func (p Pattern) Clone() Pattern { return append(Pattern(nil), p...) }

// String renders the pattern as a 0/1 string, most significant neuron
// first, e.g. "0101".
func (p Pattern) String() string {
	b := make([]byte, len(p))
	for i, v := range p {
		if v {
			b[i] = '1'
		} else {
			b[i] = '0'
		}
	}
	return string(b)
}

// PackedLen returns the byte length of the bit-packed form of a
// width-bit pattern: 8 neurons per byte, so ceil(width/8).
func PackedLen(width int) int { return (width + 7) / 8 }

// AppendPacked appends the bit-packed form of p to dst and returns the
// extended slice: neuron i lands in bit i%8 of byte i/8 (LSB-first),
// trailing pad bits of the last byte are zero. This is THE bit-packed
// pattern codec — Pattern.Key, the monitor save format and the binary
// wire protocol (internal/wire) all encode through it, so the HTTP
// string path (String/ParsePattern) and the wire path cannot drift.
func (p Pattern) AppendPacked(dst []byte) []byte {
	off := len(dst)
	dst = append(dst, make([]byte, PackedLen(len(p)))...)
	for i, v := range p {
		if v {
			dst[off+i/8] |= 1 << (i % 8)
		}
	}
	return dst
}

// UnpackPattern decodes the AppendPacked form: exactly PackedLen(width)
// bytes, LSB-first within each byte, with every pad bit of the last
// byte zero. The strict length and pad checks make the encoding
// canonical — one pattern, one byte string — which the wire protocol's
// golden-byte ABI tests and fuzzer rely on.
func UnpackPattern(data []byte, width int) (Pattern, error) {
	if width < 0 {
		return nil, fmt.Errorf("core: negative pattern width %d", width)
	}
	if len(data) != PackedLen(width) {
		return nil, fmt.Errorf("core: packed pattern is %d bytes, width %d needs %d", len(data), width, PackedLen(width))
	}
	if pad := len(data)*8 - width; pad > 0 && data[len(data)-1]>>(8-pad) != 0 {
		return nil, fmt.Errorf("core: nonzero pad bits in packed pattern of width %d", width)
	}
	p := make(Pattern, width)
	for i := range p {
		p[i] = data[i/8]&(1<<(i%8)) != 0
	}
	return p, nil
}

// Key packs the pattern into a compact string usable as a map key (the
// AppendPacked form). Patterns of different lengths never collide
// because the length is prefixed.
func (p Pattern) Key() string {
	b := make([]byte, 2, 2+PackedLen(len(p)))
	b[0] = byte(len(p) >> 8)
	b[1] = byte(len(p))
	return string(p.AppendPacked(b))
}
