package core

import (
	"bytes"
	"encoding/hex"
	"testing"
)

// snapPattern derives a deterministic width-bit pattern from a seed.
func snapPattern(width int, seed uint64) Pattern {
	p := make(Pattern, width)
	s := seed
	for i := range p {
		s = s*6364136223846793005 + 1442695040888963407
		p[i] = s>>63 == 1
	}
	return p
}

// snapMonitor builds a small deterministic monitor for snapshot tests.
func snapMonitor(t *testing.T, gamma int) *Monitor {
	t.Helper()
	const width = 8
	perClass := map[int][]Pattern{
		0: {snapPattern(width, 1), snapPattern(width, 2), snapPattern(width, 3)},
		2: {snapPattern(width, 4), snapPattern(width, 5)},
		5: {snapPattern(width, 6)},
	}
	m, err := BuildFromPatterns(width, gamma, perClass)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// saveBytes serializes a monitor with Save — the byte-level identity the
// replication path converges on.
func saveBytes(t *testing.T, m *Monitor) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestSnapshotRoundTrip pins the core warm-start contract: a monitor
// loaded from a snapshot serves at the source's epoch id, answers every
// membership query identically, Save-serializes to the identical bytes,
// and re-snapshots to the identical snapshot.
func TestSnapshotRoundTrip(t *testing.T) {
	leader := snapMonitor(t, 1)
	leader.Freeze()
	if _, err := leader.Update(0, snapPattern(8, 40), snapPattern(8, 41)); err != nil {
		t.Fatal(err)
	}
	if _, err := leader.Update(2, snapPattern(8, 42)); err != nil {
		t.Fatal(err)
	}

	var snap bytes.Buffer
	if err := leader.Snapshot(&snap, nil); err != nil {
		t.Fatal(err)
	}
	follower, tail, err := LoadSnapshot(bytes.NewReader(snap.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if len(tail) != 0 {
		t.Fatalf("empty tail round-tripped to %d entries", len(tail))
	}
	if got, want := follower.Epoch(), leader.Epoch(); got != want {
		t.Fatalf("follower epoch %d, leader epoch %d", got, want)
	}
	if got, want := follower.Gamma(), leader.Gamma(); got != want {
		t.Fatalf("follower gamma %d, leader gamma %d", got, want)
	}

	for seed := uint64(100); seed < 200; seed++ {
		p := snapPattern(8, seed)
		for _, c := range []int{0, 1, 2, 5} {
			lo, lm := leader.WatchPattern(c, p)
			fo, fm := follower.WatchPattern(c, p)
			if lo != fo || lm != fm {
				t.Fatalf("class %d seed %d: leader (%v,%v) != follower (%v,%v)", c, seed, lo, lm, fo, fm)
			}
		}
	}

	if !bytes.Equal(saveBytes(t, leader), saveBytes(t, follower)) {
		t.Fatal("follower Save bytes differ from leader")
	}
	var resnap bytes.Buffer
	if err := follower.Snapshot(&resnap, nil); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(snap.Bytes(), resnap.Bytes()) {
		t.Fatal("re-snapshot of loaded monitor differs from original snapshot")
	}
}

// TestSnapshotDeltaReplay is the replication convergence test: a
// follower warm-started from an epoch-1 snapshot replays the leader's
// epoch-keyed deltas and converges bit-for-bit — identical epoch ids at
// every step and identical Save serialization at the end, the
// assert-don't-eyeball discipline of exp.VerifyCompiledServing applied
// to replication.
func TestSnapshotDeltaReplay(t *testing.T) {
	leader := snapMonitor(t, 1)
	leader.Freeze()
	var snap bytes.Buffer
	if err := leader.Snapshot(&snap, nil); err != nil {
		t.Fatal(err)
	}

	var logEntries []DeltaEntry
	seed := uint64(300)
	for i := 0; i < 6; i++ {
		delta := map[int][]Pattern{
			0: {snapPattern(8, seed), snapPattern(8, seed+1)},
			2: {snapPattern(8, seed+2)},
		}
		seed += 3
		epoch, err := leader.UpdateBatch(delta)
		if err != nil {
			t.Fatal(err)
		}
		logEntries = append(logEntries, DeltaEntry{Epoch: epoch, Gamma: -1, Delta: delta})
	}
	// A γ re-level is an epoch publication too; replicate it the same way.
	epoch, err := leader.UpdateGamma(2)
	if err != nil {
		t.Fatal(err)
	}
	logEntries = append(logEntries, DeltaEntry{Epoch: epoch, Gamma: 2})

	follower, _, err := LoadSnapshot(bytes.NewReader(snap.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range logEntries {
		var got uint64
		if e.Gamma >= 0 {
			got, err = follower.UpdateGamma(e.Gamma)
		} else {
			got, err = follower.UpdateBatch(e.Delta)
		}
		if err != nil {
			t.Fatalf("replaying epoch %d: %v", e.Epoch, err)
		}
		if got != e.Epoch {
			t.Fatalf("replay published epoch %d, leader published %d", got, e.Epoch)
		}
	}
	if got, want := follower.Epoch(), leader.Epoch(); got != want {
		t.Fatalf("final epochs diverge: follower %d, leader %d", got, want)
	}
	if !bytes.Equal(saveBytes(t, leader), saveBytes(t, follower)) {
		t.Fatal("replayed follower Save bytes differ from leader — replication is not bit-for-bit")
	}
}

// TestSnapshotDeltaTail round-trips an embedded delta log through the
// snapshot, including a γ entry.
func TestSnapshotDeltaTail(t *testing.T) {
	m := snapMonitor(t, 1)
	tail := []DeltaEntry{
		{Epoch: 2, Gamma: -1, Delta: map[int][]Pattern{
			0: {snapPattern(8, 50)},
			2: {snapPattern(8, 51), snapPattern(8, 52)},
		}},
		{Epoch: 3, Gamma: 2},
	}
	var snap bytes.Buffer
	if err := m.Snapshot(&snap, tail); err != nil {
		t.Fatal(err)
	}
	_, got, err := LoadSnapshot(bytes.NewReader(snap.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	assertEntriesEqual(t, got, tail)
}

// TestDeltaStreamRoundTrip pins the standalone replication-feed frame.
func TestDeltaStreamRoundTrip(t *testing.T) {
	entries := []DeltaEntry{
		{Epoch: 7, Gamma: -1, Delta: map[int][]Pattern{
			1: {snapPattern(8, 60), snapPattern(8, 61)},
		}},
		{Epoch: 8, Gamma: 0},
		{Epoch: 9, Gamma: -1, Delta: map[int][]Pattern{
			0: {snapPattern(8, 62)},
			3: {snapPattern(8, 63)},
		}},
	}
	enc, err := EncodeDeltaStream(8, entries)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeDeltaStream(enc, 8)
	if err != nil {
		t.Fatal(err)
	}
	assertEntriesEqual(t, got, entries)
	if _, err := DecodeDeltaStream(enc, 9); err == nil {
		t.Fatal("width mismatch not detected")
	}
}

func assertEntriesEqual(t *testing.T, got, want []DeltaEntry) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%d entries, want %d", len(got), len(want))
	}
	for i, w := range want {
		g := got[i]
		if g.Epoch != w.Epoch || g.Gamma != w.Gamma || len(g.Delta) != len(w.Delta) {
			t.Fatalf("entry %d: got {%d %d %d classes}, want {%d %d %d classes}",
				i, g.Epoch, g.Gamma, len(g.Delta), w.Epoch, w.Gamma, len(w.Delta))
		}
		for c, pats := range w.Delta {
			if len(g.Delta[c]) != len(pats) {
				t.Fatalf("entry %d class %d: %d patterns, want %d", i, c, len(g.Delta[c]), len(pats))
			}
			for j, p := range pats {
				if g.Delta[c][j].String() != p.String() {
					t.Fatalf("entry %d class %d pattern %d: %s != %s", i, c, j, g.Delta[c][j], p)
				}
			}
		}
	}
}

// TestSnapshotRejectsCorrupt exercises the checksum and validators.
func TestSnapshotRejectsCorrupt(t *testing.T) {
	m := snapMonitor(t, 1)
	var snap bytes.Buffer
	if err := m.Snapshot(&snap, nil); err != nil {
		t.Fatal(err)
	}
	good := snap.Bytes()

	if _, _, err := LoadSnapshot(bytes.NewReader(good[:len(good)-5])); err == nil {
		t.Fatal("truncated snapshot accepted")
	}
	if _, _, err := LoadSnapshot(bytes.NewReader(good[:4])); err == nil {
		t.Fatal("magic-only snapshot accepted")
	}
	bad := append([]byte("XXXXXXXX"), good[8:]...)
	if _, _, err := LoadSnapshot(bytes.NewReader(bad)); err == nil {
		t.Fatal("bad magic accepted")
	}
	for _, off := range []int{8, len(good) / 2, len(good) - 5} {
		flip := append([]byte(nil), good...)
		flip[off] ^= 0x40
		if _, _, err := LoadSnapshot(bytes.NewReader(flip)); err == nil {
			t.Fatalf("bit flip at %d accepted", off)
		}
	}
}

// snapshotGolden pins the exact snapshot bytes of the deterministic test
// monitor, in the spirit of internal/wire's TestABI: any codec change
// shows up as a byte diff here and must be deliberate (bump the magic
// when the format changes — old followers must not misparse new
// snapshots).
const snapshotGolden = "4e4150534e415031010101080800010101010101010300030202130100020302010304000403010004000400040301040004000400030100040004040003010400000303000201000303000201010000010222010002030201030404050401050606070007070807010800080708000807080008000807070100080708000808090904080008050701080008070006070504050500050404010005040104000103020101000001020202020f01000203020100030300020100030003020103000300020103000300020103000300020100030300020101000001021c01000203020103040402030100040405050605010600060006050600060505010600060006050600060505010600060006050600060505010607000605010300010202010001010005010202080100020001010002010100020101020001010002010102000101000201010001020e0100020302010304000202010003020302010300030202010003020302010300030202010003020101010001020200010001f4030102e902023a"

// TestSnapshotABI is the golden-byte gate for the snapshot format.
func TestSnapshotABI(t *testing.T) {
	m := snapMonitor(t, 1)
	tail := []DeltaEntry{
		{Epoch: 2, Gamma: -1, Delta: map[int][]Pattern{0: {snapPattern(8, 50)}}},
		{Epoch: 3, Gamma: 2},
	}
	var snap bytes.Buffer
	if err := m.Snapshot(&snap, tail); err != nil {
		t.Fatal(err)
	}
	got := hex.EncodeToString(snap.Bytes())
	if got != snapshotGolden {
		t.Fatalf("snapshot ABI break:\n got %s\nwant %s", got, snapshotGolden)
	}
}
