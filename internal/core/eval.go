package core

import (
	"fmt"

	"napmon/internal/nn"
)

// Metrics aggregates the quantities Table II of the paper reports for one
// (monitor, dataset) pair.
type Metrics struct {
	// Total is the number of evaluated samples.
	Total int
	// Misclassified counts samples the network classified incorrectly
	// (over all samples, matching the paper's per-network
	// "misclassification rate" column).
	Misclassified int
	// Watched counts samples whose predicted class is monitored; the
	// out-of-pattern statistics are relative to this population. With all
	// classes monitored, Watched == Total.
	Watched int
	// OutOfPattern counts watched samples whose activation pattern fell
	// outside the predicted class's comfort zone.
	OutOfPattern int
	// OutOfPatternMisclassified counts out-of-pattern samples that were
	// also misclassified.
	OutOfPatternMisclassified int
}

// MisclassificationRate returns Misclassified / Total.
func (m Metrics) MisclassificationRate() float64 {
	return ratio(m.Misclassified, m.Total)
}

// OutOfPatternRate returns the paper's column
// "#out-of-pattern images / #total images", with the denominator being
// the watched population.
func (m Metrics) OutOfPatternRate() float64 {
	return ratio(m.OutOfPattern, m.Watched)
}

// OutOfPatternPrecision returns the paper's column
// "#out-of-pattern misclassified images / #out-of-pattern images": the
// probability that a flagged decision is indeed wrong.
func (m Metrics) OutOfPatternPrecision() float64 {
	return ratio(m.OutOfPatternMisclassified, m.OutOfPattern)
}

func ratio(num, den int) float64 {
	if den == 0 {
		return 0
	}
	return float64(num) / float64(den)
}

// obs is one extracted observation of the evaluation loops: the
// network's decision and the activation pattern over the monitored
// neurons (thermometer-encoded for quantized monitors).
type obs struct {
	pred    int
	pattern Pattern
}

// extractObs runs inference and pattern extraction over the samples in
// parallel.
func extractObs(net *nn.Network, layer int, neurons []int, samples []nn.Sample) []obs {
	return nn.ParallelMap(net, samples, func(w *nn.Network, s nn.Sample) obs {
		logits, acts := w.ForwardCapture(s.Input, layer)
		return obs{pred: logits.ArgMax(), pattern: PatternOfSubset(acts, neurons)}
	})
}

// tallyMetrics aggregates the Table II statistics over extracted
// observations, answering each membership query through member — the
// single tally shared by every evaluator, so a new counter cannot be
// added to one variant and missed in another.
func tallyMetrics(results []obs, samples []nn.Sample, zones map[int]*Zone,
	member func(*Zone, Pattern) (bool, error)) (Metrics, error) {
	var out Metrics
	out.Total = len(samples)
	for i, r := range results {
		mis := r.pred != samples[i].Label
		if mis {
			out.Misclassified++
		}
		z, ok := zones[r.pred]
		if !ok {
			continue
		}
		out.Watched++
		in, err := member(z, r.pattern)
		if err != nil {
			return Metrics{}, fmt.Errorf("core: evaluating class %d: %w", r.pred, err)
		}
		if !in {
			out.OutOfPattern++
			if mis {
				out.OutOfPatternMisclassified++
			}
		}
	}
	return out, nil
}

// pinnedZones returns the zone set an evaluation should read — the
// pinned current epoch's once frozen, the build-phase zones before —
// plus the unpin to defer.
func (m *Monitor) pinnedZones() (map[int]*Zone, func()) {
	if e := m.acquire(); e != nil {
		return e.zones, e.unpin
	}
	return m.zones, func() {}
}

// Evaluate runs the monitor over a labelled dataset (typically the
// validation set, per §III's procedure for deciding the coarseness of
// abstraction) and aggregates the Table II statistics. Inference and
// pattern extraction run in parallel; zone queries are sequential and
// read-only. On a frozen monitor the serving epoch is pinned for the
// whole evaluation, so the metrics describe exactly one generation even
// while online updates publish new ones.
func Evaluate(net *nn.Network, m *Monitor, samples []nn.Sample) Metrics {
	results := extractObs(net, m.cfg.Layer, m.neurons, samples)
	zones, unpin := m.pinnedZones()
	defer unpin()
	out, _ := tallyMetrics(results, samples, zones, func(z *Zone, p Pattern) (bool, error) {
		return z.Contains(p), nil
	})
	return out
}

// EvaluateAt aggregates the Table II statistics at an explicit
// enlargement level without changing the monitor's serving γ and without
// publishing an epoch. On an unfrozen monitor missing levels are
// computed and cached; on a frozen monitor only levels cached before the
// freeze are queryable, and asking deeper returns an error instead of
// panicking — the monitor-level surface of Zone.ContainsAtErr, so a
// serving daemon probing alternative γs can degrade gracefully rather
// than crash (publish a deeper level with Monitor.UpdateGamma).
func EvaluateAt(net *nn.Network, m *Monitor, samples []nn.Sample, gamma int) (Metrics, error) {
	if gamma < 0 {
		return Metrics{}, fmt.Errorf("core: negative gamma %d", gamma)
	}
	results := extractObs(net, m.cfg.Layer, m.neurons, samples)
	zones, unpin := m.pinnedZones()
	defer unpin()
	return tallyMetrics(results, samples, zones, func(z *Zone, p Pattern) (bool, error) {
		return z.ContainsAtErr(gamma, p)
	})
}

// GammaSweep evaluates the monitor at each γ in gammas (ascending order is
// cheapest because enlargements are cached) and returns one Metrics per γ.
// The monitor is left at the last γ. On a frozen monitor each level is
// published as a new serving epoch (UpdateGamma), so sweeping a live
// monitor is legal and never races its readers.
func GammaSweep(net *nn.Network, m *Monitor, samples []nn.Sample, gammas []int) []Metrics {
	out := make([]Metrics, len(gammas))
	for i, g := range gammas {
		setServingGamma(m, g)
		out[i] = Evaluate(net, m, samples)
	}
	return out
}

// setServingGamma moves the monitor to γ by the phase-appropriate route:
// in-place during build, a published epoch once frozen. Negative γ panics,
// matching the historical SetGamma contract of the sweep helpers.
func setServingGamma(m *Monitor, g int) {
	var err error
	if m.Frozen() {
		_, err = m.UpdateGamma(g)
	} else {
		err = m.SetGamma(g)
	}
	if err != nil {
		panic(err)
	}
}

// InferGamma implements the paper's "infer when to stop enlarging"
// procedure: starting from γ = 0 it grows γ until the out-of-pattern
// precision on the validation set reaches minPrecision (the flagged
// decisions are likely misclassifications) or the out-of-pattern rate
// falls below minRate (the monitor has become too coarse to ever fire),
// whichever comes first, capped at maxGamma. It returns the chosen γ and
// the metrics observed at each level tried.
func InferGamma(net *nn.Network, m *Monitor, validation []nn.Sample,
	minPrecision, minRate float64, maxGamma int) (int, []Metrics) {
	var history []Metrics
	for g := 0; g <= maxGamma; g++ {
		setServingGamma(m, g)
		metrics := Evaluate(net, m, validation)
		history = append(history, metrics)
		if metrics.OutOfPatternPrecision() >= minPrecision || metrics.OutOfPatternRate() <= minRate {
			return g, history
		}
	}
	setServingGamma(m, maxGamma)
	return maxGamma, history
}
