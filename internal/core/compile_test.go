package core

// Tests of the compiled-query-plan serving path and the sharded
// (per-class parallel) build: compiled and interpreted membership must
// agree bit for bit on every zone and every cached γ, epoch swaps must
// recompile only the zones they touch, and the parallel build must be
// deterministic regardless of worker count.

import (
	"runtime"
	"strings"
	"testing"

	"napmon/internal/rng"
	"napmon/internal/tensor"
)

// TestCompiledZoneAgreesWithInterpreted pins Contains/ContainsAt on a
// frozen zone (compiled plans) bit-exact against the interpreted
// EvalBits walk, for every cached γ: exhaustively for narrow zones,
// with random probes for monitor-width ones.
func TestCompiledZoneAgreesWithInterpreted(t *testing.T) {
	r := rng.New(41)
	for _, width := range []int{4, 8, 12} {
		z := NewZone(width)
		for _, p := range randomPatterns(r, 6, width) {
			z.Insert(p)
		}
		if err := z.SetGamma(2); err != nil {
			t.Fatal(err)
		}
		z.Freeze()
		if z.plans == nil || len(z.plans) != len(z.roots) {
			t.Fatalf("width %d: freeze compiled %d plans for %d levels", width, len(z.plans), len(z.roots))
		}
		probe := make(Pattern, width)
		for a := 0; a < 1<<width; a++ {
			for v := 0; v < width; v++ {
				probe[v] = a&(1<<v) != 0
			}
			for g := 0; g < len(z.roots); g++ {
				want := z.m.EvalBits(z.roots[g], probe)
				if got := z.ContainsAt(g, probe); got != want {
					t.Fatalf("width %d γ=%d assignment %d: compiled %v, interpreted %v", width, g, a, got, want)
				}
			}
			if got, want := z.Contains(probe), z.m.EvalBits(z.roots[z.gamma], probe); got != want {
				t.Fatalf("width %d assignment %d: Contains %v, interpreted %v", width, a, got, want)
			}
		}
	}

	// Monitor-width zone: random probes plus the inserted patterns and
	// their Hamming-1 neighbors (the boundary the enlargement moves).
	const width = 40
	z := NewZone(width)
	inserted := randomPatterns(r, 60, width)
	for _, p := range inserted {
		z.Insert(p)
	}
	if err := z.SetGamma(2); err != nil {
		t.Fatal(err)
	}
	z.Freeze()
	probes := randomPatterns(r, 300, width)
	for _, p := range inserted[:10] {
		probes = append(probes, p)
		for v := 0; v < width; v += 7 {
			n := p.Clone()
			n[v] = !n[v]
			probes = append(probes, n)
		}
	}
	for g := 0; g < len(z.roots); g++ {
		for pi, p := range probes {
			want := z.m.EvalBits(z.roots[g], p)
			if got := z.ContainsAt(g, p); got != want {
				t.Fatalf("γ=%d probe %d: compiled %v, interpreted %v", g, pi, got, want)
			}
		}
	}
}

// TestContainsBatchMatchesContains checks the micro-batch entry point
// against per-pattern queries, frozen and unfrozen, at batch widths on
// both sides of the bit-sliced dispatch threshold and across ragged
// 64-lane block boundaries (1, 63, 64, 65).
func TestContainsBatchMatchesContains(t *testing.T) {
	r := rng.New(17)
	const width = 24
	for _, freeze := range []bool{false, true} {
		z := NewZone(width)
		for _, p := range randomPatterns(r, 20, width) {
			z.Insert(p)
		}
		if err := z.SetGamma(1); err != nil {
			t.Fatal(err)
		}
		if freeze {
			z.Freeze()
		}
		probes := randomPatterns(r, 97, width)
		batch := make([][]bool, len(probes))
		for i, p := range probes {
			batch[i] = p
		}
		for _, n := range []int{1, 63, 64, 65, len(batch)} {
			out := make([]bool, n)
			z.ContainsBatch(batch[:n], out)
			for i, p := range probes[:n] {
				if want := z.Contains(p); out[i] != want {
					t.Fatalf("frozen=%v n=%d probe %d: batch %v, single %v", freeze, n, i, out[i], want)
				}
			}
		}
	}
}

// TestContainsBatchValidatesUpFront pins the batch contract fixed in
// PR 9: on BOTH the frozen (compiled) and unfrozen (interpreted) paths,
// a short out and a mid-batch width mismatch panic with a core:-prefixed
// message before any verdict lands in out — previously the frozen path
// leaked a bdd:-prefixed panic for short outputs, and a bad pattern
// mid-batch panicked only after earlier verdicts were already written.
func TestContainsBatchValidatesUpFront(t *testing.T) {
	const width = 12
	for _, freeze := range []bool{false, true} {
		z := NewZone(width)
		z.Insert(make(Pattern, width)) // zone = {all-zeros}, γ=0
		if freeze {
			z.Freeze()
		}
		mustPanicCore := func(name string, f func()) {
			t.Helper()
			defer func() {
				rec := recover()
				if rec == nil {
					t.Fatalf("frozen=%v: %s did not panic", freeze, name)
				}
				if msg, ok := rec.(string); !ok || !strings.HasPrefix(msg, "core:") {
					t.Fatalf("frozen=%v: %s panicked with %v, want a core:-prefixed message", freeze, name, rec)
				}
			}()
			f()
		}
		good := func() []bool { return make([]bool, width) }
		mustPanicCore("short out", func() {
			z.ContainsBatch([][]bool{good(), good(), good()}, make([]bool, 2))
		})
		// A batch whose every valid pattern is OUTSIDE the zone (bit 0
		// set) would write false into out; the true sentinels surviving
		// the panic proves validation ran before any verdict.
		bad := make([][]bool, 40)
		for i := range bad {
			p := good()
			p[0] = true
			bad[i] = p
		}
		bad[25] = make([]bool, width-1)
		out := make([]bool, len(bad))
		for i := range out {
			out[i] = true
		}
		mustPanicCore("mid-batch width mismatch", func() { z.ContainsBatch(bad, out) })
		for i, v := range out {
			if !v {
				t.Fatalf("frozen=%v: verdict %d written before the whole batch was validated", freeze, i)
			}
		}
	}
}

// TestContainsAtErr covers the error surface the serving daemons rely
// on: frozen-beyond-cache is an error (not a panic), unfrozen extends,
// and bad inputs are reported.
func TestContainsAtErr(t *testing.T) {
	r := rng.New(5)
	const width = 10
	z := NewZone(width)
	for _, p := range randomPatterns(r, 4, width) {
		z.Insert(p)
	}
	if err := z.SetGamma(1); err != nil {
		t.Fatal(err)
	}

	// Unfrozen: a deeper level is computed on demand.
	p := make(Pattern, width)
	if _, err := z.ContainsAtErr(3, p); err != nil {
		t.Fatalf("unfrozen deep level errored: %v", err)
	}
	if len(z.roots) != 4 {
		t.Fatalf("deep query cached %d levels, want 4", len(z.roots))
	}

	z.Freeze()
	if _, err := z.ContainsAtErr(3, p); err != nil {
		t.Fatalf("cached level errored after freeze: %v", err)
	}
	if _, err := z.ContainsAtErr(4, p); err == nil {
		t.Fatal("frozen beyond-cache query did not error")
	} else if !strings.Contains(err.Error(), "beyond") {
		t.Fatalf("unexpected error text: %v", err)
	}
	if _, err := z.ContainsAtErr(-1, p); err == nil {
		t.Fatal("negative gamma did not error")
	}
	if _, err := z.ContainsAtErr(0, make(Pattern, width+1)); err == nil {
		t.Fatal("width mismatch did not error")
	}
	// The Zone-layer panic contract is unchanged.
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("frozen beyond-cache ContainsAt did not panic")
			}
		}()
		z.ContainsAt(4, p)
	}()
}

// TestEvaluateAtErrors checks the monitor-level error surfacing: a
// frozen monitor evaluated beyond its cached levels returns an error
// instead of crashing, and at cached levels EvaluateAt matches
// Evaluate.
func TestEvaluateAtErrors(t *testing.T) {
	net, layer, train, val := trainedToyNet(t, 9)
	mon, err := Build(net, train, Config{Layer: layer, Gamma: 2})
	if err != nil {
		t.Fatal(err)
	}
	want := Evaluate(net, mon, val) // at γ=2, build phase
	mon.Freeze()
	got, err := EvaluateAt(net, mon, val, 2)
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatalf("EvaluateAt(2) = %+v, Evaluate said %+v", got, want)
	}
	if _, err := EvaluateAt(net, mon, val, 9); err == nil {
		t.Fatal("EvaluateAt beyond cached levels did not error on a frozen monitor")
	}
	if _, err := EvaluateAt(net, mon, val, -1); err == nil {
		t.Fatal("EvaluateAt(-1) did not error")
	}
}

// TestEvaluateQuantizedAtErrors mirrors TestEvaluateAtErrors for the
// quantized monitor.
func TestEvaluateQuantizedAtErrors(t *testing.T) {
	net, layer, train, val := trainedToyNet(t, 10)
	mon, err := BuildQuantized(net, train, QuantizedConfig{Layer: layer, Levels: 3, Gamma: 1})
	if err != nil {
		t.Fatal(err)
	}
	want := EvaluateQuantized(net, mon, val)
	got, err := EvaluateQuantizedAt(net, mon, val, 1)
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatalf("EvaluateQuantizedAt(1) = %+v, EvaluateQuantized said %+v", got, want)
	}
	for _, z := range mon.zones {
		z.Freeze()
	}
	if _, err := EvaluateQuantizedAt(net, mon, val, 7); err == nil {
		t.Fatal("EvaluateQuantizedAt beyond cached levels did not error on frozen zones")
	}
}

// TestBuildFromPatterns covers the network-free build path: monitored
// membership must match hand-built zones, and the pattern-level serving
// entry points must work.
func TestBuildFromPatterns(t *testing.T) {
	r := rng.New(23)
	const width = 16
	perClass := map[int][]Pattern{
		0: randomPatterns(r, 12, width),
		3: randomPatterns(r, 7, width),
		5: randomPatterns(r, 1, width),
	}
	mon, err := BuildFromPatterns(width, 1, perClass)
	if err != nil {
		t.Fatal(err)
	}
	if got := mon.Classes(); len(got) != 3 || got[0] != 0 || got[1] != 3 || got[2] != 5 {
		t.Fatalf("classes = %v", got)
	}
	for c, pats := range perClass {
		ref := NewZone(width)
		for _, p := range pats {
			ref.Insert(p)
		}
		if err := ref.SetGamma(1); err != nil {
			t.Fatal(err)
		}
		for _, probe := range append(randomPatterns(r, 50, width), pats...) {
			oop, monitored := mon.WatchPattern(c, probe)
			if !monitored {
				t.Fatalf("class %d unmonitored", c)
			}
			if oop == ref.Contains(probe) {
				t.Fatalf("class %d probe %s: monitor oop=%v, reference contains=%v", c, probe, oop, ref.Contains(probe))
			}
		}
	}
	// Online updates work on a pattern-only monitor.
	if _, err := mon.Update(3, randomPatterns(r, 2, width)...); err != nil {
		t.Fatal(err)
	}

	// Input validation.
	if _, err := BuildFromPatterns(0, 1, perClass); err == nil {
		t.Fatal("width 0 accepted")
	}
	if _, err := BuildFromPatterns(width, -1, perClass); err == nil {
		t.Fatal("negative gamma accepted")
	}
	if _, err := BuildFromPatterns(width, 1, nil); err == nil {
		t.Fatal("empty class map accepted")
	}
	if _, err := BuildFromPatterns(width, 1, map[int][]Pattern{1: {make(Pattern, width-1)}}); err == nil {
		t.Fatal("width-mismatched pattern accepted")
	}
	if _, err := BuildFromPatterns(width, 1, map[int][]Pattern{-2: nil}); err == nil {
		t.Fatal("negative class accepted")
	}
}

// TestParallelBuildDeterministic pins the manager-sharded build: the
// same patterns produce byte-identical zone stacks (same BDD node
// counts, same membership on exhaustive probes) whatever GOMAXPROCS is.
func TestParallelBuildDeterministic(t *testing.T) {
	r := rng.New(77)
	const width = 12
	perClass := map[int][]Pattern{}
	for c := 0; c < 6; c++ {
		perClass[c] = randomPatterns(r, 10+c*13, width)
	}
	build := func(procs int) *Monitor {
		prev := runtime.GOMAXPROCS(procs)
		defer runtime.GOMAXPROCS(prev)
		mon, err := BuildFromPatterns(width, 2, perClass)
		if err != nil {
			t.Fatal(err)
		}
		return mon
	}
	ref := build(1)
	for _, procs := range []int{2, 4, 8} {
		mon := build(procs)
		for c := range perClass {
			zr, zm := ref.Zone(c), mon.Zone(c)
			if zr.NodeCount() != zm.NodeCount() {
				t.Fatalf("procs=%d class %d: %d nodes vs %d sequential", procs, c, zm.NodeCount(), zr.NodeCount())
			}
			if zr.PatternCount() != zm.PatternCount() {
				t.Fatalf("procs=%d class %d: pattern count %v vs %v", procs, c, zm.PatternCount(), zr.PatternCount())
			}
			probe := make(Pattern, width)
			for a := 0; a < 1<<width; a += 5 {
				for v := 0; v < width; v++ {
					probe[v] = a&(1<<v) != 0
				}
				if zr.Contains(probe) != zm.Contains(probe) {
					t.Fatalf("procs=%d class %d assignment %d: membership diverged", procs, c, a)
				}
			}
		}
	}
}

// TestUpdateRecompilesOnlyTouchedZones asserts, via the compile
// counters, that epoch swaps pay plan compilation only for the zones
// they rebuild: untouched classes share the predecessor's Zone (and its
// plans), and an UpdateGamma re-view to a cached level compiles nothing.
func TestUpdateRecompilesOnlyTouchedZones(t *testing.T) {
	r := rng.New(13)
	const width = 14
	perClass := map[int][]Pattern{}
	for c := 0; c < 5; c++ {
		perClass[c] = randomPatterns(r, 8, width)
	}
	mon, err := BuildFromPatterns(width, 2, perClass)
	if err != nil {
		t.Fatal(err)
	}
	mon.Freeze()
	upd := mon.Updater()
	if got := upd.Recompiled(); got != 0 {
		t.Fatalf("freeze alone recompiled %d zones", got)
	}
	before := map[int]*Zone{}
	for c := 0; c < 5; c++ {
		before[c] = mon.Zone(c)
	}

	// Touch one class: exactly one zone recompiles; the other four Zone
	// handles (and therefore their plans) are shared pointers.
	if _, err := mon.Update(2, randomPatterns(r, 3, width)...); err != nil {
		t.Fatal(err)
	}
	if got := upd.Recompiled(); got != 1 {
		t.Fatalf("single-class update recompiled %d zones, want 1", got)
	}
	for c := 0; c < 5; c++ {
		cur := mon.Zone(c)
		if c == 2 {
			if cur == before[c] {
				t.Fatal("touched zone was not replaced")
			}
			continue
		}
		if cur != before[c] {
			t.Fatalf("untouched class %d zone was replaced", c)
		}
	}

	// Re-view at a cached γ: zero recompiles.
	if _, err := mon.UpdateGamma(1); err != nil {
		t.Fatal(err)
	}
	if got := upd.Recompiled(); got != 1 {
		t.Fatalf("cached-level UpdateGamma recompiled %d-1 zones, want 0", got)
	}

	// Deeper γ: every zone is compact-cloned and recompiled.
	if _, err := mon.UpdateGamma(4); err != nil {
		t.Fatal(err)
	}
	if got := upd.Recompiled(); got != 1+5 {
		t.Fatalf("deeper UpdateGamma recompiled %d-1 zones, want 5", got)
	}

	// Per-manager compile counters agree: each live zone's manager has
	// compiled exactly its own level stack.
	for c := 0; c < 5; c++ {
		z := mon.Zone(c)
		if got, want := z.Manager().Stats().Compiles, uint64(len(z.roots)); got != want {
			t.Fatalf("class %d manager compiled %d plans, want %d", c, got, want)
		}
	}
}

// TestWatchBatchGroupedMatchesWatch pins the grouped (per-class
// EvalBatch) serving path against per-sample Watch on a real network:
// same classes, same flags, same patterns, whatever order classes land
// in the batch. A partial-coverage monitor exercises the abstain runs of
// the grouping loop too.
func TestWatchBatchGroupedMatchesWatch(t *testing.T) {
	net, layer, train, val := trainedToyNet(t, 11)
	for _, classes := range [][]int{nil, {0, 2}} {
		mon, err := Build(net, train, Config{Layer: layer, Gamma: 1, Classes: classes})
		if err != nil {
			t.Fatal(err)
		}
		xs := make([]*tensor.Tensor, len(val))
		for i := range val {
			xs[i] = val[i].Input
		}
		batch := mon.WatchBatch(net, xs)
		for i, v := range batch {
			single := mon.Watch(net, xs[i])
			if v.Class != single.Class || v.Monitored != single.Monitored ||
				v.OutOfPattern != single.OutOfPattern || v.Pattern.String() != single.Pattern.String() {
				t.Fatalf("classes %v input %d: batch %+v, single %+v", classes, i, v, single)
			}
		}
	}
}
