package core

import (
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"napmon/internal/nn"
	"napmon/internal/tensor"
)

// Config specifies how a monitor is built.
type Config struct {
	// Layer is the index (into the network's layer list) of the monitored
	// layer; its output must be the ReLU-activated vector whose on/off
	// pattern is abstracted. The paper monitors a close-to-output
	// fully-connected ReLU layer.
	Layer int
	// Gamma is the Hamming-distance enlargement of Definition 2.
	Gamma int
	// Classes lists the classes to monitor; nil monitors every class
	// (the paper's network 2 monitor covers only the stop-sign class).
	Classes []int
	// Neurons lists the monitored neuron indices within the layer output
	// (sorted ascending); nil monitors all neurons. Use SelectNeurons to
	// pick important neurons by gradient-based sensitivity analysis.
	Neurons []int
}

// Monitor is the neuron activation pattern monitor of Definition 3: one
// γ-comfort zone per monitored class, consulted after each classification
// decision.
type Monitor struct {
	cfg     Config
	neurons []int // resolved monitored neuron indices (always non-nil)
	width   int   // layer output width d_l
	zones   map[int]*Zone

	// freezeOnce guards the build-to-serve transition: after Freeze (or
	// the first WatchBatch, which freezes implicitly) every zone's BDD
	// manager is read-only and membership queries are safe from any
	// number of goroutines.
	freezeOnce sync.Once
}

// Verdict is the outcome of watching one input.
type Verdict struct {
	// Class is the network's classification decision dec_f(in).
	Class int
	// Monitored reports whether the predicted class has a comfort zone;
	// when false the monitor abstains and OutOfPattern is meaningless.
	Monitored bool
	// OutOfPattern is true when the input's activation pattern is not in
	// the predicted class's γ-comfort zone — the decision is not supported
	// by prior similarities in training.
	OutOfPattern bool
	// Pattern is the extracted activation pattern over monitored neurons.
	Pattern Pattern
}

// Build runs Algorithm 1: it feeds every training sample through the
// network, records the activation pattern of each correctly classified
// sample in its ground-truth class's zone, and enlarges every zone to the
// configured γ. The network is not modified.
func Build(net *nn.Network, train []nn.Sample, cfg Config) (*Monitor, error) {
	m, err := newMonitor(net, cfg)
	if err != nil {
		return nil, err
	}
	// Extract (prediction, pattern) pairs in parallel; zone insertion is
	// sequential because the BDD manager is single-writer.
	type obs struct {
		pred    int
		pattern Pattern
	}
	results := nn.ParallelMap(net, train, func(w *nn.Network, s nn.Sample) obs {
		logits, acts := w.ForwardCapture(s.Input, cfg.Layer)
		return obs{pred: logits.ArgMax(), pattern: PatternOfSubset(acts, m.neurons)}
	})
	for i, r := range results {
		// Line 5 of Algorithm 1: only correctly predicted training images
		// contribute their pattern, to the zone of their true class.
		if r.pred != train[i].Label {
			continue
		}
		z, ok := m.zones[train[i].Label]
		if !ok {
			continue // class not monitored
		}
		z.Insert(r.pattern)
	}
	m.SetGamma(cfg.Gamma)
	return m, nil
}

// newMonitor validates cfg against the network and allocates empty zones.
func newMonitor(net *nn.Network, cfg Config) (*Monitor, error) {
	if cfg.Layer < 0 || cfg.Layer >= net.NumLayers() {
		return nil, fmt.Errorf("core: monitored layer %d out of range [0,%d)",
			cfg.Layer, net.NumLayers())
	}
	if cfg.Gamma < 0 {
		return nil, fmt.Errorf("core: negative gamma %d", cfg.Gamma)
	}
	numClasses, width, err := probeDims(net, cfg.Layer)
	if err != nil {
		return nil, err
	}
	neurons := cfg.Neurons
	if neurons == nil {
		neurons = make([]int, width)
		for i := range neurons {
			neurons[i] = i
		}
	} else {
		if len(neurons) == 0 {
			return nil, fmt.Errorf("core: empty monitored neuron list")
		}
		if !sort.IntsAreSorted(neurons) {
			return nil, fmt.Errorf("core: monitored neurons must be sorted ascending")
		}
		for i, n := range neurons {
			if n < 0 || n >= width {
				return nil, fmt.Errorf("core: neuron %d out of range [0,%d)", n, width)
			}
			if i > 0 && neurons[i-1] == n {
				return nil, fmt.Errorf("core: duplicate monitored neuron %d", n)
			}
		}
	}
	classes := cfg.Classes
	if classes == nil {
		classes = make([]int, numClasses)
		for i := range classes {
			classes[i] = i
		}
	}
	zones := make(map[int]*Zone, len(classes))
	for _, c := range classes {
		if c < 0 || c >= numClasses {
			return nil, fmt.Errorf("core: monitored class %d out of range [0,%d)", c, numClasses)
		}
		if _, dup := zones[c]; dup {
			return nil, fmt.Errorf("core: duplicate monitored class %d", c)
		}
		zones[c] = NewZone(len(neurons))
	}
	return &Monitor{cfg: cfg, neurons: neurons, width: width, zones: zones}, nil
}

// probeDims determines the network's class count and the monitored layer's
// output width from the static shapes of its fully-connected layers: the
// final layer must be Dense (its row count is the class count) and the
// monitored layer must sit at or after a Dense layer (whose row count is
// the layer width). Convolutional layer outputs depend on the input size
// and are not supported as monitored layers, matching the paper's setup of
// monitoring close-to-output fully-connected layers.
func probeDims(net *nn.Network, layer int) (numClasses, width int, err error) {
	last, ok := net.Layer(net.NumLayers() - 1).(*nn.Dense)
	if !ok {
		return 0, 0, fmt.Errorf("core: network's final layer must be fully-connected")
	}
	numClasses = last.Weights().Dim(0)
	// The monitored layer is typically ReLU following a Dense layer; find
	// the nearest Dense at or before the monitored index to learn width.
	for i := layer; i >= 0; i-- {
		if d, ok := net.Layer(i).(*nn.Dense); ok {
			return numClasses, d.Weights().Dim(0), nil
		}
	}
	return 0, 0, fmt.Errorf("core: no fully-connected layer at or before monitored layer %d", layer)
}

// Config returns the configuration the monitor was built with.
func (m *Monitor) Config() Config { return m.cfg }

// Neurons returns the monitored neuron indices.
func (m *Monitor) Neurons() []int { return m.neurons }

// LayerWidth returns the monitored layer's full width d_l.
func (m *Monitor) LayerWidth() int { return m.width }

// Zone returns the comfort zone for class c, or nil when c is unmonitored.
func (m *Monitor) Zone(c int) *Zone { return m.zones[c] }

// Classes returns the monitored classes in ascending order.
func (m *Monitor) Classes() []int {
	cs := make([]int, 0, len(m.zones))
	for c := range m.zones {
		cs = append(cs, c)
	}
	sort.Ints(cs)
	return cs
}

// SetGamma changes the enlargement level of every zone (recomputed
// incrementally from cached levels).
func (m *Monitor) SetGamma(gamma int) {
	for _, z := range m.zones {
		z.SetGamma(gamma)
	}
	m.cfg.Gamma = gamma
}

// Gamma returns the current enlargement level.
func (m *Monitor) Gamma() int { return m.cfg.Gamma }

// Freeze transitions the monitor from building to serving: every zone's
// BDD manager becomes read-only (comfort-zone levels up to the current γ
// stay queryable; growing a zone or enlarging past the deepest cached
// level panics), after which Watch, WatchPattern and WatchBatch are safe
// to call from any number of goroutines concurrently. Freeze is
// idempotent and irreversible; WatchBatch calls it implicitly on first
// use. SetGamma remains legal on a frozen monitor only for levels that
// were computed before freezing, and must not run concurrently with
// serving calls.
func (m *Monitor) Freeze() {
	m.freezeOnce.Do(func() {
		for _, z := range m.zones {
			z.Freeze()
		}
	})
}

// Frozen reports whether the monitor has been frozen for serving.
func (m *Monitor) Frozen() bool {
	for _, z := range m.zones {
		return z.Frozen()
	}
	return true // a monitor with no zones has nothing left to mutate
}

// Watch supplements one classification decision (Figure 1-(b)): it runs
// inference, extracts the activation pattern at the monitored layer, and
// checks it against the comfort zone of the predicted class.
func (m *Monitor) Watch(net *nn.Network, x *tensor.Tensor) Verdict {
	logits, acts := net.ForwardCapture(x, m.cfg.Layer)
	pred := logits.ArgMax()
	p := PatternOfSubset(acts, m.neurons)
	z, ok := m.zones[pred]
	if !ok {
		return Verdict{Class: pred, Monitored: false, Pattern: p}
	}
	return Verdict{Class: pred, Monitored: true, OutOfPattern: !z.Contains(p), Pattern: p}
}

// scratchPools recycles tensor.Pool instances across WatchBatch calls so
// a hot serving loop reuses warm scratch buffers instead of reallocating
// a network's worth of intermediates per batch. Each pool is owned by
// exactly one goroutine between Get and Put.
var scratchPools = sync.Pool{New: func() any { return tensor.NewPool() }}

// maxWatchChunk bounds how many inputs one ForwardBatch pass stacks
// together, capping scratch memory (the widest intermediate is the
// batched im2col matrix — ~0.5MB per input for the Table I MNIST net's
// second conv) while keeping GEMMs wide enough to saturate the kernels:
// at 64 samples a conv GEMM is already thousands of columns wide.
const maxWatchChunk = 64

// WatchBatch runs inference and the comfort-zone membership query for a
// batch of inputs and returns one Verdict per input, in input order. The
// batch is fed through Network.ForwardBatch in whole micro-batch chunks —
// dense layers collapse to one (B×in)×(in×out) GEMM, conv layers to one
// batched im2col + GEMM — rather than fanning out per-input goroutines,
// with per-row activation-pattern extraction against the frozen BDD
// zones. On multi-core hosts the batch splits into per-worker chunks so
// GEMM width and core count multiply; all scratch is pooled, so a warm
// serving loop allocates only the verdict slice. The monitor is frozen on
// first use (see Freeze); WatchBatch may be called concurrently from any
// number of goroutines because the batched forward path touches no
// per-layer state.
func (m *Monitor) WatchBatch(net *nn.Network, inputs []*tensor.Tensor) []Verdict {
	if len(inputs) == 0 {
		// An empty batch has no serving work to do; in particular it must
		// not freeze a monitor that is still being built.
		return []Verdict{}
	}
	m.Freeze()
	out := make([]Verdict, len(inputs))
	workers := runtime.GOMAXPROCS(0)
	chunk := (len(inputs) + workers - 1) / workers
	if chunk > maxWatchChunk {
		chunk = maxWatchChunk
	}
	if chunk >= len(inputs) {
		m.watchChunk(net, inputs, out)
		return out
	}
	// At most `workers` goroutines run regardless of batch size — each
	// owns one scratch pool at a time and claims chunks off an atomic
	// cursor, so memory is bounded by workers × one chunk's scratch.
	numChunks := (len(inputs) + chunk - 1) / chunk
	if workers > numChunks {
		workers = numChunks
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				c := int(next.Add(1)) - 1
				if c >= numChunks {
					return
				}
				lo := c * chunk
				hi := lo + chunk
				if hi > len(inputs) {
					hi = len(inputs)
				}
				m.watchChunk(net, inputs[lo:hi], out[lo:hi])
			}
		}()
	}
	wg.Wait()
	return out
}

// WatchBatchPooled serves one whole batch through a single ForwardBatch
// pass on the calling goroutine, drawing every intermediate from the
// caller's scratch pool. This is the entry point for serving lanes that
// own a long-lived pool (internal/serve): the lane's buffers stay warm
// across micro-batches, and lane-level parallelism replaces WatchBatch's
// own worker split. The monitor is frozen on first use; pool must not be
// shared between concurrent callers. A nil pool uses a throwaway one.
func (m *Monitor) WatchBatchPooled(net *nn.Network, inputs []*tensor.Tensor, pool *tensor.Pool) []Verdict {
	if len(inputs) == 0 {
		return []Verdict{}
	}
	m.Freeze()
	out := make([]Verdict, len(inputs))
	m.watchChunkPooled(net, inputs, out, pool)
	return out
}

// watchChunk serves one chunk with a recycled scratch pool.
func (m *Monitor) watchChunk(net *nn.Network, inputs []*tensor.Tensor, out []Verdict) {
	pool := scratchPools.Get().(*tensor.Pool)
	m.watchChunkPooled(net, inputs, out, pool)
	scratchPools.Put(pool)
}

// watchChunkPooled is the batched serving core: one ForwardBatchCapture
// pass over the chunk, then per-row argmax, pattern extraction and zone
// membership.
func (m *Monitor) watchChunkPooled(net *nn.Network, inputs []*tensor.Tensor, out []Verdict, pool *tensor.Pool) {
	logits, acts := net.ForwardBatchCapture(inputs, m.cfg.Layer, pool)
	b := len(inputs)
	nc := logits.Len() / b
	width := acts.Len() / b
	ldata, adata := logits.Data(), acts.Data()
	for i := range inputs {
		row := ldata[i*nc : (i+1)*nc]
		pred := 0
		for j := 1; j < nc; j++ {
			if row[j] > row[pred] {
				pred = j
			}
		}
		p := PatternOfRow(adata[i*width:(i+1)*width], m.neurons)
		z, ok := m.zones[pred]
		if !ok {
			out[i] = Verdict{Class: pred, Monitored: false, Pattern: p}
			continue
		}
		out[i] = Verdict{Class: pred, Monitored: true, OutOfPattern: !z.Contains(p), Pattern: p}
	}
	if pool != nil {
		pool.Put(logits)
		if &acts.Data()[0] != &logits.Data()[0] {
			pool.Put(acts)
		}
	}
}

// WatchPattern checks a pre-extracted pattern against class c's zone.
// It reports (outOfPattern, monitored).
func (m *Monitor) WatchPattern(c int, p Pattern) (outOfPattern, monitored bool) {
	z, ok := m.zones[c]
	if !ok {
		return false, false
	}
	return !z.Contains(p), true
}

// StorageNodes returns the total BDD node count across all zones at the
// current γ.
func (m *Monitor) StorageNodes() int {
	total := 0
	for _, z := range m.zones {
		total += z.NodeCount()
	}
	return total
}
