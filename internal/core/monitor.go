package core

import (
	"fmt"
	"sort"
	"sync"

	"napmon/internal/nn"
	"napmon/internal/tensor"
)

// Config specifies how a monitor is built.
type Config struct {
	// Layer is the index (into the network's layer list) of the monitored
	// layer; its output must be the ReLU-activated vector whose on/off
	// pattern is abstracted. The paper monitors a close-to-output
	// fully-connected ReLU layer.
	Layer int
	// Gamma is the Hamming-distance enlargement of Definition 2.
	Gamma int
	// Classes lists the classes to monitor; nil monitors every class
	// (the paper's network 2 monitor covers only the stop-sign class).
	Classes []int
	// Neurons lists the monitored neuron indices within the layer output
	// (sorted ascending); nil monitors all neurons. Use SelectNeurons to
	// pick important neurons by gradient-based sensitivity analysis.
	Neurons []int
}

// Monitor is the neuron activation pattern monitor of Definition 3: one
// γ-comfort zone per monitored class, consulted after each classification
// decision.
type Monitor struct {
	cfg     Config
	neurons []int // resolved monitored neuron indices (always non-nil)
	width   int   // layer output width d_l
	zones   map[int]*Zone

	// freezeOnce guards the build-to-serve transition: after Freeze (or
	// the first WatchBatch, which freezes implicitly) every zone's BDD
	// manager is read-only and membership queries are safe from any
	// number of goroutines.
	freezeOnce sync.Once
}

// Verdict is the outcome of watching one input.
type Verdict struct {
	// Class is the network's classification decision dec_f(in).
	Class int
	// Monitored reports whether the predicted class has a comfort zone;
	// when false the monitor abstains and OutOfPattern is meaningless.
	Monitored bool
	// OutOfPattern is true when the input's activation pattern is not in
	// the predicted class's γ-comfort zone — the decision is not supported
	// by prior similarities in training.
	OutOfPattern bool
	// Pattern is the extracted activation pattern over monitored neurons.
	Pattern Pattern
}

// Build runs Algorithm 1: it feeds every training sample through the
// network, records the activation pattern of each correctly classified
// sample in its ground-truth class's zone, and enlarges every zone to the
// configured γ. The network is not modified.
func Build(net *nn.Network, train []nn.Sample, cfg Config) (*Monitor, error) {
	m, err := newMonitor(net, cfg)
	if err != nil {
		return nil, err
	}
	// Extract (prediction, pattern) pairs in parallel; zone insertion is
	// sequential because the BDD manager is single-writer.
	type obs struct {
		pred    int
		pattern Pattern
	}
	results := nn.ParallelMap(net, train, func(w *nn.Network, s nn.Sample) obs {
		logits, acts := w.ForwardCapture(s.Input, cfg.Layer)
		return obs{pred: logits.ArgMax(), pattern: PatternOfSubset(acts, m.neurons)}
	})
	for i, r := range results {
		// Line 5 of Algorithm 1: only correctly predicted training images
		// contribute their pattern, to the zone of their true class.
		if r.pred != train[i].Label {
			continue
		}
		z, ok := m.zones[train[i].Label]
		if !ok {
			continue // class not monitored
		}
		z.Insert(r.pattern)
	}
	m.SetGamma(cfg.Gamma)
	return m, nil
}

// newMonitor validates cfg against the network and allocates empty zones.
func newMonitor(net *nn.Network, cfg Config) (*Monitor, error) {
	if cfg.Layer < 0 || cfg.Layer >= net.NumLayers() {
		return nil, fmt.Errorf("core: monitored layer %d out of range [0,%d)",
			cfg.Layer, net.NumLayers())
	}
	if cfg.Gamma < 0 {
		return nil, fmt.Errorf("core: negative gamma %d", cfg.Gamma)
	}
	numClasses, width, err := probeDims(net, cfg.Layer)
	if err != nil {
		return nil, err
	}
	neurons := cfg.Neurons
	if neurons == nil {
		neurons = make([]int, width)
		for i := range neurons {
			neurons[i] = i
		}
	} else {
		if len(neurons) == 0 {
			return nil, fmt.Errorf("core: empty monitored neuron list")
		}
		if !sort.IntsAreSorted(neurons) {
			return nil, fmt.Errorf("core: monitored neurons must be sorted ascending")
		}
		for i, n := range neurons {
			if n < 0 || n >= width {
				return nil, fmt.Errorf("core: neuron %d out of range [0,%d)", n, width)
			}
			if i > 0 && neurons[i-1] == n {
				return nil, fmt.Errorf("core: duplicate monitored neuron %d", n)
			}
		}
	}
	classes := cfg.Classes
	if classes == nil {
		classes = make([]int, numClasses)
		for i := range classes {
			classes[i] = i
		}
	}
	zones := make(map[int]*Zone, len(classes))
	for _, c := range classes {
		if c < 0 || c >= numClasses {
			return nil, fmt.Errorf("core: monitored class %d out of range [0,%d)", c, numClasses)
		}
		if _, dup := zones[c]; dup {
			return nil, fmt.Errorf("core: duplicate monitored class %d", c)
		}
		zones[c] = NewZone(len(neurons))
	}
	return &Monitor{cfg: cfg, neurons: neurons, width: width, zones: zones}, nil
}

// probeDims determines the network's class count and the monitored layer's
// output width from the static shapes of its fully-connected layers: the
// final layer must be Dense (its row count is the class count) and the
// monitored layer must sit at or after a Dense layer (whose row count is
// the layer width). Convolutional layer outputs depend on the input size
// and are not supported as monitored layers, matching the paper's setup of
// monitoring close-to-output fully-connected layers.
func probeDims(net *nn.Network, layer int) (numClasses, width int, err error) {
	last, ok := net.Layer(net.NumLayers() - 1).(*nn.Dense)
	if !ok {
		return 0, 0, fmt.Errorf("core: network's final layer must be fully-connected")
	}
	numClasses = last.Weights().Dim(0)
	// The monitored layer is typically ReLU following a Dense layer; find
	// the nearest Dense at or before the monitored index to learn width.
	for i := layer; i >= 0; i-- {
		if d, ok := net.Layer(i).(*nn.Dense); ok {
			return numClasses, d.Weights().Dim(0), nil
		}
	}
	return 0, 0, fmt.Errorf("core: no fully-connected layer at or before monitored layer %d", layer)
}

// Config returns the configuration the monitor was built with.
func (m *Monitor) Config() Config { return m.cfg }

// Neurons returns the monitored neuron indices.
func (m *Monitor) Neurons() []int { return m.neurons }

// LayerWidth returns the monitored layer's full width d_l.
func (m *Monitor) LayerWidth() int { return m.width }

// Zone returns the comfort zone for class c, or nil when c is unmonitored.
func (m *Monitor) Zone(c int) *Zone { return m.zones[c] }

// Classes returns the monitored classes in ascending order.
func (m *Monitor) Classes() []int {
	cs := make([]int, 0, len(m.zones))
	for c := range m.zones {
		cs = append(cs, c)
	}
	sort.Ints(cs)
	return cs
}

// SetGamma changes the enlargement level of every zone (recomputed
// incrementally from cached levels).
func (m *Monitor) SetGamma(gamma int) {
	for _, z := range m.zones {
		z.SetGamma(gamma)
	}
	m.cfg.Gamma = gamma
}

// Gamma returns the current enlargement level.
func (m *Monitor) Gamma() int { return m.cfg.Gamma }

// Freeze transitions the monitor from building to serving: every zone's
// BDD manager becomes read-only (comfort-zone levels up to the current γ
// stay queryable; growing a zone or enlarging past the deepest cached
// level panics), after which Watch, WatchPattern and WatchBatch are safe
// to call from any number of goroutines concurrently. Freeze is
// idempotent and irreversible; WatchBatch calls it implicitly on first
// use. SetGamma remains legal on a frozen monitor only for levels that
// were computed before freezing, and must not run concurrently with
// serving calls.
func (m *Monitor) Freeze() {
	m.freezeOnce.Do(func() {
		for _, z := range m.zones {
			z.Freeze()
		}
	})
}

// Frozen reports whether the monitor has been frozen for serving.
func (m *Monitor) Frozen() bool {
	for _, z := range m.zones {
		return z.Frozen()
	}
	return true // a monitor with no zones has nothing left to mutate
}

// Watch supplements one classification decision (Figure 1-(b)): it runs
// inference, extracts the activation pattern at the monitored layer, and
// checks it against the comfort zone of the predicted class.
func (m *Monitor) Watch(net *nn.Network, x *tensor.Tensor) Verdict {
	logits, acts := net.ForwardCapture(x, m.cfg.Layer)
	pred := logits.ArgMax()
	p := PatternOfSubset(acts, m.neurons)
	z, ok := m.zones[pred]
	if !ok {
		return Verdict{Class: pred, Monitored: false, Pattern: p}
	}
	return Verdict{Class: pred, Monitored: true, OutOfPattern: !z.Contains(p), Pattern: p}
}

// WatchBatch runs Watch over a batch of inputs on a GOMAXPROCS-sized
// worker pool and returns one Verdict per input, in input order. Each
// worker clones the network (shared parameters, private scratch buffers)
// and zone queries are plain reads of frozen BDDs, so throughput scales
// with cores: this is the serving front end for heavy multi-user traffic.
// The monitor is frozen on first use (see Freeze); WatchBatch itself may
// be called concurrently from many goroutines.
func (m *Monitor) WatchBatch(net *nn.Network, inputs []*tensor.Tensor) []Verdict {
	if len(inputs) == 0 {
		// An empty batch has no serving work to do; in particular it must
		// not freeze a monitor that is still being built.
		return []Verdict{}
	}
	m.Freeze()
	return nn.ParallelMapSlice(net, inputs, func(w *nn.Network, x *tensor.Tensor) Verdict {
		return m.Watch(w, x)
	})
}

// WatchPattern checks a pre-extracted pattern against class c's zone.
// It reports (outOfPattern, monitored).
func (m *Monitor) WatchPattern(c int, p Pattern) (outOfPattern, monitored bool) {
	z, ok := m.zones[c]
	if !ok {
		return false, false
	}
	return !z.Contains(p), true
}

// StorageNodes returns the total BDD node count across all zones at the
// current γ.
func (m *Monitor) StorageNodes() int {
	total := 0
	for _, z := range m.zones {
		total += z.NodeCount()
	}
	return total
}
