package core

import (
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"napmon/internal/nn"
	"napmon/internal/tensor"
)

// Config specifies how a monitor is built.
type Config struct {
	// Layer is the index (into the network's layer list) of the monitored
	// layer; its output must be the ReLU-activated vector whose on/off
	// pattern is abstracted. The paper monitors a close-to-output
	// fully-connected ReLU layer.
	Layer int
	// Gamma is the Hamming-distance enlargement of Definition 2.
	Gamma int
	// Classes lists the classes to monitor; nil monitors every class
	// (the paper's network 2 monitor covers only the stop-sign class).
	Classes []int
	// Neurons lists the monitored neuron indices within the layer output
	// (sorted ascending); nil monitors all neurons. Use SelectNeurons to
	// pick important neurons by gradient-based sensitivity analysis.
	Neurons []int
}

// Monitor is the neuron activation pattern monitor of Definition 3: one
// γ-comfort zone per monitored class, consulted after each classification
// decision.
//
// A monitor has two phases. While building (Algorithm 1) it is
// single-writer: Insert and SetGamma mutate the zones directly. Freeze
// publishes the zones as the first serving epoch; from then on every read
// path (Watch, WatchBatch, WatchPattern, Evaluate) pins the current epoch
// for the duration of its batch, and the zones only change by whole-epoch
// replacement through the Updater (Update/UpdateBatch/UpdateGamma) — see
// DESIGN.md, "Online updates: epochs, grace periods".
type Monitor struct {
	cfg     Config
	neurons []int // resolved monitored neuron indices (always non-nil)
	width   int   // layer output width d_l

	// zones is the build-phase state, owned by the building goroutine
	// until Freeze. After Freeze the source of truth is the current
	// epoch; zones keeps the freeze-time generation only so the
	// freezeOnce closure can hand it over.
	zones map[int]*Zone

	// cur is the serving epoch: nil until Freeze, then swapped atomically
	// by the updater. Readers go through acquire/unpin.
	cur atomic.Pointer[epoch]

	// upd serializes online updates and carries their counters.
	upd Updater

	// freezeOnce guards the build-to-serve transition: after Freeze (or
	// the first WatchBatch, which freezes implicitly) every zone's BDD
	// manager is read-only and membership queries are safe from any
	// number of goroutines.
	freezeOnce sync.Once

	// Serving-signal counters (see obs.go): per-class verdict tallies,
	// abstentions, and the inference/zone-query time split. wc's key set
	// mirrors zones and is immutable after construction.
	wc          map[int]*watchCounters
	unmonitored atomic.Uint64
	infNs       atomic.Int64
	zoneNs      atomic.Int64
}

// Verdict is the outcome of watching one input.
type Verdict struct {
	// Class is the network's classification decision dec_f(in).
	Class int
	// Monitored reports whether the predicted class has a comfort zone;
	// when false the monitor abstains and OutOfPattern is meaningless.
	Monitored bool
	// OutOfPattern is true when the input's activation pattern is not in
	// the predicted class's γ-comfort zone — the decision is not supported
	// by prior similarities in training.
	OutOfPattern bool
	// Pattern is the extracted activation pattern over monitored neurons.
	Pattern Pattern
	// Epoch identifies the serving epoch the verdict was computed against
	// (0 while the monitor is unfrozen). All verdicts of one batch carry
	// the same epoch: a batch never straddles an online update.
	Epoch uint64
}

// Build runs Algorithm 1: it feeds every training sample through the
// network, records the activation pattern of each correctly classified
// sample in its ground-truth class's zone, and enlarges every zone to the
// configured γ. The network is not modified. Both halves run on all
// cores: pattern extraction fans samples over a worker pool, and the
// zone phase fans classes over one — every class's zone lives in its own
// single-writer BDD manager, so per-class insertion and enlargement are
// independent (see shard.go). The result is deterministic regardless of
// worker count.
func Build(net *nn.Network, train []nn.Sample, cfg Config) (*Monitor, error) {
	m, err := newMonitor(net, cfg)
	if err != nil {
		return nil, err
	}
	results := extractObs(net, cfg.Layer, m.neurons, train)
	// Line 5 of Algorithm 1: only correctly predicted training images
	// contribute their pattern, to the zone of their true class. Grouping
	// preserves training order within each class, so the sharded build
	// constructs the same BDDs as the old sequential loop.
	perClass := make(map[int][]Pattern, len(m.zones))
	for i, r := range results {
		if r.pred != train[i].Label {
			continue
		}
		if _, ok := m.zones[train[i].Label]; !ok {
			continue // class not monitored
		}
		perClass[train[i].Label] = append(perClass[train[i].Label], r.pattern)
	}
	if err := m.buildZones(perClass, cfg.Gamma); err != nil {
		return nil, err
	}
	return m, nil
}

// BuildFromPatterns builds a monitor directly from per-class activation
// patterns — no network pass. This is the entry point for rebuilding a
// monitor from logged serving traffic (napmon-serve's /watch responses
// carry the pattern wire form) and the isolated harness for the sharded
// zone build: classes are fanned out over the worker pool exactly as in
// Build. All patterns must have length width; classes must be
// non-negative. The monitor serves pattern-level queries (WatchPattern,
// Evaluate-by-pattern, the online Update family); the network-coupled
// entry points (Watch, WatchBatch) need a monitor built by Build, which
// knows the monitored layer.
func BuildFromPatterns(width, gamma int, perClass map[int][]Pattern) (*Monitor, error) {
	if width <= 0 {
		return nil, fmt.Errorf("core: monitor width %d must be positive", width)
	}
	if gamma < 0 {
		return nil, fmt.Errorf("core: negative gamma %d", gamma)
	}
	if len(perClass) == 0 {
		return nil, fmt.Errorf("core: BuildFromPatterns needs at least one class")
	}
	zones := make(map[int]*Zone, len(perClass))
	for c, pats := range perClass {
		if c < 0 {
			return nil, fmt.Errorf("core: negative class %d", c)
		}
		for _, p := range pats {
			if len(p) != width {
				return nil, fmt.Errorf("core: class %d pattern width %d does not match monitor width %d",
					c, len(p), width)
			}
		}
		zones[c] = NewZone(width)
	}
	neurons := make([]int, width)
	for i := range neurons {
		neurons[i] = i
	}
	classes := make([]int, 0, len(perClass))
	for c := range perClass {
		classes = append(classes, c)
	}
	sort.Ints(classes)
	m := &Monitor{
		cfg:     Config{Layer: -1, Gamma: gamma, Classes: classes},
		neurons: neurons,
		width:   width,
		zones:   zones,
	}
	m.upd.m = m
	m.initWatchCounters()
	if err := m.buildZones(perClass, gamma); err != nil {
		return nil, err
	}
	return m, nil
}

// newMonitor validates cfg against the network and allocates empty zones.
func newMonitor(net *nn.Network, cfg Config) (*Monitor, error) {
	if cfg.Layer < 0 || cfg.Layer >= net.NumLayers() {
		return nil, fmt.Errorf("core: monitored layer %d out of range [0,%d)",
			cfg.Layer, net.NumLayers())
	}
	if cfg.Gamma < 0 {
		return nil, fmt.Errorf("core: negative gamma %d", cfg.Gamma)
	}
	numClasses, width, err := probeDims(net, cfg.Layer)
	if err != nil {
		return nil, err
	}
	neurons := cfg.Neurons
	if neurons == nil {
		neurons = make([]int, width)
		for i := range neurons {
			neurons[i] = i
		}
	} else {
		if len(neurons) == 0 {
			return nil, fmt.Errorf("core: empty monitored neuron list")
		}
		if !sort.IntsAreSorted(neurons) {
			return nil, fmt.Errorf("core: monitored neurons must be sorted ascending")
		}
		for i, n := range neurons {
			if n < 0 || n >= width {
				return nil, fmt.Errorf("core: neuron %d out of range [0,%d)", n, width)
			}
			if i > 0 && neurons[i-1] == n {
				return nil, fmt.Errorf("core: duplicate monitored neuron %d", n)
			}
		}
	}
	classes := cfg.Classes
	if classes == nil {
		classes = make([]int, numClasses)
		for i := range classes {
			classes[i] = i
		}
	}
	zones := make(map[int]*Zone, len(classes))
	for _, c := range classes {
		if c < 0 || c >= numClasses {
			return nil, fmt.Errorf("core: monitored class %d out of range [0,%d)", c, numClasses)
		}
		if _, dup := zones[c]; dup {
			return nil, fmt.Errorf("core: duplicate monitored class %d", c)
		}
		zones[c] = NewZone(len(neurons))
	}
	m := &Monitor{cfg: cfg, neurons: neurons, width: width, zones: zones}
	m.upd.m = m
	m.initWatchCounters()
	return m, nil
}

// probeDims determines the network's class count and the monitored layer's
// output width from the static shapes of its fully-connected layers: the
// final layer must be Dense (its row count is the class count) and the
// monitored layer must sit at or after a Dense layer (whose row count is
// the layer width). Convolutional layer outputs depend on the input size
// and are not supported as monitored layers, matching the paper's setup of
// monitoring close-to-output fully-connected layers.
func probeDims(net *nn.Network, layer int) (numClasses, width int, err error) {
	last, ok := net.Layer(net.NumLayers() - 1).(*nn.Dense)
	if !ok {
		return 0, 0, fmt.Errorf("core: network's final layer must be fully-connected")
	}
	numClasses = last.Weights().Dim(0)
	// The monitored layer is typically ReLU following a Dense layer; find
	// the nearest Dense at or before the monitored index to learn width.
	for i := layer; i >= 0; i-- {
		if d, ok := net.Layer(i).(*nn.Dense); ok {
			return numClasses, d.Weights().Dim(0), nil
		}
	}
	return 0, 0, fmt.Errorf("core: no fully-connected layer at or before monitored layer %d", layer)
}

// Config returns the configuration the monitor was built with.
func (m *Monitor) Config() Config { return m.cfg }

// Neurons returns the monitored neuron indices.
func (m *Monitor) Neurons() []int { return m.neurons }

// LayerWidth returns the monitored layer's full width d_l.
func (m *Monitor) LayerWidth() int { return m.width }

// zonesView returns the zone set a non-serving accessor should read: the
// current epoch's zones once frozen, the build-phase zones before.
// Accessors going through it (Zone, Classes, StorageNodes) see the latest
// generation but do not pin it — racing them against concurrent updates
// can observe a zone whose manager was released. Serving paths pin instead.
func (m *Monitor) zonesView() map[int]*Zone {
	if e := m.cur.Load(); e != nil {
		return e.zones
	}
	return m.zones
}

// Zone returns the comfort zone for class c at the current epoch, or nil
// when c is unmonitored. The returned handle belongs to the epoch current
// at call time: if online updates later replace class c's zone, the
// handle's BDD manager is released once that epoch's readers drain, after
// which its query methods panic. Diagnostics that run concurrently with
// updates should re-fetch the zone per use (or go through the pinned
// serving APIs — Watch, WatchPattern, WatchBatch, Evaluate,
// StorageNodes) rather than caching the handle across updates.
func (m *Monitor) Zone(c int) *Zone { return m.zonesView()[c] }

// Classes returns the monitored classes in ascending order.
func (m *Monitor) Classes() []int {
	zones := m.zonesView()
	cs := make([]int, 0, len(zones))
	for c := range zones {
		cs = append(cs, c)
	}
	sort.Ints(cs)
	return cs
}

// SetGamma changes the enlargement level of every zone (recomputed
// incrementally from cached levels), with the per-class enlargements
// fanned out over the worker pool — each zone's manager is independent,
// so the classes expand concurrently and deterministically. It is a
// build-phase operation: on a frozen monitor it returns an error instead
// of mutating shared serving state — publish the change as a new epoch
// with UpdateGamma instead.
func (m *Monitor) SetGamma(gamma int) error {
	if m.Frozen() {
		if e := m.cur.Load(); e != nil && e.gamma == gamma {
			return nil // no change requested; nothing to mutate
		}
		return fmt.Errorf("core: SetGamma(%d) on frozen monitor (use UpdateGamma to publish a new serving epoch)", gamma)
	}
	err := forEachClass(sortedClasses(m.zones), func(c int) error {
		return m.zones[c].SetGamma(gamma)
	})
	if err != nil {
		return err
	}
	m.cfg.Gamma = gamma
	return nil
}

// Gamma returns the current enlargement level: the serving epoch's γ once
// frozen (UpdateGamma may have moved it), the build configuration before.
func (m *Monitor) Gamma() int {
	if e := m.cur.Load(); e != nil {
		return e.gamma
	}
	return m.cfg.Gamma
}

// Freeze transitions the monitor from building to serving: every zone's
// BDD manager becomes read-only and the zone set is published as epoch 1,
// after which Watch, WatchPattern and WatchBatch are safe to call from any
// number of goroutines concurrently. Freeze is idempotent; WatchBatch
// calls it implicitly on first use. A frozen monitor mutates only by
// whole-epoch replacement: Update/UpdateBatch absorb new patterns and
// UpdateGamma re-levels the zones, each publishing a successor epoch
// without a serving gap; SetGamma and Insert fail.
func (m *Monitor) Freeze() { m.freezeAt(1) }

// freezeAt is Freeze with an explicit id for the first published epoch.
// A freshly built monitor starts at epoch 1; a monitor warm-started from
// a snapshot resumes at the snapshot's epoch id so replayed deltas keep
// publishing the same ids as the leader they came from (LoadSnapshot).
func (m *Monitor) freezeAt(id uint64) {
	m.freezeOnce.Do(func() {
		for _, z := range m.zones {
			z.Freeze()
		}
		e := newEpoch(id, m.cfg.Gamma, m.zones)
		m.upd.track(e)
		m.cur.Store(e)
	})
}

// Frozen reports whether the monitor has been frozen for serving.
func (m *Monitor) Frozen() bool {
	if m.cur.Load() != nil {
		return true
	}
	for _, z := range m.zones {
		return z.Frozen()
	}
	return true // a monitor with no zones has nothing left to mutate
}

// Watch supplements one classification decision (Figure 1-(b)): it runs
// inference, extracts the activation pattern at the monitored layer, and
// checks it against the comfort zone of the predicted class.
func (m *Monitor) Watch(net *nn.Network, x *tensor.Tensor) Verdict {
	logits, acts := net.ForwardCapture(x, m.cfg.Layer)
	pred := logits.ArgMax()
	p := PatternOfSubset(acts, m.neurons)
	zones, eid := m.zones, uint64(0)
	if e := m.acquire(); e != nil {
		defer e.unpin()
		zones, eid = e.zones, e.id
	}
	z, ok := zones[pred]
	if !ok {
		m.countVerdict(pred, false, false)
		return Verdict{Class: pred, Monitored: false, Pattern: p, Epoch: eid}
	}
	oop := !z.Contains(p)
	m.countVerdict(pred, true, oop)
	return Verdict{Class: pred, Monitored: true, OutOfPattern: oop, Pattern: p, Epoch: eid}
}

// scratchPools recycles tensor.Pool instances across WatchBatch calls so
// a hot serving loop reuses warm scratch buffers instead of reallocating
// a network's worth of intermediates per batch. Each pool is owned by
// exactly one goroutine between Get and Put.
var scratchPools = sync.Pool{New: func() any { return tensor.NewPool() }}

// groupScratch recycles the per-chunk class-grouping buffers of
// watchChunkPooled (row order, pattern views, batch results), keeping
// the serving warm path allocation-free. Each instance is owned by one
// goroutine between Get and Put.
type groupScratch struct {
	idx  []int
	pats [][]bool
	res  []bool
}

var groupScratches = sync.Pool{New: func() any { return &groupScratch{} }}

// maxWatchChunk bounds how many inputs one ForwardBatch pass stacks
// together, capping scratch memory (the widest intermediate is the
// batched im2col matrix — ~0.5MB per input for the Table I MNIST net's
// second conv) while keeping GEMMs wide enough to saturate the kernels:
// at 64 samples a conv GEMM is already thousands of columns wide.
const maxWatchChunk = 64

// WatchBatch runs inference and the comfort-zone membership query for a
// batch of inputs and returns one Verdict per input, in input order. The
// batch is fed through Network.ForwardBatch in whole micro-batch chunks —
// dense layers collapse to one (B×in)×(in×out) GEMM, conv layers to one
// batched im2col + GEMM — rather than fanning out per-input goroutines,
// with per-row activation-pattern extraction against the frozen BDD
// zones. On multi-core hosts the batch splits into per-worker chunks so
// GEMM width and core count multiply; all scratch is pooled, so a warm
// serving loop allocates only the verdict slice. The monitor is frozen on
// first use (see Freeze); WatchBatch may be called concurrently from any
// number of goroutines because the batched forward path touches no
// per-layer state. The serving epoch is pinned once for the whole batch:
// every verdict carries the same Epoch even while online updates publish
// new generations concurrently.
func (m *Monitor) WatchBatch(net *nn.Network, inputs []*tensor.Tensor) []Verdict {
	if len(inputs) == 0 {
		// An empty batch has no serving work to do; in particular it must
		// not freeze a monitor that is still being built.
		return []Verdict{}
	}
	m.Freeze()
	e := m.acquire()
	defer e.unpin()
	out := make([]Verdict, len(inputs))
	workers := runtime.GOMAXPROCS(0)
	chunk := (len(inputs) + workers - 1) / workers
	if chunk > maxWatchChunk {
		chunk = maxWatchChunk
	}
	if chunk >= len(inputs) {
		m.watchChunk(net, inputs, out, e)
		return out
	}
	// At most `workers` goroutines run regardless of batch size — each
	// owns one scratch pool at a time and claims chunks off an atomic
	// cursor, so memory is bounded by workers × one chunk's scratch.
	numChunks := (len(inputs) + chunk - 1) / chunk
	if workers > numChunks {
		workers = numChunks
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				c := int(next.Add(1)) - 1
				if c >= numChunks {
					return
				}
				lo := c * chunk
				hi := lo + chunk
				if hi > len(inputs) {
					hi = len(inputs)
				}
				m.watchChunk(net, inputs[lo:hi], out[lo:hi], e)
			}
		}()
	}
	wg.Wait()
	return out
}

// WatchBatchPooled serves one whole batch through a single ForwardBatch
// pass on the calling goroutine, drawing every intermediate from the
// caller's scratch pool. This is the entry point for serving lanes that
// own a long-lived pool (internal/serve): the lane's buffers stay warm
// across micro-batches, and lane-level parallelism replaces WatchBatch's
// own worker split. Each call re-resolves and pins the serving epoch, so
// a lane picks up published online updates at micro-batch granularity and
// never mixes generations within one batch. The monitor is frozen on
// first use; pool must not be shared between concurrent callers. A nil
// pool uses a throwaway one.
func (m *Monitor) WatchBatchPooled(net *nn.Network, inputs []*tensor.Tensor, pool *tensor.Pool) []Verdict {
	return m.WatchBatchPooledTimed(net, inputs, pool, nil)
}

// WatchBatchPooledTimed is WatchBatchPooled with a per-call stage-time
// split: when t is non-nil, the chunk's inference and zone-query wall
// times are accumulated into it, letting a serving lane feed per-stage
// latency histograms without a second clock read of its own. The
// monitor-global time counters (InferenceNanos, ZoneQueryNanos) advance
// either way.
func (m *Monitor) WatchBatchPooledTimed(net *nn.Network, inputs []*tensor.Tensor, pool *tensor.Pool, t *BatchTiming) []Verdict {
	if len(inputs) == 0 {
		return []Verdict{}
	}
	m.Freeze()
	e := m.acquire()
	defer e.unpin()
	out := make([]Verdict, len(inputs))
	m.watchChunkPooled(net, inputs, out, pool, e, t)
	return out
}

// watchChunk serves one chunk with a recycled scratch pool.
func (m *Monitor) watchChunk(net *nn.Network, inputs []*tensor.Tensor, out []Verdict, e *epoch) {
	pool := scratchPools.Get().(*tensor.Pool)
	m.watchChunkPooled(net, inputs, out, pool, e, nil)
	scratchPools.Put(pool)
}

// watchChunkPooled is the batched serving core: one ForwardBatchCapture
// pass over the chunk, per-row argmax and pattern extraction, then the
// zone membership queries grouped by predicted class — each class's
// compiled plan is consulted once per chunk (Zone.ContainsBatch →
// Compiled.EvalBatch), so the branch program stays hot in cache across
// all of the chunk's rows that hit it, against the caller's pinned epoch.
func (m *Monitor) watchChunkPooled(net *nn.Network, inputs []*tensor.Tensor, out []Verdict, pool *tensor.Pool, e *epoch, bt *BatchTiming) {
	tStart := time.Now()
	logits, acts := net.ForwardBatchCapture(inputs, m.cfg.Layer, pool)
	b := len(inputs)
	nc := logits.Len() / b
	width := acts.Len() / b
	ldata, adata := logits.Data(), acts.Data()
	for i := range inputs {
		row := ldata[i*nc : (i+1)*nc]
		pred := 0
		for j := 1; j < nc; j++ {
			if row[j] > row[pred] {
				pred = j
			}
		}
		p := PatternOfRow(adata[i*width:(i+1)*width], m.neurons)
		out[i] = Verdict{Class: pred, Pattern: p, Epoch: e.id}
	}
	if pool != nil {
		pool.Put(logits)
		if &acts.Data()[0] != &logits.Data()[0] {
			pool.Put(acts)
		}
	}
	tInfer := time.Now()
	// Group rows by predicted class: idx is row order stably sorted by
	// class (insertion sort — chunks are at most maxWatchChunk rows), so
	// each run of equal classes becomes one batched zone query.
	gs := groupScratches.Get().(*groupScratch)
	if cap(gs.idx) < b {
		gs.idx = make([]int, b)
		gs.res = make([]bool, b)
	}
	idx, res := gs.idx[:b], gs.res[:b]
	pats := gs.pats[:0]
	for i := range idx {
		idx[i] = i
	}
	for i := 1; i < b; i++ {
		j, c := i, idx[i]
		for j > 0 && out[idx[j-1]].Class > out[c].Class {
			idx[j] = idx[j-1]
			j--
		}
		idx[j] = c
	}
	for start := 0; start < b; {
		cls := out[idx[start]].Class
		end := start + 1
		for end < b && out[idx[end]].Class == cls {
			end++
		}
		z, ok := e.zones[cls]
		if !ok {
			m.unmonitored.Add(uint64(end - start))
			start = end // monitor abstains: Monitored stays false
			continue
		}
		pats = pats[:0]
		for j := start; j < end; j++ {
			pats = append(pats, out[idx[j]].Pattern)
		}
		z.ContainsBatch(pats, res[:end-start])
		oop := 0
		for j := start; j < end; j++ {
			out[idx[j]].Monitored = true
			if !res[j-start] {
				out[idx[j]].OutOfPattern = true
				oop++
			}
		}
		if wc := m.wc[cls]; wc != nil {
			wc.watched.Add(uint64(end - start))
			wc.oop.Add(uint64(oop))
		}
		start = end
	}
	zoneNs := time.Since(tInfer).Nanoseconds()
	infNs := tInfer.Sub(tStart).Nanoseconds()
	m.infNs.Add(infNs)
	m.zoneNs.Add(zoneNs)
	if bt != nil {
		bt.InferenceNs += infNs
		bt.ZoneQueryNs += zoneNs
	}
	// Drop the pattern references before pooling the scratch so a parked
	// buffer cannot pin a retired epoch's patterns. pats was re-sliced to
	// [:0] per class group, so clear the whole backing array, not just
	// the final group's window.
	clear(pats[:cap(pats)])
	gs.pats = pats[:0]
	groupScratches.Put(gs)
}

// WatchPattern checks a pre-extracted pattern against class c's zone at
// the current epoch. It reports (outOfPattern, monitored).
func (m *Monitor) WatchPattern(c int, p Pattern) (outOfPattern, monitored bool) {
	zones := m.zones
	if e := m.acquire(); e != nil {
		defer e.unpin()
		zones = e.zones
	}
	z, ok := zones[c]
	if !ok {
		m.countVerdict(c, false, false)
		return false, false
	}
	oop := !z.Contains(p)
	m.countVerdict(c, true, oop)
	return oop, true
}

// StorageNodes returns the total BDD node count across all zones at the
// current γ. On a frozen monitor the epoch is pinned for the whole walk,
// so polling it concurrently with online updates is safe.
func (m *Monitor) StorageNodes() int {
	zones := m.zones
	if e := m.acquire(); e != nil {
		defer e.unpin()
		zones = e.zones
	}
	total := 0
	for _, z := range zones {
		total += z.NodeCount()
	}
	return total
}
