package core

import (
	"testing"

	"napmon/internal/rng"
)

// TestWatchCounters pins the per-class verdict tallies: every
// WatchPattern call lands in exactly one of watched/unmonitored, OOP
// verdicts are counted per class, and totals agree with the per-class
// sums.
func TestWatchCounters(t *testing.T) {
	r := rng.New(91)
	const width = 12
	perClass := map[int][]Pattern{
		0: randomPatterns(r, 8, width),
		2: randomPatterns(r, 5, width),
	}
	mon, err := BuildFromPatterns(width, 0, perClass)
	if err != nil {
		t.Fatal(err)
	}
	mon.Freeze()
	if cs := mon.WatchClasses(); len(cs) != 2 || cs[0] != 0 || cs[1] != 2 {
		t.Fatalf("WatchClasses = %v", cs)
	}
	wantWatched, wantOOP := map[int]uint64{}, map[int]uint64{}
	var wantUnmon uint64
	// Known-in patterns, random patterns and an unmonitored class.
	for c, pats := range perClass {
		for _, p := range pats {
			oop, monitored := mon.WatchPattern(c, p)
			if !monitored || oop {
				t.Fatalf("class %d visited pattern: oop=%v monitored=%v", c, oop, monitored)
			}
			wantWatched[c]++
		}
	}
	for i := 0; i < 20; i++ {
		p := randomPatterns(r, 1, width)[0]
		for _, c := range []int{0, 2} {
			oop, _ := mon.WatchPattern(c, p)
			wantWatched[c]++
			if oop {
				wantOOP[c]++
			}
		}
		if _, monitored := mon.WatchPattern(7, p); monitored {
			t.Fatal("class 7 should be unmonitored")
		}
		wantUnmon++
	}
	counts := mon.WatchCounts()
	for c := range perClass {
		got := counts[c]
		if got.Watched != wantWatched[c] || got.OutOfPattern != wantOOP[c] {
			t.Fatalf("class %d counts = %+v, want watched=%d oop=%d",
				c, got, wantWatched[c], wantOOP[c])
		}
		if got != mon.WatchCountsFor(c) {
			t.Fatalf("WatchCountsFor(%d) = %+v disagrees with WatchCounts", c, mon.WatchCountsFor(c))
		}
	}
	watched, oop, unmon := mon.WatchTotals()
	if watched != wantWatched[0]+wantWatched[2] || oop != wantOOP[0]+wantOOP[2] || unmon != wantUnmon {
		t.Fatalf("WatchTotals = (%d, %d, %d), want (%d, %d, %d)",
			watched, oop, unmon, wantWatched[0]+wantWatched[2], wantOOP[0]+wantOOP[2], wantUnmon)
	}
}

// TestSwapNanos checks that epoch publications record their wall time
// and no-op updates do not.
func TestSwapNanos(t *testing.T) {
	r := rng.New(17)
	const width = 10
	mon, err := BuildFromPatterns(width, 1, map[int][]Pattern{0: randomPatterns(r, 4, width)})
	if err != nil {
		t.Fatal(err)
	}
	mon.Freeze()
	u := mon.Updater()
	if total, last := u.SwapNanos(); total != 0 || last != 0 {
		t.Fatalf("pre-update SwapNanos = (%d, %d)", total, last)
	}
	if _, err := mon.Update(0, randomPatterns(r, 2, width)...); err != nil {
		t.Fatal(err)
	}
	total1, last1 := u.SwapNanos()
	if total1 <= 0 || last1 <= 0 || last1 > total1 {
		t.Fatalf("after one update SwapNanos = (%d, %d)", total1, last1)
	}
	if _, err := mon.UpdateBatch(nil); err != nil { // empty delta: no publication
		t.Fatal(err)
	}
	if total, _ := u.SwapNanos(); total != total1 {
		t.Fatalf("empty delta recorded a swap: %d != %d", total, total1)
	}
	if _, err := mon.UpdateGamma(2); err != nil {
		t.Fatal(err)
	}
	total2, _ := u.SwapNanos()
	if total2 <= total1 {
		t.Fatalf("UpdateGamma did not record a swap: %d <= %d", total2, total1)
	}
}

// TestManagerStatsTotal checks the summed BDD statistics accessor
// against the per-zone managers.
func TestManagerStatsTotal(t *testing.T) {
	r := rng.New(5)
	const width = 10
	perClass := map[int][]Pattern{
		1: randomPatterns(r, 6, width),
		4: randomPatterns(r, 3, width),
	}
	mon, err := BuildFromPatterns(width, 1, perClass)
	if err != nil {
		t.Fatal(err)
	}
	mon.Freeze()
	wantNodes := 0
	for _, c := range mon.Classes() {
		wantNodes += mon.Zone(c).Manager().Stats().Nodes
	}
	st := mon.ManagerStatsTotal()
	if st.Nodes != wantNodes {
		t.Fatalf("ManagerStatsTotal.Nodes = %d, want %d", st.Nodes, wantNodes)
	}
	if !st.Frozen {
		t.Fatal("ManagerStatsTotal.Frozen = false on frozen monitor")
	}
	if st.UniqueCap == 0 || st.CacheCap == 0 {
		t.Fatalf("capacities not summed: %+v", st)
	}
}
