package core

import (
	"bytes"
	"testing"
	"testing/quick"

	"napmon/internal/nn"
	"napmon/internal/rng"
	"napmon/internal/tensor"
)

func TestPatternOf(t *testing.T) {
	acts := tensor.FromSlice([]float64{-1, 0, 0.001, 7}, 4)
	p := PatternOf(acts)
	want := Pattern{false, false, true, true}
	for i := range want {
		if p[i] != want[i] {
			t.Fatalf("PatternOf = %v, want %v", p, want)
		}
	}
}

func TestPatternOfSubset(t *testing.T) {
	acts := tensor.FromSlice([]float64{-1, 2, -3, 4, 5}, 5)
	p := PatternOfSubset(acts, []int{1, 2, 4})
	want := Pattern{true, false, true}
	for i := range want {
		if p[i] != want[i] {
			t.Fatalf("PatternOfSubset = %v, want %v", p, want)
		}
	}
}

func TestPatternOfSubsetPanicsOutOfRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	PatternOfSubset(tensor.FromSlice([]float64{1}, 1), []int{1})
}

func TestHamming(t *testing.T) {
	a := Pattern{true, false, true, false}
	b := Pattern{true, true, false, false}
	if d := Hamming(a, b); d != 2 {
		t.Fatalf("Hamming = %d, want 2", d)
	}
	if d := Hamming(a, a); d != 0 {
		t.Fatalf("Hamming(a,a) = %d, want 0", d)
	}
}

func TestPatternStringAndKey(t *testing.T) {
	p := Pattern{true, false, true}
	if p.String() != "101" {
		t.Fatalf("String = %q", p.String())
	}
	q := Pattern{true, false, true, false}
	if p.Key() == q.Key() {
		t.Fatal("keys of different-length patterns collide")
	}
	if p.Key() != p.Clone().Key() {
		t.Fatal("key not deterministic")
	}
}

func randPattern(r *rng.Source, w int) Pattern {
	p := make(Pattern, w)
	for i := range p {
		p[i] = r.Bool(0.5)
	}
	return p
}

func TestZoneInsertContains(t *testing.T) {
	z := NewZone(8)
	r := rng.New(1)
	var inserted []Pattern
	for i := 0; i < 20; i++ {
		p := randPattern(r, 8)
		z.Insert(p)
		inserted = append(inserted, p)
	}
	for _, p := range inserted {
		if !z.Contains(p) {
			t.Fatal("zone missing inserted pattern at gamma=0")
		}
	}
	if z.InsertCount() != 20 {
		t.Fatalf("InsertCount = %d", z.InsertCount())
	}
}

func TestZoneGammaMonotone(t *testing.T) {
	// Z⁰ ⊆ Z¹ ⊆ Z² — enlargement never removes patterns.
	r := rng.New(2)
	z := NewZone(10)
	for i := 0; i < 10; i++ {
		z.Insert(randPattern(r, 10))
	}
	prev := -1.0
	for g := 0; g <= 3; g++ {
		z.SetGamma(g)
		count := z.PatternCount()
		if count < prev {
			t.Fatalf("zone shrank when enlarging: %v -> %v at gamma %d", prev, count, g)
		}
		prev = count
	}
}

func TestZoneContainsAtDoesNotChangeGamma(t *testing.T) {
	z := NewZone(4)
	z.Insert(Pattern{true, false, false, false})
	z.SetGamma(0)
	p := Pattern{true, true, false, false} // distance 1
	if z.Contains(p) {
		t.Fatal("gamma 0 zone contains distance-1 pattern")
	}
	if !z.ContainsAt(1, p) {
		t.Fatal("ContainsAt(1) missed distance-1 pattern")
	}
	if z.Gamma() != 0 {
		t.Fatal("ContainsAt changed gamma")
	}
	if z.Contains(p) {
		t.Fatal("gamma changed by ContainsAt")
	}
}

func TestZoneInsertAfterExpandRecomputes(t *testing.T) {
	z := NewZone(5)
	z.Insert(Pattern{true, true, true, true, true})
	z.SetGamma(1)
	// Inserting a new pattern must refresh the enlarged level too.
	q := Pattern{false, false, false, false, false}
	z.Insert(q)
	near := Pattern{true, false, false, false, false} // distance 1 from q
	if !z.Contains(near) {
		t.Fatal("enlargement stale after Insert")
	}
}

func TestZonePatternCountGamma0(t *testing.T) {
	z := NewZone(6)
	seen := map[string]bool{}
	r := rng.New(3)
	for i := 0; i < 30; i++ {
		p := randPattern(r, 6)
		seen[p.Key()] = true
		z.Insert(p)
	}
	if got := z.PatternCount(); got != float64(len(seen)) {
		t.Fatalf("PatternCount = %v, want %d distinct", got, len(seen))
	}
}

// Property: the BDD zone and the exact reference zone agree on membership
// for all γ and random pattern sets — Algorithm 1's enlargement is exactly
// the Hamming ball.
func TestZoneMatchesExactZoneProperty(t *testing.T) {
	check := func(seed uint32, gammaRaw uint8) bool {
		gamma := int(gammaRaw % 4)
		const w = 9
		r := rng.New(uint64(seed))
		z := NewZone(w)
		e := NewExactZone(w)
		for i := 0; i < 1+r.Intn(8); i++ {
			p := randPattern(r, w)
			z.Insert(p)
			e.Insert(p)
		}
		z.SetGamma(gamma)
		e.SetGamma(gamma)
		for i := 0; i < 200; i++ {
			p := randPattern(r, w)
			if z.Contains(p) != e.Contains(p) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestExactZoneHammingThreshold(t *testing.T) {
	e := NewExactZone(6)
	p := Pattern{true, true, true, false, false, false}
	e.Insert(p)
	q := p.Clone()
	q[0] = false
	q[3] = true // distance 2
	for g := 0; g < 4; g++ {
		e.SetGamma(g)
		if got, want := e.Contains(q), g >= 2; got != want {
			t.Fatalf("gamma %d: Contains = %v, want %v", g, got, want)
		}
	}
}

// trainedToyNet builds and trains a small fully-connected classifier on
// three Gaussian blobs; monitor tests run against it. Returns the network,
// the monitored layer index (a ReLU layer), and train/validation sets.
func trainedToyNet(t testing.TB, seed uint64) (*nn.Network, int, []nn.Sample, []nn.Sample) {
	t.Helper()
	r := rng.New(seed)
	centers := [][4]float64{
		{2, 0, -2, 0},
		{-2, 2, 0, -1},
		{0, -2, 2, 1},
	}
	gen := func(n int, noise float64) []nn.Sample {
		var out []nn.Sample
		for i := 0; i < n; i++ {
			label := i % len(centers)
			x := tensor.New(4)
			for j := range x.Data() {
				x.Data()[j] = r.NormScaled(centers[label][j], noise)
			}
			out = append(out, nn.Sample{Input: x, Label: label})
		}
		return out
	}
	train := gen(300, 0.6)
	val := gen(150, 0.6)
	net := nn.New(
		nn.NewDense(4, 16, r), nn.NewReLU(),
		nn.NewDense(16, 10, r), nn.NewReLU(), // monitored layer: index 3
		nn.NewDense(10, 3, r),
	)
	nn.Train(net, train, nn.TrainConfig{Epochs: 15, BatchSize: 16, LR: 0.05, Seed: seed})
	if acc := nn.Accuracy(net, train); acc < 0.9 {
		t.Fatalf("toy network underfit: accuracy %v", acc)
	}
	return net, 3, train, val
}

func TestBuildSoundness(t *testing.T) {
	// The paper's "sure guarantee": every correctly classified training
	// sample's pattern must be inside its class zone at every γ.
	net, layer, train, _ := trainedToyNet(t, 1)
	mon, err := Build(net, train, Config{Layer: layer, Gamma: 0})
	if err != nil {
		t.Fatal(err)
	}
	for g := 0; g <= 2; g++ {
		mon.SetGamma(g)
		for _, s := range train {
			v := mon.Watch(net, s.Input)
			if v.Class != s.Label {
				continue // misclassified samples are not recorded
			}
			if !v.Monitored {
				t.Fatal("monitored class reported unmonitored")
			}
			if v.OutOfPattern {
				t.Fatalf("gamma %d: correctly classified training sample flagged out-of-pattern", g)
			}
		}
	}
}

func TestBuildSkipsMisclassified(t *testing.T) {
	// A network that misclassifies everything must produce empty zones.
	r := rng.New(7)
	net := nn.New(nn.NewDense(2, 4, r), nn.NewReLU(), nn.NewDense(4, 2, r))
	x := tensor.FromSlice([]float64{1, 1}, 2)
	pred := net.Predict(x)
	wrong := 1 - pred
	mon, err := Build(net, []nn.Sample{{Input: x, Label: wrong}}, Config{Layer: 1, Gamma: 0})
	if err != nil {
		t.Fatal(err)
	}
	if got := mon.Zone(wrong).InsertCount(); got != 0 {
		t.Fatalf("misclassified sample recorded: %d inserts", got)
	}
	if mon.Zone(pred).InsertCount() != 0 {
		t.Fatal("pattern recorded under predicted class despite wrong label")
	}
}

func TestBuildValidatesConfig(t *testing.T) {
	net, layer, train, _ := trainedToyNet(t, 2)
	cases := []Config{
		{Layer: -1},
		{Layer: 99},
		{Layer: layer, Gamma: -1},
		{Layer: layer, Classes: []int{5}},
		{Layer: layer, Classes: []int{0, 0}},
		{Layer: layer, Neurons: []int{}},
		{Layer: layer, Neurons: []int{3, 1}},
		{Layer: layer, Neurons: []int{1, 1}},
		{Layer: layer, Neurons: []int{99}},
	}
	for i, cfg := range cases {
		if _, err := Build(net, train[:10], cfg); err == nil {
			t.Fatalf("case %d: config %+v accepted", i, cfg)
		}
	}
}

func TestMonitorSubsetOfClasses(t *testing.T) {
	net, layer, train, val := trainedToyNet(t, 3)
	mon, err := Build(net, train, Config{Layer: layer, Gamma: 0, Classes: []int{1}})
	if err != nil {
		t.Fatal(err)
	}
	if got := mon.Classes(); len(got) != 1 || got[0] != 1 {
		t.Fatalf("Classes = %v", got)
	}
	sawUnmonitored := false
	for _, s := range val {
		v := mon.Watch(net, s.Input)
		if v.Class != 1 && v.Monitored {
			t.Fatal("unmonitored class watched")
		}
		if v.Class != 1 {
			sawUnmonitored = true
		}
	}
	if !sawUnmonitored {
		t.Skip("validation set never predicted an unmonitored class")
	}
	m := Evaluate(net, mon, val)
	if m.Watched >= m.Total {
		t.Fatalf("Watched %d should be < Total %d for single-class monitor", m.Watched, m.Total)
	}
}

func TestMonitorNeuronSubset(t *testing.T) {
	net, layer, train, val := trainedToyNet(t, 4)
	neurons := []int{0, 2, 5, 7}
	mon, err := Build(net, train, Config{Layer: layer, Gamma: 0, Neurons: neurons})
	if err != nil {
		t.Fatal(err)
	}
	if mon.Zone(0).Width() != len(neurons) {
		t.Fatalf("zone width = %d, want %d", mon.Zone(0).Width(), len(neurons))
	}
	v := mon.Watch(net, val[0].Input)
	if len(v.Pattern) != len(neurons) {
		t.Fatalf("verdict pattern width = %d", len(v.Pattern))
	}
	// Soundness still holds on the projected patterns.
	for _, s := range train[:100] {
		v := mon.Watch(net, s.Input)
		if v.Class == s.Label && v.OutOfPattern {
			t.Fatal("projected monitor unsound")
		}
	}
}

func TestGammaSweepMonotoneOutOfPattern(t *testing.T) {
	// Enlarging the abstraction can only reduce out-of-pattern reports —
	// the mechanism behind Figure 2's coarseness dial and Table II's
	// decreasing column 4.
	net, layer, train, val := trainedToyNet(t, 5)
	mon, err := Build(net, train, Config{Layer: layer, Gamma: 0})
	if err != nil {
		t.Fatal(err)
	}
	sweep := GammaSweep(net, mon, val, []int{0, 1, 2, 3})
	for i := 1; i < len(sweep); i++ {
		if sweep[i].OutOfPattern > sweep[i-1].OutOfPattern {
			t.Fatalf("out-of-pattern count increased with gamma: %+v", sweep)
		}
	}
	// At gamma = width the zone covers everything reachable by flipping
	// all monitored bits: nothing can be out of pattern.
	mon.SetGamma(mon.Zone(0).Width())
	full := Evaluate(net, mon, val)
	if full.OutOfPattern != 0 {
		t.Fatalf("gamma=width still flags %d samples", full.OutOfPattern)
	}
}

func TestMetricsRatios(t *testing.T) {
	m := Metrics{Total: 200, Misclassified: 10, Watched: 100, OutOfPattern: 20, OutOfPatternMisclassified: 5}
	if m.MisclassificationRate() != 0.05 {
		t.Fatal("misclassification rate wrong")
	}
	if m.OutOfPatternRate() != 0.2 {
		t.Fatal("out-of-pattern rate wrong")
	}
	if m.OutOfPatternPrecision() != 0.25 {
		t.Fatal("precision wrong")
	}
	var zero Metrics
	if zero.MisclassificationRate() != 0 || zero.OutOfPatternRate() != 0 || zero.OutOfPatternPrecision() != 0 {
		t.Fatal("zero metrics must not divide by zero")
	}
}

func TestEvaluateConsistentWithWatch(t *testing.T) {
	net, layer, train, val := trainedToyNet(t, 6)
	mon, err := Build(net, train, Config{Layer: layer, Gamma: 1})
	if err != nil {
		t.Fatal(err)
	}
	want := Metrics{Total: len(val)}
	for _, s := range val {
		v := mon.Watch(net, s.Input)
		mis := v.Class != s.Label
		if mis {
			want.Misclassified++
		}
		if v.Monitored {
			want.Watched++
			if v.OutOfPattern {
				want.OutOfPattern++
				if mis {
					want.OutOfPatternMisclassified++
				}
			}
		}
	}
	if got := Evaluate(net, mon, val); got != want {
		t.Fatalf("Evaluate = %+v, want %+v", got, want)
	}
}

func TestWatchPattern(t *testing.T) {
	net, layer, train, _ := trainedToyNet(t, 7)
	mon, err := Build(net, train, Config{Layer: layer, Gamma: 0, Classes: []int{0}})
	if err != nil {
		t.Fatal(err)
	}
	p := make(Pattern, mon.Zone(0).Width())
	_, monitored := mon.WatchPattern(2, p)
	if monitored {
		t.Fatal("unmonitored class reported monitored")
	}
	if _, monitored := mon.WatchPattern(0, p); !monitored {
		t.Fatal("monitored class reported unmonitored")
	}
}

func TestSelectNeuronsByWeight(t *testing.T) {
	r := rng.New(8)
	out := nn.NewDense(6, 3, r)
	w := out.Weights()
	// Craft class-1 weights with known magnitude order.
	for i := 0; i < 6; i++ {
		w.Set(float64(i)-2.5, 1, i) // |w| = 2.5, 1.5, 0.5, 0.5, 1.5, 2.5
	}
	got, err := SelectNeuronsByWeight(out, 1, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	// |w| values: idx0=2.5 idx1=1.5 idx2=0.5 idx3=0.5 idx4=1.5 idx5=2.5.
	// ceil(0.5*6)=3 highest with stable tie-break toward lower index:
	// {0, 5, 1}, returned sorted ascending.
	want := []int{0, 1, 5}
	if len(got) != len(want) {
		t.Fatalf("SelectNeuronsByWeight = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("SelectNeuronsByWeight = %v, want %v", got, want)
		}
	}
}

func TestSelectNeuronsByWeightRejectsBadArgs(t *testing.T) {
	out := nn.NewDense(4, 2, rng.New(9))
	if _, err := SelectNeuronsByWeight(out, 5, 0.5); err == nil {
		t.Fatal("bad class accepted")
	}
	if _, err := SelectNeuronsByWeight(out, 0, 0); err == nil {
		t.Fatal("zero fraction accepted")
	}
	if _, err := SelectNeuronsByWeight(out, 0, 1.5); err == nil {
		t.Fatal("fraction > 1 accepted")
	}
}

func TestGradientSelectionMatchesWeightsInSpecialCase(t *testing.T) {
	// When the monitored ReLU layer feeds the linear output directly, the
	// gradient of logit c at the monitored layer equals the weight row, so
	// both selection methods must agree (the paper's observation).
	net, layer, train, _ := trainedToyNet(t, 10)
	out := net.Layer(net.NumLayers() - 1).(*nn.Dense)
	const class = 1
	var classSamples []nn.Sample
	for _, s := range train {
		if s.Label == class {
			classSamples = append(classSamples, s)
		}
	}
	byGrad, err := SelectNeuronsForClass(net, classSamples[:10], layer, class, 0.4)
	if err != nil {
		t.Fatal(err)
	}
	byWeight, err := SelectNeuronsByWeight(out, class, 0.4)
	if err != nil {
		t.Fatal(err)
	}
	if len(byGrad) != len(byWeight) {
		t.Fatalf("selection sizes differ: %v vs %v", byGrad, byWeight)
	}
	for i := range byGrad {
		if byGrad[i] != byWeight[i] {
			t.Fatalf("gradient selection %v != weight selection %v", byGrad, byWeight)
		}
	}
}

func TestSelectNeuronsMultiClass(t *testing.T) {
	net, layer, train, _ := trainedToyNet(t, 11)
	sel, err := SelectNeurons(net, train[:30], layer, 0.25)
	if err != nil {
		t.Fatal(err)
	}
	if len(sel) != 3 { // ceil(0.25 * 10)
		t.Fatalf("selected %d neurons, want 3", len(sel))
	}
	for i := 1; i < len(sel); i++ {
		if sel[i] <= sel[i-1] {
			t.Fatal("selection not sorted ascending")
		}
	}
}

func TestSelectNeuronsEmptySamples(t *testing.T) {
	net, layer, _, _ := trainedToyNet(t, 12)
	if _, err := SelectNeurons(net, nil, layer, 0.5); err == nil {
		t.Fatal("empty sample set accepted")
	}
	if _, err := SelectNeuronsForClass(net, nil, layer, 0, 0.5); err == nil {
		t.Fatal("empty sample set accepted")
	}
}

func TestMonitorSaveLoadRoundTrip(t *testing.T) {
	net, layer, train, val := trainedToyNet(t, 13)
	mon, err := Build(net, train, Config{Layer: layer, Gamma: 2, Neurons: []int{0, 1, 2, 3, 4, 5}})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := mon.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Gamma() != 2 || loaded.LayerWidth() != mon.LayerWidth() {
		t.Fatal("monitor metadata lost in round trip")
	}
	for _, s := range val {
		a := mon.Watch(net, s.Input)
		b := loaded.Watch(net, s.Input)
		if a.OutOfPattern != b.OutOfPattern || a.Monitored != b.Monitored || a.Class != b.Class {
			t.Fatal("verdicts differ after round trip")
		}
	}
	// Metrics must be identical too.
	if a, b := Evaluate(net, mon, val), Evaluate(net, loaded, val); a != b {
		t.Fatalf("metrics differ after round trip: %+v vs %+v", a, b)
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	if _, err := Load(bytes.NewReader([]byte("junk\n"))); err == nil {
		t.Fatal("expected error")
	}
}

func TestInferGammaStopsOnPrecision(t *testing.T) {
	net, layer, train, val := trainedToyNet(t, 14)
	mon, err := Build(net, train, Config{Layer: layer, Gamma: 0})
	if err != nil {
		t.Fatal(err)
	}
	g, history := InferGamma(net, mon, val, 0.0, -1, 5)
	// With minPrecision 0 the very first level satisfies the criterion.
	if g != 0 || len(history) != 1 {
		t.Fatalf("InferGamma = %d with %d levels, want 0 with 1", g, len(history))
	}
	if mon.Gamma() != 0 {
		t.Fatal("monitor gamma not left at chosen level")
	}
}

func TestInferGammaCaps(t *testing.T) {
	net, layer, train, val := trainedToyNet(t, 15)
	mon, err := Build(net, train, Config{Layer: layer, Gamma: 0})
	if err != nil {
		t.Fatal(err)
	}
	g, history := InferGamma(net, mon, val, 2.0, -1, 3) // impossible precision
	if g != 3 {
		t.Fatalf("InferGamma = %d, want cap 3", g)
	}
	if len(history) != 4 {
		t.Fatalf("history has %d levels, want 4", len(history))
	}
}

func TestStorageNodesPositive(t *testing.T) {
	net, layer, train, _ := trainedToyNet(t, 16)
	mon, err := Build(net, train, Config{Layer: layer, Gamma: 0})
	if err != nil {
		t.Fatal(err)
	}
	if mon.StorageNodes() <= 0 {
		t.Fatal("expected non-empty zones")
	}
}

func BenchmarkWatch(b *testing.B) {
	net, layer, train, val := trainedToyNet(b, 17)
	mon, err := Build(net, train, Config{Layer: layer, Gamma: 2})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		mon.Watch(net, val[i%len(val)].Input)
	}
}

func BenchmarkBuildMonitor(b *testing.B) {
	net, layer, train, _ := trainedToyNet(b, 18)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Build(net, train, Config{Layer: layer, Gamma: 2}); err != nil {
			b.Fatal(err)
		}
	}
}
