package core

// Tests of the epoch-swap online-update subsystem: the updater-vs-union
// equivalence property, epoch pinning under concurrent update+serve load,
// grace-period release of retired managers, and the frozen-SetGamma /
// UpdateGamma semantics.

import (
	"bytes"
	"sync"
	"testing"

	"napmon/internal/rng"
	"napmon/internal/tensor"
)

// randomPatterns draws n distinct-ish random patterns of the given width.
func randomPatterns(r *rng.Source, n, width int) []Pattern {
	out := make([]Pattern, n)
	for i := range out {
		p := make(Pattern, width)
		for j := range p {
			p[j] = r.Bool(0.5)
		}
		out[i] = p
	}
	return out
}

// flipOne returns a copy of p with bit i flipped.
func flipOne(p Pattern, i int) Pattern {
	q := p.Clone()
	q[i] = !q[i]
	return q
}

// TestZoneCloneWithDeltaEquivalence is the zone-level half of the
// updater's correctness property: for random pattern sets split into a
// build half and an update half, the shadow-built successor zone must
// answer Contains/Hamming-γ queries identically to a zone built from the
// union in one shot, at every cached enlargement level. This is the
// distributivity argument (expansion distributes over union) checked
// exhaustively on real BDDs.
func TestZoneCloneWithDeltaEquivalence(t *testing.T) {
	r := rng.New(41)
	for trial := 0; trial < 25; trial++ {
		width := 6 + int(r.Uint64()%8) // 6..13 neurons
		gamma := int(r.Uint64() % 4)   // cached levels 0..3
		nA := 1 + int(r.Uint64()%12)   // build half
		nB := 1 + int(r.Uint64()%12)   // update half
		a := randomPatterns(r, nA, width)
		b := randomPatterns(r, nB, width)

		frozen := NewZone(width)
		for _, p := range a {
			frozen.Insert(p)
		}
		if err := frozen.SetGamma(gamma); err != nil {
			t.Fatal(err)
		}
		frozen.Freeze()
		updated := frozen.cloneWithDelta(b)
		updated.Freeze()

		union := NewZone(width)
		for _, p := range append(append([]Pattern{}, a...), b...) {
			union.Insert(p)
		}
		if err := union.SetGamma(gamma); err != nil {
			t.Fatal(err)
		}

		if got, want := updated.InsertCount(), union.InsertCount(); got != want {
			t.Fatalf("trial %d: updated InsertCount %d, union %d", trial, got, want)
		}
		// Query set: both halves, their 1-bit neighbors, and random probes.
		queries := append(append([]Pattern{}, a...), b...)
		for _, p := range [][]Pattern{a, b} {
			for _, q := range p {
				queries = append(queries, flipOne(q, int(r.Uint64()%uint64(width))))
			}
		}
		queries = append(queries, randomPatterns(r, 40, width)...)
		for g := 0; g <= gamma; g++ {
			for qi, q := range queries {
				if got, want := updated.ContainsAt(g, q), union.ContainsAt(g, q); got != want {
					t.Fatalf("trial %d width=%d gamma=%d/%d query %d: updated=%v union=%v",
						trial, width, g, gamma, qi, got, want)
				}
			}
		}
	}
}

// TestMonitorUpdateEquivalence is the monitor-level property pinned by
// the issue: build from half the training set, absorb the other half
// through UpdateBatch, and the swapped monitor must answer exactly like a
// monitor built from the union in one shot — for every γ and every
// validation input.
func TestMonitorUpdateEquivalence(t *testing.T) {
	net, layer, train, val := trainedToyNet(t, 31)
	const gamma = 2
	half := len(train) / 2

	full, err := Build(net, train, Config{Layer: layer, Gamma: gamma})
	if err != nil {
		t.Fatal(err)
	}
	part, err := Build(net, train[:half], Config{Layer: layer, Gamma: gamma})
	if err != nil {
		t.Fatal(err)
	}
	part.Freeze()
	// Absorb the withheld half exactly as Build would have recorded it:
	// correctly classified samples only, keyed by ground-truth class.
	delta := make(map[int][]Pattern)
	for _, s := range train[half:] {
		v := part.Watch(net, s.Input)
		if v.Class != s.Label {
			continue
		}
		delta[s.Label] = append(delta[s.Label], v.Pattern)
	}
	if id, err := part.UpdateBatch(delta); err != nil || id != 2 {
		t.Fatalf("UpdateBatch = (%d, %v), want epoch 2", id, err)
	}

	inputs := make([]*tensor.Tensor, len(val))
	for i, s := range val {
		inputs[i] = s.Input
	}
	full.Freeze()
	for g := 0; g <= gamma; g++ {
		if _, err := part.UpdateGamma(g); err != nil {
			t.Fatal(err)
		}
		if _, err := full.UpdateGamma(g); err != nil {
			t.Fatal(err)
		}
		want := full.WatchBatch(net, inputs)
		got := part.WatchBatch(net, inputs)
		for i := range want {
			if got[i].Class != want[i].Class || got[i].OutOfPattern != want[i].OutOfPattern ||
				got[i].Monitored != want[i].Monitored {
				t.Fatalf("gamma %d verdict %d: updated %+v, one-shot %+v", g, i, got[i], want[i])
			}
		}
	}
	// The zones must agree exactly, not just on the validation inputs:
	// same pattern count and node count per class at the final γ.
	for _, c := range full.Classes() {
		zf, zp := full.Zone(c), part.Zone(c)
		if zf.PatternCount() != zp.PatternCount() {
			t.Fatalf("class %d: pattern count %v (one-shot) vs %v (updated)",
				c, zf.PatternCount(), zp.PatternCount())
		}
	}
}

// TestEpochSwapConsistency is the concurrency regression test of the
// issue: hammer Update and WatchBatch simultaneously for many epochs
// (run under -race in CI) and assert that no batch ever mixes results
// from two epochs, and that every reader observes epoch ids
// monotonically non-decreasing.
func TestEpochSwapConsistency(t *testing.T) {
	net, layer, train, val := trainedToyNet(t, 32)
	mon, err := Build(net, train, Config{Layer: layer, Gamma: 1})
	if err != nil {
		t.Fatal(err)
	}
	mon.Freeze()
	inputs := make([]*tensor.Tensor, 0, 48)
	for _, s := range val[:48] {
		inputs = append(inputs, s.Input)
	}
	width := len(mon.Neurons())
	classes := mon.Classes()

	const epochs = 30
	const readers = 4
	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() { // updater: one small delta per epoch
		defer wg.Done()
		defer close(stop)
		r := rng.New(99)
		for i := 0; i < epochs; i++ {
			c := classes[int(r.Uint64()%uint64(len(classes)))]
			if _, err := mon.Update(c, randomPatterns(r, 2, width)...); err != nil {
				t.Errorf("update %d: %v", i, err)
				return
			}
		}
	}()
	for g := 0; g < readers; g++ {
		wg.Add(1)
		go func(seed uint64) {
			defer wg.Done()
			last := uint64(0)
			for done := false; !done; {
				select {
				case <-stop:
					done = true // one final pass after the last update
				default:
				}
				verdicts := mon.WatchBatch(net, inputs)
				e := verdicts[0].Epoch
				for i, v := range verdicts {
					if v.Epoch != e {
						t.Errorf("batch mixes epochs %d and %d (verdict %d)", e, v.Epoch, i)
						return
					}
				}
				if e < last {
					t.Errorf("epoch went backwards: %d after %d", e, last)
					return
				}
				last = e
			}
		}(uint64(g))
	}
	wg.Wait()
	if got := mon.Epoch(); got != 1+epochs {
		t.Fatalf("final epoch %d, want %d", got, 1+epochs)
	}
	if got := mon.Updater().Published(); got != epochs {
		t.Fatalf("published %d epochs, want %d", got, epochs)
	}
}

// TestEpochGracePeriod pins the retire protocol: a retired epoch's
// replaced managers are released only after its last pinned reader
// drains, and managers shared with the live epoch are never released.
func TestEpochGracePeriod(t *testing.T) {
	net, layer, train, _ := trainedToyNet(t, 33)
	mon, err := Build(net, train, Config{Layer: layer, Gamma: 1})
	if err != nil {
		t.Fatal(err)
	}
	mon.Freeze()
	classes := mon.Classes()
	touched, untouched := classes[0], classes[1]
	oldTouched := mon.Zone(touched).Manager()
	oldUntouched := mon.Zone(untouched).Manager()

	// Pin epoch 1 like a long-running batch would.
	e := mon.acquire()
	if e == nil || e.id != 1 {
		t.Fatalf("acquired epoch %+v", e)
	}
	p := make(Pattern, len(mon.Neurons()))
	if _, err := mon.Update(touched, p); err != nil {
		t.Fatal(err)
	}
	if got := mon.Updater().ReleasedEpochs(); got != 0 {
		t.Fatalf("epoch released while still pinned (released=%d)", got)
	}
	if oldTouched.Released() {
		t.Fatal("replaced manager released while its epoch was pinned")
	}
	// The pinned reader can still serve off the retired generation.
	_ = e.zones[touched].Contains(p)

	e.unpin()
	if got := mon.Updater().ReleasedEpochs(); got != 1 {
		t.Fatalf("retired epoch not released after drain (released=%d)", got)
	}
	if !oldTouched.Released() {
		t.Fatal("replaced manager not released after grace period")
	}
	if oldUntouched.Released() {
		t.Fatal("manager shared with the live epoch was released")
	}
	if mon.Zone(untouched).Manager() != oldUntouched {
		t.Fatal("untouched zone was not shared structurally")
	}
	// The live epoch still serves.
	if _, monitored := mon.WatchPattern(touched, p); !monitored {
		t.Fatal("live epoch lost the touched zone")
	}
}

// TestUpdateGammaManagerSharing pins the re-view optimization and the
// per-manager refcounts behind it: UpdateGamma to a level cached before
// the freeze shares the frozen managers across epochs (nothing copied,
// nothing retired), and a manager shared by a chain of epochs is released
// only when the last epoch referencing it drains.
func TestUpdateGammaManagerSharing(t *testing.T) {
	net, layer, train, _ := trainedToyNet(t, 34)
	mon, err := Build(net, train, Config{Layer: layer, Gamma: 2})
	if err != nil {
		t.Fatal(err)
	}
	mon.Freeze()
	c := mon.Classes()[0]
	orig := mon.Zone(c).Manager()

	// Pin epoch 1, then publish a re-view epoch 2 (gamma 1, cached):
	// shares every manager with epoch 1.
	e1 := mon.acquire()
	if _, err := mon.UpdateGamma(1); err != nil {
		t.Fatal(err)
	}
	if mon.Zone(c).Manager() != orig {
		t.Fatal("UpdateGamma to a cached level did not share the manager")
	}
	if got := mon.Gamma(); got != 1 {
		t.Fatalf("Gamma = %d after UpdateGamma(1)", got)
	}
	// Publish epoch 3 with fresh managers (an update clones the touched
	// zone; re-level the rest via a deeper gamma to force clones).
	if _, err := mon.UpdateGamma(4); err != nil {
		t.Fatal(err)
	}
	if mon.Zone(c).Manager() == orig {
		t.Fatal("UpdateGamma past the cached levels did not clone")
	}
	// Epoch 2 has drained (it was never pinned), but epoch 1 is still
	// pinned and shares orig — the chain refcount must keep it alive.
	if orig.Released() {
		t.Fatal("manager released while an older epoch still references it")
	}
	// The pinned epoch-1 reader can still query through orig.
	_ = e1.zones[c].Contains(make(Pattern, e1.zones[c].Width()))
	e1.unpin()
	if !orig.Released() {
		t.Fatal("manager not released after the last referencing epoch drained")
	}
	if got := mon.Updater().ReleasedEpochs(); got != 2 {
		t.Fatalf("released epochs = %d, want 2", got)
	}
	// Current epoch (4 levels of expansion) still serves fine.
	verdict := mon.Watch(net, train[0].Input)
	if verdict.Epoch != 3 {
		t.Fatalf("verdict epoch %d, want 3", verdict.Epoch)
	}
}

// TestUpdateValidation pins the updater's error contract: unmonitored
// classes and width-mismatched patterns are rejected without publishing,
// and an empty delta is a no-op returning the current epoch.
func TestUpdateValidation(t *testing.T) {
	net, layer, train, _ := trainedToyNet(t, 35)
	mon, err := Build(net, train, Config{Layer: layer, Gamma: 1, Classes: []int{0, 1}})
	if err != nil {
		t.Fatal(err)
	}
	mon.Freeze()
	w := len(mon.Neurons())
	if _, err := mon.Update(2, make(Pattern, w)); err == nil {
		t.Fatal("update for unmonitored class did not error")
	}
	if _, err := mon.Update(0, make(Pattern, w+1)); err == nil {
		t.Fatal("width-mismatched pattern did not error")
	}
	if id, err := mon.UpdateBatch(nil); err != nil || id != 1 {
		t.Fatalf("empty delta = (%d, %v), want no-op on epoch 1", id, err)
	}
	if id, err := mon.UpdateBatch(map[int][]Pattern{0: nil}); err != nil || id != 1 {
		t.Fatalf("empty class delta = (%d, %v), want no-op on epoch 1", id, err)
	}
	if got := mon.Epoch(); got != 1 {
		t.Fatalf("failed updates advanced the epoch to %d", got)
	}
	if got := mon.Updater().Absorbed(); got != 0 {
		t.Fatalf("failed updates absorbed %d patterns", got)
	}
}

// TestUpdateSoundness extends the paper's "sure guarantee" to the online
// path: after an update, every absorbed pattern is inside its class's
// zone at every γ, and everything that was in the zone before is still
// there (updates only grow zones).
func TestUpdateSoundness(t *testing.T) {
	r := rng.New(36)
	net, layer, train, _ := trainedToyNet(t, 36)
	mon, err := Build(net, train, Config{Layer: layer, Gamma: 2})
	if err != nil {
		t.Fatal(err)
	}
	mon.Freeze()
	w := len(mon.Neurons())
	c := mon.Classes()[0]
	before := randomPatterns(r, 32, w)
	inBefore := make([]bool, len(before))
	for i, p := range before {
		inBefore[i] = mon.Zone(c).Contains(p)
	}
	added := randomPatterns(r, 8, w)
	if _, err := mon.Update(c, added...); err != nil {
		t.Fatal(err)
	}
	z := mon.Zone(c)
	for g := 0; g <= 2; g++ {
		for i, p := range added {
			if !z.ContainsAt(g, p) {
				t.Fatalf("gamma %d: absorbed pattern %d not in zone", g, i)
			}
		}
	}
	for i, p := range before {
		if inBefore[i] && !z.Contains(p) {
			t.Fatalf("update shrank the zone (pattern %d fell out)", i)
		}
	}
}

// TestMonitorSaveLoadAfterUpdate checks that Save captures the updated
// generation: a monitor that absorbed patterns online round-trips through
// Save/Load with identical zone contents.
func TestMonitorSaveLoadAfterUpdate(t *testing.T) {
	r := rng.New(37)
	net, layer, train, val := trainedToyNet(t, 37)
	mon, err := Build(net, train, Config{Layer: layer, Gamma: 1})
	if err != nil {
		t.Fatal(err)
	}
	mon.Freeze()
	c := mon.Classes()[0]
	if _, err := mon.Update(c, randomPatterns(r, 5, len(mon.Neurons()))...); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := mon.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := loaded.Zone(c).InsertCount(), mon.Zone(c).InsertCount(); got != want {
		t.Fatalf("loaded InsertCount %d, want %d", got, want)
	}
	for _, s := range val[:40] {
		want := mon.Watch(net, s.Input)
		got := loaded.Watch(net, s.Input)
		if got.Class != want.Class || got.OutOfPattern != want.OutOfPattern {
			t.Fatalf("loaded monitor diverges: %+v vs %+v", got, want)
		}
	}
}

// TestUpdateCounters pins the updater's observability surface.
func TestUpdateCounters(t *testing.T) {
	net, layer, train, _ := trainedToyNet(t, 38)
	mon, err := Build(net, train, Config{Layer: layer, Gamma: 0})
	if err != nil {
		t.Fatal(err)
	}
	if got := mon.Epoch(); got != 0 {
		t.Fatalf("unfrozen monitor reports epoch %d", got)
	}
	mon.Freeze()
	if got := mon.Epoch(); got != 1 {
		t.Fatalf("freeze epoch id %d", got)
	}
	w := len(mon.Neurons())
	for i := 0; i < 3; i++ {
		if _, err := mon.Update(mon.Classes()[0], make(Pattern, w)); err != nil {
			t.Fatal(err)
		}
	}
	u := mon.Updater()
	if u.Published() != 3 || mon.Updates() != 3 {
		t.Fatalf("published %d / %d, want 3", u.Published(), mon.Updates())
	}
	if u.Absorbed() != 3 {
		t.Fatalf("absorbed %d, want 3", u.Absorbed())
	}
	if mon.Epoch() != 4 {
		t.Fatalf("epoch %d, want 4", mon.Epoch())
	}
}
