package core

import (
	"sync"
	"testing"

	"napmon/internal/nn"
	"napmon/internal/rng"
	"napmon/internal/tensor"
)

// TestWatchBatchMatchesWatch checks the batched front end returns exactly
// the serial verdicts, in input order.
func TestWatchBatchMatchesWatch(t *testing.T) {
	net, layer, train, val := trainedToyNet(t, 11)
	mon, err := Build(net, train, Config{Layer: layer, Gamma: 1})
	if err != nil {
		t.Fatal(err)
	}
	inputs := make([]*tensor.Tensor, len(val))
	want := make([]Verdict, len(val))
	for i, s := range val {
		inputs[i] = s.Input
		want[i] = mon.Watch(net, s.Input)
	}
	got := mon.WatchBatch(net, inputs)
	if !mon.Frozen() {
		t.Fatal("WatchBatch did not freeze the monitor")
	}
	if len(got) != len(want) {
		t.Fatalf("WatchBatch returned %d verdicts for %d inputs", len(got), len(want))
	}
	for i := range want {
		if got[i].Class != want[i].Class ||
			got[i].Monitored != want[i].Monitored ||
			got[i].OutOfPattern != want[i].OutOfPattern {
			t.Fatalf("verdict %d diverges: batch %+v, serial %+v", i, got[i], want[i])
		}
	}
}

// TestWatchBatchConcurrent is the read-only-after-build guard: many
// goroutines call WatchBatch against one frozen monitor simultaneously.
// Run under -race (the CI workflow does) this fails if any serving path
// still writes manager state.
func TestWatchBatchConcurrent(t *testing.T) {
	net, layer, train, val := trainedToyNet(t, 12)
	mon, err := Build(net, train, Config{Layer: layer, Gamma: 1})
	if err != nil {
		t.Fatal(err)
	}
	inputs := make([]*tensor.Tensor, len(val))
	for i, s := range val {
		inputs[i] = s.Input
	}
	want := mon.WatchBatch(net, inputs) // also freezes
	if !mon.Frozen() {
		t.Fatal("monitor not frozen after WatchBatch")
	}
	const goroutines = 8
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for rep := 0; rep < 3; rep++ {
				got := mon.WatchBatch(net, inputs)
				for i := range want {
					if got[i].Class != want[i].Class || got[i].OutOfPattern != want[i].OutOfPattern {
						t.Errorf("verdict %d unstable under concurrency", i)
						return
					}
				}
			}
		}()
	}
	wg.Wait()
}

// TestFrozenMonitorRejectsMutation checks the freeze-then-serve contract:
// after freezing, inserting into a zone panics and SetGamma errors instead
// of silently mutating shared serving state — changing γ on a live monitor
// goes through UpdateGamma, which publishes a new epoch.
func TestFrozenMonitorRejectsMutation(t *testing.T) {
	net, layer, train, _ := trainedToyNet(t, 13)
	mon, err := Build(net, train, Config{Layer: layer, Gamma: 2})
	if err != nil {
		t.Fatal(err)
	}
	mon.Freeze()
	mon.Freeze() // idempotent
	// The current level is not a change: explicitly allowed as a no-op.
	if err := mon.SetGamma(2); err != nil {
		t.Fatalf("SetGamma to the current level on a frozen monitor: %v", err)
	}
	// Any actual change must error — even to a level cached pre-freeze,
	// because flipping the query level in place races concurrent readers.
	if err := mon.SetGamma(1); err == nil {
		t.Fatal("SetGamma(1) on frozen monitor did not error")
	}
	if err := mon.SetGamma(3); err == nil {
		t.Fatal("SetGamma past the cached levels on frozen monitor did not error")
	}
	c := mon.Classes()[0]
	if err := mon.Zone(c).SetGamma(1); err == nil {
		t.Fatal("Zone.SetGamma change on frozen zone did not error")
	}
	// UpdateGamma is the sanctioned route: a cached level is an O(1)
	// re-view epoch, a deeper one is shadow-built.
	if id, err := mon.UpdateGamma(1); err != nil || id != 2 {
		t.Fatalf("UpdateGamma(1) = (%d, %v), want epoch 2", id, err)
	}
	if got := mon.Gamma(); got != 1 {
		t.Fatalf("Gamma after UpdateGamma(1) = %d", got)
	}
	if id, err := mon.UpdateGamma(3); err != nil || id != 3 {
		t.Fatalf("UpdateGamma(3) = (%d, %v), want epoch 3", id, err)
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("Insert did not panic on frozen zone")
			}
		}()
		mon.Zone(c).Insert(make(Pattern, len(mon.Neurons())))
	}()
}

// TestWatchBatchEmpty checks the degenerate batch: an empty input must
// yield an empty non-nil slice and — regression — must NOT freeze the
// monitor, so a build in progress can keep inserting patterns afterwards.
func TestWatchBatchEmpty(t *testing.T) {
	net, layer, train, _ := trainedToyNet(t, 14)
	mon, err := Build(net, train, Config{Layer: layer, Gamma: 0})
	if err != nil {
		t.Fatal(err)
	}
	got := mon.WatchBatch(net, nil)
	if got == nil {
		t.Fatal("empty batch returned a nil slice, want empty non-nil")
	}
	if len(got) != 0 {
		t.Fatalf("empty batch returned %d verdicts", len(got))
	}
	if mon.Frozen() {
		t.Fatal("empty WatchBatch froze the monitor")
	}
	// The monitor must still be buildable: insert one more pattern and
	// grow γ, both of which panic on a frozen zone.
	c := mon.Classes()[0]
	mon.Zone(c).Insert(make(Pattern, len(mon.Neurons())))
	mon.SetGamma(1)
}

// TestParallelMapSliceOrder pins the ordering contract WatchBatch relies
// on: results land at the index of their input.
func TestParallelMapSliceOrder(t *testing.T) {
	net := nn.New(nn.NewDense(2, 2, rng.New(1)))
	idx := make([]int, 100)
	for i := range idx {
		idx[i] = i
	}
	out := nn.ParallelMapSlice(net, idx, func(_ *nn.Network, i int) int { return i * 2 })
	for i, v := range out {
		if v != i*2 {
			t.Fatalf("out[%d] = %d, want %d", i, v, i*2)
		}
	}
}
