// Online zone updates: epoch-based read-copy-update over the monitor's
// frozen comfort zones (DESIGN.md, "Online updates: epochs, grace
// periods"). The frozen monitor keeps serving while an Updater
// shadow-builds successors for the touched zones on writable compact
// clones; the finished generation is published with one atomic pointer
// swap. Readers pin the current epoch per batch, so a batch never mixes
// zones from two generations, and a retired epoch's replaced BDD managers
// are released the moment its last pinned reader drains.

package core

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"napmon/internal/bdd"
)

// epoch is one immutable generation of the monitor's serving state: a set
// of frozen zones plus the reference count that times its grace period.
type epoch struct {
	id    uint64
	gamma int
	zones map[int]*Zone // every zone frozen before publication

	// refs counts the epoch's pinned readers plus one reference for being
	// the monitor's current epoch. Publication of a successor drops the
	// current-reference; when refs drains to zero the epoch's grace period
	// ends and its manager references are returned to the updater's
	// registry (which releases managers no live epoch shares any more).
	refs atomic.Int64
	// releaseOnce guards the drain handoff: the refcount can be
	// resurrected transiently by a racing acquire (pin-validate-unpin), so
	// zero may be observed more than once.
	releaseOnce sync.Once
	// onDrain returns the epoch's manager references to the updater's
	// registry.
	onDrain func()
}

func newEpoch(id uint64, gamma int, zones map[int]*Zone) *epoch {
	e := &epoch{id: id, gamma: gamma, zones: zones}
	e.refs.Store(1) // the monitor's current-epoch reference
	return e
}

// unpin drops one reference; the reader-drain end of the grace period
// hands the epoch's manager references back exactly once.
func (e *epoch) unpin() {
	if e.refs.Add(-1) == 0 {
		e.releaseOnce.Do(func() {
			if e.onDrain != nil {
				e.onDrain()
			}
		})
	}
}

// managers returns the distinct BDD managers backing the epoch's zones
// (UpdateGamma re-view epochs share managers with their predecessor, so
// manager lifetime is tracked per manager, not per epoch).
func (e *epoch) managers() []*bdd.Manager {
	seen := make(map[*bdd.Manager]bool, len(e.zones))
	out := make([]*bdd.Manager, 0, len(e.zones))
	for _, z := range e.zones {
		if !seen[z.m] {
			seen[z.m] = true
			out = append(out, z.m)
		}
	}
	return out
}

// acquire pins the monitor's current epoch for a batch of reads, or
// returns nil when the monitor has not frozen yet (build phase: m.zones is
// the single-writer state). The load-increment-validate loop closes the
// race with a concurrent publication: if the epoch was swapped out between
// the load and the increment, the increment may have resurrected a
// draining epoch — drop the pin and retry on the fresh pointer. Callers
// must unpin exactly once.
func (m *Monitor) acquire() *epoch {
	for {
		e := m.cur.Load()
		if e == nil {
			return nil
		}
		e.refs.Add(1)
		if m.cur.Load() == e {
			return e
		}
		e.unpin()
	}
}

// Updater is the monitor's online-update engine: it shadow-builds zone
// deltas on writable clones while the frozen epoch keeps serving, then
// publishes the new generation atomically. All updates are serialized
// through the updater's mutex (single writer, many readers); the serving
// paths never block on it.
type Updater struct {
	m  *Monitor
	mu sync.Mutex

	// mgrRefs counts, per BDD manager, how many undrained epochs reference
	// it. A manager may back zones in several consecutive epochs
	// (UpdateGamma re-views share managers), so it is released only when
	// the last epoch referencing it drains — never while any pinned reader
	// could still walk it. Guarded by refMu, which is distinct from mu
	// because drains fire from reader goroutines (and from publish itself,
	// which holds mu).
	refMu   sync.Mutex
	mgrRefs map[*bdd.Manager]int

	published  atomic.Uint64 // epochs published after the freeze epoch
	absorbed   atomic.Uint64 // patterns absorbed across all updates
	released   atomic.Uint64 // retired epochs whose grace period has ended
	recompiled atomic.Uint64 // zones whose query plans were rebuilt by updates

	// swap wall time, shadow-build through pointer swap (see obs.go)
	swapNsTotal atomic.Int64
	swapNsLast  atomic.Int64
}

// track registers a freshly published (or freeze) epoch's manager
// references and arms its drain handoff.
func (u *Updater) track(e *epoch) {
	mgrs := e.managers()
	u.refMu.Lock()
	if u.mgrRefs == nil {
		u.mgrRefs = make(map[*bdd.Manager]int)
	}
	for _, mgr := range mgrs {
		u.mgrRefs[mgr]++
	}
	u.refMu.Unlock()
	e.onDrain = func() { u.drained(e, mgrs) }
}

// drained ends a retired epoch's grace period: its manager references are
// returned, and managers no live epoch shares are released for good.
func (u *Updater) drained(e *epoch, mgrs []*bdd.Manager) {
	u.refMu.Lock()
	for _, mgr := range mgrs {
		u.mgrRefs[mgr]--
		if u.mgrRefs[mgr] == 0 {
			delete(u.mgrRefs, mgr)
			mgr.Release()
		}
	}
	u.refMu.Unlock()
	u.released.Add(1)
}

// Published returns how many epochs have been published by updates (the
// initial freeze epoch is not counted).
func (u *Updater) Published() uint64 { return u.published.Load() }

// Absorbed returns the total number of patterns absorbed by updates.
func (u *Updater) Absorbed() uint64 { return u.absorbed.Load() }

// ReleasedEpochs returns how many retired epochs have completed their
// grace period (all pinned readers drained, replaced managers freed).
func (u *Updater) ReleasedEpochs() uint64 { return u.released.Load() }

// Recompiled returns how many zone query plans updates have rebuilt.
// Epoch swaps pay compilation only for the zones they actually touch —
// an Apply recompiles exactly the delta'd classes, an ApplyGamma to a
// cached level recompiles nothing — so this counter growing slower than
// Published × classes is the O(delta) property made observable (the
// epoch-swap tests assert on it).
func (u *Updater) Recompiled() uint64 { return u.recompiled.Load() }

// Apply absorbs new activation patterns into the monitored classes' zones
// and publishes the result as a new epoch. delta maps class → patterns to
// add; every class must be monitored and every pattern must match the
// monitored width. The zones of untouched classes are shared structurally
// with the previous epoch (their managers are per-class, so sharing is
// free); each touched zone is compact-cloned with the delta folded into
// every cached enlargement level (see Zone.cloneWithDelta — cost scales
// with the delta, not the zone). Serving never pauses: readers pinned to
// the old epoch finish on it, new batches see the new one. Returns the
// published epoch id; with an empty delta it returns the current id
// without publishing. The monitor is frozen on first use.
func (u *Updater) Apply(delta map[int][]Pattern) (uint64, error) {
	m := u.m
	m.Freeze()
	u.mu.Lock()
	defer u.mu.Unlock()
	cur := m.cur.Load() // stable: only Apply/ApplyGamma swap, and we hold the lock
	total := 0
	for c, pats := range delta {
		z, ok := cur.zones[c]
		if !ok {
			return cur.id, fmt.Errorf("core: update for unmonitored class %d", c)
		}
		for _, p := range pats {
			if len(p) != z.Width() {
				return cur.id, fmt.Errorf("core: update pattern width %d does not match zone width %d (class %d)",
					len(p), z.Width(), c)
			}
		}
		total += len(pats)
	}
	if total == 0 {
		return cur.id, nil
	}
	tStart := time.Now()
	defer func() { u.recordSwap(time.Since(tStart).Nanoseconds()) }()
	zones := make(map[int]*Zone, len(cur.zones))
	for c, z := range cur.zones {
		zones[c] = z
	}
	// Deterministic shadow-build order (map iteration is not) so repeated
	// update sequences build identical BDDs.
	classes := make([]int, 0, len(delta))
	for c := range delta {
		classes = append(classes, c)
	}
	sort.Ints(classes)
	for _, c := range classes {
		if len(delta[c]) == 0 {
			continue
		}
		nz := cur.zones[c].cloneWithDelta(delta[c])
		nz.Freeze() // compiles the successor's query plans
		zones[c] = nz
		u.recompiled.Add(1)
	}
	id := u.publish(cur, zones, cur.gamma)
	u.absorbed.Add(uint64(total))
	return id, nil
}

// ApplyGamma publishes a new epoch whose zones are queried at a different
// enlargement level. Levels cached before the freeze are re-viewed in
// place — the new zones share the frozen managers, nothing is copied and
// nothing is retired; a deeper level shadow-builds the missing expansions
// on compact clones. This is the epoch-swap answer to the
// SetGamma-after-Freeze footgun: the serving γ changes atomically for
// whole batches instead of racing per query.
func (u *Updater) ApplyGamma(gamma int) (uint64, error) {
	if gamma < 0 {
		return 0, fmt.Errorf("core: negative gamma %d", gamma)
	}
	m := u.m
	m.Freeze()
	u.mu.Lock()
	defer u.mu.Unlock()
	cur := m.cur.Load()
	if gamma == cur.gamma {
		return cur.id, nil
	}
	tStart := time.Now()
	defer func() { u.recordSwap(time.Since(tStart).Nanoseconds()) }()
	zones := make(map[int]*Zone, len(cur.zones))
	for c, z := range cur.zones {
		nz := z.cloneAtGamma(gamma)
		nz.Freeze() // no-op for the shared-manager re-view: plans are shared too
		if nz.m != z.m {
			u.recompiled.Add(1)
		}
		zones[c] = nz
	}
	return u.publish(cur, zones, gamma), nil
}

// publish swaps in the new generation: register the new epoch's manager
// references, store the pointer, drop the old epoch's current-reference so
// its grace period can end. Callers hold u.mu.
func (u *Updater) publish(old *epoch, zones map[int]*Zone, gamma int) uint64 {
	next := newEpoch(old.id+1, gamma, zones)
	u.track(next)
	u.m.cur.Store(next)
	u.published.Add(1)
	old.unpin()
	return next.id
}

// Updater returns the monitor's online-update engine (counters and the
// update entry points also reachable as Monitor.Update/UpdateBatch/
// UpdateGamma).
func (m *Monitor) Updater() *Updater { return &m.upd }

// Update absorbs new activation patterns into one class's comfort zone and
// publishes a new serving epoch; see Updater.Apply. It returns the id of
// the epoch now serving.
func (m *Monitor) Update(class int, pats ...Pattern) (uint64, error) {
	return m.upd.Apply(map[int][]Pattern{class: pats})
}

// UpdateBatch absorbs patterns for several classes in one epoch swap; see
// Updater.Apply.
func (m *Monitor) UpdateBatch(delta map[int][]Pattern) (uint64, error) {
	return m.upd.Apply(delta)
}

// UpdateGamma changes the serving enlargement level by publishing a new
// epoch; see Updater.ApplyGamma. It is the frozen-monitor counterpart of
// SetGamma.
func (m *Monitor) UpdateGamma(gamma int) (uint64, error) {
	return m.upd.ApplyGamma(gamma)
}

// Epoch returns the id of the epoch currently serving (1 for the freeze
// epoch, incremented by every published update), or 0 while the monitor is
// still building.
func (m *Monitor) Epoch() uint64 {
	if e := m.cur.Load(); e != nil {
		return e.id
	}
	return 0
}

// Updates returns how many update epochs have been published.
func (m *Monitor) Updates() uint64 { return m.upd.Published() }
