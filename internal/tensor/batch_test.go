package tensor

import (
	"math"
	"runtime"
	"testing"

	"napmon/internal/rng"
)

// TestMatMulBlockedMatchesNaive sweeps random shapes — including inner
// dimensions beyond one k panel and edge sizes the 4×4 tiling does not
// cover — and checks the blocked kernel against the triple-loop
// reference within tight relative tolerance.
func TestMatMulBlockedMatchesNaive(t *testing.T) {
	r := rng.New(42)
	for trial := 0; trial < 30; trial++ {
		m := 1 + r.Intn(70)
		k := 1 + r.Intn(600) // crosses the blockK=256 panel boundary
		n := 1 + r.Intn(70)
		a := randTensor(r, m, k)
		b := randTensor(r, k, n)
		got := New(m, n)
		want := New(m, n)
		MatMulInto(got, a, b)
		MatMulNaiveInto(want, a, b)
		for i := range want.Data() {
			g, w := got.Data()[i], want.Data()[i]
			if math.Abs(g-w) > 1e-9*(1+math.Abs(w)) {
				t.Fatalf("(%d,%d,%d) elem %d: blocked %v, naive %v", m, k, n, i, g, w)
			}
		}
	}
}

// TestMatMulDeterministicAcrossWorkers pins the bit-stability guarantee:
// the same product computed single-threaded and with the goroutine row
// split must agree exactly, because the panel-subtotal accumulation
// order is independent of how rows land on tiles or workers.
func TestMatMulDeterministicAcrossWorkers(t *testing.T) {
	r := rng.New(7)
	a := randTensor(r, 67, 530)
	b := randTensor(r, 530, 45)
	serial := New(67, 45)
	prev := runtime.GOMAXPROCS(1)
	MatMulInto(serial, a, b)
	runtime.GOMAXPROCS(8)
	parallel := New(67, 45)
	MatMulInto(parallel, a, b)
	runtime.GOMAXPROCS(prev)
	for i := range serial.Data() {
		if serial.Data()[i] != parallel.Data()[i] {
			t.Fatalf("elem %d differs across worker counts: %v vs %v",
				i, serial.Data()[i], parallel.Data()[i])
		}
	}
}

// TestMatMulTransBMatchesMatVec pins the dense-batch contract: row i of
// A×Bᵀ must equal MatVec(B, row i of A) bit for bit, since ForwardBatch
// relies on exactly this equivalence against the per-sample path.
func TestMatMulTransBMatchesMatVec(t *testing.T) {
	r := rng.New(9)
	for trial := 0; trial < 20; trial++ {
		m := 1 + r.Intn(19)
		k := 1 + r.Intn(400)
		n := 1 + r.Intn(50)
		a := randTensor(r, m, k)
		b := randTensor(r, n, k)
		c := New(m, n)
		MatMulTransBInto(c, a, b)
		for i := 0; i < m; i++ {
			row := FromSlice(append([]float64(nil), a.Data()[i*k:(i+1)*k]...), k)
			want := MatVec(b, row.Data())
			for j := 0; j < n; j++ {
				if got := c.At(i, j); got != want[j] {
					t.Fatalf("(%d,%d,%d) row %d col %d: transB %v, matvec %v", m, k, n, i, j, got, want[j])
				}
			}
		}
	}
}

// TestMatMulTransBBiasReLUFusion checks the fused epilogue against the
// unfused product followed by an explicit bias add and rectification.
func TestMatMulTransBBiasReLUFusion(t *testing.T) {
	r := rng.New(11)
	m, k, n := 13, 37, 21
	a := randTensor(r, m, k)
	b := randTensor(r, n, k)
	bias := make([]float64, n)
	for i := range bias {
		bias[i] = r.NormScaled(0, 1)
	}
	fused := New(m, n)
	MatMulTransBBiasInto(fused, a, b, bias, true)
	plain := New(m, n)
	MatMulTransBInto(plain, a, b)
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			want := plain.At(i, j) + bias[j]
			if want < 0 {
				want = 0
			}
			if got := fused.At(i, j); got != want {
				t.Fatalf("elem (%d,%d): fused %v, reference %v", i, j, got, want)
			}
		}
	}
}

// TestIm2ColBatchMatchesIm2Col checks that each sample's column block of
// the batched lowering equals the single-sample Im2Col exactly.
func TestIm2ColBatchMatchesIm2Col(t *testing.T) {
	r := rng.New(13)
	for trial := 0; trial < 10; trial++ {
		bsz := 1 + r.Intn(5)
		c := 1 + r.Intn(3)
		kh := 1 + r.Intn(3)
		kw := 1 + r.Intn(3)
		stride := 1 + r.Intn(2)
		h := kh + r.Intn(6)
		w := kw + r.Intn(6)
		batch := randTensor(r, bsz, c, h, w)
		cols := Im2ColBatch(batch, kh, kw, stride)
		outH := (h-kh)/stride + 1
		outW := (w-kw)/stride + 1
		p := outH * outW
		sampleLen := c * h * w
		for s := 0; s < bsz; s++ {
			sample := FromSlice(batch.Data()[s*sampleLen:(s+1)*sampleLen], c, h, w)
			want := Im2Col(sample, kh, kw, stride)
			for row := 0; row < cols.Dim(0); row++ {
				for col := 0; col < p; col++ {
					if got := cols.At(row, s*p+col); got != want.At(row, col) {
						t.Fatalf("sample %d row %d col %d: batch %v, single %v",
							s, row, col, got, want.At(row, col))
					}
				}
			}
		}
	}
}

// TestAddBiasUnstack checks the conv epilogue: GEMM output columns
// grouped by sample must land batch-major with the channel bias added.
func TestAddBiasUnstack(t *testing.T) {
	const bsz, outC, area = 3, 2, 4
	src := New(outC, bsz*area)
	for i := range src.Data() {
		src.Data()[i] = float64(i)
	}
	bias := []float64{10, 20}
	dst := New(bsz, outC, area)
	AddBiasUnstackInto(dst, src, bsz, outC, area, bias, false)
	relu := New(bsz, outC, area)
	AddBiasUnstackInto(relu, src, bsz, outC, area, bias, true)
	for i, v := range dst.Data() {
		want := v
		if want < 0 {
			want = 0
		}
		if relu.Data()[i] != want {
			t.Fatalf("relu epilogue elem %d: got %v, want %v", i, relu.Data()[i], want)
		}
	}
	for s := 0; s < bsz; s++ {
		for oc := 0; oc < outC; oc++ {
			for i := 0; i < area; i++ {
				want := src.At(oc, s*area+i) + bias[oc]
				if got := dst.Data()[(s*outC+oc)*area+i]; got != want {
					t.Fatalf("sample %d chan %d elem %d: got %v, want %v", s, oc, i, got, want)
				}
			}
		}
	}
}

// TestMaxPool2DBatchMatchesSingle checks the inference-only batched
// pooling against the per-sample kernel.
func TestMaxPool2DBatchMatchesSingle(t *testing.T) {
	r := rng.New(17)
	const bsz, c, h, w, size = 4, 3, 6, 8, 2
	batch := randTensor(r, bsz, c, h, w)
	out := New(bsz, c, h/size, w/size)
	MaxPool2DBatchInto(out, batch, size)
	sampleLen := c * h * w
	outLen := c * (h / size) * (w / size)
	for s := 0; s < bsz; s++ {
		sample := FromSlice(batch.Data()[s*sampleLen:(s+1)*sampleLen], c, h, w)
		want, _ := MaxPool2D(sample, size)
		for i, v := range want.Data() {
			if got := out.Data()[s*outLen+i]; got != v {
				t.Fatalf("sample %d elem %d: batch %v, single %v", s, i, got, v)
			}
		}
	}
}

// TestAddBiasReLUPool2Fused pins the fused conv epilogue against its
// unfused composition: AddBiasUnstackInto (bias+ReLU) followed by
// MaxPool2DBatchInto must produce bit-identical pooled maps, across
// random shapes, with and without bias.
func TestAddBiasReLUPool2Fused(t *testing.T) {
	r := rng.New(91)
	for trial := 0; trial < 25; trial++ {
		bsz := 1 + r.Intn(5)
		outC := 1 + r.Intn(6)
		outH := 2 * (1 + r.Intn(5))
		outW := 2 * (1 + r.Intn(5))
		area := outH * outW
		src := randTensor(r, outC, bsz*area)
		var bias []float64
		if r.Bool(0.8) {
			bias = randTensor(r, outC).Data()
		}

		fused := New(bsz, outC, outH/2, outW/2)
		AddBiasReLUPool2Into(fused, src, bsz, outC, outH, outW, bias)

		unstacked := New(bsz, outC, outH, outW)
		AddBiasUnstackInto(unstacked, src, bsz, outC, area, bias, true)
		want := New(bsz, outC, outH/2, outW/2)
		MaxPool2DBatchInto(want, unstacked, 2)

		for i, v := range want.Data() {
			if fused.Data()[i] != v {
				t.Fatalf("trial %d (b=%d c=%d %dx%d) elem %d: fused %v, unfused %v",
					trial, bsz, outC, outH, outW, i, fused.Data()[i], v)
			}
		}
	}
}

// TestPoolRecyclesBuffers checks the scratch pool contract: a Put buffer
// of matching size is handed back by the next Get (no allocation), sizes
// are tracked independently, and Stats reports the miss.
func TestPoolRecyclesBuffers(t *testing.T) {
	p := NewPool()
	a := p.Get(4, 8)
	if gets, misses := p.Stats(); gets != 1 || misses != 1 {
		t.Fatalf("after first Get: gets %d misses %d", gets, misses)
	}
	backing := &a.Data()[0]
	p.Put(a)
	b := p.Get(8, 4) // same element count, different shape: must reuse
	if &b.Data()[0] != backing {
		t.Fatal("Get after Put allocated instead of recycling")
	}
	if gets, misses := p.Stats(); gets != 2 || misses != 1 {
		t.Fatalf("after recycled Get: gets %d misses %d", gets, misses)
	}
	c := p.Get(4, 8) // bucket empty again: fresh allocation
	if &c.Data()[0] == backing {
		t.Fatal("pool handed out one buffer twice")
	}
	p.Put(nil)   // no-op
	p.Put(New()) // empty tensor: no-op
	if p.Get(3).Len() != 3 {
		t.Fatal("Get after no-op Puts broken")
	}
}

// BenchmarkAddBiasReLUPool2 isolates the fused conv epilogue on the
// MNIST-net conv1 shape (40 channels, 24×24 map, 64-sample chunk).
func BenchmarkAddBiasReLUPool2(b *testing.B) {
	r := rng.New(3)
	const bsz, outC, outH, outW = 64, 40, 24, 24
	src := randTensor(r, outC, bsz*outH*outW)
	bias := randTensor(r, outC).Data()
	dst := New(bsz, outC, outH/2, outW/2)
	b.SetBytes(int64(src.Len() * 8))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		AddBiasReLUPool2Into(dst, src, bsz, outC, outH, outW, bias)
	}
}
