package tensor

import (
	"math"
	"runtime"
	"sync"
)

// matmulParallelThreshold is the minimum number of multiply-accumulate
// operations before a GEMM fans out across goroutines. Small products are
// faster single-threaded.
const matmulParallelThreshold = 1 << 16

// Blocking parameters of the tiled GEMM. The kernel walks the output
// columns in blockN stripes and the shared dimension in blockK panels;
// each blockK×blockN tile of B is packed once into contiguous 8-wide
// micro panels (B's rows are n elements apart, so the unpacked kernel
// would touch a new cache line — and for batched conv shapes a new TLB
// page — every k step) and then consumed by every 4-row strip of A
// through the 4×8 register-tiled micro kernel: AVX2+FMA assembly on
// capable amd64 hardware, a bit-identical math.FMA scalar loop
// elsewhere.
//
// Every C element accumulates over k in ascending order with one fused
// multiply-add chain per blockK panel and plain adds between panel
// subtotals, no matter which path (vector, scalar, edge) computes it —
// so results are bit-identical across tilings, goroutine row splits and
// architectures, and the batched inference path reproduces the
// per-sample reference exactly.
const (
	blockM = 64
	blockK = 256
	blockN = 256
	microN = 8 // micro-kernel tile width (one packed B panel row)
)

// packBuffers recycles the packed-B tile scratch across GEMM calls and
// goroutines, keeping the hot path allocation-free.
var packBuffers = sync.Pool{
	New: func() any {
		s := make([]float64, blockK*blockN)
		return &s
	},
}

// MatMul computes C = A × B for A of shape (m, k) and B of shape (k, n),
// returning a new (m, n) tensor.
func MatMul(a, b *Tensor) *Tensor {
	if a.Rank() != 2 || b.Rank() != 2 {
		panic("tensor: MatMul requires rank-2 tensors")
	}
	m, k := a.shape[0], a.shape[1]
	k2, n := b.shape[0], b.shape[1]
	if k != k2 {
		panic("tensor: MatMul inner dimensions differ")
	}
	c := New(m, n)
	MatMulInto(c, a, b)
	return c
}

// MatMulInto computes dst = A × B with the blocked, packed,
// register-tiled kernel, overwriting dst. dst must have shape (m, n) and
// must not alias a or b. Rows are split across goroutines for large
// products.
func MatMulInto(dst, a, b *Tensor) {
	m, k := a.shape[0], a.shape[1]
	n := b.shape[1]
	if b.shape[0] != k || dst.shape[0] != m || dst.shape[1] != n {
		panic("tensor: MatMulInto shape mismatch")
	}
	if k == 0 {
		dst.Zero()
		return
	}
	parallelRows(m, m*n*k, func(lo, hi int) {
		gemmBlocked(dst.data, a.data, b.data, lo, hi, k, n, false)
	})
}

// MatMulTransB computes C = A × Bᵀ for A of shape (m, k) and B of shape
// (n, k), returning (m, n). Used by batched dense layers and by
// backpropagation for input gradients.
func MatMulTransB(a, b *Tensor) *Tensor {
	c := New(a.shape[0], b.shape[0])
	MatMulTransBInto(c, a, b)
	return c
}

// MatMulTransBInto computes dst = A × Bᵀ for A (m, k) and B (n, k),
// overwriting dst (m, n), with the same packed kernel as MatMulInto (the
// pack step gathers B's transpose). This is the layout of choice for
// batched dense layers: Y (B, out) = X (B, in) × Wᵀ with W stored
// (out, in). Element (i, j) equals the math.FMA dot product MatVec
// computes, bit for bit.
func MatMulTransBInto(dst, a, b *Tensor) {
	m, k := a.shape[0], a.shape[1]
	n := b.shape[0]
	if b.shape[1] != k || dst.shape[0] != m || dst.shape[1] != n {
		panic("tensor: MatMulTransBInto shape mismatch")
	}
	if k == 0 {
		dst.Zero()
		return
	}
	parallelRows(m, m*n*k, func(lo, hi int) {
		gemmBlocked(dst.data, a.data, b.data, lo, hi, k, n, true)
	})
}

// MatMulTransBBiasInto is MatMulTransBInto with a fused epilogue sweep:
// bias[j] is added to every column j and, when relu is set, the result
// is clamped at zero — the bias+activation epilogue of a dense layer.
// bias may be nil.
func MatMulTransBBiasInto(dst, a, b *Tensor, bias []float64, relu bool) {
	MatMulTransBInto(dst, a, b)
	if bias != nil && len(bias) != dst.shape[1] {
		panic("tensor: MatMulTransBBiasInto bias length mismatch")
	}
	AddBiasReLURows(dst, bias, relu)
}

// AddBiasReLURows adds bias[j] to column j of every row of the rank-2
// tensor m (bias may be nil) and, when relu is set, clamps the results
// at zero in the same pass.
func AddBiasReLURows(m *Tensor, bias []float64, relu bool) {
	n := m.shape[len(m.shape)-1]
	if bias != nil && len(bias) != n {
		panic("tensor: AddBiasReLURows bias length mismatch")
	}
	for base := 0; base < len(m.data); base += n {
		row := m.data[base : base+n]
		if bias != nil {
			for j := range row {
				row[j] += bias[j]
			}
		}
		if relu {
			for j, v := range row {
				if v < 0 {
					row[j] = 0
				}
			}
		}
	}
}

// parallelRows runs body over [0, m) split into contiguous row ranges
// across GOMAXPROCS goroutines when work (the multiply-accumulate count)
// is large enough, serially otherwise.
func parallelRows(m, work int, body func(lo, hi int)) {
	workers := runtime.GOMAXPROCS(0)
	if work < matmulParallelThreshold || workers <= 1 || m <= 1 {
		body(0, m)
		return
	}
	if workers > m {
		workers = m
	}
	var wg sync.WaitGroup
	chunk := (m + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo := w * chunk
		hi := lo + chunk
		if hi > m {
			hi = m
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			body(lo, hi)
		}(lo, hi)
	}
	wg.Wait()
}

// gemmBlocked computes rows [lo, hi) of C = A×B (or A×Bᵀ when trans is
// set, with b of shape (n, k)) using column stripes, k panels, packed B
// tiles and the 4×8 micro kernel. The first k panel stores its subtotal
// (overwriting C, so no separate zeroing pass is needed); later panels
// accumulate.
func gemmBlocked(c, a, b []float64, lo, hi, k, n int, trans bool) {
	packPtr := packBuffers.Get().(*[]float64)
	pack := *packPtr
	for jc := 0; jc < n; jc += blockN {
		je := jc + blockN
		if je > n {
			je = n
		}
		jeV := jc + (je-jc)&^(microN-1) // micro tiles cover [jc, jeV)
		for pc := 0; pc < k; pc += blockK {
			pe := pc + blockK
			if pe > k {
				pe = k
			}
			kb := pe - pc
			first := pc == 0
			if hi-lo >= 4 && jeV > jc {
				packTiles(pack, b, pc, pe, jc, jeV, k, n, trans)
			}
			for ic := lo; ic < hi; ic += blockM {
				ie := ic + blockM
				if ie > hi {
					ie = hi
				}
				i := ic
				for ; i+4 <= ie; i += 4 {
					for jt := jc; jt < jeV; jt += microN {
						tile := pack[(jt-jc)/microN*kb*microN:]
						gemmTile4x8(a, i*k+pc, k, tile, kb, c, i*n+jt, n, first)
					}
					if jeV < je {
						gemmEdge(c, a, b, i, i+4, jeV, je, pc, pe, k, n, first, trans)
					}
				}
				if i < ie {
					gemmEdge(c, a, b, i, ie, jc, je, pc, pe, k, n, first, trans)
				}
			}
		}
	}
	packBuffers.Put(packPtr)
}

// packTiles copies the B panel rows [pc, pe) × columns [jc, jeV) into
// contiguous 8-wide micro panels: tile (jt-jc)/8 holds kb rows of 8
// consecutive column values. trans gathers from b stored as (n, k).
func packTiles(pack, b []float64, pc, pe, jc, jeV, k, n int, trans bool) {
	kb := pe - pc
	for jt := jc; jt < jeV; jt += microN {
		dst := pack[(jt-jc)/microN*kb*microN : ((jt-jc)/microN+1)*kb*microN]
		if trans {
			for i := 0; i < microN; i++ {
				src := b[(jt+i)*k+pc : (jt+i)*k+pe]
				for t, v := range src {
					dst[t*microN+i] = v
				}
			}
		} else {
			// Hand-unrolled 8-wide row moves: one packed row is only 64
			// bytes, so the memmove call overhead of copy() would cost more
			// than the move itself (the pack runs once per k panel per
			// column stripe — hundreds of thousands of rows per batched
			// conv GEMM).
			off := pc*n + jt
			for t := 0; t < kb; t++ {
				d := dst[t*microN : t*microN+microN : t*microN+microN]
				s := b[off : off+microN : off+microN]
				d[0], d[1], d[2], d[3] = s[0], s[1], s[2], s[3]
				d[4], d[5], d[6], d[7] = s[4], s[5], s[6], s[7]
				off += n
			}
		}
	}
}

// gemmTile4x8go is the scalar micro kernel: the same 4×8 tile as the
// assembly path, computed as two 4×4 halves of math.FMA chains — per
// element the identical correctly-rounded ascending-k sequence, so
// vector and scalar results match bit for bit.
func gemmTile4x8go(a []float64, ai, lda int, pk []float64, kb int, c []float64, ci, ldc int, first bool) {
	for h := 0; h < microN; h += 4 {
		a0 := a[ai : ai+kb]
		a1 := a[ai+lda : ai+lda+kb]
		a2 := a[ai+2*lda : ai+2*lda+kb]
		a3 := a[ai+3*lda : ai+3*lda+kb]
		var c00, c01, c02, c03 float64
		var c10, c11, c12, c13 float64
		var c20, c21, c22, c23 float64
		var c30, c31, c32, c33 float64
		off := h
		for t := range a0 {
			bRow := pk[off : off+4 : off+4]
			b0, b1, b2, b3 := bRow[0], bRow[1], bRow[2], bRow[3]
			off += microN
			av := a0[t]
			c00 = math.FMA(av, b0, c00)
			c01 = math.FMA(av, b1, c01)
			c02 = math.FMA(av, b2, c02)
			c03 = math.FMA(av, b3, c03)
			av = a1[t]
			c10 = math.FMA(av, b0, c10)
			c11 = math.FMA(av, b1, c11)
			c12 = math.FMA(av, b2, c12)
			c13 = math.FMA(av, b3, c13)
			av = a2[t]
			c20 = math.FMA(av, b0, c20)
			c21 = math.FMA(av, b1, c21)
			c22 = math.FMA(av, b2, c22)
			c23 = math.FMA(av, b3, c23)
			av = a3[t]
			c30 = math.FMA(av, b0, c30)
			c31 = math.FMA(av, b1, c31)
			c32 = math.FMA(av, b2, c32)
			c33 = math.FMA(av, b3, c33)
		}
		if first {
			r := c[ci+h : ci+h+4 : ci+h+4]
			r[0], r[1], r[2], r[3] = c00, c01, c02, c03
			r = c[ci+ldc+h : ci+ldc+h+4 : ci+ldc+h+4]
			r[0], r[1], r[2], r[3] = c10, c11, c12, c13
			r = c[ci+2*ldc+h : ci+2*ldc+h+4 : ci+2*ldc+h+4]
			r[0], r[1], r[2], r[3] = c20, c21, c22, c23
			r = c[ci+3*ldc+h : ci+3*ldc+h+4 : ci+3*ldc+h+4]
			r[0], r[1], r[2], r[3] = c30, c31, c32, c33
		} else {
			r := c[ci+h : ci+h+4 : ci+h+4]
			r[0] += c00
			r[1] += c01
			r[2] += c02
			r[3] += c03
			r = c[ci+ldc+h : ci+ldc+h+4 : ci+ldc+h+4]
			r[0] += c10
			r[1] += c11
			r[2] += c12
			r[3] += c13
			r = c[ci+2*ldc+h : ci+2*ldc+h+4 : ci+2*ldc+h+4]
			r[0] += c20
			r[1] += c21
			r[2] += c22
			r[3] += c23
			r = c[ci+3*ldc+h : ci+3*ldc+h+4 : ci+3*ldc+h+4]
			r[0] += c30
			r[1] += c31
			r[2] += c32
			r[3] += c33
		}
	}
}

// gemmEdge handles the leftover rows [i0, i1) and columns [j0, j1) that
// the 4×8 tiling does not cover, over the k panel [p0, p1). Each element
// is one math.FMA chain over the panel — the same sequence as the micro
// kernel — followed by a store (first panel) or add.
func gemmEdge(c, a, b []float64, i0, i1, j0, j1, p0, p1, k, n int, first, trans bool) {
	for i := i0; i < i1; i++ {
		ai := a[i*k : (i+1)*k]
		for j := j0; j < j1; j++ {
			s := 0.0
			if trans {
				bj := b[j*k : (j+1)*k]
				for p := p0; p < p1; p++ {
					s = math.FMA(ai[p], bj[p], s)
				}
			} else {
				for p := p0; p < p1; p++ {
					s = math.FMA(ai[p], b[p*n+j], s)
				}
			}
			if first {
				c[i*n+j] = s
			} else {
				c[i*n+j] += s
			}
		}
	}
}

// MatMulNaiveInto computes dst = A × B with the plain triple loop and
// separate multiply/add rounding. It is the correctness reference the
// blocked FMA kernel is tested and benchmarked against (equal within
// accumulation tolerance, not bit-identical — FMA rounds once per
// multiply-add, the naive loop twice).
func MatMulNaiveInto(dst, a, b *Tensor) {
	m, k := a.shape[0], a.shape[1]
	n := b.shape[1]
	if b.shape[0] != k || dst.shape[0] != m || dst.shape[1] != n {
		panic("tensor: MatMulNaiveInto shape mismatch")
	}
	dst.Zero()
	for i := 0; i < m; i++ {
		ci := dst.data[i*n : (i+1)*n]
		ai := a.data[i*k : (i+1)*k]
		for p, av := range ai {
			if av == 0 {
				continue
			}
			bp := b.data[p*n : (p+1)*n]
			for j, bv := range bp {
				ci[j] += av * bv
			}
		}
	}
}

// MatMulTransA computes C = Aᵀ × B for A of shape (k, m) and B of shape
// (k, n), returning (m, n). Used by backpropagation for weight gradients.
func MatMulTransA(a, b *Tensor) *Tensor {
	k, m := a.shape[0], a.shape[1]
	if b.shape[0] != k {
		panic("tensor: MatMulTransA inner dimensions differ")
	}
	n := b.shape[1]
	c := New(m, n)
	// C[i][j] = sum_p A[p][i] * B[p][j]; iterate p outermost for locality.
	for p := 0; p < k; p++ {
		ap := a.data[p*m : (p+1)*m]
		bp := b.data[p*n : (p+1)*n]
		for i, av := range ap {
			if av == 0 {
				continue
			}
			ci := c.data[i*n : (i+1)*n]
			for j, bv := range bp {
				ci[j] += av * bv
			}
		}
	}
	return c
}

// MatVec computes y = A × x for A of shape (m, n) and x of length n. The
// accumulation — math.FMA chains per blockK panel, plain adds between
// panel subtotals — matches the batched GEMM kernels exactly, keeping
// the per-sample dense path bit-identical to ForwardBatch rows.
func MatVec(a *Tensor, x []float64) []float64 {
	m, n := a.shape[0], a.shape[1]
	if len(x) != n {
		panic("tensor: MatVec dimension mismatch")
	}
	y := make([]float64, m)
	for i := 0; i < m; i++ {
		row := a.data[i*n : (i+1)*n]
		yi := 0.0
		for pc := 0; pc < n; pc += blockK {
			pe := pc + blockK
			if pe > n {
				pe = n
			}
			s := 0.0
			for p := pc; p < pe; p++ {
				s = math.FMA(row[p], x[p], s)
			}
			if pc == 0 {
				yi = s
			} else {
				yi += s
			}
		}
		y[i] = yi
	}
	return y
}
