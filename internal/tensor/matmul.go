package tensor

import (
	"runtime"
	"sync"
)

// matmulParallelThreshold is the minimum number of multiply-accumulate
// operations before MatMul fans out across goroutines. Small products are
// faster single-threaded.
const matmulParallelThreshold = 1 << 16

// MatMul computes C = A × B for A of shape (m, k) and B of shape (k, n),
// returning a new (m, n) tensor. Rows of the output are computed in
// parallel for large products.
func MatMul(a, b *Tensor) *Tensor {
	if a.Rank() != 2 || b.Rank() != 2 {
		panic("tensor: MatMul requires rank-2 tensors")
	}
	m, k := a.shape[0], a.shape[1]
	k2, n := b.shape[0], b.shape[1]
	if k != k2 {
		panic("tensor: MatMul inner dimensions differ")
	}
	c := New(m, n)
	MatMulInto(c, a, b)
	return c
}

// MatMulInto computes dst = A × B, overwriting dst. dst must have shape
// (m, n) and must not alias a or b.
func MatMulInto(dst, a, b *Tensor) {
	m, k := a.shape[0], a.shape[1]
	n := b.shape[1]
	if b.shape[0] != k || dst.shape[0] != m || dst.shape[1] != n {
		panic("tensor: MatMulInto shape mismatch")
	}
	dst.Zero()
	work := m * n * k
	if work < matmulParallelThreshold {
		matmulRows(dst.data, a.data, b.data, 0, m, k, n)
		return
	}
	workers := runtime.GOMAXPROCS(0)
	if workers > m {
		workers = m
	}
	var wg sync.WaitGroup
	chunk := (m + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo := w * chunk
		hi := lo + chunk
		if hi > m {
			hi = m
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			matmulRows(dst.data, a.data, b.data, lo, hi, k, n)
		}(lo, hi)
	}
	wg.Wait()
}

// matmulRows computes rows [lo, hi) of C += A×B using an ikj loop order so
// the inner loop streams through contiguous memory in both B and C.
func matmulRows(c, a, b []float64, lo, hi, k, n int) {
	for i := lo; i < hi; i++ {
		ci := c[i*n : (i+1)*n]
		ai := a[i*k : (i+1)*k]
		for p, av := range ai {
			if av == 0 {
				continue
			}
			bp := b[p*n : (p+1)*n]
			for j, bv := range bp {
				ci[j] += av * bv
			}
		}
	}
}

// MatMulTransA computes C = Aᵀ × B for A of shape (k, m) and B of shape
// (k, n), returning (m, n). Used by backpropagation for weight gradients.
func MatMulTransA(a, b *Tensor) *Tensor {
	k, m := a.shape[0], a.shape[1]
	if b.shape[0] != k {
		panic("tensor: MatMulTransA inner dimensions differ")
	}
	n := b.shape[1]
	c := New(m, n)
	// C[i][j] = sum_p A[p][i] * B[p][j]; iterate p outermost for locality.
	for p := 0; p < k; p++ {
		ap := a.data[p*m : (p+1)*m]
		bp := b.data[p*n : (p+1)*n]
		for i, av := range ap {
			if av == 0 {
				continue
			}
			ci := c.data[i*n : (i+1)*n]
			for j, bv := range bp {
				ci[j] += av * bv
			}
		}
	}
	return c
}

// MatMulTransB computes C = A × Bᵀ for A of shape (m, k) and B of shape
// (n, k), returning (m, n). Used by backpropagation for input gradients.
func MatMulTransB(a, b *Tensor) *Tensor {
	m, k := a.shape[0], a.shape[1]
	n := b.shape[0]
	if b.shape[1] != k {
		panic("tensor: MatMulTransB inner dimensions differ")
	}
	c := New(m, n)
	for i := 0; i < m; i++ {
		ai := a.data[i*k : (i+1)*k]
		ci := c.data[i*n : (i+1)*n]
		for j := 0; j < n; j++ {
			bj := b.data[j*k : (j+1)*k]
			sum := 0.0
			for p, av := range ai {
				sum += av * bj[p]
			}
			ci[j] = sum
		}
	}
	return c
}

// MatVec computes y = A × x for A of shape (m, n) and x of length n.
func MatVec(a *Tensor, x []float64) []float64 {
	m, n := a.shape[0], a.shape[1]
	if len(x) != n {
		panic("tensor: MatVec dimension mismatch")
	}
	y := make([]float64, m)
	for i := 0; i < m; i++ {
		row := a.data[i*n : (i+1)*n]
		sum := 0.0
		for j, v := range row {
			sum += v * x[j]
		}
		y[i] = sum
	}
	return y
}
