package tensor

// MaxPool2D performs non-overlapping max pooling with a square window of
// the given size over a CHW tensor. It returns the pooled tensor and, for
// use by backpropagation, the flat input index of the maximum chosen for
// each output element. Input height and width must be divisible by size.
func MaxPool2D(input *Tensor, size int) (*Tensor, []int) {
	c, h, w := input.shape[0], input.shape[1], input.shape[2]
	if h%size != 0 || w%size != 0 {
		panic("tensor: MaxPool2D input not divisible by window size")
	}
	outH, outW := h/size, w/size
	out := New(c, outH, outW)
	argmax := make([]int, c*outH*outW)
	oi := 0
	for ch := 0; ch < c; ch++ {
		base := ch * h * w
		for oy := 0; oy < outH; oy++ {
			for ox := 0; ox < outW; ox++ {
				bestIdx := base + (oy*size)*w + ox*size
				best := input.data[bestIdx]
				for py := 0; py < size; py++ {
					rowBase := base + (oy*size+py)*w + ox*size
					for px := 0; px < size; px++ {
						if v := input.data[rowBase+px]; v > best {
							best = v
							bestIdx = rowBase + px
						}
					}
				}
				out.data[oi] = best
				argmax[oi] = bestIdx
				oi++
			}
		}
	}
	return out, argmax
}

// MaxPool2DBackward scatters the output gradient through the argmax map
// produced by MaxPool2D, returning the gradient with respect to the input
// of the given CHW shape.
func MaxPool2DBackward(gradOut *Tensor, argmax []int, inC, inH, inW int) *Tensor {
	gradIn := New(inC, inH, inW)
	for i, g := range gradOut.data {
		gradIn.data[argmax[i]] += g
	}
	return gradIn
}
