package tensor

// MaxPool2D performs non-overlapping max pooling with a square window of
// the given size over a CHW tensor. It returns the pooled tensor and, for
// use by backpropagation, the flat input index of the maximum chosen for
// each output element. Input height and width must be divisible by size.
func MaxPool2D(input *Tensor, size int) (*Tensor, []int) {
	c, h, w := input.shape[0], input.shape[1], input.shape[2]
	if h%size != 0 || w%size != 0 {
		panic("tensor: MaxPool2D input not divisible by window size")
	}
	out := New(c, h/size, w/size)
	argmax := make([]int, out.Len())
	maxPoolCHW(out.data, input.data, argmax, c, h, w, size)
	return out, argmax
}

// MaxPool2DBatchInto max-pools a stacked (B, C, H, W) batch into dst of
// shape (B, C, H/size, W/size), sample by sample, without recording
// argmax indices — the inference-only variant the batched forward pass
// uses with pooled scratch. Every element of dst is overwritten.
func MaxPool2DBatchInto(dst, batch *Tensor, size int) {
	if batch.Rank() != 4 {
		panic("tensor: MaxPool2DBatchInto requires a rank-4 (B,C,H,W) batch")
	}
	b, c, h, w := batch.shape[0], batch.shape[1], batch.shape[2], batch.shape[3]
	if h%size != 0 || w%size != 0 {
		panic("tensor: MaxPool2DBatchInto input not divisible by window size")
	}
	if dst.Len() != b*c*(h/size)*(w/size) {
		panic("tensor: MaxPool2DBatchInto size mismatch")
	}
	inLen, outLen := c*h*w, c*(h/size)*(w/size)
	for s := 0; s < b; s++ {
		maxPoolCHW(dst.data[s*outLen:(s+1)*outLen], batch.data[s*inLen:(s+1)*inLen],
			nil, c, h, w, size)
	}
}

// maxPoolCHW pools one CHW sample from src into dst. When argmax is
// non-nil it additionally records the flat src index of each chosen
// maximum (the backward-pass map). The ubiquitous 2×2 inference case
// takes an unrolled fast path with identical first-wins comparison
// semantics.
func maxPoolCHW(dst, src []float64, argmax []int, c, h, w, size int) {
	if size == 2 && argmax == nil {
		maxPool2CHW(dst, src, c, h, w)
		return
	}
	outH, outW := h/size, w/size
	oi := 0
	for ch := 0; ch < c; ch++ {
		base := ch * h * w
		for oy := 0; oy < outH; oy++ {
			for ox := 0; ox < outW; ox++ {
				bestIdx := base + (oy*size)*w + ox*size
				best := src[bestIdx]
				for py := 0; py < size; py++ {
					rowBase := base + (oy*size+py)*w + ox*size
					for px := 0; px < size; px++ {
						if v := src[rowBase+px]; v > best {
							best = v
							bestIdx = rowBase + px
						}
					}
				}
				dst[oi] = best
				if argmax != nil {
					argmax[oi] = bestIdx
				}
				oi++
			}
		}
	}
}

// maxPool2CHW is the unrolled 2×2 pooling kernel: it walks two input
// rows in lockstep with no per-window index bookkeeping.
func maxPool2CHW(dst, src []float64, c, h, w int) {
	outW := w / 2
	oi := 0
	for ch := 0; ch < c; ch++ {
		base := ch * h * w
		for oy := 0; oy < h/2; oy++ {
			r0 := src[base+2*oy*w : base+2*oy*w+w]
			r1 := src[base+(2*oy+1)*w : base+(2*oy+1)*w+w]
			out := dst[oi : oi+outW : oi+outW]
			for ox := 0; ox < outW; ox++ {
				x := 2 * ox
				best := r0[x]
				if v := r0[x+1]; v > best {
					best = v
				}
				if v := r1[x]; v > best {
					best = v
				}
				if v := r1[x+1]; v > best {
					best = v
				}
				out[ox] = best
			}
			oi += outW
		}
	}
}

// MaxPool2DBackward scatters the output gradient through the argmax map
// produced by MaxPool2D, returning the gradient with respect to the input
// of the given CHW shape.
func MaxPool2DBackward(gradOut *Tensor, argmax []int, inC, inH, inW int) *Tensor {
	gradIn := New(inC, inH, inW)
	for i, g := range gradOut.data {
		gradIn.data[argmax[i]] += g
	}
	return gradIn
}
