//go:build amd64

package tensor

// useAVX2 selects the assembly micro kernel when the CPU supports
// AVX2+FMA and the OS preserves YMM state. The scalar math.FMA fallback
// computes bit-identical results (fused multiply-add is correctly
// rounded in either form), so the flag changes speed, never values.
var useAVX2 = detectAVX2FMA()

// gemm4x8asm is the AVX2 micro kernel in gemm_amd64.s.
//
//go:noescape
func gemm4x8asm(a *float64, lda int, pk *float64, kb int, c *float64, ldc int, first bool)

// cpuidex and xgetbv0 are implemented in gemm_amd64.s.
func cpuidex(eaxIn, ecxIn uint32) (eax, ebx, ecx, edx uint32)
func xgetbv0() uint64

func detectAVX2FMA() bool {
	maxID, _, _, _ := cpuidex(0, 0)
	if maxID < 7 {
		return false
	}
	_, _, ecx1, _ := cpuidex(1, 0)
	const (
		fma     = 1 << 12
		osxsave = 1 << 27
	)
	if ecx1&fma == 0 || ecx1&osxsave == 0 {
		return false
	}
	// XCR0 bits 1 (SSE) and 2 (AVX): the OS saves YMM registers.
	if xgetbv0()&0x6 != 0x6 {
		return false
	}
	_, ebx7, _, _ := cpuidex(7, 0)
	const avx2 = 1 << 5
	return ebx7&avx2 != 0
}

// gemmTile4x8 computes one 4×8 C tile over a packed k panel, dispatching
// to the assembly kernel when available.
func gemmTile4x8(a []float64, ai, lda int, pk []float64, kb int, c []float64, ci, ldc int, first bool) {
	if useAVX2 {
		gemm4x8asm(&a[ai], lda, &pk[0], kb, &c[ci], ldc, first)
		return
	}
	gemmTile4x8go(a, ai, lda, pk, kb, c, ci, ldc, first)
}
