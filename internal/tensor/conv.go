package tensor

// Conv2D computes a 2-D cross-correlation (the "convolution" of deep
// learning) of a CHW input with a set of OIHW kernels, with the given
// stride and no padding. Input shape (inC, inH, inW), kernel shape
// (outC, inC, kH, kW), bias length outC; the result has shape
// (outC, outH, outW) with outH = (inH-kH)/stride + 1.
//
// The implementation lowers the input to a column matrix (im2col) and uses
// the blocked MatMul, which is the standard high-throughput formulation.
func Conv2D(input, kernel *Tensor, bias []float64, stride int) *Tensor {
	outC, inC, kH, kW := kernel.shape[0], kernel.shape[1], kernel.shape[2], kernel.shape[3]
	if input.Rank() != 3 || input.shape[0] != inC {
		panic("tensor: Conv2D input/kernel channel mismatch")
	}
	inH, inW := input.shape[1], input.shape[2]
	outH := (inH-kH)/stride + 1
	outW := (inW-kW)/stride + 1
	if outH <= 0 || outW <= 0 {
		panic("tensor: Conv2D kernel larger than input")
	}

	cols := Im2Col(input, kH, kW, stride) // (inC*kH*kW, outH*outW)
	w := kernel.Reshape(outC, inC*kH*kW)
	out := MatMul(w, cols) // (outC, outH*outW)
	if bias != nil {
		if len(bias) != outC {
			panic("tensor: Conv2D bias length mismatch")
		}
		for c := 0; c < outC; c++ {
			row := out.data[c*outH*outW : (c+1)*outH*outW]
			b := bias[c]
			for i := range row {
				row[i] += b
			}
		}
	}
	return out.Reshape(outC, outH, outW)
}

// Im2Col lowers a CHW input into a matrix with one column per output
// position and one row per (channel, kernel row, kernel col) triple.
func Im2Col(input *Tensor, kH, kW, stride int) *Tensor {
	inC, inH, inW := input.shape[0], input.shape[1], input.shape[2]
	outH := (inH-kH)/stride + 1
	outW := (inW-kW)/stride + 1
	cols := New(inC*kH*kW, outH*outW)
	row := 0
	for c := 0; c < inC; c++ {
		chanBase := c * inH * inW
		for ky := 0; ky < kH; ky++ {
			for kx := 0; kx < kW; kx++ {
				dst := cols.data[row*outH*outW : (row+1)*outH*outW]
				di := 0
				for oy := 0; oy < outH; oy++ {
					srcBase := chanBase + (oy*stride+ky)*inW + kx
					for ox := 0; ox < outW; ox++ {
						dst[di] = input.data[srcBase+ox*stride]
						di++
					}
				}
				row++
			}
		}
	}
	return cols
}

// Im2ColBatch lowers a stacked (B, C, H, W) input batch into one column
// matrix of shape (C*kH*kW, B*outH*outW): sample b occupies the column
// block [b*outH*outW, (b+1)*outH*outW), so a single W×cols GEMM computes
// the convolution of the whole batch. This is what turns a micro-batch
// into real GEMM width — N small matrix multiplies become one large,
// cache-friendly one.
func Im2ColBatch(batch *Tensor, kH, kW, stride int) *Tensor {
	inC, inH, inW := batch.shape[1], batch.shape[2], batch.shape[3]
	outH := (inH-kH)/stride + 1
	outW := (inW-kW)/stride + 1
	cols := New(inC*kH*kW, batch.shape[0]*outH*outW)
	Im2ColBatchInto(cols, batch, kH, kW, stride)
	return cols
}

// Im2ColBatchInto is Im2ColBatch writing into a preallocated dst of shape
// (C*kH*kW, B*outH*outW), for scratch-pooled callers. Every element of
// dst is overwritten.
func Im2ColBatchInto(dst, batch *Tensor, kH, kW, stride int) {
	if batch.Rank() != 4 {
		panic("tensor: Im2ColBatchInto requires a rank-4 (B,C,H,W) batch")
	}
	b, inC, inH, inW := batch.shape[0], batch.shape[1], batch.shape[2], batch.shape[3]
	outH := (inH-kH)/stride + 1
	outW := (inW-kW)/stride + 1
	if outH <= 0 || outW <= 0 {
		panic("tensor: Im2ColBatchInto kernel larger than input")
	}
	p := outH * outW
	if dst.shape[0] != inC*kH*kW || dst.shape[1] != b*p {
		panic("tensor: Im2ColBatchInto shape mismatch")
	}
	sampleLen := inC * inH * inW
	row := 0
	for c := 0; c < inC; c++ {
		chanBase := c * inH * inW
		for ky := 0; ky < kH; ky++ {
			for kx := 0; kx < kW; kx++ {
				rowData := dst.data[row*b*p : (row+1)*b*p]
				for s := 0; s < b; s++ {
					src := batch.data[s*sampleLen : (s+1)*sampleLen]
					di := s * p
					for oy := 0; oy < outH; oy++ {
						srcBase := chanBase + (oy*stride+ky)*inW + kx
						if stride == 1 {
							copy(rowData[di:di+outW], src[srcBase:srcBase+outW])
							di += outW
							continue
						}
						for ox := 0; ox < outW; ox++ {
							rowData[di] = src[srcBase+ox*stride]
							di++
						}
					}
				}
				row++
			}
		}
	}
}

// AddBiasUnstackInto is the epilogue of a batched convolution: it
// rearranges the GEMM output src of shape (outC, B*area) — sample b in
// column block [b*area, (b+1)*area) — into the batch-major dst of shape
// (B, outC, area...), adding bias[oc] to channel oc in the same pass and,
// when relu is set, clamping at zero (the fused bias+activation epilogue
// of a conv layer whose next stage is ReLU). bias may be nil. Every
// element of dst is overwritten.
func AddBiasUnstackInto(dst, src *Tensor, batch, outC, area int, bias []float64, relu bool) {
	if src.Len() != outC*batch*area || dst.Len() != batch*outC*area {
		panic("tensor: AddBiasUnstackInto size mismatch")
	}
	if bias != nil && len(bias) != outC {
		panic("tensor: AddBiasUnstackInto bias length mismatch")
	}
	for oc := 0; oc < outC; oc++ {
		srcRow := src.data[oc*batch*area : (oc+1)*batch*area]
		b := 0.0
		if bias != nil {
			b = bias[oc]
		}
		for s := 0; s < batch; s++ {
			dstRow := dst.data[(s*outC+oc)*area : (s*outC+oc+1)*area]
			seg := srcRow[s*area : (s+1)*area]
			if relu {
				for i, v := range seg {
					v += b
					if v < 0 {
						v = 0
					}
					dstRow[i] = v
				}
			} else {
				for i, v := range seg {
					dstRow[i] = v + b
				}
			}
		}
	}
}

// AddBiasReLUPool2Into fuses the batched-conv epilogue with the 2×2 max
// pool that follows it: src is the GEMM output of shape (outC, B*area)
// (sample s occupies column block [s*area, (s+1)*area), area =
// outH*outW), and dst is the pooled batch-major output of shape
// (B, outC, outH/2, outW/2). The full-resolution activation tensor is
// never materialized: one read of the GEMM output, one write of the 4×
// smaller pooled map, instead of a full-area write, a full-area read and
// the pooled write.
//
// The window is reduced on the raw GEMM values and bias+ReLU applied
// once to the winner. That is bit-identical to AddBiasUnstackInto
// (v += b; clamp below 0) followed by MaxPool2DBatchInto: x ↦ x+b and
// the ReLU clamp are monotone non-decreasing (also under float
// rounding), so max_i relu(vᵢ+b) and relu((max_i vᵢ)+b) are the same
// value — the fusion moves 4 adds and 4 clamps per window down to one
// of each. outH and outW must be even.
func AddBiasReLUPool2Into(dst, src *Tensor, batch, outC, outH, outW int, bias []float64) {
	if outH%2 != 0 || outW%2 != 0 {
		panic("tensor: AddBiasReLUPool2Into output not divisible by the 2x2 window")
	}
	area := outH * outW
	pooledW := outW / 2
	pooledLen := (outH / 2) * pooledW
	if src.Len() != outC*batch*area || dst.Len() != batch*outC*pooledLen {
		panic("tensor: AddBiasReLUPool2Into size mismatch")
	}
	if bias != nil && len(bias) != outC {
		panic("tensor: AddBiasReLUPool2Into bias length mismatch")
	}
	for oc := 0; oc < outC; oc++ {
		srcC := src.data[oc*batch*area : (oc+1)*batch*area]
		b := 0.0
		if bias != nil {
			b = bias[oc]
		}
		for s := 0; s < batch; s++ {
			seg := srcC[s*area : (s+1)*area]
			out := dst.data[(s*outC+oc)*pooledLen : (s*outC+oc+1)*pooledLen]
			oi := 0
			for oy := 0; oy < outH/2; oy++ {
				r0 := seg[2*oy*outW : 2*oy*outW+outW]
				r1 := seg[(2*oy+1)*outW : (2*oy+1)*outW+outW]
				row := out[oi : oi+pooledW : oi+pooledW]
				for ox := range row {
					x := 2 * ox
					// The builtin max compiles branchless (random
					// activations mispredict a compare-and-branch ladder
					// about half the time); for the finite values inference
					// produces it selects the same value as the ladder.
					best := max(max(r0[x], r0[x+1]), max(r1[x], r1[x+1]))
					best += b
					if best < 0 {
						best = 0
					}
					row[ox] = best
				}
				oi += pooledW
			}
		}
	}
}

// Col2Im is the adjoint of Im2Col: it scatters (accumulates) a column
// matrix of shape (inC*kH*kW, outH*outW) back into a CHW tensor of shape
// (inC, inH, inW). Overlapping positions sum, which is exactly the input
// gradient of a convolution.
func Col2Im(cols *Tensor, inC, inH, inW, kH, kW, stride int) *Tensor {
	outH := (inH-kH)/stride + 1
	outW := (inW-kW)/stride + 1
	if cols.shape[0] != inC*kH*kW || cols.shape[1] != outH*outW {
		panic("tensor: Col2Im shape mismatch")
	}
	img := New(inC, inH, inW)
	row := 0
	for c := 0; c < inC; c++ {
		chanBase := c * inH * inW
		for ky := 0; ky < kH; ky++ {
			for kx := 0; kx < kW; kx++ {
				src := cols.data[row*outH*outW : (row+1)*outH*outW]
				si := 0
				for oy := 0; oy < outH; oy++ {
					dstBase := chanBase + (oy*stride+ky)*inW + kx
					for ox := 0; ox < outW; ox++ {
						img.data[dstBase+ox*stride] += src[si]
						si++
					}
				}
				row++
			}
		}
	}
	return img
}

// Conv2DNaive is a direct four-loop reference convolution used to validate
// the im2col path in tests. It is deliberately simple and slow.
func Conv2DNaive(input, kernel *Tensor, bias []float64, stride int) *Tensor {
	outC, inC, kH, kW := kernel.shape[0], kernel.shape[1], kernel.shape[2], kernel.shape[3]
	inH, inW := input.shape[1], input.shape[2]
	outH := (inH-kH)/stride + 1
	outW := (inW-kW)/stride + 1
	out := New(outC, outH, outW)
	for oc := 0; oc < outC; oc++ {
		for oy := 0; oy < outH; oy++ {
			for ox := 0; ox < outW; ox++ {
				sum := 0.0
				if bias != nil {
					sum = bias[oc]
				}
				for ic := 0; ic < inC; ic++ {
					for ky := 0; ky < kH; ky++ {
						for kx := 0; kx < kW; kx++ {
							sum += input.At(ic, oy*stride+ky, ox*stride+kx) *
								kernel.At(oc, ic, ky, kx)
						}
					}
				}
				out.Set(sum, oc, oy, ox)
			}
		}
	}
	return out
}
