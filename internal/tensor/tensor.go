// Package tensor implements the dense numerical arrays and the handful of
// linear-algebra kernels (matrix multiply, 2-D convolution via im2col,
// max-pooling) that the neural-network substrate is built on. Everything is
// float64 and pure Go; the matrix multiply is cache-blocked and parallelized
// across goroutines because it dominates both training and inference time.
package tensor

import (
	"fmt"
	"math"
)

// Tensor is a dense, row-major multi-dimensional array of float64.
// The zero value is an empty tensor.
type Tensor struct {
	shape []int
	data  []float64
}

// New returns a zero-filled tensor with the given shape. A tensor with no
// dimensions holds a single scalar.
func New(shape ...int) *Tensor {
	n := 1
	for _, d := range shape {
		if d < 0 {
			panic(fmt.Sprintf("tensor: negative dimension %d in shape %v", d, shape))
		}
		n *= d
	}
	return &Tensor{shape: append([]int(nil), shape...), data: make([]float64, n)}
}

// FromSlice wraps data in a tensor of the given shape. The slice is used
// directly (not copied); it must have exactly the number of elements the
// shape implies.
func FromSlice(data []float64, shape ...int) *Tensor {
	n := 1
	for _, d := range shape {
		n *= d
	}
	if n != len(data) {
		panic(fmt.Sprintf("tensor: shape %v needs %d elements, got %d", shape, n, len(data)))
	}
	return &Tensor{shape: append([]int(nil), shape...), data: data}
}

// Shape returns the tensor's dimensions. The caller must not modify it.
func (t *Tensor) Shape() []int { return t.shape }

// Dim returns the size of dimension i.
func (t *Tensor) Dim(i int) int { return t.shape[i] }

// Rank returns the number of dimensions.
func (t *Tensor) Rank() int { return len(t.shape) }

// Len returns the total number of elements.
func (t *Tensor) Len() int { return len(t.data) }

// Data returns the backing slice in row-major order. Mutating it mutates
// the tensor.
func (t *Tensor) Data() []float64 { return t.data }

// Clone returns a deep copy of t.
func (t *Tensor) Clone() *Tensor {
	out := New(t.shape...)
	copy(out.data, t.data)
	return out
}

// Reshape returns a view of t with a new shape covering the same elements.
// The element count must match; the backing array is shared.
func (t *Tensor) Reshape(shape ...int) *Tensor {
	n := 1
	for _, d := range shape {
		n *= d
	}
	if n != len(t.data) {
		panic(fmt.Sprintf("tensor: cannot reshape %v (%d elems) to %v (%d elems)",
			t.shape, len(t.data), shape, n))
	}
	return &Tensor{shape: append([]int(nil), shape...), data: t.data}
}

// offset computes the row-major linear index of the given coordinates.
func (t *Tensor) offset(idx ...int) int {
	if len(idx) != len(t.shape) {
		panic(fmt.Sprintf("tensor: %d indices for rank-%d tensor", len(idx), len(t.shape)))
	}
	off := 0
	for i, v := range idx {
		if v < 0 || v >= t.shape[i] {
			panic(fmt.Sprintf("tensor: index %d out of range [0,%d) in dim %d", v, t.shape[i], i))
		}
		off = off*t.shape[i] + v
	}
	return off
}

// At returns the element at the given coordinates.
func (t *Tensor) At(idx ...int) float64 { return t.data[t.offset(idx...)] }

// Set stores v at the given coordinates.
func (t *Tensor) Set(v float64, idx ...int) { t.data[t.offset(idx...)] = v }

// Fill sets every element to v.
func (t *Tensor) Fill(v float64) {
	for i := range t.data {
		t.data[i] = v
	}
}

// Zero resets every element to 0.
func (t *Tensor) Zero() {
	for i := range t.data {
		t.data[i] = 0
	}
}

// AddInto adds other into t element-wise (t += other).
func (t *Tensor) AddInto(other *Tensor) {
	if len(t.data) != len(other.data) {
		panic("tensor: AddInto size mismatch")
	}
	for i, v := range other.data {
		t.data[i] += v
	}
}

// Scale multiplies every element by s.
func (t *Tensor) Scale(s float64) {
	for i := range t.data {
		t.data[i] *= s
	}
}

// AxpyInto computes t += alpha*other.
func (t *Tensor) AxpyInto(alpha float64, other *Tensor) {
	if len(t.data) != len(other.data) {
		panic("tensor: AxpyInto size mismatch")
	}
	for i, v := range other.data {
		t.data[i] += alpha * v
	}
}

// Dot returns the inner product of t and other viewed as flat vectors.
func (t *Tensor) Dot(other *Tensor) float64 {
	if len(t.data) != len(other.data) {
		panic("tensor: Dot size mismatch")
	}
	sum := 0.0
	for i, v := range t.data {
		sum += v * other.data[i]
	}
	return sum
}

// MaxAbs returns the largest absolute element value, or 0 for an empty
// tensor.
func (t *Tensor) MaxAbs() float64 {
	m := 0.0
	for _, v := range t.data {
		if a := math.Abs(v); a > m {
			m = a
		}
	}
	return m
}

// Sum returns the sum of all elements.
func (t *Tensor) Sum() float64 {
	s := 0.0
	for _, v := range t.data {
		s += v
	}
	return s
}

// ArgMax returns the flat index of the largest element. Ties resolve to the
// lowest index. It panics on an empty tensor.
func (t *Tensor) ArgMax() int {
	if len(t.data) == 0 {
		panic("tensor: ArgMax of empty tensor")
	}
	bestIdx, bestVal := 0, t.data[0]
	for i := 1; i < len(t.data); i++ {
		if t.data[i] > bestVal {
			bestIdx, bestVal = i, t.data[i]
		}
	}
	return bestIdx
}

// SameShape reports whether t and other have identical shapes.
func (t *Tensor) SameShape(other *Tensor) bool {
	if len(t.shape) != len(other.shape) {
		return false
	}
	for i, d := range t.shape {
		if other.shape[i] != d {
			return false
		}
	}
	return true
}

// String renders a compact description, useful in error messages.
func (t *Tensor) String() string {
	return fmt.Sprintf("Tensor%v", t.shape)
}
