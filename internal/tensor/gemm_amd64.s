// AVX2+FMA micro kernel of the blocked GEMM: one 4×8 C tile accumulated
// over a k panel, reading B from its packed micro panel (kb rows of 8
// contiguous float64). Per C element the accumulation is a chain of
// fused multiply-adds in ascending k — the same correctly-rounded
// sequence the math.FMA scalar fallback performs, so vector and scalar
// paths are bit-identical.

#include "textflag.h"

// func gemm4x8asm(a *float64, lda int, pk *float64, kb int, c *float64, ldc int, first bool)
// a:   first element of row 0 of the A panel (rows lda elements apart)
// pk:  packed B micro panel, kb rows of 8 values
// c:   C tile origin (rows ldc elements apart)
// first: store the panel subtotal (overwrite) instead of adding it
TEXT ·gemm4x8asm(SB), NOSPLIT, $0-49
	MOVQ a+0(FP), R8
	MOVQ lda+8(FP), R9
	SHLQ $3, R9            // row stride in bytes
	LEAQ (R8)(R9*1), R10   // a row 1
	LEAQ (R10)(R9*1), R11  // a row 2
	LEAQ (R11)(R9*1), R12  // a row 3
	MOVQ pk+16(FP), SI
	MOVQ kb+24(FP), CX

	VXORPD Y0, Y0, Y0      // c[0][0:4]
	VXORPD Y1, Y1, Y1      // c[0][4:8]
	VXORPD Y2, Y2, Y2      // c[1][0:4]
	VXORPD Y3, Y3, Y3      // c[1][4:8]
	VXORPD Y4, Y4, Y4      // c[2][0:4]
	VXORPD Y5, Y5, Y5      // c[2][4:8]
	VXORPD Y6, Y6, Y6      // c[3][0:4]
	VXORPD Y7, Y7, Y7      // c[3][4:8]

loop:
	VMOVUPD (SI), Y8       // b[t][0:4]
	VMOVUPD 32(SI), Y9     // b[t][4:8]
	ADDQ    $64, SI

	VBROADCASTSD (R8), Y10
	VFMADD231PD  Y8, Y10, Y0
	VFMADD231PD  Y9, Y10, Y1
	VBROADCASTSD (R10), Y10
	VFMADD231PD  Y8, Y10, Y2
	VFMADD231PD  Y9, Y10, Y3
	VBROADCASTSD (R11), Y10
	VFMADD231PD  Y8, Y10, Y4
	VFMADD231PD  Y9, Y10, Y5
	VBROADCASTSD (R12), Y10
	VFMADD231PD  Y8, Y10, Y6
	VFMADD231PD  Y9, Y10, Y7

	ADDQ $8, R8
	ADDQ $8, R10
	ADDQ $8, R11
	ADDQ $8, R12
	DECQ CX
	JNZ  loop

	MOVQ    c+32(FP), DI
	MOVQ    ldc+40(FP), DX
	SHLQ    $3, DX
	MOVBLZX first+48(FP), AX
	TESTL   AX, AX
	JZ      accum

	// first panel: overwrite C with the subtotals
	VMOVUPD Y0, (DI)
	VMOVUPD Y1, 32(DI)
	ADDQ    DX, DI
	VMOVUPD Y2, (DI)
	VMOVUPD Y3, 32(DI)
	ADDQ    DX, DI
	VMOVUPD Y4, (DI)
	VMOVUPD Y5, 32(DI)
	ADDQ    DX, DI
	VMOVUPD Y6, (DI)
	VMOVUPD Y7, 32(DI)
	JMP     done

accum:
	// later panels: C += subtotal
	VMOVUPD (DI), Y8
	VADDPD  Y0, Y8, Y8
	VMOVUPD Y8, (DI)
	VMOVUPD 32(DI), Y9
	VADDPD  Y1, Y9, Y9
	VMOVUPD Y9, 32(DI)
	ADDQ    DX, DI
	VMOVUPD (DI), Y8
	VADDPD  Y2, Y8, Y8
	VMOVUPD Y8, (DI)
	VMOVUPD 32(DI), Y9
	VADDPD  Y3, Y9, Y9
	VMOVUPD Y9, 32(DI)
	ADDQ    DX, DI
	VMOVUPD (DI), Y8
	VADDPD  Y4, Y8, Y8
	VMOVUPD Y8, (DI)
	VMOVUPD 32(DI), Y9
	VADDPD  Y5, Y9, Y9
	VMOVUPD Y9, 32(DI)
	ADDQ    DX, DI
	VMOVUPD (DI), Y8
	VADDPD  Y6, Y8, Y8
	VMOVUPD Y8, (DI)
	VMOVUPD 32(DI), Y9
	VADDPD  Y7, Y9, Y9
	VMOVUPD Y9, 32(DI)

done:
	VZEROUPPER
	RET

// func cpuidex(eaxIn, ecxIn uint32) (eax, ebx, ecx, edx uint32)
TEXT ·cpuidex(SB), NOSPLIT, $0-24
	MOVL eaxIn+0(FP), AX
	MOVL ecxIn+4(FP), CX
	CPUID
	MOVL AX, eax+8(FP)
	MOVL BX, ebx+12(FP)
	MOVL CX, ecx+16(FP)
	MOVL DX, edx+20(FP)
	RET

// func xgetbv0() uint64
TEXT ·xgetbv0(SB), NOSPLIT, $0-8
	XORL CX, CX
	XGETBV
	SHLQ $32, DX
	ORQ  DX, AX
	MOVQ AX, ret+0(FP)
	RET
