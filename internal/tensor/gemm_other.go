//go:build !amd64

package tensor

// Non-amd64 builds always use the scalar math.FMA micro kernel, which is
// bit-identical to the AVX2 path (fused multiply-add is correctly
// rounded in either form).
const useAVX2 = false

func gemmTile4x8(a []float64, ai, lda int, pk []float64, kb int, c []float64, ci, ldc int, first bool) {
	gemmTile4x8go(a, ai, lda, pk, kb, c, ci, ldc, first)
}
