package tensor

import "fmt"

// Pool recycles scratch tensors so the batched inference hot path is
// allocation-free after warm-up: every intermediate a ForwardBatch pass
// needs (stacked inputs, im2col matrices, GEMM outputs, per-layer
// activations) is drawn from a Pool and returned when the next layer has
// consumed it. Buffers are keyed by exact element count, which converges
// quickly because a serving pipeline sees the same layer shapes batch
// after batch.
//
// A Pool is NOT safe for concurrent use; give each serving goroutine its
// own (the monitor keeps a sync.Pool of them). A backing array must be
// Put back at most once — returning both a tensor and a Reshape view of
// it corrupts later Gets.
type Pool struct {
	free map[int][][]float64

	gets, misses int
}

// NewPool returns an empty scratch pool.
func NewPool() *Pool { return &Pool{free: make(map[int][][]float64)} }

// Get returns a tensor of the given shape backed by a recycled buffer
// when one of the right size is available, or a fresh allocation
// otherwise. The contents are undefined — callers must fully overwrite
// them (every kernel in this package does).
func (p *Pool) Get(shape ...int) *Tensor {
	n := 1
	for _, d := range shape {
		if d < 0 {
			panic(fmt.Sprintf("tensor: negative dimension %d in shape %v", d, shape))
		}
		n *= d
	}
	p.gets++
	if bucket := p.free[n]; len(bucket) > 0 {
		data := bucket[len(bucket)-1]
		p.free[n] = bucket[:len(bucket)-1]
		return &Tensor{shape: append([]int(nil), shape...), data: data}
	}
	p.misses++
	return &Tensor{shape: append([]int(nil), shape...), data: make([]float64, n)}
}

// Put returns t's backing array to the pool for reuse. Put accepts nil
// and empty tensors as no-ops. The caller must not touch t (or any view
// sharing its backing array) afterwards.
func (p *Pool) Put(t *Tensor) {
	if t == nil || len(t.data) == 0 {
		return
	}
	p.free[len(t.data)] = append(p.free[len(t.data)], t.data)
}

// Stats reports how many Gets the pool has served and how many had to
// allocate. A warm serving loop should show misses plateau while gets
// keeps growing.
func (p *Pool) Stats() (gets, misses int) { return p.gets, p.misses }
