package tensor

import (
	"math"
	"testing"
	"testing/quick"

	"napmon/internal/rng"
)

func TestNewZeroFilled(t *testing.T) {
	a := New(2, 3, 4)
	if a.Len() != 24 {
		t.Fatalf("Len = %d, want 24", a.Len())
	}
	for _, v := range a.Data() {
		if v != 0 {
			t.Fatal("New tensor not zero-filled")
		}
	}
}

func TestAtSetRoundTrip(t *testing.T) {
	a := New(3, 4)
	a.Set(7.5, 2, 1)
	if got := a.At(2, 1); got != 7.5 {
		t.Fatalf("At(2,1) = %v, want 7.5", got)
	}
	if got := a.Data()[2*4+1]; got != 7.5 {
		t.Fatalf("row-major layout violated: data[9] = %v", got)
	}
}

func TestOffsetRowMajor(t *testing.T) {
	a := New(2, 3, 5)
	a.Set(1, 1, 2, 4)
	if a.Data()[1*15+2*5+4] != 1 {
		t.Fatal("offset not row-major")
	}
}

func TestAtPanicsOutOfRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(2, 2).At(2, 0)
}

func TestFromSliceShares(t *testing.T) {
	d := []float64{1, 2, 3, 4}
	a := FromSlice(d, 2, 2)
	d[3] = 9
	if a.At(1, 1) != 9 {
		t.Fatal("FromSlice must not copy")
	}
}

func TestFromSlicePanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	FromSlice([]float64{1, 2, 3}, 2, 2)
}

func TestCloneIndependent(t *testing.T) {
	a := New(2, 2)
	a.Fill(3)
	b := a.Clone()
	b.Set(0, 0, 0)
	if a.At(0, 0) != 3 {
		t.Fatal("Clone shares storage")
	}
}

func TestReshapeSharesStorage(t *testing.T) {
	a := New(2, 6)
	b := a.Reshape(3, 4)
	b.Set(5, 2, 3)
	if a.At(1, 5) != 5 {
		t.Fatal("Reshape must share storage")
	}
}

func TestReshapePanicsOnCount(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(2, 3).Reshape(5)
}

func TestArgMax(t *testing.T) {
	a := FromSlice([]float64{1, 9, 3, 9}, 4)
	if got := a.ArgMax(); got != 1 {
		t.Fatalf("ArgMax = %d, want 1 (first of tie)", got)
	}
}

func TestSumScaleAxpy(t *testing.T) {
	a := FromSlice([]float64{1, 2, 3}, 3)
	b := FromSlice([]float64{10, 20, 30}, 3)
	a.AxpyInto(0.5, b)
	want := []float64{6, 12, 18}
	for i, w := range want {
		if a.Data()[i] != w {
			t.Fatalf("Axpy[%d] = %v, want %v", i, a.Data()[i], w)
		}
	}
	a.Scale(2)
	if a.Sum() != 72 {
		t.Fatalf("Sum = %v, want 72", a.Sum())
	}
}

func TestDotAndMaxAbs(t *testing.T) {
	a := FromSlice([]float64{1, -4, 2}, 3)
	b := FromSlice([]float64{2, 1, 3}, 3)
	if got := a.Dot(b); got != 4 {
		t.Fatalf("Dot = %v, want 4", got)
	}
	if got := a.MaxAbs(); got != 4 {
		t.Fatalf("MaxAbs = %v, want 4", got)
	}
}

func randTensor(r *rng.Source, shape ...int) *Tensor {
	t := New(shape...)
	for i := range t.Data() {
		t.Data()[i] = r.Range(-1, 1)
	}
	return t
}

func matmulNaive(a, b *Tensor) *Tensor {
	m, k, n := a.Dim(0), a.Dim(1), b.Dim(1)
	c := New(m, n)
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			sum := 0.0
			for p := 0; p < k; p++ {
				sum += a.At(i, p) * b.At(p, j)
			}
			c.Set(sum, i, j)
		}
	}
	return c
}

func tensorsClose(t *testing.T, got, want *Tensor, tol float64) {
	t.Helper()
	if !got.SameShape(want) {
		t.Fatalf("shape mismatch: %v vs %v", got.Shape(), want.Shape())
	}
	for i := range got.Data() {
		if math.Abs(got.Data()[i]-want.Data()[i]) > tol {
			t.Fatalf("elem %d: got %v, want %v", i, got.Data()[i], want.Data()[i])
		}
	}
}

func TestMatMulMatchesNaive(t *testing.T) {
	r := rng.New(1)
	for _, dims := range [][3]int{{1, 1, 1}, {2, 3, 4}, {5, 7, 3}, {16, 16, 16}, {33, 20, 41}} {
		a := randTensor(r, dims[0], dims[1])
		b := randTensor(r, dims[1], dims[2])
		tensorsClose(t, MatMul(a, b), matmulNaive(a, b), 1e-12)
	}
}

func TestMatMulLargeParallelPath(t *testing.T) {
	r := rng.New(2)
	a := randTensor(r, 70, 64)
	b := randTensor(r, 64, 70)
	tensorsClose(t, MatMul(a, b), matmulNaive(a, b), 1e-10)
}

func TestMatMulIdentity(t *testing.T) {
	r := rng.New(3)
	a := randTensor(r, 6, 6)
	id := New(6, 6)
	for i := 0; i < 6; i++ {
		id.Set(1, i, i)
	}
	tensorsClose(t, MatMul(a, id), a, 1e-14)
	tensorsClose(t, MatMul(id, a), a, 1e-14)
}

func TestMatMulPanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	MatMul(New(2, 3), New(4, 2))
}

func TestMatMulTransA(t *testing.T) {
	r := rng.New(4)
	a := randTensor(r, 7, 5) // (k=7, m=5)
	b := randTensor(r, 7, 6)
	// Build Aᵀ explicitly and compare.
	at := New(5, 7)
	for i := 0; i < 7; i++ {
		for j := 0; j < 5; j++ {
			at.Set(a.At(i, j), j, i)
		}
	}
	tensorsClose(t, MatMulTransA(a, b), matmulNaive(at, b), 1e-12)
}

func TestMatMulTransB(t *testing.T) {
	r := rng.New(5)
	a := randTensor(r, 5, 7)
	b := randTensor(r, 6, 7) // (n=6, k=7)
	bt := New(7, 6)
	for i := 0; i < 6; i++ {
		for j := 0; j < 7; j++ {
			bt.Set(b.At(i, j), j, i)
		}
	}
	tensorsClose(t, MatMulTransB(a, b), matmulNaive(a, bt), 1e-12)
}

func TestMatVec(t *testing.T) {
	a := FromSlice([]float64{1, 2, 3, 4, 5, 6}, 2, 3)
	y := MatVec(a, []float64{1, 0, -1})
	if y[0] != -2 || y[1] != -2 {
		t.Fatalf("MatVec = %v, want [-2 -2]", y)
	}
}

// Property: (A×B)×C == A×(B×C) within floating-point tolerance.
func TestMatMulAssociativityProperty(t *testing.T) {
	r := rng.New(6)
	check := func(seed uint16) bool {
		rr := rng.New(uint64(seed) + r.Uint64()%7)
		m, k, n, q := 2+rr.Intn(5), 2+rr.Intn(5), 2+rr.Intn(5), 2+rr.Intn(5)
		a := randTensor(rr, m, k)
		b := randTensor(rr, k, n)
		c := randTensor(rr, n, q)
		left := MatMul(MatMul(a, b), c)
		right := MatMul(a, MatMul(b, c))
		for i := range left.Data() {
			if math.Abs(left.Data()[i]-right.Data()[i]) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestConv2DMatchesNaive(t *testing.T) {
	r := rng.New(7)
	cases := []struct{ inC, inH, inW, outC, k, stride int }{
		{1, 8, 8, 3, 3, 1},
		{2, 9, 7, 4, 3, 2},
		{3, 12, 12, 5, 5, 1},
		{1, 5, 5, 1, 5, 1},
		{4, 10, 10, 2, 2, 2},
	}
	for _, tc := range cases {
		input := randTensor(r, tc.inC, tc.inH, tc.inW)
		kernel := randTensor(r, tc.outC, tc.inC, tc.k, tc.k)
		bias := make([]float64, tc.outC)
		for i := range bias {
			bias[i] = r.Range(-1, 1)
		}
		got := Conv2D(input, kernel, bias, tc.stride)
		want := Conv2DNaive(input, kernel, bias, tc.stride)
		tensorsClose(t, got, want, 1e-10)
	}
}

func TestConv2DNilBias(t *testing.T) {
	r := rng.New(8)
	input := randTensor(r, 2, 6, 6)
	kernel := randTensor(r, 3, 2, 3, 3)
	tensorsClose(t, Conv2D(input, kernel, nil, 1), Conv2DNaive(input, kernel, nil, 1), 1e-10)
}

func TestIm2ColShape(t *testing.T) {
	input := New(2, 6, 8)
	cols := Im2Col(input, 3, 3, 1)
	if cols.Dim(0) != 2*3*3 || cols.Dim(1) != 4*6 {
		t.Fatalf("Im2Col shape = %v", cols.Shape())
	}
}

func TestCol2ImAdjoint(t *testing.T) {
	// <Im2Col(x), y> == <x, Col2Im(y)> — the defining adjoint property.
	r := rng.New(9)
	x := randTensor(r, 2, 6, 6)
	cols := Im2Col(x, 3, 3, 1)
	y := randTensor(r, cols.Dim(0), cols.Dim(1))
	lhs := cols.Dot(y)
	back := Col2Im(y, 2, 6, 6, 3, 3, 1)
	rhs := x.Dot(back)
	if math.Abs(lhs-rhs) > 1e-9 {
		t.Fatalf("adjoint mismatch: %v vs %v", lhs, rhs)
	}
}

func TestMaxPool2D(t *testing.T) {
	input := FromSlice([]float64{
		1, 2, 3, 4,
		5, 6, 7, 8,
		9, 10, 11, 12,
		13, 14, 15, 16,
	}, 1, 4, 4)
	out, argmax := MaxPool2D(input, 2)
	want := []float64{6, 8, 14, 16}
	for i, w := range want {
		if out.Data()[i] != w {
			t.Fatalf("pool[%d] = %v, want %v", i, out.Data()[i], w)
		}
	}
	wantIdx := []int{5, 7, 13, 15}
	for i, w := range wantIdx {
		if argmax[i] != w {
			t.Fatalf("argmax[%d] = %d, want %d", i, argmax[i], w)
		}
	}
}

func TestMaxPoolBackwardScatter(t *testing.T) {
	input := FromSlice([]float64{
		1, 2,
		3, 4,
	}, 1, 2, 2)
	out, argmax := MaxPool2D(input, 2)
	if out.At(0, 0, 0) != 4 {
		t.Fatal("pool max wrong")
	}
	grad := FromSlice([]float64{2.5}, 1, 1, 1)
	gin := MaxPool2DBackward(grad, argmax, 1, 2, 2)
	want := []float64{0, 0, 0, 2.5}
	for i, w := range want {
		if gin.Data()[i] != w {
			t.Fatalf("gradIn[%d] = %v, want %v", i, gin.Data()[i], w)
		}
	}
}

func TestMaxPoolPanicsOnIndivisible(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	MaxPool2D(New(1, 5, 4), 2)
}

// Property: max pooling of a tensor never produces values absent from it,
// and each output is >= every element of its window.
func TestMaxPoolProperty(t *testing.T) {
	check := func(seed uint32) bool {
		r := rng.New(uint64(seed))
		in := randTensor(r, 2, 4, 6)
		out, argmax := MaxPool2D(in, 2)
		for i, v := range out.Data() {
			if in.Data()[argmax[i]] != v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkMatMul64(b *testing.B) {
	r := rng.New(1)
	x := randTensor(r, 64, 64)
	y := randTensor(r, 64, 64)
	dst := New(64, 64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MatMulInto(dst, x, y)
	}
}

func BenchmarkMatMul256(b *testing.B) {
	r := rng.New(1)
	x := randTensor(r, 256, 256)
	y := randTensor(r, 256, 256)
	dst := New(256, 256)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MatMulInto(dst, x, y)
	}
}

func BenchmarkConv2D(b *testing.B) {
	r := rng.New(1)
	input := randTensor(r, 1, 28, 28)
	kernel := randTensor(r, 40, 1, 5, 5)
	bias := make([]float64, 40)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Conv2D(input, kernel, bias, 1)
	}
}
