// Package napmon is a Go implementation of runtime neuron activation
// pattern monitoring (Cheng, Nührenberg, Yasuoka — "Runtime Monitoring
// Neuron Activation Patterns", DATE 2019).
//
// A monitor answers, at inference time, whether a neural network's
// classification decision is supported by prior similarities in training:
// after training, the training set is fed through the network once more
// and the binary ReLU on/off activation pattern of a close-to-output layer
// is recorded per class in a binary decision diagram (BDD). Each class's
// pattern set is enlarged to its γ-comfort zone — every pattern within
// Hamming distance γ of a visited one — using BDD existential
// quantification. In deployment, an input whose activation pattern falls
// outside the predicted class's comfort zone is flagged as out-of-pattern:
// the network is extrapolating beyond its training experience.
//
// The package exposes the full workflow:
//
//	net, _ := napmon.BuildNetwork(specs, rng) // or napmon.LoadModel
//	napmon.Train(net, samples, cfg)          // SGD training
//	mon, _ := napmon.BuildMonitor(net, samples, napmon.Config{
//		Layer: 3,   // a hidden ReLU layer
//		Gamma: 2,   // Hamming enlargement
//	})
//	v := mon.Watch(net, input)
//	if v.OutOfPattern {
//		// decision not supported by training data
//	}
//
// For serving under heavy traffic, use the batched front end: the first
// WatchBatch call freezes the monitor's BDD managers read-only and
// compiles every comfort zone into a flat branch-program query plan,
// after which whole micro-batches flow through the batched GEMM
// inference path (stacked im2col, blocked matrix multiply, fused
// bias+ReLU and bias+ReLU+maxpool epilogues, pooled allocation-free
// scratch — see DESIGN.md, "Batched inference") with membership queries
// grouped per predicted class against the compiled plans (DESIGN.md,
// "Compiled query plans + sharded build"), and may be issued from any
// number of goroutines concurrently (safety by construction — the
// serving path performs no writes; see DESIGN.md, "Freeze-then-serve
// concurrency model"):
//
//	verdicts := napmon.WatchBatch(net, mon, inputs)
//
// For a long-lived service, napmon.Serve wraps the same fast path in a
// streaming front end: an async bounded request queue with result
// futures, a micro-batching coalescer (flush at MaxBatch requests or
// after MaxDelay, whichever first) and per-lane network replicas, so
// trickle traffic and bulk traffic from many concurrent users both ride
// full batches:
//
//	srv, _ := napmon.Serve(net, mon, napmon.ServerConfig{
//		MaxBatch: 64,
//		MaxDelay: 2 * time.Millisecond,
//	})
//	fut, err := srv.Submit(input) // safe from any goroutine
//	if err == nil {
//		if v, err := fut.Wait(); err == nil && v.OutOfPattern {
//			// decision not supported by training data
//		}
//	}
//	srv.Shutdown(ctx) // drains accepted requests, then stops
//
// A frozen monitor is not a static artifact: the online-update path
// absorbs newly observed activation patterns while serving continues
// (serve-while-retraining). Monitor.Update / Monitor.UpdateBatch
// shadow-build the touched comfort zones on writable clones and publish
// the result as a new serving epoch with one atomic pointer swap; each
// batch pins one epoch (every Verdict carries its epoch id), retired
// epochs are released after their readers drain, and the updated monitor
// answers exactly like one built from all patterns in one shot.
// Monitor.UpdateGamma re-levels γ the same way — SetGamma errors once
// frozen. Through a Server the same flow is Server.Update (observable
// via ServerConfig.OnEpochSwap and ServerStats.Epoch):
//
//	mon.Freeze()                      // epoch 1 starts serving
//	epoch, err := mon.Update(class, pattern) // publishes epoch 2
//
// See the Monitor.Update example and DESIGN.md, "Online updates: epochs,
// grace periods".
//
// The cmd/napmon-serve binary exposes this server over HTTP/JSON
// (POST /watch, POST /learn — the online-update feedback endpoint,
// GET /stats, GET /healthz) with graceful shutdown.
//
// Everything is implemented from scratch on the standard library: the
// tensor math and neural-network substrate, the ROBDD engine (open-
// addressed unique table, lossy computed table, cache statistics — see
// DESIGN.md, "BDD manager internals"), the synthetic MNIST-like/
// GTSRB-like datasets and the highway front-car case study the
// experiments run on. See DESIGN.md for the system inventory; every PR
// is gated by .github/workflows/ci.yml, mirrored locally by `make ci`:
// gofmt, vet + staticcheck (make lint), build, race-detector tests and a
// -benchmem benchmark smoke run on a Go 1.22/1.23 matrix, plus a
// bench-regression job (make bench-json records BENCH_PR3.json and make
// bench-check fails >1.3x ns/op regressions of the serving and update
// benchmarks against ci/bench-baseline.json), a fuzz-smoke job (make
// test-fuzz: the differential BDD fuzzer and the pattern wire-format
// round trip), a coverage gate (make cover-check against
// ci/coverage-baseline.txt) and a serve-demo end-to-end daemon smoke job
// (make serve-demo).
package napmon
