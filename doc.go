// Package napmon is a Go implementation of runtime neuron activation
// pattern monitoring (Cheng, Nührenberg, Yasuoka — "Runtime Monitoring
// Neuron Activation Patterns", DATE 2019).
//
// A monitor answers, at inference time, whether a neural network's
// classification decision is supported by prior similarities in training:
// after training, the training set is fed through the network once more
// and the binary ReLU on/off activation pattern of a close-to-output layer
// is recorded per class in a binary decision diagram (BDD). Each class's
// pattern set is enlarged to its γ-comfort zone — every pattern within
// Hamming distance γ of a visited one — using BDD existential
// quantification. In deployment, an input whose activation pattern falls
// outside the predicted class's comfort zone is flagged as out-of-pattern:
// the network is extrapolating beyond its training experience.
//
// The package exposes the full workflow:
//
//	net, _ := napmon.BuildNetwork(specs, rng) // or napmon.LoadModel
//	napmon.Train(net, samples, cfg)          // SGD training
//	mon, _ := napmon.BuildMonitor(net, samples, napmon.Config{
//		Layer: 3,   // a hidden ReLU layer
//		Gamma: 2,   // Hamming enlargement
//	})
//	v := mon.Watch(net, input)
//	if v.OutOfPattern {
//		// decision not supported by training data
//	}
//
// Everything is implemented from scratch on the standard library: the
// tensor math and neural-network substrate, the ROBDD engine, the
// synthetic MNIST-like/GTSRB-like datasets and the highway front-car case
// study the experiments run on. See DESIGN.md for the system inventory and
// EXPERIMENTS.md for the reproduction of the paper's tables and figures.
package napmon
