// Package napmon is a Go implementation of runtime neuron activation
// pattern monitoring (Cheng, Nührenberg, Yasuoka — "Runtime Monitoring
// Neuron Activation Patterns", DATE 2019).
//
// A monitor answers, at inference time, whether a neural network's
// classification decision is supported by prior similarities in training:
// after training, the training set is fed through the network once more
// and the binary ReLU on/off activation pattern of a close-to-output layer
// is recorded per class in a binary decision diagram (BDD). Each class's
// pattern set is enlarged to its γ-comfort zone — every pattern within
// Hamming distance γ of a visited one — using BDD existential
// quantification. In deployment, an input whose activation pattern falls
// outside the predicted class's comfort zone is flagged as out-of-pattern:
// the network is extrapolating beyond its training experience.
//
// The package exposes the full workflow:
//
//	net, _ := napmon.BuildNetwork(specs, rng) // or napmon.LoadModel
//	napmon.Train(net, samples, cfg)          // SGD training
//	mon, _ := napmon.BuildMonitor(net, samples, napmon.Config{
//		Layer: 3,   // a hidden ReLU layer
//		Gamma: 2,   // Hamming enlargement
//	})
//	v := mon.Watch(net, input)
//	if v.OutOfPattern {
//		// decision not supported by training data
//	}
//
// For serving under heavy traffic, use the batched front end: the first
// WatchBatch call freezes the monitor's BDD managers read-only and
// compiles every comfort zone into a flat branch-program query plan,
// after which whole micro-batches flow through the batched GEMM
// inference path (stacked im2col, blocked matrix multiply, fused
// bias+ReLU and bias+ReLU+maxpool epilogues, pooled allocation-free
// scratch — see DESIGN.md, "Batched inference") with membership queries
// grouped per predicted class against the compiled plans (DESIGN.md,
// "Compiled query plans + sharded build"). Membership batches 32 wide
// or more are answered bit-sliced — the branch program is walked once
// per 64 queries over transposed lane masks rather than once per query
// (DESIGN.md, "Bit-sliced zone evaluation"); narrower batches keep the
// scalar walk, whose per-query cost beats the transpose overhead.
// WatchBatch may be issued from any
// number of goroutines concurrently (safety by construction — the
// serving path performs no writes; see DESIGN.md, "Freeze-then-serve
// concurrency model"):
//
//	verdicts := napmon.WatchBatch(net, mon, inputs)
//
// For a long-lived service, napmon.Serve wraps the same fast path in a
// streaming front end: an async bounded request queue with result
// futures, a micro-batching coalescer (flush at MaxBatch requests or
// after MaxDelay, whichever first) and per-lane network replicas, so
// trickle traffic and bulk traffic from many concurrent users both ride
// full batches:
//
//	srv, _ := napmon.Serve(net, mon, napmon.ServerConfig{
//		MaxBatch: 64,
//		MaxDelay: 2 * time.Millisecond,
//	})
//	fut, err := srv.Submit(input) // safe from any goroutine
//	if err == nil {
//		if v, err := fut.Wait(); err == nil && v.OutOfPattern {
//			// decision not supported by training data
//		}
//	}
//	srv.Shutdown(ctx) // drains accepted requests, then stops
//
// A frozen monitor is not a static artifact: the online-update path
// absorbs newly observed activation patterns while serving continues
// (serve-while-retraining). Monitor.Update / Monitor.UpdateBatch
// shadow-build the touched comfort zones on writable clones and publish
// the result as a new serving epoch with one atomic pointer swap; each
// batch pins one epoch (every Verdict carries its epoch id), retired
// epochs are released after their readers drain, and the updated monitor
// answers exactly like one built from all patterns in one shot.
// Monitor.UpdateGamma re-levels γ the same way — SetGamma errors once
// frozen. Through a Server the same flow is Server.Update (observable
// via ServerConfig.OnEpochSwap and ServerStats.Epoch):
//
//	mon.Freeze()                      // epoch 1 starts serving
//	epoch, err := mon.Update(class, pattern) // publishes epoch 2
//
// See the Monitor.Update example and DESIGN.md, "Online updates: epochs,
// grace periods".
//
// # Fleet serving: registry, snapshots, replication
//
// One process can serve many models. napmon.ServeFleet (or
// napmon.NewRegistry + Registry.Load) runs a named fleet of
// (network, monitor, server-config) tenants behind one Registry, each
// with its own serving lane, queue caps and per-tenant metrics:
//
//	fleet, _ := napmon.ServeFleet(napmon.RegistryConfig{}, map[string]napmon.TenantConfig{
//		"traffic-signs": {Net: signNet, Mon: signMon},
//		"front-car":     {Net: carNet, Mon: carMon, Serve: napmon.ServerConfig{MaxBatch: 32}},
//	})
//	t, _ := fleet.Acquire("traffic-signs") // pins the tenant against unload
//	fut, _ := t.Server().Submit(input)
//	t.Release()
//
// Tenants hot-load and hot-unload while traffic flows: lookups pin a
// tenant, and Unload publishes the removal immediately but drains the
// server through a grace period, so in-flight batches always complete.
// napmon.Serve is the one-tenant form — it loads the DefaultTenant of a
// fresh registry, so single-model callers keep the old API unchanged.
//
// A frozen monitor serializes to a compact snapshot (compiled zone
// query plans + bit-packed patterns, checksummed) with
// Monitor.Snapshot / Tenant.Snapshot, and loads back frozen at the same
// epoch with napmon.LoadSnapshot / Registry.LoadSnapshot. Each tenant
// also keeps a bounded epoch-keyed delta log of its online updates
// (Tenant.DeltasSince, framed by EncodeDeltaStream); a follower that
// warm-starts from a snapshot and applies the stream in order with
// Tenant.ApplyDelta converges bit-for-bit with the leader's monitor —
// this is the replication protocol behind `napmon-serve -follow`. See
// DESIGN.md, "Multi-tenant registry, snapshots, replication".
//
// The cmd/napmon-serve binary exposes all of this over HTTP/JSON: the
// versioned tenant-scoped API (POST /v1/models/{name}/watch and /learn,
// GET /v1/models/{name}/stats, GET /v1/models, PUT/DELETE
// /v1/models/{name} for hot load/unload, plus the replication endpoints
// GET /v1/models/{name}/snapshot and /deltas?since=N), the legacy
// unprefixed routes (POST /watch, POST /learn, GET /stats) as aliases
// for the default tenant that answer with a Deprecation header, and
// GET /metrics, GET /healthz, with graceful shutdown. Started with
// -follow <leader-url> it warm-starts every tenant from leader
// snapshots and polls the delta streams, serving read-only.
//
// # Observability
//
// Every serving surface renders one internal/obs registry as
// Prometheus text: GET /metrics on cmd/napmon-serve, and on
// cmd/napmon-gateway's -admin listener (both mount net/http/pprof
// behind an opt-in -pprof flag). Recording is lock-free — counters are
// atomic adds, latency distributions land in log-bucketed atomic
// histograms (bounded relative quantile error), and metrics that
// already exist as atomics register as scrape-time callbacks, so the
// hot path pays nothing for being observable. The serve pipeline
// stamps every request through its stages; /stats and /metrics report
// p50/p99 per stage. The exposed series:
//
//	napmon_requests_submitted_total        counter    requests accepted into the queue
//	napmon_requests_served_total           counter    requests answered with a verdict
//	napmon_requests_rejected_total         counter    submits refused (server closed)
//	napmon_requests_shed_total             counter    non-blocking submits refused (queue full)
//	napmon_serve_expired_total             counter    queued requests shed because their context
//	                                                  expired before inference (SubmitCtx)
//	napmon_batches_total                   counter    micro-batches dispatched to lanes
//	napmon_queue_depth                     gauge      requests waiting in the bounded queue
//	napmon_lanes                           gauge      serving lanes (network replicas)
//	napmon_stage_duration_seconds          histogram  per-stage latency, stage label one of
//	                                                  queue|coalesce|total (per request) or
//	                                                  dispatch|inference|zone_query (per batch)
//	napmon_watched_total                   counter    verdicts per monitored class (class label)
//	napmon_oop_total                       counter    out-of-pattern verdicts per class (class label)
//	napmon_unmonitored_total               counter    verdicts the monitor abstained on
//	napmon_inference_seconds_total         counter    cumulative forward-pass + extraction time
//	napmon_zone_query_seconds_total        counter    cumulative zone membership query time
//	napmon_gamma_level                     gauge      Hamming enlargement of the serving epoch
//	napmon_epoch                           gauge      id of the serving epoch
//	napmon_epoch_swaps_total               counter    epochs published by online updates
//	napmon_epoch_swap_seconds_total        counter    cumulative epoch publication wall time
//	napmon_epoch_swap_last_seconds         gauge      wall time of the latest publication
//	napmon_zone_plans_recompiled_total     counter    zone query plans rebuilt by updates
//	napmon_patterns_absorbed_total         counter    activation patterns absorbed by updates
//	napmon_epochs_released_total           counter    retired epochs past their grace period
//	napmon_updates_total                   counter    epoch swaps published through the server
//	napmon_bdd_nodes                       gauge      BDD nodes across the epoch's zone managers
//	napmon_bdd_unique_hits_total           counter    unique-table hits (node reuse)
//	napmon_bdd_unique_misses_total         counter    unique-table misses (node creations)
//	napmon_bdd_cache_hits_total            counter    computed-table hits
//	napmon_bdd_cache_misses_total          counter    computed-table misses
//	napmon_bdd_compiles_total              counter    query plans compiled
//	napmon_gateway_frames_received_total   counter    frames past the packet filter (gateway)
//	napmon_gateway_frames_responded_total  counter    response frames handed to a socket
//	napmon_gateway_frames_malformed_total  counter    rejected datagrams/headers/payloads
//	napmon_gateway_frames_dropped_total    counter    watch requests shed under pressure
//	napmon_gateway_conns_reaped_total      counter    TCP conns torn down by a read-idle or
//	                                                  write deadline
//	napmon_gateway_conns_overbudget_total  counter    TCP conns torn down for exhausting their
//	                                                  malformed-frame budget
//	napmon_gateway_tcp_conns               gauge      live TCP connections
//
// A Registry adds fleet-level series plus one tenant-labelled family
// per lane (kept separate from the unlabelled napmon_* families above
// so sum-across-labels cross-checks stay double-count-free):
//
//	napmon_registry_tenants                gauge      tenants currently loaded
//	napmon_registry_generation             gauge      fleet generation (bumps on load/unload)
//	napmon_registry_loads_total            counter    tenants loaded
//	napmon_registry_unloads_total          counter    tenants unloaded
//	napmon_registry_lookups_total          counter    Acquire/AcquireID pins
//	napmon_tenant_up                       gauge      1 while the named tenant serves
//	napmon_tenant_submitted_total          counter    per-tenant requests accepted
//	napmon_tenant_served_total             counter    per-tenant verdicts answered
//	napmon_tenant_rejected_total           counter    per-tenant submits refused
//	napmon_tenant_shed_total               counter    per-tenant non-blocking shed
//	napmon_tenant_batches_total            counter    per-tenant micro-batches
//	napmon_tenant_queue_depth              gauge      per-tenant queued requests
//	napmon_tenant_epoch                    gauge      per-tenant serving epoch id
//	napmon_tenant_gamma                    gauge      per-tenant γ level
//	napmon_tenant_updates_total            counter    per-tenant epoch swaps
//	napmon_tenant_watched_total            counter    per-tenant monitored verdicts
//	napmon_tenant_oop_total                counter    per-tenant out-of-pattern verdicts
//
// cmd/napmon-metricslint fetches an exposition, validates it with the
// strict internal parser, and cross-checks it against /stats; the
// napmon-soak harness scrapes before/after a run and reconciles
// server-side served/shed deltas against its own per-frame accounting.
// See DESIGN.md, "Observability: registry, histograms, tracing".
//
// Everything is implemented from scratch on the standard library: the
// tensor math and neural-network substrate, the ROBDD engine (open-
// addressed unique table, lossy computed table, cache statistics — see
// DESIGN.md, "BDD manager internals"), the synthetic MNIST-like/
// GTSRB-like datasets and the highway front-car case study the
// experiments run on. See DESIGN.md for the system inventory; every PR
// is gated by .github/workflows/ci.yml, mirrored locally by `make ci`:
// gofmt, vet + staticcheck (make lint), build, race-detector tests and a
// -benchmem benchmark smoke run on a Go 1.22/1.23 matrix, plus a
// bench-regression job (make bench-json records BENCH_PR8.json and make
// bench-check fails >1.3x ns/op regressions of the serving, update,
// registry and snapshot benchmarks against ci/bench-baseline.json), a
// fuzz-smoke job (make test-fuzz: the differential BDD fuzzer and the
// pattern wire-format round trip), a coverage gate (make cover-check
// against ci/coverage-baseline.txt), a serve-demo end-to-end daemon
// smoke job (make serve-demo), a metrics-smoke observability gate (make
// metrics-smoke: /metrics validated and cross-checked against /stats),
// a soak-smoke wire-protocol gate (make soak-smoke: strict zero-loss
// UDP+TCP soak with server-vs-client accounting) and a fleet-smoke
// replication gate (make fleet-smoke: a two-tenant leader snapshots
// into a follower, streams learn deltas, and the follower must converge
// to epoch equality with per-tenant metrics live on both daemons).
package napmon
