package napmon

// One benchmark per table and figure of the paper's evaluation, plus the
// ablations called out in DESIGN.md. Each benchmark regenerates its
// artifact at reduced scale (training is hoisted out of the timed loop and
// cached across benchmarks); the full-scale numbers in EXPERIMENTS.md come
// from cmd/napmon-experiment. Custom metrics report the reproduced
// quantities (accuracies, out-of-pattern rates) alongside the usual
// ns/op, so `go test -bench=.` prints the shape of every result.

import (
	"bytes"
	"context"
	"fmt"
	"net"
	"runtime"
	"sync"
	"testing"
	"time"

	"napmon/internal/core"
	"napmon/internal/dataset"
	"napmon/internal/exp"
	"napmon/internal/frontcar"
	"napmon/internal/nn"
	"napmon/internal/registry"
	"napmon/internal/rng"
	"napmon/internal/tensor"
	"napmon/internal/wire"
)

// benchScale shrinks datasets so the full bench suite completes in
// minutes on one core.
const benchScale = 0.12

var (
	benchOnce  sync.Once
	benchMNIST *exp.Model
	benchGTSRB *exp.Model
	benchErr   error
)

// benchModels trains the two Table I networks once, shared by all
// benchmarks.
func benchModels(b *testing.B) (*exp.Model, *exp.Model) {
	b.Helper()
	benchOnce.Do(func() {
		opts := exp.Options{Scale: benchScale, Seed: 1}
		benchMNIST, benchErr = exp.TrainMNIST(opts)
		if benchErr != nil {
			return
		}
		benchGTSRB, benchErr = exp.TrainGTSRB(opts)
	})
	if benchErr != nil {
		b.Fatal(benchErr)
	}
	return benchMNIST, benchGTSRB
}

// BenchmarkTableI_Accuracies regenerates Table I: per-network train and
// validation accuracy under the paper's architectures.
func BenchmarkTableI_Accuracies(b *testing.B) {
	m1, m2 := benchModels(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m1.TrainAcc = nn.Accuracy(m1.Net, m1.Data.Train)
		m1.ValAcc = nn.Accuracy(m1.Net, m1.Data.Val)
		m2.TrainAcc = nn.Accuracy(m2.Net, m2.Data.Train)
		m2.ValAcc = nn.Accuracy(m2.Net, m2.Data.Val)
	}
	b.ReportMetric(100*m1.TrainAcc, "mnist_train_acc_%")
	b.ReportMetric(100*m1.ValAcc, "mnist_val_acc_%")
	b.ReportMetric(100*m2.TrainAcc, "gtsrb_train_acc_%")
	b.ReportMetric(100*m2.ValAcc, "gtsrb_val_acc_%")
}

// BenchmarkTableII_MNIST regenerates Table II rows for network 1: build
// the all-classes monitor on ReLU(fc(40)) and sweep γ ∈ {0,1,2}.
func BenchmarkTableII_MNIST(b *testing.B) {
	m1, _ := benchModels(b)
	var rows []exp.Table2Row
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var err error
		rows, _, err = exp.Table2ForModel(m1, []int{0, 1, 2})
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range rows {
		b.ReportMetric(100*r.Metrics.OutOfPatternRate(),
			"g"+string(rune('0'+r.Gamma))+"_oop_%")
	}
	b.ReportMetric(100*rows[0].Metrics.MisclassificationRate(), "misclass_%")
}

// BenchmarkTableII_GTSRB regenerates Table II rows for network 2: the
// stop-sign-only monitor over the top 25% of ReLU(fc(84)) neurons chosen
// by gradient analysis, γ ∈ {0..3}.
func BenchmarkTableII_GTSRB(b *testing.B) {
	_, m2 := benchModels(b)
	var rows []exp.Table2Row
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var err error
		rows, _, err = exp.Table2ForModel(m2, []int{0, 1, 2, 3})
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range rows {
		b.ReportMetric(100*r.Metrics.OutOfPatternRate(),
			"g"+string(rune('0'+r.Gamma))+"_oop_%")
	}
	b.ReportMetric(100*rows[0].Metrics.MisclassificationRate(), "misclass_%")
}

// BenchmarkFigure1_Workflow runs the deployment-time loop of Figure 1-(b):
// classify one input and supplement the decision with the monitor's
// membership query. ns/op is the per-decision monitoring overhead.
func BenchmarkFigure1_Workflow(b *testing.B) {
	m1, _ := benchModels(b)
	mon, err := core.Build(m1.Net, m1.Data.Train, exp.MNISTMonitorConfig(m1))
	if err != nil {
		b.Fatal(err)
	}
	mon.SetGamma(2)
	val := m1.Data.Val
	flagged := 0
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if v := mon.Watch(m1.Net, val[i%len(val)].Input); v.OutOfPattern {
			flagged++
		}
	}
	b.ReportMetric(float64(flagged)/float64(b.N)*100, "flagged_%")
}

// BenchmarkFigure2_Coarseness regenerates the Figure 2 sweep: the
// out-of-pattern rate trajectory from the finest abstraction (γ=0) toward
// over-generalization as γ grows.
func BenchmarkFigure2_Coarseness(b *testing.B) {
	m1, _ := benchModels(b)
	var pts []exp.Figure2Point
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		mon, err := core.Build(m1.Net, m1.Data.Train, exp.MNISTMonitorConfig(m1))
		if err != nil {
			b.Fatal(err)
		}
		pts = exp.Figure2Sweep(m1, mon, 8)
	}
	b.ReportMetric(100*pts[0].OutRate, "gamma0_oop_%")
	b.ReportMetric(100*pts[len(pts)-1].OutRate, "gamma8_oop_%")
}

// BenchmarkFigure3_FrontCar regenerates the case study: monitor firing
// rates on ordinary versus distribution-shifted traffic.
func BenchmarkFigure3_FrontCar(b *testing.B) {
	var res *exp.FrontCarResult
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var err error
		res, _, err = exp.FrontCarStudy(exp.Options{Scale: 0.3, Seed: 1})
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(100*res.InDist.OutOfPatternRate(), "indist_oop_%")
	b.ReportMetric(100*res.Shifted.OutOfPatternRate(), "shifted_oop_%")
	b.ReportMetric(100*res.ValAcc, "val_acc_%")
}

// BenchmarkAblation_NeuronSelection compares monitored-neuron fractions
// for the stop-sign monitor (the paper monitors 25%): smaller fractions
// shrink the BDD but coarsen the abstraction.
func BenchmarkAblation_NeuronSelection(b *testing.B) {
	_, m2 := benchModels(b)
	out := m2.Net.Layer(m2.Net.NumLayers() - 1).(*nn.Dense)
	for _, fraction := range []float64{0.10, 0.25, 0.50, 1.00} {
		name := map[float64]string{0.10: "10pct", 0.25: "25pct", 0.50: "50pct", 1.00: "100pct"}[fraction]
		b.Run(name, func(b *testing.B) {
			neurons, err := core.SelectNeuronsByWeight(out, dataset.StopSignClass, fraction)
			if err != nil {
				b.Fatal(err)
			}
			var met core.Metrics
			var nodes int
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				mon, err := core.Build(m2.Net, m2.Data.Train, core.Config{
					Layer:   m2.MonitorLayer,
					Gamma:   1,
					Classes: []int{dataset.StopSignClass},
					Neurons: neurons,
				})
				if err != nil {
					b.Fatal(err)
				}
				met = core.Evaluate(m2.Net, mon, m2.Data.Val)
				nodes = mon.StorageNodes()
			}
			b.ReportMetric(100*met.OutOfPatternRate(), "oop_%")
			b.ReportMetric(float64(nodes), "bdd_nodes")
		})
	}
}

// BenchmarkAblation_BDDvsExact compares the BDD comfort zone against the
// exact hash-set + Hamming-scan reference on identical pattern sets: build
// cost and per-query latency as γ grows. The BDD's query time is flat in
// γ (the paper's linear-in-neurons guarantee); the exact monitor's decay
// query degrades with γ because misses scan every stored pattern.
func BenchmarkAblation_BDDvsExact(b *testing.B) {
	const width = 40
	const nPatterns = 400
	r := rng.New(7)
	patterns := make([]core.Pattern, nPatterns)
	for i := range patterns {
		p := make(core.Pattern, width)
		for j := range p {
			p[j] = r.Bool(0.5)
		}
		patterns[i] = p
	}
	queries := make([]core.Pattern, 256)
	for i := range queries {
		p := make(core.Pattern, width)
		for j := range p {
			p[j] = r.Bool(0.5)
		}
		queries[i] = p
	}
	for _, gamma := range []int{0, 1, 2} {
		g := gamma
		b.Run("bdd/gamma"+string(rune('0'+g)), func(b *testing.B) {
			z := core.NewZone(width)
			for _, p := range patterns {
				z.Insert(p)
			}
			z.SetGamma(g)
			runtime.GC() // exclude collection of the build-time arena from the query loop
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				z.Contains(queries[i%len(queries)])
			}
			b.StopTimer()
			b.ReportMetric(float64(z.NodeCount()), "bdd_nodes")
		})
		b.Run("exact/gamma"+string(rune('0'+g)), func(b *testing.B) {
			z := core.NewExactZone(width)
			for _, p := range patterns {
				z.Insert(p)
			}
			z.SetGamma(g)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				z.Contains(queries[i%len(queries)])
			}
		})
	}
}

// BenchmarkZoneBuild measures the core BDD hot path in isolation: encode
// and union 400 random 40-neuron patterns into a zone, then enlarge to the
// γ=2 comfort zone by existential quantification. This is the number the
// storage-layer work optimizes; see DESIGN.md ("BDD manager internals").
func BenchmarkZoneBuild(b *testing.B) {
	const width = 40
	const nPatterns = 400
	r := rng.New(7)
	patterns := make([]core.Pattern, nPatterns)
	for i := range patterns {
		p := make(core.Pattern, width)
		for j := range p {
			p[j] = r.Bool(0.5)
		}
		patterns[i] = p
	}
	var nodes int
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		z := core.NewZone(width)
		for _, p := range patterns {
			z.Insert(p)
		}
		z.SetGamma(2)
		nodes = z.NodeCount()
	}
	b.ReportMetric(float64(nodes), "bdd_nodes")
}

// BenchmarkZoneQueryCompiled compares the two membership-query engines
// on one frozen production-shaped zone (400 patterns × 40 neurons, γ=2;
// ~71k live nodes in a ~1M-node build arena): interpreted walks the
// manager's node arena per query (EvalBits), compiled walks the flat
// level-ordered branch program (the serving path since zones compile
// their plans at freeze), and compiled_batch runs a 64-query micro-batch
// through Compiled.EvalBatch — the unit WatchBatch actually issues per
// class per chunk. The query stream is 16384 distinct patterns so the
// walks exercise the whole diagram the way live traffic does, instead of
// replaying a handful of cache-resident paths.
func BenchmarkZoneQueryCompiled(b *testing.B) {
	const width = 40
	const nPatterns = 400
	r := rng.New(7)
	z := core.NewZone(width)
	for i := 0; i < nPatterns; i++ {
		p := make(core.Pattern, width)
		for j := range p {
			p[j] = r.Bool(0.5)
		}
		z.Insert(p)
	}
	z.SetGamma(2)
	queries := make([]core.Pattern, 16384)
	batch := make([][]bool, len(queries))
	for i := range queries {
		p := make(core.Pattern, width)
		for j := range p {
			p[j] = r.Bool(0.5)
		}
		queries[i] = p
		batch[i] = p
	}
	// One benchmark op = one pass over the full query set, so the ns/op
	// samples are ~ms-scale and stable even in the 2-iteration bench-json
	// capture the regression gate compares (a per-query op at ~200ns
	// would be pure timer noise there); ns/query is reported alongside.
	perQuery := func(b *testing.B) {
		b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N)/float64(len(queries)), "ns/query")
	}
	b.Run("interpreted", func(b *testing.B) {
		// Unfrozen zone: Contains dispatches to the arena interpreter.
		for i := 0; i < b.N; i++ {
			for _, q := range queries {
				z.Contains(q)
			}
		}
		perQuery(b)
	})
	z.Freeze()
	b.Run("compiled", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			for _, q := range queries {
				z.Contains(q)
			}
		}
		perQuery(b)
	})
	b.Run("compiled_batch", func(b *testing.B) {
		out := make([]bool, 64)
		for i := 0; i < b.N; i++ {
			for o := 0; o+64 <= len(batch); o += 64 {
				z.ContainsBatch(batch[o:o+64], out)
			}
		}
		perQuery(b)
	})
}

// BenchmarkZoneQueryBitSliced compares the three membership-query
// engines on the same frozen production-shaped zone as
// BenchmarkZoneQueryCompiled (400 patterns × 40 neurons, γ=2), on two
// streams bounding the traffic spectrum. "diverse" is the existing
// 16384-query uniform-random stream — the worst case for slicing: 64
// arbitrary queries share almost no BDD paths, so the sliced walk
// degrades to the scalar visit count and wins only on mask arithmetic
// replacing per-hop mispredicted branches. "sameclass" models the
// serving path's common case, a per-class coalescer run with source
// locality: the monitor watches a stream of decisions (successive
// frames, retried inputs, the same hot inputs across users), and
// discrete activation signatures recur — that recurrence is the
// comfort-zone premise itself — so one 64-wide run concentrates on a
// handful of distinct signatures rather than 64 unrelated ones. Each
// run here draws from 8 run-local signature modes, a quarter of them
// one-bit near-boundary variants (the novelty probes the monitor
// exists to flag); repeated signatures merge into one lane group and
// the block walks each distinct path once. interpreted walks the
// manager arena per query, scalar walks the compiled program per query
// (Compiled.EvalBatchScalar on the same 64-wide micro-batches), and
// bitsliced runs the 64-queries-per-walk path through
// Zone.ContainsBatch (64-wide, exercising the auto-dispatch) plus a
// wide1024 variant showing the widest runs, where the sliced path
// additionally clusters repeats across blocks by sorted bit prefix.
// queries/s is the headline metric; the acceptance gate is bitsliced
// ≥3× scalar on the ≥64-wide same-class stream.
func BenchmarkZoneQueryBitSliced(b *testing.B) {
	const width = 40
	const nPatterns = 400
	r := rng.New(7)
	z := core.NewZone(width)
	inserted := make([]core.Pattern, nPatterns)
	for i := range inserted {
		p := make(core.Pattern, width)
		for j := range p {
			p[j] = r.Bool(0.5)
		}
		inserted[i] = p
		z.Insert(p)
	}
	z.SetGamma(2)
	randStream := func(n int) [][]bool {
		qs := make([][]bool, n)
		for i := range qs {
			p := make(core.Pattern, width)
			for j := range p {
				p[j] = r.Bool(0.5)
			}
			qs[i] = p
		}
		return qs
	}
	diverse := randStream(16384)
	sameclass := make([][]bool, 0, 16384)
	for len(sameclass) < 16384 {
		// One 64-wide run: 8 run-local signature modes drawn from the
		// class's training signatures, 1 in 4 perturbed by one bit into
		// a near-boundary variant the zone has not absorbed.
		var modes [8]core.Pattern
		for m := range modes {
			p := inserted[r.Uint64()%nPatterns]
			if r.Bool(0.25) {
				p = p.Clone()
				v := int(r.Uint64() % width)
				p[v] = !p[v]
			}
			modes[m] = p
		}
		for q := 0; q < 64; q++ {
			sameclass = append(sameclass, modes[r.Uint64()%8])
		}
	}
	streams := []struct {
		name    string
		queries [][]bool
	}{{"diverse", diverse}, {"sameclass", sameclass}}
	perQuery := func(b *testing.B, n int) {
		b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N)/float64(n), "ns/query")
		b.ReportMetric(float64(n)*float64(b.N)/b.Elapsed().Seconds(), "queries/s")
	}
	b.Run("interpreted/diverse", func(b *testing.B) {
		// Unfrozen zone: Contains dispatches to the arena interpreter.
		for i := 0; i < b.N; i++ {
			for _, q := range diverse {
				z.Contains(q)
			}
		}
		perQuery(b, len(diverse))
	})
	z.Freeze()
	// A standalone plan handle so the scalar walk stays measurable now
	// that ContainsBatch auto-dispatches wide batches to the sliced path.
	plan := z.Manager().Compile(z.Root())[0]
	out := make([]bool, 1024)
	for _, s := range streams {
		s := s
		b.Run("scalar/"+s.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				for o := 0; o+64 <= len(s.queries); o += 64 {
					plan.EvalBatchScalar(s.queries[o:o+64], out[:64])
				}
			}
			perQuery(b, len(s.queries))
		})
		b.Run("bitsliced/"+s.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				for o := 0; o+64 <= len(s.queries); o += 64 {
					z.ContainsBatch(s.queries[o:o+64], out[:64])
				}
			}
			perQuery(b, len(s.queries))
		})
	}
	b.Run("bitsliced/wide1024", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			for o := 0; o+1024 <= len(sameclass); o += 1024 {
				z.ContainsBatch(sameclass[o:o+1024], out)
			}
		}
		perQuery(b, len(sameclass))
	})
}

// BenchmarkMonitorBuildParallel measures the manager-sharded zone build
// in isolation (BuildFromPatterns: no inference, pure per-class BDD
// insertion + γ-enlargement) on an 8-class monitor, with GOMAXPROCS
// pinned per sub-benchmark. On a multi-core host cpu4 should build
// ≥2× faster than cpu1, since the 8 per-class managers are independent
// single-writer shards; on a 1-core machine (the committed baseline's
// reference) the axis is flat.
func BenchmarkMonitorBuildParallel(b *testing.B) {
	const width = 48
	const classes = 8
	const perClass = 300
	r := rng.New(19)
	pats := make(map[int][]core.Pattern, classes)
	for c := 0; c < classes; c++ {
		list := make([]core.Pattern, perClass)
		for i := range list {
			p := make(core.Pattern, width)
			for j := range p {
				p[j] = r.Bool(0.5)
			}
			list[i] = p
		}
		pats[c] = list
	}
	for _, procs := range []int{1, 4} {
		b.Run(fmt.Sprintf("cpu%d", procs), func(b *testing.B) {
			prev := runtime.GOMAXPROCS(procs)
			defer runtime.GOMAXPROCS(prev)
			for i := 0; i < b.N; i++ {
				if _, err := core.BuildFromPatterns(width, 2, pats); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkForwardBatch measures the batched GEMM inference path in
// isolation (no monitor): the whole batch flows through Im2ColBatch, the
// blocked MatMul and the fused dense epilogues with pooled scratch.
// batch1 is the degenerate width; larger batches show how GEMM width
// buys throughput. allocs/op should be ~0 once the pool is warm.
func BenchmarkForwardBatch(b *testing.B) {
	m1, _ := benchModels(b)
	val := m1.Data.Val
	for _, size := range []int{1, 64, 256} {
		inputs := make([]*tensor.Tensor, size)
		for i := range inputs {
			inputs[i] = val[i%len(val)].Input
		}
		b.Run(fmt.Sprintf("batch%d", size), func(b *testing.B) {
			pool := tensor.NewPool()
			pool.Put(m1.Net.ForwardBatch(inputs, pool)) // warm the pool
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				pool.Put(m1.Net.ForwardBatch(inputs, pool))
			}
			b.StopTimer()
			b.ReportMetric(float64(size)*float64(b.N)/b.Elapsed().Seconds(), "inputs/s")
		})
	}
}

// BenchmarkWatchBatch measures the batched serving front end: one frozen
// monitor, one batch of validation inputs, swept over worker-pool widths
// so the multi-core scaling is visible in the inputs/s metric. Since PR 3
// the batch feeds whole micro-batch chunks through ForwardBatch (GEMM
// width × worker count). The sweep is the -cpu axis realized with stable
// sub-benchmark names: each width pins GOMAXPROCS explicitly, including
// widths above the machine's core count (flat there, so the artifact
// keeps the same benchmark set on every machine and bench-check can
// compare 1-core baselines against multi-core runners).
func BenchmarkWatchBatch(b *testing.B) {
	m1, _ := benchModels(b)
	mon, err := core.Build(m1.Net, m1.Data.Train, exp.MNISTMonitorConfig(m1))
	if err != nil {
		b.Fatal(err)
	}
	mon.SetGamma(2)
	mon.Freeze()
	inputs := make([]*tensor.Tensor, len(m1.Data.Val))
	for i, s := range m1.Data.Val {
		inputs[i] = s.Input
	}
	for _, w := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("workers%d", w), func(b *testing.B) {
			prev := runtime.GOMAXPROCS(w)
			defer runtime.GOMAXPROCS(prev)
			mon.WatchBatch(m1.Net, inputs) // warm the scratch pools
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				mon.WatchBatch(m1.Net, inputs)
			}
			b.StopTimer()
			b.ReportMetric(float64(len(inputs))*float64(b.N)/b.Elapsed().Seconds(), "inputs/s")
		})
	}
}

// BenchmarkServe measures the streaming serving subsystem end to end
// against the same model, monitor and inputs as BenchmarkWatchBatch, so
// the coalescer's overhead is directly comparable to the raw batched
// path. single_stream is the latency view: one in-flight request at a
// time through queue → coalescer → lane (MaxBatch 1, so no deadline
// waiting inflates ns/op). saturated is the throughput view: the whole
// validation set submitted at once rides full micro-batches; its
// inputs/s should stay within ~1.3× of BenchmarkWatchBatch's per-sample
// cost.
func BenchmarkServe(b *testing.B) {
	m1, _ := benchModels(b)
	mon, err := core.Build(m1.Net, m1.Data.Train, exp.MNISTMonitorConfig(m1))
	if err != nil {
		b.Fatal(err)
	}
	mon.SetGamma(2)
	inputs := make([]*tensor.Tensor, len(m1.Data.Val))
	for i, s := range m1.Data.Val {
		inputs[i] = s.Input
	}
	shutdown := func(s *Server) {
		b.Helper()
		ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
		defer cancel()
		if err := s.Shutdown(ctx); err != nil {
			b.Fatal(err)
		}
	}
	b.Run("single_stream", func(b *testing.B) {
		srv, err := Serve(m1.Net, mon, ServerConfig{MaxBatch: 1})
		if err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			fut, err := srv.Submit(inputs[i%len(inputs)])
			if err != nil {
				b.Fatal(err)
			}
			if _, err := fut.Wait(); err != nil {
				b.Fatal(err)
			}
		}
		b.StopTimer()
		shutdown(srv)
		st := srv.Stats()
		b.ReportMetric(float64(st.P99.Nanoseconds()), "p99_ns")
	})
	b.Run("saturated", func(b *testing.B) {
		srv, err := Serve(m1.Net, mon, ServerConfig{
			MaxBatch:   64,
			MaxDelay:   2 * time.Millisecond,
			QueueDepth: len(inputs),
		})
		if err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			futs, err := srv.SubmitAll(inputs)
			if err != nil {
				b.Fatal(err)
			}
			for _, f := range futs {
				if _, err := f.Wait(); err != nil {
					b.Fatal(err)
				}
			}
		}
		b.StopTimer()
		b.ReportMetric(float64(len(inputs))*float64(b.N)/b.Elapsed().Seconds(), "inputs/s")
		shutdown(srv)
		st := srv.Stats()
		b.ReportMetric(st.MeanBatchSize, "mean_batch")
	})
}

// BenchmarkUpdateSwap measures one online update end to end: shadow-build
// the touched zone's successor (compact clone + delta fold at every
// cached level) and publish the new epoch with the atomic swap. ns/op is
// the retraining-side cost of absorbing a small delta; serving never
// blocks on it.
func BenchmarkUpdateSwap(b *testing.B) {
	m1, _ := benchModels(b)
	mon, err := core.Build(m1.Net, m1.Data.Train, exp.MNISTMonitorConfig(m1))
	if err != nil {
		b.Fatal(err)
	}
	mon.SetGamma(2)
	mon.Freeze()
	r := rng.New(5)
	width := len(mon.Neurons())
	classes := mon.Classes()
	const deltaSize = 4
	pats := make([]core.Pattern, deltaSize)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		for j := range pats {
			p := make(core.Pattern, width)
			for k := range p {
				p[k] = r.Bool(0.5)
			}
			pats[j] = p
		}
		c := classes[i%len(classes)]
		b.StartTimer()
		if _, err := mon.Update(c, pats...); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(deltaSize), "delta_patterns")
	b.ReportMetric(float64(mon.Epoch()), "final_epoch")
}

// BenchmarkServeWhileUpdating is the acceptance benchmark of the online-
// update subsystem: the saturated BenchmarkServe workload runs while a
// background goroutine continuously publishes epoch swaps through
// Server.Update, a 4-pattern delta every 25ms (~40 swaps and ~160
// absorbed patterns per second — orders of magnitude beyond any
// realistic retraining cadence, but paced and coalesced the way a
// production /learn loop batches feedback, rather than a busy loop that
// would just measure an unbounded updater stealing whole cores from a
// saturated box). Throughput (inputs/s) must stay within ~20% of the
// steady-state saturated BenchmarkServe, with zero dropped or errored
// requests across every swap.
func BenchmarkServeWhileUpdating(b *testing.B) {
	m1, _ := benchModels(b)
	mon, err := core.Build(m1.Net, m1.Data.Train, exp.MNISTMonitorConfig(m1))
	if err != nil {
		b.Fatal(err)
	}
	mon.SetGamma(2)
	inputs := make([]*tensor.Tensor, len(m1.Data.Val))
	for i, s := range m1.Data.Val {
		inputs[i] = s.Input
	}
	srv, err := Serve(m1.Net, mon, ServerConfig{
		MaxBatch:   64,
		MaxDelay:   2 * time.Millisecond,
		QueueDepth: len(inputs),
	})
	if err != nil {
		b.Fatal(err)
	}
	stop := make(chan struct{})
	updaterDone := make(chan error, 1)
	go func() { // continuous paced updates until the benchmark stops
		r := rng.New(6)
		width := len(mon.Neurons())
		classes := mon.Classes()
		tick := time.NewTicker(25 * time.Millisecond)
		defer tick.Stop()
		for {
			select {
			case <-stop:
				updaterDone <- nil
				return
			case <-tick.C:
			}
			pats := make([]core.Pattern, 4)
			for j := range pats {
				p := make(core.Pattern, width)
				for k := range p {
					p[k] = r.Bool(0.5)
				}
				pats[j] = p
			}
			if _, err := srv.Update(map[int][]core.Pattern{classes[int(r.Uint64()%uint64(len(classes)))]: pats}); err != nil {
				updaterDone <- err
				return
			}
		}
	}()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		futs, err := srv.SubmitAll(inputs)
		if err != nil {
			b.Fatal(err)
		}
		for _, f := range futs {
			if _, err := f.Wait(); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.StopTimer()
	close(stop)
	if err := <-updaterDone; err != nil {
		b.Fatal(err)
	}
	b.ReportMetric(float64(len(inputs))*float64(b.N)/b.Elapsed().Seconds(), "inputs/s")
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		b.Fatal(err)
	}
	st := srv.Stats()
	if st.Rejected != 0 {
		b.Fatalf("%d requests rejected across epoch swaps", st.Rejected)
	}
	b.ReportMetric(float64(st.Updates), "epoch_swaps")
}

// BenchmarkAblation_MonitorBuild measures Algorithm 1's offline cost
// (pattern extraction plus BDD construction) per training sample.
func BenchmarkAblation_MonitorBuild(b *testing.B) {
	m1, _ := benchModels(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.Build(m1.Net, m1.Data.Train, exp.MNISTMonitorConfig(m1)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblation_DistributionShift quantifies the §I motivation: the
// monitor's firing-rate gap between in-distribution and shifted inputs.
func BenchmarkAblation_DistributionShift(b *testing.B) {
	m1, _ := benchModels(b)
	mon, err := core.Build(m1.Net, m1.Data.Train, exp.MNISTMonitorConfig(m1))
	if err != nil {
		b.Fatal(err)
	}
	mon.SetGamma(1)
	shifted := dataset.ApplyShift(m1.Data.Val, dataset.ShiftOcclusion, 5)
	var in, out core.Metrics
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		in = core.Evaluate(m1.Net, mon, m1.Data.Val)
		out = core.Evaluate(m1.Net, mon, shifted)
	}
	b.ReportMetric(100*in.OutOfPatternRate(), "indist_oop_%")
	b.ReportMetric(100*out.OutOfPatternRate(), "shifted_oop_%")
}

// BenchmarkAblation_AbstractDomains compares the four abstraction domains
// implemented for the paper's §V extension on the same model and data:
// binary BDD patterns (the paper), thermometer-quantized patterns, and
// per-pattern box / DBM value zones. Reported metrics show the precision/
// firing-rate trade: finer domains flag more, with higher misclassified
// share among flags.
func BenchmarkAblation_AbstractDomains(b *testing.B) {
	m1, _ := benchModels(b)
	layer := m1.MonitorLayer

	b.Run("binary", func(b *testing.B) {
		var met core.Metrics
		for i := 0; i < b.N; i++ {
			mon, err := core.Build(m1.Net, m1.Data.Train, core.Config{Layer: layer, Gamma: 1})
			if err != nil {
				b.Fatal(err)
			}
			met = core.Evaluate(m1.Net, mon, m1.Data.Val)
		}
		b.ReportMetric(100*met.OutOfPatternRate(), "oop_%")
		b.ReportMetric(100*met.OutOfPatternPrecision(), "precision_%")
	})
	b.Run("quantized4", func(b *testing.B) {
		var met core.Metrics
		for i := 0; i < b.N; i++ {
			mon, err := core.BuildQuantized(m1.Net, m1.Data.Train, core.QuantizedConfig{
				Layer: layer, Levels: 4, Gamma: 1,
			})
			if err != nil {
				b.Fatal(err)
			}
			met = core.EvaluateQuantized(m1.Net, mon, m1.Data.Val)
		}
		b.ReportMetric(100*met.OutOfPatternRate(), "oop_%")
		b.ReportMetric(100*met.OutOfPatternPrecision(), "precision_%")
	})
	b.Run("box", func(b *testing.B) {
		var met core.Metrics
		for i := 0; i < b.N; i++ {
			mon, err := core.BuildRefined(m1.Net, m1.Data.Train, core.RefinedConfig{
				Layer: layer, Domain: core.DomainBox, PerPattern: true, Epsilon: 0.5,
			})
			if err != nil {
				b.Fatal(err)
			}
			met = core.EvaluateRefined(m1.Net, mon, m1.Data.Val)
		}
		b.ReportMetric(100*met.OutOfPatternRate(), "oop_%")
		b.ReportMetric(100*met.OutOfPatternPrecision(), "precision_%")
	})
	b.Run("dbm", func(b *testing.B) {
		var met core.Metrics
		for i := 0; i < b.N; i++ {
			mon, err := core.BuildRefined(m1.Net, m1.Data.Train, core.RefinedConfig{
				Layer: layer, Domain: core.DomainDBM, PerPattern: true, Epsilon: 0.5,
			})
			if err != nil {
				b.Fatal(err)
			}
			met = core.EvaluateRefined(m1.Net, mon, m1.Data.Val)
		}
		b.ReportMetric(100*met.OutOfPatternRate(), "oop_%")
		b.ReportMetric(100*met.OutOfPatternPrecision(), "precision_%")
	})
}

// BenchmarkFrontCarDecision measures the per-scene latency of the full
// deployed pipeline (selector inference + monitor query), the number that
// must fit a real-time budget on a vehicle.
func BenchmarkFrontCarDecision(b *testing.B) {
	p, _, err := frontcar.BuildPipeline(frontcar.TrainConfig{
		TrainScenes: 1500, Epochs: 10, Gamma: 1, Seed: 3,
	})
	if err != nil {
		b.Fatal(err)
	}
	r := rng.New(4)
	scenes := make([]frontcar.Scene, 64)
	for i := range scenes {
		scenes[i] = frontcar.GenScene(frontcar.DefaultSceneConfig(), r)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.Decide(&scenes[i%len(scenes)])
	}
}

// BenchmarkWireEncode measures the binary protocol codecs in isolation:
// each op encodes and decodes 1024 frames (one MNIST-shaped watch
// request and its verdict response per iteration), so the per-frame
// cost — header checksum, float32 narrowing, bit-packed patterns — is
// visible as ns/op/1024 and the benchmark does real work even under
// bench-json's -benchtime=2x.
func BenchmarkWireEncode(b *testing.B) {
	const framesPerOp = 1024
	shape := []int{1, 28, 28}
	in := make([]float64, 28*28)
	for i := range in {
		in[i] = float64(i%256) / 256
	}
	pat := make(core.Pattern, 40)
	for i := range pat {
		pat[i] = i%3 == 0
	}
	v := core.Verdict{Class: 7, Monitored: true, OutOfPattern: true, Pattern: pat, Epoch: 42}
	var reqBuf, respBuf []byte
	var bytesPerOp int
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bytesPerOp = 0
		for f := 0; f < framesPerOp; f++ {
			var err error
			reqBuf, err = wire.AppendWatchReq(reqBuf[:0], uint32(f), wire.DefaultTenant, shape, in)
			if err != nil {
				b.Fatal(err)
			}
			if _, _, _, err := wire.DecodeWatchReq(reqBuf[wire.HeaderSize:]); err != nil {
				b.Fatal(err)
			}
			respBuf, err = wire.AppendWatchResp(respBuf[:0], uint32(f), v)
			if err != nil {
				b.Fatal(err)
			}
			if _, err := wire.DecodeWatchResp(respBuf[wire.HeaderSize:]); err != nil {
				b.Fatal(err)
			}
			bytesPerOp += len(reqBuf) + len(respBuf)
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(framesPerOp*2)*float64(b.N)/b.Elapsed().Seconds(), "frames/s")
	b.ReportMetric(float64(bytesPerOp)*float64(b.N)/b.Elapsed().Seconds()/1e6, "MB/s")
}

// BenchmarkGatewayRoundTrip measures the wire protocol end to end: the
// whole validation set is pipelined through one loopback TCP connection
// into the gateway — encode, packet parse, submit, micro-batched
// inference, verdict encode, response read — bounded by the gateway's
// per-connection in-flight cap and TCP flow control. Its inputs/s
// against BenchmarkServe/saturated is the protocol + transport overhead
// on top of the raw serving path. TCP only: the
// UDP side sheds under overload by design, and a closed-loop benchmark
// must not drop frames.
func BenchmarkGatewayRoundTrip(b *testing.B) {
	m1, _ := benchModels(b)
	mon, err := core.Build(m1.Net, m1.Data.Train, exp.MNISTMonitorConfig(m1))
	if err != nil {
		b.Fatal(err)
	}
	mon.SetGamma(2)
	inputs := make([]*tensor.Tensor, len(m1.Data.Val))
	for i, s := range m1.Data.Val {
		inputs[i] = s.Input
	}
	srv, err := Serve(m1.Net, mon, ServerConfig{
		MaxBatch:   64,
		MaxDelay:   2 * time.Millisecond,
		QueueDepth: len(inputs),
	})
	if err != nil {
		b.Fatal(err)
	}
	g := wire.NewGateway(srv, mon, wire.GatewayConfig{})
	if err := g.ListenTCP("127.0.0.1:0"); err != nil {
		b.Fatal(err)
	}
	c, err := net.Dial("tcp", g.TCPAddr().String())
	if err != nil {
		b.Fatal(err)
	}
	defer func() {
		c.Close()
		if err := g.Close(); err != nil {
			b.Fatal(err)
		}
		ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			b.Fatal(err)
		}
	}()

	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		done := make(chan error, 1)
		go func() {
			var buf []byte
			for range inputs {
				h, payload, err := wire.ReadFrame(c, buf)
				if err != nil {
					done <- err
					return
				}
				buf = payload[:0]
				if h.Type != wire.TypeWatchResp {
					done <- fmt.Errorf("frame type %d in response", h.Type)
					return
				}
			}
			done <- nil
		}()
		var frame []byte
		for j, x := range inputs {
			frame, err = wire.AppendWatchReq(frame[:0], uint32(j), wire.DefaultTenant, x.Shape(), x.Data())
			if err != nil {
				b.Fatal(err)
			}
			if _, err := c.Write(frame); err != nil {
				b.Fatal(err)
			}
		}
		if err := <-done; err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(len(inputs))*float64(b.N)/b.Elapsed().Seconds(), "inputs/s")
	ct := g.Counters()
	if ct.Dropped != 0 || ct.Malformed != 0 {
		b.Fatalf("gateway dropped %d / malformed %d during a closed-loop bench", ct.Dropped, ct.Malformed)
	}
}

// BenchmarkSnapshotRoundTrip measures the compact snapshot codec on a
// production-shaped monitor (3 classes × 400 patterns × 40 neurons,
// γ=2, compiled plans): encode is what a leader pays per follower
// bootstrap, decode is the follower's warm-start cost, and bytes/op
// reports the snapshot size the replication path ships.
func BenchmarkSnapshotRoundTrip(b *testing.B) {
	const width = 40
	r := rng.New(11)
	perClass := make(map[int][]core.Pattern, 3)
	for c := 0; c < 3; c++ {
		pats := make([]core.Pattern, 400)
		for i := range pats {
			p := make(core.Pattern, width)
			for j := range p {
				p[j] = r.Bool(0.5)
			}
			pats[i] = p
		}
		perClass[c] = pats
	}
	mon, err := core.BuildFromPatterns(width, 2, perClass)
	if err != nil {
		b.Fatal(err)
	}
	mon.Freeze()
	var buf bytes.Buffer
	if err := mon.Snapshot(&buf, nil); err != nil {
		b.Fatal(err)
	}
	blob := buf.Bytes()

	b.Run("encode", func(b *testing.B) {
		var out bytes.Buffer
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			out.Reset()
			if err := mon.Snapshot(&out, nil); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(float64(out.Len()), "snapshot_bytes")
	})
	b.Run("decode", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, _, err := core.LoadSnapshot(bytes.NewReader(blob)); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkRegistryLookup measures the fleet hot path every routed
// request pays: pin a tenant by wire id, read its lane, release. The
// registry holds 8 untrained tenants; lookups run via RunParallel the
// way concurrent gateway responders issue them.
func BenchmarkRegistryLookup(b *testing.B) {
	reg := registry.New(registry.Config{})
	defer reg.Close(context.Background())
	r := rng.New(13)
	for i := 0; i < 8; i++ {
		netw, err := nn.Build([]nn.Spec{
			{Kind: nn.KindDense, In: 4, Out: 8},
			{Kind: nn.KindReLU},
			{Kind: nn.KindDense, In: 8, Out: 3},
		}, r)
		if err != nil {
			b.Fatal(err)
		}
		samples := make([]nn.Sample, 30)
		for j := range samples {
			x := tensor.New(4)
			for k := range x.Data() {
				x.Data()[k] = r.Norm()
			}
			samples[j] = nn.Sample{Input: x, Label: j % 3}
		}
		mon, err := core.Build(netw, samples, core.Config{Layer: 1, Gamma: 1})
		if err != nil {
			b.Fatal(err)
		}
		if _, err := reg.Load(fmt.Sprintf("tenant-%d", i), registry.TenantConfig{Net: netw, Mon: mon}); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			t, err := reg.AcquireID(3)
			if err != nil {
				b.Fatal(err)
			}
			_ = t.Server()
			t.Release()
		}
	})
}
