// Command napmon-frontcar runs the paper's §III case study end to end: it
// trains the front-car selection network on simulated highway traffic,
// builds its activation monitor, and compares the monitor's firing rate on
// ordinary versus distribution-shifted traffic (Figure 3's architecture).
//
// Usage:
//
//	napmon-frontcar [-scale 1.0] [-seed 1] [-demo N]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"napmon/internal/exp"
	"napmon/internal/frontcar"
	"napmon/internal/rng"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("napmon-frontcar: ")
	scale := flag.Float64("scale", 1.0, "scene count scale factor")
	seed := flag.Uint64("seed", 1, "seed")
	demo := flag.Int("demo", 5, "print this many example shifted-scene verdicts")
	verbose := flag.Bool("v", false, "log training progress")
	flag.Parse()

	opts := exp.Options{Scale: *scale, Seed: *seed}
	if *verbose {
		opts.Log = os.Stderr
	}
	res, pipeline, err := exp.FrontCarStudy(opts)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(exp.RenderFrontCar(res))

	if *demo > 0 {
		fmt.Println("example decisions on shifted traffic:")
		r := rng.New(*seed + 999)
		for i := 0; i < *demo; i++ {
			s := frontcar.GenScene(frontcar.ShiftedSceneConfig(), r)
			v := pipeline.Decide(&s)
			class := fmt.Sprintf("vehicle %d", v.Class)
			if v.Class == frontcar.NoFrontCar {
				class = `"#" (no front car)`
			}
			status := "supported by training"
			if v.OutOfPattern {
				status = "OUT OF PATTERN - decision not supported by training"
			}
			fmt.Printf("  scene %d: %d vehicles, selector says %s — %s\n",
				i, len(s.Vehicles), class, status)
		}
	}
}
