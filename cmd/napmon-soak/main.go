// Command napmon-soak is the load generator for cmd/napmon-gateway: it
// hammers a gateway with wire-protocol watch requests over UDP or TCP
// for a fixed duration and reports throughput and latency percentiles
// as JSON.
//
// Two pacing modes:
//
//   - Open loop (-rate N): frames are sent on a fixed schedule, N per
//     second split across -conns workers, regardless of how fast
//     responses come back. This is the honest way to measure a server
//     under overload — a closed loop slows down with the server and
//     hides queueing delay (coordinated omission).
//   - Closed loop (-rate 0, default): each worker keeps -window
//     requests outstanding and sends the next as responses arrive.
//     This measures saturated throughput.
//
// Every response is matched to its request by frame id, so the report
// also counts frames that never came back (dropped), responses that
// fail the packet filter or decoder (malformed), overload shed replies
// (overloaded — error frames with code 3), and other protocol-level
// error frames (server_errors). With -strict, any of those makes the
// process exit 1 — this is the CI soak gate.
//
// -metrics URL points at the gateway's admin /metrics endpoint. The
// soak scrapes it before and after the run and cross-checks the
// server-side deltas against its own per-frame accounting: requests the
// server says it served must equal watch responses this client
// received, and gateway-reported sheds must equal the overload error
// frames it got back. A mismatch means lost or double-counted frames
// somewhere between the serving lanes and this socket; it is printed in
// the report and fails -strict.
//
// Against a fault-injected gateway (`make chaos-smoke`) two extra flags
// apply. -reconnect turns a mid-run connection death into a re-dial
// instead of a fatal error: the worker counts it in conn_errors,
// abandons that connection's unanswered sends as drops, and carries on
// with fresh pacing state. -chaos-check swaps -strict's closed
// accounting for the invariants that survive injected resets and
// corruption: responses were received at all, every received response
// decoded to a valid verdict, and (with -metrics) the client never
// received more verdicts than the server served.
//
// Usage:
//
//	napmon-soak -addr 127.0.0.1:9710 -proto udp -duration 10s [-rate 0]
//	            [-conns 4] [-window 32] [-shape 1,28,28] [-o soak.json]
//	            [-metrics http://127.0.0.1:9712/metrics] [-strict]
//	            [-reconnect] [-chaos-check]
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"sort"
	"sync"
	"time"

	"napmon/internal/exp"
	"napmon/internal/obs"
	"napmon/internal/rng"
	"napmon/internal/wire"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("napmon-soak: ")
	var (
		addr      = flag.String("addr", "127.0.0.1:9710", "gateway address")
		proto     = flag.String("proto", "udp", "transport: udp or tcp")
		duration  = flag.Duration("duration", 10*time.Second, "send for this long")
		rate      = flag.Float64("rate", 0, "open-loop request rate per second across all conns (0 = closed loop)")
		conns     = flag.Int("conns", 4, "concurrent connections (TCP) or sockets (UDP)")
		window    = flag.Int("window", 32, "closed-loop outstanding requests per conn; UDP shed-retry cap")
		shapeFlag = flag.String("shape", "", "input tensor shape to send (default: per -dataset)")
		ds        = flag.String("dataset", "mnist", "dataset whose native shape to send when -shape is empty")
		seed      = flag.Uint64("seed", 1, "input generator seed")
		out       = flag.String("o", "", "write the JSON report here (default stdout)")
		metricsU  = flag.String("metrics", "", "gateway admin /metrics URL to scrape before and after for server-side accounting (empty = off)")
		strict    = flag.Bool("strict", false, "exit 1 on any dropped, malformed, or error-frame response, or a server-vs-client accounting mismatch")
		probeWait = flag.Duration("connect-timeout", 10*time.Second, "budget for the initial ping probe")
		grace     = flag.Duration("grace", 2*time.Second, "wait this long after the send window for stragglers")

		reconnect  = flag.Bool("reconnect", false, "re-dial and keep going when a connection dies mid-run (for fault-injected gateways); transport failures are counted in conn_errors, not fatal")
		chaosCheck = flag.Bool("chaos-check", false, "exit 1 unless the run upholds the chaos invariants: responses were received, every received response decoded to a valid verdict, and (with -metrics) the client never received more than the server served")
	)
	flag.Parse()
	if *proto != "udp" && *proto != "tcp" {
		log.Fatalf("unknown -proto %q (want udp or tcp)", *proto)
	}
	if *conns < 1 || *window < 1 {
		log.Fatal("-conns and -window must be >= 1")
	}
	shape, err := exp.InputShape(*shapeFlag, *ds)
	if err != nil {
		log.Fatal(err)
	}

	if err := probe(*proto, *addr, *probeWait); err != nil {
		log.Fatalf("gateway probe failed: %v", err)
	}

	var before *serverSample
	if *metricsU != "" {
		s, err := scrape(*metricsU)
		if err != nil {
			log.Fatalf("pre-run metrics scrape: %v", err)
		}
		before = s
	}

	workers := make([]*worker, *conns)
	var wg sync.WaitGroup
	for i := range workers {
		w := newWorker(i, *proto, *addr, shape, *seed+uint64(i)*1e6, *window, *reconnect)
		workers[i] = w
		wg.Add(1)
		go func() {
			defer wg.Done()
			w.run(*duration, *rate/float64(*conns), *grace)
		}()
	}
	wg.Wait()

	// Throughput is measured over the send window (the longest worker's
	// dial-to-last-send span), not the straggler grace period — grace
	// only decides what counts as dropped.
	var elapsed time.Duration
	rep := report{Proto: *proto, Conns: *conns, Window: *window, Rate: *rate}
	var lat []time.Duration
	for _, w := range workers {
		if w.err != nil {
			log.Fatalf("conn %d: %v", w.id, w.err)
		}
		if w.sendElapsed > elapsed {
			elapsed = w.sendElapsed
		}
		rep.Sent += w.sent
		rep.Received += w.received
		rep.Malformed += w.malformed
		rep.Overloaded += w.overloaded
		rep.ServerErrors += w.serverErrors
		rep.ConnErrors += w.connErrors
		rep.Dropped += uint64(len(w.pending))
		lat = append(lat, w.lat...)
	}
	rep.DurationS = elapsed.Seconds()
	sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
	q := func(p float64) time.Duration {
		if len(lat) == 0 {
			return 0
		}
		i := int(p * float64(len(lat)))
		if i >= len(lat) {
			i = len(lat) - 1
		}
		return lat[i]
	}
	rep.ThroughputRPS = float64(rep.Received) / elapsed.Seconds()
	rep.P50Ns, rep.P99Ns, rep.P999Ns = q(0.50).Nanoseconds(), q(0.99).Nanoseconds(), q(0.999).Nanoseconds()
	rep.P50, rep.P99, rep.P999 = q(0.50).String(), q(0.99).String(), q(0.999).String()

	accountingOK := true
	if before != nil {
		after, err := scrape(*metricsU)
		if err != nil {
			log.Fatalf("post-run metrics scrape: %v", err)
		}
		sv := &serverSide{
			ServedDelta:    after.served - before.served,
			ShedDelta:      after.shed - before.shed,
			GwDroppedDelta: after.gwDropped - before.gwDropped,
		}
		// Served-side accounting must close: every request the server
		// counts as served came back here as a watch response, and every
		// gateway shed came back as an overload error frame. (Only holds
		// when this soak is the gateway's sole client — as in CI.)
		if sv.ServedDelta != rep.Received {
			accountingOK = false
			log.Printf("accounting mismatch: server served %d, client received %d",
				sv.ServedDelta, rep.Received)
		}
		if sv.GwDroppedDelta != rep.Overloaded {
			accountingOK = false
			log.Printf("accounting mismatch: gateway shed %d, client saw %d overload frames",
				sv.GwDroppedDelta, rep.Overloaded)
		}
		sv.ConsistentWithClient = accountingOK
		rep.Server = sv
	}

	enc, _ := json.MarshalIndent(rep, "", "  ")
	enc = append(enc, '\n')
	if *out != "" {
		if err := os.WriteFile(*out, enc, 0o644); err != nil {
			log.Fatal(err)
		}
	}
	os.Stdout.Write(enc)

	if *strict && (rep.Dropped > 0 || rep.Malformed > 0 || rep.Overloaded > 0 || rep.ServerErrors > 0 || !accountingOK) {
		log.Fatalf("strict: %d dropped, %d malformed, %d overloaded, %d server errors, accounting ok=%v",
			rep.Dropped, rep.Malformed, rep.Overloaded, rep.ServerErrors, accountingOK)
	}

	// Chaos gates can't demand -strict's closed accounting — injected
	// resets legitimately lose responses and corrupted requests
	// legitimately earn error frames. What must still hold: the service
	// did real work (responses came back), every response that did come
	// back decoded to a valid verdict, and the client never received more
	// verdicts than the server claims it served (phantom responses).
	if *chaosCheck {
		ok := true
		if rep.Received == 0 {
			ok = false
			log.Printf("chaos-check: no watch responses received — the service did no useful work under faults")
		}
		if rep.Malformed > 0 {
			ok = false
			log.Printf("chaos-check: %d malformed responses — an acknowledged frame carried an unreadable verdict", rep.Malformed)
		}
		if rep.Server != nil && rep.Received > rep.Server.ServedDelta {
			ok = false
			log.Printf("chaos-check: client received %d verdicts but the server only served %d — phantom responses",
				rep.Received, rep.Server.ServedDelta)
		}
		if !ok {
			log.Fatal("chaos-check failed")
		}
		log.Printf("chaos-check ok: %d verdicts received, 0 malformed, %d connection failures survived",
			rep.Received, rep.ConnErrors)
	}
}

// serverSample is one scrape of the counters the accounting check uses.
type serverSample struct {
	served    uint64
	shed      uint64
	gwDropped uint64
}

// scrape fetches and parses a Prometheus exposition, pulling out the
// serve/gateway counters the server-vs-client accounting diff needs.
// The exposition is validated wholesale by the internal parser, so a
// malformed metrics page fails the soak loudly rather than reading as
// zeros.
func scrape(url string) (*serverSample, error) {
	resp, err := http.Get(url)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("GET %s: %s", url, resp.Status)
	}
	exp, err := obs.ParseExposition(resp.Body)
	if err != nil {
		return nil, fmt.Errorf("parse %s: %w", url, err)
	}
	s := &serverSample{}
	for _, f := range []struct {
		name string
		dst  *uint64
	}{
		{"napmon_requests_served_total", &s.served},
		{"napmon_requests_shed_total", &s.shed},
		{"napmon_gateway_frames_dropped_total", &s.gwDropped},
	} {
		v, ok := exp.Value(f.name, nil)
		if !ok {
			return nil, fmt.Errorf("%s: series %s missing", url, f.name)
		}
		*f.dst = uint64(v)
	}
	return s, nil
}

// report is the JSON document the soak run emits.
type report struct {
	Proto         string  `json:"proto"`
	Conns         int     `json:"conns"`
	Window        int     `json:"window"`
	Rate          float64 `json:"rate"`
	DurationS     float64 `json:"duration_s"`
	Sent          uint64  `json:"sent"`
	Received      uint64  `json:"received"`
	Dropped       uint64  `json:"dropped"`
	Malformed     uint64  `json:"malformed"`
	Overloaded    uint64  `json:"overloaded"`
	ServerErrors  uint64  `json:"server_errors"`
	ConnErrors    uint64  `json:"conn_errors"`
	ThroughputRPS float64 `json:"throughput_rps"`
	P50Ns         int64   `json:"p50_ns"`
	P99Ns         int64   `json:"p99_ns"`
	P999Ns        int64   `json:"p999_ns"`
	P50           string  `json:"p50"`
	P99           string  `json:"p99"`
	P999          string  `json:"p999"`
	// Server is the /metrics-derived accounting diff; present only when
	// -metrics was given.
	Server *serverSide `json:"server,omitempty"`
}

// serverSide is the server's view of the run, from /metrics deltas.
type serverSide struct {
	ServedDelta          uint64 `json:"served_delta"`
	ShedDelta            uint64 `json:"shed_delta"`
	GwDroppedDelta       uint64 `json:"gw_dropped_delta"`
	ConsistentWithClient bool   `json:"consistent_with_client"`
}

// probe pings the gateway once so a wrong address fails fast with a
// clear message instead of a ten-second soak full of drops.
func probe(proto, addr string, budget time.Duration) error {
	deadline := time.Now().Add(budget)
	var lastErr error
	for time.Now().Before(deadline) {
		c, err := net.DialTimeout(proto, addr, time.Second)
		if err != nil {
			lastErr = err
			time.Sleep(100 * time.Millisecond)
			continue
		}
		c.SetDeadline(time.Now().Add(time.Second))
		c.Write(wire.AppendPing(nil, 0))
		var h wire.Header
		if proto == "udp" {
			buf := make([]byte, wire.MaxUDPFrame)
			n, err := c.Read(buf)
			if err == nil && wire.BasicPacketFilter(buf[:n]) {
				h, err = wire.ParseHeader(buf[:n])
			}
			lastErr = err
		} else {
			h, _, lastErr = wire.ReadFrame(c, nil)
		}
		c.Close()
		if lastErr == nil && h.Type == wire.TypePong {
			return nil
		}
		if lastErr == nil {
			lastErr = fmt.Errorf("ping answered with frame type %d", h.Type)
		}
		time.Sleep(100 * time.Millisecond)
	}
	return lastErr
}

// worker owns one connection (TCP) or socket (UDP): a sender paced by
// the chosen mode, a receiver matching responses to send timestamps by
// frame id, and per-conn tallies merged by main after the run.
type worker struct {
	id    int
	proto string
	addr  string
	frame []byte // pre-encoded watch request; id+checksum rewritten per send
	shape []int
	r     *rng.Source

	mu      sync.Mutex
	pending map[uint32]time.Time
	tokens  chan struct{}

	window       int
	reconnect    bool
	sendElapsed  time.Duration
	sent         uint64
	received     uint64
	malformed    uint64
	overloaded   uint64
	serverErrors uint64
	connErrors   uint64
	lat          []time.Duration
	err          error
}

func newWorker(id int, proto, addr string, shape []int, seed uint64, window int, reconnect bool) *worker {
	return &worker{
		id: id, proto: proto, addr: addr, shape: shape,
		r: rng.New(seed), window: window, reconnect: reconnect,
		pending: make(map[uint32]time.Time),
	}
}

// nextFrame encodes a watch request with fresh random input and the
// given id. Inputs vary per frame so zone lookups spread across the
// monitor's classes the way real traffic would.
func (w *worker) nextFrame(id uint32) []byte {
	n := 1
	for _, d := range w.shape {
		n *= d
	}
	in := make([]float64, n)
	for i := range in {
		in[i] = w.r.Float64()
	}
	frame, err := wire.AppendWatchReq(w.frame[:0], id, wire.DefaultTenant, w.shape, in)
	if err != nil {
		panic(err) // shape was validated at startup
	}
	w.frame = frame
	return frame
}

func (w *worker) run(duration time.Duration, rate float64, grace time.Duration) {
	sendStart := time.Now()
	end := sendStart.Add(duration)
	var id uint32
	for {
		redial := w.session(sendStart, end, rate, grace, &id)
		if !redial || !time.Now().Before(end) {
			return
		}
		// Pause briefly so a flapping gateway doesn't turn the dial loop
		// into a connect storm.
		time.Sleep(100 * time.Millisecond)
	}
}

// session owns one connection's lifetime: dial, pace sends until the
// window ends or the transport dies, drain stragglers, tear down. It
// returns true when run should re-dial — -reconnect mode and the
// connection died with send time left. Frame ids continue across
// sessions so late responses from a previous connection can never be
// mistaken for current ones.
func (w *worker) session(sendStart, end time.Time, rate float64, grace time.Duration, id *uint32) bool {
	c, err := net.Dial(w.proto, w.addr)
	if err != nil {
		return w.connFailed(err)
	}
	defer c.Close()
	c.SetDeadline(end.Add(grace + time.Minute))
	if uc, ok := c.(*net.UDPConn); ok {
		// Responses arrive in micro-batch-sized bursts; a default-sized
		// socket buffer overflows under them and every loss leaks a
		// window token. Best-effort — the kernel clamps to its own max.
		uc.SetReadBuffer(4 << 20)
		uc.SetWriteBuffer(4 << 20)
	}

	// tokens caps outstanding requests in closed-loop mode; the receiver
	// refills it. Open loop ignores it and trusts the pacer. Fresh per
	// session: tokens stranded in a dead connection's unanswered sends
	// must not throttle the next session. Published before the receiver
	// starts so its refills see the right channel.
	tokens := make(chan struct{}, w.window)
	for i := 0; i < w.window; i++ {
		tokens <- struct{}{}
	}
	w.mu.Lock()
	w.tokens = tokens
	w.mu.Unlock()

	recvDone := make(chan struct{})
	stopRecv := make(chan struct{})
	connDead := make(chan struct{})
	go func() {
		defer close(recvDone)
		if !w.receive(c, stopRecv) {
			close(connDead)
		}
	}()

	var ticker *time.Ticker
	if rate > 0 {
		ticker = time.NewTicker(time.Duration(float64(time.Second) / rate))
		defer ticker.Stop()
	}
	endTimer := time.NewTimer(time.Until(end))
	defer endTimer.Stop()
	var sessErr error
	died := false
sendLoop:
	for time.Now().Before(end) {
		if ticker != nil {
			select {
			case <-ticker.C:
			case <-connDead:
				died = true
				break sendLoop
			}
		} else {
			// A lost response (UDP) permanently leaks its window token, so
			// the wait must not outlive the send window — losing the whole
			// window stalls this worker for the rest of the run (reported
			// as drops), never hangs it.
			select {
			case <-tokens:
			case <-endTimer.C:
				continue
			case <-connDead:
				died = true
				break sendLoop
			}
		}
		frame := w.nextFrame(*id)
		w.mu.Lock()
		w.pending[*id] = time.Now()
		w.mu.Unlock()
		if _, err := c.Write(frame); err != nil {
			sessErr = err
			died = true
			break
		}
		w.sent++
		*id++
	}
	if se := time.Since(sendStart); se > w.sendElapsed {
		w.sendElapsed = se
	}
	select {
	case <-connDead:
		died = true
	default:
	}

	if !died {
		// Clean end of the send window: give stragglers a grace period,
		// then stop the receiver; whatever is still pending counts as
		// dropped. A dead connection skips this — its unanswered sends
		// can never be answered.
		gdl := time.Now().Add(grace)
		for time.Now().Before(gdl) {
			w.mu.Lock()
			n := len(w.pending)
			w.mu.Unlock()
			if n == 0 {
				break
			}
			time.Sleep(10 * time.Millisecond)
		}
	}
	close(stopRecv)
	c.SetReadDeadline(time.Now()) // unblock the receiver
	<-recvDone
	if died {
		return w.connFailed(sessErr)
	}
	return false
}

// connFailed tallies one dead connection and reports whether run should
// re-dial. Outside -reconnect mode the first error is kept and the
// worker stops, preserving the historical fail-fast behavior.
func (w *worker) connFailed(err error) bool {
	w.mu.Lock()
	w.connErrors++
	if err != nil && !w.reconnect && w.err == nil {
		w.err = err
	}
	w.mu.Unlock()
	return w.reconnect
}

// receive reads response frames until stop, matching them to pending
// sends and recording latency. It returns false when the transport died
// underneath it rather than being stopped by the sender.
func (w *worker) receive(c net.Conn, stop <-chan struct{}) bool {
	buf := make([]byte, wire.MaxUDPFrame)
	for {
		select {
		case <-stop:
			return true
		default:
		}
		var (
			h       wire.Header
			payload []byte
			err     error
		)
		if w.proto == "udp" {
			var n int
			n, err = c.Read(buf)
			if err == nil {
				pkt := buf[:n]
				if !wire.BasicPacketFilter(pkt) {
					w.mu.Lock()
					w.malformed++
					w.mu.Unlock()
					continue
				}
				h, _ = wire.ParseHeader(pkt)
				payload = pkt[wire.HeaderSize : wire.HeaderSize+int(h.PayloadLen)]
			}
		} else {
			h, payload, err = wire.ReadFrame(c, buf[:0])
		}
		if err != nil {
			select {
			case <-stop: // expected: deadline fired during teardown
				return true
			default:
			}
			if errors.Is(err, net.ErrClosed) {
				return true
			}
			if !w.reconnect {
				w.mu.Lock()
				if w.err == nil {
					w.err = err
				}
				w.mu.Unlock()
			}
			return false
		}
		now := time.Now()
		w.mu.Lock()
		sentAt, ok := w.pending[h.ID]
		if ok {
			delete(w.pending, h.ID)
		}
		switch {
		case !ok:
			w.malformed++ // response to a frame we never sent
		case h.Type == wire.TypeWatchResp:
			if _, derr := wire.DecodeWatchResp(payload); derr != nil {
				w.malformed++
			} else {
				w.received++
				w.lat = append(w.lat, now.Sub(sentAt))
			}
		case h.Type == wire.TypeErr:
			// Overload sheds are the server's explicit backpressure signal
			// and must reconcile against the gateway's dropped counter;
			// anything else is an unexpected failure.
			if code, _, derr := wire.DecodeErr(payload); derr == nil && code == wire.ErrCodeOverloaded {
				w.overloaded++
			} else {
				w.serverErrors++
			}
		default:
			w.malformed++
		}
		w.mu.Unlock()
		if ok {
			select {
			case w.tokens <- struct{}{}:
			default:
			}
		}
	}
}
