package main

import (
	"context"
	"net/http"
	"testing"
	"time"
)

// TestBackoffSequence pins the pacing policy with a deterministic rand
// (always drawing the top of the jitter window): base while healthy,
// then windows doubling per failure — 2×, 4×, 8×, 16×, 32× capped at
// 30× — and an instant snap back to base on success.
func TestBackoffSequence(t *testing.T) {
	const base = 100 * time.Millisecond
	bo := newBackoff(base)
	bo.rand = func() float64 { return 1 }

	if got := bo.next(); got != base {
		t.Fatalf("healthy delay %v, want base %v", got, base)
	}
	want := []time.Duration{
		200 * time.Millisecond,  // 2×
		400 * time.Millisecond,  // 4×
		800 * time.Millisecond,  // 8×
		1600 * time.Millisecond, // 16×
		3 * time.Second,         // 32× capped at 30×
		3 * time.Second,         // stays at the cap
		3 * time.Second,
	}
	for i, w := range want {
		bo.failure()
		if got := bo.next(); got != w {
			t.Fatalf("delay after %d failures = %v, want %v", i+1, got, w)
		}
	}
	bo.success()
	if got := bo.next(); got != base {
		t.Fatalf("post-recovery delay %v, want base %v", got, base)
	}
	// A fresh failure after recovery starts the doubling over.
	bo.failure()
	if got := bo.next(); got != 200*time.Millisecond {
		t.Fatalf("first failure after recovery drew %v, want 2× base", got)
	}
}

// TestBackoffJitterBounds: real draws stay strictly inside (0, window]
// — never zero (busy retry) and never above the window.
func TestBackoffJitterBounds(t *testing.T) {
	bo := newBackoff(100 * time.Millisecond)
	bo.failure()
	bo.failure() // window 400ms
	for i := 0; i < 1000; i++ {
		d := bo.next()
		if d < time.Millisecond || d > 400*time.Millisecond {
			t.Fatalf("draw %d: %v outside (1ms, 400ms]", i, d)
		}
	}
}

// TestFollowerRunBacksOff drives run against a leader that fails every
// poll, with a fake sleeper recording the requested delays: the
// sequence must grow per the backoff policy, proving run actually feeds
// failures back into its pacing.
func TestFollowerRunBacksOff(t *testing.T) {
	srv := newHangingLeader(false) // reuse fixture for its URL...
	srv.Close()                    // ...but closed: every poll fails instantly
	f := newFollower(&daemon{}, srv.srv.URL, 100*time.Millisecond)

	var delays []time.Duration
	ctx, cancel := context.WithCancel(context.Background())
	f.sleep = func(_ context.Context, d time.Duration) bool {
		delays = append(delays, d)
		if len(delays) >= 4 {
			cancel()
			return false
		}
		return true
	}
	done := make(chan struct{})
	go func() { f.run(ctx); close(done) }()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("run did not exit after its sleeper reported cancellation")
	}
	// delays[0] is the healthy pre-poll delay; each later one follows a
	// failed poll, so its jitter window doubles: (0, 200ms], (0, 400ms],
	// (0, 800ms].
	if len(delays) != 4 {
		t.Fatalf("recorded %d delays, want 4", len(delays))
	}
	if delays[0] != 100*time.Millisecond {
		t.Fatalf("first delay %v, want the healthy poll interval", delays[0])
	}
	for i, window := range []time.Duration{200, 400, 800} {
		d := delays[i+1]
		if d < time.Millisecond || d > window*time.Millisecond {
			t.Fatalf("delay after %d failures = %v, outside (0, %vms]", i+1, d, window)
		}
	}
}

// TestBootstrapRetryRecovers: a leader that refuses the first attempts
// and then comes up is bootstrapped, not fatal. The follower here has
// no tenants to load (empty model list is an error), so success is
// approximated by observing the retry loop spin under backoff and then
// give up within its budget — the retry mechanics, not the sync.
func TestBootstrapRetryBudget(t *testing.T) {
	srv := newHangingLeader(false)
	srv.Close() // connection refused on every attempt
	f := newFollower(&daemon{}, srv.srv.URL, 10*time.Millisecond)
	attempts := 0
	f.sleep = func(_ context.Context, d time.Duration) bool {
		attempts++
		return true
	}
	start := time.Now()
	err := f.bootstrapRetry(context.Background(), 300*time.Millisecond)
	if err == nil {
		t.Fatal("bootstrapRetry against a dead leader returned nil")
	}
	if attempts == 0 {
		t.Fatal("bootstrapRetry never slept — no retries happened")
	}
	if elapsed := time.Since(start); elapsed > 10*time.Second {
		t.Fatalf("bootstrapRetry overran its budget: %v", elapsed)
	}
}

// TestBootstrapRetryCancelled: a done context stops the retry loop with
// the bootstrap error instead of spinning out the budget.
func TestBootstrapRetryCancelled(t *testing.T) {
	srv := newHangingLeader(false)
	srv.Close()
	f := newFollower(&daemon{}, srv.srv.URL, 10*time.Millisecond)
	f.client = http.Client{Timeout: 50 * time.Millisecond}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	done := make(chan error, 1)
	go func() { done <- f.bootstrapRetry(ctx, time.Hour) }()
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("cancelled bootstrapRetry returned nil")
		}
	case <-time.After(10 * time.Second):
		t.Fatal("cancelled bootstrapRetry did not return")
	}
}
