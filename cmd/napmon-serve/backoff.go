package main

import (
	"context"
	"math/rand"
	"time"
)

// backoff paces the follower's replication polls by leader health. A
// healthy leader is polled at the base interval; after a failure the
// delay is drawn with full jitter — uniform over (0, window] where the
// window doubles per consecutive failure up to the cap — so a dead
// leader is not hammered at full rate and a recovering one is not
// stampeded by every follower waking on the same beat. The first
// success snaps back to the base interval.
type backoff struct {
	base time.Duration // healthy poll interval
	max  time.Duration // window cap (≈30× base)

	fails int
	rand  func() float64 // uniform [0,1); injectable for tests
}

func newBackoff(poll time.Duration) *backoff {
	return &backoff{base: poll, max: 30 * poll, rand: rand.Float64}
}

// next returns the delay before the next poll attempt.
func (b *backoff) next() time.Duration {
	if b.fails == 0 {
		return b.base
	}
	window := b.base << uint(b.fails)
	if window <= 0 || window > b.max { // <= 0 is shift overflow
		window = b.max
	}
	d := time.Duration(b.rand() * float64(window))
	if d < time.Millisecond {
		// Full jitter can draw ~0; a floor keeps a zero draw from
		// degenerating into a busy retry.
		d = time.Millisecond
	}
	return d
}

// success resets the window: the leader answered.
func (b *backoff) success() { b.fails = 0 }

// failure widens the window for the next draw.
func (b *backoff) failure() {
	if b.base<<uint(b.fails) < b.max {
		b.fails++
	}
}

// sleepCtx blocks for d or until ctx is done, reporting whether the
// full delay elapsed. It is the follower's default sleeper; tests swap
// in a recorder.
func sleepCtx(ctx context.Context, d time.Duration) bool {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return true
	case <-ctx.Done():
		return false
	}
}
