// Command napmon-serve runs the streaming serving daemon. It fronts a
// multi-tenant model registry (napmon.Registry): every loaded tenant is
// a (model, monitor, server) lane with its own micro-batching queue,
// hot-loaded and hot-unloaded while traffic flows. The versioned HTTP
// API is tenant-scoped:
//
//	POST   /v1/models/{name}/watch    {"shape":[1,28,28],"input":[...]} → one verdict
//	POST   /v1/models/{name}/learn    {"class":3,"patterns":["0101..."]} → absorb
//	                                  patterns, publish a new serving epoch
//	GET    /v1/models/{name}/stats    serving counters, latency percentiles, epoch
//	GET    /v1/models                 list loaded tenants
//	PUT    /v1/models/{name}          load a tenant (model/monitor files or selftrain)
//	DELETE /v1/models/{name}          unload a tenant (drains in-flight work)
//	GET    /v1/models/{name}/snapshot compact binary monitor snapshot (replication)
//	GET    /v1/models/{name}/deltas   ?since=N → binary epoch-delta stream; 410 Gone
//	                                  when N predates the bounded delta log
//	GET    /v1/models/{name}/model    binary model weights (follower bootstrap)
//	GET    /metrics                   Prometheus text: registry + per-tenant series
//	GET    /healthz                   liveness probe
//
// The pre-fleet routes survive as aliases for the "default" tenant —
// POST /watch, POST /learn and GET /stats behave exactly as before but
// answer with a Deprecation header pointing at the /v1 successor, so
// existing clients keep working while new ones bind the versioned
// paths.
//
// -pprof additionally mounts net/http/pprof under /debug/pprof/ on the
// same listener (off by default: profiling endpoints leak heap contents
// and should be opted into, not shipped silently).
//
// /learn is the online-update loop: a client that sees a flagged (or
// independently misclassified) decision can feed the verdict's "pattern"
// string back under the decision's true class; the monitor shadow-builds
// the touched zones and swaps them in atomically while /watch traffic
// keeps flowing. Each tenant's updates also land in a bounded
// epoch-keyed delta log, which is what /deltas serves to followers.
//
// Started with -follow <leader-url> the daemon is a replication
// follower: it lists the leader's tenants, warm-starts each from a
// compact snapshot (frozen at the leader's epoch), then polls the delta
// streams and applies them in epoch order — converging bit-for-bit with
// the leader's monitors. A follower serves /watch traffic but is
// read-only: /learn, PUT and DELETE answer 409. If a follower falls
// behind the leader's bounded delta log (410 on /deltas) it re-syncs
// from a fresh snapshot.
//
// On SIGINT/SIGTERM the daemon shuts down gracefully: the listener stops
// accepting, in-flight HTTP requests finish, and every tenant's serving
// queue is drained before exit.
//
// Usage:
//
//	napmon-serve -model m.model -monitor m.monitor [-addr :8080]
//	napmon-serve -selftrain 0.05 [-dataset mnist] [-gamma 2]
//	             [-max-batch 64] [-max-delay 2ms] [-queue 1024] [-lanes 1]
//	napmon-serve -follow http://leader:8080 [-follow-poll 500ms]
//
// -selftrain trains the chosen Table I network at the given dataset scale
// in-process and serves it as the "default" tenant (handy for demos and
// smoke tests; see `make serve-demo` and `make fleet-smoke`). Requests
// whose input shape differs from a tenant's model are rejected with 400 —
// the tensor kernels panic on mismatched inference, so the daemon gates
// them out up front.
package main

import (
	"context"
	"flag"
	"log"
	"net/http"
	"os/signal"
	"syscall"
	"time"

	"napmon"
	"napmon/internal/chaos"
	"napmon/internal/exp"
	"napmon/internal/obs"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("napmon-serve: ")
	var (
		addr        = flag.String("addr", "127.0.0.1:8080", "HTTP listen address")
		modelPath   = flag.String("model", "", "trained model file (napmon-train -model)")
		monitorPath = flag.String("monitor", "", "monitor file (napmon-train -monitor)")
		selftrain   = flag.Float64("selftrain", 0, "train in-process at this dataset scale instead of loading files (0 = off)")
		ds          = flag.String("dataset", "mnist", "self-training dataset: mnist or gtsrb")
		seed        = flag.Uint64("seed", 1, "self-training seed")
		gamma       = flag.Int("gamma", 2, "self-trained monitor gamma")
		maxBatch    = flag.Int("max-batch", 0, "micro-batch flush threshold (0 = default)")
		maxDelay    = flag.Duration("max-delay", 0, "partial-batch flush deadline (0 = default)")
		queueDepth  = flag.Int("queue", 0, "request queue depth (0 = default)")
		lanes       = flag.Int("lanes", 0, "serving lanes / network replicas (0 = default)")
		drainWait   = flag.Duration("drain", 30*time.Second, "graceful shutdown budget")
		shapeFlag   = flag.String("shape", "", "expected input tensor shape, e.g. 1,28,28 (default: per -dataset)")
		pprofFlag   = flag.Bool("pprof", false, "mount net/http/pprof under /debug/pprof/")
		followURL   = flag.String("follow", "", "replicate from this leader base URL instead of loading a model (read-only follower)")
		followPoll  = flag.Duration("follow-poll", 500*time.Millisecond, "delta poll interval in -follow mode")

		followChaosSeed   = flag.Uint64("follow-chaos-seed", 0, "fault-injection seed for the leader client (testing; 0 = off)")
		followChaosFaults = flag.Int("follow-chaos-faults", 0, "fault budget for -follow-chaos-seed (0 = unbounded)")
	)
	flag.Parse()

	d := &daemon{
		reg:      napmon.NewRegistry(napmon.RegistryConfig{Grace: *drainWait}),
		obsReg:   obs.NewRegistry(),
		follower: *followURL != "",
		shapes:   map[string][]int{},
		serveCfg: napmon.ServerConfig{
			MaxBatch:   *maxBatch,
			MaxDelay:   *maxDelay,
			QueueDepth: *queueDepth,
			Lanes:      *lanes,
		},
	}
	d.reg.RegisterMetrics(d.obsReg)

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	var fol *follower
	if d.follower {
		fol = newFollower(d, *followURL, *followPoll)
		if *followChaosSeed != 0 {
			// Chaos gates put the whole leader conversation behind an
			// injected-fault transport: resets, 5xx bursts and hangs (the
			// stall outlives the request timeout, so hangs surface as
			// client deadline errors). Same seed, same fault sequence.
			plan := chaos.NewSchedule(*followChaosSeed, chaos.Rates{
				Reset:     0.15,
				HTTPErr:   0.15,
				HTTPHang:  0.05,
				StallFor:  2 * fol.timeout,
				MaxFaults: *followChaosFaults,
			})
			fol.client.Transport = chaos.NewRoundTripper(nil, plan, nil)
			log.Printf("follow: chaos transport armed (seed %d, budget %d)", *followChaosSeed, *followChaosFaults)
		}
		// Retry under backoff: a follower racing its leader up (or
		// starting into an injected fault burst) converges instead of
		// dying on the first refused connection.
		if err := fol.bootstrapRetry(ctx, time.Minute); err != nil {
			log.Fatalf("follow %s: %v", *followURL, err)
		}
		log.Printf("following %s (%d tenants, poll %v)", *followURL, d.reg.Len(), *followPoll)
	} else {
		shape, err := exp.InputShape(*shapeFlag, *ds)
		if err != nil {
			log.Fatal(err)
		}
		net, mon, err := exp.LoadOrTrain(*modelPath, *monitorPath, *selftrain, *ds, *seed, *gamma, log.Printf)
		if err != nil {
			log.Fatal(err)
		}
		if err := exp.ProbeShape(net, shape); err != nil {
			log.Fatal(err)
		}
		sc := d.serveCfg
		// Shape-mismatched inference panics in the tensor kernels; the
		// server-side gate turns an untrusted bad request into a Submit
		// error instead of a dead daemon.
		sc.InputShape = shape
		d.setShape(napmon.DefaultTenant, shape) // gate before the tenant is acquirable
		t, err := d.reg.Load(napmon.DefaultTenant, napmon.TenantConfig{Net: net, Mon: mon, Serve: sc})
		if err != nil {
			log.Fatal(err)
		}
		// The default tenant also feeds the unlabelled napmon_* series the
		// legacy /stats cross-checks expect; per-tenant series live in the
		// napmon_tenant_* families the registry registered above.
		t.Server().RegisterMetrics(d.obsReg)
	}

	mux := d.routes(*pprofFlag)
	// Header/read timeouts keep one slow-trickling client from pinning a
	// connection forever and forcing every graceful drain to abort.
	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           mux,
		ReadHeaderTimeout: 10 * time.Second,
		ReadTimeout:       time.Minute,
	}

	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.ListenAndServe() }()
	if fol != nil {
		go fol.run(ctx)
	}
	log.Printf("serving on http://%s (/v1/models..., legacy /watch /learn /stats, GET /metrics, GET /healthz)", *addr)

	select {
	case err := <-errCh:
		log.Fatal(err)
	case <-ctx.Done():
	}
	// Release the signal registration now: a second SIGINT/SIGTERM during
	// a stuck drain falls back to default handling and kills the process
	// instead of being swallowed by the already-done context.
	stop()
	log.Printf("signal received, draining (budget %v)...", *drainWait)
	dctx, cancel := context.WithTimeout(context.Background(), *drainWait)
	defer cancel()
	if err := httpSrv.Shutdown(dctx); err != nil {
		log.Printf("http shutdown: %v", err)
	}
	var served, batches uint64
	for _, name := range d.reg.Names() {
		if t := d.reg.Peek(name); t != nil {
			st := t.Server().Stats()
			served += st.Served
			batches += st.Batches
		}
	}
	if err := d.reg.Close(dctx); err != nil {
		log.Printf("registry close: %v", err)
	}
	log.Printf("drained: served %d requests in %d batches across the fleet", served, batches)
}
