// Command napmon-serve runs the streaming serving daemon: it loads (or
// self-trains) a model and its activation monitor, starts a napmon.Serve
// server — bounded request queue, micro-batching coalescer, per-lane
// network replicas — and exposes it over HTTP/JSON:
//
//	POST /watch    {"shape":[1,28,28],"input":[...]} → one verdict
//	POST /learn    {"class":3,"patterns":["0101..."]} → absorb patterns,
//	               publish a new serving epoch (serve-while-retraining)
//	GET  /stats    serving counters, per-stage latency percentiles,
//	               monitor verdict tallies, current epoch
//	GET  /metrics  Prometheus text exposition (internal/obs registry):
//	               serve counters, per-stage latency histograms, per-class
//	               watched/out-of-pattern tallies, epoch/swap/BDD series
//	GET  /healthz  liveness probe
//
// -pprof additionally mounts net/http/pprof under /debug/pprof/ on the
// same listener (off by default: profiling endpoints leak heap contents
// and should be opted into, not shipped silently).
//
// /learn is the online-update loop: a client that sees a flagged (or
// independently misclassified) decision can feed the verdict's "pattern"
// string back under the decision's true class; the monitor shadow-builds
// the touched zones and swaps them in atomically while /watch traffic
// keeps flowing.
//
// On SIGINT/SIGTERM the daemon shuts down gracefully: the listener stops
// accepting, in-flight HTTP requests finish, and the serving queue is
// drained before exit.
//
// Usage:
//
//	napmon-serve -model m.model -monitor m.monitor [-addr :8080]
//	napmon-serve -selftrain 0.05 [-dataset mnist] [-gamma 2]
//	             [-max-batch 64] [-max-delay 2ms] [-queue 1024] [-lanes 1]
//
// -selftrain trains the chosen Table I network at the given dataset scale
// in-process (handy for demos and smoke tests; see `make serve-demo`).
// Requests whose input shape differs from the model's (-shape, default
// the dataset's native shape) are rejected with 400 — the tensor kernels
// panic on mismatched inference, so the daemon gates them out up front.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"net/http/pprof"
	"os/signal"
	"slices"
	"syscall"
	"time"

	"napmon"
	"napmon/internal/exp"
	"napmon/internal/obs"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("napmon-serve: ")
	var (
		addr        = flag.String("addr", "127.0.0.1:8080", "HTTP listen address")
		modelPath   = flag.String("model", "", "trained model file (napmon-train -model)")
		monitorPath = flag.String("monitor", "", "monitor file (napmon-train -monitor)")
		selftrain   = flag.Float64("selftrain", 0, "train in-process at this dataset scale instead of loading files (0 = off)")
		ds          = flag.String("dataset", "mnist", "self-training dataset: mnist or gtsrb")
		seed        = flag.Uint64("seed", 1, "self-training seed")
		gamma       = flag.Int("gamma", 2, "self-trained monitor gamma")
		maxBatch    = flag.Int("max-batch", 0, "micro-batch flush threshold (0 = default)")
		maxDelay    = flag.Duration("max-delay", 0, "partial-batch flush deadline (0 = default)")
		queueDepth  = flag.Int("queue", 0, "request queue depth (0 = default)")
		lanes       = flag.Int("lanes", 0, "serving lanes / network replicas (0 = default)")
		drainWait   = flag.Duration("drain", 30*time.Second, "graceful shutdown budget")
		shapeFlag   = flag.String("shape", "", "expected input tensor shape, e.g. 1,28,28 (default: per -dataset)")
		pprofFlag   = flag.Bool("pprof", false, "mount net/http/pprof under /debug/pprof/")
	)
	flag.Parse()

	shape, err := exp.InputShape(*shapeFlag, *ds)
	if err != nil {
		log.Fatal(err)
	}
	net, mon, err := exp.LoadOrTrain(*modelPath, *monitorPath, *selftrain, *ds, *seed, *gamma, log.Printf)
	if err != nil {
		log.Fatal(err)
	}
	if err := exp.ProbeShape(net, shape); err != nil {
		log.Fatal(err)
	}
	srv, err := napmon.Serve(net, mon, napmon.ServerConfig{
		MaxBatch:   *maxBatch,
		MaxDelay:   *maxDelay,
		QueueDepth: *queueDepth,
		Lanes:      *lanes,
		// Shape-mismatched inference panics in the tensor kernels; the
		// server-side gate turns an untrusted bad request into a Submit
		// error instead of a dead daemon.
		InputShape: shape,
	})
	if err != nil {
		log.Fatal(err)
	}

	reg := obs.NewRegistry()
	srv.RegisterMetrics(reg)

	mux := http.NewServeMux()
	mux.HandleFunc("/watch", handleWatch(srv, shape))
	mux.HandleFunc("/learn", handleLearn(srv, mon))
	mux.HandleFunc("/stats", handleStats(srv))
	mux.Handle("/metrics", reg.Handler())
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		fmt.Fprintln(w, "ok")
	})
	if *pprofFlag {
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
	// Header/read timeouts keep one slow-trickling client from pinning a
	// connection forever and forcing every graceful drain to abort.
	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           mux,
		ReadHeaderTimeout: 10 * time.Second,
		ReadTimeout:       time.Minute,
	}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()
	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.ListenAndServe() }()
	log.Printf("serving on http://%s (POST /watch, GET /stats, GET /metrics, GET /healthz)", *addr)

	select {
	case err := <-errCh:
		log.Fatal(err)
	case <-ctx.Done():
	}
	// Release the signal registration now: a second SIGINT/SIGTERM during
	// a stuck drain falls back to default handling and kills the process
	// instead of being swallowed by the already-done context.
	stop()
	log.Printf("signal received, draining (budget %v)...", *drainWait)
	dctx, cancel := context.WithTimeout(context.Background(), *drainWait)
	defer cancel()
	if err := httpSrv.Shutdown(dctx); err != nil {
		log.Printf("http shutdown: %v", err)
	}
	if err := srv.Shutdown(dctx); err != nil {
		log.Printf("server shutdown: %v", err)
	}
	st := srv.Stats()
	log.Printf("drained: served %d requests in %d batches (mean %.1f/batch), p50 %v, p99 %v",
		st.Served, st.Batches, st.MeanBatchSize, st.P50, st.P99)
}

// watchRequest is the POST /watch body: a flat row-major input plus its
// tensor shape (e.g. [1,28,28] for the MNIST-like network).
type watchRequest struct {
	Shape []int     `json:"shape"`
	Input []float64 `json:"input"`
}

// watchResponse mirrors napmon.Verdict for JSON consumers.
type watchResponse struct {
	Class        int    `json:"class"`
	Monitored    bool   `json:"monitored"`
	OutOfPattern bool   `json:"out_of_pattern"`
	Pattern      string `json:"pattern"`
}

func handleWatch(srv *napmon.Server, shape []int) http.HandlerFunc {
	want := 1
	for _, d := range shape {
		want *= d
	}
	return func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			http.Error(w, "POST only", http.StatusMethodNotAllowed)
			return
		}
		// Cap the body before decoding: without a limit, one oversized
		// request allocates its whole float array (and can OOM the
		// daemon) before the element-count check below ever runs. ~25
		// bytes per JSON float is generous; 4 KiB covers the envelope.
		r.Body = http.MaxBytesReader(w, r.Body, int64(want)*25+4096)
		var req watchRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			http.Error(w, "bad JSON: "+err.Error(), http.StatusBadRequest)
			return
		}
		// Check against the model's expected shape before building the
		// tensor: TensorFromSlice panics on a shape/len mismatch, and
		// shapes other than the model's would panic inside inference.
		if !slices.Equal(req.Shape, shape) {
			http.Error(w, fmt.Sprintf("input shape %v, this model expects %v", req.Shape, shape), http.StatusBadRequest)
			return
		}
		if len(req.Input) != want {
			http.Error(w, fmt.Sprintf("shape %v needs %d input values, got %d", req.Shape, want, len(req.Input)), http.StatusBadRequest)
			return
		}
		fut, err := srv.Submit(napmon.TensorFromSlice(req.Input, req.Shape...))
		if err != nil {
			status := http.StatusBadRequest
			if errors.Is(err, napmon.ErrServerClosed) {
				status = http.StatusServiceUnavailable
			}
			http.Error(w, err.Error(), status)
			return
		}
		v, err := fut.Wait()
		if err != nil {
			http.Error(w, err.Error(), http.StatusServiceUnavailable)
			return
		}
		writeJSON(w, watchResponse{
			Class:        v.Class,
			Monitored:    v.Monitored,
			OutOfPattern: v.OutOfPattern,
			Pattern:      v.Pattern.String(),
		})
	}
}

// learnRequest is the POST /learn body: activation patterns (the 0/1
// string form returned by /watch) to absorb into one class's comfort
// zone.
type learnRequest struct {
	Class    int      `json:"class"`
	Patterns []string `json:"patterns"`
}

// learnResponse reports the published epoch after the update.
type learnResponse struct {
	Epoch    uint64 `json:"epoch"`
	Absorbed int    `json:"absorbed"`
}

func handleLearn(srv *napmon.Server, mon *napmon.Monitor) http.HandlerFunc {
	width := len(mon.Neurons())
	return func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			http.Error(w, "POST only", http.StatusMethodNotAllowed)
			return
		}
		// Each pattern is width bytes of JSON string plus quoting; the cap
		// bounds one request to a generous batch without letting a rogue
		// client allocate unbounded pattern slices.
		r.Body = http.MaxBytesReader(w, r.Body, int64(width+16)*4096+4096)
		var req learnRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			http.Error(w, "bad JSON: "+err.Error(), http.StatusBadRequest)
			return
		}
		if len(req.Patterns) == 0 {
			http.Error(w, "no patterns", http.StatusBadRequest)
			return
		}
		pats := make([]napmon.Pattern, len(req.Patterns))
		for i, s := range req.Patterns {
			p, err := napmon.ParsePattern(s)
			if err != nil {
				http.Error(w, fmt.Sprintf("pattern %d: %v", i, err), http.StatusBadRequest)
				return
			}
			if len(p) != width {
				http.Error(w, fmt.Sprintf("pattern %d has %d bits, monitor watches %d neurons", i, len(p), width), http.StatusBadRequest)
				return
			}
			pats[i] = p
		}
		epoch, err := srv.Update(map[int][]napmon.Pattern{req.Class: pats})
		if err != nil {
			// Validation failures (unmonitored class) are the client's
			// fault; the update path has no server-side failure modes.
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		writeJSON(w, learnResponse{Epoch: epoch, Absorbed: len(pats)})
	}
}

// statsResponse renders napmon.ServerStats with latencies both raw (ns)
// and human-readable, plus the per-stage breakdown and the monitor's
// verdict tallies.
type statsResponse struct {
	Queued        int                   `json:"queued"`
	Submitted     uint64                `json:"submitted"`
	Served        uint64                `json:"served"`
	Rejected      uint64                `json:"rejected"`
	Shed          uint64                `json:"shed"`
	Batches       uint64                `json:"batches"`
	MeanBatchSize float64               `json:"mean_batch_size"`
	P50Ns         int64                 `json:"p50_ns"`
	P99Ns         int64                 `json:"p99_ns"`
	P50           string                `json:"p50"`
	P99           string                `json:"p99"`
	Stages        map[string]stageStats `json:"stages"`
	Monitored     uint64                `json:"monitored"`
	OutOfPattern  uint64                `json:"out_of_pattern"`
	Unmonitored   uint64                `json:"unmonitored"`
	Gamma         int                   `json:"gamma"`
	Lanes         int                   `json:"lanes"`
	Epoch         uint64                `json:"epoch"`
	Updates       uint64                `json:"updates"`
	Recompiled    uint64                `json:"recompiled"`
}

// stageStats is one pipeline stage's latency summary in /stats.
type stageStats struct {
	P50Ns int64  `json:"p50_ns"`
	P99Ns int64  `json:"p99_ns"`
	P50   string `json:"p50"`
	P99   string `json:"p99"`
	Count uint64 `json:"count"`
}

func handleStats(srv *napmon.Server) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet {
			http.Error(w, "GET only", http.StatusMethodNotAllowed)
			return
		}
		st := srv.Stats()
		stages := make(map[string]stageStats, len(st.Stages))
		for name, sl := range st.Stages {
			stages[name] = stageStats{
				P50Ns: sl.P50.Nanoseconds(),
				P99Ns: sl.P99.Nanoseconds(),
				P50:   sl.P50.String(),
				P99:   sl.P99.String(),
				Count: sl.Count,
			}
		}
		writeJSON(w, statsResponse{
			Queued:        st.Queued,
			Submitted:     st.Submitted,
			Served:        st.Served,
			Rejected:      st.Rejected,
			Shed:          st.Shed,
			Batches:       st.Batches,
			MeanBatchSize: st.MeanBatchSize,
			P50Ns:         st.P50.Nanoseconds(),
			P99Ns:         st.P99.Nanoseconds(),
			P50:           st.P50.String(),
			P99:           st.P99.String(),
			Stages:        stages,
			Monitored:     st.Monitored,
			OutOfPattern:  st.OutOfPattern,
			Unmonitored:   st.Unmonitored,
			Gamma:         st.Gamma,
			Lanes:         st.Lanes,
			Epoch:         st.Epoch,
			Updates:       st.Updates,
			Recompiled:    st.Recompiled,
		})
	}
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		log.Printf("encode response: %v", err)
	}
}
